// ti_inspect — summarize a captured TI trace directory.
//
//   ti_inspect <trace-dir>             per-op record counts + volume summary
//   ti_inspect <trace-dir> --dump [r]  print every record (of rank r)
//   ti_inspect <trace-dir> --summary   replay on a flat cluster and print the
//                                      result incl. p2p hot-path counters and
//                                      per-op message-size histograms
//                                      (count/total/min/p50/p95/max bytes)
//   ti_inspect <trace-dir> --check     static sanity check: unmatched p2p
//                                      counterparts, collective divergence
//
// Exit code: 0 on success, 1 on usage/load errors or --check findings.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "platform/builders.hpp"
#include "trace/check.hpp"
#include "trace/reader.hpp"
#include "trace/replay.hpp"

namespace {

struct OpStats {
  long long records = 0;
  long long bytes = 0;  // p2p payload or collective send-side volume
};

long long record_bytes(const smpi::trace::TiRecord& r) {
  using smpi::trace::TiOp;
  switch (r.op) {
    case TiOp::kSend:
    case TiOp::kIsend:
    case TiOp::kRecv:
    case TiOp::kIrecv:
      return r.count * r.elem;
    case TiOp::kSendrecv:
      return r.count * r.elem + r.count2 * r.elem2;
    case TiOp::kBcast:
    case TiOp::kReduce:
    case TiOp::kAllreduce:
    case TiOp::kScan:
    case TiOp::kGather:
    case TiOp::kScatter:
    case TiOp::kAllgather:
    case TiOp::kAlltoall:
    case TiOp::kGatherv:
    case TiOp::kAllgatherv:
      return r.count * r.elem;
    case TiOp::kScatterv:  // send-side volume lives in the root's counts array
    case TiOp::kAlltoallv:
    case TiOp::kReduceScatter: {
      long long total = 0;
      for (long long c : r.counts) total += c;
      return total * r.elem;
    }
    default:
      return 0;
  }
}

// Nearest-rank percentile over an already-sorted sample.
long long percentile(const std::vector<long long>& sorted, double q) {
  if (sorted.empty()) return 0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  return sorted[static_cast<std::size_t>(pos + 0.5)];
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: ti_inspect <trace-dir> [--dump [rank] | --summary | --check]\n");
    return 1;
  }
  const std::string dir = argv[1];
  const bool dump = argc >= 3 && std::strcmp(argv[2], "--dump") == 0;
  const bool summary = argc >= 3 && std::strcmp(argv[2], "--summary") == 0;
  const bool check = argc >= 3 && std::strcmp(argv[2], "--check") == 0;
  const int dump_rank = argc >= 4 ? std::atoi(argv[3]) : -1;

  try {
    // Lenient load: the inspector must be able to show how far an
    // interrupted capture got, which strict validation would reject.
    const smpi::trace::TiTrace trace = smpi::trace::load_ti_trace(dir, /*validate=*/false);
    if (dump) {
      for (int rank = 0; rank < trace.nranks; ++rank) {
        if (dump_rank >= 0 && rank != dump_rank) continue;
        for (const auto& record : trace.ranks[static_cast<std::size_t>(rank)]) {
          std::printf("%-6d %s\n", rank, smpi::trace::serialize_record(record).c_str());
        }
      }
      return 0;
    }

    if (check) {
      const smpi::trace::TraceCheckReport report = smpi::trace::check_trace(trace);
      if (report.ok()) {
        std::printf("trace: %s\nranks: %d\ncheck: ok\n", dir.c_str(), trace.nranks);
        return 0;
      }
      std::fprintf(stderr, "trace: %s\nranks: %d\ncheck: %zu finding(s)\n", dir.c_str(),
                   trace.nranks, report.findings.size());
      for (const auto& finding : report.findings) {
        std::fprintf(stderr, "  %s\n", finding.message.c_str());
      }
      return 1;
    }

    if (summary) {
      // Replay on a flat cluster sized to the trace so the counters reflect
      // the same collective algorithms a real sweep would drive. Payload-free
      // replay moves no bytes, so the eager copy counters report pool reuse
      // and envelope traffic, not data motion.
      smpi::platform::FlatClusterParams params;
      params.nodes = trace.nranks;
      const smpi::platform::Platform platform = smpi::platform::build_flat_cluster(params);
      const smpi::trace::ReplayResult result =
          smpi::trace::replay_trace(platform, smpi::core::SmpiConfig{}, trace);
      std::printf("trace: %s\napp: %s\nranks: %d\nrecords: %lld\n", dir.c_str(),
                  trace.app.c_str(), trace.nranks, result.records);
      std::printf("simulated_time: %.9f s\n", result.simulated_time);
      std::printf("solver: solves=%llu vars_touched=%llu cons_touched=%llu\n",
                  static_cast<unsigned long long>(result.solver_solves),
                  static_cast<unsigned long long>(result.solver_vars_touched),
                  static_cast<unsigned long long>(result.solver_cons_touched));
      std::printf("p2p: pool_hits=%llu pool_misses=%llu eager_snapshots=%llu\n",
                  static_cast<unsigned long long>(result.p2p.pool_hits),
                  static_cast<unsigned long long>(result.p2p.pool_misses),
                  static_cast<unsigned long long>(result.p2p.eager_snapshots));
      std::printf("p2p: eager_copy_elided=%llu eager_flush_snapshots=%llu bytes_not_copied=%llu\n",
                  static_cast<unsigned long long>(result.p2p.eager_copy_elided),
                  static_cast<unsigned long long>(result.p2p.eager_flush_snapshots),
                  static_cast<unsigned long long>(result.p2p.bytes_not_copied));
      // Per-op message-size histograms: how big this trace's messages are,
      // op by op (records that move no bytes — init, barrier, waits — are
      // skipped; they would only flatten every distribution's min to 0).
      std::map<std::string, std::vector<long long>> sizes;
      for (const auto& rank_records : trace.ranks) {
        for (const auto& record : rank_records) {
          const long long bytes = record_bytes(record);
          if (bytes > 0) sizes[smpi::trace::ti_op_name(record.op)].push_back(bytes);
        }
      }
      std::printf("message sizes (bytes/record):\n");
      std::printf("  %-14s %10s %14s %10s %10s %10s %10s\n", "op", "records", "total", "min",
                  "p50", "p95", "max");
      for (auto& [name, values] : sizes) {
        std::sort(values.begin(), values.end());
        long long total = 0;
        for (long long v : values) total += v;
        std::printf("  %-14s %10zu %14lld %10lld %10lld %10lld %10lld\n", name.c_str(),
                    values.size(), total, values.front(), percentile(values, 0.5),
                    percentile(values, 0.95), values.back());
      }
      return 0;
    }

    std::map<std::string, OpStats> stats;
    double total_flops = 0;
    double total_sleep = 0;
    for (const auto& rank_records : trace.ranks) {
      for (const auto& record : rank_records) {
        OpStats& s = stats[smpi::trace::ti_op_name(record.op)];
        s.records += 1;
        s.bytes += record_bytes(record);
        if (record.op == smpi::trace::TiOp::kCompute) total_flops += record.value;
        if (record.op == smpi::trace::TiOp::kSleep) total_sleep += record.value;
      }
    }

    std::printf("trace: %s\napp: %s\nranks: %d\nrecords: %lld\n", dir.c_str(),
                trace.app.c_str(), trace.nranks, trace.total_records());
    std::printf("%-16s %12s %16s\n", "op", "records", "bytes");
    for (const auto& [name, s] : stats) {
      std::printf("%-16s %12lld %16lld\n", name.c_str(), s.records, s.bytes);
    }
    std::printf("total compute: %.6e flops\ntotal recorded sleep: %.6e s\n", total_flops,
                total_sleep);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ti_inspect: error: %s\n", e.what());
    return 1;
  }
}
