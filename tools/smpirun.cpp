// smpirun — command-line driver, mirroring the launcher real SMPI ships:
// pick a platform (XML file or generated cluster), a number of processes and
// a built-in application, run the simulation, print the simulated time.
//
//   smpirun --np 16 --cluster 16 --app pingpong
//   smpirun --np 21 --platform my_cluster.xml --app dt --class A --graph WH
//   smpirun --np 8 --cluster 8 --app ep --log2-pairs 20 --sampling 0.25
//   smpirun --np 16 --cluster 16 --app alltoall --bytes 1MiB --backend packet
//
// Trace capture and offline replay (the TI trace subsystem):
//   smpirun --np 16 --cluster 16 --app ep --trace-ti ti_dir   # capture once
//   smpirun --replay ti_dir --cluster 16                      # re-simulate
//   smpirun --replay ti_dir --machine gdx                     # ... on any platform
//   smpirun --np 16 --cluster 16 --app dt --trace-paje dt.trace  # timeline
//
// Wait-state / critical-path analysis and simulator self-profiling:
//   smpirun --np 16 --cluster 16 --app alltoall --analyze
//   smpirun --replay ti_dir --analyze --trace-paje waits.trace  # wait-state colors
//   smpirun --replay ti_dir --profile                           # + BENCH_profile.json
//
// The trace directory is validated up front (missing/truncated rank files
// are reported with rank, path, and line). For sweeping many what-if
// scenarios over one trace, see tools/smpi_campaign.
//
// Exit code: 0 on success, 1 on usage errors, 2 when the application aborts
// (including resource-failure aborts), 3 on a simulated deadlock (the wait-for
// diagnostic is printed to stderr), 4 when --max-sim-time or --wall-timeout
// fires.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <sys/time.h>
#include <unistd.h>

#include <chrono>

#include "apps/dt.hpp"
#include "apps/ep.hpp"
#include "obs/analysis.hpp"
#include "obs/metrics.hpp"
#include "obs/perfetto.hpp"
#include "obs/profile.hpp"
#include "obs/resource.hpp"
#include "obs/span.hpp"
#include "platform/builders.hpp"
#include "platform/platform_xml.hpp"
#include "smpi/coll.h"
#include "smpi/mpi.h"
#include "smpi/smpi.hpp"
#include "trace/capture.hpp"
#include "trace/paje.hpp"
#include "trace/reader.hpp"
#include "surf/cpu.hpp"
#include "surf/network.hpp"
#include "trace/replay.hpp"
#include "trace/writer.hpp"
#include "util/json.hpp"
#include "util/units.hpp"

namespace {

struct Options {
  int np = 2;
  std::string platform_file;
  int cluster_nodes = 0;      // --cluster N: generated flat GbE cluster
  std::string named_platform;  // --machine griffon|gdx
  std::string app = "pingpong";
  std::string backend = "flow";  // flow | packet
  // app-specific
  std::string dt_class = "S";
  std::string dt_graph = "WH";
  bool dt_fold = false;
  int ep_log2_pairs = 20;
  double ep_sampling = 1.0;
  std::uint64_t bytes = 1 << 20;
  bool verbose = false;
  std::string trace_ti_dir;   // --trace-ti: capture a TI trace while running
  std::string replay_dir;     // --replay: re-simulate a captured TI trace
  std::string trace_paje;     // --trace-paje: time-stamped Paje timeline
  std::string faults;         // --faults: inline JSON or spec file path
  std::string noise;          // --noise: inline JSON or spec file path
  long long noise_seed = -1;  // --noise-seed: overrides the spec's seed (-1 = keep)
  double max_sim_time = 0;    // --max-sim-time: simulated-seconds guard (0 = off)
  double wall_timeout = 0;    // --wall-timeout: wall-clock guard (0 = off)
  bool analyze = false;       // --analyze: wait-state + critical-path report
  bool resources = false;     // --resources: utilization timelines + bottleneck report
  std::string trace_perfetto; // --trace-perfetto: Chrome/Perfetto trace JSON
  bool profile = false;       // --profile: simulator self-profiling report
  std::string profile_json_path = "BENCH_profile.json";  // --profile-json
  bool paje_classic = false;  // --paje-classic: keep the per-call Paje states
                              // even when --analyze could color by wait-state
};

[[noreturn]] void usage(const char* error) {
  if (error != nullptr) std::fprintf(stderr, "smpirun: %s\n\n", error);
  std::fprintf(stderr,
               "usage: smpirun [options]\n"
               "  --np N                number of MPI processes (default 2)\n"
               "  --platform FILE       platform XML file\n"
               "  --cluster N           generate a flat N-node GbE cluster\n"
               "  --machine NAME        built-in platform: griffon | gdx\n"
               "  --backend MODE        flow (default) | packet (ground truth)\n"
               "  --app NAME            pingpong | ring | alltoall | bcast | dt | ep\n"
               "  --bytes SIZE          message size for pingpong/ring/alltoall/bcast\n"
               "  --class C             DT class: S W A B C\n"
               "  --graph G             DT graph: WH BH SH\n"
               "  --fold                DT: use SMPI_SHARED_MALLOC folding\n"
               "  --log2-pairs M        EP: total pairs = 2^M\n"
               "  --sampling R          EP: SMPI_SAMPLE ratio in (0,1]\n"
               "  --trace-ti DIR        capture a time-independent trace into DIR\n"
               "  --replay DIR          replay a captured trace (ignores --np/--app)\n"
               "  --trace-paje FILE     write a Paje timeline of the (re)simulation\n"
               "  --faults SPEC         failure model: inline JSON ('{...}') or a spec file\n"
               "  --noise SPEC          noise model: inline JSON ('{...}') or a spec file\n"
               "  --noise-seed N        override the noise spec's base seed\n"
               "  --max-sim-time S      abort once simulated time would pass S seconds (exit 4)\n"
               "  --wall-timeout S      abort after S wall-clock seconds (exit 4)\n"
               "  --analyze             wait-state + critical-path analysis of the run\n"
               "  --resources           resource-utilization timelines, saturation ledger\n"
               "                        and top-bottleneck report (links + hosts)\n"
               "  --trace-perfetto FILE write a Chrome/Perfetto trace-event JSON (resource\n"
               "                        counter tracks + per-rank spans); open in\n"
               "                        ui.perfetto.dev or chrome://tracing\n"
               "  --profile             profile the simulator itself (solver, calendar,\n"
               "                        context switches, pools) and write a JSON report\n"
               "  --profile-json FILE   self-profile JSON path (default BENCH_profile.json)\n"
               "  --paje-classic        with --analyze + --trace-paje: keep the classic\n"
               "                        per-MPI-call timeline instead of wait-state colors\n"
               "  --verbose             print per-app details\n");
  std::exit(1);
}

Options parse_options(int argc, char** argv) {
  Options options;
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage("missing value for option");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    try {
      if (arg == "--np") {
        options.np = std::stoi(need_value(i));
      } else if (arg == "--platform") {
        options.platform_file = need_value(i);
      } else if (arg == "--cluster") {
        options.cluster_nodes = std::stoi(need_value(i));
      } else if (arg == "--machine") {
        options.named_platform = need_value(i);
      } else if (arg == "--backend") {
        options.backend = need_value(i);
      } else if (arg == "--app") {
        options.app = need_value(i);
      } else if (arg == "--bytes") {
        options.bytes = smpi::util::parse_bytes(need_value(i));
      } else if (arg == "--class") {
        options.dt_class = need_value(i);
      } else if (arg == "--graph") {
        options.dt_graph = need_value(i);
      } else if (arg == "--fold") {
        options.dt_fold = true;
      } else if (arg == "--log2-pairs") {
        options.ep_log2_pairs = std::stoi(need_value(i));
      } else if (arg == "--sampling") {
        options.ep_sampling = std::stod(need_value(i));
      } else if (arg == "--trace-ti") {
        options.trace_ti_dir = need_value(i);
      } else if (arg == "--replay") {
        options.replay_dir = need_value(i);
      } else if (arg == "--trace-paje") {
        options.trace_paje = need_value(i);
      } else if (arg == "--faults") {
        options.faults = need_value(i);
      } else if (arg == "--noise") {
        options.noise = need_value(i);
      } else if (arg == "--noise-seed") {
        options.noise_seed = std::stoll(need_value(i));
        if (options.noise_seed < 0) usage("--noise-seed must be >= 0");
      } else if (arg == "--max-sim-time") {
        options.max_sim_time = std::stod(need_value(i));
      } else if (arg == "--wall-timeout") {
        options.wall_timeout = std::stod(need_value(i));
      } else if (arg == "--analyze") {
        options.analyze = true;
      } else if (arg == "--resources") {
        options.resources = true;
      } else if (arg == "--trace-perfetto") {
        options.trace_perfetto = need_value(i);
      } else if (arg == "--profile") {
        options.profile = true;
      } else if (arg == "--profile-json") {
        options.profile = true;
        options.profile_json_path = need_value(i);
      } else if (arg == "--paje-classic") {
        options.paje_classic = true;
      } else if (arg == "--verbose") {
        options.verbose = true;
      } else if (arg == "--help" || arg == "-h") {
        usage(nullptr);
      } else {
        usage(("unknown option '" + arg + "'").c_str());
      }
    } catch (const std::exception& e) {
      usage(e.what());
    }
  }
  if (options.np < 1) usage("--np must be >= 1");
  if (options.max_sim_time < 0) usage("--max-sim-time must be >= 0");
  if (options.wall_timeout < 0) usage("--wall-timeout must be >= 0");
  return options;
}

// --wall-timeout: a real (wall-clock) interval timer. The handler must be
// async-signal-safe, so it write()s a fixed message and _exit()s — no unwind,
// no streams. That is the point: this guard fires when the simulation itself
// is stuck (e.g. a poll loop advancing virtual time forever), so there is no
// safe place to resume.
void arm_wall_timeout(double seconds) {
  if (seconds <= 0) return;
  struct sigaction sa = {};
  sa.sa_handler = [](int) {
    const char msg[] = "smpirun: wall-clock timeout exceeded (--wall-timeout)\n";
    ssize_t ignored = write(STDERR_FILENO, msg, sizeof(msg) - 1);
    (void)ignored;
    _exit(4);
  };
  sigemptyset(&sa.sa_mask);
  sigaction(SIGALRM, &sa, nullptr);
  struct itimerval timer = {};
  timer.it_value.tv_sec = static_cast<long>(seconds);
  timer.it_value.tv_usec = static_cast<long>((seconds - static_cast<double>(timer.it_value.tv_sec)) * 1e6);
  if (timer.it_value.tv_sec == 0 && timer.it_value.tv_usec == 0) timer.it_value.tv_usec = 1;
  setitimer(ITIMER_REAL, &timer, nullptr);
}

smpi::platform::Platform make_platform(const Options& options) {
  if (!options.platform_file.empty()) {
    return smpi::platform::load_platform_from_file(options.platform_file);
  }
  if (options.named_platform == "griffon") return smpi::platform::build_griffon();
  if (options.named_platform == "gdx") return smpi::platform::build_gdx();
  if (!options.named_platform.empty()) usage("unknown --machine (use griffon or gdx)");
  smpi::platform::FlatClusterParams params;
  params.nodes = options.cluster_nodes > 0 ? options.cluster_nodes : options.np;
  return smpi::platform::build_flat_cluster(params);
}

smpi::apps::DtClass parse_dt_class(const std::string& text) {
  const std::string classes = "SWABC";
  const auto pos = classes.find(text.empty() ? 'S' : text[0]);
  if (text.size() != 1 || pos == std::string::npos) usage("--class must be one of S W A B C");
  return static_cast<smpi::apps::DtClass>(pos);
}

smpi::apps::DtGraph parse_dt_graph(const std::string& text) {
  if (text == "WH") return smpi::apps::DtGraph::kWhiteHole;
  if (text == "BH") return smpi::apps::DtGraph::kBlackHole;
  if (text == "SH") return smpi::apps::DtGraph::kShuffle;
  usage("--graph must be WH, BH or SH");
}

smpi::core::MpiMain make_app(const Options& options) {
  const auto bytes = static_cast<int>(options.bytes);
  if (options.app == "pingpong") {
    return [bytes](int, char**) {
      MPI_Init(nullptr, nullptr);
      int rank = 0;
      MPI_Comm_rank(MPI_COMM_WORLD, &rank);
      std::vector<char> buf(static_cast<std::size_t>(bytes));
      for (int rep = 0; rep < 10; ++rep) {
        if (rank == 0) {
          MPI_Send(buf.data(), bytes, MPI_CHAR, 1, 0, MPI_COMM_WORLD);
          MPI_Recv(buf.data(), bytes, MPI_CHAR, 1, 1, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
        } else if (rank == 1) {
          MPI_Recv(buf.data(), bytes, MPI_CHAR, 0, 0, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
          MPI_Send(buf.data(), bytes, MPI_CHAR, 0, 1, MPI_COMM_WORLD);
        }
      }
      MPI_Finalize();
    };
  }
  if (options.app == "ring") {
    return [bytes](int, char**) {
      MPI_Init(nullptr, nullptr);
      int rank = 0, size = 0;
      MPI_Comm_rank(MPI_COMM_WORLD, &rank);
      MPI_Comm_size(MPI_COMM_WORLD, &size);
      std::vector<char> buf(static_cast<std::size_t>(bytes));
      MPI_Sendrecv(buf.data(), bytes, MPI_CHAR, (rank + 1) % size, 0, buf.data(), bytes,
                   MPI_CHAR, (rank - 1 + size) % size, 0, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      MPI_Finalize();
    };
  }
  if (options.app == "alltoall") {
    return [bytes](int, char**) {
      MPI_Init(nullptr, nullptr);
      int size = 0;
      MPI_Comm_size(MPI_COMM_WORLD, &size);
      std::vector<char> send(static_cast<std::size_t>(bytes) * static_cast<std::size_t>(size));
      std::vector<char> recv(send.size());
      MPI_Alltoall(send.data(), bytes, MPI_CHAR, recv.data(), bytes, MPI_CHAR, MPI_COMM_WORLD);
      MPI_Finalize();
    };
  }
  if (options.app == "bcast") {
    return [bytes](int, char**) {
      MPI_Init(nullptr, nullptr);
      std::vector<char> buf(static_cast<std::size_t>(bytes));
      MPI_Bcast(buf.data(), bytes, MPI_CHAR, 0, MPI_COMM_WORLD);
      MPI_Finalize();
    };
  }
  if (options.app == "dt") {
    smpi::apps::DtParams params;
    params.cls = parse_dt_class(options.dt_class);
    params.graph = parse_dt_graph(options.dt_graph);
    params.fold_memory = options.dt_fold;
    return smpi::apps::make_dt_app(params);
  }
  if (options.app == "ep") {
    smpi::apps::EpParams params;
    params.log2_pairs = options.ep_log2_pairs;
    params.sampling_ratio = options.ep_sampling;
    return smpi::apps::make_ep_app(params);
  }
  usage("unknown --app");
}

void write_profile_json(const smpi::obs::Profiler& profiler, const std::string& path) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "smpirun: cannot write self-profile to %s\n", path.c_str());
    return;
  }
  const std::string text = smpi::obs::profile_json(profiler).dump(2);
  std::fwrite(text.data(), 1, text.size(), out);
  std::fputc('\n', out);
  std::fclose(out);
}

// The self-profile needs total wall clock for its percentages; finish() stamps
// it, prints the table, and writes the JSON report.
void finish_profile(smpi::obs::Profiler& profiler, double wall_s, const Options& options) {
  smpi::obs::clear_profiler();
  profiler.set_total_wall(wall_s);
  std::printf("%s", smpi::obs::profile_text(profiler).c_str());
  write_profile_json(profiler, options.profile_json_path);
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse_options(argc, argv);
  if (!options.replay_dir.empty() && !options.trace_ti_dir.empty()) {
    usage("--replay and --trace-ti are mutually exclusive");
  }
  arm_wall_timeout(options.wall_timeout);
  try {
    auto platform = make_platform(options);

    smpi::core::SmpiConfig config;
    if (options.backend == "packet") {
      config.backend = smpi::core::SmpiConfig::Backend::kPacket;
      config.personality = smpi::core::Personality::openmpi();
    } else if (options.backend != "flow") {
      usage("--backend must be flow or packet");
    }
    config.engine.max_sim_time = options.max_sim_time;
    if (!options.faults.empty()) {
      config.faults = smpi::sim::FaultSpec::parse_text(options.faults);
    }
    if (!options.noise.empty()) {
      // Static channels perturb the platform here, before the world is
      // built; the jitter channel rides in the config (SmpiWorld installs
      // it, for online runs and replay alike).
      config.noise = smpi::noise::NoiseSpec::parse_text(options.noise);
      if (options.noise_seed >= 0) {
        config.noise.seed = static_cast<std::uint64_t>(options.noise_seed);
      }
      smpi::noise::apply_platform_noise(platform, config.noise);
    } else if (options.noise_seed >= 0) {
      usage("--noise-seed needs --noise");
    }

    if (!options.replay_dir.empty()) {
      const smpi::trace::TiTrace trace = smpi::trace::load_ti_trace(options.replay_dir);
      // With --analyze the Paje timeline defaults to wait-state coloring
      // (exported from the spans after the run); --paje-classic keeps the
      // live per-MPI-call capture instead.
      const bool classified_paje =
          !options.trace_paje.empty() && options.analyze && !options.paje_classic;
      std::unique_ptr<smpi::trace::PajeWriter> paje;
      smpi::trace::ReplayOptions replay_options;
      if (!options.trace_paje.empty() && !classified_paje) {
        paje = std::make_unique<smpi::trace::PajeWriter>(options.trace_paje);
        replay_options.paje = paje.get();
      }
      // The collector is installed here (not via replay_options.analyze) so
      // the spans survive the replay for the Paje export below.
      std::unique_ptr<smpi::obs::SpanCollector> spans;
      if (options.analyze) {
        spans = std::make_unique<smpi::obs::SpanCollector>(trace.nranks);
        smpi::obs::install_spans(spans.get());
      }
      // Resource timelines: replay_trace installs/finalizes the collector
      // around its world (it must be live before the surf models build).
      std::unique_ptr<smpi::obs::ResourceCollector> res;
      if (options.resources || !options.trace_perfetto.empty()) {
        res = std::make_unique<smpi::obs::ResourceCollector>();
        replay_options.resources = res.get();
      }
      smpi::obs::Profiler profiler;
      if (options.profile) smpi::obs::install_profiler(&profiler);
      const auto wall_start = std::chrono::steady_clock::now();
      smpi::trace::ReplayResult result;
      try {
        result = smpi::trace::replay_trace(platform, config, trace, replay_options);
      } catch (...) {
        smpi::obs::clear_spans();
        smpi::obs::clear_profiler();
        throw;
      }
      const double wall_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
      smpi::obs::clear_spans();
      if (options.profile) finish_profile(profiler, wall_s, options);
      if (result.aborted) {
        std::fprintf(stderr, "smpirun: replay aborted with code %d\n", result.abort_code);
        if (!result.failure.empty()) {
          std::fprintf(stderr, "smpirun: resource failure: %s\n", result.failure.c_str());
        }
        return 2;
      }
      std::printf("smpirun: replayed %lld records over %d ranks on %d hosts (%s backend)\n",
                  result.records, result.ranks, platform.host_count(), options.backend.c_str());
      if (options.verbose) {
        std::printf("replay scratch arena: %s\n",
                    smpi::util::format_bytes(result.arena_bytes).c_str());
        smpi::obs::MetricsRegistry registry;
        smpi::obs::collect_p2p(registry, result.p2p);
        smpi::obs::collect_solver(registry, result.solver_solves, result.solver_vars_touched,
                                  result.solver_cons_touched);
        smpi::obs::collect_surf(registry, result.surf_observe.solves_attach,
                                result.surf_observe.solves_release,
                                result.surf_observe.solves_capacity,
                                result.surf_observe.solves_bound,
                                result.surf_observe.saturation_events,
                                result.surf_observe.observe_drains);
        std::printf("counters:\n%s", registry.text().c_str());
      }
      std::printf("simulated execution time: %.9f s\n", result.simulated_time);
      if (spans != nullptr) {
        const smpi::obs::AnalysisResult analysis = smpi::obs::analyze(*spans);
        std::printf("%s", smpi::obs::analysis_text(analysis).c_str());
        if (classified_paje) {
          smpi::obs::export_classified_paje(*spans, options.trace_paje, result.simulated_time);
        }
      }
      if (options.resources && res != nullptr) {
        std::printf("%s", res->report().c_str());
      }
      if (!options.trace_perfetto.empty()) {
        if (!smpi::obs::write_perfetto_trace(options.trace_perfetto, res.get(), spans.get(),
                                             options.profile ? &profiler : nullptr,
                                             result.simulated_time)) {
          std::fprintf(stderr, "smpirun: cannot write Perfetto trace to %s\n",
                       options.trace_perfetto.c_str());
        } else if (options.verbose) {
          std::printf("perfetto trace written to %s\n", options.trace_perfetto.c_str());
        }
      }
      return 0;
    }

    int np = options.np;
    if (options.app == "dt") {
      // DT fixes its own process count from the graph shape.
      np = smpi::apps::dt_process_count(parse_dt_graph(options.dt_graph),
                                        parse_dt_class(options.dt_class));
      if (options.verbose && np != options.np) {
        std::fprintf(stderr, "smpirun: DT %s class %s needs %d processes (overriding --np)\n",
                     options.dt_graph.c_str(), options.dt_class.c_str(), np);
      }
    }

    std::unique_ptr<smpi::trace::TiWriter> ti_writer;
    std::unique_ptr<smpi::trace::PajeWriter> paje;
    const bool classified_paje =
        !options.trace_paje.empty() && options.analyze && !options.paje_classic;
    if (!options.trace_ti_dir.empty()) {
      ti_writer = std::make_unique<smpi::trace::TiWriter>(options.trace_ti_dir, np, options.app);
    }
    if (!options.trace_paje.empty() && !classified_paje) {
      paje = std::make_unique<smpi::trace::PajeWriter>(options.trace_paje);
      paje->begin(np);
    }
    if (ti_writer != nullptr || paje != nullptr) {
      smpi::trace::install_capture(ti_writer.get(), paje.get());
    }
    std::unique_ptr<smpi::obs::SpanCollector> spans;
    if (options.analyze) {
      spans = std::make_unique<smpi::obs::SpanCollector>(np);
      smpi::obs::install_spans(spans.get());
    }
    smpi::obs::Profiler profiler;
    if (options.profile) smpi::obs::install_profiler(&profiler);
    // Resource timelines: the collector must be live before the world is
    // built — the surf models register their links/hosts in their ctors.
    std::unique_ptr<smpi::obs::ResourceCollector> res;
    if (options.resources || !options.trace_perfetto.empty()) {
      res = std::make_unique<smpi::obs::ResourceCollector>();
      smpi::obs::install_resources(res.get());
    }

    const auto wall_start = std::chrono::steady_clock::now();
    smpi::core::SmpiWorld world(platform, config);
    try {
      world.run(np, make_app(options));
    } catch (...) {
      smpi::trace::clear_capture();  // the writers unwind with this frame
      smpi::obs::clear_spans();
      smpi::obs::clear_profiler();
      smpi::obs::clear_resources();
      throw;
    }
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
    smpi::obs::clear_spans();
    if (res != nullptr) {
      // Final drain (the last completions may not have settled), then close
      // the observed window at the makespan.
      if (auto* net = dynamic_cast<smpi::surf::FlowNetworkModel*>(&world.network())) {
        net->flush_observations(world.simulated_time());
      }
      if (auto* cpu = dynamic_cast<smpi::surf::CpuModel*>(&world.cpu())) {
        cpu->flush_observations(world.simulated_time());
      }
      smpi::obs::clear_resources();
      res->finalize(world.simulated_time());
    }
    if (options.profile) finish_profile(profiler, wall_s, options);

    if (ti_writer != nullptr || paje != nullptr) {
      smpi::trace::clear_capture();
      if (ti_writer != nullptr) ti_writer->finish();
      if (paje != nullptr) paje->finish(world.simulated_time());
      if (options.verbose && ti_writer != nullptr) {
        std::printf("captured %llu trace records into %s\n",
                    static_cast<unsigned long long>(ti_writer->records_written()),
                    options.trace_ti_dir.c_str());
      }
    }

    if (world.aborted()) {
      std::fprintf(stderr, "smpirun: application aborted with code %d\n", world.abort_code());
      if (!world.failure_diagnostic().empty()) {
        std::fprintf(stderr, "smpirun: resource failure: %s\n",
                     world.failure_diagnostic().c_str());
      }
      return 2;
    }
    std::printf("smpirun: %d processes on %d hosts (%s backend)\n", np, platform.host_count(),
                options.backend.c_str());
    std::printf("simulated execution time: %.9f s\n", world.simulated_time());
    if (spans != nullptr) {
      const smpi::obs::AnalysisResult analysis = smpi::obs::analyze(*spans);
      std::printf("%s", smpi::obs::analysis_text(analysis).c_str());
      if (classified_paje) {
        smpi::obs::export_classified_paje(*spans, options.trace_paje, world.simulated_time());
      }
    }
    if (options.resources && res != nullptr) {
      std::printf("%s", res->report().c_str());
    }
    if (!options.trace_perfetto.empty()) {
      if (!smpi::obs::write_perfetto_trace(options.trace_perfetto, res.get(), spans.get(),
                                           options.profile ? &profiler : nullptr,
                                           world.simulated_time())) {
        std::fprintf(stderr, "smpirun: cannot write Perfetto trace to %s\n",
                     options.trace_perfetto.c_str());
      } else if (options.verbose) {
        std::printf("perfetto trace written to %s\n", options.trace_perfetto.c_str());
      }
    }
    if (options.verbose) {
      const auto memory = world.memory_report();
      std::printf("tracked memory: folded peak %s, unfolded peak %s\n",
                  smpi::util::format_bytes(memory.folded_peak_bytes).c_str(),
                  smpi::util::format_bytes(memory.unfolded_peak_bytes).c_str());
      smpi::obs::MetricsRegistry registry;
      smpi::obs::collect_p2p(registry, world.p2p_counters());
      std::printf("p2p counters:\n%s", registry.text("p2p.").c_str());
      smpi::surf::MaxMinSystem::ObserveCounters surf_totals;
      auto add_observe = [&surf_totals](const smpi::surf::MaxMinSystem::ObserveCounters& oc) {
        surf_totals.solves_attach += oc.solves_attach;
        surf_totals.solves_release += oc.solves_release;
        surf_totals.solves_capacity += oc.solves_capacity;
        surf_totals.solves_bound += oc.solves_bound;
        surf_totals.saturation_events += oc.saturation_events;
        surf_totals.observe_drains += oc.observe_drains;
      };
      if (const auto* net = dynamic_cast<const smpi::surf::FlowNetworkModel*>(&world.network())) {
        add_observe(net->solver().observe_counters());
      }
      if (const auto* cpu = dynamic_cast<const smpi::surf::CpuModel*>(&world.cpu())) {
        add_observe(cpu->solver().observe_counters());
      }
      smpi::obs::collect_surf(registry, surf_totals.solves_attach, surf_totals.solves_release,
                              surf_totals.solves_capacity, surf_totals.solves_bound,
                              surf_totals.saturation_events, surf_totals.observe_drains);
      std::printf("surf counters:\n%s", registry.text("surf.").c_str());
      if (options.app == "dt") {
        std::printf("dt checksum: %.6e\n", smpi::apps::dt_last_checksum());
      }
      if (options.app == "ep") {
        std::printf("ep gaussian pairs: %lld\n",
                    static_cast<long long>(smpi::apps::ep_last_result().gaussian_pairs()));
      }
    }
    return 0;
  } catch (const smpi::sim::DeadlockError& e) {
    std::fprintf(stderr, "smpirun: simulated deadlock: %s\n", e.what());
    return 3;
  } catch (const smpi::sim::TimeLimitError& e) {
    std::fprintf(stderr, "smpirun: %s\n", e.what());
    return 4;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "smpirun: error: %s\n", e.what());
    return 2;
  }
}
