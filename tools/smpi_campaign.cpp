// smpi_campaign — what-if sweeps over a captured TI trace or a synthetic
// workload.
//
//   smpirun --np 64 --cluster 64 --app ep --trace-ti ti_ep    # capture once
//   smpi_campaign --spec sweep.json --trace ti_ep --workers 8 \
//                 --out report.json --csv report.csv           # sweep cheaply
//
//   smpi_campaign --spec sweep.json --workload stencil.json    # no capture:
//                 # the trace is generated from the workload spec, and
//                 # workload_* axes regenerate it per scenario
//
//   smpi_campaign --spec sweep.json --trace ti_ep \
//                 --resume report.json --out report.json       # restart a
//                 # partially-failed sweep: scenarios already ok in the
//                 # prior report are adopted, the rest re-run
//
// The spec declares parameter axes (see src/campaign/spec.hpp for the full
// format); the tool executes baseline + cross-product through a fork-based
// worker pool and prints a ranked summary. A spec carrying "noise" and
// "replications": N runs every scenario N times under independent noise
// sub-seeds and reports per-scenario statistics (mean/stddev/quantiles/CI)
// plus a rank-stability verdict; --resume adopts completed replications
// individually. Exit code: 0 when every run succeeded, 1 on usage errors,
// 2 when any run failed.
#include <cstdio>
#include <fstream>
#include <string>

#include "campaign/report.hpp"
#include "campaign/runner.hpp"
#include "campaign/spec.hpp"
#include "trace/reader.hpp"
#include "util/json.hpp"
#include "workload/generate.hpp"

namespace {

struct Options {
  std::string spec_file;
  std::string trace_dir;       // overrides the spec's "trace"
  std::string workload_file;   // overrides the spec's "workload"
  std::string resume_file;     // prior report to adopt ok scenarios from
  int workers = 1;
  double timeout_s = 0;  // per-scenario watchdog (overrides the spec)
  std::string out_json;
  std::string out_csv;
  bool list_only = false;
  bool progress = false;
};

[[noreturn]] void usage(const char* error) {
  if (error != nullptr) std::fprintf(stderr, "smpi_campaign: %s\n\n", error);
  std::fprintf(stderr,
               "usage: smpi_campaign --spec FILE [options]\n"
               "  --spec FILE       campaign spec (JSON; required)\n"
               "  --trace DIR       TI trace directory (overrides the spec)\n"
               "  --workload FILE   workload spec to generate the trace from\n"
               "                    (overrides the spec; excludes --trace)\n"
               "  --resume FILE     prior JSON report: adopt its ok scenarios,\n"
               "                    re-run only the missing/failed ones\n"
               "  --workers N       worker processes (default 1)\n"
               "  --timeout S       per-scenario wall-clock watchdog in seconds\n"
               "                    (overrides the spec's timeout_s; 0 = none)\n"
               "  --out FILE        write the JSON report to FILE\n"
               "  --csv FILE        write the CSV report to FILE\n"
               "  --list            print the scenario list and exit\n"
               "  --progress        print one line per finished scenario\n");
  std::exit(1);
}

Options parse_options(int argc, char** argv) {
  Options options;
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage("missing value for option");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    try {
      if (arg == "--spec") {
        options.spec_file = need_value(i);
      } else if (arg == "--trace") {
        options.trace_dir = need_value(i);
      } else if (arg == "--workload") {
        options.workload_file = need_value(i);
      } else if (arg == "--resume") {
        options.resume_file = need_value(i);
      } else if (arg == "--workers") {
        options.workers = std::stoi(need_value(i));
      } else if (arg == "--timeout") {
        options.timeout_s = std::stod(need_value(i));
      } else if (arg == "--out") {
        options.out_json = need_value(i);
      } else if (arg == "--csv") {
        options.out_csv = need_value(i);
      } else if (arg == "--list") {
        options.list_only = true;
      } else if (arg == "--progress") {
        options.progress = true;
      } else if (arg == "--help" || arg == "-h") {
        usage(nullptr);
      } else {
        usage(("unknown option '" + arg + "'").c_str());
      }
    } catch (const std::exception& e) {
      usage(e.what());
    }
  }
  if (options.spec_file.empty()) usage("--spec is required");
  if (options.workers < 1) usage("--workers must be >= 1");
  if (options.timeout_s < 0) usage("--timeout must be >= 0");
  if (!options.trace_dir.empty() && !options.workload_file.empty()) {
    usage("--trace and --workload are mutually exclusive");
  }
  return options;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out.good()) {
    std::fprintf(stderr, "smpi_campaign: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  out << content;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse_options(argc, argv);
  try {
    smpi::campaign::CampaignSpec spec =
        smpi::campaign::CampaignSpec::parse_file(options.spec_file);
    if (!options.trace_dir.empty()) {
      if (spec.has_workload) usage("--trace conflicts with the spec's \"workload\"");
      spec.trace_dir = options.trace_dir;
    }
    if (!options.workload_file.empty()) {
      if (!spec.trace_dir.empty()) usage("--workload conflicts with the spec's \"trace\"");
      spec.workload = smpi::workload::WorkloadSpec::parse_file(options.workload_file);
      spec.has_workload = true;
    }

    const auto scenarios = smpi::campaign::enumerate_scenarios(spec);
    if (options.list_only) {
      std::printf("campaign '%s': %zu scenarios\n", spec.name.c_str(), scenarios.size());
      for (const auto& scenario : scenarios) {
        std::printf("  #%-4d %s\n", scenario.id, scenario.label.c_str());
      }
      return 0;
    }

    if (spec.sweeps_workload() && !spec.has_workload) {
      usage("workload_* axes need a workload source (spec \"workload\" or --workload)");
    }
    smpi::trace::TiTrace trace;
    if (spec.has_workload) {
      trace = smpi::workload::generate_workload(spec.workload);
    } else {
      if (spec.trace_dir.empty()) {
        usage("no trace source (spec \"trace\"/\"workload\", --trace, or --workload)");
      }
      trace = smpi::trace::load_ti_trace(spec.trace_dir);
    }

    smpi::campaign::RunOptions run_options;
    run_options.workers = options.workers;
    run_options.progress = options.progress;
    run_options.timeout_s = options.timeout_s;
    if (!options.resume_file.empty()) {
      const auto report = smpi::util::parse_json_file(options.resume_file);
      run_options.resume = smpi::campaign::results_from_report(report, spec, scenarios);
      int ok = 0;
      for (const auto& r : run_options.resume) ok += r.ok ? 1 : 0;
      std::fprintf(stderr, "smpi_campaign: resuming — %d/%zu runs adopted from %s\n", ok,
                   run_options.resume.size(), options.resume_file.c_str());
    }
    const auto outcome = smpi::campaign::run_campaign(spec, scenarios, trace, run_options);

    if (!options.out_json.empty()) {
      write_file(options.out_json,
                 smpi::campaign::report_json(spec, scenarios, outcome).dump(2) + "\n");
    }
    if (!options.out_csv.empty()) {
      write_file(options.out_csv, smpi::campaign::report_csv(spec, scenarios, outcome));
    }
    std::fputs(smpi::campaign::report_summary(spec, scenarios, outcome).c_str(), stdout);

    for (const auto& result : outcome.results) {
      if (!result.ok) return 2;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "smpi_campaign: error: %s\n", e.what());
    return 2;
  }
}
