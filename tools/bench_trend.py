#!/usr/bin/env python3
"""Trend gate for the kernel perf benches.

Diffs freshly produced BENCH_*.json files against the committed baselines in
bench/baseline/ and fails (exit 1) when any shared (op, n) series regressed
by more than the threshold. Wall-clock noise on shared CI runners is real, so
the default threshold is a generous 2x — this is a tripwire for superlinear
blowups (the bcast-at-1024 kind), not a microbenchmark referee.

Usage:
    tools/bench_trend.py --fresh build --baseline bench/baseline [--threshold 2.0]

Records look like {"op": "solver_churn_lazy", "n": 1024, "wall_ns": 11665.0}.
Ops present only in the baseline (retired series) or only in the fresh run
(new series) are reported but never fail the gate; refresh the baseline in
the PR that changes the set.
"""

import argparse
import json
import os
import sys


def load_records(path):
    with open(path) as fh:
        data = json.load(fh)
    out = {}
    for record in data:
        out[(record["op"], int(record["n"]))] = float(record["wall_ns"])
    return out


def format_ns(ns):
    if ns >= 1e9:
        return f"{ns / 1e9:.2f}s"
    if ns >= 1e6:
        return f"{ns / 1e6:.2f}ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.2f}us"
    return f"{ns:.0f}ns"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fresh", default="build", help="directory with fresh BENCH_*.json")
    parser.add_argument("--baseline", default="bench/baseline",
                        help="directory with committed baseline BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="fail when fresh/baseline exceeds this ratio")
    args = parser.parse_args()

    baseline_files = sorted(
        f for f in os.listdir(args.baseline)
        if f.startswith("BENCH_") and f.endswith(".json"))
    if not baseline_files:
        print(f"bench_trend: no baselines under {args.baseline}", file=sys.stderr)
        return 1

    regressions = []
    compared = 0
    for name in baseline_files:
        fresh_path = os.path.join(args.fresh, name)
        if not os.path.exists(fresh_path):
            print(f"bench_trend: {name}: no fresh file under {args.fresh}, skipping")
            continue
        baseline = load_records(os.path.join(args.baseline, name))
        fresh = load_records(fresh_path)

        print(f"\n{name} (fresh vs baseline, threshold {args.threshold:.1f}x):")
        for key in sorted(baseline):
            op, n = key
            if key not in fresh:
                print(f"  {op:32s} n={n:<6d} retired (baseline only)")
                continue
            compared += 1
            ratio = fresh[key] / baseline[key] if baseline[key] > 0 else float("inf")
            marker = " <-- REGRESSION" if ratio > args.threshold else ""
            print(f"  {op:32s} n={n:<6d} {format_ns(fresh[key]):>10s} "
                  f"vs {format_ns(baseline[key]):>10s}  ({ratio:5.2f}x){marker}")
            if ratio > args.threshold:
                regressions.append((name, op, n, ratio))
        for key in sorted(set(fresh) - set(baseline)):
            print(f"  {key[0]:32s} n={key[1]:<6d} new series (no baseline)")

    # Machine-independent invariant: within one run (same machine, same
    # load), the lazy solver must beat the component-incremental path at
    # large flow counts — this is the claim the lazy path exists for, and
    # unlike the absolute ratios it cannot be faked or broken by a slower
    # CI runner generation.
    solver_fresh_path = os.path.join(args.fresh, "BENCH_solver.json")
    if os.path.exists(solver_fresh_path):
        solver = load_records(solver_fresh_path)
        for (op, n), ns in sorted(solver.items()):
            if op != "solver_churn_lazy" or n < 256:
                continue
            incremental = solver.get(("solver_churn_incremental", n))
            if incremental is not None and ns > incremental:
                regressions.append(("BENCH_solver.json",
                                    "solver_churn_lazy slower than incremental", n,
                                    ns / incremental))

    # Machine-independent invariant #2: offline replay must beat the online
    # capture run by >= 2x at 64 ranks (the TI-replay acceptance bar). Both
    # walls come from the same run on the same machine, so the ratio cannot
    # be broken by runner-generation drift.
    replay_fresh_path = os.path.join(args.fresh, "BENCH_replay.json")
    if os.path.exists(replay_fresh_path):
        replay = load_records(replay_fresh_path)
        for (op, n), online_ns in sorted(replay.items()):
            if op != "replay_online_capture" or n < 64:
                continue
            offline = replay.get(("replay_offline", n))
            if offline is not None and offline * 2.0 > online_ns:
                regressions.append(("BENCH_replay.json",
                                    "offline replay not 2x faster than online capture", n,
                                    online_ns / offline))

    # Machine-independent invariant #3: a campaign sweep with >= 4 workers
    # must beat the 1-worker sweep by >= 2x (scenario processes are
    # independent, so anything less means the pool is serializing). Both
    # walls come from the same run; on < 4 cores bench_campaign records a
    # smaller worker count and the gate stays off.
    campaign_fresh_path = os.path.join(args.fresh, "BENCH_campaign.json")
    if os.path.exists(campaign_fresh_path):
        campaign = load_records(campaign_fresh_path)
        serial = next((ns for (op, _), ns in campaign.items()
                       if op == "campaign_sweep_1worker"), None)
        for (op, n), multi_ns in sorted(campaign.items()):
            if op != "campaign_sweep_multiworker" or n < 4:
                continue
            if serial is not None and multi_ns * 2.0 > serial:
                regressions.append(("BENCH_campaign.json",
                                    f"{n}-worker sweep not 2x faster than 1 worker", n,
                                    serial / multi_ns))

    # Machine-independent invariant #4: generating a workload trace must not
    # cost more than replaying it (n >= 256). The generator exists so that
    # scenario setup is negligible next to scenario simulation; if compiling
    # the spec ever rivals simulating its output, the generator regressed.
    # Both walls come from the same run on the same machine.
    workload_fresh_path = os.path.join(args.fresh, "BENCH_workload.json")
    if os.path.exists(workload_fresh_path):
        workload = load_records(workload_fresh_path)
        for (op, n), generate_ns in sorted(workload.items()):
            if op != "workload_generate" or n < 256:
                continue
            replay_ns = workload.get(("workload_replay", n))
            if replay_ns is not None and generate_ns > replay_ns:
                regressions.append(("BENCH_workload.json",
                                    "workload generation slower than its replay", n,
                                    generate_ns / replay_ns))

    # Machine-independent invariant #5: the pooled + zero-copy eager p2p path
    # must beat the reference path (pooling and copy elision disabled) by
    # >= 1.25x on steady-state message rate at n >= 1000. Both arms simulate
    # the same workload in the same run, so the ratio cannot be broken by
    # runner-generation drift; measured steady state is ~1.5x (the unpack
    # memcpy both arms share bounds it), so 1.25x trips when pooling or copy
    # elision stop working without flaking on noise.
    p2p_fresh_path = os.path.join(args.fresh, "BENCH_p2p.json")
    if os.path.exists(p2p_fresh_path):
        p2p = load_records(p2p_fresh_path)
        for (op, n), pooled_ns in sorted(p2p.items()):
            if op != "p2p_eager_pooled" or n < 1000:
                continue
            reference = p2p.get(("p2p_eager_reference", n))
            if reference is not None and pooled_ns * 1.25 > reference:
                regressions.append(("BENCH_p2p.json",
                                    "pooled p2p path not 1.25x faster than reference", n,
                                    reference / pooled_ns))

    # Machine-independent invariant #6: attaching the ResourceCollector must
    # not slow a replay past 1.4x the detached run at any rank count. Both
    # arms replay the same trace in the same run. The honest steady-state
    # cost on the contention-heavy hierarchical bench is ~1.25x — almost
    # every solver snapshot stores an exact timeline step, so the collector
    # pays for real data — and 1.4x trips on regressions (per-snapshot
    # allocations, quadratic ledger folds) without flaking on noise.
    resource_fresh_path = os.path.join(args.fresh, "BENCH_resource.json")
    if os.path.exists(resource_fresh_path):
        resource = load_records(resource_fresh_path)
        for (op, n), enabled_ns in sorted(resource.items()):
            if op != "resource_enabled":
                continue
            disabled_ns = resource.get(("resource_disabled", n))
            if disabled_ns is not None and enabled_ns > disabled_ns * 1.4:
                regressions.append(("BENCH_resource.json",
                                    "resource collector overhead above 1.4x", n,
                                    enabled_ns / disabled_ns))

    if compared == 0:
        print("bench_trend: nothing compared — fresh bench files missing?", file=sys.stderr)
        return 1
    if regressions:
        print(f"\nbench_trend: {len(regressions)} series regressed past "
              f"{args.threshold:.1f}x:", file=sys.stderr)
        for name, op, n, ratio in regressions:
            print(f"  {name}: {op} n={n}: {ratio:.2f}x", file=sys.stderr)
        return 1
    print(f"\nbench_trend: OK ({compared} series within {args.threshold:.1f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
