// smpi_workload — compile declarative MPI communication patterns to TI
// traces.
//
//   smpi_workload --list                         # pattern catalog
//   smpi_workload --spec stencil.json --summary  # generate in memory, show
//                                                #   record/byte/flop totals
//   smpi_workload --spec stencil.json --out ti_stencil
//   smpirun --replay ti_stencil --cluster 64     # ...replay like a capture
//
// The generated directory is byte-for-byte deterministic for a given spec
// and seed, and indistinguishable from a capture — ti_inspect, smpirun
// --replay, and smpi_campaign consume it unchanged. Exit code: 0 on
// success, 1 on usage/spec errors.
#include <cstdio>
#include <map>
#include <string>

#include "trace/record.hpp"
#include "workload/generate.hpp"
#include "workload/patterns.hpp"
#include "workload/spec.hpp"

namespace {

struct Options {
  std::string spec_file;
  std::string out_dir;
  bool list_patterns = false;
  bool summary = false;
};

[[noreturn]] void usage(const char* error) {
  if (error != nullptr) std::fprintf(stderr, "smpi_workload: %s\n\n", error);
  std::fprintf(stderr,
               "usage: smpi_workload [--spec FILE] [options]\n"
               "  --spec FILE    workload spec (JSON; see src/workload/spec.hpp)\n"
               "  --out DIR      write the generated TI trace into DIR\n"
               "  --summary      print per-op record counts and volumes\n"
               "  --list         print the pattern catalog and exit\n");
  std::exit(1);
}

Options parse_options(int argc, char** argv) {
  Options options;
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage("missing value for option");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--spec") {
      options.spec_file = need_value(i);
    } else if (arg == "--out") {
      options.out_dir = need_value(i);
    } else if (arg == "--list") {
      options.list_patterns = true;
    } else if (arg == "--summary") {
      options.summary = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(nullptr);
    } else {
      usage(("unknown option '" + arg + "'").c_str());
    }
  }
  if (!options.list_patterns && options.spec_file.empty()) {
    usage("--spec is required (or --list)");
  }
  if (!options.list_patterns && options.out_dir.empty() && !options.summary) {
    usage("nothing to do: give --out and/or --summary");
  }
  return options;
}

long long record_payload_bytes(const smpi::trace::TiRecord& r) {
  using smpi::trace::TiOp;
  switch (r.op) {
    case TiOp::kSend:
    case TiOp::kIsend:
    case TiOp::kSendrecv:
    case TiOp::kBcast:
    case TiOp::kReduce:
    case TiOp::kAlltoall:
      return r.count * r.elem;
    default:
      return 0;
  }
}

void print_summary(const smpi::workload::WorkloadSpec& spec,
                   const smpi::trace::TiTrace& trace) {
  std::printf("workload '%s': %d ranks, seed %llu, %zu phase(s)\n", spec.name.c_str(),
              spec.ranks, static_cast<unsigned long long>(spec.seed), spec.phases.size());
  for (std::size_t i = 0; i < spec.phases.size(); ++i) {
    const auto& phase = spec.phases[i];
    std::string grid;
    if (phase.pattern == smpi::workload::Pattern::kStencil2d ||
        phase.pattern == smpi::workload::Pattern::kWavefront) {
      int px = phase.px, py = phase.py;
      if (px == 0) smpi::workload::factor_grid_2d(spec.ranks, &px, &py);
      grid = "  grid " + std::to_string(px) + "x" + std::to_string(py);
    } else if (phase.pattern == smpi::workload::Pattern::kStencil3d) {
      int px = phase.px, py = phase.py, pz = phase.pz;
      if (px == 0) smpi::workload::factor_grid_3d(spec.ranks, &px, &py, &pz);
      grid = "  grid " + std::to_string(px) + "x" + std::to_string(py) + "x" +
             std::to_string(pz);
    }
    std::printf("  phase %zu: %-13s x%-6d bytes %lld  flops %.3g (imb %.2f, jit %.2f)%s\n", i,
                smpi::workload::pattern_name(phase.pattern), phase.iterations,
                phase.bytes_at(0), phase.compute.flops, phase.compute.imbalance,
                phase.compute.jitter, grid.c_str());
  }

  std::map<std::string, long long> op_records;
  long long payload_bytes = 0;
  double flops = 0;
  for (const auto& rank_records : trace.ranks) {
    for (const auto& record : rank_records) {
      op_records[smpi::trace::ti_op_name(record.op)] += 1;
      payload_bytes += record_payload_bytes(record);
      if (record.op == smpi::trace::TiOp::kCompute) flops += record.value;
    }
  }
  std::printf("records: %lld\n", trace.total_records());
  for (const auto& [name, count] : op_records) {
    std::printf("  %-12s %12lld\n", name.c_str(), count);
  }
  std::printf("sent payload: %lld bytes\ntotal compute: %.6e flops\n", payload_bytes, flops);
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse_options(argc, argv);
  if (options.list_patterns) {
    std::printf("workload patterns:\n");
    for (const auto& name : smpi::workload::pattern_names()) {
      std::printf("  %s\n", name.c_str());
    }
    return 0;
  }
  try {
    const auto spec = smpi::workload::WorkloadSpec::parse_file(options.spec_file);
    const auto trace = smpi::workload::generate_workload(spec);
    if (options.summary) print_summary(spec, trace);
    if (!options.out_dir.empty()) {
      smpi::workload::write_trace(trace, options.out_dir);
      std::printf("wrote %lld records for %d ranks into %s\n", trace.total_records(),
                  trace.nranks, options.out_dir.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "smpi_workload: error: %s\n", e.what());
    return 1;
  }
}
