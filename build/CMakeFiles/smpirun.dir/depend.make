# Empty dependencies file for smpirun.
# This may be replaced when dependencies are built.
