file(REMOVE_RECURSE
  "CMakeFiles/smpirun.dir/tools/smpirun.cpp.o"
  "CMakeFiles/smpirun.dir/tools/smpirun.cpp.o.d"
  "smpirun"
  "smpirun.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smpirun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
