file(REMOVE_RECURSE
  "CMakeFiles/test_sim_calendar.dir/tests/test_sim_calendar.cpp.o"
  "CMakeFiles/test_sim_calendar.dir/tests/test_sim_calendar.cpp.o.d"
  "test_sim_calendar"
  "test_sim_calendar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_calendar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
