# Empty dependencies file for test_sim_calendar.
# This may be replaced when dependencies are built.
