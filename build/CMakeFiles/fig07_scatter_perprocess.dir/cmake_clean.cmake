file(REMOVE_RECURSE
  "CMakeFiles/fig07_scatter_perprocess.dir/bench/fig07_scatter_perprocess.cpp.o"
  "CMakeFiles/fig07_scatter_perprocess.dir/bench/fig07_scatter_perprocess.cpp.o.d"
  "fig07_scatter_perprocess"
  "fig07_scatter_perprocess.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_scatter_perprocess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
