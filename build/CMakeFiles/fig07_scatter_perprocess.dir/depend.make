# Empty dependencies file for fig07_scatter_perprocess.
# This may be replaced when dependencies are built.
