# Empty dependencies file for test_smpi_comm.
# This may be replaced when dependencies are built.
