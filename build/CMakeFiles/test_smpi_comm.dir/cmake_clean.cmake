file(REMOVE_RECURSE
  "CMakeFiles/test_smpi_comm.dir/tests/test_smpi_comm.cpp.o"
  "CMakeFiles/test_smpi_comm.dir/tests/test_smpi_comm.cpp.o.d"
  "test_smpi_comm"
  "test_smpi_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_smpi_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
