# Empty dependencies file for fig03_pingpong_calibrated.
# This may be replaced when dependencies are built.
