file(REMOVE_RECURSE
  "CMakeFiles/fig03_pingpong_calibrated.dir/bench/fig03_pingpong_calibrated.cpp.o"
  "CMakeFiles/fig03_pingpong_calibrated.dir/bench/fig03_pingpong_calibrated.cpp.o.d"
  "fig03_pingpong_calibrated"
  "fig03_pingpong_calibrated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_pingpong_calibrated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
