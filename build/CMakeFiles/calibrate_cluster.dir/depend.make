# Empty dependencies file for calibrate_cluster.
# This may be replaced when dependencies are built.
