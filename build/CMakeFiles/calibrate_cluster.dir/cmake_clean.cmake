file(REMOVE_RECURSE
  "CMakeFiles/calibrate_cluster.dir/examples/calibrate_cluster.cpp.o"
  "CMakeFiles/calibrate_cluster.dir/examples/calibrate_cluster.cpp.o.d"
  "calibrate_cluster"
  "calibrate_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibrate_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
