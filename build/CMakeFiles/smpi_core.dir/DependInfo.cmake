
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/dt.cpp" "CMakeFiles/smpi_core.dir/src/apps/dt.cpp.o" "gcc" "CMakeFiles/smpi_core.dir/src/apps/dt.cpp.o.d"
  "/root/repo/src/apps/ep.cpp" "CMakeFiles/smpi_core.dir/src/apps/ep.cpp.o" "gcc" "CMakeFiles/smpi_core.dir/src/apps/ep.cpp.o.d"
  "/root/repo/src/calib/calibration.cpp" "CMakeFiles/smpi_core.dir/src/calib/calibration.cpp.o" "gcc" "CMakeFiles/smpi_core.dir/src/calib/calibration.cpp.o.d"
  "/root/repo/src/calib/fit.cpp" "CMakeFiles/smpi_core.dir/src/calib/fit.cpp.o" "gcc" "CMakeFiles/smpi_core.dir/src/calib/fit.cpp.o.d"
  "/root/repo/src/calib/pingpong.cpp" "CMakeFiles/smpi_core.dir/src/calib/pingpong.cpp.o" "gcc" "CMakeFiles/smpi_core.dir/src/calib/pingpong.cpp.o.d"
  "/root/repo/src/platform/builders.cpp" "CMakeFiles/smpi_core.dir/src/platform/builders.cpp.o" "gcc" "CMakeFiles/smpi_core.dir/src/platform/builders.cpp.o.d"
  "/root/repo/src/platform/platform.cpp" "CMakeFiles/smpi_core.dir/src/platform/platform.cpp.o" "gcc" "CMakeFiles/smpi_core.dir/src/platform/platform.cpp.o.d"
  "/root/repo/src/platform/platform_xml.cpp" "CMakeFiles/smpi_core.dir/src/platform/platform_xml.cpp.o" "gcc" "CMakeFiles/smpi_core.dir/src/platform/platform_xml.cpp.o.d"
  "/root/repo/src/platform/xml.cpp" "CMakeFiles/smpi_core.dir/src/platform/xml.cpp.o" "gcc" "CMakeFiles/smpi_core.dir/src/platform/xml.cpp.o.d"
  "/root/repo/src/pnet/packetnet.cpp" "CMakeFiles/smpi_core.dir/src/pnet/packetnet.cpp.o" "gcc" "CMakeFiles/smpi_core.dir/src/pnet/packetnet.cpp.o.d"
  "/root/repo/src/sim/calendar.cpp" "CMakeFiles/smpi_core.dir/src/sim/calendar.cpp.o" "gcc" "CMakeFiles/smpi_core.dir/src/sim/calendar.cpp.o.d"
  "/root/repo/src/sim/context.cpp" "CMakeFiles/smpi_core.dir/src/sim/context.cpp.o" "gcc" "CMakeFiles/smpi_core.dir/src/sim/context.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "CMakeFiles/smpi_core.dir/src/sim/engine.cpp.o" "gcc" "CMakeFiles/smpi_core.dir/src/sim/engine.cpp.o.d"
  "/root/repo/src/smpi/coll.cpp" "CMakeFiles/smpi_core.dir/src/smpi/coll.cpp.o" "gcc" "CMakeFiles/smpi_core.dir/src/smpi/coll.cpp.o.d"
  "/root/repo/src/smpi/comm.cpp" "CMakeFiles/smpi_core.dir/src/smpi/comm.cpp.o" "gcc" "CMakeFiles/smpi_core.dir/src/smpi/comm.cpp.o.d"
  "/root/repo/src/smpi/datatype.cpp" "CMakeFiles/smpi_core.dir/src/smpi/datatype.cpp.o" "gcc" "CMakeFiles/smpi_core.dir/src/smpi/datatype.cpp.o.d"
  "/root/repo/src/smpi/op.cpp" "CMakeFiles/smpi_core.dir/src/smpi/op.cpp.o" "gcc" "CMakeFiles/smpi_core.dir/src/smpi/op.cpp.o.d"
  "/root/repo/src/smpi/p2p.cpp" "CMakeFiles/smpi_core.dir/src/smpi/p2p.cpp.o" "gcc" "CMakeFiles/smpi_core.dir/src/smpi/p2p.cpp.o.d"
  "/root/repo/src/smpi/sample.cpp" "CMakeFiles/smpi_core.dir/src/smpi/sample.cpp.o" "gcc" "CMakeFiles/smpi_core.dir/src/smpi/sample.cpp.o.d"
  "/root/repo/src/smpi/shared.cpp" "CMakeFiles/smpi_core.dir/src/smpi/shared.cpp.o" "gcc" "CMakeFiles/smpi_core.dir/src/smpi/shared.cpp.o.d"
  "/root/repo/src/smpi/world.cpp" "CMakeFiles/smpi_core.dir/src/smpi/world.cpp.o" "gcc" "CMakeFiles/smpi_core.dir/src/smpi/world.cpp.o.d"
  "/root/repo/src/surf/cpu.cpp" "CMakeFiles/smpi_core.dir/src/surf/cpu.cpp.o" "gcc" "CMakeFiles/smpi_core.dir/src/surf/cpu.cpp.o.d"
  "/root/repo/src/surf/maxmin.cpp" "CMakeFiles/smpi_core.dir/src/surf/maxmin.cpp.o" "gcc" "CMakeFiles/smpi_core.dir/src/surf/maxmin.cpp.o.d"
  "/root/repo/src/surf/network.cpp" "CMakeFiles/smpi_core.dir/src/surf/network.cpp.o" "gcc" "CMakeFiles/smpi_core.dir/src/surf/network.cpp.o.d"
  "/root/repo/src/surf/piecewise.cpp" "CMakeFiles/smpi_core.dir/src/surf/piecewise.cpp.o" "gcc" "CMakeFiles/smpi_core.dir/src/surf/piecewise.cpp.o.d"
  "/root/repo/src/util/check.cpp" "CMakeFiles/smpi_core.dir/src/util/check.cpp.o" "gcc" "CMakeFiles/smpi_core.dir/src/util/check.cpp.o.d"
  "/root/repo/src/util/log.cpp" "CMakeFiles/smpi_core.dir/src/util/log.cpp.o" "gcc" "CMakeFiles/smpi_core.dir/src/util/log.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "CMakeFiles/smpi_core.dir/src/util/rng.cpp.o" "gcc" "CMakeFiles/smpi_core.dir/src/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "CMakeFiles/smpi_core.dir/src/util/stats.cpp.o" "gcc" "CMakeFiles/smpi_core.dir/src/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "CMakeFiles/smpi_core.dir/src/util/table.cpp.o" "gcc" "CMakeFiles/smpi_core.dir/src/util/table.cpp.o.d"
  "/root/repo/src/util/units.cpp" "CMakeFiles/smpi_core.dir/src/util/units.cpp.o" "gcc" "CMakeFiles/smpi_core.dir/src/util/units.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
