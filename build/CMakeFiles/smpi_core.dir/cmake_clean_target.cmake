file(REMOVE_RECURSE
  "libsmpi_core.a"
)
