# Empty dependencies file for smpi_core.
# This may be replaced when dependencies are built.
