file(REMOVE_RECURSE
  "CMakeFiles/fig11_alltoall_perprocess.dir/bench/fig11_alltoall_perprocess.cpp.o"
  "CMakeFiles/fig11_alltoall_perprocess.dir/bench/fig11_alltoall_perprocess.cpp.o.d"
  "fig11_alltoall_perprocess"
  "fig11_alltoall_perprocess.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_alltoall_perprocess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
