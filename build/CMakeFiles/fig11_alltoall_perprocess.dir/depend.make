# Empty dependencies file for fig11_alltoall_perprocess.
# This may be replaced when dependencies are built.
