file(REMOVE_RECURSE
  "CMakeFiles/test_smpi_extensions.dir/tests/test_smpi_extensions.cpp.o"
  "CMakeFiles/test_smpi_extensions.dir/tests/test_smpi_extensions.cpp.o.d"
  "test_smpi_extensions"
  "test_smpi_extensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_smpi_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
