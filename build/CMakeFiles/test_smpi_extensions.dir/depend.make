# Empty dependencies file for test_smpi_extensions.
# This may be replaced when dependencies are built.
