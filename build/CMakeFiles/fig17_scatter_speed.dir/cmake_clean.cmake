file(REMOVE_RECURSE
  "CMakeFiles/fig17_scatter_speed.dir/bench/fig17_scatter_speed.cpp.o"
  "CMakeFiles/fig17_scatter_speed.dir/bench/fig17_scatter_speed.cpp.o.d"
  "fig17_scatter_speed"
  "fig17_scatter_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_scatter_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
