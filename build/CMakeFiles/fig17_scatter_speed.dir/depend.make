# Empty dependencies file for fig17_scatter_speed.
# This may be replaced when dependencies are built.
