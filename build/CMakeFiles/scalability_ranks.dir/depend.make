# Empty dependencies file for scalability_ranks.
# This may be replaced when dependencies are built.
