file(REMOVE_RECURSE
  "CMakeFiles/scalability_ranks.dir/bench/scalability_ranks.cpp.o"
  "CMakeFiles/scalability_ranks.dir/bench/scalability_ranks.cpp.o.d"
  "scalability_ranks"
  "scalability_ranks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalability_ranks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
