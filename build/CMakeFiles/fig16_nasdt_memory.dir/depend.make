# Empty dependencies file for fig16_nasdt_memory.
# This may be replaced when dependencies are built.
