file(REMOVE_RECURSE
  "CMakeFiles/fig16_nasdt_memory.dir/bench/fig16_nasdt_memory.cpp.o"
  "CMakeFiles/fig16_nasdt_memory.dir/bench/fig16_nasdt_memory.cpp.o.d"
  "fig16_nasdt_memory"
  "fig16_nasdt_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_nasdt_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
