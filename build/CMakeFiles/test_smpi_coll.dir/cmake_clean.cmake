file(REMOVE_RECURSE
  "CMakeFiles/test_smpi_coll.dir/tests/test_smpi_coll.cpp.o"
  "CMakeFiles/test_smpi_coll.dir/tests/test_smpi_coll.cpp.o.d"
  "test_smpi_coll"
  "test_smpi_coll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_smpi_coll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
