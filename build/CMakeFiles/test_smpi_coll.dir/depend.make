# Empty dependencies file for test_smpi_coll.
# This may be replaced when dependencies are built.
