# Empty dependencies file for whatif_network.
# This may be replaced when dependencies are built.
