file(REMOVE_RECURSE
  "CMakeFiles/whatif_network.dir/examples/whatif_network.cpp.o"
  "CMakeFiles/whatif_network.dir/examples/whatif_network.cpp.o.d"
  "whatif_network"
  "whatif_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whatif_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
