# Empty dependencies file for nas_dt_demo.
# This may be replaced when dependencies are built.
