file(REMOVE_RECURSE
  "CMakeFiles/nas_dt_demo.dir/examples/nas_dt_demo.cpp.o"
  "CMakeFiles/nas_dt_demo.dir/examples/nas_dt_demo.cpp.o.d"
  "nas_dt_demo"
  "nas_dt_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nas_dt_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
