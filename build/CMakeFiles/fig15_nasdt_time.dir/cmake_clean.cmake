file(REMOVE_RECURSE
  "CMakeFiles/fig15_nasdt_time.dir/bench/fig15_nasdt_time.cpp.o"
  "CMakeFiles/fig15_nasdt_time.dir/bench/fig15_nasdt_time.cpp.o.d"
  "fig15_nasdt_time"
  "fig15_nasdt_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_nasdt_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
