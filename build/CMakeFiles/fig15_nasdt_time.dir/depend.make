# Empty dependencies file for fig15_nasdt_time.
# This may be replaced when dependencies are built.
