file(REMOVE_RECURSE
  "CMakeFiles/test_surf_maxmin.dir/tests/test_surf_maxmin.cpp.o"
  "CMakeFiles/test_surf_maxmin.dir/tests/test_surf_maxmin.cpp.o.d"
  "test_surf_maxmin"
  "test_surf_maxmin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_surf_maxmin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
