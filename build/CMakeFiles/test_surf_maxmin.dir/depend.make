# Empty dependencies file for test_surf_maxmin.
# This may be replaced when dependencies are built.
