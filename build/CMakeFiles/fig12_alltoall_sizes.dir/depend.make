# Empty dependencies file for fig12_alltoall_sizes.
# This may be replaced when dependencies are built.
