file(REMOVE_RECURSE
  "CMakeFiles/fig12_alltoall_sizes.dir/bench/fig12_alltoall_sizes.cpp.o"
  "CMakeFiles/fig12_alltoall_sizes.dir/bench/fig12_alltoall_sizes.cpp.o.d"
  "fig12_alltoall_sizes"
  "fig12_alltoall_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_alltoall_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
