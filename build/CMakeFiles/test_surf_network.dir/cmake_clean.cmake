file(REMOVE_RECURSE
  "CMakeFiles/test_surf_network.dir/tests/test_surf_network.cpp.o"
  "CMakeFiles/test_surf_network.dir/tests/test_surf_network.cpp.o.d"
  "test_surf_network"
  "test_surf_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_surf_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
