# Empty dependencies file for test_surf_network.
# This may be replaced when dependencies are built.
