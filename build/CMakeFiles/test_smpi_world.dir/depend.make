# Empty dependencies file for test_smpi_world.
# This may be replaced when dependencies are built.
