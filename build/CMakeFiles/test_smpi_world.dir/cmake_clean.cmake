file(REMOVE_RECURSE
  "CMakeFiles/test_smpi_world.dir/tests/test_smpi_world.cpp.o"
  "CMakeFiles/test_smpi_world.dir/tests/test_smpi_world.cpp.o.d"
  "test_smpi_world"
  "test_smpi_world.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_smpi_world.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
