# Empty dependencies file for fig09_scatter_procs.
# This may be replaced when dependencies are built.
