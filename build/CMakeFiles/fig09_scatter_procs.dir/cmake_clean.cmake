file(REMOVE_RECURSE
  "CMakeFiles/fig09_scatter_procs.dir/bench/fig09_scatter_procs.cpp.o"
  "CMakeFiles/fig09_scatter_procs.dir/bench/fig09_scatter_procs.cpp.o.d"
  "fig09_scatter_procs"
  "fig09_scatter_procs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_scatter_procs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
