file(REMOVE_RECURSE
  "CMakeFiles/test_util_units.dir/tests/test_util_units.cpp.o"
  "CMakeFiles/test_util_units.dir/tests/test_util_units.cpp.o.d"
  "test_util_units"
  "test_util_units.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
