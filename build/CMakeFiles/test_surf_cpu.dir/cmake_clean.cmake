file(REMOVE_RECURSE
  "CMakeFiles/test_surf_cpu.dir/tests/test_surf_cpu.cpp.o"
  "CMakeFiles/test_surf_cpu.dir/tests/test_surf_cpu.cpp.o.d"
  "test_surf_cpu"
  "test_surf_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_surf_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
