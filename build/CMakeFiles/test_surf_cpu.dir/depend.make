# Empty dependencies file for test_surf_cpu.
# This may be replaced when dependencies are built.
