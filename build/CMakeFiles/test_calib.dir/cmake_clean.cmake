file(REMOVE_RECURSE
  "CMakeFiles/test_calib.dir/tests/test_calib.cpp.o"
  "CMakeFiles/test_calib.dir/tests/test_calib.cpp.o.d"
  "test_calib"
  "test_calib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_calib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
