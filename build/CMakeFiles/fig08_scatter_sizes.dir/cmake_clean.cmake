file(REMOVE_RECURSE
  "CMakeFiles/fig08_scatter_sizes.dir/bench/fig08_scatter_sizes.cpp.o"
  "CMakeFiles/fig08_scatter_sizes.dir/bench/fig08_scatter_sizes.cpp.o.d"
  "fig08_scatter_sizes"
  "fig08_scatter_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_scatter_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
