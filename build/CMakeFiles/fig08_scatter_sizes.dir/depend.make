# Empty dependencies file for fig08_scatter_sizes.
# This may be replaced when dependencies are built.
