file(REMOVE_RECURSE
  "CMakeFiles/fig04_pingpong_gdx.dir/bench/fig04_pingpong_gdx.cpp.o"
  "CMakeFiles/fig04_pingpong_gdx.dir/bench/fig04_pingpong_gdx.cpp.o.d"
  "fig04_pingpong_gdx"
  "fig04_pingpong_gdx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_pingpong_gdx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
