# Empty dependencies file for fig04_pingpong_gdx.
# This may be replaced when dependencies are built.
