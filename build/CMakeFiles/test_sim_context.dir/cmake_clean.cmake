file(REMOVE_RECURSE
  "CMakeFiles/test_sim_context.dir/tests/test_sim_context.cpp.o"
  "CMakeFiles/test_sim_context.dir/tests/test_sim_context.cpp.o.d"
  "test_sim_context"
  "test_sim_context.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_context.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
