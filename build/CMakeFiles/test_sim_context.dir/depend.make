# Empty dependencies file for test_sim_context.
# This may be replaced when dependencies are built.
