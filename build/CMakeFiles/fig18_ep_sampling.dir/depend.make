# Empty dependencies file for fig18_ep_sampling.
# This may be replaced when dependencies are built.
