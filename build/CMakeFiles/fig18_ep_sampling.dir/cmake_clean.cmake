file(REMOVE_RECURSE
  "CMakeFiles/fig18_ep_sampling.dir/bench/fig18_ep_sampling.cpp.o"
  "CMakeFiles/fig18_ep_sampling.dir/bench/fig18_ep_sampling.cpp.o.d"
  "fig18_ep_sampling"
  "fig18_ep_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_ep_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
