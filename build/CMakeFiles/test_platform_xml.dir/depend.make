# Empty dependencies file for test_platform_xml.
# This may be replaced when dependencies are built.
