file(REMOVE_RECURSE
  "CMakeFiles/test_platform_xml.dir/tests/test_platform_xml.cpp.o"
  "CMakeFiles/test_platform_xml.dir/tests/test_platform_xml.cpp.o.d"
  "test_platform_xml"
  "test_platform_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_platform_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
