# Empty dependencies file for fig05_pingpong_3switch.
# This may be replaced when dependencies are built.
