file(REMOVE_RECURSE
  "CMakeFiles/fig05_pingpong_3switch.dir/bench/fig05_pingpong_3switch.cpp.o"
  "CMakeFiles/fig05_pingpong_3switch.dir/bench/fig05_pingpong_3switch.cpp.o.d"
  "fig05_pingpong_3switch"
  "fig05_pingpong_3switch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_pingpong_3switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
