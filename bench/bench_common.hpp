// Shared machinery for the figure-reproduction benches.
//
// Every bench binary reproduces one results figure of the paper: it builds
// the platform, runs the experiment under the SMPI flow model and (where the
// paper compares against real runs) under the packet-level ground truth with
// an OpenMPI/MPICH2 personality, and prints the same rows/series the paper
// plots, plus the logarithmic-error aggregates quoted in §7.1.
#pragma once

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "calib/calibration.hpp"
#include "platform/builders.hpp"
#include "smpi/coll.h"
#include "smpi/mpi.h"
#include "smpi/smpi.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace bench {

inline void banner(const char* figure, const char* what) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", figure, what);
  std::printf("================================================================\n");
}

// Calibrate the piece-wise/affine models on griffon exactly as §6 describes:
// SKaMPI-style ping-pong between two nodes of the calibration cluster under
// the packet-level OpenMPI ground truth.
inline smpi::calib::CalibrationResult calibrate_on_griffon() {
  auto griffon = smpi::platform::build_griffon();
  smpi::calib::PingPongOptions options;
  options.sizes = smpi::calib::PingPongOptions::default_sizes(16u << 20, 2);
  return smpi::calib::calibrate(griffon, 0, 1, smpi::calib::ground_truth_config(), options);
}

// ---------------------------------------------------------------------------
// Collective experiment runners (Figures 7-12, 17)
// ---------------------------------------------------------------------------

struct CollectiveRun {
  std::vector<double> per_rank_seconds;  // completion time at each rank
  double completion_seconds = 0;         // max over ranks
  double wall_clock_seconds = 0;         // host time spent simulating
};

inline std::vector<double>& rank_times_slot() {
  static std::vector<double> slot;
  return slot;
}

// Spread `nprocs` ranks over the platform the way a batch scheduler would
// (round-robin over all nodes), so collective traffic crosses cabinets.
inline std::vector<int> spread_placement(const smpi::platform::Platform& platform, int nprocs) {
  std::vector<int> placement;
  const int hosts = platform.host_count();
  const int stride = hosts / nprocs > 0 ? hosts / nprocs : 1;
  for (int r = 0; r < nprocs; ++r) placement.push_back((r * stride) % hosts);
  return placement;
}

// Eight nodes in gdx switch group 0 plus eight in group 2: every step of a
// pairwise exchange pushes several flows through one GbE inter-switch link
// pair — the Figure 11/12 contention scenario.
inline std::vector<int> two_rack_placement(
    const smpi::platform::HierarchicalClusterParams& params) {
  std::vector<int> placement;
  for (int k = 0; k < 8; ++k) placement.push_back(k);
  const int far = smpi::platform::first_node_of_cabinet(params, 4);
  for (int k = 0; k < 8; ++k) placement.push_back(far + k);
  return placement;
}

// Runs `body` (an MPI program region) on `nprocs` ranks and collects each
// rank's completion time of the region. `placement` empty = spread over the
// platform.
inline CollectiveRun run_collective(const smpi::platform::Platform& platform,
                                    smpi::core::SmpiConfig config, int nprocs,
                                    const std::function<void()>& body,
                                    const std::vector<int>& placement = {}) {
  config.placement = placement.empty() ? spread_placement(platform, nprocs) : placement;
  rank_times_slot().assign(static_cast<std::size_t>(nprocs), 0.0);
  const auto wall_start = std::chrono::steady_clock::now();
  smpi::core::SmpiWorld world(platform, config);
  world.run(nprocs, [&body](int, char**) {
    MPI_Init(nullptr, nullptr);
    int rank = -1;
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Barrier(MPI_COMM_WORLD);
    const double start = MPI_Wtime();
    body();
    rank_times_slot()[static_cast<std::size_t>(rank)] = MPI_Wtime() - start;
    MPI_Finalize();
  });
  CollectiveRun result;
  result.per_rank_seconds = rank_times_slot();
  for (double t : result.per_rank_seconds) {
    result.completion_seconds = std::max(result.completion_seconds, t);
  }
  result.wall_clock_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  return result;
}

// The paper's manual binomial-tree scatter (§7.1.2): root 0 scatters
// `chunk_bytes` to each of `nprocs` ranks.
inline std::function<void()> scatter_body(std::size_t chunk_bytes, int nprocs) {
  return [chunk_bytes, nprocs] {
    int rank = -1;
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    static std::vector<char> send;
    std::vector<char> recv(chunk_bytes);
    if (rank == 0) send.assign(chunk_bytes * static_cast<std::size_t>(nprocs), 'x');
    smpi::coll::scatter_binomial(rank == 0 ? send.data() : nullptr,
                                 static_cast<int>(chunk_bytes), MPI_CHAR, recv.data(),
                                 static_cast<int>(chunk_bytes), MPI_CHAR, 0, MPI_COMM_WORLD);
  };
}

// The paper's manual pairwise all-to-all (§7.1.3, Figure 10).
inline std::function<void()> alltoall_body(std::size_t block_bytes) {
  return [block_bytes] {
    int size = -1;
    MPI_Comm_size(MPI_COMM_WORLD, &size);
    std::vector<char> send(block_bytes * static_cast<std::size_t>(size), 'y');
    std::vector<char> recv(block_bytes * static_cast<std::size_t>(size));
    smpi::coll::alltoall_pairwise(send.data(), static_cast<int>(block_bytes), MPI_CHAR,
                                  recv.data(), static_cast<int>(block_bytes), MPI_CHAR,
                                  MPI_COMM_WORLD);
  };
}

inline std::string seconds_cell(double seconds) { return smpi::util::Table::num(seconds, 4); }

inline std::string pct_cell(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", fraction * 100);
  return buf;
}

inline void print_error_summary(const char* label, const smpi::util::ErrorSummary& summary) {
  std::printf("%-28s avg error %6.2f%%   worst %6.2f%%   (n=%zu)\n", label,
              summary.mean_fraction() * 100, summary.max_fraction() * 100, summary.count);
}

}  // namespace bench
