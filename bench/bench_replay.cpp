// Replay-speed benchmark: capture one online run of EP (all CPU bursts
// executed for real) and of DT, then re-simulate each trace offline, and
// compare wall-clock costs. The offline replay skips the application code,
// its memory, and every payload copy, so it must beat the online capture by
// a solid margin — the acceptance bar is >= 2x at 64 ranks, gated by
// tools/bench_trend.py on BENCH_replay.json.
//
//   BENCH_replay.json records:
//     replay_online_capture  n=<ranks>  wall_ns of the captured online run
//     replay_offline         n=<ranks>  wall_ns of replaying its trace
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <string>

#include "apps/dt.hpp"
#include "apps/ep.hpp"
#include "bench_json.hpp"
#include "platform/builders.hpp"
#include "smpi/smpi.hpp"
#include "trace/capture.hpp"
#include "trace/replay.hpp"
#include "trace/writer.hpp"

namespace {

double wall_seconds(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

struct Sample {
  double online_wall = 0;
  double replay_wall = 0;
  double online_time = 0;
  double replay_time = 0;
  long long records = 0;
};

Sample measure(const smpi::platform::Platform& platform, int nprocs,
               const smpi::core::MpiMain& app, const std::string& dir) {
  std::filesystem::remove_all(dir);
  Sample sample;
  smpi::core::SmpiConfig config;
  sample.online_wall = wall_seconds([&] {
    smpi::core::SmpiWorld world(platform, config);
    smpi::trace::TiWriter writer(dir, nprocs, "bench");
    smpi::trace::install_capture(&writer, nullptr);
    world.run(nprocs, app);
    smpi::trace::clear_capture();
    writer.finish();
    sample.online_time = world.simulated_time();
  });
  sample.replay_wall = wall_seconds([&] {
    const auto result = smpi::trace::replay_trace(platform, config, dir);
    sample.replay_time = result.simulated_time;
    sample.records = result.records;
  });
  std::filesystem::remove_all(dir);
  return sample;
}

}  // namespace

void report(bench::JsonWriter& json, const char* label, const char* op_prefix, int ranks,
            const Sample& sample) {
  const double speedup = sample.online_wall / sample.replay_wall;
  const double drift =
      sample.online_time > 0
          ? std::abs(sample.replay_time - sample.online_time) / sample.online_time
          : 0;
  std::printf("%-8s %6d %10.1fms %10.1fms %8.1fx %13.2e\n", label, ranks,
              sample.online_wall * 1e3, sample.replay_wall * 1e3, speedup, drift);
  json.add(std::string(op_prefix) + "online_capture", ranks, sample.online_wall * 1e9);
  json.add(std::string(op_prefix) + "offline", ranks, sample.replay_wall * 1e9);
}

int main() {
  bench::JsonWriter json("BENCH_replay.json");
  std::printf("%-8s %6s %12s %12s %9s %14s\n", "app", "ranks", "online-wall", "replay-wall",
              "speedup", "time-drift");

  for (int ranks : {16, 64}) {
    smpi::platform::FlatClusterParams params;
    params.nodes = ranks;
    auto platform = smpi::platform::build_flat_cluster(params);

    smpi::apps::EpParams ep;
    ep.log2_pairs = 20;  // every burst executes: the online run pays real CPU
    report(json, "ep", "replay_", ranks,
           measure(platform, ranks, smpi::apps::make_ep_app(ep), "bench_replay_ti"));
  }

  {
    // DT: communication-heavy (feature streams), class A white hole.
    smpi::apps::DtParams dt;
    dt.cls = smpi::apps::DtClass::kA;
    dt.graph = smpi::apps::DtGraph::kWhiteHole;
    const int ranks = smpi::apps::dt_process_count(dt.graph, dt.cls);
    smpi::platform::FlatClusterParams params;
    params.nodes = ranks;
    auto platform = smpi::platform::build_flat_cluster(params);
    report(json, "dt-A-WH", "replay_dt_", ranks,
           measure(platform, ranks, smpi::apps::make_dt_app(dt), "bench_replay_ti"));
  }

  json.save();
  return 0;
}
