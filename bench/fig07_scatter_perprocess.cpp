// Figure 7: per-process completion times of a binomial-tree scatter with
// 4 MiB messages over 16 processes — SMPI with contention, SMPI without
// contention (the naive model of most simulators in §2), and the OpenMPI /
// MPICH2 ground-truth personalities on the packet-level testbed.
//
// Expected shape: the no-contention model underestimates everywhere; the
// contention-aware piece-wise model tracks both MPI implementations (paper:
// ~5.3% average difference, worst ~18-20%).
#include "bench_common.hpp"

int main() {
  using namespace smpi;
  bench::banner("Figure 7", "binomial scatter, 16 processes, 4 MiB messages, per-process times");

  auto griffon = platform::build_griffon();
  const auto calibration = bench::calibrate_on_griffon();
  constexpr int kProcs = 16;
  constexpr std::size_t kChunk = 4u << 20;

  const auto smpi_run = bench::run_collective(griffon,
                                              calib::calibrated_smpi_config(
                                                  calibration.piecewise_factors()),
                                              kProcs, bench::scatter_body(kChunk, kProcs));
  const auto nocont_run = bench::run_collective(griffon,
                                                calib::no_contention_smpi_config(
                                                    calibration.piecewise_factors()),
                                                kProcs, bench::scatter_body(kChunk, kProcs));
  const auto openmpi_run = bench::run_collective(griffon, calib::ground_truth_config(), kProcs,
                                                 bench::scatter_body(kChunk, kProcs));
  const auto mpich_run = bench::run_collective(griffon, calib::ground_truth_config_mpich2(),
                                               kProcs, bench::scatter_body(kChunk, kProcs));

  util::Table table({"rank", "SMPI+contention", "SMPI no-contention", "OpenMPI", "MPICH2"});
  util::ErrorAccumulator err_smpi, err_nocont, err_impls;
  for (int r = 0; r < kProcs; ++r) {
    const auto i = static_cast<std::size_t>(r);
    if (r != 0) {  // rank 0 only copies its own block: ~0s on both sides
      err_smpi.add(smpi_run.per_rank_seconds[i], mpich_run.per_rank_seconds[i]);
      err_nocont.add(nocont_run.per_rank_seconds[i], mpich_run.per_rank_seconds[i]);
      err_impls.add(openmpi_run.per_rank_seconds[i], mpich_run.per_rank_seconds[i]);
    }
    table.add_row({std::to_string(r), bench::seconds_cell(smpi_run.per_rank_seconds[i]),
                   bench::seconds_cell(nocont_run.per_rank_seconds[i]),
                   bench::seconds_cell(openmpi_run.per_rank_seconds[i]),
                   bench::seconds_cell(mpich_run.per_rank_seconds[i])});
  }
  table.print();
  std::printf("\n");
  bench::print_error_summary("SMPI+contention vs MPICH2", err_smpi.summary());
  bench::print_error_summary("no-contention vs MPICH2", err_nocont.summary());
  bench::print_error_summary("OpenMPI vs MPICH2", err_impls.summary());
  std::printf("\npaper: SMPI-vs-MPICH2 difference ~ OpenMPI-vs-MPICH2 difference (~5.3%%);\n"
              "the no-contention model underestimates every rank.\n");
  return 0;
}
