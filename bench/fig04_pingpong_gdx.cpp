// Figure 4: ping-pong between two gdx machines under ONE switch, simulated
// with the calibration made on griffon — demonstrating that the piece-wise
// instantiation is decoupled from the compute nodes and portable across
// clusters (paper: 7.88% average error, worst 59.1%).
#include "bench_common.hpp"

int main() {
  using namespace smpi;
  bench::banner("Figure 4", "ping-pong on gdx (1 switch), calibration reused from griffon");

  const auto calib = bench::calibrate_on_griffon();
  auto gdx = platform::build_gdx();
  const auto params = platform::gdx_params();
  // Cabinets 0 and 1 share one switch: a 1-switch pair.
  const int node_a = 0;
  const int node_b = platform::first_node_of_cabinet(params, 1);
  std::printf("pair: %s <-> %s (%d switch route)\n\n", gdx.host(node_a).name.c_str(),
              gdx.host(node_b).name.c_str(), gdx.route_hop_count(node_a, node_b));

  calib::PingPongOptions options;
  options.node_a = node_a;
  options.node_b = node_b;
  options.sizes = calib::PingPongOptions::default_sizes(16u << 20, 2);
  const auto measured = calib::run_pingpong(gdx, calib::ground_truth_config(), options);
  const auto sim_default =
      calib::simulate_pingpong(gdx, node_a, node_b, calib.default_affine_factors(), options);
  const auto sim_best =
      calib::simulate_pingpong(gdx, node_a, node_b, calib.best_affine_factors(), options);
  const auto sim_piecewise =
      calib::simulate_pingpong(gdx, node_a, node_b, calib.piecewise_factors(), options);

  util::Table table({"size", "SKaMPI(us)", "default-affine", "best-fit-affine", "piece-wise"});
  util::ErrorAccumulator err_default, err_best, err_piecewise;
  for (std::size_t i = 0; i < measured.size(); ++i) {
    err_default.add(sim_default[i].one_way_seconds, measured[i].one_way_seconds);
    err_best.add(sim_best[i].one_way_seconds, measured[i].one_way_seconds);
    err_piecewise.add(sim_piecewise[i].one_way_seconds, measured[i].one_way_seconds);
    table.add_row({util::format_bytes(measured[i].bytes),
                   util::Table::num(measured[i].one_way_seconds * 1e6, 1),
                   util::Table::num(sim_default[i].one_way_seconds * 1e6, 1),
                   util::Table::num(sim_best[i].one_way_seconds * 1e6, 1),
                   util::Table::num(sim_piecewise[i].one_way_seconds * 1e6, 1)});
  }
  table.print();
  std::printf("\n");
  bench::print_error_summary("piece-wise linear", err_piecewise.summary());
  bench::print_error_summary("best-fit affine", err_best.summary());
  bench::print_error_summary("default affine", err_default.summary());
  std::printf("\npaper: piece-wise 7.88%% avg (59.1%% worst), best-fit 16.4%% (63.8%%), "
              "default 28.1%% (89.6%%).\n");
  return 0;
}
