// Campaign throughput benchmark: capture one EP trace, sweep a 31-scenario
// campaign (baseline + a 5x3x2 what-if grid) through the fork-based worker
// pool with 1 worker and with min(8, hardware) workers, and record both
// walls.
//
//   BENCH_campaign.json records:
//     campaign_sweep_1worker     n=<scenarios>  wall_ns with 1 worker
//     campaign_sweep_multiworker n=<workers>    wall_ns with n workers
//
// tools/bench_trend.py gates the machine-independent invariant: when the
// multiworker record ran with >= 4 workers, the sweep must finish >= 2x
// faster than the 1-worker run (both walls come from the same machine in
// the same run, so the ratio survives runner-generation drift; on boxes
// with < 4 cores the multiworker run degenerates and the gate stays off).
// The benchmark also asserts the correctness half of the campaign bargain:
// identical per-scenario simulated times whatever the worker count.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <string>
#include <thread>

#include "apps/ep.hpp"
#include "bench_json.hpp"
#include "campaign/runner.hpp"
#include "campaign/spec.hpp"
#include "platform/builders.hpp"
#include "smpi/smpi.hpp"
#include "trace/capture.hpp"
#include "trace/reader.hpp"
#include "trace/writer.hpp"
#include "util/json.hpp"

namespace {

double wall_seconds(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace

int main() {
  const int ranks = 16;
  const std::string dir = "bench_campaign_ti";
  std::filesystem::remove_all(dir);

  // Capture once: EP with every burst executed, the same workload as
  // bench_replay so per-scenario cost is comparable across the two files.
  {
    smpi::platform::FlatClusterParams params;
    params.nodes = ranks;
    auto platform = smpi::platform::build_flat_cluster(params);
    smpi::core::SmpiConfig config;
    smpi::core::SmpiWorld world(platform, config);
    smpi::trace::TiWriter writer(dir, ranks, "ep");
    smpi::trace::install_capture(&writer, nullptr);
    smpi::apps::EpParams ep;
    ep.log2_pairs = 20;
    world.run(ranks, smpi::apps::make_ep_app(ep));
    smpi::trace::clear_capture();
    writer.finish();
  }
  const smpi::trace::TiTrace trace = smpi::trace::load_ti_trace(dir);

  // Baseline + 5x3x2 what-ifs = 31 scenarios.
  const auto spec = smpi::campaign::CampaignSpec::parse(smpi::util::parse_json(R"({
    "name": "bench-sweep",
    "platform": {"kind": "flat", "nodes": 16},
    "axes": [
      {"param": "link_bandwidth_scale", "values": [0.25, 0.5, 1, 2, 4]},
      {"param": "host_speed_scale", "values": [1, 2, 4]},
      {"param": "link_latency_scale", "values": [1, 10]}
    ]
  })",
                                                                               "bench spec"));
  const auto scenarios = smpi::campaign::enumerate_scenarios(spec);

  const int multi = std::min(8u, std::max(1u, std::thread::hardware_concurrency()));
  smpi::campaign::CampaignOutcome serial;
  smpi::campaign::CampaignOutcome parallel;
  smpi::campaign::RunOptions options;
  options.workers = 1;
  const double serial_wall =
      wall_seconds([&] { serial = smpi::campaign::run_campaign(spec, scenarios, trace, options); });
  options.workers = multi;
  const double parallel_wall = wall_seconds(
      [&] { parallel = smpi::campaign::run_campaign(spec, scenarios, trace, options); });

  // Correctness half of the claim: worker count never changes results.
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    if (!serial.results[i].ok || !parallel.results[i].ok ||
        serial.results[i].simulated_time != parallel.results[i].simulated_time) {
      std::fprintf(stderr, "bench_campaign: scenario %zu diverged across worker counts\n", i);
      return 1;
    }
  }

  std::printf("%-10s %10s %12s %14s\n", "workers", "scenarios", "wall", "scenarios/s");
  std::printf("%-10d %10zu %10.1fms %14.1f\n", 1, scenarios.size(), serial_wall * 1e3,
              scenarios.size() / serial_wall);
  std::printf("%-10d %10zu %10.1fms %14.1f  (%.2fx)\n", multi, scenarios.size(),
              parallel_wall * 1e3, scenarios.size() / parallel_wall,
              serial_wall / parallel_wall);

  bench::JsonWriter json("BENCH_campaign.json");
  json.add("campaign_sweep_1worker", static_cast<long long>(scenarios.size()), serial_wall * 1e9);
  json.add("campaign_sweep_multiworker", multi, parallel_wall * 1e9);
  json.save();
  std::filesystem::remove_all(dir);
  return 0;
}
