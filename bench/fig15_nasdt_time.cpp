// Figure 15: execution time of the NAS DT benchmark, classes A and B, WH and
// BH variants — SMPI prediction vs the OpenMPI ground truth. The trend to
// reproduce: BH (converging, data accumulating toward one sink) costs more
// than WH (diverging), with strong confidence, and SMPI predicts it (paper:
// 8.11% average error, worst 23.5%).
//
// Feature lengths are scaled down (identically for both sides) so the
// packet-level ground truth completes quickly; see DESIGN.md §7.
#include "apps/dt.hpp"
#include "bench_common.hpp"

int main() {
  using namespace smpi;
  bench::banner("Figure 15", "NAS DT execution time, classes A-B x {WH, BH}");

  auto griffon = platform::build_griffon();
  const auto calibration = bench::calibrate_on_griffon();
  constexpr double kScale = 1.0 / 8;  // documented workload scaling

  util::Table table({"class", "graph", "procs", "SMPI(s)", "OpenMPI(s)", "error"});
  util::ErrorAccumulator err;
  for (const auto cls : {apps::DtClass::kA, apps::DtClass::kB}) {
    for (const auto graph : {apps::DtGraph::kWhiteHole, apps::DtGraph::kBlackHole}) {
      apps::DtParams params;
      params.graph = graph;
      params.cls = cls;
      params.scale = kScale;
      const int procs = apps::dt_process_count(graph, cls);

      auto run_dt = [&](core::SmpiConfig config) {
        config.placement = bench::spread_placement(griffon, procs);
        smpi::core::SmpiWorld world(griffon, config);
        world.run(procs, apps::make_dt_app(params));
        return world.simulated_time();
      };
      const double t_smpi =
          run_dt(calib::calibrated_smpi_config(calibration.piecewise_factors()));
      const double t_real = run_dt(calib::ground_truth_config());
      err.add(t_smpi, t_real);
      table.add_row({std::string(1, apps::dt_class_name(cls)), apps::dt_graph_name(graph),
                     std::to_string(procs), bench::seconds_cell(t_smpi),
                     bench::seconds_cell(t_real),
                     bench::pct_cell(util::log_error_as_fraction(
                         util::log_error(t_smpi, t_real)))});
    }
  }
  table.print();
  std::printf("\n");
  bench::print_error_summary("SMPI vs OpenMPI", err.summary());
  std::printf("\npaper: 8.11%% average error (worst 23.5%% on class A BH); BH > WH with\n"
              "strong confidence. Getting these four numbers with OpenMPI required 43\n"
              "real nodes; SMPI produced them on one.\n");
  return 0;
}
