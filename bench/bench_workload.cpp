// Workload generator throughput: compile a stencil2d workload spec to TI
// records and replay it, at 64 / 256 / 1024 ranks.
//
//   BENCH_workload.json records:
//     workload_generate n=<ranks>  wall_ns of generate_workload
//     workload_replay   n=<ranks>  wall_ns of replaying the generated trace
//
// tools/bench_trend.py gates the machine-independent invariant: at
// n >= 256 generation must not cost more than the replay it feeds — the
// generator exists so that scenario *setup* is negligible next to scenario
// *simulation*; both walls come from the same run on the same machine.
// The absolute fresh-vs-baseline 2x tripwire applies per series as usual.
#include <chrono>
#include <cstdio>
#include <functional>

#include "bench_json.hpp"
#include "platform/builders.hpp"
#include "smpi/smpi.hpp"
#include "trace/reader.hpp"
#include "trace/replay.hpp"
#include "util/json.hpp"
#include "workload/generate.hpp"
#include "workload/spec.hpp"

namespace {

double wall_seconds(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

smpi::workload::WorkloadSpec stencil_spec(int ranks) {
  auto doc = smpi::util::parse_json(R"({
    "name": "bench-stencil",
    "ranks": )" + std::to_string(ranks) + R"(,
    "seed": 42,
    "pattern": "stencil2d",
    "iterations": 3,
    "bytes": 16384,
    "compute": {"flops": 1e6, "imbalance": 0.2, "jitter": 0.05}
  })",
                                    "bench workload");
  return smpi::workload::WorkloadSpec::parse(doc);
}

}  // namespace

int main() {
  bench::JsonWriter json("BENCH_workload.json");
  std::printf("%-8s %10s %14s %14s %12s\n", "ranks", "records", "generate", "replay",
              "sim time");

  for (const int ranks : {64, 256, 1024}) {
    const auto spec = stencil_spec(ranks);
    smpi::trace::TiTrace trace;
    const double generate_wall =
        wall_seconds([&] { trace = smpi::workload::generate_workload(spec); });

    smpi::platform::FlatClusterParams params;
    params.nodes = ranks;
    const auto platform = smpi::platform::build_flat_cluster(params);
    smpi::trace::ReplayResult result;
    const double replay_wall = wall_seconds(
        [&] { result = smpi::trace::replay_trace(platform, smpi::core::SmpiConfig{}, trace, {}); });

    std::printf("%-8d %10lld %12.2fms %12.2fms %10.6fs\n", ranks, trace.total_records(),
                generate_wall * 1e3, replay_wall * 1e3, result.simulated_time);
    json.add("workload_generate", ranks, generate_wall * 1e9);
    json.add("workload_replay", ranks, replay_wall * 1e9);
  }
  json.save();
  return 0;
}
