// Ablation of the design choices DESIGN.md calls out:
//   (a) piece-wise segment count (1 = affine .. 4) vs ping-pong accuracy —
//       why the paper settles on 3 segments / 8 parameters (§4.1);
//   (b) contention modeling on/off vs all-to-all accuracy (§4.2);
//   (c) the TCP window bound's effect on a long (3-switch) route.
#include "bench_common.hpp"

int main() {
  using namespace smpi;
  bench::banner("Ablation", "model ingredients vs accuracy");

  auto griffon = platform::build_griffon();
  calib::PingPongOptions options;
  options.sizes = calib::PingPongOptions::default_sizes(16u << 20, 2);
  const auto measured = [&] {
    calib::PingPongOptions opts = options;
    opts.node_a = 0;
    opts.node_b = 1;
    return calib::run_pingpong(griffon, calib::ground_truth_config(), opts);
  }();

  // (a) segment count sweep.
  std::printf("(a) piece-wise segment count vs ping-pong accuracy (griffon pair):\n");
  util::Table seg_table({"segments", "params", "avg error", "worst error"});
  for (int segments = 1; segments <= 4; ++segments) {
    const auto model = calib::fit_piecewise(measured, segments);
    const auto err = calib::evaluate_model(model, measured);
    seg_table.add_row({std::to_string(segments), std::to_string(model.parameter_count()),
                       bench::pct_cell(err.mean_fraction()), bench::pct_cell(err.max_fraction())});
  }
  seg_table.print();
  std::printf("    (3 segments buy most of the accuracy — the paper's choice.)\n\n");

  const auto calibration = bench::calibrate_on_griffon();

  // (b) contention on/off for the all-to-all, on the two-rack gdx scenario
  // where flows really do share the inter-switch GbE links (cf. Figure 11).
  std::printf("(b) contention modeling, pairwise all-to-all 16 x 1MiB (two gdx racks):\n");
  auto gdx_b = platform::build_gdx();
  const auto placement = bench::two_rack_placement(platform::gdx_params());
  const auto real_run = bench::run_collective(gdx_b, calib::ground_truth_config(), 16,
                                              bench::alltoall_body(1u << 20), placement);
  const auto with_run = bench::run_collective(gdx_b,
                                              calib::calibrated_smpi_config(
                                                  calibration.piecewise_factors()),
                                              16, bench::alltoall_body(1u << 20), placement);
  const auto without_run = bench::run_collective(gdx_b,
                                                 calib::no_contention_smpi_config(
                                                     calibration.piecewise_factors()),
                                                 16, bench::alltoall_body(1u << 20), placement);
  util::Table cont_table({"model", "completion(s)", "error vs ground truth"});
  cont_table.add_row({"ground truth", bench::seconds_cell(real_run.completion_seconds), "-"});
  cont_table.add_row({"with contention", bench::seconds_cell(with_run.completion_seconds),
                      bench::pct_cell(util::log_error_as_fraction(util::log_error(
                          with_run.completion_seconds, real_run.completion_seconds)))});
  cont_table.add_row({"no contention", bench::seconds_cell(without_run.completion_seconds),
                      bench::pct_cell(util::log_error_as_fraction(util::log_error(
                          without_run.completion_seconds, real_run.completion_seconds)))});
  cont_table.print();
  std::printf("\n");

  // (c) TCP window bound on a long route.
  std::printf("(c) TCP congestion-window bound, 4MiB transfer across 3 gdx switches:\n");
  auto gdx = platform::build_gdx();
  const auto params = platform::gdx_params();
  const int far_node = platform::first_node_of_cabinet(params, 2);
  util::Table win_table({"window", "predicted transfer(s)"});
  for (const double window : {0.0, 8.0 * 1024, 32.0 * 1024, 4.0 * 1024 * 1024}) {
    core::SmpiConfig config = calib::calibrated_smpi_config(calibration.piecewise_factors());
    config.network.tcp_window_bytes = window;
    sim::Engine engine;
    surf::FlowNetworkModel net(gdx, config.network);
    const double duration = net.uncontended_duration(0, far_node, 4.0 * (1 << 20));
    win_table.add_row({window == 0 ? "off" : util::format_bytes(static_cast<std::uint64_t>(window)),
                       bench::seconds_cell(duration)});
  }
  win_table.print();
  std::printf("    (a window below the route's bandwidth-delay product throttles the\n"
              "    transfer; the default 4MiB never binds on LAN-scale paths.)\n");
  return 0;
}
