// Resource-observability overhead benchmark: replay the same generated
// stencil workload with the ResourceCollector detached and attached, at 64
// and 256 ranks, and record both wall clocks. tools/bench_trend.py gates the
// ratio machine-independently: enabled <= 1.4x disabled at every rank count.
// The measured cost on this contention-heavy hierarchical workload is ~1.25x:
// nearly every snapshot stores a real timeline step (~34.9k steps from 37k
// snapshots at 256 ranks), so the overhead is exact-data capture at roughly
// 0.15us/snapshot against a ~2us/record replay hot path — the gate exists to
// catch regressions (allocation storms, accidental quadratic folds), not to
// pretend the ledger is free.
//
//   BENCH_resource.json records:
//     resource_disabled  n=<ranks>  wall_ns of the plain replay
//     resource_enabled   n=<ranks>  wall_ns with the collector attached
#include <chrono>
#include <cstdio>
#include <functional>

#include "bench_json.hpp"
#include "obs/resource.hpp"
#include "platform/builders.hpp"
#include "smpi/smpi.hpp"
#include "trace/reader.hpp"
#include "trace/replay.hpp"
#include "workload/generate.hpp"
#include "workload/spec.hpp"

namespace {

double wall_seconds(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

smpi::trace::TiTrace stencil_trace(int ranks) {
  smpi::workload::WorkloadSpec spec;
  spec.name = "bench-resource";
  spec.ranks = ranks;
  spec.seed = 42;
  smpi::workload::PhaseSpec phase;
  phase.pattern = smpi::workload::Pattern::kStencil2d;
  phase.iterations = 8;
  phase.bytes = {16384};
  phase.compute.flops = 1e5;
  phase.compute.imbalance = 0.2;
  spec.phases.push_back(phase);
  return smpi::workload::generate_workload(spec);
}

smpi::platform::Platform cluster(int nodes) {
  // Hierarchical: cross-cabinet traffic funnels through shared uplinks, so
  // the solver works on real multi-link contention sets — the scenario the
  // bottleneck ledger exists for, and the representative cost baseline.
  smpi::platform::HierarchicalClusterParams params;
  params.cabinet_sizes = {nodes / 2, nodes / 2};
  return smpi::platform::build_hierarchical_cluster(params);
}

}  // namespace

int main() {
  bench::JsonWriter json("BENCH_resource.json");
  std::printf("%-8s %8s %14s %14s %10s %12s\n", "ranks", "records", "disabled", "enabled",
              "overhead", "snapshots");
  for (int ranks : {64, 256}) {
    const smpi::trace::TiTrace trace = stencil_trace(ranks);
    const smpi::platform::Platform platform = cluster(ranks);
    const smpi::core::SmpiConfig config;
    // Warm-up replay so page faults and allocator growth don't land on the
    // first measured run.
    smpi::trace::replay_trace(platform, config, trace);

    // Best of three per mode: one replay is short enough that scheduler
    // noise would otherwise dominate the ratio the trend gate checks.
    long long records = 0;
    double disabled = 0;
    double enabled = 0;
    std::size_t snapshots = 0;
    for (int run = 0; run < 3; ++run) {
      const double plain = wall_seconds([&] {
        const auto result = smpi::trace::replay_trace(platform, config, trace);
        records = result.records;
      });
      if (run == 0 || plain < disabled) disabled = plain;
      smpi::obs::ResourceCollector resources;
      smpi::trace::ReplayOptions options;
      options.resources = &resources;
      const double observed = wall_seconds([&] {
        smpi::trace::replay_trace(platform, config, trace, options);
      });
      if (run == 0 || observed < enabled) enabled = observed;
      snapshots = resources.snapshot_count();
    }

    std::printf("%-8d %8lld %12.2fms %12.2fms %9.3fx %12zu\n", ranks, records,
                disabled * 1e3, enabled * 1e3, enabled / disabled, snapshots);
    json.add("resource_disabled", ranks, disabled * 1e9);
    json.add("resource_enabled", ranks, enabled * 1e9);
  }
  return json.save() ? 0 : 1;
}
