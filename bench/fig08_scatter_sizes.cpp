// Figure 8: accuracy of the binomial scatter simulation as a function of
// message size (16 processes). The paper finds the simulation accurate
// (under ~10% error) above ~10 KiB and optimistic for small messages, where
// the fluid contention model amortizes per-packet serialization it cannot
// see.
#include "bench_common.hpp"

int main() {
  using namespace smpi;
  bench::banner("Figure 8", "binomial scatter accuracy vs message size, 16 processes");

  auto griffon = platform::build_griffon();
  const auto calibration = bench::calibrate_on_griffon();
  constexpr int kProcs = 16;

  util::Table table({"chunk", "SMPI(s)", "OpenMPI(s)", "error"});
  util::ErrorAccumulator err_small, err_large, err_all;
  for (std::size_t chunk = 1; chunk <= (4u << 20); chunk *= 8) {
    const auto smpi_run = bench::run_collective(griffon,
                                                calib::calibrated_smpi_config(
                                                    calibration.piecewise_factors()),
                                                kProcs, bench::scatter_body(chunk, kProcs));
    const auto real_run = bench::run_collective(griffon, calib::ground_truth_config(), kProcs,
                                                bench::scatter_body(chunk, kProcs));
    const double err =
        util::log_error(smpi_run.completion_seconds, real_run.completion_seconds);
    (chunk >= 10 * 1024 ? err_large : err_small).add(smpi_run.completion_seconds,
                                                     real_run.completion_seconds);
    err_all.add(smpi_run.completion_seconds, real_run.completion_seconds);
    table.add_row({util::format_bytes(chunk), bench::seconds_cell(smpi_run.completion_seconds),
                   bench::seconds_cell(real_run.completion_seconds),
                   bench::pct_cell(util::log_error_as_fraction(err))});
  }
  table.print();
  std::printf("\n");
  bench::print_error_summary("all sizes", err_all.summary());
  bench::print_error_summary("sizes >= 10KiB", err_large.summary());
  bench::print_error_summary("sizes < 10KiB", err_small.summary());
  std::printf("\npaper: under 10%% error above ~10KiB; small messages underestimated\n"
              "(continuous-flow approximation of a discrete per-packet phenomenon).\n");
  return 0;
}
