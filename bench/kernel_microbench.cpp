// Micro-costs of the simulation kernel (google-benchmark): the pieces whose
// speed makes single-node on-line simulation viable — context switches, the
// max-min solver, the event loop, piece-wise lookup, platform construction.
// These back the §5.1 design argument (sequential kernel + analytical models
// => fast and scalable).
#include <benchmark/benchmark.h>

#include "platform/builders.hpp"
#include "platform/platform_xml.hpp"
#include "sim/context.hpp"
#include "sim/engine.hpp"
#include "surf/maxmin.hpp"
#include "surf/piecewise.hpp"
#include "util/rng.hpp"

namespace {

void BM_ContextSwitch(benchmark::State& state, const char* backend) {
  auto factory = smpi::sim::ContextFactory::make(backend, 64 * 1024);
  smpi::sim::Context* self = nullptr;
  bool stop = false;
  auto ctx = factory->create([&] {
    while (!stop) self->suspend();
  });
  self = ctx.get();
  for (auto _ : state) {
    ctx->resume();  // one round-trip = 2 context switches
  }
  stop = true;
  ctx->resume();
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK_CAPTURE(BM_ContextSwitch, ucontext, "ucontext");
BENCHMARK_CAPTURE(BM_ContextSwitch, thread, "thread");

void BM_MaxMinSolve(benchmark::State& state) {
  const auto flows = static_cast<int>(state.range(0));
  smpi::util::Xoshiro256StarStar rng(42);
  smpi::surf::MaxMinSystem sys;
  const int links = 64;
  std::vector<int> constraints;
  for (int c = 0; c < links; ++c) constraints.push_back(sys.new_constraint(1e8));
  std::vector<int> vars;
  for (int f = 0; f < flows; ++f) {
    const int v = sys.new_variable(1.0, 1.25e8);
    // 3-hop routes over random links.
    for (int k = 0; k < 3; ++k) {
      sys.attach(v, constraints[rng.next_in_range(0, links - 1)]);
    }
    vars.push_back(v);
  }
  int toggle = 0;
  for (auto _ : state) {
    // Perturb one bound to dirty the system, then re-solve — the pattern a
    // flow arrival/departure produces.
    sys.set_bound(vars[static_cast<std::size_t>(toggle % flows)], 1e8 + toggle % 7);
    ++toggle;
    sys.solve();
    benchmark::DoNotOptimize(sys.value(vars[0]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MaxMinSolve)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_EngineTimerChurn(benchmark::State& state) {
  for (auto _ : state) {
    smpi::sim::Engine engine;
    engine.spawn("a", 0, [&engine] {
      for (int i = 0; i < 1000; ++i) engine.sleep_for(0.001);
    });
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EngineTimerChurn);

void BM_PiecewiseLookup(benchmark::State& state) {
  smpi::surf::PiecewiseFactors factors(
      {{1500.0, 10.0, 1.2}, {65536.0, 4.0, 0.9}, {std::numeric_limits<double>::infinity(), 2.0, 0.92}});
  double size = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(factors.bw_factor(size));
    size = size > 1e7 ? 1 : size * 1.7;
  }
}
BENCHMARK(BM_PiecewiseLookup);

void BM_BuildGriffon(benchmark::State& state) {
  for (auto _ : state) {
    auto platform = smpi::platform::build_griffon();
    benchmark::DoNotOptimize(platform.host_count());
  }
}
BENCHMARK(BM_BuildGriffon);

void BM_XmlParsePlatform(benchmark::State& state) {
  const std::string doc = R"(<platform version="4">
    <cluster id="c" prefix="node-" radical="0-63" speed="10Gf" cores="8"
             bw="1Gbps" lat="50us"/>
  </platform>)";
  for (auto _ : state) {
    auto platform = smpi::platform::load_platform_from_string(doc);
    benchmark::DoNotOptimize(platform.host_count());
  }
}
BENCHMARK(BM_XmlParsePlatform);

}  // namespace

BENCHMARK_MAIN();
