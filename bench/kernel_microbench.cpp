// Micro-costs of the simulation kernel (google-benchmark): the pieces whose
// speed makes single-node on-line simulation viable — context switches, the
// max-min solver, the event loop, piece-wise lookup, platform construction.
// These back the §5.1 design argument (sequential kernel + analytical models
// => fast and scalable).
//
// Besides the google-benchmark tables, main() emits BENCH_solver.json with
// the incremental-vs-full solver churn trajectory (see bench_json.hpp).
#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_json.hpp"
#include "platform/builders.hpp"
#include "platform/platform_xml.hpp"
#include "sim/context.hpp"
#include "sim/engine.hpp"
#include "surf/maxmin.hpp"
#include "surf/piecewise.hpp"
#include "util/rng.hpp"

namespace {

void BM_ContextSwitch(benchmark::State& state, const char* backend) {
  auto factory = smpi::sim::ContextFactory::make(backend, 64 * 1024);
  smpi::sim::Context* self = nullptr;
  bool stop = false;
  auto ctx = factory->create([&] {
    while (!stop) self->suspend();
  });
  self = ctx.get();
  for (auto _ : state) {
    ctx->resume();  // one round-trip = 2 context switches
  }
  stop = true;
  ctx->resume();
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK_CAPTURE(BM_ContextSwitch, raw, "raw");
BENCHMARK_CAPTURE(BM_ContextSwitch, ucontext, "ucontext");
BENCHMARK_CAPTURE(BM_ContextSwitch, thread, "thread");

void BM_MaxMinSolve(benchmark::State& state) {
  const auto flows = static_cast<int>(state.range(0));
  smpi::util::Xoshiro256StarStar rng(42);
  smpi::surf::MaxMinSystem sys;
  const int links = 64;
  std::vector<int> constraints;
  for (int c = 0; c < links; ++c) constraints.push_back(sys.new_constraint(1e8));
  std::vector<int> vars;
  for (int f = 0; f < flows; ++f) {
    const int v = sys.new_variable(1.0, 1.25e8);
    // 3-hop routes over random links.
    for (int k = 0; k < 3; ++k) {
      sys.attach(v, constraints[rng.next_in_range(0, links - 1)]);
    }
    vars.push_back(v);
  }
  int toggle = 0;
  for (auto _ : state) {
    // Perturb one bound to dirty the system, then re-solve — the pattern a
    // flow arrival/departure produces.
    sys.set_bound(vars[static_cast<std::size_t>(toggle % flows)], 1e8 + toggle % 7);
    ++toggle;
    sys.solve();
    benchmark::DoNotOptimize(sys.value(vars[0]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MaxMinSolve)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

// The engine hot path under MPI traffic: one flow finishes, another starts,
// the solver re-solves. Links are modeled as per-node up/down pairs plus a
// generously-provisioned shared backbone every flow crosses — the
// cluster-with-a-switch-fabric shape real platforms have. The backbone
// welds the whole system into ONE connected component, so the
// component-incremental path re-solves everything on every churn while the
// lazy modified-set path stops at the unsaturated backbone and re-solves
// only the flows whose allocation can actually move.
struct ChurnWorkload {
  explicit ChurnWorkload(int flows, smpi::surf::SolveMode mode) : rng(42), nodes(flows) {
    sys.set_mode(mode);
    backbone = sys.new_constraint(static_cast<double>(flows) * 2e8);
    for (int n = 0; n < 2 * nodes; ++n) links.push_back(sys.new_constraint(1e8));
    for (int f = 0; f < flows; ++f) active.push_back(make_flow());
    sys.solve();
  }

  int make_flow() {
    const int src = static_cast<int>(rng.next_in_range(0, static_cast<std::uint64_t>(nodes) - 1));
    int dst = src;
    while (dst == src) {
      dst = static_cast<int>(rng.next_in_range(0, static_cast<std::uint64_t>(nodes) - 1));
    }
    const int v = sys.new_variable(1.0, 1.25e8);
    sys.attach(v, links[static_cast<std::size_t>(2 * src)]);      // src uplink
    sys.attach(v, links[static_cast<std::size_t>(2 * dst + 1)]);  // dst downlink
    sys.attach(v, backbone);                                      // shared fabric
    return v;
  }

  void churn() {
    const auto idx = static_cast<std::size_t>(rng.next_in_range(0, active.size() - 1));
    sys.release_variable(active[idx]);
    active[idx] = make_flow();
    sys.solve();
  }

  smpi::util::Xoshiro256StarStar rng;
  int nodes;
  smpi::surf::MaxMinSystem sys;
  int backbone = -1;
  std::vector<int> links;
  std::vector<int> active;
};

void BM_MaxMinChurn(benchmark::State& state, smpi::surf::SolveMode mode) {
  ChurnWorkload workload(static_cast<int>(state.range(0)), mode);
  for (auto _ : state) {
    workload.churn();
    benchmark::DoNotOptimize(workload.sys.value(workload.active[0]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_MaxMinChurn, lazy, smpi::surf::SolveMode::kLazy)
    ->Arg(16)->Arg(128)->Arg(1024);
BENCHMARK_CAPTURE(BM_MaxMinChurn, incremental, smpi::surf::SolveMode::kComponent)
    ->Arg(16)->Arg(128)->Arg(1024);
BENCHMARK_CAPTURE(BM_MaxMinChurn, full, smpi::surf::SolveMode::kFull)
    ->Arg(16)->Arg(128)->Arg(1024);

void BM_EngineTimerChurn(benchmark::State& state) {
  for (auto _ : state) {
    smpi::sim::Engine engine;
    engine.spawn("a", 0, [&engine] {
      for (int i = 0; i < 1000; ++i) engine.sleep_for(0.001);
    });
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EngineTimerChurn);

void BM_PiecewiseLookup(benchmark::State& state) {
  smpi::surf::PiecewiseFactors factors(
      {{1500.0, 10.0, 1.2}, {65536.0, 4.0, 0.9}, {std::numeric_limits<double>::infinity(), 2.0, 0.92}});
  double size = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(factors.bw_factor(size));
    size = size > 1e7 ? 1 : size * 1.7;
  }
}
BENCHMARK(BM_PiecewiseLookup);

void BM_BuildGriffon(benchmark::State& state) {
  for (auto _ : state) {
    auto platform = smpi::platform::build_griffon();
    benchmark::DoNotOptimize(platform.host_count());
  }
}
BENCHMARK(BM_BuildGriffon);

void BM_XmlParsePlatform(benchmark::State& state) {
  const std::string doc = R"(<platform version="4">
    <cluster id="c" prefix="node-" radical="0-63" speed="10Gf" cores="8"
             bw="1Gbps" lat="50us"/>
  </platform>)";
  for (auto _ : state) {
    auto platform = smpi::platform::load_platform_from_string(doc);
    benchmark::DoNotOptimize(platform.host_count());
  }
}
BENCHMARK(BM_XmlParsePlatform);

// Perf-trajectory artifact: ns per churn op (flow departure + arrival +
// re-solve) for all three solver paths, across concurrent flow counts.
void write_solver_trajectory() {
  struct Series {
    const char* name;
    smpi::surf::SolveMode mode;
  };
  const Series series[] = {
      {"solver_churn_lazy", smpi::surf::SolveMode::kLazy},
      {"solver_churn_incremental", smpi::surf::SolveMode::kComponent},
      {"solver_churn_full", smpi::surf::SolveMode::kFull},
  };
  bench::JsonWriter writer("BENCH_solver.json");
  for (const int flows : {16, 64, 128, 256, 512, 1024}) {
    for (const auto& s : series) {
      ChurnWorkload workload(flows, s.mode);
      const int warmup = 32;
      for (int i = 0; i < warmup; ++i) workload.churn();
      const int iterations = 256;
      const auto start = std::chrono::steady_clock::now();
      for (int i = 0; i < iterations; ++i) workload.churn();
      const auto elapsed = std::chrono::steady_clock::now() - start;
      const double ns_per_op =
          std::chrono::duration<double, std::nano>(elapsed).count() / iterations;
      writer.add(s.name, flows, ns_per_op);
    }
  }
  writer.save();
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_solver_trajectory();
  return 0;
}
