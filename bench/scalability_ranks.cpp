// §7.2 scalability: how far does single-node on-line simulation stretch?
// Simulates collectives over growing process counts (up to 1024 ranks — well
// past the paper's 448-process DT-SH class C) and reports the host wall-clock
// and memory-light footprint of the simulation itself.
#include <chrono>

#include "bench_common.hpp"
#include "bench_json.hpp"

int main() {
  using namespace smpi;
  bench::banner("Scalability", "single-node simulation up to 1024 ranks (§7.2)");

  bench::JsonWriter writer("BENCH_ranks.json");
  util::Table table({"ranks", "collective", "simulated(s)", "wall-clock(s)", "sim/simulated"});
  for (const int ranks : {64, 128, 256, 448, 1024}) {
    platform::FlatClusterParams params;
    params.nodes = ranks;
    auto platform = platform::build_flat_cluster(params);
    struct Case {
      const char* name;
      std::function<void()> body;
    };
    const Case cases[] = {
        {"barrier x8",
         [] {
           for (int i = 0; i < 8; ++i) MPI_Barrier(MPI_COMM_WORLD);
         }},
        {"bcast 1MiB",
         [] {
           static std::vector<char> buf;
           buf.assign(1 << 20, 'b');
           MPI_Bcast(buf.data(), 1 << 20, MPI_CHAR, 0, MPI_COMM_WORLD);
         }},
        {"allreduce 4KiB",
         [] {
           std::vector<double> in(512, 1.0), out(512);
           MPI_Allreduce(in.data(), out.data(), 512, MPI_DOUBLE, MPI_SUM, MPI_COMM_WORLD);
         }},
    };
    for (const auto& test_case : cases) {
      core::SmpiConfig config;
      config.engine.stack_bytes = 256 * 1024;  // 1024 fibers fit comfortably
      const auto run = bench::run_collective(platform, config, ranks, test_case.body);
      char ratio[32];
      std::snprintf(ratio, sizeof ratio, "%.2f",
                    run.wall_clock_seconds / run.completion_seconds);
      table.add_row({std::to_string(ranks), test_case.name,
                     bench::seconds_cell(run.completion_seconds),
                     bench::seconds_cell(run.wall_clock_seconds), ratio});
      writer.add(test_case.name, ranks, run.wall_clock_seconds * 1e9);
    }
  }
  table.print();
  writer.save();
  std::printf("\nevery row ran inside this single process; 448 ranks is the paper's\n"
              "largest configuration (DT-SH class C), 1024 goes beyond it.\n");
  return 0;
}
