// p2p message-rate microbench: the pooled + zero-copy eager hot path vs the
// reference path (pooling and zero-copy disabled).
//
// Both arms simulate the *same* workload — repeated 16-rank ring broadcasts
// of 1 MiB eager chunks (a 256 MiB working set, so the copies hit DRAM the
// way real payloads do) — and must produce bit-identical simulated times:
// pooling and copy elision are pure host-side optimizations. Each arm warms
// up (so pools are populated and the allocator has seen the working set),
// then times `n` steady-state messages with the host clock around the inner
// rounds only; world construction and warmup are excluded, so wall_ns is a
// clean per-arm message-rate measurement. The wall ratio between the arms is
// a machine-independent invariant (both walls come from the same run on the
// same machine): the reference arm pays a heap allocation for every
// activity, envelope, and snapshot buffer plus a 1 MiB pack memcpy per
// message, all of which the pooled arm elides. Measured steady state is
// ~1.5x (the unpack memcpy both arms share bounds the ratio); bench_trend.py
// gates it at >= 1.25x for n >= 1000, which trips whenever pooling or copy
// elision stop working without flaking on runner noise. Against the
// pre-overhaul baseline (no pools, no zero-copy, hash-map calendar/flow/
// request bookkeeping) the same workload measures 1.7-1.9x.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "smpi/coll.h"

namespace {

constexpr int kRanks = 16;
constexpr std::size_t kChunkBytes = 1u << 20;
// scatter_ring_allgather at p ranks: (p-1) scatter sends plus p*(p-1)
// allgather-ring sends = p^2 - 1 messages per broadcast.
constexpr int kMessagesPerBcast = kRanks * kRanks - 1;
constexpr int kWarmupRounds = 4;

struct ArmResult {
  double wall_seconds = 0;      // host time spent inside the timed rounds
  double simulated_seconds = 0; // full-app simulated completion time
};

int g_rounds = 0;
std::chrono::steady_clock::time_point g_start;
double g_wall = 0;

void bench_app(int, char**) {
  MPI_Init(nullptr, nullptr);
  int rank = -1;
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  std::vector<char> buffer(kChunkBytes * static_cast<std::size_t>(kRanks), 'p');
  auto bcast = [&buffer] {
    smpi::coll::bcast_scatter_ring_allgather(buffer.data(), static_cast<int>(buffer.size()),
                                             MPI_CHAR, 0, MPI_COMM_WORLD);
  };
  for (int r = 0; r < kWarmupRounds; ++r) bcast();
  MPI_Barrier(MPI_COMM_WORLD);
  // All ranks sit at the barrier, so rank 0's host-clock reads bracket
  // exactly the simulation work of the timed rounds.
  if (rank == 0) g_start = std::chrono::steady_clock::now();
  for (int r = 0; r < g_rounds; ++r) bcast();
  MPI_Barrier(MPI_COMM_WORLD);
  if (rank == 0) {
    g_wall = std::chrono::duration<double>(std::chrono::steady_clock::now() - g_start).count();
  }
  MPI_Finalize();
}

ArmResult run_arm(const smpi::platform::Platform& cluster, bool optimized, int messages) {
  smpi::core::SmpiConfig config;
  // Keep the 1 MiB chunks on the eager path (the default 64 KiB threshold
  // would push them to rendezvous, which snapshots nothing in either arm).
  config.personality.eager_threshold = 2u << 20;
  config.engine.pool_objects = optimized;
  config.zero_copy_eager = optimized;
  config.placement = bench::spread_placement(cluster, kRanks);
  g_rounds = messages / kMessagesPerBcast > 0 ? messages / kMessagesPerBcast : 1;
  g_wall = 0;
  smpi::core::SmpiWorld world(cluster, config);
  world.run(kRanks, bench_app);
  return ArmResult{g_wall, world.simulated_time()};
}

}  // namespace

int main() {
  bench::banner("p2p message rate", "pooled + zero-copy eager vs reference path");
  auto cluster = smpi::platform::build_flat_cluster({});

  bench::JsonWriter json("BENCH_p2p.json");
  std::printf("%-8s %-12s %-12s %-8s %s\n", "msgs", "pooled(s)", "reference(s)", "ratio",
              "simulated");
  bool identical = true;
  for (int messages : {255, 1020, 4080}) {
    const ArmResult pooled = run_arm(cluster, true, messages);
    const ArmResult reference = run_arm(cluster, false, messages);
    identical = identical && pooled.simulated_seconds == reference.simulated_seconds;
    std::printf("%-8d %-12.4f %-12.4f %-8.2f %.9f%s\n", messages, pooled.wall_seconds,
                reference.wall_seconds, reference.wall_seconds / pooled.wall_seconds,
                pooled.simulated_seconds,
                pooled.simulated_seconds == reference.simulated_seconds
                    ? ""
                    : "  <-- ARMS DISAGREE");
    json.add("p2p_eager_pooled", messages, pooled.wall_seconds * 1e9);
    json.add("p2p_eager_reference", messages, reference.wall_seconds * 1e9);
  }
  json.save();
  if (!identical) {
    std::fprintf(stderr, "bench_p2p: arms disagree on simulated time — the optimized path "
                         "changed observable behavior\n");
    return 1;
  }
  return 0;
}
