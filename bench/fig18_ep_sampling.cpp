// Figure 18: impact of the CPU-burst sampling ratio (SMPI_SAMPLE_LOCAL) on
// simulation time and accuracy, using the NAS EP kernel on 4 processes. The
// paper's result: simulation (wall-clock) time falls linearly with the
// sampling ratio, while the simulated execution time — and hence accuracy
// against the real run — stays flat.
#include <chrono>

#include "apps/ep.hpp"
#include "bench_common.hpp"

int main() {
  using namespace smpi;
  bench::banner("Figure 18", "CPU sampling ratio vs simulation time and accuracy (NAS EP)");

  auto griffon = platform::build_griffon();
  apps::EpParams base;
  base.log2_pairs = 24;  // scaled-down class (documented in DESIGN.md)
  base.batches = 64;

  auto run_ep = [&griffon](const apps::EpParams& params, const core::SmpiConfig& config,
                           double* wall_out) {
    core::SmpiConfig run_config = config;
    run_config.placement = bench::spread_placement(griffon, 4);
    const auto start = std::chrono::steady_clock::now();
    core::SmpiWorld world(griffon, run_config);
    world.run(4, apps::make_ep_app(params));
    *wall_out =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    return world.simulated_time();
  };

  // Reference: the ground-truth personality executing everything.
  double wall_ref = 0;
  apps::EpParams full = base;
  const double t_ref = run_ep(full, calib::ground_truth_config(), &wall_ref);
  const auto ref_result = apps::ep_last_result();

  core::SmpiConfig smpi_config;  // default flow model; EP is compute-bound
  util::Table table({"ratio", "simulation wall(s)", "simulated time(s)", "err vs full",
                     "gaussian pairs"});
  double wall_full = 0, wall_quarter = 0;
  for (const double ratio : {1.0, 0.75, 0.5, 0.25}) {
    apps::EpParams params = base;
    params.sampling_ratio = ratio;
    double wall = 0;
    const double simulated = run_ep(params, smpi_config, &wall);
    if (ratio == 1.0) wall_full = wall;
    if (ratio == 0.25) wall_quarter = wall;
    const auto result = apps::ep_last_result();
    table.add_row({bench::pct_cell(ratio), bench::seconds_cell(wall),
                   bench::seconds_cell(simulated),
                   bench::pct_cell(util::log_error_as_fraction(
                       util::log_error(simulated, t_ref))),
                   std::to_string(result.gaussian_pairs())});
  }
  table.print();
  std::printf("\nreference (ground truth, all bursts executed): simulated %.3fs, %lld pairs\n",
              t_ref, static_cast<long long>(ref_result.gaussian_pairs()));
  std::printf("wall-clock speedup of 25%% sampling over 100%%: %.2fx\n",
              wall_quarter > 0 ? wall_full / wall_quarter : 0.0);
  std::printf("\npaper: simulation time scales linearly with the ratio (4x less work at\n"
              "25%%) while the simulated execution time and accuracy stay flat. The pair\n"
              "counts differ at low ratios because folded bursts skip real work — the\n"
              "erroneous-results trade-off of §1/§3.\n");
  return 0;
}
