// Figure 16: per-process peak memory of DT with and without RAM folding
// (§3.2), classes A-C x {WH, BH, SH}. Configurations whose unfolded
// footprint exceeds the host budget are flagged "OM" (out of memory) and not
// executed unfolded — exactly the paper's missing bars — while the folded
// runs complete even for the 448-process class C Shuffle (§7.2; the paper
// reports an 11.9x average footprint reduction, up to 40.5x).
#include "apps/dt.hpp"
#include "bench_common.hpp"

namespace {

// Predicted unfolded footprint: every rank's feature array, private.
std::uint64_t dt_unfolded_bytes(const smpi::apps::DtParams& params) {
  const auto spec = smpi::apps::build_dt_graph(params.graph, params.cls);
  const std::size_t base = params.feature_length();
  std::uint64_t total = 0;
  for (int node = 0; node < spec.node_count(); ++node) {
    total += smpi::apps::dt_node_elements(params.graph, params.cls,
                                          spec.layer[static_cast<std::size_t>(node)], base) *
             sizeof(double);
  }
  return total;
}

}  // namespace

int main() {
  using namespace smpi;
  bench::banner("Figure 16", "DT memory consumption with/without RAM folding, classes A-C");

  auto griffon = platform::build_griffon();
  constexpr double kScale = 1.0 / 32;  // documented workload scaling
  // Host budget for the unfolded runs: chosen (like the paper's real node
  // RAM) so classes A-B fit unfolded but the big configurations do not.
  const std::uint64_t kBudget = 100ull << 20;

  util::Table table(
      {"class", "graph", "procs", "unfolded(MiB)", "folded(MiB)", "reduction", "note"});
  double reduction_sum = 0;
  double reduction_max = 0;
  int reductions = 0;
  for (const auto cls : {apps::DtClass::kA, apps::DtClass::kB, apps::DtClass::kC}) {
    for (const auto graph :
         {apps::DtGraph::kWhiteHole, apps::DtGraph::kBlackHole, apps::DtGraph::kShuffle}) {
      apps::DtParams params;
      params.graph = graph;
      params.cls = cls;
      params.scale = kScale;
      const int procs = apps::dt_process_count(graph, cls);
      const std::uint64_t predicted_unfolded = dt_unfolded_bytes(params);
      const bool om = predicted_unfolded > kBudget;

      core::SmpiConfig config;
      config.placement = bench::spread_placement(griffon, procs);
      config.host_ram_budget_bytes = kBudget;

      std::uint64_t unfolded_peak = 0;
      if (!om) {
        core::SmpiWorld world(griffon, config);
        world.run(procs, apps::make_dt_app(params));
        unfolded_peak = world.memory_report().unfolded_peak_bytes;
      }
      apps::DtParams folded_params = params;
      folded_params.fold_memory = true;
      std::uint64_t folded_peak = 0;
      {
        core::SmpiWorld world(griffon, config);
        world.run(procs, apps::make_dt_app(folded_params));
        folded_peak = world.memory_report().folded_peak_bytes;
      }

      const double unfolded_mib =
          static_cast<double>(om ? predicted_unfolded : unfolded_peak) / (1 << 20);
      const double folded_mib = static_cast<double>(folded_peak) / (1 << 20);
      const double reduction = unfolded_mib / folded_mib;
      if (!om) {
        reduction_sum += reduction;
        reduction_max = std::max(reduction_max, reduction);
        ++reductions;
      }
      char red[32];
      std::snprintf(red, sizeof red, "%.1fx", reduction);
      table.add_row({std::string(1, apps::dt_class_name(cls)), apps::dt_graph_name(graph),
                     std::to_string(procs), util::Table::num(unfolded_mib, 1),
                     util::Table::num(folded_mib, 1), red,
                     om ? "OM (unfolded run skipped)" : ""});
    }
  }
  table.print();
  std::printf(
      "\naverage reduction over runnable configs: %.1fx, max %.1fx (paper: 11.9x avg, 40.5x max)\n",
      reductions > 0 ? reduction_sum / reductions : 0.0, reduction_max);
  std::printf("folded runs completed for every configuration, including SH class C\n"
              "(448 processes) — beyond what the paper could launch on its real cluster.\n");
  return 0;
}
