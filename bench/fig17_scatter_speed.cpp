// Figure 17: simulation time vs simulated time — binomial scatter over 16
// processes with messages growing from 4 to 64 MiB. The paper's claim: the
// on-line flow simulation runs 3.6-5.3x faster than the real execution, with
// the gain growing with message size.
//
// Substitution note: our "real execution time" is the packet-level
// ground-truth's simulated clock, and the cost of producing it (its host
// wall-clock) stands in for the cost of a real run; the flow model's
// wall-clock is the simulation cost the paper plots. The structural claim —
// flow simulation beats per-packet execution by a growing factor — is
// exactly preserved.
#include "bench_common.hpp"

int main() {
  using namespace smpi;
  bench::banner("Figure 17", "simulation time vs simulated/real time, scatter 4..64 MiB");

  auto griffon = platform::build_griffon();
  const auto calibration = bench::calibrate_on_griffon();
  constexpr int kProcs = 16;

  util::Table table({"chunk", "SMPI wall(s)", "SMPI simulated(s)", "real(s)", "pnet wall(s)",
                     "speedup vs real"});
  for (const std::size_t mib : {4, 8, 16, 32, 64}) {
    const std::size_t chunk = mib << 20;
    const auto smpi_run = bench::run_collective(griffon,
                                                calib::calibrated_smpi_config(
                                                    calibration.piecewise_factors()),
                                                kProcs, bench::scatter_body(chunk, kProcs));
    const auto real_run = bench::run_collective(griffon, calib::ground_truth_config(), kProcs,
                                                bench::scatter_body(chunk, kProcs));
    char speedup[32];
    std::snprintf(speedup, sizeof speedup, "%.1fx",
                  real_run.completion_seconds / smpi_run.wall_clock_seconds);
    table.add_row({util::format_bytes(chunk),
                   bench::seconds_cell(smpi_run.wall_clock_seconds),
                   bench::seconds_cell(smpi_run.completion_seconds),
                   bench::seconds_cell(real_run.completion_seconds),
                   bench::seconds_cell(real_run.wall_clock_seconds), speedup});
  }
  table.print();
  std::printf("\npaper: simulation 3.58x faster than real execution at 4 MiB, up to 5.25x\n"
              "at 64 MiB; accuracy ~4%%. Note the pnet (per-packet) column growing with\n"
              "size while the flow model's cost stays flat — the very reason SMPI avoids\n"
              "packet-level simulation (§4).\n");
  return 0;
}
