// Machine-readable bench output: a tiny JSON writer so the perf trajectory
// of the kernels can be tracked across PRs without scraping stdout tables.
//
// Every record is {op, n, wall_ns}: `op` names the measured operation, `n`
// its problem size (flows, ranks, ...), `wall_ns` the host wall-clock cost.
// The file is an array of such records, written atomically on save().
#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace bench {

class JsonWriter {
 public:
  explicit JsonWriter(std::string path) : path_(std::move(path)) {}

  void add(const std::string& op, long long n, double wall_ns) {
    records_.push_back(Record{op, n, wall_ns});
  }

  // Writes the collected records; returns false (and keeps them) on IO error.
  bool save() const {
    const std::string tmp = path_ + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f, "[\n");
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      std::fprintf(f, "  {\"op\": \"%s\", \"n\": %lld, \"wall_ns\": %.1f}%s\n",
                   escaped(r.op).c_str(), r.n, r.wall_ns,
                   i + 1 < records_.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
      std::remove(tmp.c_str());
      return false;
    }
    std::printf("wrote %zu record(s) to %s\n", records_.size(), path_.c_str());
    return true;
  }

  std::size_t record_count() const { return records_.size(); }

 private:
  struct Record {
    std::string op;
    long long n;
    double wall_ns;
  };

  static std::string escaped(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::string path_;
  std::vector<Record> records_;
};

}  // namespace bench
