// Figure 12: accuracy of the pairwise all-to-all simulation as a function of
// message size (16 processes). Same story as Figure 8: accurate for large
// messages, optimistic for small ones (paper: 28.7% average over the whole
// sweep, worst 80%).
#include "bench_common.hpp"

int main() {
  using namespace smpi;
  bench::banner("Figure 12", "pairwise all-to-all accuracy vs message size, 16 processes");

  auto gdx = platform::build_gdx();
  const auto placement = bench::two_rack_placement(platform::gdx_params());
  const auto calibration = bench::calibrate_on_griffon();
  constexpr int kProcs = 16;

  util::Table table({"block", "SMPI(s)", "OpenMPI(s)", "error"});
  util::ErrorAccumulator err_all;
  const std::size_t blocks[] = {4, 64, 1024, 16u << 10, 256u << 10, 1u << 20, 4u << 20};
  for (const std::size_t block : blocks) {
    const auto smpi_run = bench::run_collective(gdx,
                                                calib::calibrated_smpi_config(
                                                    calibration.piecewise_factors()),
                                                kProcs, bench::alltoall_body(block), placement);
    const auto real_run = bench::run_collective(gdx, calib::ground_truth_config(), kProcs,
                                                bench::alltoall_body(block), placement);
    err_all.add(smpi_run.completion_seconds, real_run.completion_seconds);
    table.add_row({util::format_bytes(block), bench::seconds_cell(smpi_run.completion_seconds),
                   bench::seconds_cell(real_run.completion_seconds),
                   bench::pct_cell(util::log_error_as_fraction(util::log_error(
                       smpi_run.completion_seconds, real_run.completion_seconds)))});
  }
  table.print();
  std::printf("\n");
  bench::print_error_summary("all sizes", err_all.summary());
  std::printf("\npaper: overall 28.7%% average error (worst 80%%), driven by the small\n"
              "message end; large blocks track closely.\n");
  return 0;
}
