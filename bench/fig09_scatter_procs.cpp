// Figure 9: binomial scatter completion time vs number of processes, with a
// fixed 4 MiB receive buffer per process (so the root's payload grows
// linearly with P). The paper reports SMPI consistent with both OpenMPI and
// MPICH2 across P = 4..32 at this message size.
#include "bench_common.hpp"

int main() {
  using namespace smpi;
  bench::banner("Figure 9", "binomial scatter vs process count, 4 MiB receive buffers");

  auto griffon = platform::build_griffon();
  const auto calibration = bench::calibrate_on_griffon();
  constexpr std::size_t kChunk = 4u << 20;

  util::Table table({"P", "SMPI(s)", "OpenMPI(s)", "MPICH2(s)", "err vs OpenMPI"});
  util::ErrorAccumulator err;
  for (const int procs : {4, 8, 16, 32}) {
    const auto smpi_run = bench::run_collective(griffon,
                                                calib::calibrated_smpi_config(
                                                    calibration.piecewise_factors()),
                                                procs, bench::scatter_body(kChunk, procs));
    const auto openmpi_run = bench::run_collective(griffon, calib::ground_truth_config(), procs,
                                                   bench::scatter_body(kChunk, procs));
    const auto mpich_run = bench::run_collective(griffon, calib::ground_truth_config_mpich2(),
                                                 procs, bench::scatter_body(kChunk, procs));
    err.add(smpi_run.completion_seconds, openmpi_run.completion_seconds);
    table.add_row({std::to_string(procs), bench::seconds_cell(smpi_run.completion_seconds),
                   bench::seconds_cell(openmpi_run.completion_seconds),
                   bench::seconds_cell(mpich_run.completion_seconds),
                   bench::pct_cell(util::log_error_as_fraction(
                       util::log_error(smpi_run.completion_seconds,
                                       openmpi_run.completion_seconds)))});
  }
  table.print();
  std::printf("\n");
  bench::print_error_summary("SMPI vs OpenMPI", err.summary());
  std::printf("\npaper: \"very consistent with both MPI implementations for this message\n"
              "size\" — time roughly doubles with P (root pushes P x 4MiB).\n");
  return 0;
}
