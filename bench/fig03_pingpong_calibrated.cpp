// Figure 3: ping-pong between two machines of the calibration cluster
// (griffon) — "SKaMPI" measurements (packet-level ground truth) vs the SMPI
// simulation under the default-affine, best-fit-affine and piece-wise linear
// models. The paper's headline numbers for this figure: piece-wise 8.63%
// average error (worst 27%), best-fit affine 18.5% (62.6%), default affine
// 32.1% (127%).
#include "bench_common.hpp"

int main() {
  using namespace smpi;
  bench::banner("Figure 3", "ping-pong on the calibration cluster (griffon)");

  auto griffon = platform::build_griffon();
  const auto calib = bench::calibrate_on_griffon();

  calib::PingPongOptions options;
  options.sizes = calib::PingPongOptions::default_sizes(16u << 20, 2);
  const auto sim_default =
      calib::simulate_pingpong(griffon, 0, 1, calib.default_affine_factors(), options);
  const auto sim_best =
      calib::simulate_pingpong(griffon, 0, 1, calib.best_affine_factors(), options);
  const auto sim_piecewise =
      calib::simulate_pingpong(griffon, 0, 1, calib.piecewise_factors(), options);

  util::Table table({"size", "SKaMPI(us)", "default-affine", "best-fit-affine", "piece-wise"});
  util::ErrorAccumulator err_default, err_best, err_piecewise;
  for (std::size_t i = 0; i < calib.measurements.size(); ++i) {
    const auto& real = calib.measurements[i];
    err_default.add(sim_default[i].one_way_seconds, real.one_way_seconds);
    err_best.add(sim_best[i].one_way_seconds, real.one_way_seconds);
    err_piecewise.add(sim_piecewise[i].one_way_seconds, real.one_way_seconds);
    table.add_row({util::format_bytes(real.bytes),
                   util::Table::num(real.one_way_seconds * 1e6, 1),
                   util::Table::num(sim_default[i].one_way_seconds * 1e6, 1),
                   util::Table::num(sim_best[i].one_way_seconds * 1e6, 1),
                   util::Table::num(sim_piecewise[i].one_way_seconds * 1e6, 1)});
  }
  table.print();
  std::printf("\n");
  bench::print_error_summary("piece-wise linear", err_piecewise.summary());
  bench::print_error_summary("best-fit affine", err_best.summary());
  bench::print_error_summary("default affine", err_default.summary());
  std::printf("\npaper: piece-wise 8.63%% avg (27%% worst), best-fit 18.5%% (62.6%%), "
              "default 32.1%% (127%%).\n");
  return 0;
}
