// Figure 11: per-process completion times of a pairwise all-to-all with
// 4 MiB messages over 16 processes. The paper's no-contention model shows a
// consistent ~78% error across all ranks, while the contention-aware
// piece-wise model lands within ~1%.
//
// The processes sit in two distant cabinet groups of gdx, eight per side, so
// at every step of the pairwise exchange several flows share the single GbE
// inter-switch link pair — the contention this figure is about. (On
// griffon's 10GbE backbone sixteen GbE nodes cannot saturate anything.)
#include "bench_common.hpp"

int main() {
  using namespace smpi;
  bench::banner("Figure 11", "pairwise all-to-all, 16 processes, 4 MiB, per-process times");

  auto gdx = platform::build_gdx();
  const auto placement = bench::two_rack_placement(platform::gdx_params());
  const auto calibration = bench::calibrate_on_griffon();
  constexpr int kProcs = 16;
  constexpr std::size_t kBlock = 4u << 20;

  const auto smpi_run =
      bench::run_collective(gdx, calib::calibrated_smpi_config(calibration.piecewise_factors()),
                            kProcs, bench::alltoall_body(kBlock), placement);
  const auto nocont_run = bench::run_collective(
      gdx, calib::no_contention_smpi_config(calibration.piecewise_factors()), kProcs,
      bench::alltoall_body(kBlock), placement);
  const auto openmpi_run = bench::run_collective(gdx, calib::ground_truth_config(), kProcs,
                                                 bench::alltoall_body(kBlock), placement);

  util::Table table({"rank", "SMPI+contention", "SMPI no-contention", "OpenMPI"});
  util::ErrorAccumulator err_smpi, err_nocont;
  for (int r = 0; r < kProcs; ++r) {
    const auto i = static_cast<std::size_t>(r);
    err_smpi.add(smpi_run.per_rank_seconds[i], openmpi_run.per_rank_seconds[i]);
    err_nocont.add(nocont_run.per_rank_seconds[i], openmpi_run.per_rank_seconds[i]);
    table.add_row({std::to_string(r), bench::seconds_cell(smpi_run.per_rank_seconds[i]),
                   bench::seconds_cell(nocont_run.per_rank_seconds[i]),
                   bench::seconds_cell(openmpi_run.per_rank_seconds[i])});
  }
  table.print();
  std::printf("\n");
  bench::print_error_summary("SMPI+contention vs OpenMPI", err_smpi.summary());
  bench::print_error_summary("no-contention vs OpenMPI", err_nocont.summary());
  std::printf("\npaper: contention model <1%% off; no-contention model ~78%% off,\n"
              "consistently across all 16 processes.\n");
  return 0;
}
