#include <gtest/gtest.h>

#include <cmath>

#include "calib/calibration.hpp"
#include "calib/fit.hpp"
#include "calib/pingpong.hpp"
#include "platform/builders.hpp"
#include "util/check.hpp"

namespace ca = smpi::calib;
namespace sp = smpi::platform;
namespace sc = smpi::core;

namespace {

// Synthetic measurements drawn exactly from a given model.
template <typename Model>
std::vector<ca::PingPongPoint> synth(const Model& model, std::uint64_t max_bytes = 16u << 20) {
  std::vector<ca::PingPongPoint> points;
  for (std::uint64_t size : ca::PingPongOptions::default_sizes(max_bytes, 2)) {
    points.push_back({size, model.predict(static_cast<double>(size))});
  }
  return points;
}

}  // namespace

TEST(PingPongOptions, DefaultSizesSweepIsSane) {
  const auto sizes = ca::PingPongOptions::default_sizes(1 << 20, 2);
  ASSERT_GE(sizes.size(), 20u);
  EXPECT_EQ(sizes.front(), 1u);
  EXPECT_EQ(sizes.back(), 1u << 20);
  for (std::size_t i = 1; i < sizes.size(); ++i) EXPECT_GT(sizes[i], sizes[i - 1]);
}

TEST(Fit, BestAffineRecoversExactAffineData) {
  ca::AffineModel truth{50e-6, 100e6};
  const auto points = synth(truth);
  const auto fitted = ca::fit_best_affine(points);
  EXPECT_NEAR(fitted.latency_s, truth.latency_s, truth.latency_s * 0.1);
  EXPECT_NEAR(fitted.bandwidth_bps, truth.bandwidth_bps, truth.bandwidth_bps * 0.1);
  EXPECT_LT(ca::evaluate_model(fitted, points).mean_log_error, 0.02);
}

TEST(Fit, DefaultAffineUsesSmallestMessageLatency) {
  ca::AffineModel truth{80e-6, 110e6};
  const auto points = synth(truth);
  const auto fitted = ca::fit_default_affine(points, 125e6, 0.92);
  EXPECT_NEAR(fitted.latency_s, truth.predict(1), 1e-9);
  EXPECT_DOUBLE_EQ(fitted.bandwidth_bps, 0.92 * 125e6);
}

TEST(Fit, PiecewiseRecoversThreeSegments) {
  ca::PiecewiseLinearModel truth;
  truth.segments = {{1500.0, 60e-6, 400e6},
                    {65536.0, 100e-6, 110e6},
                    {std::numeric_limits<double>::infinity(), 300e-6, 118e6}};
  const auto points = synth(truth);
  const auto fitted = ca::fit_piecewise(points, 3);
  ASSERT_EQ(fitted.segments.size(), 3u);
  // Prediction accuracy is what matters; boundaries may shift slightly.
  EXPECT_LT(ca::evaluate_model(fitted, points).mean_log_error, 0.03);
  // Boundaries found within a factor of ~4 of the true ones.
  EXPECT_GT(fitted.segments[0].max_bytes, 1500.0 / 4);
  EXPECT_LT(fitted.segments[0].max_bytes, 1500.0 * 4);
  EXPECT_GT(fitted.segments[1].max_bytes, 65536.0 / 4);
  EXPECT_LT(fitted.segments[1].max_bytes, 65536.0 * 4);
}

TEST(Fit, PiecewiseBeatsAffineOnCurvedData) {
  // The core claim of §4.1: on protocol-switching data, 3 segments beat any
  // single affine model.
  ca::PiecewiseLinearModel truth;
  truth.segments = {{1500.0, 60e-6, 500e6},
                    {65536.0, 90e-6, 105e6},
                    {std::numeric_limits<double>::infinity(), 400e-6, 120e6}};
  const auto points = synth(truth);
  const auto piecewise = ca::fit_piecewise(points, 3);
  const auto affine = ca::fit_best_affine(points);
  const double err_piecewise = ca::evaluate_model(piecewise, points).mean_log_error;
  const double err_affine = ca::evaluate_model(affine, points).mean_log_error;
  EXPECT_LT(err_piecewise, err_affine * 0.5);
}

TEST(Fit, ParameterCountMatchesPaper) {
  ca::PiecewiseLinearModel model;
  model.segments.resize(3);
  EXPECT_EQ(model.parameter_count(), 8);  // 2 boundaries + 3 x (alpha, beta)
}

TEST(Fit, RejectsDegenerateInput) {
  EXPECT_THROW(ca::fit_piecewise({}, 3), smpi::util::ContractError);
  std::vector<ca::PingPongPoint> few{{1, 1e-4}, {2, 1e-4}, {4, 1e-4}};
  EXPECT_THROW(ca::fit_piecewise(few, 3), smpi::util::ContractError);
  EXPECT_THROW(ca::fit_default_affine({}, 125e6), smpi::util::ContractError);
}

TEST(Fit, FactorsReproduceModelOnMatchingRoute) {
  // A flow network configured with to_factors(model) must predict exactly
  // model.predict(s) for a route whose physical parameters are the base.
  ca::PiecewiseLinearModel model;
  model.segments = {{4096.0, 200e-6, 50e6},
                    {std::numeric_limits<double>::infinity(), 500e-6, 100e6}};
  const double base_lat = 2e-4;  // 2 links x 1e-4
  const double base_bw = 125e6;
  const auto factors = ca::to_factors(model, base_lat, base_bw);

  sp::FlatClusterParams params;
  params.nodes = 2;
  params.link_bandwidth_bps = base_bw;
  params.link_latency_s = base_lat / 2;
  auto platform = sp::build_flat_cluster(params);
  smpi::surf::NetworkConfig net;
  net.factors = factors;
  net.bandwidth_efficiency = 1.0;
  net.tcp_window_bytes = 0;
  smpi::sim::Engine engine;
  smpi::surf::FlowNetworkModel flow(platform, net);
  for (double s : {100.0, 1e4, 1e6}) {
    EXPECT_NEAR(flow.uncontended_duration(0, 1, s), model.predict(s),
                model.predict(s) * 1e-9);
  }
}

TEST(PingPong, FlowBackendMatchesClosedForm) {
  sp::FlatClusterParams params;
  params.nodes = 2;
  params.link_bandwidth_bps = 1e8;
  params.link_latency_s = 1e-4;
  auto platform = sp::build_flat_cluster(params);
  sc::SmpiConfig config;
  config.network.bandwidth_efficiency = 1.0;
  config.network.tcp_window_bytes = 0;
  ca::PingPongOptions options;
  options.sizes = {1000, 100000, 1000000};
  options.repetitions = 1;
  options.warmup = 0;
  const auto points = ca::run_pingpong(platform, config, options);
  ASSERT_EQ(points.size(), 3u);
  for (const auto& p : points) {
    const double expected = 2e-4 + static_cast<double>(p.bytes) / 1e8;
    EXPECT_NEAR(p.one_way_seconds, expected, expected * 0.01) << p.bytes;
  }
}

TEST(PingPong, PacketBackendTimesGrowWithSize) {
  sp::FlatClusterParams params;
  params.nodes = 2;
  auto platform = sp::build_flat_cluster(params);
  ca::PingPongOptions options;
  options.sizes = {1, 1000, 100000, 1000000};
  const auto points = ca::run_pingpong(platform, ca::ground_truth_config(), options);
  ASSERT_EQ(points.size(), 4u);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GT(points[i].one_way_seconds, points[i - 1].one_way_seconds);
  }
  // Sub-frame messages are latency-dominated: 1 B and 1000 B are close.
  EXPECT_LT(points[1].one_way_seconds, points[0].one_way_seconds * 1.5);
}

TEST(Calibration, EndToEndPiecewiseBeatsBothAffines) {
  // The Figure 3 pipeline in miniature: calibrate on the packet-level ground
  // truth, then check the paper's headline accuracy ordering.
  sp::FlatClusterParams params;
  params.nodes = 2;
  auto platform = sp::build_flat_cluster(params);
  ca::PingPongOptions options;
  options.sizes = ca::PingPongOptions::default_sizes(4u << 20, 2);
  const auto calib = ca::calibrate(platform, 0, 1, ca::ground_truth_config(), options);

  const double err_pw = ca::evaluate_model(calib.piecewise, calib.measurements).mean_log_error;
  const double err_best = ca::evaluate_model(calib.best_affine, calib.measurements).mean_log_error;
  const double err_default =
      ca::evaluate_model(calib.default_affine, calib.measurements).mean_log_error;
  EXPECT_LT(err_pw, err_best);
  EXPECT_LT(err_best, err_default * 1.5);  // best-fit no worse than default
  // Piece-wise model accuracy in the paper: 8.63% average; be generous.
  EXPECT_LT(smpi::util::log_error_as_fraction(err_pw), 0.25);
}

TEST(Calibration, SimulatedPingPongTracksGroundTruth) {
  // Full §7.1.1 loop: measure, fit, re-simulate with SMPI, compare.
  sp::FlatClusterParams params;
  params.nodes = 2;
  auto platform = sp::build_flat_cluster(params);
  ca::PingPongOptions options;
  options.sizes = ca::PingPongOptions::default_sizes(4u << 20, 2);
  const auto calib = ca::calibrate(platform, 0, 1, ca::ground_truth_config(), options);
  const auto simulated =
      ca::simulate_pingpong(platform, 0, 1, calib.piecewise_factors(), options);
  ASSERT_EQ(simulated.size(), calib.measurements.size());
  smpi::util::ErrorAccumulator acc;
  for (std::size_t i = 0; i < simulated.size(); ++i) {
    acc.add(simulated[i].one_way_seconds, calib.measurements[i].one_way_seconds);
  }
  EXPECT_LT(acc.summary().mean_fraction(), 0.30);
}
