#include "surf/network.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "platform/builders.hpp"
#include "sim/engine.hpp"
#include "surf/piecewise.hpp"

namespace sf = smpi::surf;
namespace sp = smpi::platform;
namespace ss = smpi::sim;

namespace {

sp::FlatClusterParams small_cluster_params() {
  sp::FlatClusterParams params;
  params.nodes = 4;
  params.link_bandwidth_bps = 1e8;  // round numbers for exact expectations
  params.link_latency_s = 1e-3;
  return params;
}

struct Fixture {
  explicit Fixture(sf::NetworkConfig config = {},
                   sp::FlatClusterParams params = small_cluster_params())
      : platform(sp::build_flat_cluster(params)), engine() {
    auto model = std::make_shared<sf::FlowNetworkModel>(platform, config);
    net = model.get();
    engine.add_model(model);
  }
  sp::Platform platform;
  ss::Engine engine;
  sf::FlowNetworkModel* net = nullptr;
};

}  // namespace

TEST(FlowNetwork, SingleTransferTime) {
  sf::NetworkConfig config;
  config.bandwidth_efficiency = 1.0;
  config.tcp_window_bytes = 0;
  Fixture fx(config);
  double done_at = -1;
  fx.engine.spawn("sender", 0, [&] {
    auto flow = fx.net->start_flow(0, 1, 1e8, {});
    flow->wait();
    done_at = fx.engine.now();
  });
  fx.engine.run();
  // latency 2 links x 1ms, then 1e8 bytes at 1e8 B/s = 1 s.
  EXPECT_NEAR(done_at, 1.002, 1e-9);
  EXPECT_NEAR(fx.net->uncontended_duration(0, 1, 1e8), 1.002, 1e-9);
}

TEST(FlowNetwork, BandwidthEfficiencyCapsRate) {
  sf::NetworkConfig config;
  config.bandwidth_efficiency = 0.5;
  config.tcp_window_bytes = 0;
  Fixture fx(config);
  double done_at = -1;
  fx.engine.spawn("sender", 0, [&] {
    fx.net->start_flow(0, 1, 1e8, {})->wait();
    done_at = fx.engine.now();
  });
  fx.engine.run();
  EXPECT_NEAR(done_at, 2.002, 1e-9);
}

TEST(FlowNetwork, TwoFlowsOnSameSourceShareTheUplink) {
  sf::NetworkConfig config;
  config.bandwidth_efficiency = 1.0;
  config.tcp_window_bytes = 0;
  Fixture fx(config);
  std::vector<double> done(2, -1);
  fx.engine.spawn("sender", 0, [&] {
    auto f1 = fx.net->start_flow(0, 1, 1e8, {});
    auto f2 = fx.net->start_flow(0, 2, 1e8, {});
    f1->on_completion([&](ss::Activity& a) { done[0] = a.finish_time(); });
    f2->on_completion([&](ss::Activity& a) { done[1] = a.finish_time(); });
    f1->wait();
    f2->wait();
  });
  fx.engine.run();
  // Both cross up-0: each gets 5e7 B/s -> 2s transfer + 2ms latency.
  EXPECT_NEAR(done[0], 2.002, 1e-6);
  EXPECT_NEAR(done[1], 2.002, 1e-6);
}

TEST(FlowNetwork, DisjointFlowsDoNotInterfere) {
  sf::NetworkConfig config;
  config.bandwidth_efficiency = 1.0;
  config.tcp_window_bytes = 0;
  Fixture fx(config);
  std::vector<double> done(2, -1);
  fx.engine.spawn("sender", 0, [&] {
    auto f1 = fx.net->start_flow(0, 1, 1e8, {});
    auto f2 = fx.net->start_flow(2, 3, 1e8, {});
    f1->on_completion([&](ss::Activity& a) { done[0] = a.finish_time(); });
    f2->on_completion([&](ss::Activity& a) { done[1] = a.finish_time(); });
    f1->wait();
    f2->wait();
  });
  fx.engine.run();
  EXPECT_NEAR(done[0], 1.002, 1e-6);
  EXPECT_NEAR(done[1], 1.002, 1e-6);
}

TEST(FlowNetwork, ContentionOffRestoresFullRate) {
  sf::NetworkConfig config;
  config.bandwidth_efficiency = 1.0;
  config.tcp_window_bytes = 0;
  config.contention = false;
  Fixture fx(config);
  std::vector<double> done(2, -1);
  fx.engine.spawn("sender", 0, [&] {
    auto f1 = fx.net->start_flow(0, 1, 1e8, {});
    auto f2 = fx.net->start_flow(0, 2, 1e8, {});
    f1->on_completion([&](ss::Activity& a) { done[0] = a.finish_time(); });
    f2->on_completion([&](ss::Activity& a) { done[1] = a.finish_time(); });
    f1->wait();
    f2->wait();
  });
  fx.engine.run();
  // The naive no-contention model of §7: both flows get the full link rate.
  EXPECT_NEAR(done[0], 1.002, 1e-6);
  EXPECT_NEAR(done[1], 1.002, 1e-6);
}

TEST(FlowNetwork, LateJoinerSlowsExistingFlow) {
  sf::NetworkConfig config;
  config.bandwidth_efficiency = 1.0;
  config.tcp_window_bytes = 0;
  Fixture fx(config);
  double done_first = -1;
  fx.engine.spawn("a", 0, [&] {
    auto f = fx.net->start_flow(0, 1, 1e8, {});
    f->wait();
    done_first = fx.engine.now();
  });
  fx.engine.spawn("b", 0, [&] {
    fx.engine.sleep_for(0.502);  // joins when the first flow is half done
    fx.net->start_flow(0, 2, 1e8, {})->wait();
  });
  fx.engine.run();
  // Joiner enters sharing at t=0.504 (sleep + its own latency); by then the
  // first flow has moved 5.02e7 bytes; the remaining 4.98e7 go at 5e7 B/s:
  // 0.504 + 0.996 = 1.5 s.
  EXPECT_NEAR(done_first, 1.5, 1e-9);
}

TEST(FlowNetwork, ZeroByteMessageCostsOnlyLatency) {
  sf::NetworkConfig config;
  config.bandwidth_efficiency = 1.0;
  Fixture fx(config);
  double done_at = -1;
  fx.engine.spawn("sender", 0, [&] {
    fx.net->start_flow(0, 1, 0, {})->wait();
    done_at = fx.engine.now();
  });
  fx.engine.run();
  EXPECT_NEAR(done_at, 0.002, 1e-12);
}

TEST(FlowNetwork, LoopbackIsImmediate) {
  Fixture fx;
  double done_at = -1;
  fx.engine.spawn("sender", 0, [&] {
    fx.net->start_flow(0, 0, 1e9, {})->wait();
    done_at = fx.engine.now();
  });
  fx.engine.run();
  EXPECT_DOUBLE_EQ(done_at, 0.0);
}

TEST(FlowNetwork, HintRateBoundIsHonored) {
  sf::NetworkConfig config;
  config.bandwidth_efficiency = 1.0;
  config.tcp_window_bytes = 0;
  Fixture fx(config);
  double done_at = -1;
  fx.engine.spawn("sender", 0, [&] {
    ss::FlowHints hints;
    hints.rate_bound = 2.5e7;
    fx.net->start_flow(0, 1, 1e8, hints)->wait();
    done_at = fx.engine.now();
  });
  fx.engine.run();
  EXPECT_NEAR(done_at, 4.002, 1e-6);
}

TEST(FlowNetwork, TcpWindowLimitsLongFatPath) {
  sf::NetworkConfig config;
  config.bandwidth_efficiency = 1.0;
  config.tcp_window_bytes = 1e4;  // rate cap = 1e4 / (2 x 2e-3) = 2.5e6 B/s
  Fixture fx(config);
  double done_at = -1;
  fx.engine.spawn("sender", 0, [&] {
    fx.net->start_flow(0, 1, 1e7, {})->wait();
    done_at = fx.engine.now();
  });
  fx.engine.run();
  EXPECT_NEAR(done_at, 0.002 + 1e7 / 2.5e6, 1e-6);
}

TEST(FlowNetwork, PiecewiseFactorsSelectPerSizeBehaviour) {
  // Two segments: small messages see 10x latency, large ones 0.5x bandwidth.
  sf::PiecewiseFactors factors({{1000.0, 10.0, 1.0},
                                {std::numeric_limits<double>::infinity(), 1.0, 0.5}});
  sf::NetworkConfig config;
  config.factors = factors;
  config.bandwidth_efficiency = 1.0;
  config.tcp_window_bytes = 0;
  Fixture fx(config);
  double small_done = -1, large_done = -1;
  fx.engine.spawn("sender", 0, [&] {
    fx.net->start_flow(0, 1, 100, {})->wait();
    small_done = fx.engine.now();
    const double start = fx.engine.now();
    fx.net->start_flow(0, 1, 1e8, {})->wait();
    large_done = fx.engine.now() - start;
  });
  fx.engine.run();
  // Small: latency 2ms x 10 + 100B/1e8.
  EXPECT_NEAR(small_done, 0.020 + 100 / 1e8, 1e-9);
  // Large: latency 2ms x 1 + 1e8 / (0.5 x 1e8).
  EXPECT_NEAR(large_done, 0.002 + 2.0, 1e-6);
}

TEST(FlowNetwork, FatpipeBackboneDoesNotContend) {
  // Hierarchical cluster with a fatpipe-like wide uplink: two node-pairs in
  // different cabinets share the uplink; with a wide enough uplink they are
  // both bottlenecked at their own NICs only.
  sp::HierarchicalClusterParams params;
  params.cabinet_sizes = {2, 2};
  params.node_bandwidth_bps = 1e8;
  params.node_latency_s = 1e-3;
  params.uplink_bandwidth_bps = 1e9;
  params.uplink_latency_s = 1e-3;
  auto platform = sp::build_hierarchical_cluster(params);
  ss::Engine engine;
  sf::NetworkConfig config;
  config.bandwidth_efficiency = 1.0;
  config.tcp_window_bytes = 0;
  auto model = std::make_shared<sf::FlowNetworkModel>(platform, config);
  auto* net = model.get();
  engine.add_model(model);
  std::vector<double> done(2, -1);
  engine.spawn("sender", 0, [&] {
    auto f1 = net->start_flow(0, 2, 1e8, {});  // cabinet 0 -> cabinet 1
    auto f2 = net->start_flow(1, 3, 1e8, {});
    f1->on_completion([&](ss::Activity& a) { done[0] = a.finish_time(); });
    f2->on_completion([&](ss::Activity& a) { done[1] = a.finish_time(); });
    f1->wait();
    f2->wait();
  });
  engine.run();
  // 4 links x 1ms latency; NIC-bound transfers at 1e8 B/s.
  EXPECT_NEAR(done[0], 0.004 + 1.0, 1e-6);
  EXPECT_NEAR(done[1], 0.004 + 1.0, 1e-6);
}
