#include "surf/cpu.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "platform/builders.hpp"
#include "sim/engine.hpp"

namespace sf = smpi::surf;
namespace sp = smpi::platform;
namespace ss = smpi::sim;

namespace {

struct Fixture {
  explicit Fixture(int cores = 2) {
    sp::FlatClusterParams params;
    params.nodes = 2;
    params.speed_flops = 1e9;
    params.cores = cores;
    platform = sp::build_flat_cluster(params);
    auto model = std::make_shared<sf::CpuModel>(platform);
    cpu = model.get();
    engine.add_model(model);
  }
  sp::Platform platform;
  ss::Engine engine;
  sf::CpuModel* cpu = nullptr;
};

}  // namespace

TEST(CpuModel, SingleExecutionTakesFlopsOverSpeed) {
  Fixture fx;
  double done_at = -1;
  fx.engine.spawn("worker", 0, [&] {
    fx.cpu->execute(0, 2e9)->wait();
    done_at = fx.engine.now();
  });
  fx.engine.run();
  EXPECT_NEAR(done_at, 2.0, 1e-9);
}

TEST(CpuModel, NodeSpeedReportsPlatformRating) {
  Fixture fx;
  EXPECT_DOUBLE_EQ(fx.cpu->node_speed(0), 1e9);
}

TEST(CpuModel, TwoTasksOnTwoCoresRunInParallel) {
  Fixture fx(/*cores=*/2);
  std::vector<double> done(2, -1);
  fx.engine.spawn("w", 0, [&] {
    auto e1 = fx.cpu->execute(0, 1e9);
    auto e2 = fx.cpu->execute(0, 1e9);
    e1->on_completion([&](ss::Activity& a) { done[0] = a.finish_time(); });
    e2->on_completion([&](ss::Activity& a) { done[1] = a.finish_time(); });
    e1->wait();
    e2->wait();
  });
  fx.engine.run();
  EXPECT_NEAR(done[0], 1.0, 1e-9);
  EXPECT_NEAR(done[1], 1.0, 1e-9);
}

TEST(CpuModel, ThreeTasksOnTwoCoresContend) {
  Fixture fx(/*cores=*/2);
  std::vector<double> done(3, -1);
  fx.engine.spawn("w", 0, [&] {
    std::vector<ss::ActivityPtr> execs;
    for (int i = 0; i < 3; ++i) {
      auto e = fx.cpu->execute(0, 1e9);
      e->on_completion([&done, i](ss::Activity& a) { done[static_cast<std::size_t>(i)] = a.finish_time(); });
      execs.push_back(e);
    }
    for (auto& e : execs) e->wait();
  });
  fx.engine.run();
  // 3 tasks, 2 cores: each runs at 2/3 of a core -> finishes at 1.5s.
  for (double d : done) EXPECT_NEAR(d, 1.5, 1e-9);
}

TEST(CpuModel, SingleTaskNeverExceedsOneCore) {
  Fixture fx(/*cores=*/8);
  double done_at = -1;
  fx.engine.spawn("w", 0, [&] {
    fx.cpu->execute(0, 1e9)->wait();
    done_at = fx.engine.now();
  });
  fx.engine.run();
  // Even with 8 idle cores, one task runs at single-core speed.
  EXPECT_NEAR(done_at, 1.0, 1e-9);
}

TEST(CpuModel, ExecutionsOnDifferentNodesAreIndependent) {
  Fixture fx;
  std::vector<double> done(2, -1);
  fx.engine.spawn("w", 0, [&] {
    auto e1 = fx.cpu->execute(0, 1e9);
    auto e2 = fx.cpu->execute(1, 1e9);
    e1->on_completion([&](ss::Activity& a) { done[0] = a.finish_time(); });
    e2->on_completion([&](ss::Activity& a) { done[1] = a.finish_time(); });
    e1->wait();
    e2->wait();
  });
  fx.engine.run();
  EXPECT_NEAR(done[0], 1.0, 1e-9);
  EXPECT_NEAR(done[1], 1.0, 1e-9);
}

TEST(CpuModel, ZeroFlopsCompletesImmediately) {
  Fixture fx;
  double done_at = -1;
  fx.engine.spawn("w", 0, [&] {
    fx.cpu->execute(0, 0)->wait();
    done_at = fx.engine.now();
  });
  fx.engine.run();
  EXPECT_DOUBLE_EQ(done_at, 0.0);
}
