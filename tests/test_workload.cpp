// Workload generator tests: spec parsing contracts, per-seed bit-exact
// determinism (in memory and on disk), replayability of every pattern, the
// generated-stencil-vs-handwritten-online-app equivalence (simulated times
// within 1e-9), workload axes inside campaigns, and scale (a 1024-rank
// stencil generates and replays end-to-end).
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/runner.hpp"
#include "campaign/spec.hpp"
#include "platform/builders.hpp"
#include "smpi/mpi.h"
#include "smpi/smpi.hpp"
#include "trace/reader.hpp"
#include "trace/replay.hpp"
#include "util/check.hpp"
#include "util/json.hpp"
#include "workload/generate.hpp"
#include "workload/patterns.hpp"
#include "workload/spec.hpp"

namespace fs = std::filesystem;
namespace wl = smpi::workload;
namespace tr = smpi::trace;
using smpi::util::ContractError;
using smpi::util::parse_json;

namespace {

struct TempDir {
  fs::path path;
  TempDir() {
    static int counter = 0;
    path = fs::temp_directory_path() /
           ("smpi_workload_test_" + std::to_string(::getpid()) + "_" + std::to_string(counter++));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

wl::WorkloadSpec parse_spec(const std::string& json) {
  return wl::WorkloadSpec::parse(parse_json(json, "test workload"));
}

std::string file_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// The whole trace as one string (record text per rank), for bit-exact
// comparisons between independently generated traces.
std::string trace_text(const tr::TiTrace& trace) {
  std::string text;
  for (const auto& records : trace.ranks) {
    for (const auto& record : records) {
      text += tr::serialize_record(record);
      text += '\n';
    }
    text += "--\n";
  }
  return text;
}

tr::ReplayResult replay_on_cluster(const tr::TiTrace& trace) {
  smpi::platform::FlatClusterParams params;
  params.nodes = trace.nranks;
  auto platform = smpi::platform::build_flat_cluster(params);
  return tr::replay_trace(platform, smpi::core::SmpiConfig{}, trace, {});
}

}  // namespace

// ---------------------------------------------------------------------------
// Spec parsing
// ---------------------------------------------------------------------------

TEST(WorkloadSpec, ParsesShorthandAndPhases) {
  const auto shorthand = parse_spec(R"({
    "name": "s", "ranks": 16, "seed": 9,
    "pattern": "stencil2d", "iterations": 4, "bytes": 2048,
    "compute": {"flops": 1e6, "imbalance": 0.25, "jitter": 0.1}
  })");
  ASSERT_EQ(shorthand.phases.size(), 1u);
  EXPECT_EQ(shorthand.ranks, 16);
  EXPECT_EQ(shorthand.seed, 9u);
  EXPECT_EQ(shorthand.phases[0].pattern, wl::Pattern::kStencil2d);
  EXPECT_EQ(shorthand.phases[0].iterations, 4);
  EXPECT_EQ(shorthand.phases[0].bytes_at(0), 2048);
  EXPECT_DOUBLE_EQ(shorthand.phases[0].compute.flops, 1e6);
  EXPECT_DOUBLE_EQ(shorthand.phases[0].compute.imbalance, 0.25);

  const auto phased = parse_spec(R"({
    "ranks": 8,
    "phases": [
      {"pattern": "ring", "bytes": [64, 128, 256]},
      {"pattern": "reduce_bcast", "root": 3, "commutative": false}
    ]
  })");
  ASSERT_EQ(phased.phases.size(), 2u);
  EXPECT_EQ(phased.phases[0].pattern, wl::Pattern::kRing);
  EXPECT_EQ(phased.phases[0].bytes_at(1), 128);
  EXPECT_EQ(phased.phases[0].bytes_at(3), 64);  // schedule cycles
  EXPECT_EQ(phased.phases[1].root, 3);
  EXPECT_FALSE(phased.phases[1].commutative);
}

TEST(WorkloadSpec, RejectsContractViolations) {
  EXPECT_THROW(parse_spec(R"({"ranks": 4, "pattern": "warp_drive"})"), ContractError);
  EXPECT_THROW(parse_spec(R"({"pattern": "ring"})"), ContractError);  // no ranks
  EXPECT_THROW(parse_spec(R"({"ranks": 0, "pattern": "ring"})"), ContractError);
  // Grid must tile the rank count, and must be given whole.
  EXPECT_THROW(parse_spec(R"({"ranks": 16, "pattern": "stencil2d", "px": 3, "py": 4})"),
               ContractError);
  EXPECT_THROW(parse_spec(R"({"ranks": 16, "pattern": "stencil2d", "px": 4})"), ContractError);
  EXPECT_THROW(parse_spec(R"({"ranks": 8, "pattern": "stencil3d", "px": 2, "py": 4})"),
               ContractError);
  // Non-grid patterns must not take one.
  EXPECT_THROW(parse_spec(R"({"ranks": 16, "pattern": "ring", "px": 4, "py": 4})"),
               ContractError);
  EXPECT_THROW(parse_spec(R"({"ranks": 4, "pattern": "random_sparse", "degree": 4})"),
               ContractError);
  EXPECT_THROW(parse_spec(R"({"ranks": 4, "pattern": "reduce_bcast", "root": 4})"),
               ContractError);
  EXPECT_THROW(
      parse_spec(R"({"ranks": 4, "pattern": "ring", "compute": {"flops": 1, "imbalance": 1}})"),
      ContractError);
}

TEST(WorkloadSpec, FactorsGridsNearSquare) {
  int px = 0, py = 0, pz = 0;
  wl::factor_grid_2d(1024, &px, &py);
  EXPECT_EQ(px, 32);
  EXPECT_EQ(py, 32);
  wl::factor_grid_2d(12, &px, &py);
  EXPECT_EQ(px, 3);
  EXPECT_EQ(py, 4);
  wl::factor_grid_2d(7, &px, &py);  // prime degenerates to a line
  EXPECT_EQ(px, 1);
  EXPECT_EQ(py, 7);
  wl::factor_grid_3d(64, &px, &py, &pz);
  EXPECT_EQ(px * py * pz, 64);
  EXPECT_EQ(px, 4);
  EXPECT_EQ(py, 4);
  EXPECT_EQ(pz, 4);
  wl::factor_grid_3d(30, &px, &py, &pz);
  EXPECT_EQ(px * py * pz, 30);
  EXPECT_LE(px, py);
  EXPECT_LE(py, pz);
}

// ---------------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------------

TEST(WorkloadGenerate, BitIdenticalAcrossRunsAndOutputPaths) {
  const char* json = R"({
    "name": "det", "ranks": 12, "seed": 31,
    "phases": [
      {"pattern": "stencil2d", "iterations": 3, "bytes": [512, 4096],
       "compute": {"flops": 2e6, "imbalance": 0.4, "jitter": 0.2}},
      {"pattern": "random_sparse", "iterations": 2, "degree": 4, "bytes": 256,
       "compute": {"flops": 1e5, "jitter": 0.3}},
      {"pattern": "alltoall", "bytes": 1024}
    ]
  })";
  const auto spec = parse_spec(json);
  const tr::TiTrace a = wl::generate_workload(spec);
  const tr::TiTrace b = wl::generate_workload(parse_spec(json));
  EXPECT_EQ(trace_text(a), trace_text(b));

  // On-disk determinism, and the --out path writes exactly the in-memory
  // records: write the pre-generated trace and the spec-generated one and
  // compare every file byte for byte.
  TempDir dir_a, dir_b;
  wl::write_trace(a, dir_a.str());
  wl::write_workload(spec, dir_b.str());
  for (int rank = 0; rank < spec.ranks; ++rank) {
    const std::string name = "rank_" + std::to_string(rank) + ".ti";
    EXPECT_EQ(file_bytes(dir_a.path / name), file_bytes(dir_b.path / name)) << name;
  }
  EXPECT_EQ(file_bytes(dir_a.path / "manifest.txt"), file_bytes(dir_b.path / "manifest.txt"));

  // A written trace loads back to the same records the generator produced.
  const tr::TiTrace loaded = tr::load_ti_trace(dir_a.str());
  EXPECT_EQ(trace_text(loaded), trace_text(a));

  // A different seed must actually change something (the imbalance draws).
  auto reseeded = spec;
  reseeded.seed = 32;
  EXPECT_NE(trace_text(wl::generate_workload(reseeded)), trace_text(a));
}

TEST(WorkloadGenerate, ImbalanceSpreadsComputeAcrossRanks) {
  const auto spec = parse_spec(R"({
    "ranks": 8, "pattern": "ring", "bytes": 64,
    "compute": {"flops": 1e6, "imbalance": 0.5}
  })");
  const tr::TiTrace trace = wl::generate_workload(spec);
  double lo = 1e300, hi = 0;
  for (const auto& records : trace.ranks) {
    for (const auto& r : records) {
      if (r.op != tr::TiOp::kCompute) continue;
      lo = std::min(lo, r.value);
      hi = std::max(hi, r.value);
      EXPECT_GE(r.value, 0.5e6);
      EXPECT_LE(r.value, 1.5e6);
    }
  }
  EXPECT_LT(lo, hi);  // eight draws from a 50% half-width cannot all collide
}

// ---------------------------------------------------------------------------
// Replayability
// ---------------------------------------------------------------------------

TEST(WorkloadReplay, EveryPatternReplaysEndToEnd) {
  for (const auto& pattern : wl::pattern_names()) {
    const auto spec = parse_spec(R"({
      "name": ")" + pattern + R"(", "ranks": 12, "seed": 5,
      "pattern": ")" + pattern + R"(",
      "iterations": 2, "bytes": 1024, "compute": {"flops": 1e5, "imbalance": 0.2}
    })");
    const tr::TiTrace trace = wl::generate_workload(spec);
    const tr::ReplayResult result = replay_on_cluster(trace);
    EXPECT_GT(result.simulated_time, 0) << pattern;
    EXPECT_EQ(result.records, trace.total_records()) << pattern;
    EXPECT_EQ(result.ranks, 12) << pattern;
  }
}

// The generator's core promise: a generated pattern is indistinguishable
// from the same pattern written as a real MPI application. The hand-written
// stencil below mirrors the documented emission order (receives first,
// sends second, waitall over receives then sends), and its online simulated
// time must match the generated trace's replay to 1e-9.
TEST(WorkloadReplay, GeneratedStencil2dMatchesHandwrittenOnlineApp) {
  const int ranks = 12;
  const int iterations = 3;
  const int bytes = 8192;
  const double flops = 1e6;

  int px = 0, py = 0;
  wl::factor_grid_2d(ranks, &px, &py);
  auto app = [=](int, char**) {
    MPI_Init(nullptr, nullptr);
    int rank = 0;
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    const int x = rank % px;
    const int y = rank / px;
    // Neighbour per direction (2*axis, 2*axis+1) = (minus, plus); -1 = edge.
    const int neighbor[4] = {
        x > 0 ? rank - 1 : -1,
        x < px - 1 ? rank + 1 : -1,
        y > 0 ? rank - px : -1,
        y < py - 1 ? rank + px : -1,
    };
    std::vector<char> halo(static_cast<std::size_t>(bytes));
    for (int iter = 0; iter < iterations; ++iter) {
      smpi_execute_flops(flops);
      std::vector<MPI_Request> requests;
      for (int d = 0; d < 4; ++d) {
        if (neighbor[d] < 0) continue;
        MPI_Request req = MPI_REQUEST_NULL;
        MPI_Irecv(halo.data(), bytes, MPI_BYTE, neighbor[d], d ^ 1, MPI_COMM_WORLD, &req);
        requests.push_back(req);
      }
      for (int d = 0; d < 4; ++d) {
        if (neighbor[d] < 0) continue;
        MPI_Request req = MPI_REQUEST_NULL;
        MPI_Isend(halo.data(), bytes, MPI_BYTE, neighbor[d], d, MPI_COMM_WORLD, &req);
        requests.push_back(req);
      }
      MPI_Waitall(static_cast<int>(requests.size()), requests.data(), MPI_STATUSES_IGNORE);
    }
    MPI_Finalize();
  };

  smpi::platform::FlatClusterParams params;
  params.nodes = ranks;
  auto platform = smpi::platform::build_flat_cluster(params);
  double online = 0;
  {
    // Scoped: only one SmpiWorld may exist, and the replay builds its own.
    smpi::core::SmpiConfig config;
    smpi::core::SmpiWorld world(platform, config);
    world.run(ranks, app);
    online = world.simulated_time();
  }

  const auto spec = parse_spec(R"({
    "name": "stencil-vs-app", "ranks": 12,
    "pattern": "stencil2d", "iterations": 3, "bytes": 8192,
    "compute": {"flops": 1e6}
  })");
  const tr::ReplayResult replay = replay_on_cluster(wl::generate_workload(spec));
  EXPECT_NEAR(replay.simulated_time, online, 1e-9 * std::max(1.0, online));
}

TEST(WorkloadReplay, Stencil1024RanksEndToEnd) {
  const auto spec = parse_spec(R"({
    "name": "stencil1024", "ranks": 1024, "seed": 11,
    "pattern": "stencil2d", "iterations": 1, "bytes": 1024,
    "compute": {"flops": 1e5, "imbalance": 0.1}
  })");
  const tr::TiTrace trace = wl::generate_workload(spec);
  EXPECT_EQ(trace.nranks, 1024);
  const tr::ReplayResult result = replay_on_cluster(trace);
  EXPECT_GT(result.simulated_time, 0);
  EXPECT_EQ(result.ranks, 1024);
  EXPECT_EQ(result.records, trace.total_records());
}

// ---------------------------------------------------------------------------
// Campaign integration
// ---------------------------------------------------------------------------

TEST(WorkloadCampaign, SweepsWorkloadAndPlatformAxesDeterministically) {
  const auto spec = smpi::campaign::CampaignSpec::parse(parse_json(R"({
    "name": "wl-axes",
    "workload": {"name": "stencil", "ranks": 8, "seed": 3, "pattern": "stencil2d",
                 "iterations": 2, "bytes": 4096, "compute": {"flops": 1e5}},
    "platform": {"kind": "flat", "nodes": 8},
    "axes": [
      {"param": "workload_bytes", "values": [512, 16384]},
      {"param": "link_bandwidth_scale", "values": [0.5, 2]}
    ]
  })",
                                                                    "campaign"));
  ASSERT_TRUE(spec.has_workload);
  ASSERT_TRUE(spec.sweeps_workload());
  const auto scenarios = smpi::campaign::enumerate_scenarios(spec);
  ASSERT_EQ(scenarios.size(), 5u);
  const tr::TiTrace baseline = wl::generate_workload(spec.workload);

  smpi::campaign::RunOptions options;
  options.workers = 1;
  const auto serial = smpi::campaign::run_campaign(spec, scenarios, baseline, options);
  options.workers = 3;
  const auto parallel = smpi::campaign::run_campaign(spec, scenarios, baseline, options);

  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    ASSERT_TRUE(serial.results[i].ok) << serial.results[i].error;
    ASSERT_TRUE(parallel.results[i].ok) << parallel.results[i].error;
    EXPECT_EQ(serial.results[i].simulated_time, parallel.results[i].simulated_time) << i;
  }
  // The baseline scenario replays the unmodified workload.
  const tr::ReplayResult direct = replay_on_cluster(baseline);
  EXPECT_EQ(serial.results[0].simulated_time, direct.simulated_time);
  // The message-size axis must actually change the trace and the outcome.
  EXPECT_NE(serial.results[1].simulated_time, serial.results[3].simulated_time);
}

TEST(WorkloadCampaign, WorkloadRanksAxisRegeneratesAtNewSize) {
  const auto spec = smpi::campaign::CampaignSpec::parse(parse_json(R"({
    "name": "wl-ranks",
    "workload": {"name": "ring", "ranks": 4, "seed": 1, "pattern": "ring", "bytes": 1024},
    "axes": [{"param": "workload_ranks", "values": [8, 16]}]
  })",
                                                                    "campaign"));
  const auto scenarios = smpi::campaign::enumerate_scenarios(spec);
  const tr::TiTrace baseline = wl::generate_workload(spec.workload);
  smpi::campaign::RunOptions options;
  const auto outcome = smpi::campaign::run_campaign(spec, scenarios, baseline, options);
  ASSERT_EQ(outcome.results.size(), 3u);
  for (const auto& r : outcome.results) ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(outcome.results[0].ranks, 4);
  EXPECT_EQ(outcome.results[1].ranks, 8);
  EXPECT_EQ(outcome.results[2].ranks, 16);
}

TEST(WorkloadCampaign, WorkloadAxisAgainstCaptureIsAHardError) {
  // A trace-sourced campaign sweeping workload_* must fail the scenario
  // with a clear message, not silently ignore the axis.
  const auto spec = smpi::campaign::CampaignSpec::parse(parse_json(R"({
    "name": "bad",
    "axes": [{"param": "workload_bytes", "values": [512]}]
  })",
                                                                    "campaign"));
  EXPECT_FALSE(spec.has_workload);
  const auto scenarios = smpi::campaign::enumerate_scenarios(spec);
  const tr::TiTrace trace = wl::generate_workload(parse_spec(
      R"({"ranks": 4, "pattern": "ring", "bytes": 64})"));
  smpi::campaign::RunOptions options;
  const auto outcome = smpi::campaign::run_campaign(spec, scenarios, trace, options);
  ASSERT_TRUE(outcome.results[0].ok);  // baseline has no workload override
  ASSERT_FALSE(outcome.results[1].ok);
  EXPECT_NE(outcome.results[1].error.find("workload"), std::string::npos);
}

TEST(WorkloadCampaign, OverridesRevalidateContracts) {
  const auto spec = smpi::campaign::CampaignSpec::parse(parse_json(R"({
    "name": "bad-grid",
    "workload": {"ranks": 16, "pattern": "stencil2d", "px": 4, "py": 4, "bytes": 64},
    "axes": [{"param": "workload_ranks", "values": [32]}]
  })",
                                                                    "campaign"));
  const auto scenarios = smpi::campaign::enumerate_scenarios(spec);
  // Scenario 1 overrides ranks to 32 under an explicit 4x4 grid: rejected.
  EXPECT_THROW(smpi::campaign::apply_workload_overrides(spec.workload, scenarios[1]),
               ContractError);
}
