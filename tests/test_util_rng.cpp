#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <set>

namespace su = smpi::util;

TEST(Xoshiro, DeterministicForSameSeed) {
  su::Xoshiro256StarStar a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Xoshiro, DifferentSeedsDiverge) {
  su::Xoshiro256StarStar a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Xoshiro, DoublesInUnitInterval) {
  su::Xoshiro256StarStar rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Xoshiro, RangeIsInclusive) {
  su::Xoshiro256StarStar rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_in_range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    saw_lo |= (v == 5);
    saw_hi |= (v == 8);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(NasLcg, ValuesInOpenUnitInterval) {
  su::NasLcg lcg;
  for (int i = 0; i < 1000; ++i) {
    const double x = lcg.randlc();
    EXPECT_GT(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(NasLcg, SkipMatchesStepping) {
  // skip(n) must land exactly where n sequential randlc() calls land — EP
  // relies on this to give each rank its own block of the global stream.
  su::NasLcg stepped;
  for (int i = 0; i < 1000; ++i) stepped.randlc();

  su::NasLcg jumped;
  jumped.skip(1000);
  EXPECT_DOUBLE_EQ(stepped.state(), jumped.state());
}

TEST(NasLcg, SkipComposes) {
  su::NasLcg a;
  a.skip(123);
  a.skip(877);
  su::NasLcg b;
  b.skip(1000);
  EXPECT_DOUBLE_EQ(a.state(), b.state());
}

TEST(NasLcg, PowerFunctionMatchesState) {
  su::NasLcg lcg;
  lcg.skip(4096);
  EXPECT_DOUBLE_EQ(lcg.state(),
                   su::nas_lcg_power(su::NasLcg::kA, 4096, su::NasLcg::kDefaultSeed));
}

TEST(MixStream, DeterministicAndArityDistinct) {
  EXPECT_EQ(su::mix_stream(7, 1, 2), su::mix_stream(7, 1, 2));
  EXPECT_EQ(su::mix_stream(7, 1, 2, 3), su::mix_stream(7, 1, 2, 3));
  // The four-level variant is a further mix, not an alias of the three-level
  // one: per-draw streams must not collide with per-entity streams.
  EXPECT_NE(su::mix_stream(7, 1, 2), su::mix_stream(7, 1, 2, 0));
  EXPECT_NE(su::mix_stream(7, 1, 2, 3), su::mix_stream(7, 1, 2, 4));
}

TEST(MixStream, NoSeedCollisionsAcrossTheStreamGrid) {
  // Every (stream, entity) pair a run can touch must get its own generator
  // seed. Sample the registry's stream classes crossed with an entity range
  // and a few base seeds: all derived seeds distinct.
  const std::uint64_t streams[] = {
      su::stream_class::kFaultHostCrash,  su::stream_class::kFaultLinkFail,
      su::stream_class::kFaultLinkDegrade, su::stream_class::kNoiseHostSpeed,
      su::stream_class::kNoiseLinkBandwidth, su::stream_class::kNoiseLinkLatency,
      su::stream_class::kNoiseMessageJitter, su::stream_class::kNoiseReplication};
  std::set<std::uint64_t> seen;
  std::size_t produced = 0;
  for (std::uint64_t seed : {0ull, 1ull, 42ull, 0xdeadbeefull}) {
    for (std::uint64_t stream : streams) {
      for (std::uint64_t entity = 0; entity < 64; ++entity) {
        seen.insert(su::mix_stream(seed, stream, entity));
        seen.insert(su::mix_stream(seed, stream, entity, 0));
        seen.insert(su::mix_stream(seed, stream, entity, 1));
        produced += 3;
      }
    }
  }
  EXPECT_EQ(seen.size(), produced);
}

TEST(MixStream, SubStreamsAreNotInLockstep) {
  // Two different stream classes under the same seed must yield generators
  // whose outputs look unrelated — no shared draws, no constant offset.
  su::Xoshiro256StarStar a(su::mix_stream(9, su::stream_class::kNoiseHostSpeed, 0));
  su::Xoshiro256StarStar b(su::mix_stream(9, su::stream_class::kNoiseLinkBandwidth, 0));
  int equal = 0;
  std::set<std::uint64_t> deltas;
  for (int i = 0; i < 256; ++i) {
    const std::uint64_t x = a.next_u64(), y = b.next_u64();
    equal += x == y ? 1 : 0;
    deltas.insert(x - y);
  }
  EXPECT_EQ(equal, 0);
  EXPECT_GT(deltas.size(), 250u) << "streams track each other";
}

TEST(NasLcg, MatchesExactIntegerArithmetic) {
  // The split-precision double trick must agree bit-for-bit with exact
  // 128-bit integer arithmetic: x_{k+1} = a * x_k mod 2^46.
  constexpr unsigned __int128 kMod = (static_cast<unsigned __int128>(1) << 46);
  unsigned __int128 x = 314159265;
  su::NasLcg lcg;
  for (int i = 0; i < 100; ++i) {
    x = (x * 1220703125u) % kMod;
    const double got = lcg.randlc();
    const double want = static_cast<double>(static_cast<std::uint64_t>(x)) * 0x1p-46;
    ASSERT_DOUBLE_EQ(got, want) << "diverged at step " << i;
  }
}
