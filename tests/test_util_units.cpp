#include "util/units.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace su = smpi::util;

TEST(ParseBytes, BinaryAndDecimalSuffixes) {
  EXPECT_EQ(su::parse_bytes("0"), 0u);
  EXPECT_EQ(su::parse_bytes("512"), 512u);
  EXPECT_EQ(su::parse_bytes("512B"), 512u);
  EXPECT_EQ(su::parse_bytes("1KiB"), 1024u);
  EXPECT_EQ(su::parse_bytes("64KiB"), 65536u);
  EXPECT_EQ(su::parse_bytes("4MiB"), 4u * 1024 * 1024);
  EXPECT_EQ(su::parse_bytes("2GiB"), 2ull * 1024 * 1024 * 1024);
  EXPECT_EQ(su::parse_bytes("1KB"), 1000u);
  EXPECT_EQ(su::parse_bytes("1MB"), 1000000u);
  EXPECT_EQ(su::parse_bytes("1.5KiB"), 1536u);
}

TEST(ParseBytes, RejectsGarbage) {
  EXPECT_THROW(su::parse_bytes(""), su::ContractError);
  EXPECT_THROW(su::parse_bytes("abc"), su::ContractError);
  EXPECT_THROW(su::parse_bytes("12XiB"), su::ContractError);
}

TEST(ParseBandwidth, BitsAndBytes) {
  EXPECT_DOUBLE_EQ(su::parse_bandwidth("1Gbps"), 125e6);
  EXPECT_DOUBLE_EQ(su::parse_bandwidth("10Gbps"), 1.25e9);
  EXPECT_DOUBLE_EQ(su::parse_bandwidth("100Mbps"), 12.5e6);
  EXPECT_DOUBLE_EQ(su::parse_bandwidth("125MByteps"), 125e6);
  EXPECT_DOUBLE_EQ(su::parse_bandwidth("1MiBps"), 1024.0 * 1024);
}

TEST(ParseDuration, CommonSuffixes) {
  EXPECT_DOUBLE_EQ(su::parse_duration("1s"), 1.0);
  EXPECT_DOUBLE_EQ(su::parse_duration("50us"), 50e-6);
  EXPECT_DOUBLE_EQ(su::parse_duration("1.5ms"), 1.5e-3);
  EXPECT_DOUBLE_EQ(su::parse_duration("2min"), 120.0);
  EXPECT_DOUBLE_EQ(su::parse_duration("3"), 3.0);
}

TEST(ParseFlops, Suffixes) {
  EXPECT_DOUBLE_EQ(su::parse_flops("1Gf"), 1e9);
  EXPECT_DOUBLE_EQ(su::parse_flops("2.5Gf"), 2.5e9);
  EXPECT_DOUBLE_EQ(su::parse_flops("100Mf"), 1e8);
  EXPECT_DOUBLE_EQ(su::parse_flops("7"), 7.0);
}

TEST(Format, RoundTripReadability) {
  EXPECT_EQ(su::format_bytes(512), "512B");
  EXPECT_EQ(su::format_bytes(65536), "64.0KiB");
  EXPECT_EQ(su::format_bytes(4u * 1024 * 1024), "4.0MiB");
  EXPECT_EQ(su::format_duration(0.5), "500.000ms");
  EXPECT_EQ(su::format_duration(2.5e-6), "2.500us");
  EXPECT_EQ(su::format_rate(125e6), "119.2MiB/s");
}
