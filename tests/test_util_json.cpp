// util/json: the minimal JSON value/parser/writer the campaign subsystem
// builds specs and result capsules from.
#include "util/json.hpp"

#include <gtest/gtest.h>

#include <string>

#include "util/check.hpp"

using smpi::util::ContractError;
using smpi::util::JsonValue;
using smpi::util::parse_json;

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_TRUE(parse_json("true").as_bool());
  EXPECT_FALSE(parse_json("false").as_bool());
  EXPECT_DOUBLE_EQ(parse_json("3.25").as_number(), 3.25);
  EXPECT_DOUBLE_EQ(parse_json("-1e-3").as_number(), -1e-3);
  EXPECT_EQ(parse_json("42").as_int(), 42);
  EXPECT_EQ(parse_json("\"hi\\n\\\"there\\\"\"").as_string(), "hi\n\"there\"");
}

TEST(Json, ParsesNestedStructures) {
  const JsonValue doc = parse_json(R"({
    "name": "sweep",
    "axes": [
      {"param": "bw", "values": [0.5, 1, 2]},
      {"param": "coll", "values": ["auto", "ring"]}
    ],
    "nested": {"deep": {"flag": true}}
  })");
  EXPECT_EQ(doc.at("name", "t").as_string(), "sweep");
  const auto& axes = doc.at("axes", "t").items();
  ASSERT_EQ(axes.size(), 2u);
  EXPECT_EQ(axes[0].at("param", "t").as_string(), "bw");
  EXPECT_EQ(axes[0].at("values", "t").items().size(), 3u);
  EXPECT_TRUE(doc.at("nested", "t").at("deep", "t").at("flag", "t").as_bool());
  EXPECT_EQ(doc.find("absent"), nullptr);
  EXPECT_THROW(doc.at("absent", "context"), ContractError);
}

TEST(Json, ReportsLineAndColumnOnErrors) {
  try {
    parse_json("{\n  \"a\": 1,\n  oops\n}", "spec.json");
    FAIL() << "expected a parse error";
  } catch (const ContractError& e) {
    EXPECT_NE(std::string(e.what()).find("spec.json:3"), std::string::npos) << e.what();
  }
}

TEST(Json, RejectsMalformedDocuments) {
  EXPECT_THROW(parse_json(""), ContractError);
  EXPECT_THROW(parse_json("{\"a\":}"), ContractError);
  EXPECT_THROW(parse_json("[1,]"), ContractError);
  EXPECT_THROW(parse_json("{\"a\":1} trailing"), ContractError);
  EXPECT_THROW(parse_json("\"unterminated"), ContractError);
  EXPECT_THROW(parse_json("{\"a\":1,\"a\":2}"), ContractError);  // duplicate key
  EXPECT_THROW(parse_json("nulL"), ContractError);
}

TEST(Json, KindMismatchesThrow) {
  const JsonValue v = parse_json("\"text\"");
  EXPECT_THROW(v.as_number(), ContractError);
  EXPECT_THROW(v.as_bool(), ContractError);
  EXPECT_THROW(v.items(), ContractError);
  EXPECT_THROW(parse_json("1.5").as_int(), ContractError);
}

TEST(Json, DumpRoundTripsBitExactDoubles) {
  const double value = 0.0012079460497095402;  // a %.17g-worthy simulated time
  JsonValue capsule = JsonValue::object();
  capsule.set("t", JsonValue::number(value));
  const JsonValue back = parse_json(capsule.dump());
  EXPECT_EQ(back.at("t", "t").as_number(), value);  // bit-equal, not just close
}

TEST(Json, DumpPreservesInsertionOrderAndFormats) {
  JsonValue doc = JsonValue::object();
  doc.set("b", JsonValue::number(1));
  doc.set("a", JsonValue::array().append(JsonValue::string("x")).append(JsonValue::null()));
  EXPECT_EQ(doc.dump(), "{\"b\":1,\"a\":[\"x\",null]}");
  const std::string pretty = doc.dump(2);
  EXPECT_NE(pretty.find("\"b\": 1"), std::string::npos);
  // set() replaces in place, keeping position.
  doc.set("b", JsonValue::number(7));
  EXPECT_EQ(doc.dump(), "{\"b\":7,\"a\":[\"x\",null]}");
}
