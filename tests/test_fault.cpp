// Failure-model tests: fault-spec parsing, seeded-random resolution
// determinism, host-crash propagation into blocked operations under both
// policies, link degradation, and the empty-spec bit-identity guarantee.
#include "sim/fault.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "smpi_test_util.hpp"
#include "util/check.hpp"

using namespace smpi_test;
namespace ss = smpi::sim;
namespace sc = smpi::core;
using smpi::util::ContractError;

namespace {

ss::TargetIndex fake_index(int hosts, int links) {
  ss::TargetIndex index;
  index.host_count = hosts;
  index.link_count = links;
  index.find_host = [hosts](const std::string& name) {
    return name.rfind("h", 0) == 0 ? std::stoi(name.substr(1)) % hosts : -1;
  };
  index.find_link = [links](const std::string& name) {
    return name.rfind("l", 0) == 0 ? std::stoi(name.substr(1)) % links : -1;
  };
  return index;
}

}  // namespace

TEST(FaultSpec, ParsesInlineEventsAndPolicy) {
  const auto spec = ss::FaultSpec::parse_text(R"({
    "policy": "detect",
    "events": [
      {"kind": "host_crash", "time": 0.5, "host": "node-3"},
      {"kind": "link_degrade", "time": 1.0, "link": "up-node-0", "factor": 0.25}
    ]
  })");
  EXPECT_EQ(spec.policy, ss::FailurePolicy::kDetect);
  EXPECT_FALSE(spec.empty());
  ASSERT_EQ(spec.events.size(), 2u);
  EXPECT_EQ(spec.events[0].kind, ss::FaultEvent::Kind::kHostCrash);
  EXPECT_EQ(spec.events[0].target, "node-3");
  EXPECT_DOUBLE_EQ(spec.events[1].factor, 0.25);
}

TEST(FaultSpec, RejectsBadSpecs) {
  EXPECT_THROW(ss::FaultSpec::parse_text(R"({"policy": "retry"})"), ContractError);
  EXPECT_THROW(
      ss::FaultSpec::parse_text(R"({"events": [{"kind": "meteor", "time": 1, "host": "x"}]})"),
      ContractError);
  EXPECT_THROW(ss::FaultSpec::parse_text(
                   R"({"events": [{"kind": "link_degrade", "time": 1, "link": "l", "factor": 2}]})"),
               ContractError);
  EXPECT_TRUE(ss::FaultSpec::parse_text(R"({})").empty());
}

TEST(FaultSpec, RandomResolutionIsSeedReproducible) {
  auto spec = ss::FaultSpec::parse_text(R"({
    "random": {"seed": 7, "host_crashes": 3, "link_failures": 2,
               "link_degradations": 2, "time_min": 0.1, "time_max": 9, "mttr": 1}
  })");
  const auto index = fake_index(8, 16);
  const auto a = ss::resolve_faults(spec, index);
  const auto b = ss::resolve_faults(spec, index);
  // 3 crashes + 2 failures + 2 degradations, each with an mttr recovery.
  ASSERT_EQ(a.size(), 14u);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].target, b[i].target);
    EXPECT_DOUBLE_EQ(a[i].time, b[i].time);
    EXPECT_DOUBLE_EQ(a[i].factor, b[i].factor);
  }
  for (std::size_t i = 1; i < a.size(); ++i) EXPECT_LE(a[i - 1].time, a[i].time);

  spec.random.seed = 8;
  const auto c = ss::resolve_faults(spec, index);
  bool differs = c.size() != a.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a[i].time != c[i].time || a[i].target != c[i].target;
  }
  EXPECT_TRUE(differs) << "seed change must perturb the drawn faults";
}

TEST(Fault, HostCrashAbortsBlockedTransfer) {
  auto platform = test_cluster(2);
  sc::SmpiConfig config = fast_config();
  // 1 MB at 1e8 B/s takes ~10 ms; the crash lands mid-transfer.
  config.faults = ss::FaultSpec::parse_text(
      R"({"policy": "abort", "events": [{"kind": "host_crash", "time": 0.005, "host": "node-1"}]})");
  sc::SmpiWorld world(platform, config);
  world.run(2, [](int, char**) {
    MPI_Init(nullptr, nullptr);
    std::vector<char> buf(1 << 20);
    if (my_rank() == 0) {
      MPI_Send(buf.data(), static_cast<int>(buf.size()), MPI_BYTE, 1, 0, MPI_COMM_WORLD);
    } else {
      MPI_Recv(buf.data(), static_cast<int>(buf.size()), MPI_BYTE, 0, 0, MPI_COMM_WORLD,
               MPI_STATUS_IGNORE);
    }
    MPI_Finalize();
  });
  EXPECT_TRUE(world.aborted());
  EXPECT_EQ(world.abort_code(), -2);
  EXPECT_NE(world.failure_diagnostic().find("failed"), std::string::npos)
      << world.failure_diagnostic();
}

// Regression: a crash mid-collective unwinds the dead ranks' frames while
// transfers between the *surviving* nodes are still in flight. Their
// completion callbacks hold raw Request pointers into actor stacks; the
// engine must freeze at the abort date instead of dispatching them
// (heap-use-after-free under ASan otherwise).
TEST(Fault, AbortMidCollectiveLeavesInFlightTransfersUndispatched) {
  auto platform = test_cluster(8);
  sc::SmpiConfig config = fast_config();
  config.faults = ss::FaultSpec::parse_text(
      R"({"policy": "abort", "events": [{"kind": "host_crash", "time": 0.002, "host": "node-5"}]})");
  sc::SmpiWorld world(platform, config);
  world.run(8, [](int, char**) {
    MPI_Init(nullptr, nullptr);
    int size = 0;
    MPI_Comm_size(MPI_COMM_WORLD, &size);
    const int chunk = 65536;
    std::vector<char> send(static_cast<std::size_t>(size) * chunk, 'x');
    std::vector<char> recv(send.size());
    for (int iter = 0; iter < 8; ++iter) {
      MPI_Alltoall(send.data(), chunk, MPI_BYTE, recv.data(), chunk, MPI_BYTE, MPI_COMM_WORLD);
    }
    MPI_Finalize();
  });
  EXPECT_TRUE(world.aborted());
  EXPECT_EQ(world.abort_code(), -2);
  EXPECT_NE(world.failure_diagnostic().find("node 5"), std::string::npos)
      << world.failure_diagnostic();
}

TEST(Fault, HostCrashDetectPolicyReportsDeadlock) {
  auto platform = test_cluster(2);
  sc::SmpiConfig config = fast_config();
  config.faults = ss::FaultSpec::parse_text(
      R"({"policy": "detect", "events": [{"kind": "host_crash", "time": 0.005, "host": "node-1"}]})");
  sc::SmpiWorld world(platform, config);
  try {
    world.run(2, [](int, char**) {
      MPI_Init(nullptr, nullptr);
      std::vector<char> buf(1 << 20);
      if (my_rank() == 0) {
        MPI_Send(buf.data(), static_cast<int>(buf.size()), MPI_BYTE, 1, 0, MPI_COMM_WORLD);
      } else {
        MPI_Recv(buf.data(), static_cast<int>(buf.size()), MPI_BYTE, 0, 0, MPI_COMM_WORLD,
                 MPI_STATUS_IGNORE);
      }
      MPI_Finalize();
    });
    FAIL() << "detect policy must leave the ranks deadlocked";
  } catch (const ss::DeadlockError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("wait-for state"), std::string::npos) << what;
    EXPECT_NE(what.find("failed-op"), std::string::npos) << what;
  }
}

TEST(Fault, ComputeFailsOnDeadHost) {
  auto platform = test_cluster(2);
  sc::SmpiConfig config = fast_config();
  config.faults = ss::FaultSpec::parse_text(
      R"({"policy": "abort", "events": [{"kind": "host_crash", "time": 0.1, "host": "node-1"}]})");
  sc::SmpiWorld world(platform, config);
  world.run(2, [](int, char**) {
    MPI_Init(nullptr, nullptr);
    if (my_rank() == 1) smpi_execute_flops(1e10);  // 10 s on a 1e9 flop/s node
    MPI_Finalize();
  });
  EXPECT_TRUE(world.aborted());
  EXPECT_NE(world.failure_diagnostic().find("compute"), std::string::npos)
      << world.failure_diagnostic();
}

TEST(Fault, LinkDegradeSlowsTransfer) {
  const auto body = [] {
    std::vector<char> buf(1 << 20);
    if (my_rank() == 0) {
      MPI_Send(buf.data(), static_cast<int>(buf.size()), MPI_BYTE, 1, 0, MPI_COMM_WORLD);
    } else {
      MPI_Recv(buf.data(), static_cast<int>(buf.size()), MPI_BYTE, 0, 0, MPI_COMM_WORLD,
               MPI_STATUS_IGNORE);
    }
  };
  const double baseline = run_mpi(2, body);
  sc::SmpiConfig degraded = fast_config();
  degraded.faults = ss::FaultSpec::parse_text(
      R"({"events": [{"kind": "link_degrade", "time": 0, "link": "up-node-0", "factor": 0.5}]})");
  auto platform = test_cluster(2);
  sc::SmpiWorld world(platform, degraded);
  world.run(2, [&body](int, char**) {
    MPI_Init(nullptr, nullptr);
    body();
    MPI_Finalize();
  });
  EXPECT_FALSE(world.aborted());
  EXPECT_GT(world.simulated_time(), baseline * 1.2)
      << "halving the uplink must slow the transfer";
}

TEST(Fault, EmptySpecIsBitIdenticalToFaultFree) {
  const auto body = [] {
    std::vector<char> buf(1 << 16);
    const int peer = my_rank() ^ 1;
    MPI_Sendrecv(buf.data(), static_cast<int>(buf.size()), MPI_BYTE, peer, 0, buf.data(),
                 static_cast<int>(buf.size()), MPI_BYTE, peer, 0, MPI_COMM_WORLD,
                 MPI_STATUS_IGNORE);
    smpi_execute_flops(1e8);
  };
  const double fault_free = run_mpi(4, body);
  sc::SmpiConfig config = fast_config();
  config.faults = ss::FaultSpec{};  // explicitly empty
  const double with_empty_spec = run_mpi(4, body, config);
  EXPECT_EQ(fault_free, with_empty_spec);  // bit-identical, not just close
}

TEST(Fault, SeededRandomRunIsBitReproducible) {
  const auto run_once = [](std::uint64_t seed) {
    auto platform = test_cluster(4);
    sc::SmpiConfig config = fast_config();
    config.faults = ss::FaultSpec::parse_text(
        R"({"policy": "abort", "random": {"seed": )" + std::to_string(seed) +
        R"(, "host_crashes": 1, "time_min": 0.001, "time_max": 0.02}})");
    sc::SmpiWorld world(platform, config);
    world.run(4, [](int, char**) {
      MPI_Init(nullptr, nullptr);
      std::vector<char> buf(1 << 20);
      const int peer = my_rank() ^ 1;
      MPI_Sendrecv(buf.data(), static_cast<int>(buf.size()), MPI_BYTE, peer, 0, buf.data(),
                   static_cast<int>(buf.size()), MPI_BYTE, peer, 0, MPI_COMM_WORLD,
                   MPI_STATUS_IGNORE);
      MPI_Finalize();
    });
    return std::make_pair(world.simulated_time(), world.failure_diagnostic());
  };
  const auto a = run_once(11);
  const auto b = run_once(11);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}
