#include <gtest/gtest.h>

#include <chrono>
#include <cmath>

#include "apps/dt.hpp"
#include "apps/ep.hpp"
#include "smpi_test_util.hpp"
#include "util/check.hpp"

namespace ap = smpi::apps;
namespace sc = smpi::core;
using namespace smpi_test;

// ---------------------------------------------------------------------------
// DT graph shapes (the paper's process-count table, §7.1.4 & Figures 13-14).
// ---------------------------------------------------------------------------

TEST(DtGraph, ProcessCountsMatchThePaper) {
  using ap::DtClass;
  using ap::DtGraph;
  // WH and BH: 21, 43, 85 processes for classes A, B, C.
  EXPECT_EQ(ap::dt_process_count(DtGraph::kWhiteHole, DtClass::kA), 21);
  EXPECT_EQ(ap::dt_process_count(DtGraph::kWhiteHole, DtClass::kB), 43);
  EXPECT_EQ(ap::dt_process_count(DtGraph::kWhiteHole, DtClass::kC), 85);
  EXPECT_EQ(ap::dt_process_count(DtGraph::kBlackHole, DtClass::kA), 21);
  EXPECT_EQ(ap::dt_process_count(DtGraph::kBlackHole, DtClass::kB), 43);
  EXPECT_EQ(ap::dt_process_count(DtGraph::kBlackHole, DtClass::kC), 85);
  // SH: 80, 192, 448.
  EXPECT_EQ(ap::dt_process_count(DtGraph::kShuffle, DtClass::kA), 80);
  EXPECT_EQ(ap::dt_process_count(DtGraph::kShuffle, DtClass::kB), 192);
  EXPECT_EQ(ap::dt_process_count(DtGraph::kShuffle, DtClass::kC), 448);
}

TEST(DtGraph, BlackHoleConvergesToOneSink) {
  const auto spec = ap::build_dt_graph(ap::DtGraph::kBlackHole, ap::DtClass::kA);
  EXPECT_EQ(spec.node_count(), 21);
  EXPECT_EQ(spec.source_count(), 16);
  EXPECT_EQ(spec.sink_count(), 1);
  // The sink is the last node and has 4 predecessors (Figure 13's shape).
  EXPECT_EQ(spec.predecessors.back().size(), 4u);
  // Sources have no predecessors and exactly one successor.
  for (int n = 0; n < 16; ++n) {
    EXPECT_TRUE(spec.predecessors[static_cast<std::size_t>(n)].empty());
    EXPECT_EQ(spec.successors[static_cast<std::size_t>(n)].size(), 1u);
  }
}

TEST(DtGraph, WhiteHoleMirrorsBlackHole) {
  const auto spec = ap::build_dt_graph(ap::DtGraph::kWhiteHole, ap::DtClass::kA);
  EXPECT_EQ(spec.source_count(), 1);
  EXPECT_EQ(spec.sink_count(), 16);
  // Node 0 feeds 4 consumers, as in Figure 14.
  EXPECT_EQ(spec.successors[0].size(), 4u);
}

TEST(DtGraph, ShuffleHasConstantWidthLayers) {
  const auto spec = ap::build_dt_graph(ap::DtGraph::kShuffle, ap::DtClass::kS);
  EXPECT_EQ(spec.node_count(), 12);  // 4 x 3
  EXPECT_EQ(spec.source_count(), 4);
  EXPECT_EQ(spec.sink_count(), 4);
  // Interior nodes have 4 predecessors (the shuffle).
  for (int n = 4; n < 12; ++n) {
    EXPECT_EQ(spec.predecessors[static_cast<std::size_t>(n)].size(), 4u);
  }
}

TEST(DtGraph, EdgesAreAcyclicAndLayered) {
  for (auto graph : {ap::DtGraph::kBlackHole, ap::DtGraph::kWhiteHole, ap::DtGraph::kShuffle}) {
    const auto spec = ap::build_dt_graph(graph, ap::DtClass::kW);
    for (int n = 0; n < spec.node_count(); ++n) {
      for (int succ : spec.successors[static_cast<std::size_t>(n)]) {
        EXPECT_EQ(spec.layer[static_cast<std::size_t>(succ)],
                  spec.layer[static_cast<std::size_t>(n)] + 1);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// DT end-to-end: simulated run matches the serial dataflow reference.
// ---------------------------------------------------------------------------

class DtEndToEnd : public ::testing::TestWithParam<ap::DtGraph> {};

TEST_P(DtEndToEnd, ChecksumMatchesSerialReference) {
  ap::DtParams params;
  params.graph = GetParam();
  params.cls = ap::DtClass::kS;
  params.scale = 0.1;  // keep the test fast
  const int nprocs = ap::dt_process_count(params.graph, params.cls);
  auto platform = test_cluster(nprocs);
  sc::SmpiWorld world(platform, fast_config());
  world.run(nprocs, ap::make_dt_app(params));
  EXPECT_GT(world.simulated_time(), 0);
  EXPECT_NEAR(ap::dt_last_checksum(), ap::dt_reference_checksum(params),
              ap::dt_reference_checksum(params) * 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Graphs, DtEndToEnd,
                         ::testing::Values(ap::DtGraph::kBlackHole, ap::DtGraph::kWhiteHole,
                                           ap::DtGraph::kShuffle));

TEST(DtApp, FoldedMemoryShrinksFootprintButKeepsTraffic) {
  ap::DtParams params;
  // WH: every node holds an equal-size array, so all 11 class-W ranks fold
  // into a single physical block (the paper's m x s -> s reduction).
  params.graph = ap::DtGraph::kWhiteHole;
  params.cls = ap::DtClass::kW;
  params.scale = 0.5;
  const int nprocs = ap::dt_process_count(params.graph, params.cls);
  auto platform = test_cluster(nprocs);

  sc::MemoryReport unfolded, folded;
  double t_unfolded = 0, t_folded = 0;
  {
    sc::SmpiWorld world(platform, fast_config());
    world.run(nprocs, ap::make_dt_app(params));
    unfolded = world.memory_report();
    t_unfolded = world.simulated_time();
  }
  {
    ap::DtParams fold = params;
    fold.fold_memory = true;
    sc::SmpiWorld world(platform, fast_config());
    world.run(nprocs, ap::make_dt_app(fold));
    folded = world.memory_report();
    t_folded = world.simulated_time();
  }
  // Folding cuts the physically-allocated footprint by a large factor...
  EXPECT_LT(folded.folded_peak_bytes, unfolded.folded_peak_bytes / 2);
  // ...while the application-level (unfolded) footprint stays identical...
  EXPECT_EQ(folded.unfolded_peak_bytes, unfolded.unfolded_peak_bytes);
  // ...and the simulated execution time is essentially unchanged (§7.2).
  EXPECT_NEAR(t_folded, t_unfolded, t_unfolded * 0.05);
}

// ---------------------------------------------------------------------------
// EP.
// ---------------------------------------------------------------------------

TEST(EpApp, MatchesSerialReferenceWithFullSampling) {
  ap::EpParams params;
  params.log2_pairs = 16;
  params.batches = 8;
  params.sampling_ratio = 1.0;
  const auto reference = ap::ep_reference(params);
  auto platform = test_cluster(4);
  sc::SmpiWorld world(platform, fast_config());
  world.run(4, ap::make_ep_app(params));
  const auto result = ap::ep_last_result();
  EXPECT_EQ(result.gaussian_pairs(), reference.gaussian_pairs());
  EXPECT_NEAR(result.sum_x, reference.sum_x, std::max(std::abs(reference.sum_x) * 1e-9, 1e-9));
  EXPECT_NEAR(result.sum_y, reference.sum_y, std::max(std::abs(reference.sum_y) * 1e-9, 1e-9));
  EXPECT_EQ(result.annuli, reference.annuli);
}

TEST(EpApp, GaussianAcceptanceRateIsPlausible) {
  ap::EpParams params;
  params.log2_pairs = 16;
  const auto reference = ap::ep_reference(params);
  // Marsaglia accepts pi/4 ~ 78.5% of pairs.
  const double rate =
      static_cast<double>(reference.gaussian_pairs()) / static_cast<double>(1 << 16);
  EXPECT_NEAR(rate, 0.785, 0.02);
}

// Sampling folds *measured host time* of compute bursts into simulated
// time, so this test only holds when host timing is representative.
#if defined(__SANITIZE_ADDRESS__)
#define SMPI_TIMING_DISTORTED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define SMPI_TIMING_DISTORTED 1
#endif
#endif

TEST(EpApp, SamplingReducesHostWorkNotSimulatedShape) {
#if defined(SMPI_TIMING_DISTORTED)
  GTEST_SKIP() << "sanitizer overhead distorts the wall-clock-derived simulated times";
#endif
  ap::EpParams full, quarter;
  full.log2_pairs = quarter.log2_pairs = 18;
  full.batches = quarter.batches = 16;
  full.sampling_ratio = 1.0;
  quarter.sampling_ratio = 0.25;
  EXPECT_EQ(ap::ep_sample_budget(full), 16);
  EXPECT_EQ(ap::ep_sample_budget(quarter), 4);

  auto run_ep = [](const ap::EpParams& params, double* wall_seconds) {
    auto platform = test_cluster(4);
    sc::SmpiWorld world(platform, fast_config());
    const auto start = std::chrono::steady_clock::now();
    world.run(4, ap::make_ep_app(params));
    *wall_seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    return world.simulated_time();
  };
  double wall_full = 0, wall_quarter = 0;
  const double sim_full = run_ep(full, &wall_full);
  const double sim_quarter = run_ep(quarter, &wall_quarter);
  // Host (wall-clock) work shrinks with the ratio...
  EXPECT_LT(wall_quarter, wall_full * 0.7);
  // ...while the simulated execution time stays put (Figure 18's dashed
  // lines): folded batches replay the measured mean.
  EXPECT_NEAR(sim_quarter, sim_full, sim_full * 0.35);
}

TEST(EpApp, RejectsBadSamplingRatio) {
  ap::EpParams params;
  params.sampling_ratio = 0;
  EXPECT_THROW(ap::ep_sample_budget(params), smpi::util::ContractError);
  params.sampling_ratio = 1.5;
  EXPECT_THROW(ap::ep_sample_budget(params), smpi::util::ContractError);
}
