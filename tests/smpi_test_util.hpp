// Shared fixture helpers for the MPI-layer tests: build a small flat
// cluster, run an MPI program over N simulated processes, return the
// simulated time.
#pragma once

#include <functional>

#include "platform/builders.hpp"
#include "smpi/mpi.h"
#include "smpi/smpi.hpp"

namespace smpi_test {

inline smpi::core::SmpiConfig fast_config() {
  smpi::core::SmpiConfig config;
  config.network.bandwidth_efficiency = 1.0;
  config.network.tcp_window_bytes = 0;
  return config;
}

inline smpi::platform::Platform test_cluster(int nodes) {
  smpi::platform::FlatClusterParams params;
  params.nodes = nodes < 2 ? 2 : nodes;
  params.link_bandwidth_bps = 1e8;
  params.link_latency_s = 1e-4;
  params.speed_flops = 1e9;
  return smpi::platform::build_flat_cluster(params);
}

// Runs `body` as an MPI application on `nprocs` ranks over `platform`.
inline double run_mpi_on(const smpi::platform::Platform& platform, int nprocs,
                         const std::function<void()>& body,
                         const smpi::core::SmpiConfig& config = fast_config()) {
  smpi::core::SmpiWorld world(platform, config);
  world.run(nprocs, [&body](int, char**) {
    MPI_Init(nullptr, nullptr);
    body();
    MPI_Finalize();
  });
  return world.simulated_time();
}

// Runs `body` as an MPI application on `nprocs` ranks; returns simulated time.
inline double run_mpi(int nprocs, const std::function<void()>& body,
                      smpi::core::SmpiConfig config = fast_config()) {
  auto platform = test_cluster(nprocs);
  return run_mpi_on(platform, nprocs, body, config);
}

// Two cabinets joined by one narrow uplink pair: concurrent cross-cabinet
// flows contend hard, which is what the contention-sensitivity tests need.
inline smpi::platform::Platform two_cabinet_cluster(int nodes_per_cabinet) {
  smpi::platform::HierarchicalClusterParams params;
  params.cabinet_sizes = {nodes_per_cabinet, nodes_per_cabinet};
  params.node_bandwidth_bps = 1e8;
  params.node_latency_s = 1e-4;
  params.uplink_bandwidth_bps = 1e8;  // as narrow as a node link
  params.uplink_latency_s = 1e-4;
  params.speed_flops = 1e9;
  return smpi::platform::build_hierarchical_cluster(params);
}

inline int my_rank() {
  int rank = -1;
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  return rank;
}

inline int world_size() {
  int size = -1;
  MPI_Comm_size(MPI_COMM_WORLD, &size);
  return size;
}

}  // namespace smpi_test
