// Campaign subsystem tests: spec parsing, scenario enumeration, platform
// override materialization (including the hard-error contract on unknown
// targets), worker-pool determinism (1 worker == N workers, bit-equal), and
// the baseline scenario reproducing the online simulated time.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "apps/ep.hpp"
#include "campaign/report.hpp"
#include "campaign/runner.hpp"
#include "campaign/spec.hpp"
#include "noise/noise.hpp"
#include "platform/builders.hpp"
#include "smpi/smpi.hpp"
#include "trace/capture.hpp"
#include "trace/reader.hpp"
#include "trace/writer.hpp"
#include "util/check.hpp"
#include "util/json.hpp"
#include "workload/generate.hpp"

namespace fs = std::filesystem;
namespace cp = smpi::campaign;
using smpi::util::ContractError;
using smpi::util::JsonValue;
using smpi::util::parse_json;

namespace {

struct TempDir {
  fs::path path;
  TempDir() {
    static int counter = 0;
    path = fs::temp_directory_path() /
           ("smpi_campaign_test_" + std::to_string(::getpid()) + "_" + std::to_string(counter++));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

// Captures a small EP run at `nprocs` ranks into `dir`; returns the online
// simulated time.
double capture_ep(int nprocs, const std::string& dir) {
  smpi::platform::FlatClusterParams params;
  params.nodes = nprocs;
  auto platform = smpi::platform::build_flat_cluster(params);
  smpi::core::SmpiConfig config;
  smpi::core::SmpiWorld world(platform, config);
  smpi::trace::TiWriter writer(dir, nprocs, "ep");
  smpi::trace::install_capture(&writer, nullptr);
  smpi::apps::EpParams ep;
  ep.log2_pairs = 12;
  try {
    world.run(nprocs, smpi::apps::make_ep_app(ep));
  } catch (...) {
    smpi::trace::clear_capture();
    throw;
  }
  smpi::trace::clear_capture();
  writer.finish();
  return world.simulated_time();
}

cp::CampaignSpec parse_spec(const std::string& text) {
  return cp::CampaignSpec::parse(parse_json(text, "test spec"));
}

}  // namespace

// ---------------------------------------------------------------------------
// Spec parsing + enumeration
// ---------------------------------------------------------------------------

TEST(CampaignSpec, ParsesAxesAndPlatform) {
  const auto spec = parse_spec(R"({
    "name": "sweep",
    "trace": "ti_dir",
    "platform": {"kind": "flat", "nodes": 16},
    "axes": [
      {"param": "link_bandwidth_scale", "values": [0.5, 2]},
      {"param": "host_speed", "host": "node-0", "values": [1e9]},
      {"param": "coll_bcast", "values": ["binomial"]},
      {"param": "payload_free", "values": [true, false]}
    ]
  })");
  EXPECT_EQ(spec.name, "sweep");
  EXPECT_EQ(spec.trace_dir, "ti_dir");
  EXPECT_EQ(spec.base_kind, cp::CampaignSpec::BaseKind::kFlat);
  EXPECT_EQ(spec.base_nodes, 16);
  ASSERT_EQ(spec.axes.size(), 4u);
  EXPECT_EQ(spec.axes[1].key(), "host_speed:node-0");
  EXPECT_EQ(spec.axes[1].target, "node-0");
}

TEST(CampaignSpec, RejectsBadSpecs) {
  EXPECT_THROW(parse_spec(R"({"axes": [{"param": "warp_speed", "values": [1]}]})"),
               ContractError);  // unknown param
  EXPECT_THROW(parse_spec(R"({"axes": [{"param": "host_speed", "values": [1e9]}]})"),
               ContractError);  // missing host target
  EXPECT_THROW(parse_spec(R"({"axes": [{"param": "cpu_scale", "values": []}]})"),
               ContractError);  // empty values
  EXPECT_THROW(parse_spec(R"({"axes": [{"param": "cpu_scale", "values": ["x"]}]})"),
               ContractError);  // wrong value type
  EXPECT_THROW(parse_spec(R"({"axes": [
      {"param": "cpu_scale", "values": [1]},
      {"param": "cpu_scale", "values": [2]}]})"),
               ContractError);  // duplicate axis
  EXPECT_THROW(parse_spec(R"({"platform": {"kind": "torus"}})"), ContractError);
  EXPECT_THROW(parse_spec(R"({"axes": [
      {"param": "cpu_scale", "host": "node-0", "values": [1]}]})"),
               ContractError);  // target on an untargeted param
}

TEST(CampaignSpec, EnumeratesBaselinePlusCrossProduct) {
  const auto spec = parse_spec(R"({
    "axes": [
      {"param": "link_bandwidth_scale", "values": [0.5, 1, 2]},
      {"param": "host_speed_scale", "values": [1, 4]}
    ]
  })");
  const auto scenarios = cp::enumerate_scenarios(spec);
  ASSERT_EQ(scenarios.size(), 7u);  // baseline + 3 x 2
  EXPECT_EQ(scenarios[0].label, "baseline");
  EXPECT_TRUE(scenarios[0].params.empty());
  // Row-major: the last axis varies fastest.
  EXPECT_EQ(scenarios[1].label, "link_bandwidth_scale=0.5 host_speed_scale=1");
  EXPECT_EQ(scenarios[2].label, "link_bandwidth_scale=0.5 host_speed_scale=4");
  EXPECT_EQ(scenarios[3].label, "link_bandwidth_scale=1 host_speed_scale=1");
  EXPECT_EQ(scenarios[6].label, "link_bandwidth_scale=2 host_speed_scale=4");
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    EXPECT_EQ(scenarios[i].id, static_cast<int>(i));
  }
}

// ---------------------------------------------------------------------------
// Scenario materialization
// ---------------------------------------------------------------------------

TEST(CampaignMaterialize, AppliesScalesAndAbsolutes) {
  const auto spec = parse_spec(R"({
    "platform": {"kind": "flat", "nodes": 4},
    "axes": [
      {"param": "link_bandwidth_scale", "values": [2]},
      {"param": "host_speed", "host": "node-0", "values": [5e9]},
      {"param": "cpu_scale", "values": [3]},
      {"param": "coll_alltoall", "values": ["pairwise"]},
      {"param": "payload_free", "values": [false]}
    ]
  })");
  const auto scenarios = cp::enumerate_scenarios(spec);
  ASSERT_EQ(scenarios.size(), 2u);
  const auto setup = cp::materialize(spec, scenarios[1], 4);
  const auto baseline = cp::materialize(spec, scenarios[0], 4);
  for (int l = 0; l < setup.platform.link_count(); ++l) {
    EXPECT_DOUBLE_EQ(setup.platform.link(l).bandwidth_bps,
                     2 * baseline.platform.link(l).bandwidth_bps);
  }
  EXPECT_DOUBLE_EQ(setup.platform.host(0).speed_flops, 5e9);
  EXPECT_DOUBLE_EQ(setup.platform.host(1).speed_flops, baseline.platform.host(1).speed_flops);
  EXPECT_DOUBLE_EQ(setup.config.cpu_scale, 3.0);
  EXPECT_EQ(setup.config.coll.alltoall, "pairwise");
  EXPECT_FALSE(setup.payload_free);
  EXPECT_TRUE(baseline.payload_free);
}

TEST(CampaignMaterialize, UnknownTargetsAreHardErrors) {
  const auto host_spec = parse_spec(R"({
    "platform": {"kind": "flat", "nodes": 4},
    "axes": [{"param": "host_speed", "host": "node-99", "values": [1e9]}]
  })");
  EXPECT_THROW(cp::materialize(host_spec, cp::enumerate_scenarios(host_spec)[1], 4),
               ContractError);
  const auto link_spec = parse_spec(R"({
    "platform": {"kind": "flat", "nodes": 4},
    "axes": [{"param": "link_bandwidth", "link": "no-such-link", "values": [1e9]}]
  })");
  EXPECT_THROW(cp::materialize(link_spec, cp::enumerate_scenarios(link_spec)[1], 4),
               ContractError);
}

TEST(CampaignMaterialize, PlacementPolicies) {
  const auto spec = parse_spec(R"({
    "platform": {"kind": "flat", "nodes": 4},
    "axes": [{"param": "placement", "values": ["block", "stride:2", "round_robin", "diagonal"]}]
  })");
  const auto scenarios = cp::enumerate_scenarios(spec);
  const auto block = cp::materialize(spec, scenarios[1], 8);
  EXPECT_EQ(block.config.placement, (std::vector<int>{0, 0, 1, 1, 2, 2, 3, 3}));
  const auto strided = cp::materialize(spec, scenarios[2], 8);
  EXPECT_EQ(strided.config.placement, (std::vector<int>{0, 2, 0, 2, 0, 2, 0, 2}));
  const auto rr = cp::materialize(spec, scenarios[3], 8);
  EXPECT_EQ(rr.config.placement, (std::vector<int>{0, 1, 2, 3, 0, 1, 2, 3}));
  EXPECT_THROW(cp::materialize(spec, scenarios[4], 8), ContractError);  // unknown policy
}

TEST(CampaignMaterialize, TopologyNodesRebuildsFlatBase) {
  const auto spec = parse_spec(R"({
    "platform": {"kind": "flat", "nodes": 4},
    "axes": [{"param": "topology_nodes", "values": [9]}]
  })");
  const auto scenarios = cp::enumerate_scenarios(spec);
  EXPECT_EQ(cp::materialize(spec, scenarios[0], 4).platform.host_count(), 4);
  EXPECT_EQ(cp::materialize(spec, scenarios[1], 4).platform.host_count(), 9);
}

// ---------------------------------------------------------------------------
// End-to-end: determinism across worker counts + baseline equivalence
// ---------------------------------------------------------------------------

TEST(CampaignRun, DeterministicAcrossWorkerCountsAndMatchesOnline) {
  TempDir dir;
  const int nranks = 4;
  const double online_time = capture_ep(nranks, dir.str());
  const auto trace = smpi::trace::load_ti_trace(dir.str());

  auto spec = parse_spec(R"({
    "name": "determinism",
    "platform": {"kind": "flat"},
    "axes": [
      {"param": "link_bandwidth_scale", "values": [0.5, 1, 2]},
      {"param": "host_speed_scale", "values": [1, 4]}
    ]
  })");
  const auto scenarios = cp::enumerate_scenarios(spec);
  ASSERT_EQ(scenarios.size(), 7u);

  cp::RunOptions one;
  one.workers = 1;
  const auto serial = cp::run_campaign(spec, scenarios, trace, one);
  cp::RunOptions many;
  many.workers = 3;
  const auto parallel = cp::run_campaign(spec, scenarios, trace, many);

  ASSERT_EQ(serial.results.size(), scenarios.size());
  ASSERT_EQ(parallel.results.size(), scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    ASSERT_TRUE(serial.results[i].ok) << serial.results[i].error;
    ASSERT_TRUE(parallel.results[i].ok) << parallel.results[i].error;
    // Bit-equal, not approximately equal: scenario processes see identical
    // inputs whatever the worker count, and capsules carry %.17g doubles.
    EXPECT_EQ(serial.results[i].simulated_time, parallel.results[i].simulated_time)
        << "scenario " << i;
    EXPECT_EQ(serial.results[i].rank_comm_s, parallel.results[i].rank_comm_s);
    EXPECT_EQ(serial.results[i].solver_vars_touched, parallel.results[i].solver_vars_touched);
  }

  // The unmodified-platform scenario must reproduce the online run.
  EXPECT_NEAR(serial.results[0].simulated_time, online_time, 1e-9 * online_time + 1e-12);

  // Physics sanity inside the sweep: 4x hosts never slow the app down.
  const double base = serial.results[0].simulated_time;
  const double fast_hosts = serial.results[4].simulated_time;  // bw=1, speed=4
  EXPECT_LE(fast_hosts, base * (1 + 1e-12));
}

TEST(CampaignRun, ScenarioFailuresAreCapsulesNotCrashes) {
  TempDir dir;
  capture_ep(2, dir.str());
  const auto trace = smpi::trace::load_ti_trace(dir.str());
  const auto spec = parse_spec(R"({
    "platform": {"kind": "flat"},
    "axes": [{"param": "host_speed", "host": "node-777", "values": [1e9]}]
  })");
  const auto scenarios = cp::enumerate_scenarios(spec);
  cp::RunOptions options;
  options.workers = 2;
  const auto outcome = cp::run_campaign(spec, scenarios, trace, options);
  ASSERT_EQ(outcome.results.size(), 2u);
  EXPECT_TRUE(outcome.results[0].ok);  // baseline unaffected
  EXPECT_FALSE(outcome.results[1].ok);
  EXPECT_NE(outcome.results[1].error.find("node-777"), std::string::npos)
      << outcome.results[1].error;
}

TEST(CampaignRun, ForcedCollectivesAndPayloadModesReplayIdentically) {
  TempDir dir;
  capture_ep(4, dir.str());
  const auto trace = smpi::trace::load_ti_trace(dir.str());
  // EP's collectives are tiny allreduces: forcing each variant must succeed;
  // payload_free=false must not change the simulated time (only wall cost).
  const auto spec = parse_spec(R"({
    "platform": {"kind": "flat"},
    "axes": [
      {"param": "coll_allreduce", "values": ["recursive_doubling", "reduce_bcast"]},
      {"param": "payload_free", "values": [true, false]}
    ]
  })");
  const auto scenarios = cp::enumerate_scenarios(spec);
  cp::RunOptions options;
  options.workers = 2;
  const auto outcome = cp::run_campaign(spec, scenarios, trace, options);
  for (const auto& result : outcome.results) ASSERT_TRUE(result.ok) << result.error;
  // payload_free on/off: same algorithm, same simulated time, bit-equal.
  EXPECT_EQ(outcome.results[1].simulated_time, outcome.results[2].simulated_time);
  EXPECT_EQ(outcome.results[3].simulated_time, outcome.results[4].simulated_time);
}

// ---------------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------------

TEST(CampaignReport, JsonAndCsvAreWellFormed) {
  TempDir dir;
  capture_ep(2, dir.str());
  const auto trace = smpi::trace::load_ti_trace(dir.str());
  const auto spec = parse_spec(R"({
    "name": "report-test",
    "platform": {"kind": "flat"},
    "axes": [{"param": "link_latency_scale", "values": [1, 10]}]
  })");
  const auto scenarios = cp::enumerate_scenarios(spec);
  cp::RunOptions options;
  const auto outcome = cp::run_campaign(spec, scenarios, trace, options);

  const JsonValue report =
      parse_json(cp::report_json(spec, scenarios, outcome).dump(2), "report");
  EXPECT_EQ(report.at("campaign", "r").as_string(), "report-test");
  EXPECT_EQ(report.at("scenario_count", "r").as_int(), 3);
  const auto& rows = report.at("scenarios", "r").items();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_DOUBLE_EQ(rows[0].at("speedup_vs_baseline", "r").as_number(), 1.0);
  EXPECT_EQ(rows[0].at("breakdown", "r").at("rank_compute_s", "r").items().size(), 2u);
  // 10x latency cannot be faster than 1x on the same trace.
  EXPECT_LE(rows[2].at("speedup_vs_baseline", "r").as_number(),
            rows[1].at("speedup_vs_baseline", "r").as_number() + 1e-12);

  const std::string csv = cp::report_csv(spec, scenarios, outcome);
  int lines = 0;
  for (char c : csv) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 4);  // header + 3 scenarios
  EXPECT_NE(csv.find("link_latency_scale"), std::string::npos);

  const std::string summary = cp::report_summary(spec, scenarios, outcome);
  EXPECT_NE(summary.find("baseline simulated time"), std::string::npos);
  EXPECT_NE(summary.find("fastest scenarios"), std::string::npos);
}

// ---------------------------------------------------------------------------
// eager_threshold axis
// ---------------------------------------------------------------------------

TEST(CampaignMaterialize, EagerThresholdAxisSetsPersonality) {
  const auto spec = parse_spec(R"({
    "name": "eager",
    "platform": {"kind": "flat", "nodes": 4},
    "axes": [{"param": "eager_threshold", "values": [0, 1048576]}]
  })");
  const auto scenarios = cp::enumerate_scenarios(spec);
  ASSERT_EQ(scenarios.size(), 3u);
  const auto rendezvous_only = cp::materialize(spec, scenarios[1], 4);
  EXPECT_EQ(rendezvous_only.config.personality.eager_threshold, 0u);
  const auto eager_always = cp::materialize(spec, scenarios[2], 4);
  EXPECT_EQ(eager_always.config.personality.eager_threshold, 1048576u);

  EXPECT_THROW(parse_spec(R"({
    "name": "bad",
    "axes": [{"param": "eager_threshold", "values": ["lots"]}]
  })"),
               ContractError);
}

TEST(CampaignRun, EagerThresholdChangesSkewedWorkloadTiming) {
  // A compute-imbalanced stencil posts receives at skewed times, so the
  // eager/rendezvous switch moves the flow start: sweeping the threshold
  // must produce different (deterministic) simulated times.
  const auto spec = parse_spec(R"({
    "name": "eager-run",
    "workload": {"name": "skewed", "ranks": 8, "seed": 7, "pattern": "stencil2d",
                 "iterations": 3, "bytes": 8192,
                 "compute": {"flops": 2e6, "imbalance": 0.5}},
    "platform": {"kind": "flat", "nodes": 8},
    "axes": [{"param": "eager_threshold", "values": [0, 1048576]}]
  })");
  const auto scenarios = cp::enumerate_scenarios(spec);
  const auto trace = smpi::workload::generate_workload(spec.workload);
  cp::RunOptions options;
  const auto outcome = cp::run_campaign(spec, scenarios, trace, options);
  for (const auto& r : outcome.results) ASSERT_TRUE(r.ok) << r.error;
  // Threshold above the message size == the default behaviour (64 KiB
  // default also exceeds 8 KiB messages), and rendezvous-only differs.
  EXPECT_EQ(outcome.results[2].simulated_time, outcome.results[0].simulated_time);
  EXPECT_NE(outcome.results[1].simulated_time, outcome.results[0].simulated_time);
}

// ---------------------------------------------------------------------------
// Resume
// ---------------------------------------------------------------------------

TEST(CampaignResume, SkipsCompletedScenariosAndMatchesFullSweep) {
  TempDir dir;
  capture_ep(2, dir.str());
  const auto trace = smpi::trace::load_ti_trace(dir.str());
  const auto spec = parse_spec(R"({
    "name": "resume-test",
    "platform": {"kind": "flat"},
    "axes": [{"param": "link_bandwidth_scale", "values": [0.5, 1, 2, 4]}]
  })");
  const auto scenarios = cp::enumerate_scenarios(spec);
  cp::RunOptions options;
  const auto full = cp::run_campaign(spec, scenarios, trace, options);
  for (const auto& r : full.results) ASSERT_TRUE(r.ok) << r.error;

  // Forge a partial report: scenarios 2 and 4 "failed".
  auto partial = full;
  partial.results[2].ok = false;
  partial.results[2].error = "worker died";
  partial.results[4].ok = false;
  partial.results[4].error = "worker died";
  const JsonValue report = parse_json(
      cp::report_json(spec, scenarios, partial).dump(2), "partial report");

  options.resume = cp::results_from_report(report, spec, scenarios);
  ASSERT_EQ(options.resume.size(), scenarios.size());
  EXPECT_TRUE(options.resume[1].ok);
  EXPECT_FALSE(options.resume[2].ok);
  const auto resumed = cp::run_campaign(spec, scenarios, trace, options);
  EXPECT_EQ(resumed.resumed, 3);
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    ASSERT_TRUE(resumed.results[i].ok) << resumed.results[i].error;
    EXPECT_EQ(resumed.results[i].simulated_time, full.results[i].simulated_time) << i;
    EXPECT_EQ(resumed.results[i].rank_comm_s, full.results[i].rank_comm_s) << i;
    EXPECT_EQ(resumed.results[i].solver_solves, full.results[i].solver_solves) << i;
  }
  // The resumed outcome reports like any other.
  const JsonValue final_report = parse_json(
      cp::report_json(spec, scenarios, resumed).dump(2), "final report");
  EXPECT_EQ(final_report.at("resumed", "r").as_int(), 3);
  const auto& rows = final_report.at("scenarios", "r").items();
  for (const auto& row : rows) EXPECT_TRUE(row.at("ok", "r").as_bool());
}

TEST(CampaignResume, RejectsMismatchedReports) {
  TempDir dir;
  capture_ep(2, dir.str());
  const auto trace = smpi::trace::load_ti_trace(dir.str());
  const auto spec = parse_spec(R"({
    "name": "resume-guard",
    "platform": {"kind": "flat"},
    "axes": [{"param": "link_bandwidth_scale", "values": [0.5, 2]}]
  })");
  const auto scenarios = cp::enumerate_scenarios(spec);
  cp::RunOptions options;
  const auto outcome = cp::run_campaign(spec, scenarios, trace, options);
  const JsonValue report = parse_json(
      cp::report_json(spec, scenarios, outcome).dump(2), "report");

  // Different campaign name.
  auto renamed = spec;
  renamed.name = "someone-else";
  EXPECT_THROW(cp::results_from_report(report, renamed, scenarios), ContractError);

  // Different axis values: scenario count survives but labels do not.
  const auto reshaped = parse_spec(R"({
    "name": "resume-guard",
    "platform": {"kind": "flat"},
    "axes": [{"param": "link_latency_scale", "values": [1, 10]}]
  })");
  const auto reshaped_scenarios = cp::enumerate_scenarios(reshaped);
  EXPECT_THROW(cp::results_from_report(report, reshaped, reshaped_scenarios), ContractError);
}

TEST(CampaignResume, RejectsDifferentTraceSourceOrPlatform) {
  TempDir dir;
  capture_ep(2, dir.str());
  const auto trace = smpi::trace::load_ti_trace(dir.str());
  auto spec = parse_spec(R"({
    "name": "resume-source",
    "platform": {"kind": "flat", "nodes": 2},
    "axes": [{"param": "link_bandwidth_scale", "values": [0.5, 2]}]
  })");
  spec.trace_dir = dir.str();
  const auto scenarios = cp::enumerate_scenarios(spec);
  cp::RunOptions options;
  const auto outcome = cp::run_campaign(spec, scenarios, trace, options);
  const JsonValue report = parse_json(
      cp::report_json(spec, scenarios, outcome).dump(2), "report");

  // Same axes, different trace directory: rejected.
  auto retraced = spec;
  retraced.trace_dir = "somewhere_else";
  EXPECT_THROW(cp::results_from_report(report, retraced, scenarios), ContractError);

  // Same axes, different base platform: rejected.
  auto replatformed = spec;
  replatformed.base_nodes = 16;
  EXPECT_THROW(cp::results_from_report(report, replatformed, scenarios), ContractError);

  // Same axes, but the sweep now runs a workload instead of the capture.
  auto reworked = spec;
  reworked.trace_dir.clear();
  reworked.has_workload = true;
  reworked.workload = smpi::workload::WorkloadSpec::parse(
      parse_json(R"({"ranks": 2, "pattern": "ring", "bytes": 64})", "wl"));
  EXPECT_THROW(cp::results_from_report(report, reworked, scenarios), ContractError);

  // The genuine spec still round-trips.
  EXPECT_NO_THROW(cp::results_from_report(report, spec, scenarios));
}

// ---------------------------------------------------------------------------
// Replicated (Monte-Carlo) campaigns
// ---------------------------------------------------------------------------

namespace {

// Small noisy stencil sweep: 2 scenarios (baseline + 1) x 3 replications.
const char* kReplicatedSpec = R"({
  "name": "monte-carlo",
  "workload": {"name": "mc", "ranks": 4, "seed": 1, "pattern": "stencil2d",
               "iterations": 2, "bytes": 4096, "compute": {"flops": 1e6}},
  "platform": {"kind": "flat", "nodes": 4},
  "axes": [{"param": "link_bandwidth_scale", "values": [2]}],
  "noise": {"seed": 9,
            "host_speed": {"dist": "normal", "mean": 1, "sigma": 0.05},
            "message_jitter": {"dist": "normal", "mean": 0, "sigma": 1e-6}},
  "replications": 3
})";

}  // namespace

TEST(CampaignReplication, SpecValidation) {
  EXPECT_THROW(parse_spec(R"({"replications": 3})"), ContractError);  // no noise
  EXPECT_THROW(parse_spec(R"({"replications": 0,
      "noise": {"host_speed": {"dist": "normal", "mean": 1, "sigma": 0.1}}})"),
               ContractError);
  const auto spec = parse_spec(kReplicatedSpec);
  EXPECT_EQ(spec.replications, 3);
  EXPECT_FALSE(spec.noise.empty());
  EXPECT_EQ(spec.noise.seed, 9u);
  // A noise_seed axis needs the campaign-level noise spec to override.
  const auto seedless = parse_spec(R"({
    "platform": {"kind": "flat", "nodes": 4},
    "axes": [{"param": "noise_seed", "values": [1, 2]}]
  })");
  EXPECT_THROW(cp::materialize(seedless, cp::enumerate_scenarios(seedless)[1], 4),
               ContractError);
}

TEST(CampaignReplication, MaterializePerturbsPerReplication) {
  const auto spec = parse_spec(kReplicatedSpec);
  const auto scenarios = cp::enumerate_scenarios(spec);
  const auto rep0 = cp::materialize(spec, scenarios[0], 4, 0);
  const auto rep0_again = cp::materialize(spec, scenarios[0], 4, 0);
  const auto rep1 = cp::materialize(spec, scenarios[0], 4, 1);
  bool differs = false;
  for (int h = 0; h < rep0.platform.host_count(); ++h) {
    EXPECT_EQ(rep0.platform.host(h).speed_flops, rep0_again.platform.host(h).speed_flops);
    differs = differs || rep0.platform.host(h).speed_flops != rep1.platform.host(h).speed_flops;
  }
  EXPECT_TRUE(differs) << "replications must draw independent noise worlds";
  // Even replication 0 runs under a sub-seed, and the world config carries it.
  EXPECT_EQ(rep0.config.noise.seed, smpi::noise::replication_seed(9, 0));
  EXPECT_EQ(rep1.config.noise.seed, smpi::noise::replication_seed(9, 1));
}

TEST(CampaignReplication, DeterministicAcrossWorkerCountsAndRuns) {
  const auto spec = parse_spec(kReplicatedSpec);
  const auto scenarios = cp::enumerate_scenarios(spec);
  const auto trace = smpi::workload::generate_workload(spec.workload);

  cp::RunOptions one;
  one.workers = 1;
  const auto serial = cp::run_campaign(spec, scenarios, trace, one);
  cp::RunOptions many;
  many.workers = 2;
  const auto parallel = cp::run_campaign(spec, scenarios, trace, many);

  const std::size_t units = scenarios.size() * 3;
  ASSERT_EQ(serial.results.size(), units);
  ASSERT_EQ(parallel.results.size(), units);
  EXPECT_EQ(serial.replications, 3);
  for (std::size_t i = 0; i < units; ++i) {
    ASSERT_TRUE(serial.results[i].ok) << serial.results[i].error;
    EXPECT_EQ(serial.results[i].id, static_cast<int>(i / 3));
    EXPECT_EQ(serial.results[i].rep, static_cast<int>(i % 3));
    EXPECT_EQ(serial.results[i].simulated_time, parallel.results[i].simulated_time) << i;
    EXPECT_EQ(serial.results[i].solver_solves, parallel.results[i].solver_solves) << i;
  }
  // Replications of one scenario see different noise, so different times.
  EXPECT_NE(serial.results[0].simulated_time, serial.results[1].simulated_time);
  EXPECT_NE(serial.results[1].simulated_time, serial.results[2].simulated_time);
}

TEST(CampaignReplication, ReportCarriesStatsAndRankStability) {
  const auto spec = parse_spec(kReplicatedSpec);
  const auto scenarios = cp::enumerate_scenarios(spec);
  const auto trace = smpi::workload::generate_workload(spec.workload);
  cp::RunOptions options;
  const auto outcome = cp::run_campaign(spec, scenarios, trace, options);
  for (const auto& r : outcome.results) ASSERT_TRUE(r.ok) << r.error;

  const JsonValue report =
      parse_json(cp::report_json(spec, scenarios, outcome).dump(2), "report");
  EXPECT_EQ(report.at("replications", "r").as_int(), 3);
  EXPECT_EQ(report.at("noise_seed", "r").as_int(), 9);
  const auto& stability = report.at("rank_stability", "r");
  EXPECT_FALSE(stability.at("verdict", "r").as_string().empty());
  EXPECT_GE(stability.at("fraction", "r").as_number(), 0.0);
  EXPECT_LE(stability.at("fraction", "r").as_number(), 1.0);

  const auto& rows = report.at("scenarios", "r").items();
  ASSERT_EQ(rows.size(), scenarios.size());
  for (const auto& row : rows) {
    const auto& reps = row.at("replications", "r").items();
    ASSERT_EQ(reps.size(), 3u);
    const auto& stats = row.at("stats", "r");
    EXPECT_EQ(stats.at("count", "r").as_int(), 3);
    const double mean = stats.at("mean", "r").as_number();
    EXPECT_GT(mean, 0.0);
    EXPECT_LE(stats.at("min", "r").as_number(), mean);
    EXPECT_GE(stats.at("max", "r").as_number(), mean);
    EXPECT_LE(stats.at("p5", "r").as_number(), stats.at("p95", "r").as_number());
    EXPECT_LE(stats.at("ci_lo", "r").as_number(), stats.at("ci_hi", "r").as_number());
    EXPECT_GT(stats.at("stddev", "r").as_number(), 0.0);
  }

  // CSV: header + one row per unit, with a rep column.
  const std::string csv = cp::report_csv(spec, scenarios, outcome);
  int lines = 0;
  for (char c : csv) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, static_cast<int>(1 + scenarios.size() * 3));
  EXPECT_EQ(csv.find("id,rep,"), 0u);

  const std::string summary = cp::report_summary(spec, scenarios, outcome);
  EXPECT_NE(summary.find("3 replications"), std::string::npos) << summary;
  EXPECT_NE(summary.find("rank stability"), std::string::npos) << summary;
}

TEST(CampaignReplication, ResumeAdoptsIndividualReplications) {
  const auto spec = parse_spec(kReplicatedSpec);
  const auto scenarios = cp::enumerate_scenarios(spec);
  const auto trace = smpi::workload::generate_workload(spec.workload);
  cp::RunOptions options;
  const auto full = cp::run_campaign(spec, scenarios, trace, options);
  for (const auto& r : full.results) ASSERT_TRUE(r.ok) << r.error;

  // Forge a partial report: one whole scenario row lost one rep, another
  // lost a different one.
  auto partial = full;
  partial.results[1].ok = false;  // scenario 0, rep 1
  partial.results[1].error = "worker died";
  partial.results[5].ok = false;  // scenario 1, rep 2
  partial.results[5].error = "worker died";
  const JsonValue report =
      parse_json(cp::report_json(spec, scenarios, partial).dump(2), "partial report");

  options.resume = cp::results_from_report(report, spec, scenarios);
  ASSERT_EQ(options.resume.size(), full.results.size());
  EXPECT_TRUE(options.resume[0].ok);
  EXPECT_FALSE(options.resume[1].ok);
  EXPECT_TRUE(options.resume[2].ok);
  EXPECT_FALSE(options.resume[5].ok);
  const auto resumed = cp::run_campaign(spec, scenarios, trace, options);
  EXPECT_EQ(resumed.resumed, static_cast<int>(full.results.size()) - 2);
  for (std::size_t i = 0; i < full.results.size(); ++i) {
    ASSERT_TRUE(resumed.results[i].ok) << resumed.results[i].error;
    EXPECT_EQ(resumed.results[i].simulated_time, full.results[i].simulated_time) << i;
    EXPECT_EQ(resumed.results[i].solver_solves, full.results[i].solver_solves) << i;
    EXPECT_EQ(resumed.results[i].rep, static_cast<int>(i % 3));
  }
  // The resumed sweep aggregates identically to the uninterrupted one
  // (wall-clock fields aside): same stats, same rank-stability verdict.
  const JsonValue from_resumed =
      parse_json(cp::report_json(spec, scenarios, resumed).dump(2), "resumed report");
  const JsonValue from_full =
      parse_json(cp::report_json(spec, scenarios, full).dump(2), "full report");
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    EXPECT_EQ(from_resumed.at("scenarios", "r").items()[s].at("stats", "r").dump(2),
              from_full.at("scenarios", "r").items()[s].at("stats", "r").dump(2));
  }
  EXPECT_EQ(from_resumed.at("rank_stability", "r").dump(2),
            from_full.at("rank_stability", "r").dump(2));

  // A report taken under different replication count or noise seed is not
  // resumable into this sweep.
  auto rescaled = spec;
  rescaled.replications = 2;
  EXPECT_THROW(cp::results_from_report(report, rescaled, scenarios), ContractError);
  auto reseeded = spec;
  reseeded.noise.seed = 10;
  EXPECT_THROW(cp::results_from_report(report, reseeded, scenarios), ContractError);
}

TEST(CampaignResume, FullyCompleteResumeSkipsThePoolEntirely) {
  TempDir dir;
  capture_ep(2, dir.str());
  const auto trace = smpi::trace::load_ti_trace(dir.str());
  const auto spec = parse_spec(R"({
    "name": "resume-full",
    "platform": {"kind": "flat"},
    "axes": [{"param": "link_bandwidth_scale", "values": [0.5, 2]}]
  })");
  const auto scenarios = cp::enumerate_scenarios(spec);
  cp::RunOptions options;
  const auto full = cp::run_campaign(spec, scenarios, trace, options);
  const JsonValue report = parse_json(
      cp::report_json(spec, scenarios, full).dump(2), "report");

  options.resume = cp::results_from_report(report, spec, scenarios);
  const auto resumed = cp::run_campaign(spec, scenarios, trace, options);
  EXPECT_EQ(resumed.resumed, static_cast<int>(scenarios.size()));
  EXPECT_EQ(resumed.workers, 0);  // nothing dispatched, no pool forked
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    ASSERT_TRUE(resumed.results[i].ok);
    EXPECT_EQ(resumed.results[i].simulated_time, full.results[i].simulated_time);
  }
}
