// Cross-module integration and robustness: determinism of whole simulations,
// backend interchangeability, thread-backend runs, large rank counts, and
// failure injection at the world level.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "apps/dt.hpp"
#include "calib/calibration.hpp"
#include "platform/platform_xml.hpp"
#include "smpi_test_util.hpp"
#include "util/check.hpp"

namespace sc = smpi::core;
namespace ap = smpi::apps;
using namespace smpi_test;

TEST(Integration, WholeSimulationIsDeterministic) {
  auto run_once = [] {
    return run_mpi(9, [] {
      const int rank = my_rank();
      const int size = world_size();
      // A mix of p2p and collectives with data-dependent sizes.
      std::vector<double> data(1000 + 100 * static_cast<std::size_t>(rank), rank);
      MPI_Bcast(data.data(), 1000, MPI_DOUBLE, 0, MPI_COMM_WORLD);
      MPI_Status status;
      if (rank != 0) {
        MPI_Send(data.data(), 100 * rank, MPI_DOUBLE, 0, rank, MPI_COMM_WORLD);
      } else {
        for (int r = 1; r < size; ++r) {
          std::vector<double> in(100 * static_cast<std::size_t>(r));
          MPI_Recv(in.data(), 100 * r, MPI_DOUBLE, MPI_ANY_SOURCE, MPI_ANY_TAG, MPI_COMM_WORLD,
                   &status);
        }
      }
      double x = rank, sum = 0;
      MPI_Allreduce(&x, &sum, 1, MPI_DOUBLE, MPI_SUM, MPI_COMM_WORLD);
    });
  };
  const double t1 = run_once();
  const double t2 = run_once();
  EXPECT_DOUBLE_EQ(t1, t2);
}

TEST(Integration, PacketBackendIsDeterministicToo) {
  auto run_once = [] {
    sc::SmpiConfig config;
    config.backend = sc::SmpiConfig::Backend::kPacket;
    config.personality = sc::Personality::openmpi();
    return run_mpi(
        5,
        [] {
          std::vector<char> buf(100000);
          const int rank = my_rank();
          if (rank == 0) {
            for (int r = 1; r < world_size(); ++r) {
              MPI_Send(buf.data(), 100000, MPI_CHAR, r, 0, MPI_COMM_WORLD);
            }
          } else {
            MPI_Recv(buf.data(), 100000, MPI_CHAR, 0, 0, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
          }
        },
        config);
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(Integration, AllSolverModesAgreeEndToEnd) {
  // The same MPI program under the lazy (default), component-incremental,
  // and full-reference solvers (the knob drives both the network and the
  // CPU system): the simulated completion times must match to solver
  // tolerance — the whole-stack version of the MaxMinEquivalenceTest
  // property.
  auto run_once = [](smpi::surf::SolveMode mode) {
    sc::SmpiConfig config;
    config.network.solver_mode = mode;
    return run_mpi(
        12,
        [] {
          const int rank = my_rank();
          std::vector<char> buf(1 << 16);
          MPI_Bcast(buf.data(), 1 << 16, MPI_CHAR, 0, MPI_COMM_WORLD);
          // Pairwise traffic so many flows contend at once.
          const int peer = rank ^ 1;
          if (peer < world_size()) {
            MPI_Sendrecv(buf.data(), 1 << 15, MPI_CHAR, peer, 0, buf.data(), 1 << 15, MPI_CHAR,
                         peer, 0, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
          }
          double x = rank, sum = 0;
          MPI_Allreduce(&x, &sum, 1, MPI_DOUBLE, MPI_SUM, MPI_COMM_WORLD);
        },
        config);
  };
  const double full = run_once(smpi::surf::SolveMode::kFull);
  EXPECT_NEAR(run_once(smpi::surf::SolveMode::kLazy), full, 1e-9);
  EXPECT_NEAR(run_once(smpi::surf::SolveMode::kComponent), full, 1e-9);
}

TEST(Integration, ThreadBackendRunsFullMpiApplication) {
  sc::SmpiConfig config = fast_config();
  config.engine.context_backend = "thread";
  const double t = run_mpi(
      6,
      [] {
        int v = my_rank(), sum = -1;
        MPI_Allreduce(&v, &sum, 1, MPI_INT, MPI_SUM, MPI_COMM_WORLD);
        EXPECT_EQ(sum, 15);
        smpi_sleep(0.01);
      },
      config);
  EXPECT_GE(t, 0.01);
}

TEST(Integration, FourHundredFortyEightRanksOnOneNode) {
  // The paper's largest configuration (§7.2): DT Shuffle class C needs 448
  // processes. Run a barrier + reduce over that many fibers.
  smpi::platform::FlatClusterParams params;
  params.nodes = 448;
  auto platform = smpi::platform::build_flat_cluster(params);
  sc::SmpiConfig config;
  config.engine.stack_bytes = 128 * 1024;
  sc::SmpiWorld world(platform, config);
  world.run(448, [](int, char**) {
    MPI_Init(nullptr, nullptr);
    MPI_Barrier(MPI_COMM_WORLD);
    long long v = my_rank(), sum = -1;
    MPI_Allreduce(&v, &sum, 1, MPI_LONG_LONG, MPI_SUM, MPI_COMM_WORLD);
    EXPECT_EQ(sum, 448LL * 447 / 2);
    MPI_Finalize();
  });
  EXPECT_GT(world.simulated_time(), 0);
}

TEST(Integration, DtShuffleClassAFullRun) {
  // 80-process Shuffle with verification — the configuration class the paper
  // could not validate on its real cluster (>43 nodes).
  ap::DtParams params;
  params.graph = ap::DtGraph::kShuffle;
  params.cls = ap::DtClass::kA;
  params.scale = 0.05;
  const int nprocs = ap::dt_process_count(params.graph, params.cls);
  ASSERT_EQ(nprocs, 80);
  auto platform = test_cluster(nprocs);
  sc::SmpiWorld world(platform, fast_config());
  world.run(nprocs, ap::make_dt_app(params));
  EXPECT_NEAR(ap::dt_last_checksum(), ap::dt_reference_checksum(params),
              ap::dt_reference_checksum(params) * 1e-12);
}

TEST(Integration, XmlPlatformDrivesAFullSimulation) {
  const char* doc = R"(<?xml version="1.0"?>
<platform version="4">
  <cluster id="c" prefix="n" radical="0-7" speed="1Gf" cores="2"
           bw="1Gbps" lat="50us"/>
</platform>)";
  auto platform = smpi::platform::load_platform_from_string(doc);
  sc::SmpiWorld world(platform, sc::SmpiConfig{});
  world.run(8, [](int, char**) {
    MPI_Init(nullptr, nullptr);
    int v = 1, sum = 0;
    MPI_Allreduce(&v, &sum, 1, MPI_INT, MPI_SUM, MPI_COMM_WORLD);
    EXPECT_EQ(sum, 8);
    MPI_Finalize();
  });
  EXPECT_GT(world.simulated_time(), 0);
}

TEST(Integration, XmlPlatformFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/smpi_platform_test.xml";
  {
    std::ofstream out(path);
    out << R"(<platform version="4">
  <host id="a" speed="1Gf"/>
  <host id="b" speed="2Gf"/>
  <link id="l" bandwidth="1Gbps" latency="10us"/>
  <route src="a" dst="b"><link_ctn id="l"/></route>
</platform>)";
  }
  auto platform = smpi::platform::load_platform_from_file(path);
  EXPECT_EQ(platform.host_count(), 2);
  EXPECT_TRUE(platform.has_route(0, 1));
  std::remove(path.c_str());
  EXPECT_THROW(smpi::platform::load_platform_from_file(path), smpi::platform::XmlError);
}

TEST(Integration, MismatchedCollectiveScaleFailsCleanly) {
  // A DT app launched with the wrong process count must surface a contract
  // error, not hang or corrupt.
  ap::DtParams params;
  params.graph = ap::DtGraph::kWhiteHole;
  params.cls = ap::DtClass::kS;
  auto platform = test_cluster(4);
  sc::SmpiWorld world(platform, fast_config());
  EXPECT_THROW(world.run(4, ap::make_dt_app(params)), smpi::util::ContractError);
}

TEST(Integration, DeadlockedApplicationIsDiagnosed) {
  auto platform = test_cluster(2);
  sc::SmpiWorld world(platform, fast_config());
  EXPECT_THROW(world.run(2,
                         [](int, char**) {
                           MPI_Init(nullptr, nullptr);
                           int v = 0;
                           // Both ranks receive first: classic deadlock.
                           MPI_Recv(&v, 1, MPI_INT, 1 - my_rank(), 0, MPI_COMM_WORLD,
                                    MPI_STATUS_IGNORE);
                           MPI_Finalize();
                         }),
               smpi::sim::DeadlockError);
}

TEST(Integration, CrossBackendAgreementOnCollective) {
  // The same 1 MiB bcast under flow and packet backends: both models must
  // agree within a factor that justifies using the fast one (Figs 7-15).
  auto measure = [](sc::SmpiConfig config) {
    return run_mpi(
        8,
        [] {
          std::vector<char> buf(1 << 20, 'x');
          MPI_Bcast(buf.data(), 1 << 20, MPI_CHAR, 0, MPI_COMM_WORLD);
        },
        config);
  };
  sc::SmpiConfig flow = fast_config();
  sc::SmpiConfig packet;
  packet.backend = sc::SmpiConfig::Backend::kPacket;
  packet.personality = sc::Personality::openmpi();
  const double t_flow = measure(flow);
  const double t_packet = measure(packet);
  EXPECT_GT(t_packet, t_flow * 0.5);
  EXPECT_LT(t_packet, t_flow * 2.0);
}
