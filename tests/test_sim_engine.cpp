#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace ss = smpi::sim;

TEST(Engine, RunsActorsToCompletion) {
  ss::Engine engine;
  int ran = 0;
  engine.spawn("a", 0, [&] { ++ran; });
  engine.spawn("b", 0, [&] { ++ran; });
  engine.run();
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(engine.live_actor_count(), 0u);
}

TEST(Engine, VirtualTimeStartsAtZero) {
  ss::Engine engine;
  double t = -1;
  engine.spawn("a", 0, [&] { t = engine.now(); });
  engine.run();
  EXPECT_EQ(t, 0.0);
}

TEST(Engine, SleepAdvancesVirtualTime) {
  ss::Engine engine;
  double t = -1;
  engine.spawn("a", 0, [&] {
    engine.sleep_for(1.5);
    engine.sleep_for(0.25);
    t = engine.now();
  });
  engine.run();
  EXPECT_DOUBLE_EQ(t, 1.75);
}

TEST(Engine, SleepersWakeInDateOrder) {
  ss::Engine engine;
  std::vector<std::string> order;
  engine.spawn("late", 0, [&] {
    engine.sleep_for(2.0);
    order.push_back("late");
  });
  engine.spawn("early", 0, [&] {
    engine.sleep_for(1.0);
    order.push_back("early");
  });
  engine.run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "early");
  EXPECT_EQ(order[1], "late");
}

TEST(Engine, SimultaneousWakeupsRunInCreationOrder) {
  ss::Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    engine.spawn("a" + std::to_string(i), 0, [&, i] {
      engine.sleep_for(1.0);
      order.push_back(i);
    });
  }
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, TimersFireAtTheirDate) {
  ss::Engine engine;
  std::vector<double> fired;
  engine.spawn("a", 0, [&] {
    engine.add_timer(engine.now() + 3.0, [&] { fired.push_back(engine.now()); });
    engine.add_timer(engine.now() + 1.0, [&] { fired.push_back(engine.now()); });
    engine.sleep_for(5.0);
  });
  engine.run();
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_DOUBLE_EQ(fired[0], 1.0);
  EXPECT_DOUBLE_EQ(fired[1], 3.0);
}

TEST(Engine, ActivityWaitBlocksUntilFinish) {
  ss::Engine engine;
  auto token = std::make_shared<ss::Activity>("token");
  double waited_until = -1;
  engine.spawn("waiter", 0, [&] {
    token->wait();
    waited_until = engine.now();
  });
  engine.spawn("finisher", 0, [&] {
    engine.sleep_for(2.5);
    token->finish(ss::Activity::State::kDone);
  });
  engine.run();
  EXPECT_DOUBLE_EQ(waited_until, 2.5);
  EXPECT_EQ(token->state(), ss::Activity::State::kDone);
  EXPECT_DOUBLE_EQ(token->finish_time(), 2.5);
}

TEST(Engine, MultipleWaitersAllWake) {
  ss::Engine engine;
  auto token = std::make_shared<ss::Activity>("token");
  int woke = 0;
  for (int i = 0; i < 4; ++i) {
    engine.spawn("w" + std::to_string(i), 0, [&] {
      token->wait();
      ++woke;
    });
  }
  engine.spawn("f", 0, [&] {
    engine.sleep_for(1.0);
    token->finish(ss::Activity::State::kDone);
  });
  engine.run();
  EXPECT_EQ(woke, 4);
}

TEST(Engine, CompletionCallbacksFire) {
  ss::Engine engine;
  auto token = std::make_shared<ss::Activity>("token");
  std::vector<std::string> events;
  token->on_completion([&](ss::Activity&) { events.push_back("cb1"); });
  engine.spawn("f", 0, [&] {
    engine.sleep_for(1.0);
    token->finish(ss::Activity::State::kDone);
    // Registering after completion fires immediately.
    token->on_completion([&](ss::Activity&) { events.push_back("cb2"); });
  });
  engine.run();
  EXPECT_EQ(events, (std::vector<std::string>{"cb1", "cb2"}));
}

TEST(Engine, FinishIsIdempotent) {
  ss::Engine engine;
  auto token = std::make_shared<ss::Activity>("token");
  engine.spawn("f", 0, [&] {
    token->finish(ss::Activity::State::kDone);
    token->finish(ss::Activity::State::kFailed);  // ignored
  });
  engine.run();
  EXPECT_EQ(token->state(), ss::Activity::State::kDone);
}

TEST(Engine, WaitOnCompletedActivityReturnsImmediately) {
  ss::Engine engine;
  auto token = std::make_shared<ss::Activity>("token");
  double t = -1;
  engine.spawn("a", 0, [&] {
    token->finish(ss::Activity::State::kDone);
    EXPECT_EQ(token->wait(), ss::Activity::State::kDone);
    t = engine.now();
  });
  engine.run();
  EXPECT_DOUBLE_EQ(t, 0.0);
}

TEST(Engine, DeadlockIsDetected) {
  ss::Engine engine;
  auto never = std::make_shared<ss::Activity>("never");
  engine.spawn("stuck", 0, [&] { never->wait(); });
  EXPECT_THROW(engine.run(), ss::DeadlockError);
}

TEST(Engine, YieldInterleavesActors) {
  ss::Engine engine;
  std::vector<int> order;
  engine.spawn("a", 0, [&] {
    order.push_back(1);
    engine.yield();
    order.push_back(3);
  });
  engine.spawn("b", 0, [&] {
    order.push_back(2);
    engine.yield();
    order.push_back(4);
  });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(Engine, SpawnDuringRunExecutesChild) {
  ss::Engine engine;
  bool child_ran = false;
  engine.spawn("parent", 0, [&] {
    engine.spawn("child", 0, [&] { child_ran = true; });
    engine.sleep_for(1.0);
  });
  engine.run();
  EXPECT_TRUE(child_ran);
}

TEST(Engine, TraceHashIsDeterministic) {
  auto run_once = [] {
    ss::EngineConfig config;
    config.trace_events = true;
    ss::Engine engine(config);
    for (int i = 0; i < 8; ++i) {
      engine.spawn("a" + std::to_string(i), 0, [&engine, i] {
        engine.sleep_for(0.1 * (i % 3));
        engine.trace("step-" + std::to_string(i));
        engine.sleep_for(0.05 * i);
        engine.trace("done-" + std::to_string(i));
      });
    }
    engine.run();
    return engine.trace_hash();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Engine, CurrentActorIsSetDuringExecution) {
  ss::Engine engine;
  std::string seen;
  engine.spawn("me", 3, [&] {
    seen = engine.current_actor()->name();
    EXPECT_EQ(engine.current_actor()->node(), 3);
  });
  engine.run();
  EXPECT_EQ(seen, "me");
}
