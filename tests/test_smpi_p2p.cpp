#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "smpi_test_util.hpp"

using namespace smpi_test;

TEST(SmpiP2P, BlockingSendRecvMovesData) {
  run_mpi(2, [] {
    const int rank = my_rank();
    if (rank == 0) {
      std::vector<int> data(100);
      std::iota(data.begin(), data.end(), 7);
      ASSERT_EQ(MPI_Send(data.data(), 100, MPI_INT, 1, 42, MPI_COMM_WORLD), MPI_SUCCESS);
    } else if (rank == 1) {
      std::vector<int> data(100, -1);
      MPI_Status status;
      ASSERT_EQ(MPI_Recv(data.data(), 100, MPI_INT, 0, 42, MPI_COMM_WORLD, &status), MPI_SUCCESS);
      EXPECT_EQ(status.MPI_SOURCE, 0);
      EXPECT_EQ(status.MPI_TAG, 42);
      for (int i = 0; i < 100; ++i) EXPECT_EQ(data[static_cast<std::size_t>(i)], 7 + i);
      int count = -1;
      MPI_Get_count(&status, MPI_INT, &count);
      EXPECT_EQ(count, 100);
    }
  });
}

TEST(SmpiP2P, TransferTakesSimulatedTime) {
  const double t = run_mpi(2, [] {
    if (my_rank() == 0) {
      std::vector<char> buf(1000000);
      MPI_Send(buf.data(), 1000000, MPI_CHAR, 1, 0, MPI_COMM_WORLD);
    } else if (my_rank() == 1) {
      std::vector<char> buf(1000000);
      MPI_Recv(buf.data(), 1000000, MPI_CHAR, 0, 0, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
    }
  });
  // 1e6 bytes at 1e8 B/s + 2e-4 latency = ~10.2ms (plus finalize barrier).
  EXPECT_GT(t, 0.0100);
  EXPECT_LT(t, 0.0115);
}

TEST(SmpiP2P, AnySourceAnyTag) {
  run_mpi(3, [] {
    const int rank = my_rank();
    if (rank == 0) {
      int got = -1;
      MPI_Status status;
      MPI_Recv(&got, 1, MPI_INT, MPI_ANY_SOURCE, MPI_ANY_TAG, MPI_COMM_WORLD, &status);
      EXPECT_TRUE(status.MPI_SOURCE == 1 || status.MPI_SOURCE == 2);
      EXPECT_EQ(status.MPI_TAG, status.MPI_SOURCE * 10);
      EXPECT_EQ(got, status.MPI_SOURCE * 100);
      MPI_Recv(&got, 1, MPI_INT, MPI_ANY_SOURCE, MPI_ANY_TAG, MPI_COMM_WORLD, &status);
    } else {
      const int value = rank * 100;
      MPI_Send(&value, 1, MPI_INT, 0, rank * 10, MPI_COMM_WORLD);
    }
  });
}

TEST(SmpiP2P, NonOvertakingSameSourceSameTag) {
  run_mpi(2, [] {
    if (my_rank() == 0) {
      for (int i = 0; i < 5; ++i) MPI_Send(&i, 1, MPI_INT, 1, 9, MPI_COMM_WORLD);
    } else if (my_rank() == 1) {
      for (int i = 0; i < 5; ++i) {
        int got = -1;
        MPI_Recv(&got, 1, MPI_INT, 0, 9, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
        EXPECT_EQ(got, i);
      }
    }
  });
}

TEST(SmpiP2P, TagsSelectMessages) {
  run_mpi(2, [] {
    if (my_rank() == 0) {
      const int a = 1, b = 2;
      MPI_Send(&a, 1, MPI_INT, 1, 100, MPI_COMM_WORLD);
      MPI_Send(&b, 1, MPI_INT, 1, 200, MPI_COMM_WORLD);
    } else if (my_rank() == 1) {
      int got = -1;
      // Receive the tag-200 message first even though it was sent second.
      MPI_Recv(&got, 1, MPI_INT, 0, 200, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      EXPECT_EQ(got, 2);
      MPI_Recv(&got, 1, MPI_INT, 0, 100, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      EXPECT_EQ(got, 1);
    }
  });
}

TEST(SmpiP2P, EagerSendCompletesWithoutReceiver) {
  // Below the eager threshold MPI_Send is buffered: it must return even
  // though the receive is posted much later.
  run_mpi(2, [] {
    if (my_rank() == 0) {
      std::vector<char> buf(1024);
      const double before = MPI_Wtime();
      MPI_Send(buf.data(), 1024, MPI_CHAR, 1, 0, MPI_COMM_WORLD);
      EXPECT_LT(MPI_Wtime() - before, 1e-3);  // returned promptly
    } else if (my_rank() == 1) {
      smpi_sleep(0.5);  // make the sender wait if it were synchronous
      std::vector<char> buf(1024);
      MPI_Recv(buf.data(), 1024, MPI_CHAR, 0, 0, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
    }
  });
}

TEST(SmpiP2P, RendezvousSendBlocksUntilReceiverArrives) {
  run_mpi(2, [] {
    if (my_rank() == 0) {
      std::vector<char> buf(256 * 1024);  // above the 64 KiB threshold
      const double before = MPI_Wtime();
      MPI_Send(buf.data(), static_cast<int>(buf.size()), MPI_CHAR, 1, 0, MPI_COMM_WORLD);
      EXPECT_GT(MPI_Wtime() - before, 0.5);  // waited for the receiver
    } else if (my_rank() == 1) {
      smpi_sleep(0.5);
      std::vector<char> buf(256 * 1024);
      MPI_Recv(buf.data(), static_cast<int>(buf.size()), MPI_CHAR, 0, 0, MPI_COMM_WORLD,
               MPI_STATUS_IGNORE);
    }
  });
}

TEST(SmpiP2P, IsendIrecvWaitall) {
  run_mpi(2, [] {
    const int rank = my_rank();
    std::vector<int> send(64, rank);
    std::vector<int> recv(64, -1);
    MPI_Request reqs[2];
    MPI_Irecv(recv.data(), 64, MPI_INT, 1 - rank, 5, MPI_COMM_WORLD, &reqs[0]);
    MPI_Isend(send.data(), 64, MPI_INT, 1 - rank, 5, MPI_COMM_WORLD, &reqs[1]);
    ASSERT_EQ(MPI_Waitall(2, reqs, MPI_STATUSES_IGNORE), MPI_SUCCESS);
    EXPECT_EQ(reqs[0], MPI_REQUEST_NULL);
    EXPECT_EQ(reqs[1], MPI_REQUEST_NULL);
    for (int v : recv) EXPECT_EQ(v, 1 - rank);
  });
}

TEST(SmpiP2P, WaitanyReturnsFirstCompleted) {
  run_mpi(3, [] {
    const int rank = my_rank();
    if (rank == 0) {
      int a = -1, b = -1;
      MPI_Request reqs[2];
      MPI_Irecv(&a, 1, MPI_INT, 1, 0, MPI_COMM_WORLD, &reqs[0]);
      MPI_Irecv(&b, 1, MPI_INT, 2, 0, MPI_COMM_WORLD, &reqs[1]);
      int index = -1;
      MPI_Status status;
      MPI_Waitany(2, reqs, &index, &status);
      // Rank 2 sends immediately; rank 1 sleeps first.
      EXPECT_EQ(index, 1);
      EXPECT_EQ(b, 222);
      EXPECT_EQ(reqs[1], MPI_REQUEST_NULL);
      MPI_Waitany(2, reqs, &index, &status);
      EXPECT_EQ(index, 0);
      EXPECT_EQ(a, 111);
    } else if (rank == 1) {
      smpi_sleep(0.2);
      const int v = 111;
      MPI_Send(&v, 1, MPI_INT, 0, 0, MPI_COMM_WORLD);
    } else {
      const int v = 222;
      MPI_Send(&v, 1, MPI_INT, 0, 0, MPI_COMM_WORLD);
    }
  });
}

TEST(SmpiP2P, WaitsomeCollectsCompleted) {
  run_mpi(3, [] {
    const int rank = my_rank();
    if (rank == 0) {
      int vals[2] = {-1, -1};
      MPI_Request reqs[2];
      MPI_Irecv(&vals[0], 1, MPI_INT, 1, 0, MPI_COMM_WORLD, &reqs[0]);
      MPI_Irecv(&vals[1], 1, MPI_INT, 2, 0, MPI_COMM_WORLD, &reqs[1]);
      int outcount = 0;
      int indices[2];
      MPI_Waitsome(2, reqs, &outcount, indices, MPI_STATUSES_IGNORE);
      EXPECT_GE(outcount, 1);
      int total = outcount;
      while (total < 2) {
        MPI_Waitsome(2, reqs, &outcount, indices, MPI_STATUSES_IGNORE);
        if (outcount == MPI_UNDEFINED) break;
        total += outcount;
      }
      EXPECT_EQ(vals[0], 111);
      EXPECT_EQ(vals[1], 222);
    } else {
      if (rank == 1) smpi_sleep(0.1);
      const int v = rank == 1 ? 111 : 222;
      MPI_Send(&v, 1, MPI_INT, 0, 0, MPI_COMM_WORLD);
    }
  });
}

TEST(SmpiP2P, TestPollsWithoutBlocking) {
  run_mpi(2, [] {
    if (my_rank() == 0) {
      int got = -1;
      MPI_Request req;
      MPI_Irecv(&got, 1, MPI_INT, 1, 0, MPI_COMM_WORLD, &req);
      int flag = 0;
      int polls = 0;
      while (flag == 0) {
        MPI_Test(&req, &flag, MPI_STATUS_IGNORE);
        ++polls;
        ASSERT_LT(polls, 10000000) << "Test never completed";
      }
      EXPECT_GT(polls, 1);  // message needed simulated time to arrive
      EXPECT_EQ(got, 33);
      EXPECT_EQ(req, MPI_REQUEST_NULL);
    } else if (my_rank() == 1) {
      smpi_sleep(0.001);
      const int v = 33;
      MPI_Send(&v, 1, MPI_INT, 0, 0, MPI_COMM_WORLD);
    }
  });
}

TEST(SmpiP2P, TightTestLoopSubscribesInsteadOfBurningTimers) {
  // A tight MPI_Test polling loop across a long wait used to create one
  // timer per 1e-7 s poll (500k for the 0.05 s wait below). The
  // completion-subscription path blocks on the request's state with a
  // backed-off fallback timer, so the timer count stays sub-linear while
  // the observable result (completion, payload, quantized timing) matches.
  run_mpi(2, [] {
    if (my_rank() == 0) {
      int got = -1;
      MPI_Request req;
      MPI_Irecv(&got, 1, MPI_INT, 1, 0, MPI_COMM_WORLD, &req);
      int flag = 0;
      long polls = 0;
      while (flag == 0) {
        MPI_Test(&req, &flag, MPI_STATUS_IGNORE);
        ++polls;
        ASSERT_LT(polls, 1000000) << "Test never completed";
      }
      auto& engine = smpi::core::SmpiWorld::instance()->engine();
      EXPECT_EQ(got, 77);
      EXPECT_GE(engine.now(), 0.05);          // the wait really happened
      EXPECT_LT(polls, 2000);                 // not one return per 1e-7 s
      EXPECT_LT(engine.timers_created(), 5000u);  // ... and not one timer either
    } else {
      smpi_sleep(0.05);
      const int v = 77;
      MPI_Send(&v, 1, MPI_INT, 0, 0, MPI_COMM_WORLD);
    }
  });
}

TEST(SmpiP2P, TightIprobeLoopSubscribesToArrivals) {
  run_mpi(2, [] {
    if (my_rank() == 0) {
      int flag = 0;
      long polls = 0;
      MPI_Status status;
      while (flag == 0) {
        MPI_Iprobe(1, 5, MPI_COMM_WORLD, &flag, &status);
        ++polls;
        ASSERT_LT(polls, 1000000) << "Iprobe never saw the message";
      }
      EXPECT_EQ(status.MPI_SOURCE, 1);
      EXPECT_EQ(status.MPI_TAG, 5);
      int got = -1;
      MPI_Recv(&got, 1, MPI_INT, 1, 5, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      EXPECT_EQ(got, 41);
      EXPECT_LT(polls, 2000);
    } else {
      smpi_sleep(0.02);
      const int v = 41;
      MPI_Send(&v, 1, MPI_INT, 0, 5, MPI_COMM_WORLD);
    }
  });
}

TEST(SmpiP2P, InterleavedTestsKeepPayingPerPollSleeps) {
  // A Test with real work between polls is *not* a tight loop: it must not
  // block until completion — time advances by the work plus one poll each
  // round, exactly as before.
  run_mpi(2, [] {
    if (my_rank() == 0) {
      auto& engine = smpi::core::SmpiWorld::instance()->engine();
      int got = -1;
      MPI_Request req;
      MPI_Irecv(&got, 1, MPI_INT, 1, 0, MPI_COMM_WORLD, &req);
      int flag = 0;
      int rounds = 0;
      while (flag == 0 && rounds < 4) {
        const double before = engine.now();
        MPI_Test(&req, &flag, MPI_STATUS_IGNORE);
        if (flag == 0) {
          // An unsuccessful interleaved poll costs ~one poll interval, not
          // the full remaining wait.
          EXPECT_LT(engine.now() - before, 1e-3);
          smpi_sleep(0.001);  // "compute"
        }
        ++rounds;
      }
      MPI_Wait(&req, MPI_STATUS_IGNORE);
      EXPECT_EQ(got, 99);
    } else {
      smpi_sleep(0.01);
      const int v = 99;
      MPI_Send(&v, 1, MPI_INT, 0, 0, MPI_COMM_WORLD);
    }
  });
}

TEST(SmpiP2P, SendrecvExchangesWithoutDeadlock) {
  run_mpi(4, [] {
    const int rank = my_rank();
    const int size = world_size();
    const int right = (rank + 1) % size;
    const int left = (rank - 1 + size) % size;
    // Everyone sends a large (rendezvous) message to the right while
    // receiving from the left; plain MPI_Send would deadlock here.
    std::vector<double> out(20000, rank);
    std::vector<double> in(20000, -1);
    MPI_Sendrecv(out.data(), 20000, MPI_DOUBLE, right, 0, in.data(), 20000, MPI_DOUBLE, left, 0,
                 MPI_COMM_WORLD, MPI_STATUS_IGNORE);
    for (double v : in) EXPECT_DOUBLE_EQ(v, left);
  });
}

TEST(SmpiP2P, ProcNullIsImmediateNoOp) {
  run_mpi(2, [] {
    int v = 5;
    EXPECT_EQ(MPI_Send(&v, 1, MPI_INT, MPI_PROC_NULL, 0, MPI_COMM_WORLD), MPI_SUCCESS);
    MPI_Status status;
    int r = 7;
    EXPECT_EQ(MPI_Recv(&r, 1, MPI_INT, MPI_PROC_NULL, 0, MPI_COMM_WORLD, &status), MPI_SUCCESS);
    EXPECT_EQ(r, 7);  // untouched
    EXPECT_EQ(status.MPI_SOURCE, MPI_PROC_NULL);
    int count = -1;
    MPI_Get_count(&status, MPI_INT, &count);
    EXPECT_EQ(count, 0);
  });
}

TEST(SmpiP2P, TruncationReportsError) {
  run_mpi(2, [] {
    if (my_rank() == 0) {
      std::vector<int> data(100, 3);
      MPI_Send(data.data(), 100, MPI_INT, 1, 0, MPI_COMM_WORLD);
    } else if (my_rank() == 1) {
      std::vector<int> data(10, -1);
      MPI_Status status;
      MPI_Recv(data.data(), 10, MPI_INT, 0, 0, MPI_COMM_WORLD, &status);
      EXPECT_EQ(status.MPI_ERROR, MPI_ERR_TRUNCATE);
      for (int v : data) EXPECT_EQ(v, 3);  // first 10 elements arrived
      int count = -1;
      MPI_Get_count(&status, MPI_INT, &count);
      EXPECT_EQ(count, 10);
    }
  });
}

TEST(SmpiP2P, PersistentRequestsRestart) {
  run_mpi(2, [] {
    const int rank = my_rank();
    int value = -1;
    MPI_Request req;
    if (rank == 0) {
      MPI_Send_init(&value, 1, MPI_INT, 1, 0, MPI_COMM_WORLD, &req);
      for (int i = 0; i < 5; ++i) {
        value = i * i;
        MPI_Start(&req);
        MPI_Wait(&req, MPI_STATUS_IGNORE);
        EXPECT_NE(req, MPI_REQUEST_NULL);  // persistent requests survive Wait
      }
      MPI_Request_free(&req);
      EXPECT_EQ(req, MPI_REQUEST_NULL);
    } else if (rank == 1) {
      MPI_Recv_init(&value, 1, MPI_INT, 0, 0, MPI_COMM_WORLD, &req);
      for (int i = 0; i < 5; ++i) {
        MPI_Start(&req);
        MPI_Wait(&req, MPI_STATUS_IGNORE);
        EXPECT_EQ(value, i * i);
      }
      MPI_Request_free(&req);
    }
  });
}

TEST(SmpiP2P, StartallLaunchesBatch) {
  run_mpi(2, [] {
    const int rank = my_rank();
    int out[3] = {10, 20, 30};
    int in[3] = {-1, -1, -1};
    MPI_Request reqs[3];
    if (rank == 0) {
      for (int i = 0; i < 3; ++i) {
        MPI_Send_init(&out[i], 1, MPI_INT, 1, i, MPI_COMM_WORLD, &reqs[i]);
      }
      MPI_Startall(3, reqs);
      MPI_Waitall(3, reqs, MPI_STATUSES_IGNORE);
      for (auto& r : reqs) MPI_Request_free(&r);
    } else if (rank == 1) {
      for (int i = 0; i < 3; ++i) {
        MPI_Recv_init(&in[i], 1, MPI_INT, 0, i, MPI_COMM_WORLD, &reqs[i]);
      }
      MPI_Startall(3, reqs);
      MPI_Waitall(3, reqs, MPI_STATUSES_IGNORE);
      EXPECT_EQ(in[0], 10);
      EXPECT_EQ(in[1], 20);
      EXPECT_EQ(in[2], 30);
      for (auto& r : reqs) MPI_Request_free(&r);
    }
  });
}

TEST(SmpiP2P, ProbeSeesPendingMessage) {
  run_mpi(2, [] {
    if (my_rank() == 0) {
      std::vector<int> data(50, 4);
      MPI_Send(data.data(), 50, MPI_INT, 1, 77, MPI_COMM_WORLD);
    } else if (my_rank() == 1) {
      MPI_Status status;
      MPI_Probe(0, MPI_ANY_TAG, MPI_COMM_WORLD, &status);
      EXPECT_EQ(status.MPI_TAG, 77);
      int count = -1;
      MPI_Get_count(&status, MPI_INT, &count);
      EXPECT_EQ(count, 50);
      std::vector<int> data(static_cast<std::size_t>(count), -1);
      MPI_Recv(data.data(), count, MPI_INT, 0, 77, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      EXPECT_EQ(data[49], 4);
    }
  });
}

TEST(SmpiP2P, IprobeReturnsImmediately) {
  run_mpi(2, [] {
    if (my_rank() == 1) {
      int flag = 12345;
      MPI_Status status;
      EXPECT_EQ(MPI_Iprobe(0, MPI_ANY_TAG, MPI_COMM_WORLD, &flag, &status), MPI_SUCCESS);
      EXPECT_EQ(flag, 0);  // nothing sent
    }
  });
}

TEST(SmpiP2P, WaitOnNullRequestIsEmptySuccess) {
  run_mpi(2, [] {
    MPI_Request req = MPI_REQUEST_NULL;
    MPI_Status status;
    EXPECT_EQ(MPI_Wait(&req, &status), MPI_SUCCESS);
    EXPECT_EQ(status.MPI_SOURCE, MPI_ANY_SOURCE);
    EXPECT_EQ(status.MPI_TAG, MPI_ANY_TAG);
  });
}

TEST(SmpiP2P, ArgumentValidation) {
  run_mpi(2, [] {
    int v = 0;
    EXPECT_EQ(MPI_Send(&v, -1, MPI_INT, 1, 0, MPI_COMM_WORLD), MPI_ERR_COUNT);
    EXPECT_EQ(MPI_Send(&v, 1, MPI_DATATYPE_NULL, 1, 0, MPI_COMM_WORLD), MPI_ERR_TYPE);
    EXPECT_EQ(MPI_Send(&v, 1, MPI_INT, 99, 0, MPI_COMM_WORLD), MPI_ERR_RANK);
    EXPECT_EQ(MPI_Send(&v, 1, MPI_INT, 1, -3, MPI_COMM_WORLD), MPI_ERR_TAG);
    EXPECT_EQ(MPI_Send(&v, 1, MPI_INT, 1, 0, MPI_COMM_NULL), MPI_ERR_COMM);
    EXPECT_EQ(MPI_Send(nullptr, 1, MPI_INT, 1, 0, MPI_COMM_WORLD), MPI_ERR_BUFFER);
    // ANY_SOURCE is a receive-side wildcard only.
    EXPECT_EQ(MPI_Send(&v, 1, MPI_INT, MPI_ANY_SOURCE, 0, MPI_COMM_WORLD), MPI_ERR_RANK);
  });
}

TEST(SmpiP2P, DerivedVectorTypeTransfers) {
  run_mpi(2, [] {
    const int rank = my_rank();
    MPI_Datatype column;
    // 4 blocks of 1 int, stride 3: a "column" of a 4x3 row-major matrix.
    MPI_Type_vector(4, 1, 3, MPI_INT, &column);
    MPI_Type_commit(&column);
    if (rank == 0) {
      int matrix[12];
      for (int i = 0; i < 12; ++i) matrix[i] = i;
      MPI_Send(matrix, 1, column, 1, 0, MPI_COMM_WORLD);  // column 0: 0,3,6,9
    } else if (rank == 1) {
      int out[4] = {-1, -1, -1, -1};
      MPI_Recv(out, 4, MPI_INT, 0, 0, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      EXPECT_EQ(out[0], 0);
      EXPECT_EQ(out[1], 3);
      EXPECT_EQ(out[2], 6);
      EXPECT_EQ(out[3], 9);
    }
    MPI_Type_free(&column);
  });
}

TEST(SmpiP2P, ContiguousTypeRoundTrip) {
  run_mpi(2, [] {
    MPI_Datatype pair;
    MPI_Type_contiguous(2, MPI_DOUBLE, &pair);
    MPI_Type_commit(&pair);
    int size = 0;
    MPI_Type_size(pair, &size);
    EXPECT_EQ(size, 16);
    if (my_rank() == 0) {
      double data[6] = {1, 2, 3, 4, 5, 6};
      MPI_Send(data, 3, pair, 1, 0, MPI_COMM_WORLD);
    } else if (my_rank() == 1) {
      double data[6] = {0};
      MPI_Recv(data, 3, pair, 0, 0, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      EXPECT_DOUBLE_EQ(data[5], 6);
    }
    MPI_Type_free(&pair);
  });
}
