// Collective correctness, parameterized over process counts (including
// non-powers-of-two and 1) and over roots. Every test validates the data;
// timing behaviour is covered by the figure benches and the timing tests.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "smpi/coll.h"
#include "smpi_test_util.hpp"

using namespace smpi_test;

class CollSweep : public ::testing::TestWithParam<int> {};

TEST_P(CollSweep, BarrierSynchronizesEveryone) {
  const int P = GetParam();
  run_mpi(P, [] {
    const int rank = my_rank();
    // Stagger arrivals; after the barrier everyone must be past the latest.
    smpi_sleep(0.01 * rank);
    MPI_Barrier(MPI_COMM_WORLD);
    EXPECT_GE(MPI_Wtime(), 0.01 * (world_size() - 1));
  });
}

TEST_P(CollSweep, BcastFromEveryRoot) {
  const int P = GetParam();
  run_mpi(P, [] {
    const int rank = my_rank();
    const int size = world_size();
    for (int root = 0; root < size; ++root) {
      std::vector<int> data(37, rank == root ? root * 1000 : -1);
      ASSERT_EQ(MPI_Bcast(data.data(), 37, MPI_INT, root, MPI_COMM_WORLD), MPI_SUCCESS);
      for (int v : data) ASSERT_EQ(v, root * 1000);
    }
  });
}

TEST_P(CollSweep, ScatterDistributesBlocks) {
  const int P = GetParam();
  run_mpi(P, [] {
    const int rank = my_rank();
    const int size = world_size();
    for (int root = 0; root < size; ++root) {
      std::vector<double> sendbuf;
      if (rank == root) {
        sendbuf.resize(static_cast<std::size_t>(size) * 5);
        for (int r = 0; r < size; ++r) {
          for (int k = 0; k < 5; ++k) sendbuf[static_cast<std::size_t>(r * 5 + k)] = r + 0.5 * k;
        }
      }
      std::vector<double> recvbuf(5, -1);
      ASSERT_EQ(MPI_Scatter(sendbuf.data(), 5, MPI_DOUBLE, recvbuf.data(), 5, MPI_DOUBLE, root,
                            MPI_COMM_WORLD),
                MPI_SUCCESS);
      for (int k = 0; k < 5; ++k) ASSERT_DOUBLE_EQ(recvbuf[static_cast<std::size_t>(k)], rank + 0.5 * k);
    }
  });
}

TEST_P(CollSweep, GatherCollectsBlocksInRankOrder) {
  const int P = GetParam();
  run_mpi(P, [] {
    const int rank = my_rank();
    const int size = world_size();
    for (int root = 0; root < size; ++root) {
      std::vector<int> mine(3, rank * 7);
      std::vector<int> all;
      if (rank == root) all.assign(static_cast<std::size_t>(size) * 3, -1);
      ASSERT_EQ(MPI_Gather(mine.data(), 3, MPI_INT, all.data(), 3, MPI_INT, root,
                           MPI_COMM_WORLD),
                MPI_SUCCESS);
      if (rank == root) {
        for (int r = 0; r < size; ++r) {
          for (int k = 0; k < 3; ++k) ASSERT_EQ(all[static_cast<std::size_t>(r * 3 + k)], r * 7);
        }
      }
    }
  });
}

TEST_P(CollSweep, AllgatherEveryoneHasEverything) {
  const int P = GetParam();
  run_mpi(P, [] {
    const int rank = my_rank();
    const int size = world_size();
    std::vector<long long> mine(2, rank + 100);
    std::vector<long long> all(static_cast<std::size_t>(size) * 2, -1);
    ASSERT_EQ(MPI_Allgather(mine.data(), 2, MPI_LONG_LONG, all.data(), 2, MPI_LONG_LONG,
                            MPI_COMM_WORLD),
              MPI_SUCCESS);
    for (int r = 0; r < size; ++r) {
      ASSERT_EQ(all[static_cast<std::size_t>(2 * r)], r + 100);
      ASSERT_EQ(all[static_cast<std::size_t>(2 * r + 1)], r + 100);
    }
  });
}

TEST_P(CollSweep, ReduceSumAtEveryRoot) {
  const int P = GetParam();
  run_mpi(P, [] {
    const int rank = my_rank();
    const int size = world_size();
    for (int root = 0; root < size; ++root) {
      std::vector<int> contribution(11);
      for (int k = 0; k < 11; ++k) contribution[static_cast<std::size_t>(k)] = rank + k;
      std::vector<int> result(11, -1);
      ASSERT_EQ(MPI_Reduce(contribution.data(), result.data(), 11, MPI_INT, MPI_SUM, root,
                           MPI_COMM_WORLD),
                MPI_SUCCESS);
      if (rank == root) {
        const int rank_sum = size * (size - 1) / 2;
        for (int k = 0; k < 11; ++k) ASSERT_EQ(result[static_cast<std::size_t>(k)], rank_sum + size * k);
      }
    }
  });
}

TEST_P(CollSweep, AllreduceMatchesReducePlusBcast) {
  const int P = GetParam();
  run_mpi(P, [] {
    const int rank = my_rank();
    const int size = world_size();
    double mine = rank + 1.0;
    double max_val = -1, sum_val = -1, min_val = -1;
    ASSERT_EQ(MPI_Allreduce(&mine, &max_val, 1, MPI_DOUBLE, MPI_MAX, MPI_COMM_WORLD),
              MPI_SUCCESS);
    ASSERT_EQ(MPI_Allreduce(&mine, &sum_val, 1, MPI_DOUBLE, MPI_SUM, MPI_COMM_WORLD),
              MPI_SUCCESS);
    ASSERT_EQ(MPI_Allreduce(&mine, &min_val, 1, MPI_DOUBLE, MPI_MIN, MPI_COMM_WORLD),
              MPI_SUCCESS);
    EXPECT_DOUBLE_EQ(max_val, size);
    EXPECT_DOUBLE_EQ(min_val, 1.0);
    EXPECT_DOUBLE_EQ(sum_val, size * (size + 1) / 2.0);
  });
}

TEST_P(CollSweep, ScanComputesPrefix) {
  const int P = GetParam();
  run_mpi(P, [] {
    const int rank = my_rank();
    int mine = rank + 1;
    int prefix = -1;
    ASSERT_EQ(MPI_Scan(&mine, &prefix, 1, MPI_INT, MPI_SUM, MPI_COMM_WORLD), MPI_SUCCESS);
    EXPECT_EQ(prefix, (rank + 1) * (rank + 2) / 2);
  });
}

TEST_P(CollSweep, ReduceScatterSplitsReduction) {
  const int P = GetParam();
  run_mpi(P, [] {
    const int rank = my_rank();
    const int size = world_size();
    std::vector<int> counts(static_cast<std::size_t>(size), 2);
    std::vector<int> input(static_cast<std::size_t>(size) * 2);
    for (int i = 0; i < size * 2; ++i) input[static_cast<std::size_t>(i)] = rank + i;
    std::vector<int> out(2, -1);
    ASSERT_EQ(MPI_Reduce_scatter(input.data(), out.data(), counts.data(), MPI_INT, MPI_SUM,
                                 MPI_COMM_WORLD),
              MPI_SUCCESS);
    // Element j of block r: sum over ranks q of (q + 2r + j).
    const int rank_sum = size * (size - 1) / 2;
    EXPECT_EQ(out[0], rank_sum + size * (2 * rank));
    EXPECT_EQ(out[1], rank_sum + size * (2 * rank + 1));
  });
}

TEST_P(CollSweep, AlltoallTransposesBlocks) {
  const int P = GetParam();
  run_mpi(P, [] {
    const int rank = my_rank();
    const int size = world_size();
    std::vector<int> send(static_cast<std::size_t>(size) * 2);
    for (int r = 0; r < size; ++r) {
      send[static_cast<std::size_t>(2 * r)] = rank * 100 + r;
      send[static_cast<std::size_t>(2 * r + 1)] = rank * 100 + r + 50;
    }
    std::vector<int> recv(static_cast<std::size_t>(size) * 2, -1);
    ASSERT_EQ(MPI_Alltoall(send.data(), 2, MPI_INT, recv.data(), 2, MPI_INT, MPI_COMM_WORLD),
              MPI_SUCCESS);
    for (int r = 0; r < size; ++r) {
      ASSERT_EQ(recv[static_cast<std::size_t>(2 * r)], r * 100 + rank);
      ASSERT_EQ(recv[static_cast<std::size_t>(2 * r + 1)], r * 100 + rank + 50);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(ProcessCounts, CollSweep, ::testing::Values(1, 2, 3, 4, 5, 7, 8, 16, 17));

// ---------------------------------------------------------------------------
// Variant-specific and v-collective tests.
// ---------------------------------------------------------------------------

TEST(SmpiColl, PairwiseAlltoallMatchesBasic) {
  for (const int P : {4, 6, 8}) {
    run_mpi(P, [] {
      const int rank = my_rank();
      const int size = world_size();
      std::vector<int> send(static_cast<std::size_t>(size));
      for (int r = 0; r < size; ++r) send[static_cast<std::size_t>(r)] = rank * 10 + r;
      std::vector<int> via_pairwise(static_cast<std::size_t>(size), -1);
      std::vector<int> via_basic(static_cast<std::size_t>(size), -2);
      ASSERT_EQ(smpi::coll::alltoall_pairwise(send.data(), 1, MPI_INT, via_pairwise.data(), 1,
                                              MPI_INT, MPI_COMM_WORLD),
                MPI_SUCCESS);
      ASSERT_EQ(smpi::coll::alltoall_basic(send.data(), 1, MPI_INT, via_basic.data(), 1, MPI_INT,
                                           MPI_COMM_WORLD),
                MPI_SUCCESS);
      EXPECT_EQ(via_pairwise, via_basic);
      for (int r = 0; r < size; ++r) ASSERT_EQ(via_pairwise[static_cast<std::size_t>(r)], r * 10 + rank);
    });
  }
}

TEST(SmpiColl, ScatterBinomialMatchesLinear) {
  run_mpi(6, [] {
    const int rank = my_rank();
    const int size = world_size();
    std::vector<int> sendbuf;
    if (rank == 2) {
      sendbuf.resize(static_cast<std::size_t>(size) * 4);
      std::iota(sendbuf.begin(), sendbuf.end(), 0);
    }
    std::vector<int> a(4, -1), b(4, -1);
    ASSERT_EQ(smpi::coll::scatter_binomial(sendbuf.data(), 4, MPI_INT, a.data(), 4, MPI_INT, 2,
                                           MPI_COMM_WORLD),
              MPI_SUCCESS);
    ASSERT_EQ(smpi::coll::scatter_linear(sendbuf.data(), 4, MPI_INT, b.data(), 4, MPI_INT, 2,
                                         MPI_COMM_WORLD),
              MPI_SUCCESS);
    EXPECT_EQ(a, b);
    for (int k = 0; k < 4; ++k) ASSERT_EQ(a[static_cast<std::size_t>(k)], rank * 4 + k);
  });
}

TEST(SmpiColl, GatherBinomialMatchesLinear) {
  run_mpi(6, [] {
    const int rank = my_rank();
    const int size = world_size();
    std::vector<int> mine(3, rank + 1);
    std::vector<int> a, b;
    if (rank == 1) {
      a.assign(static_cast<std::size_t>(size) * 3, -1);
      b.assign(static_cast<std::size_t>(size) * 3, -2);
    }
    ASSERT_EQ(smpi::coll::gather_binomial(mine.data(), 3, MPI_INT, a.data(), 3, MPI_INT, 1,
                                          MPI_COMM_WORLD),
              MPI_SUCCESS);
    ASSERT_EQ(smpi::coll::gather_linear(mine.data(), 3, MPI_INT, b.data(), 3, MPI_INT, 1,
                                        MPI_COMM_WORLD),
              MPI_SUCCESS);
    if (rank == 1) {
      EXPECT_EQ(a, b);
    }
  });
}

TEST(SmpiColl, AllgatherRingMatchesRecursiveDoubling) {
  run_mpi(8, [] {
    const int rank = my_rank();
    const int size = world_size();
    std::vector<int> mine(2, rank);
    std::vector<int> a(static_cast<std::size_t>(size) * 2, -1);
    std::vector<int> b(static_cast<std::size_t>(size) * 2, -2);
    ASSERT_EQ(smpi::coll::allgather_ring(mine.data(), 2, MPI_INT, a.data(), 2, MPI_INT,
                                         MPI_COMM_WORLD),
              MPI_SUCCESS);
    ASSERT_EQ(smpi::coll::allgather_recursive_doubling(mine.data(), 2, MPI_INT, b.data(), 2,
                                                       MPI_INT, MPI_COMM_WORLD),
              MPI_SUCCESS);
    EXPECT_EQ(a, b);
  });
}

TEST(SmpiColl, GathervScattervWithUnevenBlocks) {
  run_mpi(4, [] {
    const int rank = my_rank();
    const int size = world_size();
    // Rank r contributes r+1 ints.
    std::vector<int> counts, displs;
    int total = 0;
    for (int r = 0; r < size; ++r) {
      counts.push_back(r + 1);
      displs.push_back(total);
      total += r + 1;
    }
    std::vector<int> mine(static_cast<std::size_t>(rank) + 1, rank);
    std::vector<int> all;
    if (rank == 0) all.assign(static_cast<std::size_t>(total), -1);
    ASSERT_EQ(MPI_Gatherv(mine.data(), rank + 1, MPI_INT, all.data(), counts.data(),
                          displs.data(), MPI_INT, 0, MPI_COMM_WORLD),
              MPI_SUCCESS);
    if (rank == 0) {
      for (int r = 0; r < size; ++r) {
        for (int k = 0; k < counts[static_cast<std::size_t>(r)]; ++k) {
          ASSERT_EQ(all[static_cast<std::size_t>(displs[static_cast<std::size_t>(r)] + k)], r);
        }
      }
    }
    // Scatter the gathered data back.
    std::vector<int> back(static_cast<std::size_t>(rank) + 1, -1);
    ASSERT_EQ(MPI_Scatterv(all.data(), counts.data(), displs.data(), MPI_INT, back.data(),
                           rank + 1, MPI_INT, 0, MPI_COMM_WORLD),
              MPI_SUCCESS);
    for (int v : back) ASSERT_EQ(v, rank);
  });
}

TEST(SmpiColl, AllgathervUnevenBlocks) {
  run_mpi(5, [] {
    const int rank = my_rank();
    const int size = world_size();
    std::vector<int> counts, displs;
    int total = 0;
    for (int r = 0; r < size; ++r) {
      counts.push_back(2 * r + 1);
      displs.push_back(total);
      total += 2 * r + 1;
    }
    std::vector<int> mine(static_cast<std::size_t>(counts[static_cast<std::size_t>(rank)]),
                          rank * 3);
    std::vector<int> all(static_cast<std::size_t>(total), -1);
    ASSERT_EQ(MPI_Allgatherv(mine.data(), counts[static_cast<std::size_t>(rank)], MPI_INT,
                             all.data(), counts.data(), displs.data(), MPI_INT, MPI_COMM_WORLD),
              MPI_SUCCESS);
    for (int r = 0; r < size; ++r) {
      for (int k = 0; k < counts[static_cast<std::size_t>(r)]; ++k) {
        ASSERT_EQ(all[static_cast<std::size_t>(displs[static_cast<std::size_t>(r)] + k)], r * 3);
      }
    }
  });
}

TEST(SmpiColl, AlltoallvUnevenBlocks) {
  run_mpi(4, [] {
    const int rank = my_rank();
    const int size = world_size();
    // Rank r sends (q+1) ints of value r*10+q to each rank q.
    std::vector<int> scounts, sdispls, rcounts, rdispls;
    int stotal = 0, rtotal = 0;
    for (int q = 0; q < size; ++q) {
      scounts.push_back(q + 1);
      sdispls.push_back(stotal);
      stotal += q + 1;
      rcounts.push_back(rank + 1);
      rdispls.push_back(rtotal);
      rtotal += rank + 1;
    }
    std::vector<int> send(static_cast<std::size_t>(stotal));
    for (int q = 0; q < size; ++q) {
      for (int k = 0; k < q + 1; ++k) {
        send[static_cast<std::size_t>(sdispls[static_cast<std::size_t>(q)] + k)] = rank * 10 + q;
      }
    }
    std::vector<int> recv(static_cast<std::size_t>(rtotal), -1);
    ASSERT_EQ(MPI_Alltoallv(send.data(), scounts.data(), sdispls.data(), MPI_INT, recv.data(),
                            rcounts.data(), rdispls.data(), MPI_INT, MPI_COMM_WORLD),
              MPI_SUCCESS);
    for (int q = 0; q < size; ++q) {
      for (int k = 0; k < rank + 1; ++k) {
        ASSERT_EQ(recv[static_cast<std::size_t>(rdispls[static_cast<std::size_t>(q)] + k)],
                  q * 10 + rank);
      }
    }
  });
}

TEST(SmpiColl, UserDefinedOpAndInPlace) {
  run_mpi(4, [] {
    const int rank = my_rank();
    MPI_Op myop;
    // "Take the lower-rank operand": associative but NOT commutative, so the
    // result discriminates correct (lowest rank wins) from swapped ordering
    // (highest rank wins).
    ASSERT_EQ(MPI_Op_create(
                  [](void* in, void* inout, int* len, MPI_Datatype*) {
                    auto* a = static_cast<int*>(in);
                    auto* b = static_cast<int*>(inout);
                    for (int i = 0; i < *len; ++i) b[i] = a[i];
                  },
                  0, &myop),
              MPI_SUCCESS);
    int value = rank + 1;  // contributions 1,2,3,4
    int result = -999;
    ASSERT_EQ(MPI_Reduce(&value, &result, 1, MPI_INT, myop, 0, MPI_COMM_WORLD), MPI_SUCCESS);
    if (rank == 0) {
      EXPECT_EQ(result, 1);  // rank 0's contribution
    }
    MPI_Op_free(&myop);

    // MPI_IN_PLACE Allreduce.
    int inplace = rank + 1;
    ASSERT_EQ(MPI_Allreduce(MPI_IN_PLACE, &inplace, 1, MPI_INT, MPI_SUM, MPI_COMM_WORLD),
              MPI_SUCCESS);
    EXPECT_EQ(inplace, 10);
  });
}

TEST(SmpiColl, BitwiseOpsOnIntegers) {
  run_mpi(3, [] {
    const int rank = my_rank();
    unsigned value = 1u << rank;
    unsigned ored = 0;
    ASSERT_EQ(MPI_Allreduce(&value, &ored, 1, MPI_UNSIGNED, MPI_BOR, MPI_COMM_WORLD),
              MPI_SUCCESS);
    EXPECT_EQ(ored, 0b111u);
    double dvalue = 1.0;
    double dout = 0;
    EXPECT_EQ(MPI_Allreduce(&dvalue, &dout, 1, MPI_DOUBLE, MPI_BAND, MPI_COMM_WORLD),
              MPI_ERR_OP);
  });
}

TEST(SmpiColl, CollectiveArgValidation) {
  run_mpi(2, [] {
    int v = 0;
    EXPECT_EQ(MPI_Bcast(&v, 1, MPI_INT, 5, MPI_COMM_WORLD), MPI_ERR_ROOT);
    EXPECT_EQ(MPI_Bcast(&v, -1, MPI_INT, 0, MPI_COMM_WORLD), MPI_ERR_COUNT);
    EXPECT_EQ(MPI_Barrier(MPI_COMM_NULL), MPI_ERR_COMM);
    EXPECT_EQ(MPI_Reduce(&v, &v, 1, MPI_INT, MPI_OP_NULL, 0, MPI_COMM_WORLD), MPI_ERR_OP);
  });
}

// ---------------------------------------------------------------------------
// Scan / Reduce_scatter edge cases: zero counts, a single rank, and
// non-commutative operator ordering (the MPI-mandated low-rank-first fold).
// ---------------------------------------------------------------------------

namespace {

// Affine-function composition over (m, c) int pairs: a ∘-then-∘ b maps
// x -> b.m * (a.m * x + a.c) + b.c. Associative (function composition) but
// NOT commutative, so it discriminates the MPI-mandated rank-ascending fold
// from any reordering while staying legal for tree-shaped reductions.
void affine_compose(void* in, void* inout, int* len, MPI_Datatype*) {
  auto* a = static_cast<int*>(in);     // lower-rank operand, applied first
  auto* b = static_cast<int*>(inout);  // higher-rank operand and result
  for (int i = 0; i + 1 < *len; i += 2) {
    const int m = a[i] * b[i];
    const int c = b[i] * a[i + 1] + b[i + 1];
    b[i] = m;
    b[i + 1] = c;
  }
}

void affine_compose_ref(const int a[2], int b_and_result[2]) {
  int len = 2;
  affine_compose(const_cast<int*>(a), b_and_result, &len, nullptr);
}

}  // namespace

TEST(SmpiColl, ScanZeroCountCompletesOnEveryRank) {
  run_mpi(5, [] {
    int dummy = 7;
    int out = 7;
    ASSERT_EQ(MPI_Scan(&dummy, &out, 0, MPI_INT, MPI_SUM, MPI_COMM_WORLD), MPI_SUCCESS);
    EXPECT_EQ(out, 7);  // zero elements: output untouched
  });
}

TEST(SmpiColl, ScanSingleRankIsIdentity) {
  run_mpi(1, [] {
    const int mine = 41;
    int prefix = -1;
    ASSERT_EQ(MPI_Scan(&mine, &prefix, 1, MPI_INT, MPI_SUM, MPI_COMM_WORLD), MPI_SUCCESS);
    EXPECT_EQ(prefix, 41);
  });
}

TEST(SmpiColl, ScanNonCommutativeFoldsInRankOrder) {
  constexpr int kRanks = 6;
  run_mpi(kRanks, [] {
    const int rank = my_rank();
    MPI_Op op;
    ASSERT_EQ(MPI_Op_create(&affine_compose, 0, &op), MPI_SUCCESS);
    // Rank q contributes the affine map x -> 2x + (q + 1).
    int contribution[2] = {2, rank + 1};
    int prefix[2] = {-1, -1};
    ASSERT_EQ(MPI_Scan(contribution, prefix, 2, MPI_INT, op, MPI_COMM_WORLD), MPI_SUCCESS);
    // Reference: strict left fold over ranks 0..rank (lower rank applied
    // first, i.e. it is the `in` operand of every step).
    int expected[2] = {2, 1};
    for (int q = 1; q <= rank; ++q) {
      int step[2] = {2, q + 1};
      affine_compose_ref(expected, step);
      expected[0] = step[0];
      expected[1] = step[1];
    }
    EXPECT_EQ(prefix[0], expected[0]);
    EXPECT_EQ(prefix[1], expected[1]);
    MPI_Op_free(&op);
  });
}

TEST(SmpiColl, ReduceScatterAllZeroCountsCompletes) {
  run_mpi(4, [] {
    const int size = world_size();
    std::vector<int> counts(static_cast<std::size_t>(size), 0);
    int dummy = 3;
    int out = 3;
    ASSERT_EQ(MPI_Reduce_scatter(&dummy, &out, counts.data(), MPI_INT, MPI_SUM, MPI_COMM_WORLD),
              MPI_SUCCESS);
    EXPECT_EQ(out, 3);
  });
}

TEST(SmpiColl, ReduceScatterSingleRankReducesOwnBlock) {
  run_mpi(1, [] {
    const int counts[1] = {3};
    const int input[3] = {4, 5, 6};
    int out[3] = {-1, -1, -1};
    ASSERT_EQ(MPI_Reduce_scatter(input, out, counts, MPI_INT, MPI_SUM, MPI_COMM_WORLD),
              MPI_SUCCESS);
    EXPECT_EQ(out[0], 4);
    EXPECT_EQ(out[1], 5);
    EXPECT_EQ(out[2], 6);
  });
}

TEST(SmpiColl, ReduceScatterMixedZeroAndNonZeroCounts) {
  run_mpi(4, [] {
    const int rank = my_rank();
    const int size = world_size();
    // Ranks 0 and 2 receive two elements, ranks 1 and 3 receive none.
    std::vector<int> counts(static_cast<std::size_t>(size));
    for (int r = 0; r < size; ++r) counts[static_cast<std::size_t>(r)] = (r % 2 == 0) ? 2 : 0;
    std::vector<int> input(4);
    for (int i = 0; i < 4; ++i) input[static_cast<std::size_t>(i)] = rank * 100 + i;
    std::vector<int> out(2, -7);
    ASSERT_EQ(MPI_Reduce_scatter(input.data(), out.data(), counts.data(), MPI_INT, MPI_SUM,
                                 MPI_COMM_WORLD),
              MPI_SUCCESS);
    const int rank_sum = 100 * (size * (size - 1) / 2);
    if (rank % 2 == 0) {
      const int offset = rank == 0 ? 0 : 2;  // rank 2's block starts after rank 0's
      EXPECT_EQ(out[0], rank_sum + size * offset);
      EXPECT_EQ(out[1], rank_sum + size * (offset + 1));
    } else {
      EXPECT_EQ(out[0], -7);  // zero-count ranks receive nothing
    }
  });
}

TEST(SmpiColl, ReduceScatterNonCommutativeFoldsInRankOrder) {
  constexpr int kRanks = 5;
  run_mpi(kRanks, [] {
    const int rank = my_rank();
    const int size = world_size();
    MPI_Op op;
    ASSERT_EQ(MPI_Op_create(&affine_compose, 0, &op), MPI_SUCCESS);
    // One affine pair per destination rank; rank q's contribution for block
    // j is x -> 2x + (10q + j). Non-commutative ops take the
    // reduce-to-root + scatterv fallback, which must still fold rank-first.
    std::vector<int> counts(static_cast<std::size_t>(size), 2);
    std::vector<int> input(static_cast<std::size_t>(size) * 2);
    for (int j = 0; j < size; ++j) {
      input[static_cast<std::size_t>(2 * j)] = 2;
      input[static_cast<std::size_t>(2 * j + 1)] = 10 * rank + j;
    }
    int out[2] = {-1, -1};
    ASSERT_EQ(MPI_Reduce_scatter(input.data(), out, counts.data(), MPI_INT, op, MPI_COMM_WORLD),
              MPI_SUCCESS);
    int expected[2] = {2, rank};  // rank 0's contribution for block `rank`
    for (int q = 1; q < size; ++q) {
      int step[2] = {2, 10 * q + rank};
      affine_compose_ref(expected, step);
      expected[0] = step[0];
      expected[1] = step[1];
    }
    EXPECT_EQ(out[0], expected[0]);
    EXPECT_EQ(out[1], expected[1]);
    MPI_Op_free(&op);
  });
}

TEST(SmpiColl, ContentionMakesAlltoallSlowerThanNoContention) {
  // The qualitative claim behind Figures 7/11: a model without contention
  // underestimates collective completion times. Contention arises on shared
  // links — here the inter-cabinet uplink crossed by several concurrent
  // pairwise exchanges at every step.
  auto measure = [](bool contention) {
    auto config = fast_config();
    config.network.contention = contention;
    auto platform = two_cabinet_cluster(4);
    return run_mpi_on(
        platform, 8,
        [] {
          const int size = world_size();
          std::vector<char> send(static_cast<std::size_t>(size) * 512 * 1024, 'x');
          std::vector<char> recv(static_cast<std::size_t>(size) * 512 * 1024);
          smpi::coll::alltoall_pairwise(send.data(), 512 * 1024, MPI_CHAR, recv.data(),
                                        512 * 1024, MPI_CHAR, MPI_COMM_WORLD);
        },
        config);
  };
  const double with_contention = measure(true);
  const double without = measure(false);
  EXPECT_GT(with_contention, without * 1.2);
}
