#include "pnet/packetnet.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "platform/builders.hpp"
#include "sim/engine.hpp"

namespace pn = smpi::pnet;
namespace sp = smpi::platform;
namespace ss = smpi::sim;

namespace {

sp::FlatClusterParams cluster(int nodes, double bw, double lat) {
  sp::FlatClusterParams params;
  params.nodes = nodes;
  params.link_bandwidth_bps = bw;
  params.link_latency_s = lat;
  return params;
}

struct Fixture {
  Fixture(sp::FlatClusterParams params, pn::PacketNetConfig config)
      : platform(sp::build_flat_cluster(params)) {
    auto model = std::make_shared<pn::PacketNetworkModel>(platform, config);
    net = model.get();
    engine.add_model(model);
  }
  sp::Platform platform;
  ss::Engine engine;
  pn::PacketNetworkModel* net = nullptr;
};

pn::PacketNetConfig no_rampup() {
  pn::PacketNetConfig config;
  config.slow_start = false;
  config.receive_overhead_s = 0;
  return config;
}

}  // namespace

TEST(PacketNet, SingleFrameCrossesStoreAndForward) {
  Fixture fx(cluster(2, 1e8, 1e-3), no_rampup());
  double done_at = -1;
  fx.engine.spawn("s", 0, [&] {
    fx.net->start_flow(0, 1, 1000, {})->wait();
    done_at = fx.engine.now();
  });
  fx.engine.run();
  // Frame = 1054 B. Each of the 2 links: serialize 1.054e-5 then propagate
  // 1e-3 (store-and-forward): 2*(1.054e-5 + 1e-3).
  EXPECT_NEAR(done_at, 2 * (1054.0 / 1e8 + 1e-3), 1e-9);
}

TEST(PacketNet, PerFrameOverheadQuantizesSmallMessages) {
  Fixture fx(cluster(2, 1e8, 1e-4), no_rampup());
  // 1 byte and 1000 bytes both fit in one frame; their times differ only by
  // the payload's serialization, not by a full per-message cost.
  std::vector<double> done(2, -1);
  fx.engine.spawn("s", 0, [&] {
    const double t0 = fx.engine.now();
    fx.net->start_flow(0, 1, 1, {})->wait();
    done[0] = fx.engine.now() - t0;
    const double t1 = fx.engine.now();
    fx.net->start_flow(0, 1, 1000, {})->wait();
    done[1] = fx.engine.now() - t1;
  });
  fx.engine.run();
  EXPECT_NEAR(done[1] - done[0], 2 * (999.0 / 1e8), 1e-9);
}

TEST(PacketNet, LargeMessageGoodputBelowNominal) {
  Fixture fx(cluster(2, 1.25e8, 5e-5), no_rampup());
  double done_at = -1;
  const double bytes = 1e7;
  fx.engine.spawn("s", 0, [&] {
    fx.net->start_flow(0, 1, bytes, {})->wait();
    done_at = fx.engine.now();
  });
  fx.engine.run();
  const double goodput = bytes / done_at;
  // Header overhead: effective rate ~= nominal * mss/mtu = 0.964 nominal.
  EXPECT_LT(goodput, 1.25e8 * 0.97);
  EXPECT_GT(goodput, 1.25e8 * 0.93);
}

TEST(PacketNet, MoreSwitchesAddPerHopCost) {
  // Same endpoints speeds, 1 vs 3 switches: the 3-switch route pays two more
  // store-and-forward serializations plus link latencies per frame.
  sp::HierarchicalClusterParams params;
  params.cabinet_sizes = {2, 2};
  params.cabinets_per_switch = 1;
  params.node_bandwidth_bps = 1e8;
  params.node_latency_s = 1e-4;
  params.uplink_bandwidth_bps = 1e8;
  params.uplink_latency_s = 1e-4;
  auto platform = sp::build_hierarchical_cluster(params);

  ss::Engine engine;
  auto model = std::make_shared<pn::PacketNetworkModel>(platform, no_rampup());
  auto* net = model.get();
  engine.add_model(model);
  double near_time = -1, far_time = -1;
  engine.spawn("s", 0, [&] {
    const double t0 = engine.now();
    net->start_flow(0, 1, 1000, {})->wait();  // same cabinet: 1 switch
    near_time = engine.now() - t0;
    const double t1 = engine.now();
    net->start_flow(0, 2, 1000, {})->wait();  // distant: 3 switches
    far_time = engine.now() - t1;
  });
  engine.run();
  const double frame = 1054.0 / 1e8 + 1e-4;
  EXPECT_NEAR(near_time, 2 * frame, 1e-9);
  EXPECT_NEAR(far_time, 4 * frame, 1e-9);
}

TEST(PacketNet, TwoFlowsInterleaveFairly) {
  // Ack-clocked steady window: without a binding window a sender would dump
  // its whole message into the first queue and serialize ahead of later
  // flows; with one, concurrent flows interleave at window granularity.
  auto config = no_rampup();
  config.initial_window_bytes = 64 * 1024;
  config.max_window_bytes = 64 * 1024;
  const double bytes = 2e6;
  double solo = -1;
  {
    // The engine is a singleton-at-a-time: measure the solo transfer in its
    // own scope first.
    Fixture solo_fx(cluster(3, 1e8, 1e-4), config);
    solo_fx.engine.spawn("s", 0, [&] {
      solo_fx.net->start_flow(0, 1, bytes, {})->wait();
      solo = solo_fx.engine.now();
    });
    solo_fx.engine.run();
  }
  Fixture fx(cluster(3, 1e8, 1e-4), config);
  std::vector<double> done(2, -1);
  fx.engine.spawn("s", 0, [&] {
    auto f1 = fx.net->start_flow(0, 1, bytes, {});
    auto f2 = fx.net->start_flow(0, 2, bytes, {});
    f1->on_completion([&](ss::Activity& a) { done[0] = a.finish_time(); });
    f2->on_completion([&](ss::Activity& a) { done[1] = a.finish_time(); });
    f1->wait();
    f2->wait();
  });
  fx.engine.run();
  // Both share the source uplink: each takes roughly twice the solo time and
  // they finish within one window of each other.
  EXPECT_NEAR(done[0], 2 * solo, 0.15 * 2 * solo);
  EXPECT_NEAR(done[1], 2 * solo, 0.15 * 2 * solo);
  EXPECT_NEAR(done[0], done[1], 0.1 * done[0]);
}

TEST(PacketNet, WindowLimitsThroughputOnLongPath) {
  auto config = no_rampup();
  config.initial_window_bytes = 8 * 1024;
  config.max_window_bytes = 8 * 1024;  // tiny window
  Fixture fx(cluster(2, 1.25e8, 2e-3), config);  // RTT ~8ms
  double done_at = -1;
  const double bytes = 1e6;
  fx.engine.spawn("s", 0, [&] {
    fx.net->start_flow(0, 1, bytes, {})->wait();
    done_at = fx.engine.now();
  });
  fx.engine.run();
  // Window-bound rate ~= window / RTT ~= 8 KiB / 8 ms ~= 1 MiB/s, far below
  // the 125 MB/s wire rate.
  const double goodput = bytes / done_at;
  EXPECT_LT(goodput, 3e6);
  EXPECT_GT(goodput, 5e5);
}

TEST(PacketNet, SlowStartRampsUp) {
  const double bytes = 2e6;
  double ramped_time = -1, warm_time = -1;
  {
    pn::PacketNetConfig slow = no_rampup();
    slow.slow_start = true;
    slow.initial_window_bytes = 2 * 1024;
    Fixture ramped(cluster(2, 1.25e8, 1e-3), slow);
    ramped.engine.spawn("s", 0, [&] {
      ramped.net->start_flow(0, 1, bytes, {})->wait();
      ramped_time = ramped.engine.now();
    });
    ramped.engine.run();
  }
  {
    Fixture warm(cluster(2, 1.25e8, 1e-3), no_rampup());
    warm.engine.spawn("s", 0, [&] {
      warm.net->start_flow(0, 1, bytes, {})->wait();
      warm_time = warm.engine.now();
    });
    warm.engine.run();
  }
  EXPECT_GT(ramped_time, warm_time * 1.05);  // ramp-up costs something
  EXPECT_LT(ramped_time, warm_time * 5.0);   // ...but converges
}

TEST(PacketNet, ZeroByteMessageIsOneControlFrame) {
  Fixture fx(cluster(2, 1e8, 1e-3), no_rampup());
  double done_at = -1;
  fx.engine.spawn("s", 0, [&] {
    fx.net->start_flow(0, 1, 0, {})->wait();
    done_at = fx.engine.now();
  });
  fx.engine.run();
  EXPECT_NEAR(done_at, 2 * (54.0 / 1e8 + 1e-3), 1e-9);
}

TEST(PacketNet, LoopbackIsImmediate) {
  Fixture fx(cluster(2, 1e8, 1e-3), no_rampup());
  double done_at = -1;
  fx.engine.spawn("s", 0, [&] {
    fx.net->start_flow(0, 0, 12345, {})->wait();
    done_at = fx.engine.now();
  });
  fx.engine.run();
  EXPECT_DOUBLE_EQ(done_at, 0.0);
}

TEST(PacketNet, FlowsRetireAfterAcksDrain) {
  Fixture fx(cluster(2, 1e8, 1e-4), no_rampup());
  fx.engine.spawn("s", 0, [&] {
    fx.net->start_flow(0, 1, 1e5, {})->wait();
    fx.engine.sleep_for(1.0);  // let the trailing acks drain
  });
  fx.engine.run();
  EXPECT_EQ(fx.net->active_flow_count(), 0u);
}

TEST(PacketNet, FrameCountMatchesPayload) {
  Fixture fx(cluster(2, 1e8, 1e-4), no_rampup());
  fx.engine.spawn("s", 0, [&] {
    fx.net->start_flow(0, 1, 14460, {})->wait();  // exactly 10 full frames
    fx.engine.sleep_for(1.0);
  });
  fx.engine.run();
  // 10 data frames + 10 acks.
  EXPECT_EQ(fx.net->total_frames_sent(), 20u);
}

TEST(PacketNet, DeterministicEventCount) {
  auto run_once = [] {
    Fixture fx(cluster(4, 1e8, 1e-4), no_rampup());
    fx.engine.spawn("s", 0, [&] {
      auto f1 = fx.net->start_flow(0, 1, 5e5, {});
      auto f2 = fx.net->start_flow(2, 3, 5e5, {});
      f1->wait();
      f2->wait();
      fx.engine.sleep_for(1.0);
    });
    fx.engine.run();
    return fx.net->total_events_processed();
  };
  EXPECT_EQ(run_once(), run_once());
}
