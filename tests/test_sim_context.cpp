#include "sim/context.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/engine.hpp"
#include "util/check.hpp"

namespace ss = smpi::sim;

class ContextBackendTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ContextBackendTest, RunsBodyOnResume) {
  auto factory = ss::ContextFactory::make(GetParam(), 64 * 1024);
  bool ran = false;
  auto ctx = factory->create([&] { ran = true; });
  EXPECT_FALSE(ran);
  ctx->resume();
  EXPECT_TRUE(ran);
  EXPECT_TRUE(ctx->done());
}

TEST_P(ContextBackendTest, SuspendResumeRoundTrips) {
  auto factory = ss::ContextFactory::make(GetParam(), 64 * 1024);
  std::vector<int> order;
  ss::Context* self = nullptr;
  auto ctx = factory->create([&] {
    order.push_back(1);
    self->suspend();
    order.push_back(3);
    self->suspend();
    order.push_back(5);
  });
  self = ctx.get();
  ctx->resume();
  order.push_back(2);
  ctx->resume();
  order.push_back(4);
  ctx->resume();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
  EXPECT_TRUE(ctx->done());
}

TEST_P(ContextBackendTest, LocalStateSurvivesSuspension) {
  auto factory = ss::ContextFactory::make(GetParam(), 64 * 1024);
  ss::Context* self = nullptr;
  long long sum = 0;
  auto ctx = factory->create([&] {
    long long local = 0;
    for (int i = 0; i < 10; ++i) {
      local += i;
      self->suspend();
    }
    sum = local;
  });
  self = ctx.get();
  while (!ctx->done()) ctx->resume();
  EXPECT_EQ(sum, 45);
}

TEST_P(ContextBackendTest, DestroyingSuspendedContextUnwindsStack) {
  auto factory = ss::ContextFactory::make(GetParam(), 64 * 1024);
  // The destructor of `guard` must run when the unfinished context is
  // destroyed — this is what releases application resources at teardown.
  bool destroyed = false;
  struct Guard {
    bool* flag;
    ~Guard() { *flag = true; }
  };
  ss::Context* self = nullptr;
  {
    auto ctx = factory->create([&] {
      Guard guard{&destroyed};
      self->suspend();
      // never reached
      FAIL() << "context resumed after kill";
    });
    self = ctx.get();
    ctx->resume();
    EXPECT_FALSE(destroyed);
  }
  EXPECT_TRUE(destroyed);
}

TEST_P(ContextBackendTest, DestroyingNeverStartedContextIsSafe) {
  auto factory = ss::ContextFactory::make(GetParam(), 64 * 1024);
  bool ran = false;
  { auto ctx = factory->create([&] { ran = true; }); }
  EXPECT_FALSE(ran);
}

TEST_P(ContextBackendTest, ManyContextsInterleave) {
  auto factory = ss::ContextFactory::make(GetParam(), 64 * 1024);
  constexpr int kContexts = 50;
  std::vector<std::unique_ptr<ss::Context>> contexts(kContexts);
  std::vector<ss::Context*> raw(kContexts);
  int counter = 0;
  for (int i = 0; i < kContexts; ++i) {
    contexts[i] = factory->create([&raw, &counter, i] {
      for (int round = 0; round < 3; ++round) {
        ++counter;
        raw[i]->suspend();
      }
    });
    raw[i] = contexts[i].get();
  }
  for (int round = 0; round < 4; ++round) {
    for (auto& ctx : contexts) {
      if (!ctx->done()) ctx->resume();
    }
  }
  for (auto& ctx : contexts) EXPECT_TRUE(ctx->done());
  EXPECT_EQ(counter, kContexts * 3);
}

// "raw" resolves to the hand-rolled switch on x86-64 Linux and to the
// ucontext fallback elsewhere — either way the contract must hold.
INSTANTIATE_TEST_SUITE_P(Backends, ContextBackendTest,
                         ::testing::Values("raw", "ucontext", "thread"));

TEST(ContextFactory, RejectsUnknownBackend) {
  EXPECT_THROW(ss::ContextFactory::make("fibers-of-doom", 1024), smpi::util::ContractError);
}

TEST(EngineWithThreadBackend, FullRunWorks) {
  ss::EngineConfig config;
  config.context_backend = "thread";
  ss::Engine engine(config);
  double t = -1;
  engine.spawn("a", 0, [&] {
    engine.sleep_for(1.0);
    t = engine.now();
  });
  engine.run();
  EXPECT_DOUBLE_EQ(t, 1.0);
}
