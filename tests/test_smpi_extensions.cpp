// Extensions beyond the paper's §5.1 subset: MPI_Comm_split (explicitly
// listed as missing in the paper) and the long-message broadcast variant
// (§5.3's planned "multiple variants per collective").
#include <gtest/gtest.h>

#include <vector>

#include "smpi/coll.h"
#include "smpi_test_util.hpp"
#include "util/check.hpp"

using namespace smpi_test;

TEST(CommSplit, PartitionsByColorOrderedByKey) {
  run_mpi(6, [] {
    const int rank = my_rank();
    // Colors 0/1 by parity; keys reverse the rank order inside each color.
    MPI_Comm sub = MPI_COMM_NULL;
    ASSERT_EQ(MPI_Comm_split(MPI_COMM_WORLD, rank % 2, -rank, &sub), MPI_SUCCESS);
    ASSERT_NE(sub, MPI_COMM_NULL);
    int sub_rank = -1, sub_size = -1;
    MPI_Comm_rank(sub, &sub_rank);
    MPI_Comm_size(sub, &sub_size);
    EXPECT_EQ(sub_size, 3);
    // Keys are -rank: the highest old rank comes first.
    // Evens {0,2,4} with keys {0,-2,-4} -> order 4,2,0.
    const int expected_rank = (rank % 2 == 0) ? (4 - rank) / 2 : (5 - rank) / 2;
    EXPECT_EQ(sub_rank, expected_rank);
    // The sub-communicator must be fully functional.
    int sum = -1;
    int v = rank;
    MPI_Allreduce(&v, &sum, 1, MPI_INT, MPI_SUM, sub);
    EXPECT_EQ(sum, rank % 2 == 0 ? 0 + 2 + 4 : 1 + 3 + 5);
  });
}

TEST(CommSplit, UndefinedColorGetsNull) {
  run_mpi(4, [] {
    const int rank = my_rank();
    MPI_Comm sub = reinterpret_cast<MPI_Comm>(0x1);  // poison
    const int color = rank == 0 ? MPI_UNDEFINED : 7;
    ASSERT_EQ(MPI_Comm_split(MPI_COMM_WORLD, color, 0, &sub), MPI_SUCCESS);
    if (rank == 0) {
      EXPECT_EQ(sub, MPI_COMM_NULL);
    } else {
      ASSERT_NE(sub, MPI_COMM_NULL);
      int sub_size = -1;
      MPI_Comm_size(sub, &sub_size);
      EXPECT_EQ(sub_size, 3);
    }
  });
}

TEST(CommSplit, SingleColorIsCongruentToParent) {
  run_mpi(4, [] {
    MPI_Comm sub = MPI_COMM_NULL;
    ASSERT_EQ(MPI_Comm_split(MPI_COMM_WORLD, 0, my_rank(), &sub), MPI_SUCCESS);
    int result = -1;
    MPI_Comm_compare(MPI_COMM_WORLD, sub, &result);
    EXPECT_EQ(result, MPI_CONGRUENT);
  });
}

TEST(CommSplit, RejectsNegativeColor) {
  run_mpi(2, [] {
    MPI_Comm sub = MPI_COMM_NULL;
    EXPECT_EQ(MPI_Comm_split(MPI_COMM_WORLD, -3, 0, &sub), MPI_ERR_ARG);
  });
}

TEST(CommSplit, RepeatedSplitsNest) {
  run_mpi(8, [] {
    const int rank = my_rank();
    MPI_Comm half = MPI_COMM_NULL;
    MPI_Comm_split(MPI_COMM_WORLD, rank / 4, rank, &half);
    int half_rank = -1;
    MPI_Comm_rank(half, &half_rank);
    MPI_Comm quarter = MPI_COMM_NULL;
    MPI_Comm_split(half, half_rank / 2, half_rank, &quarter);
    int quarter_size = -1;
    MPI_Comm_size(quarter, &quarter_size);
    EXPECT_EQ(quarter_size, 2);
    int v = 1, total = 0;
    MPI_Allreduce(&v, &total, 1, MPI_INT, MPI_SUM, quarter);
    EXPECT_EQ(total, 2);
  });
}

TEST(BcastVariants, LongMessageVariantMatchesBinomial) {
  run_mpi(8, [] {
    const int rank = my_rank();
    std::vector<int> via_ring(200000, rank == 2 ? 1234 : -1);
    std::vector<int> via_binomial(200000, rank == 2 ? 1234 : -1);
    ASSERT_EQ(smpi::coll::bcast_scatter_ring_allgather(via_ring.data(), 200000, MPI_INT, 2,
                                                       MPI_COMM_WORLD),
              MPI_SUCCESS);
    ASSERT_EQ(smpi::coll::bcast_binomial(via_binomial.data(), 200000, MPI_INT, 2,
                                         MPI_COMM_WORLD),
              MPI_SUCCESS);
    EXPECT_EQ(via_ring, via_binomial);
    EXPECT_EQ(via_ring[0], 1234);
    EXPECT_EQ(via_ring[199999], 1234);
  });
}

TEST(BcastVariants, LongMessageVariantHandlesUnevenBlocks) {
  run_mpi(7, [] {  // 7 does not divide the payload evenly
    std::vector<char> data(100001, my_rank() == 0 ? 'z' : '?');
    ASSERT_EQ(smpi::coll::bcast_scatter_ring_allgather(data.data(), 100001, MPI_CHAR, 0,
                                                       MPI_COMM_WORLD),
              MPI_SUCCESS);
    EXPECT_EQ(data[0], 'z');
    EXPECT_EQ(data[100000], 'z');
  });
}

TEST(BcastVariants, DispatchStillCorrectAroundThreshold) {
  run_mpi(8, [] {
    for (const int count : {1, 1000, 131071, 131072, 131073, 500000}) {
      std::vector<int> data(static_cast<std::size_t>(count), my_rank() == 0 ? count : -1);
      ASSERT_EQ(MPI_Bcast(data.data(), count, MPI_INT, 0, MPI_COMM_WORLD), MPI_SUCCESS);
      ASSERT_EQ(data.front(), count);
      ASSERT_EQ(data.back(), count);
    }
  });
}

TEST(BcastVariants, RingVariantIsFasterForHugeMessagesOnManyRanks) {
  // The reason the variant exists: a binomial tree moves the whole payload
  // log2(P) times over the root-side links; scatter+ring moves ~2x total.
  auto time_variant = [](bool ring) {
    return run_mpi(16, [ring] {
      std::vector<char> data(4u << 20, my_rank() == 0 ? 'x' : '?');
      if (ring) {
        smpi::coll::bcast_scatter_ring_allgather(data.data(), static_cast<int>(data.size()),
                                                 MPI_CHAR, 0, MPI_COMM_WORLD);
      } else {
        smpi::coll::bcast_binomial(data.data(), static_cast<int>(data.size()), MPI_CHAR, 0,
                                   MPI_COMM_WORLD);
      }
    });
  };
  const double t_ring = time_variant(true);
  const double t_binomial = time_variant(false);
  EXPECT_LT(t_ring, t_binomial);
}

TEST(AlltoallVariants, BruckMatchesPairwise) {
  for (const int P : {8, 9, 16}) {
    run_mpi(P, [] {
      const int rank = my_rank();
      const int size = world_size();
      std::vector<int> send(static_cast<std::size_t>(size) * 2);
      for (int r = 0; r < size; ++r) {
        send[static_cast<std::size_t>(2 * r)] = rank * 1000 + r;
        send[static_cast<std::size_t>(2 * r + 1)] = rank * 1000 + r + 500;
      }
      std::vector<int> via_bruck(static_cast<std::size_t>(size) * 2, -1);
      std::vector<int> via_pairwise(static_cast<std::size_t>(size) * 2, -2);
      ASSERT_EQ(smpi::coll::alltoall_bruck(send.data(), 2, MPI_INT, via_bruck.data(), 2, MPI_INT,
                                           MPI_COMM_WORLD),
                MPI_SUCCESS);
      ASSERT_EQ(smpi::coll::alltoall_pairwise(send.data(), 2, MPI_INT, via_pairwise.data(), 2,
                                              MPI_INT, MPI_COMM_WORLD),
                MPI_SUCCESS);
      ASSERT_EQ(via_bruck, via_pairwise);
    });
  }
}

TEST(AlltoallVariants, BruckWinsOnLatencyBoundMessages) {
  // Bruck does ceil(log2 P) rounds instead of P-1: for tiny blocks on many
  // ranks it should beat the pairwise exchange in simulated time.
  auto time_variant = [](bool bruck) {
    return run_mpi(16, [bruck] {
      const int size = world_size();
      std::vector<int> send(static_cast<std::size_t>(size), my_rank());
      std::vector<int> recv(static_cast<std::size_t>(size), -1);
      if (bruck) {
        smpi::coll::alltoall_bruck(send.data(), 1, MPI_INT, recv.data(), 1, MPI_INT,
                                   MPI_COMM_WORLD);
      } else {
        smpi::coll::alltoall_pairwise(send.data(), 1, MPI_INT, recv.data(), 1, MPI_INT,
                                      MPI_COMM_WORLD);
      }
    });
  };
  EXPECT_LT(time_variant(true), time_variant(false));
}

TEST(AllreduceVariants, RabenseifnerMatchesRecursiveDoubling) {
  run_mpi(8, [] {
    const int rank = my_rank();
    std::vector<double> input(1000);
    for (std::size_t i = 0; i < input.size(); ++i) {
      input[i] = rank + static_cast<double>(i) * 0.25;
    }
    std::vector<double> via_rab(1000, -1), via_rdb(1000, -2);
    ASSERT_EQ(smpi::coll::allreduce_rabenseifner(input.data(), via_rab.data(), 1000, MPI_DOUBLE,
                                                 MPI_SUM, MPI_COMM_WORLD),
              MPI_SUCCESS);
    ASSERT_EQ(smpi::coll::allreduce_recursive_doubling(input.data(), via_rdb.data(), 1000,
                                                       MPI_DOUBLE, MPI_SUM, MPI_COMM_WORLD),
              MPI_SUCCESS);
    for (std::size_t i = 0; i < 1000; ++i) ASSERT_DOUBLE_EQ(via_rab[i], via_rdb[i]) << i;
  });
}

TEST(AllreduceVariants, RabenseifnerHandlesUnevenBlocks) {
  run_mpi(4, [] {
    std::vector<long long> in(1003, my_rank() + 1);  // 1003 % 4 != 0
    std::vector<long long> out(1003, -1);
    ASSERT_EQ(smpi::coll::allreduce_rabenseifner(in.data(), out.data(), 1003, MPI_LONG_LONG,
                                                 MPI_SUM, MPI_COMM_WORLD),
              MPI_SUCCESS);
    for (long long v : out) ASSERT_EQ(v, 1 + 2 + 3 + 4);
  });
}

TEST(AllreduceVariants, DispatchCorrectAcrossSizes) {
  run_mpi(8, [] {
    for (const int count : {1, 100, 8191, 8192, 100000}) {
      std::vector<double> in(static_cast<std::size_t>(count), 1.0);
      std::vector<double> out(static_cast<std::size_t>(count), -1);
      ASSERT_EQ(MPI_Allreduce(in.data(), out.data(), count, MPI_DOUBLE, MPI_SUM,
                              MPI_COMM_WORLD),
                MPI_SUCCESS);
      ASSERT_DOUBLE_EQ(out.front(), 8.0);
      ASSERT_DOUBLE_EQ(out.back(), 8.0);
    }
  });
}

TEST(AdaptiveSampling, StopsOnceStableAndFoldsAfterwards) {
  int executions = 0;
  run_mpi(1, [&executions] {
    for (int iter = 0; iter < 40; ++iter) {
      // A steady burst: the coefficient of variation should fall under the
      // (generous) 50% threshold after a handful of measurements.
      SMPI_SAMPLE_LOCAL_AUTO(40, 0.5) {
        ++executions;
        volatile double x = 1;
        for (int i = 0; i < 300000; ++i) x = x * 1.0000001;
      }
    }
  });
  EXPECT_GE(executions, 2);   // always measures at least twice
  EXPECT_LT(executions, 40);  // converged before the cap
}

TEST(AdaptiveSampling, RespectsTheHardCap) {
  int executions = 0;
  run_mpi(1, [&executions] {
    for (int iter = 0; iter < 10; ++iter) {
      // Impossibly tight precision: the cap must stop the sampling.
      SMPI_SAMPLE_LOCAL_AUTO(4, 1e-12) {
        ++executions;
        volatile double x = 1;
        for (int i = 0; i < 10000; ++i) x = x * 1.0000001;
      }
    }
  });
  EXPECT_EQ(executions, 4);
}

TEST(AdaptiveSampling, RejectsBadParameters) {
  run_mpi(1, [] {
    EXPECT_THROW(smpi_sample_enter_auto("f", 1, 0, 1, 0.1), smpi::util::ContractError);
    EXPECT_THROW(smpi_sample_enter_auto("f", 2, 0, 10, 0.0), smpi::util::ContractError);
  });
}
