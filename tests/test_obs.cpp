// Observability subsystem tests: wait-state classification on micro-traces
// with analytically known answers, critical-path extraction (length ==
// makespan, ring chains vs. star fan-outs), the per-span accounting
// invariant compute + transfer + wait == elapsed, the zero-overhead canary
// (bit-identical simulated times and counters with analysis off), the
// RankUsage attribution fix for overlapped nonblocking operations, and the
// simulator self-profiler.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "obs/analysis.hpp"
#include "obs/profile.hpp"
#include "obs/resource.hpp"
#include "obs/span.hpp"
#include "smpi_test_util.hpp"
#include "trace/reader.hpp"
#include "trace/replay.hpp"
#include "workload/generate.hpp"
#include "workload/spec.hpp"

namespace obs = smpi::obs;
namespace tr = smpi::trace;
using namespace smpi_test;

namespace {

// Installs a collector for the enclosing scope; clearing in the destructor
// keeps a failed ASSERT (which throws out of the test body under
// GTEST_FLAG(throw_on_failure) == false but still unwinds on fatal errors in
// helper functions) from leaking a dangling global.
struct SpanGuard {
  explicit SpanGuard(obs::SpanCollector* collector) { obs::install_spans(collector); }
  ~SpanGuard() { obs::clear_spans(); }
};

// Every span stream must satisfy the exact accounting identity and the
// critical path must tile [0, makespan].
void expect_analysis_invariants(const obs::AnalysisResult& a) {
  for (int r = 0; r < a.nranks; ++r) {
    const obs::RankBreakdown& b = a.ranks[static_cast<std::size_t>(r)];
    EXPECT_NEAR(b.compute_s + b.transfer_s + b.wait_s, b.elapsed_s,
                1e-9 * std::max(1.0, b.elapsed_s))
        << "rank " << r;
    EXPECT_GE(b.wait_s, 0.0) << "rank " << r;
    EXPECT_GE(b.transfer_s, 0.0) << "rank " << r;
  }
  EXPECT_GE(a.wait_fraction, 0.0);
  EXPECT_LE(a.wait_fraction, 1.0);
  EXPECT_TRUE(a.path_complete);
  EXPECT_NEAR(a.path_length_s, a.makespan, 1e-9 * std::max(1.0, a.makespan));
  EXPECT_NEAR(a.cp_compute_s + a.cp_comm_s, a.path_length_s,
              1e-9 * std::max(1.0, a.path_length_s));
  // The segments tile [0, makespan]: contiguous, forward-ordered, no gaps.
  ASSERT_FALSE(a.path.empty());
  EXPECT_NEAR(a.path.front().t0, 0.0, 1e-12);
  EXPECT_NEAR(a.path.back().t1, a.makespan, 1e-9 * std::max(1.0, a.makespan));
  for (std::size_t i = 1; i < a.path.size(); ++i) {
    EXPECT_NEAR(a.path[i].t0, a.path[i - 1].t1, 1e-12) << "segment " << i;
  }
}

std::set<int> path_ranks(const obs::AnalysisResult& a) {
  std::set<int> ranks;
  for (const auto& seg : a.path) ranks.insert(seg.rank);
  return ranks;
}

// 2-rank overlap micro-trace: rank 1 prepost an Irecv, computes while the
// rendezvous transfer runs underneath, then waits out the remainder.
tr::TiTrace overlap_trace(double overlap_flops) {
  tr::TiTrace trace;
  trace.nranks = 2;
  trace.app = "overlap";
  trace.ranks.resize(2);
  auto rec = [](tr::TiOp op) {
    tr::TiRecord r;
    r.op = op;
    return r;
  };
  // rank 0: send 1 MB (rendezvous: > 64 KiB eager threshold).
  trace.ranks[0].push_back(rec(tr::TiOp::kInit));
  {
    tr::TiRecord r = rec(tr::TiOp::kSend);
    r.peer = 1;
    r.count = 1000000;
    r.elem = 1;
    trace.ranks[0].push_back(r);
  }
  trace.ranks[0].push_back(rec(tr::TiOp::kFinalize));
  // rank 1: irecv; compute; wait.
  trace.ranks[1].push_back(rec(tr::TiOp::kInit));
  {
    tr::TiRecord r = rec(tr::TiOp::kIrecv);
    r.peer = 0;
    r.count = 1000000;
    r.elem = 1;
    r.req = 0;
    trace.ranks[1].push_back(r);
  }
  {
    tr::TiRecord r = rec(tr::TiOp::kCompute);
    r.value = overlap_flops;
    trace.ranks[1].push_back(r);
  }
  {
    tr::TiRecord r = rec(tr::TiOp::kWait);
    r.req = 0;
    trace.ranks[1].push_back(r);
  }
  trace.ranks[1].push_back(rec(tr::TiOp::kFinalize));
  return trace;
}

tr::TiTrace stencil_trace(int ranks) {
  smpi::workload::WorkloadSpec spec;
  spec.name = "obs-stencil";
  spec.ranks = ranks;
  spec.seed = 7;
  smpi::workload::PhaseSpec phase;
  phase.pattern = smpi::workload::Pattern::kStencil2d;
  phase.iterations = 3;
  phase.bytes = {4096};
  phase.compute.flops = 2e5;
  phase.compute.imbalance = 0.3;
  spec.phases.push_back(phase);
  return smpi::workload::generate_workload(spec);
}

}  // namespace

// ---------------------------------------------------------------------------
// Wait-state classification on analytically known micro-benchmarks
// ---------------------------------------------------------------------------

// Rank 0 computes exactly 3 ms (3e6 flops at 1e9 flop/s) before posting an
// eager send; rank 1 is already blocked in MPI_Recv. The receiver's idle
// stretch is a late-sender wait of exactly 3 ms: both ranks leave MPI_Init
// at the same date, so block start and flow start differ by the compute
// alone.
TEST(ObsWaitStates, LateSenderOfExactlyThreeMs) {
  obs::SpanCollector collector(2);
  {
    SpanGuard guard(&collector);
    run_mpi(2, [] {
      char buf[8] = {0};
      if (my_rank() == 0) {
        smpi_execute_flops(3e6);
        MPI_Send(buf, 8, MPI_CHAR, 1, 0, MPI_COMM_WORLD);
      } else {
        MPI_Recv(buf, 8, MPI_CHAR, 0, 0, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      }
    });
  }
  const obs::AnalysisResult a = obs::analyze(collector);
  expect_analysis_invariants(a);
  EXPECT_NEAR(a.ranks[1].late_sender_s, 0.003, 1e-9);
  EXPECT_DOUBLE_EQ(a.ranks[1].late_receiver_s, 0.0);
  // Rank 0 never waits on a peer outside the finalize barrier.
  EXPECT_DOUBLE_EQ(a.ranks[0].late_sender_s, 0.0);
  EXPECT_EQ(a.dominant_wait_state, "late_sender");
  EXPECT_GT(a.total_wait_s, 0.0029);
}

// The mirror image through the rendezvous protocol: a 128 KiB send (above
// the eager threshold) cannot move data until the receive is posted, so a
// receiver that computes 3 ms first leaves the sender in a late-receiver
// wait of exactly 3 ms.
TEST(ObsWaitStates, LateReceiverViaRendezvous) {
  obs::SpanCollector collector(2);
  {
    SpanGuard guard(&collector);
    run_mpi(2, [] {
      std::vector<char> buf(128 * 1024);
      if (my_rank() == 0) {
        MPI_Send(buf.data(), static_cast<int>(buf.size()), MPI_CHAR, 1, 0, MPI_COMM_WORLD);
      } else {
        smpi_execute_flops(3e6);
        MPI_Recv(buf.data(), static_cast<int>(buf.size()), MPI_CHAR, 0, 0, MPI_COMM_WORLD,
                 MPI_STATUS_IGNORE);
      }
    });
  }
  const obs::AnalysisResult a = obs::analyze(collector);
  expect_analysis_invariants(a);
  EXPECT_NEAR(a.ranks[0].late_receiver_s, 0.003, 1e-9);
  EXPECT_DOUBLE_EQ(a.ranks[0].late_sender_s, 0.0);
  EXPECT_EQ(a.dominant_wait_state, "late_receiver");
}

// Load imbalance at a collective sync point surfaces as early-arrival time
// on the fast ranks and none on the straggler.
TEST(ObsWaitStates, EarlyArrivalAtBarrier) {
  obs::SpanCollector collector(4);
  {
    SpanGuard guard(&collector);
    run_mpi(4, [] {
      if (my_rank() == 3) smpi_execute_flops(4e6);  // 4 ms straggler
      MPI_Barrier(MPI_COMM_WORLD);
    });
  }
  const obs::AnalysisResult a = obs::analyze(collector);
  expect_analysis_invariants(a);
  for (int r = 0; r < 3; ++r) {
    EXPECT_GT(a.ranks[static_cast<std::size_t>(r)].early_arrival_s, 0.003) << "rank " << r;
  }
  EXPECT_EQ(a.dominant_wait_state, "early_arrival");
  EXPECT_GT(a.compute_imbalance, 1.0);  // one rank does all the flops
}

// ---------------------------------------------------------------------------
// Critical path
// ---------------------------------------------------------------------------

// A token passed around the ring serializes every rank: the critical path
// must visit all of them, and its length must equal the makespan exactly.
TEST(ObsCriticalPath, RingVisitsEveryRank) {
  constexpr int kRanks = 4;
  obs::SpanCollector collector(kRanks);
  {
    SpanGuard guard(&collector);
    run_mpi(kRanks, [] {
      char token[64] = {0};
      const int rank = my_rank();
      if (rank > 0) {
        MPI_Recv(token, 64, MPI_CHAR, rank - 1, 0, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      }
      smpi_execute_flops(1e6);  // 1 ms of work per hop
      if (rank < world_size() - 1) {
        MPI_Send(token, 64, MPI_CHAR, rank + 1, 0, MPI_COMM_WORLD);
      }
    });
  }
  const obs::AnalysisResult a = obs::analyze(collector);
  expect_analysis_invariants(a);
  EXPECT_EQ(static_cast<int>(path_ranks(a).size()), kRanks);
  // Four serialized 1 ms compute hops dominate the makespan.
  EXPECT_GT(a.makespan, 0.004);
  EXPECT_GT(a.cp_compute_s, 0.0039);
}

// A star fan-out has no chain: the path stays on the hub and the last spoke,
// and the makespan is far below the ring's serialized sum.
TEST(ObsCriticalPath, StarStaysShort) {
  constexpr int kRanks = 4;
  obs::SpanCollector collector(kRanks);
  double star_time = 0;
  {
    SpanGuard guard(&collector);
    star_time = run_mpi(kRanks, [] {
      char buf[64] = {0};
      if (my_rank() == 0) {
        for (int peer = 1; peer < world_size(); ++peer) {
          MPI_Send(buf, 64, MPI_CHAR, peer, 0, MPI_COMM_WORLD);
        }
      } else {
        MPI_Recv(buf, 64, MPI_CHAR, 0, 0, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      }
    });
  }
  const obs::AnalysisResult a = obs::analyze(collector);
  expect_analysis_invariants(a);
  EXPECT_NEAR(a.path_length_s, star_time, 1e-9);
  EXPECT_LT(a.makespan, 0.004);  // no serialized compute chain
}

// ---------------------------------------------------------------------------
// Replay integration: invariants, attribution fix, zero-overhead canary
// ---------------------------------------------------------------------------

// A generated 16-rank stencil replayed with analysis on: the accounting
// identity holds per rank, the path length equals the replay makespan, and
// the RankUsage split is consistent with the span-derived breakdown.
TEST(ObsReplay, StencilInvariantsReconcile) {
  const tr::TiTrace trace = stencil_trace(16);
  const auto platform = test_cluster(16);
  tr::ReplayOptions options;
  options.analyze = true;
  const tr::ReplayResult result = tr::replay_trace(platform, fast_config(), trace, options);
  ASSERT_TRUE(result.analyzed);
  const obs::AnalysisResult& a = result.analysis;
  EXPECT_EQ(a.nranks, 16);
  expect_analysis_invariants(a);
  EXPECT_GT(a.total_wait_s + a.total_transfer_s, 0.0);
  ASSERT_EQ(result.rank_usage.size(), 16u);
  for (int r = 0; r < 16; ++r) {
    const tr::RankUsage& u = result.rank_usage[static_cast<std::size_t>(r)];
    const obs::RankBreakdown& b = a.ranks[static_cast<std::size_t>(r)];
    EXPECT_DOUBLE_EQ(u.wait_s, b.wait_s) << "rank " << r;
    EXPECT_DOUBLE_EQ(u.transfer_s, b.transfer_s) << "rank " << r;
    EXPECT_NEAR(u.comm_s, u.wait_s + u.transfer_s, 1e-12) << "rank " << r;
    EXPECT_NEAR(u.compute_s + u.comm_s, b.elapsed_s, 1e-9 * std::max(1.0, b.elapsed_s))
        << "rank " << r;
  }
}

// The attribution fix for overlapped nonblocking operations: rank 1
// preposts a 1 MB Irecv (rendezvous), computes 5 ms while the ~10 ms
// transfer runs underneath, then waits out the tail. The tail is wire time,
// not idle time — wait_s must be ~0 and the overlapped compute must stay
// attributed to compute (the old record-based split could not tell a
// blocked-on-peer wait from a wire-busy wait at all).
TEST(ObsReplay, OverlappedNonblockingAttribution) {
  const tr::TiTrace trace = overlap_trace(/*overlap_flops=*/5e6);
  const auto platform = test_cluster(2);
  tr::ReplayOptions options;
  options.analyze = true;
  const tr::ReplayResult result = tr::replay_trace(platform, fast_config(), trace, options);
  ASSERT_TRUE(result.analyzed);
  expect_analysis_invariants(result.analysis);
  const tr::RankUsage& u = result.rank_usage[1];
  // The transfer started before the wait began, so none of the blocked tail
  // is a true wait state.
  EXPECT_NEAR(u.wait_s, 0.0, 1e-9);
  // ~10 ms transfer minus the 5 ms hidden under the compute record.
  EXPECT_GT(u.transfer_s, 0.004);
  EXPECT_LT(u.transfer_s, 0.007);
  // The overlapped compute is compute, not communication.
  EXPECT_GT(u.compute_s, 0.005 - 1e-9);
  EXPECT_EQ(result.analysis.ranks[1].late_sender_s, 0.0);
}

// Zero-overhead canary: the same replay with analysis on and off must take
// the exact same simulated-time trajectory — bit-identical simulated time,
// solver counters, and p2p hot-path counters.
TEST(ObsReplay, AnalysisOffIsBitIdentical) {
  const tr::TiTrace trace = stencil_trace(8);
  const auto platform = test_cluster(8);
  tr::ReplayOptions off;
  tr::ReplayOptions on;
  on.analyze = true;
  const tr::ReplayResult plain = tr::replay_trace(platform, fast_config(), trace, off);
  const tr::ReplayResult analyzed = tr::replay_trace(platform, fast_config(), trace, on);
  EXPECT_FALSE(plain.analyzed);
  ASSERT_TRUE(analyzed.analyzed);
  EXPECT_EQ(plain.simulated_time, analyzed.simulated_time);  // bit-identical
  EXPECT_EQ(plain.solver_solves, analyzed.solver_solves);
  EXPECT_EQ(plain.solver_vars_touched, analyzed.solver_vars_touched);
  EXPECT_EQ(plain.solver_cons_touched, analyzed.solver_cons_touched);
  EXPECT_EQ(plain.p2p.pool_hits, analyzed.p2p.pool_hits);
  EXPECT_EQ(plain.p2p.pool_misses, analyzed.p2p.pool_misses);
  EXPECT_EQ(plain.p2p.eager_snapshots, analyzed.p2p.eager_snapshots);
  EXPECT_EQ(plain.p2p.eager_copy_elided, analyzed.p2p.eager_copy_elided);
  EXPECT_EQ(plain.p2p.eager_flush_snapshots, analyzed.p2p.eager_flush_snapshots);
  EXPECT_EQ(plain.p2p.bytes_not_copied, analyzed.p2p.bytes_not_copied);
  // And the analyzed run's critical path still reconciles with that time.
  EXPECT_NEAR(analyzed.analysis.path_length_s, analyzed.analysis.makespan,
              1e-9 * std::max(1.0, analyzed.analysis.makespan));
}

// ---------------------------------------------------------------------------
// Resource-utilization timelines, saturation ledger, bottleneck ranking
// ---------------------------------------------------------------------------

namespace {

// Rank 0 isends `bytes` to every other rank at the same simulated instant
// and waits them all out; receivers just post the matching Recv. Every flow
// crosses rank 0's uplink, which makes the expected shares analytic.
tr::TiTrace fanout_trace(int receivers, long long bytes) {
  tr::TiTrace trace;
  trace.nranks = receivers + 1;
  trace.app = "fanout";
  trace.ranks.resize(static_cast<std::size_t>(trace.nranks));
  auto rec = [](tr::TiOp op) {
    tr::TiRecord r;
    r.op = op;
    return r;
  };
  trace.ranks[0].push_back(rec(tr::TiOp::kInit));
  for (int peer = 1; peer <= receivers; ++peer) {
    tr::TiRecord r = rec(tr::TiOp::kIsend);
    r.peer = peer;
    r.count = bytes;
    r.elem = 1;
    r.req = peer;
    trace.ranks[0].push_back(r);
  }
  for (int peer = 1; peer <= receivers; ++peer) {
    tr::TiRecord r = rec(tr::TiOp::kWait);
    r.req = peer;
    trace.ranks[0].push_back(r);
  }
  trace.ranks[0].push_back(rec(tr::TiOp::kFinalize));
  for (int peer = 1; peer <= receivers; ++peer) {
    auto& stream = trace.ranks[static_cast<std::size_t>(peer)];
    stream.push_back(rec(tr::TiOp::kInit));
    tr::TiRecord r = rec(tr::TiOp::kRecv);
    r.peer = 0;
    r.count = bytes;
    r.elem = 1;
    stream.push_back(r);
    stream.push_back(rec(tr::TiOp::kFinalize));
  }
  return trace;
}

// Every rank sends `bytes` to its successor: a closed ring where all
// uplinks carry exactly one flow — perfectly symmetric, no dominant link.
tr::TiTrace ring_trace(int ranks, long long bytes) {
  tr::TiTrace trace;
  trace.nranks = ranks;
  trace.app = "ring";
  trace.ranks.resize(static_cast<std::size_t>(ranks));
  auto rec = [](tr::TiOp op) {
    tr::TiRecord r;
    r.op = op;
    return r;
  };
  for (int rank = 0; rank < ranks; ++rank) {
    auto& stream = trace.ranks[static_cast<std::size_t>(rank)];
    stream.push_back(rec(tr::TiOp::kInit));
    tr::TiRecord send = rec(tr::TiOp::kIsend);
    send.peer = (rank + 1) % ranks;
    send.count = bytes;
    send.elem = 1;
    send.req = 0;
    stream.push_back(send);
    tr::TiRecord recv = rec(tr::TiOp::kRecv);
    recv.peer = (rank + ranks - 1) % ranks;
    recv.count = bytes;
    recv.elem = 1;
    stream.push_back(recv);
    tr::TiRecord wait = rec(tr::TiOp::kWait);
    wait.req = 0;
    stream.push_back(wait);
    stream.push_back(rec(tr::TiOp::kFinalize));
  }
  return trace;
}

int find_resource(const obs::ResourceCollector& resources, const std::string& name) {
  for (int r = 0; r < static_cast<int>(resources.resource_count()); ++r) {
    if (resources.timeline(r).name == name) return r;
  }
  return -1;
}

}  // namespace

// Two equal eager flows launched at the same instant over rank 0's uplink:
// max-min gives each exactly half the capacity, and the link is saturated
// for precisely the duration of the shared transfer.
TEST(ObsResources, TwoFlowsShareOneLinkFiftyFifty) {
  constexpr long long kBytes = 32 * 1024;  // eager: the flow starts at the send
  const tr::TiTrace trace = fanout_trace(2, kBytes);
  const auto platform = test_cluster(3);
  obs::ResourceCollector resources;
  tr::ReplayOptions options;
  options.resources = &resources;
  const tr::ReplayResult result = tr::replay_trace(platform, fast_config(), trace, options);
  ASSERT_TRUE(result.resources_analyzed);

  const int uplink = find_resource(resources, "up-node-0");
  ASSERT_GE(uplink, 0) << "rank 0's uplink was not registered";
  const obs::ResourceTimeline& tl = resources.timeline(uplink);
  const double capacity = tl.steps.front().capacity;
  ASSERT_GT(capacity, 0.0);

  // Exactly one saturated interval: both flows present, each at capacity/2.
  ASSERT_EQ(tl.saturated.size(), 1u);
  const obs::SaturationInterval& interval = tl.saturated.front();
  ASSERT_EQ(interval.shares.size(), 2u);
  EXPECT_NEAR(interval.shares[0].second, capacity / 2, 1e-9 * capacity);
  EXPECT_NEAR(interval.shares[1].second, capacity / 2, 1e-9 * capacity);
  // At cap/2 each, draining `kBytes` per flow takes 2*kBytes/capacity.
  EXPECT_NEAR(interval.t1 - interval.t0, 2.0 * static_cast<double>(kBytes) / capacity,
              1e-9);
  EXPECT_EQ(resources.distinct_flows(uplink), 2);
  EXPECT_NEAR(resources.saturated_seconds(uplink),
              2.0 * static_cast<double>(kBytes) / capacity, 1e-9);
  // Both flows' payload crossed the link: the exact utilization-timeline
  // integral (usage x dt) reconciles with the bytes at 1e-9 relative.
  EXPECT_NEAR(resources.utilization_integral(uplink), 2.0 * static_cast<double>(kBytes),
              1e-9 * 2.0 * static_cast<double>(kBytes));
  EXPECT_NEAR(resources.max_utilization(uplink), 1.0, 1e-12);
}

// The timeline integral is exact on a single flow too: one message, one
// link, integral == bytes and saturated time == bytes / capacity.
TEST(ObsResources, UtilizationIntegralReconcilesWithBytes) {
  constexpr long long kBytes = 1000000;
  const tr::TiTrace trace = fanout_trace(1, kBytes);
  const auto platform = test_cluster(2);
  obs::ResourceCollector resources;
  tr::ReplayOptions options;
  options.resources = &resources;
  tr::replay_trace(platform, fast_config(), trace, options);
  for (const char* name : {"up-node-0", "down-node-1"}) {
    const int link = find_resource(resources, name);
    ASSERT_GE(link, 0) << name;
    EXPECT_NEAR(resources.utilization_integral(link), static_cast<double>(kBytes),
                1e-9 * static_cast<double>(kBytes))
        << name;
    const double capacity = resources.timeline(link).steps.front().capacity;
    EXPECT_NEAR(resources.saturated_seconds(link), static_cast<double>(kBytes) / capacity,
                1e-9)
        << name;
  }
  // Links the message never crossed stay flat at zero.
  const int other = find_resource(resources, "down-node-0");
  ASSERT_GE(other, 0);
  EXPECT_EQ(resources.utilization_integral(other), 0.0);
  EXPECT_EQ(resources.saturated_seconds(other), 0.0);
}

// Bottleneck attribution tells a star from a ring: the star's shared
// downlink tops the ranking with every flow on it, while the symmetric
// ring has no dominant resource at all.
TEST(ObsResources, StarVersusRingBottleneckRanking) {
  constexpr int kRanks = 6;
  constexpr long long kBytes = 32 * 1024;
  const auto platform = test_cluster(kRanks);

  // Star: everyone sends to rank 0 — its downlink carries all 5 flows.
  tr::TiTrace star;
  star.nranks = kRanks;
  star.app = "star";
  star.ranks.resize(kRanks);
  auto rec = [](tr::TiOp op) {
    tr::TiRecord r;
    r.op = op;
    return r;
  };
  star.ranks[0].push_back(rec(tr::TiOp::kInit));
  for (int peer = 1; peer < kRanks; ++peer) {
    tr::TiRecord r = rec(tr::TiOp::kRecv);
    r.peer = peer;
    r.count = kBytes;
    r.elem = 1;
    star.ranks[0].push_back(r);
  }
  star.ranks[0].push_back(rec(tr::TiOp::kFinalize));
  for (int rank = 1; rank < kRanks; ++rank) {
    auto& stream = star.ranks[static_cast<std::size_t>(rank)];
    stream.push_back(rec(tr::TiOp::kInit));
    tr::TiRecord r = rec(tr::TiOp::kSend);
    r.peer = 0;
    r.count = kBytes;
    r.elem = 1;
    stream.push_back(r);
    stream.push_back(rec(tr::TiOp::kFinalize));
  }
  obs::ResourceCollector star_resources;
  tr::ReplayOptions star_options;
  star_options.resources = &star_resources;
  tr::replay_trace(platform, fast_config(), star, star_options);
  const auto star_ranked = star_resources.bottlenecks();
  ASSERT_FALSE(star_ranked.empty());
  EXPECT_EQ(star_resources.timeline(star_ranked[0].resource).name, "down-node-0");
  EXPECT_EQ(star_ranked[0].flows, kRanks - 1);
  // The hot downlink saturates strictly longer than any per-sender uplink.
  for (std::size_t i = 1; i < star_ranked.size(); ++i) {
    EXPECT_GT(star_ranked[0].saturated_s, star_ranked[i].saturated_s * 1.5)
        << star_resources.timeline(star_ranked[i].resource).name;
  }
  EXPECT_EQ(star_resources.summary().top_bottleneck, "down-node-0");

  // Ring: one flow per uplink, all symmetric — saturated time is equal on
  // every used link and no resource stands out.
  obs::ResourceCollector ring_resources;
  tr::ReplayOptions ring_options;
  ring_options.resources = &ring_resources;
  tr::replay_trace(platform, fast_config(), ring_trace(kRanks, kBytes), ring_options);
  const auto ring_ranked = ring_resources.bottlenecks();
  ASSERT_GE(ring_ranked.size(), 2u);
  EXPECT_NEAR(ring_ranked.front().saturated_s, ring_ranked.back().saturated_s, 1e-9);
  EXPECT_EQ(ring_ranked.front().flows, 1);
}

// Zero-overhead canary for the resource layer: a replay with the collector
// attached takes the exact same simulated-time trajectory as one without —
// bit-identical time, solver counters, and p2p counters.
TEST(ObsResources, ResourcesOffIsBitIdentical) {
  const tr::TiTrace trace = stencil_trace(8);
  const auto platform = test_cluster(8);
  tr::ReplayOptions off;
  tr::ReplayOptions on;
  obs::ResourceCollector resources;
  on.resources = &resources;
  const tr::ReplayResult plain = tr::replay_trace(platform, fast_config(), trace, off);
  const tr::ReplayResult observed = tr::replay_trace(platform, fast_config(), trace, on);
  EXPECT_FALSE(plain.resources_analyzed);
  ASSERT_TRUE(observed.resources_analyzed);
  EXPECT_EQ(plain.simulated_time, observed.simulated_time);  // bit-identical
  EXPECT_EQ(plain.solver_solves, observed.solver_solves);
  EXPECT_EQ(plain.solver_vars_touched, observed.solver_vars_touched);
  EXPECT_EQ(plain.solver_cons_touched, observed.solver_cons_touched);
  EXPECT_EQ(plain.p2p.pool_hits, observed.p2p.pool_hits);
  EXPECT_EQ(plain.p2p.pool_misses, observed.p2p.pool_misses);
  EXPECT_EQ(plain.p2p.eager_snapshots, observed.p2p.eager_snapshots);
  EXPECT_EQ(plain.surf_observe.solves_attach, observed.surf_observe.solves_attach);
  EXPECT_EQ(plain.surf_observe.solves_release, observed.surf_observe.solves_release);
  EXPECT_EQ(plain.surf_observe.saturation_events, observed.surf_observe.saturation_events);
  // The un-observed run never drained a snapshot; the observed one did.
  EXPECT_EQ(plain.surf_observe.observe_drains, 0u);
  EXPECT_GT(observed.surf_observe.observe_drains, 0u);
  EXPECT_GT(resources.snapshot_count(), 0u);
}

// ---------------------------------------------------------------------------
// Self-profiler
// ---------------------------------------------------------------------------

// With a profiler installed, every instrumented hot path reports calls; with
// none installed the hooks are a load + branch (smoke-checked by the suite
// above running un-instrumented).
TEST(ObsProfiler, HotPathsReportCalls) {
  obs::Profiler profiler;
  obs::install_profiler(&profiler);
  run_mpi(4, [] {
    std::vector<char> buf(1 << 16);
    MPI_Allreduce(MPI_IN_PLACE, buf.data(), static_cast<int>(buf.size() / 8), MPI_DOUBLE, MPI_SUM,
                  MPI_COMM_WORLD);
  });
  obs::clear_profiler();
  EXPECT_GT(profiler.stats(obs::ProfKey::kSolverSolve).calls, 0u);
  EXPECT_GT(profiler.stats(obs::ProfKey::kCalendarAdvance).calls, 0u);
  EXPECT_GT(profiler.stats(obs::ProfKey::kContextSwitch).calls, 0u);
  EXPECT_GT(profiler.stats(obs::ProfKey::kPoolOp).calls, 0u);
  for (int k = 0; k < static_cast<int>(obs::ProfKey::kCount); ++k) {
    EXPECT_GE(profiler.stats(static_cast<obs::ProfKey>(k)).seconds, 0.0);
  }
}
