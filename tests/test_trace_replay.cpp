// Trace subsystem tests: record round-trips, capture/replay equivalence on
// the paper's applications (replayed simulated time == online simulated time
// within 1e-9 relative), payload-free p2p semantics, what-if replays on a
// different platform, and the Paje timeline writer.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "apps/dt.hpp"
#include "apps/ep.hpp"
#include "smpi_test_util.hpp"
#include "trace/capture.hpp"
#include "trace/paje.hpp"
#include "trace/reader.hpp"
#include "trace/replay.hpp"
#include "trace/writer.hpp"
#include "util/check.hpp"

namespace fs = std::filesystem;
namespace tr = smpi::trace;
using namespace smpi_test;

namespace {

// Fresh temp directory per use, removed on destruction.
struct TempDir {
  fs::path path;
  TempDir() {
    static int counter = 0;
    path = fs::temp_directory_path() /
           ("smpi_trace_test_" + std::to_string(::getpid()) + "_" + std::to_string(counter++));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

// Runs `app` over `nprocs` ranks on `platform` while capturing a TI trace
// into `dir`; returns the online simulated time.
double capture_run(const smpi::platform::Platform& platform, const smpi::core::SmpiConfig& config,
                   int nprocs, smpi::core::MpiMain app, const std::string& dir) {
  smpi::core::SmpiWorld world(platform, config);
  tr::TiWriter writer(dir, nprocs, "test");
  tr::install_capture(&writer, nullptr);
  try {
    world.run(nprocs, std::move(app));
  } catch (...) {
    tr::clear_capture();
    throw;
  }
  tr::clear_capture();
  writer.finish();
  return world.simulated_time();
}

}  // namespace

// ---------------------------------------------------------------------------
// Record serialization
// ---------------------------------------------------------------------------

TEST(TiRecord, RoundTripsEveryOpKind) {
  std::vector<tr::TiRecord> records;
  {
    tr::TiRecord r;
    r.op = tr::TiOp::kCompute;
    r.value = 1234.567891234567e7;  // must round-trip bit-exactly
    records.push_back(r);
  }
  {
    tr::TiRecord r;
    r.op = tr::TiOp::kIsend;
    r.peer = 12;
    r.count = 1 << 30;  // 8 GiB message: count*elem must never flatten to int
    r.elem = 8;
    r.tag = 7;
    r.req = 42;
    records.push_back(r);
  }
  {
    tr::TiRecord r;
    r.op = tr::TiOp::kRecv;
    r.peer = tr::kPeerAny;
    r.count = 8;
    r.tag = tr::kTagAny;
    records.push_back(r);
  }
  {
    tr::TiRecord r;
    r.op = tr::TiOp::kWaitall;
    r.reqs = {3, 1, 4, 1, 5};
    records.push_back(r);
  }
  {
    tr::TiRecord r;
    r.op = tr::TiOp::kAllreduce;
    r.count = 1000;
    r.elem = 8;
    r.commutative = false;
    records.push_back(r);
  }
  {
    tr::TiRecord r;
    r.op = tr::TiOp::kAlltoallv;
    r.elem = 4;
    r.elem2 = 8;
    r.counts = {1, 2, 3};
    r.counts2 = {4, 5, 6};
    records.push_back(r);
  }
  {
    tr::TiRecord r;
    r.op = tr::TiOp::kSendrecv;
    r.peer = 1;
    r.count = 100;
    r.tag = 2;
    r.peer2 = tr::kPeerNull;
    r.count2 = 200;
    r.tag2 = 3;
    records.push_back(r);
  }

  for (const auto& original : records) {
    const std::string line = tr::serialize_record(original);
    tr::TiRecord parsed;
    ASSERT_TRUE(tr::parse_record(line, &parsed)) << line;
    EXPECT_EQ(parsed.op, original.op) << line;
    EXPECT_EQ(parsed.value, original.value) << line;  // bit-exact doubles
    EXPECT_EQ(parsed.peer, original.peer);
    EXPECT_EQ(parsed.peer2, original.peer2);
    EXPECT_EQ(parsed.count, original.count);
    EXPECT_EQ(parsed.count2, original.count2);
    EXPECT_EQ(parsed.tag, original.tag);
    EXPECT_EQ(parsed.tag2, original.tag2);
    EXPECT_EQ(parsed.req, original.req);
    EXPECT_EQ(parsed.commutative, original.commutative);
    EXPECT_EQ(parsed.reqs, original.reqs);
    EXPECT_EQ(parsed.counts, original.counts);
    EXPECT_EQ(parsed.counts2, original.counts2);
  }
  tr::TiRecord bad;
  EXPECT_FALSE(tr::parse_record("frobnicate 1 2 3", &bad));
  EXPECT_FALSE(tr::parse_record("send 1", &bad));
}

TEST(TiWriterReader, WriterProducesLoadableTraces) {
  TempDir dir;
  {
    tr::TiWriter writer(dir.str(), 2, "unit");
    tr::TiRecord r;
    r.op = tr::TiOp::kInit;
    writer.append(0, r);
    writer.append(1, r);
    r.op = tr::TiOp::kCompute;
    r.value = 5e6;
    writer.append(0, r);
    r.op = tr::TiOp::kFinalize;
    writer.append(0, r);
    writer.append(1, r);
    writer.finish();
    EXPECT_EQ(writer.records_written(), 5u);
  }
  const tr::TiTrace trace = tr::load_ti_trace(dir.str());
  EXPECT_EQ(trace.nranks, 2);
  EXPECT_EQ(trace.app, "unit");
  ASSERT_EQ(trace.ranks[0].size(), 3u);
  ASSERT_EQ(trace.ranks[1].size(), 2u);
  EXPECT_EQ(trace.ranks[0][1].op, tr::TiOp::kCompute);
  EXPECT_EQ(trace.ranks[0][1].value, 5e6);
}

// ---------------------------------------------------------------------------
// Capture -> replay equivalence
// ---------------------------------------------------------------------------

TEST(TraceReplay, EpReplayReproducesOnlineTime) {
  TempDir dir;
  auto platform = test_cluster(8);
  auto config = fast_config();
  smpi::apps::EpParams params;
  params.log2_pairs = 14;
  const double online =
      capture_run(platform, config, 8, smpi::apps::make_ep_app(params), dir.str());
  ASSERT_GT(online, 0);

  const auto result = tr::replay_trace(platform, config, dir.str());
  EXPECT_EQ(result.ranks, 8);
  EXPECT_GT(result.records, 0);
  EXPECT_NEAR(result.simulated_time, online, 1e-9 * online);
}

TEST(TraceReplay, EpWithFoldedSamplingReplaysExactly) {
  TempDir dir;
  auto platform = test_cluster(8);
  auto config = fast_config();
  smpi::apps::EpParams params;
  params.log2_pairs = 14;
  params.sampling_ratio = 0.25;  // most bursts folded to the measured mean
  const double online =
      capture_run(platform, config, 8, smpi::apps::make_ep_app(params), dir.str());
  const auto result = tr::replay_trace(platform, config, dir.str());
  EXPECT_NEAR(result.simulated_time, online, 1e-9 * online);
}

TEST(TraceReplay, DtReplayReproducesOnlineTime) {
  TempDir dir;
  smpi::apps::DtParams params;
  params.cls = smpi::apps::DtClass::kS;
  params.graph = smpi::apps::DtGraph::kWhiteHole;
  const int np = smpi::apps::dt_process_count(params.graph, params.cls);
  auto platform = test_cluster(np);
  auto config = fast_config();
  const double online =
      capture_run(platform, config, np, smpi::apps::make_dt_app(params), dir.str());
  ASSERT_GT(online, 0);

  const auto result = tr::replay_trace(platform, config, dir.str());
  EXPECT_EQ(result.ranks, np);
  EXPECT_NEAR(result.simulated_time, online, 1e-9 * online);
}

TEST(TraceReplay, CollectiveMixReplaysExactly) {
  TempDir dir;
  auto platform = test_cluster(7);  // non-power-of-two exercises other paths
  auto config = fast_config();
  auto app = [](int, char**) {
    MPI_Init(nullptr, nullptr);
    const int rank = my_rank();
    const int size = world_size();
    std::vector<double> buf(2048, rank);
    std::vector<double> out(2048 * static_cast<std::size_t>(size));
    MPI_Bcast(buf.data(), 2048, MPI_DOUBLE, 0, MPI_COMM_WORLD);
    MPI_Allreduce(buf.data(), buf.data() + 1024, 1024, MPI_DOUBLE, MPI_SUM, MPI_COMM_WORLD);
    MPI_Barrier(MPI_COMM_WORLD);
    MPI_Gather(buf.data(), 64, MPI_DOUBLE, out.data(), 64, MPI_DOUBLE, size - 1,
               MPI_COMM_WORLD);
    MPI_Alltoall(out.data(), 16, MPI_DOUBLE, out.data() + 1024, 16, MPI_DOUBLE, MPI_COMM_WORLD);
    double prefix = 0;
    MPI_Scan(buf.data(), &prefix, 1, MPI_DOUBLE, MPI_SUM, MPI_COMM_WORLD);
    std::vector<int> counts(static_cast<std::size_t>(size), 4);
    std::vector<double> slice(4);
    MPI_Reduce_scatter(out.data(), slice.data(), counts.data(), MPI_DOUBLE, MPI_SUM,
                       MPI_COMM_WORLD);
    // Point-to-point ring with nonblocking requests.
    std::vector<MPI_Request> reqs(2);
    MPI_Isend(buf.data(), 256, MPI_DOUBLE, (rank + 1) % size, 9, MPI_COMM_WORLD, &reqs[0]);
    MPI_Irecv(out.data(), 256, MPI_DOUBLE, (rank - 1 + size) % size, 9, MPI_COMM_WORLD,
              &reqs[1]);
    MPI_Waitall(2, reqs.data(), MPI_STATUSES_IGNORE);
    smpi_execute_flops(1e6);
    MPI_Finalize();
  };
  const double online = capture_run(platform, config, 7, app, dir.str());
  ASSERT_GT(online, 0);
  const auto result = tr::replay_trace(platform, config, dir.str());
  EXPECT_NEAR(result.simulated_time, online, 1e-9 * online);
}

// Covers the replay arms CollectiveMixReplaysExactly does not: reduce,
// scatter, the v-variants (including the nullptr non-root argument paths),
// sendrecv, probe, and request-free.
TEST(TraceReplay, VariantMixReplaysExactly) {
  TempDir dir;
  auto platform = test_cluster(5);
  auto config = fast_config();
  auto app = [](int, char**) {
    MPI_Init(nullptr, nullptr);
    const int rank = my_rank();
    const int size = world_size();
    const int root = size - 1;
    std::vector<int> mine(64, rank);
    std::vector<int> all(64 * static_cast<std::size_t>(size));
    std::vector<int> counts(static_cast<std::size_t>(size));
    std::vector<int> displs(static_cast<std::size_t>(size));
    int offset = 0;
    for (int r = 0; r < size; ++r) {
      counts[static_cast<std::size_t>(r)] = 8 * (r + 1);
      displs[static_cast<std::size_t>(r)] = offset;
      offset += counts[static_cast<std::size_t>(r)];
    }
    std::vector<int> uneven(static_cast<std::size_t>(offset));

    std::vector<int> reduced(64);
    MPI_Reduce(mine.data(), reduced.data(), 64, MPI_INT, MPI_SUM, root, MPI_COMM_WORLD);
    MPI_Scatter(rank == root ? all.data() : nullptr, 64, MPI_INT, mine.data(), 64, MPI_INT,
                root, MPI_COMM_WORLD);
    MPI_Gatherv(mine.data(), counts[static_cast<std::size_t>(rank)], MPI_INT,
                rank == root ? uneven.data() : nullptr,
                rank == root ? counts.data() : nullptr, rank == root ? displs.data() : nullptr,
                MPI_INT, root, MPI_COMM_WORLD);
    MPI_Scatterv(rank == root ? uneven.data() : nullptr,
                 rank == root ? counts.data() : nullptr,
                 rank == root ? displs.data() : nullptr, MPI_INT, mine.data(),
                 counts[static_cast<std::size_t>(rank)], MPI_INT, root, MPI_COMM_WORLD);
    MPI_Allgatherv(mine.data(), counts[static_cast<std::size_t>(rank)], MPI_INT, uneven.data(),
                   counts.data(), displs.data(), MPI_INT, MPI_COMM_WORLD);
    std::vector<int> acounts(static_cast<std::size_t>(size), 4);
    std::vector<int> adispls(static_cast<std::size_t>(size));
    for (int r = 0; r < size; ++r) adispls[static_cast<std::size_t>(r)] = 4 * r;
    MPI_Alltoallv(all.data(), acounts.data(), adispls.data(), MPI_INT, uneven.data(),
                  acounts.data(), adispls.data(), MPI_INT, MPI_COMM_WORLD);

    // Sendrecv ring, a probed message, and an abandoned request.
    MPI_Sendrecv(mine.data(), 32, MPI_INT, (rank + 1) % size, 5, all.data(), 32, MPI_INT,
                 (rank - 1 + size) % size, 5, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
    if (rank == 0) {
      MPI_Send(mine.data(), 16, MPI_INT, 1, 6, MPI_COMM_WORLD);
    } else if (rank == 1) {
      MPI_Status status;
      MPI_Probe(0, 6, MPI_COMM_WORLD, &status);
      MPI_Recv(all.data(), 16, MPI_INT, 0, 6, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      MPI_Request orphan;
      MPI_Irecv(all.data(), 8, MPI_INT, MPI_ANY_SOURCE, 99, MPI_COMM_WORLD, &orphan);
      MPI_Request_free(&orphan);
    }
    MPI_Finalize();
  };
  const double online = capture_run(platform, config, 5, app, dir.str());
  ASSERT_GT(online, 0);
  const auto result = tr::replay_trace(platform, config, dir.str());
  EXPECT_NEAR(result.simulated_time, online, 1e-9 * online);
}

TEST(TraceReplay, ReplayOnSlowerPlatformTakesLonger) {
  TempDir dir;
  auto platform = test_cluster(8);
  auto config = fast_config();
  auto app = [](int, char**) {
    MPI_Init(nullptr, nullptr);
    std::vector<char> buf(1 << 20);
    MPI_Bcast(buf.data(), 1 << 20, MPI_CHAR, 0, MPI_COMM_WORLD);
    MPI_Finalize();
  };
  const double online = capture_run(platform, config, 8, app, dir.str());

  // Same trace, 10x slower links: the what-if axis the subsystem exists for.
  smpi::platform::FlatClusterParams slow;
  slow.nodes = 8;
  slow.link_bandwidth_bps = 1e7;
  slow.link_latency_s = 1e-4;
  slow.speed_flops = 1e9;
  auto slow_platform = smpi::platform::build_flat_cluster(slow);
  const auto slow_result = tr::replay_trace(slow_platform, config, dir.str());
  EXPECT_GT(slow_result.simulated_time, online * 2);
}

TEST(TraceReplay, CaptureRejectsCollectivesOnDerivedComms) {
  TempDir dir;
  auto platform = test_cluster(4);
  auto config = fast_config();
  auto app = [](int, char**) {
    MPI_Init(nullptr, nullptr);
    MPI_Comm half;
    MPI_Comm_split(MPI_COMM_WORLD, my_rank() % 2, 0, &half);
    int v = 1, s = 0;
    MPI_Allreduce(&v, &s, 1, MPI_INT, MPI_SUM, half);  // must throw under capture
    MPI_Finalize();
  };
  EXPECT_THROW(capture_run(platform, config, 4, app, dir.str()), smpi::util::ContractError);
}

// ---------------------------------------------------------------------------
// Payload-free mode
// ---------------------------------------------------------------------------

TEST(PayloadFree, TimingMatchesNormalModeWithoutTouchingPayload) {
  auto run = [](bool payload_free) {
    auto config = fast_config();
    config.payload_free = payload_free;
    return run_mpi(4, [] {
      const int rank = my_rank();
      std::vector<char> buf(1 << 16, static_cast<char>(rank));
      if (rank == 0) {
        MPI_Send(buf.data(), 1 << 16, MPI_CHAR, 1, 0, MPI_COMM_WORLD);
      } else if (rank == 1) {
        MPI_Status status;
        MPI_Recv(buf.data(), 1 << 16, MPI_CHAR, 0, 0, MPI_COMM_WORLD, &status);
        int got = 0;
        MPI_Get_count(&status, MPI_CHAR, &got);
        EXPECT_EQ(got, 1 << 16);  // statuses still track sizes
      }
      std::vector<char> all(4);
      char mine = static_cast<char>('a' + rank);
      MPI_Allgather(&mine, 1, MPI_CHAR, all.data(), 1, MPI_CHAR, MPI_COMM_WORLD);
    }, config);
  };
  const double normal = run(false);
  const double payload_free = run(true);
  EXPECT_NEAR(payload_free, normal, 1e-12 * normal);
}

TEST(PayloadFree, ReceiverBufferIsNeverWritten) {
  auto config = fast_config();
  config.payload_free = true;
  run_mpi(2, [] {
    const int rank = my_rank();
    std::vector<char> buf(1024, rank == 0 ? 'S' : 'R');
    if (rank == 0) {
      MPI_Send(buf.data(), 1024, MPI_CHAR, 1, 0, MPI_COMM_WORLD);
    } else {
      MPI_Recv(buf.data(), 1024, MPI_CHAR, 0, 0, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      for (char c : buf) ASSERT_EQ(c, 'R');  // payload never materialized
    }
  }, config);
}

// ---------------------------------------------------------------------------
// Paje timeline
// ---------------------------------------------------------------------------

TEST(Paje, TimelineHasBalancedStatesAndContainers) {
  TempDir dir;
  const std::string path = (dir.path / "out.paje").string();
  auto platform = test_cluster(4);
  auto config = fast_config();
  {
    smpi::core::SmpiWorld world(platform, config);
    tr::PajeWriter paje(path);
    paje.begin(4);
    tr::install_capture(nullptr, &paje);
    world.run(4, [](int, char**) {
      MPI_Init(nullptr, nullptr);
      std::vector<char> buf(4096);
      MPI_Bcast(buf.data(), 4096, MPI_CHAR, 0, MPI_COMM_WORLD);
      smpi_execute_flops(1e6);
      MPI_Finalize();
    });
    tr::clear_capture();
    paje.finish(world.simulated_time());
    EXPECT_GT(paje.events(), 0u);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int pushes = 0, pops = 0, creates = 0, destroys = 0;
  bool header = false;
  while (std::getline(in, line)) {
    if (line.rfind("%EventDef PajeDefineContainerType", 0) == 0) header = true;
    if (line.rfind("4 ", 0) == 0) ++pushes;
    if (line.rfind("5 ", 0) == 0) ++pops;
    if (line.rfind("2 ", 0) == 0) ++creates;
    if (line.rfind("3 ", 0) == 0) ++destroys;
  }
  EXPECT_TRUE(header);
  EXPECT_EQ(pushes, pops);         // every MPI call opens and closes a state
  EXPECT_EQ(creates, destroys);    // sim + one container per rank
  EXPECT_EQ(creates, 5);
  // init, bcast, computing, finalize per rank.
  EXPECT_EQ(pushes, 4 * 4);
}

// Replay drives the same Paje hooks through the replayed MPI calls.
TEST(Paje, ReplayEmitsTimeline) {
  TempDir dir;
  auto platform = test_cluster(4);
  auto config = fast_config();
  auto app = [](int, char**) {
    MPI_Init(nullptr, nullptr);
    std::vector<char> buf(1024);
    MPI_Bcast(buf.data(), 1024, MPI_CHAR, 0, MPI_COMM_WORLD);
    MPI_Finalize();
  };
  capture_run(platform, config, 4, app, dir.str());

  const std::string path = (dir.path / "replay.paje").string();
  tr::PajeWriter paje(path);
  tr::ReplayOptions options;
  options.paje = &paje;
  const auto result = tr::replay_trace(platform, config, dir.str(), options);
  EXPECT_GT(result.simulated_time, 0);
  EXPECT_GT(paje.events(), 0u);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
}

// ---------------------------------------------------------------------------
// Up-front trace validation (missing / truncated rank files)
// ---------------------------------------------------------------------------

namespace {

// A valid 2-rank trace to corrupt: init, compute, finalize per rank.
void write_valid_trace(const std::string& dir) {
  tr::TiWriter writer(dir, 2, "unit");
  tr::TiRecord r;
  r.op = tr::TiOp::kInit;
  writer.append(0, r);
  writer.append(1, r);
  r.op = tr::TiOp::kCompute;
  r.value = 1e6;
  writer.append(0, r);
  writer.append(1, r);
  r.op = tr::TiOp::kFinalize;
  writer.append(0, r);
  writer.append(1, r);
  writer.finish();
}

std::string load_error(const std::string& dir) {
  try {
    tr::load_ti_trace(dir);
  } catch (const smpi::util::ContractError& e) {
    return e.what();
  }
  return "";
}

}  // namespace

TEST(TraceValidation, MissingRankFileNamesRankAndPath) {
  TempDir dir;
  write_valid_trace(dir.str());
  fs::remove(dir.path / "rank_1.ti");
  const std::string error = load_error(dir.str());
  EXPECT_NE(error.find("rank 1"), std::string::npos) << error;
  EXPECT_NE(error.find("rank_1.ti"), std::string::npos) << error;
  EXPECT_NE(error.find("2 ranks"), std::string::npos) << error;
}

TEST(TraceValidation, TruncatedRankFileNamesLastRecordAndLine) {
  TempDir dir;
  write_valid_trace(dir.str());
  // Drop the trailing finalize from rank 0 — the shape an interrupted
  // capture leaves behind. Replaying it would deadlock; loading must not.
  {
    std::ofstream out(dir.path / "rank_0.ti", std::ios::trunc);
    tr::TiRecord r;
    r.op = tr::TiOp::kInit;
    out << tr::serialize_record(r) << "\n";
    r.op = tr::TiOp::kCompute;
    r.value = 1e6;
    out << tr::serialize_record(r) << "\n";
  }
  const std::string error = load_error(dir.str());
  EXPECT_NE(error.find("truncated"), std::string::npos) << error;
  EXPECT_NE(error.find("rank_0.ti"), std::string::npos) << error;
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  EXPECT_NE(error.find("compute"), std::string::npos) << error;
}

TEST(TraceValidation, LenientLoadAcceptsTruncatedTraces) {
  TempDir dir;
  write_valid_trace(dir.str());
  {
    std::ofstream out(dir.path / "rank_0.ti", std::ios::trunc);
    tr::TiRecord r;
    r.op = tr::TiOp::kInit;
    out << tr::serialize_record(r) << "\n";
  }
  // ti_inspect's diagnostic mode: load whatever is there.
  const tr::TiTrace trace = tr::load_ti_trace(dir.str(), /*validate=*/false);
  EXPECT_EQ(trace.ranks[0].size(), 1u);
  EXPECT_EQ(trace.ranks[1].size(), 3u);
}

TEST(TraceValidation, EmptyRankFileIsRejected) {
  TempDir dir;
  write_valid_trace(dir.str());
  { std::ofstream out(dir.path / "rank_0.ti", std::ios::trunc); }
  const std::string error = load_error(dir.str());
  EXPECT_NE(error.find("empty"), std::string::npos) << error;
  EXPECT_NE(error.find("rank 0"), std::string::npos) << error;
}

TEST(TraceValidation, TraceNotStartingWithInitIsRejected) {
  TempDir dir;
  write_valid_trace(dir.str());
  {
    std::ofstream out(dir.path / "rank_1.ti", std::ios::trunc);
    tr::TiRecord r;
    r.op = tr::TiOp::kCompute;
    r.value = 1e6;
    out << tr::serialize_record(r) << "\n";
    r.op = tr::TiOp::kFinalize;
    out << tr::serialize_record(r) << "\n";
  }
  const std::string error = load_error(dir.str());
  EXPECT_NE(error.find("does not start with init"), std::string::npos) << error;
  EXPECT_NE(error.find("rank_1.ti"), std::string::npos) << error;
}
