// p2p hot-path overhaul tests: free-list pooling, zero-copy eager sends,
// and the equivalence guarantees both must uphold.
//
// The pools and the copy elision are pure host-side optimizations — every
// test here pins that down: simulated times must be bit-identical with the
// optimizations on or off, payloads must arrive intact under zero-copy
// (including the degrade-to-snapshot path), and the steady-state collective
// loop must perform literally zero heap allocations (counted by overriding
// global operator new for this test binary).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <new>
#include <string>
#include <vector>

#include "smpi/coll.h"
#include "smpi_test_util.hpp"
#include "trace/capture.hpp"
#include "trace/replay.hpp"
#include "trace/writer.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter (this binary only; each test file is its own
// executable). Counts every operator new; deletes are pass-through.
// ---------------------------------------------------------------------------

namespace {
std::uint64_t g_alloc_count = 0;

void* counted_alloc(std::size_t size) {
  ++g_alloc_count;
  void* p = std::malloc(size ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

namespace sc = smpi::core;
namespace tr = smpi::trace;
using namespace smpi_test;

sc::SmpiConfig arm_config(bool optimized) {
  sc::SmpiConfig config = fast_config();
  config.engine.pool_objects = optimized;
  config.zero_copy_eager = optimized;
  return config;
}

// ---------------------------------------------------------------------------
// Equivalence: pooling + zero-copy must not change simulated time at all.
// ---------------------------------------------------------------------------

TEST(P2pPool, BcastSimTimeBitIdenticalWithAndWithoutOptimizations) {
  auto platform = test_cluster(8);
  auto body = [] {
    std::vector<char> buffer(64 * 1024, 'b');
    for (int r = 0; r < 3; ++r) {
      smpi::coll::bcast_scatter_ring_allgather(buffer.data(),
                                               static_cast<int>(buffer.size()), MPI_CHAR, 0,
                                               MPI_COMM_WORLD);
    }
  };
  const double optimized = run_mpi_on(platform, 8, body, arm_config(true));
  const double reference = run_mpi_on(platform, 8, body, arm_config(false));
  EXPECT_EQ(optimized, reference);  // bit-identical, not "close"
  EXPECT_GT(optimized, 0);
}

TEST(P2pPool, AlltoallSimTimeBitIdenticalWithAndWithoutOptimizations) {
  auto platform = test_cluster(8);
  auto body = [] {
    const std::size_t block = 8 * 1024;
    std::vector<char> send(block * 8, 'y');
    std::vector<char> recv(block * 8);
    smpi::coll::alltoall_pairwise(send.data(), static_cast<int>(block), MPI_CHAR, recv.data(),
                                  static_cast<int>(block), MPI_CHAR, MPI_COMM_WORLD);
  };
  const double optimized = run_mpi_on(platform, 8, body, arm_config(true));
  const double reference = run_mpi_on(platform, 8, body, arm_config(false));
  EXPECT_EQ(optimized, reference);
  EXPECT_GT(optimized, 0);
}

// ---------------------------------------------------------------------------
// Payload correctness under zero-copy: every byte must land, including
// unaligned per-rank patterns an elided snapshot could smear.
// ---------------------------------------------------------------------------

TEST(P2pPool, AlltoallPayloadsArriveIntactUnderZeroCopy) {
  auto platform = test_cluster(8);
  static int failures;
  failures = 0;
  run_mpi_on(platform, 8, [] {
    const int size = world_size();
    const int rank = my_rank();
    const std::size_t block = 1024;
    std::vector<unsigned char> send(block * static_cast<std::size_t>(size));
    std::vector<unsigned char> recv(block * static_cast<std::size_t>(size), 0);
    for (int peer = 0; peer < size; ++peer) {
      for (std::size_t i = 0; i < block; ++i) {
        send[static_cast<std::size_t>(peer) * block + i] =
            static_cast<unsigned char>(rank * 31 + peer * 7 + static_cast<int>(i));
      }
    }
    smpi::coll::alltoall_pairwise(send.data(), static_cast<int>(block), MPI_CHAR, recv.data(),
                                  static_cast<int>(block), MPI_CHAR, MPI_COMM_WORLD);
    for (int peer = 0; peer < size; ++peer) {
      for (std::size_t i = 0; i < block; ++i) {
        const auto expected =
            static_cast<unsigned char>(peer * 31 + rank * 7 + static_cast<int>(i));
        if (recv[static_cast<std::size_t>(peer) * block + i] != expected) ++failures;
      }
    }
  }, arm_config(true));
  EXPECT_EQ(failures, 0);
}

// ---------------------------------------------------------------------------
// Degrade-to-snapshot: a receiver that enters the collective after the
// sender already left its stable scope must still get the original bytes —
// the scope exit snapshots every unmatched zero-copy envelope.
// ---------------------------------------------------------------------------

TEST(P2pPool, LateReceiverGetsFlushedSnapshotBytes) {
  auto platform = test_cluster(2);
  static int failures;
  failures = 0;
  sc::SmpiConfig config = arm_config(true);
  smpi::core::SmpiWorld world(platform, config);
  world.run(2, [](int, char**) {
    MPI_Init(nullptr, nullptr);
    const int rank = my_rank();
    std::vector<char> buffer(4 * 1024);
    if (rank == 0) {
      // Root broadcasts (its eager sends complete inside the call), then
      // immediately overwrites the source buffer. Rank 1 has not posted its
      // recv yet — the scope-exit flush must have snapshotted the payload.
      std::fill(buffer.begin(), buffer.end(), 'A');
      smpi::coll::bcast_binomial(buffer.data(), static_cast<int>(buffer.size()), MPI_CHAR, 0,
                                 MPI_COMM_WORLD);
      std::fill(buffer.begin(), buffer.end(), 'X');  // would corrupt a live zc ref
      char token = 't';
      MPI_Send(&token, 1, MPI_CHAR, 1, 9, MPI_COMM_WORLD);
    } else {
      // Delay entry: wait for a token rank 0 sends only after its bcast
      // returned (and after it clobbered the source buffer).
      char token = 0;
      MPI_Recv(&token, 1, MPI_CHAR, 0, 9, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      smpi::coll::bcast_binomial(buffer.data(), static_cast<int>(buffer.size()), MPI_CHAR, 0,
                                 MPI_COMM_WORLD);
      for (char c : buffer) {
        if (c != 'A') ++failures;
      }
    }
    MPI_Finalize();
  });
  EXPECT_EQ(failures, 0);
  const auto counters = world.p2p_counters();
  EXPECT_GE(counters.eager_flush_snapshots, 1u);
}

// ---------------------------------------------------------------------------
// Counters: a steady collective loop must show elided copies and pool reuse.
// ---------------------------------------------------------------------------

TEST(P2pPool, CountersRecordElisionAndPoolReuse) {
  auto platform = test_cluster(8);
  smpi::core::SmpiWorld world(platform, arm_config(true));
  world.run(8, [](int, char**) {
    MPI_Init(nullptr, nullptr);
    std::vector<char> buffer(64 * 1024, 'c');
    for (int r = 0; r < 4; ++r) {
      smpi::coll::bcast_scatter_ring_allgather(buffer.data(),
                                               static_cast<int>(buffer.size()), MPI_CHAR, 0,
                                               MPI_COMM_WORLD);
    }
    MPI_Finalize();
  });
  const auto counters = world.p2p_counters();
  EXPECT_GT(counters.eager_copy_elided, 0u);
  EXPECT_GT(counters.bytes_not_copied, 0u);
  EXPECT_GT(counters.pool_hits, 0u);
  // Recycling must dominate fresh allocations once warm.
  EXPECT_GT(counters.pool_hits, counters.pool_misses);
}

// ---------------------------------------------------------------------------
// The headline invariant: once warm, the collective hot path performs ZERO
// heap allocations — everything is recycled through the engine pools, the
// request free lists, the flow slot registry, and the indexed calendar.
// ---------------------------------------------------------------------------

TEST(P2pPool, SteadyStateCollectiveLoopAllocatesNothing) {
  auto platform = test_cluster(8);
  static std::uint64_t steady_allocs;
  steady_allocs = 0;
  run_mpi_on(platform, 8, [] {
    std::vector<char> buffer(32 * 1024, 's');
    auto bcast = [&buffer] {
      smpi::coll::bcast_scatter_ring_allgather(buffer.data(),
                                               static_cast<int>(buffer.size()), MPI_CHAR, 0,
                                               MPI_COMM_WORLD);
    };
    for (int r = 0; r < 8; ++r) bcast();  // warm: pools, queues, heaps, slots
    MPI_Barrier(MPI_COMM_WORLD);
    const std::uint64_t before = g_alloc_count;
    for (int r = 0; r < 8; ++r) bcast();
    MPI_Barrier(MPI_COMM_WORLD);
    if (my_rank() == 0) steady_allocs = g_alloc_count - before;
  }, arm_config(true));
  EXPECT_EQ(steady_allocs, 0u);
}

// ---------------------------------------------------------------------------
// Replay canary: capture a trace, replay it — the replayed simulated time
// must reproduce the capture run to 1e-9, pooled or not, and both replay
// arms must agree bit-exactly.
// ---------------------------------------------------------------------------

TEST(P2pPool, ReplayReproducesCaptureAcrossPoolingModes) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / ("smpi_p2p_pool_trace_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);

  auto platform = test_cluster(8);
  const sc::SmpiConfig config = arm_config(true);
  double captured = 0;
  {
    smpi::core::SmpiWorld world(platform, config);
    tr::TiWriter writer(dir.string(), 8, "p2p_pool");
    tr::install_capture(&writer, nullptr);
    world.run(8, [](int, char**) {
      MPI_Init(nullptr, nullptr);
      std::vector<char> buffer(64 * 1024, 'r');
      MPI_Bcast(buffer.data(), static_cast<int>(buffer.size()), MPI_CHAR, 0, MPI_COMM_WORLD);
      MPI_Barrier(MPI_COMM_WORLD);
      MPI_Finalize();
    });
    tr::clear_capture();
    writer.finish();
    captured = world.simulated_time();
  }

  const auto pooled = tr::replay_trace(platform, arm_config(true), dir.string());
  const auto reference = tr::replay_trace(platform, arm_config(false), dir.string());
  EXPECT_NEAR(pooled.simulated_time, captured, 1e-9);
  EXPECT_EQ(pooled.simulated_time, reference.simulated_time);

  std::error_code ec;
  fs::remove_all(dir, ec);
}

}  // namespace
