#include <gtest/gtest.h>

#include <vector>

#include "smpi_test_util.hpp"

using namespace smpi_test;

TEST(SmpiComm, WorldRankAndSize) {
  run_mpi(5, [] {
    int rank = -1, size = -1;
    ASSERT_EQ(MPI_Comm_rank(MPI_COMM_WORLD, &rank), MPI_SUCCESS);
    ASSERT_EQ(MPI_Comm_size(MPI_COMM_WORLD, &size), MPI_SUCCESS);
    EXPECT_EQ(size, 5);
    EXPECT_GE(rank, 0);
    EXPECT_LT(rank, 5);
  });
}

TEST(SmpiComm, DupIsCongruentButDistinct) {
  run_mpi(4, [] {
    MPI_Comm dup = MPI_COMM_NULL;
    ASSERT_EQ(MPI_Comm_dup(MPI_COMM_WORLD, &dup), MPI_SUCCESS);
    ASSERT_NE(dup, MPI_COMM_NULL);
    int result = -1;
    MPI_Comm_compare(MPI_COMM_WORLD, dup, &result);
    EXPECT_EQ(result, MPI_CONGRUENT);
    MPI_Comm_compare(dup, dup, &result);
    EXPECT_EQ(result, MPI_IDENT);
    // All ranks got the *same* communicator object.
    int rank = my_rank();
    int other_id[1] = {0};
    if (rank == 0) {
      int probe = 1;
      MPI_Send(&probe, 1, MPI_INT, 1, 0, dup);
    } else if (rank == 1) {
      MPI_Recv(other_id, 1, MPI_INT, 0, 0, dup, MPI_STATUS_IGNORE);
      EXPECT_EQ(other_id[0], 1);
    }
    MPI_Comm_free(&dup);
    EXPECT_EQ(dup, MPI_COMM_NULL);
  });
}

TEST(SmpiComm, MessagesDoNotCrossCommunicators) {
  run_mpi(2, [] {
    MPI_Comm dup = MPI_COMM_NULL;
    MPI_Comm_dup(MPI_COMM_WORLD, &dup);
    if (my_rank() == 0) {
      const int a = 1, b = 2;
      MPI_Send(&a, 1, MPI_INT, 1, 7, MPI_COMM_WORLD);
      MPI_Send(&b, 1, MPI_INT, 1, 7, dup);
    } else {
      int got = -1;
      // Receive on dup first: must get the dup message even though the world
      // message was sent earlier with the same tag.
      MPI_Recv(&got, 1, MPI_INT, 0, 7, dup, MPI_STATUS_IGNORE);
      EXPECT_EQ(got, 2);
      MPI_Recv(&got, 1, MPI_INT, 0, 7, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      EXPECT_EQ(got, 1);
    }
  });
}

TEST(SmpiComm, CommCreateSubsetRanks) {
  run_mpi(6, [] {
    const int rank = my_rank();
    MPI_Group world_group = MPI_GROUP_NULL;
    MPI_Comm_group(MPI_COMM_WORLD, &world_group);
    // Even ranks only.
    const int evens[] = {0, 2, 4};
    MPI_Group even_group = MPI_GROUP_NULL;
    ASSERT_EQ(MPI_Group_incl(world_group, 3, evens, &even_group), MPI_SUCCESS);
    MPI_Comm even_comm = MPI_COMM_NULL;
    ASSERT_EQ(MPI_Comm_create(MPI_COMM_WORLD, even_group, &even_comm), MPI_SUCCESS);
    if (rank % 2 == 0) {
      ASSERT_NE(even_comm, MPI_COMM_NULL);
      int sub_rank = -1, sub_size = -1;
      MPI_Comm_rank(even_comm, &sub_rank);
      MPI_Comm_size(even_comm, &sub_size);
      EXPECT_EQ(sub_size, 3);
      EXPECT_EQ(sub_rank, rank / 2);
      // Collectives work on the subset.
      int value = rank;
      int sum = -1;
      MPI_Allreduce(&value, &sum, 1, MPI_INT, MPI_SUM, even_comm);
      EXPECT_EQ(sum, 0 + 2 + 4);
    } else {
      EXPECT_EQ(even_comm, MPI_COMM_NULL);
    }
  });
}

TEST(SmpiComm, GroupSetOperations) {
  run_mpi(6, [] {
    MPI_Group world = MPI_GROUP_NULL;
    MPI_Comm_group(MPI_COMM_WORLD, &world);
    const int lows[] = {0, 1, 2, 3};
    const int highs[] = {2, 3, 4, 5};
    MPI_Group low = MPI_GROUP_NULL, high = MPI_GROUP_NULL;
    MPI_Group_incl(world, 4, lows, &low);
    MPI_Group_incl(world, 4, highs, &high);

    MPI_Group u = MPI_GROUP_NULL, i = MPI_GROUP_NULL, d = MPI_GROUP_NULL;
    MPI_Group_union(low, high, &u);
    MPI_Group_intersection(low, high, &i);
    MPI_Group_difference(low, high, &d);
    int n = -1;
    MPI_Group_size(u, &n);
    EXPECT_EQ(n, 6);
    MPI_Group_size(i, &n);
    EXPECT_EQ(n, 2);
    MPI_Group_size(d, &n);
    EXPECT_EQ(n, 2);

    // Translate ranks between groups.
    int in_low[] = {0, 2, 3};
    int in_world[3] = {-5, -5, -5};
    MPI_Group_translate_ranks(low, 3, in_low, world, in_world);
    EXPECT_EQ(in_world[0], 0);
    EXPECT_EQ(in_world[1], 2);
    EXPECT_EQ(in_world[2], 3);
    int in_high[3];
    MPI_Group_translate_ranks(low, 3, in_low, high, in_high);
    EXPECT_EQ(in_high[0], MPI_UNDEFINED);
    EXPECT_EQ(in_high[1], 0);
    EXPECT_EQ(in_high[2], 1);

    int cmp = -1;
    MPI_Group_compare(low, low, &cmp);
    EXPECT_EQ(cmp, MPI_IDENT);
    const int reversed[] = {3, 2, 1, 0};
    MPI_Group rev = MPI_GROUP_NULL;
    MPI_Group_incl(world, 4, reversed, &rev);
    MPI_Group_compare(low, rev, &cmp);
    EXPECT_EQ(cmp, MPI_SIMILAR);
    MPI_Group_compare(low, high, &cmp);
    EXPECT_EQ(cmp, MPI_UNEQUAL);
  });
}

TEST(SmpiComm, GroupExclAndEmpty) {
  run_mpi(4, [] {
    MPI_Group world = MPI_GROUP_NULL;
    MPI_Comm_group(MPI_COMM_WORLD, &world);
    const int excluded[] = {1, 3};
    MPI_Group rest = MPI_GROUP_NULL;
    MPI_Group_excl(world, 2, excluded, &rest);
    int n = -1;
    MPI_Group_size(rest, &n);
    EXPECT_EQ(n, 2);
    int my = -1;
    MPI_Group_rank(rest, &my);
    if (my_rank() == 0) {
      EXPECT_EQ(my, 0);
    }
    if (my_rank() == 1) {
      EXPECT_EQ(my, MPI_UNDEFINED);
    }
    MPI_Group_size(MPI_GROUP_EMPTY, &n);
    EXPECT_EQ(n, 0);
  });
}

TEST(SmpiComm, CannotFreeWorld) {
  run_mpi(2, [] {
    MPI_Comm world = MPI_COMM_WORLD;
    EXPECT_EQ(MPI_Comm_free(&world), MPI_ERR_COMM);
  });
}

TEST(SmpiComm, CollectivesOnDupAndSubComms) {
  run_mpi(8, [] {
    const int rank = my_rank();
    MPI_Comm dup = MPI_COMM_NULL;
    MPI_Comm_dup(MPI_COMM_WORLD, &dup);
    int v = rank;
    int sum = -1;
    MPI_Allreduce(&v, &sum, 1, MPI_INT, MPI_SUM, dup);
    EXPECT_EQ(sum, 28);
    // Nested: create a sub-communicator from the dup.
    MPI_Group g = MPI_GROUP_NULL;
    MPI_Comm_group(dup, &g);
    const int firsts[] = {0, 1, 2};
    MPI_Group g3 = MPI_GROUP_NULL;
    MPI_Group_incl(g, 3, firsts, &g3);
    MPI_Comm c3 = MPI_COMM_NULL;
    MPI_Comm_create(dup, g3, &c3);
    if (rank < 3) {
      int b = rank == 1 ? 99 : -1;
      MPI_Bcast(&b, 1, MPI_INT, 1, c3);
      EXPECT_EQ(b, 99);
    }
  });
}

TEST(SmpiWtime, AdvancesWithSimulatedWork) {
  run_mpi(2, [] {
    const double t0 = MPI_Wtime();
    smpi_sleep(0.25);
    const double t1 = MPI_Wtime();
    EXPECT_NEAR(t1 - t0, 0.25, 1e-12);
    EXPECT_GT(MPI_Wtick(), 0);
  });
}
