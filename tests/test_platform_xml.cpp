#include "platform/platform_xml.hpp"

#include <gtest/gtest.h>

#include "platform/xml.hpp"
#include "util/check.hpp"

namespace sp = smpi::platform;

TEST(Xml, ParsesElementsAttributesAndText) {
  auto root = sp::parse_xml(R"(<?xml version="1.0"?>
<!-- a comment -->
<root version="4">
  <child name="a" value='1'/>
  <child name="b">text &amp; more</child>
</root>)");
  EXPECT_EQ(root->name, "root");
  EXPECT_EQ(root->attribute("version"), "4");
  const auto children = root->children_named("child");
  ASSERT_EQ(children.size(), 2u);
  EXPECT_EQ(children[0]->attribute("name"), "a");
  EXPECT_EQ(children[1]->text, "text & more");
}

TEST(Xml, EntitiesDecode) {
  auto root = sp::parse_xml(R"(<r a="&lt;x&gt;&quot;&apos;"/>)");
  EXPECT_EQ(root->attribute("a"), "<x>\"'");
}

TEST(Xml, NestedElements) {
  auto root = sp::parse_xml("<a><b><c deep=\"yes\"/></b></a>");
  ASSERT_EQ(root->children.size(), 1u);
  ASSERT_EQ(root->children[0]->children.size(), 1u);
  EXPECT_EQ(root->children[0]->children[0]->attribute("deep"), "yes");
}

TEST(Xml, DoctypeAndProcessingInstructionsSkipped) {
  auto root = sp::parse_xml("<?xml version=\"1.0\"?><!DOCTYPE platform SYSTEM "
                            "\"http://example.org/simgrid.dtd\"><p/>");
  EXPECT_EQ(root->name, "p");
}

TEST(Xml, ErrorsCarryLineNumbers) {
  try {
    sp::parse_xml("<a>\n<b>\n</c>\n</a>");
    FAIL() << "expected XmlError";
  } catch (const sp::XmlError& e) {
    EXPECT_EQ(e.line(), 3);
  }
}

TEST(Xml, RejectsTrailingContent) { EXPECT_THROW(sp::parse_xml("<a/><b/>"), sp::XmlError); }

TEST(Xml, RejectsMissingAttributeOnAccess) {
  auto root = sp::parse_xml("<a/>");
  EXPECT_THROW(root->attribute("nope"), sp::XmlError);
  EXPECT_EQ(root->attribute_or("nope", "dflt"), "dflt");
}

TEST(Radical, ParsesRangesAndLists) {
  EXPECT_EQ(sp::parse_radical("0-3"), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(sp::parse_radical("5"), (std::vector<int>{5}));
  EXPECT_EQ(sp::parse_radical("0-1,4,7-8"), (std::vector<int>{0, 1, 4, 7, 8}));
  EXPECT_THROW(sp::parse_radical("5-2"), smpi::util::ContractError);
}

namespace {
constexpr const char* kPlatformDoc = R"(<?xml version="1.0"?>
<platform version="4">
  <host id="n0" speed="1Gf" cores="4"/>
  <host id="n1" speed="2Gf"/>
  <link id="l0" bandwidth="1Gbps" latency="50us"/>
  <link id="bb" bandwidth="10Gbps" latency="20us" sharing="FATPIPE"/>
  <route src="n0" dst="n1">
    <link_ctn id="l0"/>
    <link_ctn id="bb"/>
  </route>
</platform>)";
}  // namespace

TEST(PlatformXml, LoadsHostsLinksRoutes) {
  auto p = sp::load_platform_from_string(kPlatformDoc);
  EXPECT_EQ(p.host_count(), 2);
  EXPECT_EQ(p.link_count(), 2);
  EXPECT_DOUBLE_EQ(p.host(p.find_host("n0")).speed_flops, 1e9);
  EXPECT_EQ(p.host(p.find_host("n0")).cores, 4);
  EXPECT_EQ(p.host(p.find_host("n1")).cores, 1);  // default
  EXPECT_DOUBLE_EQ(p.link(p.find_link("l0")).bandwidth_bps, 125e6);
  EXPECT_EQ(p.link(p.find_link("bb")).sharing, sp::LinkSharing::kFatpipe);
  ASSERT_TRUE(p.has_route(0, 1));
  EXPECT_EQ(p.route(0, 1).size(), 2u);
  // symmetric by default, reversed order
  EXPECT_EQ(p.route(1, 0).front(), p.find_link("bb"));
}

TEST(PlatformXml, ClusterElementExpands) {
  auto p = sp::load_platform_from_string(R"(<platform version="4">
    <cluster id="c" prefix="node-" radical="0-7" speed="1Gf" cores="2"
             bw="1Gbps" lat="50us"/>
  </platform>)");
  EXPECT_EQ(p.host_count(), 8);
  EXPECT_NE(p.find_host("node-0"), -1);
  EXPECT_NE(p.find_host("node-7"), -1);
  EXPECT_TRUE(p.has_route(0, 7));
  EXPECT_EQ(p.route_hop_count(0, 7), 1);
}

TEST(PlatformXml, UnknownRouteEndpointFails) {
  EXPECT_THROW(sp::load_platform_from_string(R"(<platform version="4">
    <host id="n0" speed="1Gf"/>
    <link id="l0" bandwidth="1Gbps" latency="50us"/>
    <route src="n0" dst="ghost"><link_ctn id="l0"/></route>
  </platform>)"),
               sp::XmlError);
}

TEST(PlatformXml, RouteWithoutLinksFails) {
  EXPECT_THROW(sp::load_platform_from_string(R"(<platform version="4">
    <host id="n0" speed="1Gf"/>
    <host id="n1" speed="1Gf"/>
    <route src="n0" dst="n1"/>
  </platform>)"),
               sp::XmlError);
}

TEST(PlatformXml, UnsupportedElementFails) {
  EXPECT_THROW(sp::load_platform_from_string("<platform><flux capacitor=\"1\"/></platform>"),
               sp::XmlError);
}

TEST(PlatformXml, NonPlatformRootFails) {
  EXPECT_THROW(sp::load_platform_from_string("<cluster/>"), sp::XmlError);
}
