#include "platform/platform.hpp"

#include <gtest/gtest.h>

#include "platform/builders.hpp"
#include "util/check.hpp"

namespace sp = smpi::platform;
using smpi::util::ContractError;

TEST(Platform, AddAndLookupHostsAndLinks) {
  sp::Platform p;
  const int h0 = p.add_host({"a", 1e9, 4});
  const int h1 = p.add_host({"b", 2e9, 8});
  const int l0 = p.add_link({"l", 1e8, 1e-4, sp::LinkSharing::kShared});
  EXPECT_EQ(p.host_count(), 2);
  EXPECT_EQ(p.link_count(), 1);
  EXPECT_EQ(p.find_host("a"), h0);
  EXPECT_EQ(p.find_host("b"), h1);
  EXPECT_EQ(p.find_host("zzz"), -1);
  EXPECT_EQ(p.find_link("l"), l0);
  EXPECT_DOUBLE_EQ(p.host(h1).speed_flops, 2e9);
}

TEST(Platform, RejectsDuplicatesAndBadSpecs) {
  sp::Platform p;
  p.add_host({"a", 1e9, 1});
  EXPECT_THROW(p.add_host({"a", 1e9, 1}), ContractError);
  EXPECT_THROW(p.add_host({"", 1e9, 1}), ContractError);
  EXPECT_THROW(p.add_host({"c", -5, 1}), ContractError);
  EXPECT_THROW(p.add_host({"d", 1e9, 0}), ContractError);
  p.add_link({"l", 1e8, 0, sp::LinkSharing::kShared});
  EXPECT_THROW(p.add_link({"l", 1e8, 0, sp::LinkSharing::kShared}), ContractError);
  EXPECT_THROW(p.add_link({"m", 0, 0, sp::LinkSharing::kShared}), ContractError);
}

TEST(Platform, ParameterOverridesMutateInPlace) {
  sp::Platform p;
  const int h = p.add_host({"a", 1e9, 4});
  const int l = p.add_link({"l", 1e8, 1e-4, sp::LinkSharing::kShared});
  p.set_host_speed(h, 4e9);
  p.set_link_bandwidth(l, 2.5e8);
  p.set_link_latency(l, 5e-5);
  EXPECT_DOUBLE_EQ(p.host(h).speed_flops, 4e9);
  EXPECT_DOUBLE_EQ(p.link(l).bandwidth_bps, 2.5e8);
  EXPECT_DOUBLE_EQ(p.link(l).latency_s, 5e-5);
  // Identity untouched by the override.
  EXPECT_EQ(p.find_host("a"), h);
  EXPECT_EQ(p.find_link("l"), l);
}

TEST(Platform, ParameterOverridesKeepContracts) {
  sp::Platform p;
  const int h = p.add_host({"a", 1e9, 4});
  const int l = p.add_link({"l", 1e8, 1e-4, sp::LinkSharing::kShared});
  EXPECT_THROW(p.set_host_speed(h + 1, 1e9), ContractError);
  EXPECT_THROW(p.set_host_speed(h, 0), ContractError);
  EXPECT_THROW(p.set_link_bandwidth(l + 1, 1e8), ContractError);
  EXPECT_THROW(p.set_link_bandwidth(l, -1), ContractError);
  EXPECT_THROW(p.set_link_latency(l, -1e-6), ContractError);
  EXPECT_THROW(p.set_link_latency(l + 7, 1e-6), ContractError);
}

TEST(Platform, SymmetricRoutesReverseLinkOrder) {
  sp::Platform p;
  p.add_host({"a", 1e9, 1});
  p.add_host({"b", 1e9, 1});
  const int l0 = p.add_link({"l0", 1e8, 1e-4, sp::LinkSharing::kShared});
  const int l1 = p.add_link({"l1", 1e8, 1e-4, sp::LinkSharing::kShared});
  p.add_route(0, 1, {l0, l1});
  EXPECT_EQ(p.route(0, 1), (std::vector<int>{l0, l1}));
  EXPECT_EQ(p.route(1, 0), (std::vector<int>{l1, l0}));
}

TEST(Platform, MissingRouteThrows) {
  sp::Platform p;
  p.add_host({"a", 1e9, 1});
  p.add_host({"b", 1e9, 1});
  EXPECT_FALSE(p.has_route(0, 1));
  EXPECT_THROW(p.route(0, 1), ContractError);
}

TEST(Platform, RouteToSelfIsEmpty) {
  sp::Platform p;
  p.add_host({"a", 1e9, 1});
  EXPECT_TRUE(p.has_route(0, 0));
  EXPECT_TRUE(p.route(0, 0).empty());
}

TEST(Platform, RouteAggregates) {
  sp::Platform p;
  p.add_host({"a", 1e9, 1});
  p.add_host({"b", 1e9, 1});
  const int fast = p.add_link({"fast", 2e8, 1e-4, sp::LinkSharing::kShared});
  const int slow = p.add_link({"slow", 5e7, 3e-4, sp::LinkSharing::kShared});
  p.add_route(0, 1, {fast, slow});
  EXPECT_DOUBLE_EQ(p.route_latency(0, 1), 4e-4);
  EXPECT_DOUBLE_EQ(p.route_min_bandwidth(0, 1), 5e7);
  EXPECT_EQ(p.route_hop_count(0, 1), 1);
}

TEST(FlatCluster, AllPairsRouted) {
  sp::FlatClusterParams params;
  params.nodes = 5;
  auto p = sp::build_flat_cluster(params);
  EXPECT_EQ(p.host_count(), 5);
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 5; ++j) {
      if (i == j) continue;
      ASSERT_TRUE(p.has_route(i, j));
      EXPECT_EQ(p.route(i, j).size(), 2u);  // up_i, down_j: one switch
      EXPECT_EQ(p.route_hop_count(i, j), 1);
    }
  }
}

TEST(FlatCluster, UplinkIsSharedAcrossDestinations) {
  auto p = sp::build_flat_cluster({});
  // Routes 0->1 and 0->2 must share the first link (node 0's uplink) — this
  // is where endpoint contention comes from.
  EXPECT_EQ(p.route(0, 1)[0], p.route(0, 2)[0]);
  EXPECT_NE(p.route(0, 1)[1], p.route(0, 2)[1]);
}

TEST(Griffon, MatchesPaperDescription) {
  auto p = sp::build_griffon();
  EXPECT_EQ(p.host_count(), 92);  // 33 + 27 + 32
  // Same cabinet: 1 switch.
  EXPECT_EQ(p.route_hop_count(0, 1), 1);
  // Different cabinets: node -> cab switch -> 2nd level -> cab switch -> node.
  const auto params = sp::griffon_params();
  const int cab1_first = sp::first_node_of_cabinet(params, 1);
  EXPECT_EQ(cab1_first, 33);
  EXPECT_EQ(p.route_hop_count(0, cab1_first), 3);
  // The second-level hop runs at 10 GbE.
  const auto& route = p.route(0, cab1_first);
  ASSERT_EQ(route.size(), 4u);
  EXPECT_DOUBLE_EQ(p.link(route[1]).bandwidth_bps, 1.25e9);
  EXPECT_DOUBLE_EQ(p.link(route[0]).bandwidth_bps, 125e6);
}

TEST(Gdx, MatchesPaperDescription) {
  auto p = sp::build_gdx();
  EXPECT_EQ(p.host_count(), 312);
  const auto params = sp::gdx_params();
  // Two cabinets share a switch: nodes of cabinet 0 and 1 cross 1 switch.
  const int cab1_first = sp::first_node_of_cabinet(params, 1);
  EXPECT_EQ(p.route_hop_count(0, cab1_first), 1);
  // Distant cabinets (different switch groups) cross 3 switches.
  const int cab2_first = sp::first_node_of_cabinet(params, 2);
  EXPECT_EQ(p.route_hop_count(0, cab2_first), 3);
  // gdx's second level is plain GbE (the paper's "Ethernet 1 Gigabit links").
  const auto& route = p.route(0, cab2_first);
  ASSERT_EQ(route.size(), 4u);
  EXPECT_DOUBLE_EQ(p.link(route[1]).bandwidth_bps, 125e6);
}

TEST(HierarchicalCluster, RejectsEmpty) {
  sp::HierarchicalClusterParams params;
  EXPECT_THROW(sp::build_hierarchical_cluster(params), ContractError);
}

TEST(HierarchicalCluster, FirstNodeOfCabinetValidatesRange) {
  const auto params = sp::griffon_params();
  EXPECT_EQ(sp::first_node_of_cabinet(params, 0), 0);
  EXPECT_EQ(sp::first_node_of_cabinet(params, 2), 60);
  EXPECT_THROW(sp::first_node_of_cabinet(params, 3), ContractError);
}
