#include "sim/calendar.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/model.hpp"

namespace ss = smpi::sim;

namespace {

// Minimal model recording the tags of fired entries.
struct RecorderModel final : public ss::Model {
  std::vector<std::uint64_t> fired;
  void on_calendar_event(double /*now*/, std::uint64_t tag) override { fired.push_back(tag); }
};

}  // namespace

TEST(EventCalendar, PopsInDateOrder) {
  ss::EventCalendar cal;
  RecorderModel model;
  cal.schedule(3.0, &model, 30);
  cal.schedule(1.0, &model, 10);
  cal.schedule(2.0, &model, 20);
  ss::EventCalendar::Fired fired;
  std::vector<std::uint64_t> order;
  while (cal.pop_due(10.0, &fired)) order.push_back(fired.tag);
  EXPECT_EQ(order, (std::vector<std::uint64_t>{10, 20, 30}));
}

TEST(EventCalendar, TiesBreakByCreationOrder) {
  ss::EventCalendar cal;
  RecorderModel model;
  cal.schedule(1.0, &model, 1);
  cal.schedule(1.0, &model, 2);
  cal.schedule(1.0, &model, 3);
  ss::EventCalendar::Fired fired;
  std::vector<std::uint64_t> order;
  while (cal.pop_due(1.0, &fired)) order.push_back(fired.tag);
  EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(EventCalendar, PopDueHonorsTheDeadline) {
  ss::EventCalendar cal;
  RecorderModel model;
  cal.schedule(1.0, &model, 1);
  cal.schedule(2.5, &model, 2);
  ss::EventCalendar::Fired fired;
  ASSERT_TRUE(cal.pop_due(2.0, &fired));
  EXPECT_EQ(fired.tag, 1u);
  EXPECT_FALSE(cal.pop_due(2.0, &fired));
  EXPECT_DOUBLE_EQ(cal.next_date(), 2.5);
}

TEST(EventCalendar, CancelledEntriesAreSkipped) {
  ss::EventCalendar cal;
  RecorderModel model;
  const auto h1 = cal.schedule(1.0, &model, 1);
  cal.schedule(2.0, &model, 2);
  cal.cancel(h1);
  EXPECT_DOUBLE_EQ(cal.next_date(), 2.0);
  ss::EventCalendar::Fired fired;
  ASSERT_TRUE(cal.pop_due(5.0, &fired));
  EXPECT_EQ(fired.tag, 2u);
  EXPECT_FALSE(cal.pop_due(5.0, &fired));
}

TEST(EventCalendar, CancelOfNoEventIsANoOp) {
  ss::EventCalendar cal;
  cal.cancel(ss::EventCalendar::kNoEvent);
  EXPECT_EQ(cal.next_date(), ss::kNever);
}

TEST(EventCalendar, CancelOfFiredHandleIsANoOp) {
  // Regression: a tombstone for an already-fired entry must not linger in
  // the cancelled set (leak) or skew live_entry_count.
  ss::EventCalendar cal;
  RecorderModel model;
  const auto h = cal.schedule(1.0, &model, 1);
  ss::EventCalendar::Fired fired;
  ASSERT_TRUE(cal.pop_due(1.0, &fired));
  cal.cancel(h);  // fired already: must be ignored
  EXPECT_EQ(cal.live_entry_count(), 0u);
  cal.schedule(2.0, &model, 2);
  EXPECT_EQ(cal.live_entry_count(), 1u);
  ASSERT_TRUE(cal.pop_due(2.0, &fired));
  EXPECT_EQ(fired.tag, 2u);
}

TEST(EventCalendar, LiveEntryCountExcludesCancelled) {
  ss::EventCalendar cal;
  RecorderModel model;
  const auto h1 = cal.schedule(1.0, &model, 1);
  cal.schedule(2.0, &model, 2);
  EXPECT_EQ(cal.live_entry_count(), 2u);
  cal.cancel(h1);
  EXPECT_EQ(cal.live_entry_count(), 1u);
}

TEST(EventCalendar, RescheduleMovesTheDate) {
  // The cancel + schedule pattern the models used before update() existed.
  ss::EventCalendar cal;
  RecorderModel model;
  auto handle = cal.schedule(4.0, &model, 7);
  cal.cancel(handle);
  handle = cal.schedule(2.0, &model, 7);
  EXPECT_DOUBLE_EQ(cal.next_date(), 2.0);
  ss::EventCalendar::Fired fired;
  ASSERT_TRUE(cal.pop_due(2.0, &fired));
  EXPECT_EQ(fired.tag, 7u);
  EXPECT_FALSE(cal.pop_due(10.0, &fired));
}

TEST(EventCalendar, UpdateMovesAnEntryInPlace) {
  // The action-heap decrease/increase-key the models use when a rate changes.
  ss::EventCalendar cal;
  RecorderModel model;
  const auto a = cal.schedule(4.0, &model, 1);
  cal.schedule(3.0, &model, 2);
  ASSERT_TRUE(cal.update(a, 1.0));  // decrease-key past the other entry
  EXPECT_DOUBLE_EQ(cal.next_date(), 1.0);
  EXPECT_EQ(cal.live_entry_count(), 2u);  // moved, not re-added
  ASSERT_TRUE(cal.update(a, 5.0));  // increase-key back past it
  EXPECT_DOUBLE_EQ(cal.next_date(), 3.0);
  ss::EventCalendar::Fired fired;
  std::vector<std::uint64_t> order;
  while (cal.pop_due(10.0, &fired)) order.push_back(fired.tag);
  EXPECT_EQ(order, (std::vector<std::uint64_t>{2, 1}));
}

TEST(EventCalendar, UpdateKeepsCreationOrderOnTies) {
  // An updated entry keeps its original handle, so a tie at the new date
  // still fires in creation order.
  ss::EventCalendar cal;
  RecorderModel model;
  const auto first = cal.schedule(9.0, &model, 1);
  cal.schedule(2.0, &model, 2);
  ASSERT_TRUE(cal.update(first, 2.0));
  ss::EventCalendar::Fired fired;
  std::vector<std::uint64_t> order;
  while (cal.pop_due(2.0, &fired)) order.push_back(fired.tag);
  EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 2}));
}

TEST(EventCalendar, UpdateOfDeadHandleReportsFailure) {
  // Fired and cancelled entries are gone from the heap: update() must say so
  // (the caller then schedules a fresh entry) and must not resurrect them.
  ss::EventCalendar cal;
  RecorderModel model;
  const auto h = cal.schedule(1.0, &model, 1);
  ss::EventCalendar::Fired fired;
  ASSERT_TRUE(cal.pop_due(1.0, &fired));
  EXPECT_FALSE(cal.update(h, 5.0));
  EXPECT_EQ(cal.live_entry_count(), 0u);
  const auto h2 = cal.schedule(2.0, &model, 2);
  cal.cancel(h2);
  EXPECT_FALSE(cal.update(h2, 5.0));
  EXPECT_EQ(cal.live_entry_count(), 0u);
  EXPECT_FALSE(cal.update(ss::EventCalendar::kNoEvent, 5.0));
}

TEST(EventCalendar, HeavyRescheduleChurnKeepsHeapTight) {
  // The indexed heap holds exactly one entry per live action no matter how
  // often keys move (the tombstone scheme accumulated dead entries here).
  ss::EventCalendar cal;
  RecorderModel model;
  std::vector<ss::EventCalendar::Handle> handles;
  for (int i = 0; i < 64; ++i) {
    handles.push_back(cal.schedule(100.0 + i, &model, static_cast<std::uint64_t>(i)));
  }
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 64; ++i) {
      ASSERT_TRUE(cal.update(handles[static_cast<std::size_t>(i)],
                             1.0 + ((round * 7 + i * 13) % 97)));
    }
    ASSERT_EQ(cal.live_entry_count(), 64u);
  }
  // Still a well-formed heap: pops drain in date order.
  double last = 0;
  ss::EventCalendar::Fired fired;
  int popped = 0;
  while (cal.pop_due(1000.0, &fired)) {
    ++popped;
    EXPECT_GE(cal.next_date(), last);
    last = cal.next_date();
  }
  EXPECT_EQ(popped, 64);
}

TEST(EngineCalendar, SameInstantEntriesAndTimersDrainInCreationOrder) {
  // Regression for the merged two-heap peek: calendar entries and plain
  // timers due at one date must fire in strict global (date, creation)
  // order, not "all calendar entries first, all timers second".
  struct TaggingModel final : public ss::Model {
    std::vector<std::string>* log = nullptr;
    void arm(double date, std::uint64_t tag) { calendar().schedule(date, this, tag); }
    void on_calendar_event(double, std::uint64_t tag) override {
      log->push_back("cal" + std::to_string(tag));
    }
  };
  ss::Engine engine;
  auto model = std::make_shared<TaggingModel>();
  std::vector<std::string> log;
  model->log = &log;
  engine.add_model(model);
  engine.spawn("driver", 0, [&] {
    engine.add_timer(1.0, [&] { log.push_back("timer1"); });
    model->arm(1.0, 2);
    engine.add_timer(1.0, [&] { log.push_back("timer3"); });
    model->arm(1.0, 4);
    engine.sleep_for(2.0);
  });
  engine.run();
  EXPECT_EQ(log, (std::vector<std::string>{"timer1", "cal2", "timer3", "cal4"}));
}

TEST(EngineCalendar, ModelEventsDriveVirtualTime) {
  // A model that schedules its own follow-up events through the engine's
  // calendar: the engine advances to each date without polling.
  struct PingModel final : public ss::Model {
    int remaining = 3;
    std::vector<double> fire_dates;
    void arm(double date) { calendar().schedule(date, this, 0); }
    void on_calendar_event(double now, std::uint64_t) override {
      fire_dates.push_back(now);
      if (--remaining > 0) arm(now + 1.5);
    }
  };
  ss::Engine engine;
  auto model = std::make_shared<PingModel>();
  engine.add_model(model);
  engine.spawn("waiter", 0, [&] {
    model->arm(engine.now() + 1.5);
    engine.sleep_for(10.0);
  });
  engine.run();
  EXPECT_EQ(model->fire_dates, (std::vector<double>{1.5, 3.0, 4.5}));
  EXPECT_DOUBLE_EQ(engine.now(), 10.0);
}

TEST(FluidWork, LazyRemainingAccounting) {
  ss::FluidWork work;
  work.start(100.0, 0.0);
  EXPECT_DOUBLE_EQ(work.remaining_at(5.0), 100.0);  // rate 0: nothing moves
  work.set_rate(10.0, 0.0);
  EXPECT_DOUBLE_EQ(work.remaining_at(4.0), 60.0);
  EXPECT_DOUBLE_EQ(work.completion_date(4.0), 10.0);
  // Rate change folds the progress made so far.
  work.set_rate(20.0, 4.0);
  EXPECT_DOUBLE_EQ(work.remaining_at(4.0), 60.0);
  EXPECT_DOUBLE_EQ(work.completion_date(4.0), 7.0);
  EXPECT_DOUBLE_EQ(work.remaining_at(7.0), 0.0);
  EXPECT_DOUBLE_EQ(work.completion_date(7.0), 7.0);
  // Clamped at zero past completion.
  EXPECT_DOUBLE_EQ(work.remaining_at(9.0), 0.0);
}
