// Termination accounting: a run must end in exactly one of clean exit,
// simulated deadlock (with the wait-for diagnostic naming the blocked MPI
// operations), or the max-sim-time limit. Exercises both the bare engine
// and mismatched MPI programs.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "smpi_test_util.hpp"

using namespace smpi_test;
namespace ss = smpi::sim;

TEST(Termination, CleanExitLeavesNoLiveActors) {
  ss::Engine engine;
  engine.spawn("a", 0, [&] { engine.sleep_for(1.0); });
  engine.spawn("b", 0, [] {});
  engine.run();
  EXPECT_EQ(engine.live_actor_count(), 0u);
}

TEST(Termination, MaxSimTimeThrowsTimeLimit) {
  ss::EngineConfig config;
  config.max_sim_time = 1.0;
  ss::Engine engine(config);
  engine.spawn("sleeper", 0, [&] { engine.sleep_for(2.0); });
  EXPECT_THROW(engine.run(), ss::TimeLimitError);
}

TEST(Termination, MaxSimTimeAboveHorizonIsHarmless) {
  ss::EngineConfig config;
  config.max_sim_time = 5.0;
  ss::Engine engine(config);
  double finished_at = -1;
  engine.spawn("sleeper", 0, [&] {
    engine.sleep_for(2.0);
    finished_at = engine.now();
  });
  engine.run();
  EXPECT_DOUBLE_EQ(finished_at, 2.0);
}

TEST(Termination, MismatchedTagDeadlocksWithWaitForState) {
  // Rank 0's eager send completes fire-and-forget; rank 1 waits forever on a
  // tag that never arrives. The detector must name the blocked receive and
  // show the unmatched envelope sitting in the queue.
  try {
    run_mpi(2, [] {
      char byte = 0;
      if (my_rank() == 0) {
        MPI_Send(&byte, 1, MPI_BYTE, 1, 0, MPI_COMM_WORLD);
      } else {
        MPI_Recv(&byte, 1, MPI_BYTE, 0, 1, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      }
    });
    FAIL() << "mismatched tags must deadlock";
  } catch (const ss::DeadlockError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("wait-for state"), std::string::npos) << what;
    EXPECT_NE(what.find("blocked in recv"), std::string::npos) << what;
    EXPECT_NE(what.find("tag=1"), std::string::npos) << what;
  }
}

TEST(Termination, MissingSendDeadlocks) {
  try {
    run_mpi(2, [] {
      char byte = 0;
      if (my_rank() == 1) {
        MPI_Recv(&byte, 1, MPI_BYTE, 0, 0, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      }
    });
    FAIL() << "a receive with no sender must deadlock";
  } catch (const ss::DeadlockError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rank 1"), std::string::npos) << what;
    EXPECT_NE(what.find("blocked in recv"), std::string::npos) << what;
  }
}

TEST(Termination, TruncatedPeerDeadlocksBothRanks) {
  // Both ranks post receives as if the other had already sent — the shape a
  // truncated trace replays into. Both must show up blocked.
  try {
    run_mpi(2, [] {
      char byte = 0;
      const int peer = my_rank() ^ 1;
      MPI_Recv(&byte, 1, MPI_BYTE, peer, 0, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
    });
    FAIL() << "mutual receives must deadlock";
  } catch (const ss::DeadlockError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rank 0"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 1"), std::string::npos) << what;
  }
}

TEST(Termination, MaxSimTimeBoundsRunawayMpiRun) {
  smpi::core::SmpiConfig config = fast_config();
  config.engine.max_sim_time = 0.5;
  EXPECT_THROW(run_mpi(2, [] { smpi_execute_flops(1e10); }, config), ss::TimeLimitError);
}
