// World lifecycle, sampling macros, shared malloc / memory folding, compute
// injection, abort handling, and the packet backend running the same MPI
// code (the on-line ground-truth mode).
#include <gtest/gtest.h>

#include <vector>

#include "smpi_test_util.hpp"

using namespace smpi_test;
namespace sc = smpi::core;

TEST(SmpiWorld, InitFinalizeFlags) {
  run_mpi(2, [] {
    int flag = -1;
    MPI_Initialized(&flag);
    EXPECT_EQ(flag, 1);
    MPI_Finalized(&flag);
    EXPECT_EQ(flag, 0);
  });
}

TEST(SmpiWorld, ProcessorNameIsPlatformHost) {
  run_mpi(2, [] {
    char name[256];
    int len = 0;
    ASSERT_EQ(MPI_Get_processor_name(name, &len), MPI_SUCCESS);
    EXPECT_GT(len, 0);
    EXPECT_EQ(std::string(name).substr(0, 5), "node-");
  });
}

TEST(SmpiWorld, ExecuteFlopsAdvancesTime) {
  // 2e9 flops on 1e9 flop/s nodes = 2 simulated seconds.
  const double t = run_mpi(2, [] {
    if (my_rank() == 0) smpi_execute_flops(2e9);
  });
  EXPECT_NEAR(t, 2.0, 0.01);
}

TEST(SmpiWorld, RanksComputeConcurrently) {
  // Ranks sit on different nodes: simulated computation overlaps, so the
  // total is one burst, not the sum.
  const double t = run_mpi(4, [] { smpi_execute_flops(1e9); });
  EXPECT_NEAR(t, 1.0, 0.01);
}

TEST(SmpiWorld, AbortStopsTheWorld) {
  auto platform = test_cluster(2);
  sc::SmpiWorld world(platform, fast_config());
  world.run(2, [](int, char**) {
    MPI_Init(nullptr, nullptr);
    if (my_rank() == 0) {
      MPI_Abort(MPI_COMM_WORLD, 42);
      FAIL() << "unreachable after abort";
    }
    // Rank 1 blocks forever; the abort must still end the simulation.
    int v = 0;
    MPI_Recv(&v, 1, MPI_INT, 0, 0, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
  });
  EXPECT_TRUE(world.aborted());
  EXPECT_EQ(world.abort_code(), 42);
}

TEST(SmpiSample, LocalSamplingFoldsAfterN) {
  int executions = 0;
  run_mpi(1, [&executions] {
    for (int iter = 0; iter < 10; ++iter) {
      SMPI_SAMPLE_LOCAL(3) { ++executions; }
    }
  });
  EXPECT_EQ(executions, 3);  // executed thrice, folded afterwards
}

TEST(SmpiSample, GlobalSamplingSharesBudgetAcrossRanks) {
  static int executions;  // static: summed across all ranks (shared memory)
  executions = 0;
  run_mpi(4, [] {
    for (int iter = 0; iter < 5; ++iter) {
      SMPI_SAMPLE_GLOBAL(6) { ++executions; }
      MPI_Barrier(MPI_COMM_WORLD);
    }
  });
  EXPECT_EQ(executions, 6);  // 6 total, not 6 per rank
}

TEST(SmpiSample, DelayNeverExecutesAndInjectsFlops) {
  int executions = 0;
  const double t = run_mpi(1, [&executions] {
    SMPI_SAMPLE_DELAY(3e9) { ++executions; }
  });
  EXPECT_EQ(executions, 0);
  EXPECT_NEAR(t, 3.0, 0.01);  // 3e9 flops at 1e9 flop/s
}

TEST(SmpiSample, FoldedIterationsStillAdvanceSimulatedTime) {
  // Folded iterations replay the mean measured duration, so simulated time
  // keeps increasing even when the code stops executing.
  std::vector<double> iteration_times;
  run_mpi(1, [&iteration_times] {
    for (int iter = 0; iter < 6; ++iter) {
      const double t0 = MPI_Wtime();
      SMPI_SAMPLE_LOCAL(2) {
        volatile double x = 1;
        for (int i = 0; i < 2000000; ++i) x = x * 1.0000001;
      }
      iteration_times.push_back(MPI_Wtime() - t0);
    }
  });
  ASSERT_EQ(iteration_times.size(), 6u);
  for (double dt : iteration_times) EXPECT_GT(dt, 0.0);
  // The folded iterations (2..5) all replay the same mean.
  EXPECT_DOUBLE_EQ(iteration_times[3], iteration_times[2]);
  EXPECT_DOUBLE_EQ(iteration_times[4], iteration_times[2]);
}

TEST(SmpiShared, SharedMallocReturnsSamePointerToAllRanks) {
  static void* seen[4];
  run_mpi(4, [] {
    double* data = static_cast<double*>(SMPI_SHARED_MALLOC(1024 * sizeof(double)));
    seen[my_rank()] = data;
    data[my_rank()] = my_rank();  // shared: writes land in one block
    MPI_Barrier(MPI_COMM_WORLD);
    EXPECT_DOUBLE_EQ(data[0], 0);
    EXPECT_DOUBLE_EQ(data[3], 3);
    SMPI_FREE(data);
  });
  EXPECT_EQ(seen[0], seen[1]);
  EXPECT_EQ(seen[0], seen[2]);
  EXPECT_EQ(seen[0], seen[3]);
}

TEST(SmpiShared, MemoryTrackerFoldsSharedAllocations) {
  auto platform = test_cluster(8);
  sc::SmpiWorld world(platform, fast_config());
  world.run(8, [](int, char**) {
    MPI_Init(nullptr, nullptr);
    void* shared = SMPI_SHARED_MALLOC(1000000);
    void* priv = smpi_malloc(1000);
    MPI_Barrier(MPI_COMM_WORLD);
    smpi_free(priv);
    SMPI_FREE(shared);
    MPI_Finalize();
  });
  const auto report = world.memory_report();
  // Unfolded: 8 x (1e6 + 1e3); folded: 1e6 + 8 x 1e3.
  EXPECT_EQ(report.unfolded_peak_bytes, 8u * 1001000);
  EXPECT_EQ(report.folded_peak_bytes, 1000000u + 8u * 1000);
  EXPECT_EQ(report.max_rank_peak_bytes, 1001000u);
  EXPECT_FALSE(report.over_budget);
}

TEST(SmpiShared, OverBudgetIsFlagged) {
  auto platform = test_cluster(4);
  auto config = fast_config();
  config.host_ram_budget_bytes = 1024 * 1024;  // 1 MiB budget
  sc::SmpiWorld world(platform, config);
  world.run(4, [](int, char**) {
    MPI_Init(nullptr, nullptr);
    void* p = smpi_malloc(512 * 1024);  // 4 x 512 KiB = 2 MiB unfolded
    MPI_Barrier(MPI_COMM_WORLD);
    smpi_free(p);
    MPI_Finalize();
  });
  EXPECT_TRUE(world.memory_report().over_budget);
}

TEST(SmpiShared, LeakedAllocationsReclaimedAtTeardown) {
  auto platform = test_cluster(2);
  sc::SmpiWorld world(platform, fast_config());
  world.run(2, [](int, char**) {
    MPI_Init(nullptr, nullptr);
    smpi_malloc(4096);  // deliberately leaked
    MPI_Finalize();
  });
  EXPECT_EQ(world.memory_report().unfolded_peak_bytes, 2u * 4096);
  // Destructor reclaims without tripping the tracker's underflow checks.
}

TEST(SmpiBackend, SameProgramRunsOnPacketNetwork) {
  // On-line ground-truth mode: identical MPI code, packet-level network.
  auto platform = test_cluster(4);
  sc::SmpiConfig config;
  config.backend = sc::SmpiConfig::Backend::kPacket;
  config.personality = sc::Personality::openmpi();
  sc::SmpiWorld world(platform, config);
  world.run(4, [](int, char**) {
    MPI_Init(nullptr, nullptr);
    const int rank = my_rank();
    int sum = -1;
    int v = rank + 1;
    MPI_Allreduce(&v, &sum, 1, MPI_INT, MPI_SUM, MPI_COMM_WORLD);
    EXPECT_EQ(sum, 10);
    std::vector<char> big(128 * 1024);
    if (rank == 0) MPI_Send(big.data(), static_cast<int>(big.size()), MPI_CHAR, 1, 0, MPI_COMM_WORLD);
    if (rank == 1) MPI_Recv(big.data(), static_cast<int>(big.size()), MPI_CHAR, 0, 0, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
    MPI_Finalize();
  });
  EXPECT_GT(world.simulated_time(), 0.0);
}

TEST(SmpiBackend, PacketAndFlowBackendsAgreeRoughly) {
  // The two models must tell the same story for a simple transfer: within a
  // factor ~2 for a large point-to-point message on the same platform.
  auto transfer = [](sc::SmpiConfig config) {
    return run_mpi(
        2,
        [] {
          std::vector<char> buf(4 * 1024 * 1024);
          if (my_rank() == 0) {
            MPI_Send(buf.data(), static_cast<int>(buf.size()), MPI_CHAR, 1, 0, MPI_COMM_WORLD);
          } else {
            MPI_Recv(buf.data(), static_cast<int>(buf.size()), MPI_CHAR, 0, 0, MPI_COMM_WORLD,
                     MPI_STATUS_IGNORE);
          }
        },
        config);
  };
  sc::SmpiConfig flow = fast_config();
  sc::SmpiConfig packet;
  packet.backend = sc::SmpiConfig::Backend::kPacket;
  packet.personality = sc::Personality::openmpi();
  const double t_flow = transfer(flow);
  const double t_packet = transfer(packet);
  EXPECT_GT(t_packet, t_flow * 0.5);
  EXPECT_LT(t_packet, t_flow * 2.0);
}

TEST(SmpiWorld, RunSimulationConvenienceWrapper) {
  auto platform = test_cluster(2);
  const double t = sc::run_simulation(platform, fast_config(), 2, [](int argc, char** argv) {
    EXPECT_GE(argc, 1);
    EXPECT_STREQ(argv[0], "smpi_app");
    MPI_Init(nullptr, nullptr);
    smpi_sleep(0.125);
    MPI_Finalize();
  });
  EXPECT_GE(t, 0.125);
}

TEST(SmpiWorld, ArgumentsReachTheApplication) {
  auto platform = test_cluster(2);
  sc::SmpiWorld world(platform, fast_config());
  world.run(
      2,
      [](int argc, char** argv) {
        MPI_Init(nullptr, nullptr);
        ASSERT_EQ(argc, 3);
        EXPECT_STREQ(argv[1], "--size");
        EXPECT_STREQ(argv[2], "17");
        MPI_Finalize();
      },
      {"--size", "17"});
}

TEST(SmpiWorld, CpuScaleSpeedsUpTheTargetNodes) {
  // The §6 "what if the nodes were twice as fast?" knob: the same measured
  // burst should take half the simulated time with cpu_scale = 0.5 (host
  // seconds are multiplied by host_speed * cpu_scale to get target flops).
  auto run_with_scale = [](double scale) {
    auto config = fast_config();
    config.cpu_scale = scale;
    return run_mpi(1, [] { smpi_execute_host_seconds(0.001); }, config);
  };
  const double t_base = run_with_scale(1.0);
  const double t_fast = run_with_scale(0.5);
  EXPECT_NEAR(t_fast, t_base * 0.5, t_base * 0.05);
}

TEST(SmpiWorld, HostSpeedSettingScalesSampledBursts) {
  // Doubling the assumed host speed doubles the flops attributed to a burst
  // and hence its simulated duration on the same target node.
  auto run_with_host_speed = [](double speed) {
    auto config = fast_config();
    config.host_speed_flops = speed;
    return run_mpi(1, [] { smpi_execute_host_seconds(0.001); }, config);
  };
  const double t1 = run_with_host_speed(1e9);
  const double t2 = run_with_host_speed(2e9);
  EXPECT_NEAR(t2, t1 * 2.0, t1 * 0.05);
}
