// Noise-model tests: noise-spec parsing, seeded distribution sampling,
// per-entity platform perturbation independence, per-message jitter
// determinism, and the zero-noise identity canary — an all-zero-sigma spec
// must be bit-identical to no spec at all, for both online runs and offline
// replay.
#include "noise/noise.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "smpi_test_util.hpp"
#include "trace/reader.hpp"
#include "trace/replay.hpp"
#include "util/check.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "workload/generate.hpp"

using namespace smpi_test;
namespace sn = smpi::noise;
namespace sc = smpi::core;
namespace su = smpi::util;
using smpi::util::ContractError;

namespace {

sn::Distribution parse_dist(const std::string& text) {
  return sn::Distribution::parse(su::parse_json(text, "dist"), "dist");
}

}  // namespace

// ---------------------------------------------------------------------------
// Spec + distribution parsing
// ---------------------------------------------------------------------------

TEST(NoiseSpec, ParsesEveryChannelAndDistributionKind) {
  const auto spec = sn::NoiseSpec::parse_text(R"({
    "seed": 42,
    "host_speed":     {"dist": "normal", "mean": 1.0, "sigma": 0.05},
    "link_bandwidth": {"dist": "uniform", "lo": 0.9, "hi": 1.0},
    "link_latency":   {"dist": "lognormal", "mu": 0.0, "sigma": 0.1},
    "message_jitter": {"dist": "histogram", "edges": [0, 1e-6, 1e-5],
                       "weights": [9, 1]}
  })");
  EXPECT_EQ(spec.seed, 42u);
  EXPECT_FALSE(spec.empty());
  EXPECT_FALSE(spec.null_effect());
  EXPECT_TRUE(spec.has_host_speed);
  EXPECT_EQ(spec.host_speed.kind, sn::Distribution::Kind::kNormal);
  EXPECT_DOUBLE_EQ(spec.host_speed.sigma, 0.05);
  EXPECT_EQ(spec.link_bandwidth.kind, sn::Distribution::Kind::kUniform);
  EXPECT_EQ(spec.link_latency.kind, sn::Distribution::Kind::kLognormal);
  EXPECT_EQ(spec.message_jitter.kind, sn::Distribution::Kind::kHistogram);
  ASSERT_EQ(spec.message_jitter.edges.size(), 3u);
}

TEST(NoiseSpec, BareNumberIsConstantShorthand) {
  const auto spec = sn::NoiseSpec::parse_text(R"({"host_speed": 0.5, "message_jitter": 0})");
  EXPECT_EQ(spec.host_speed.kind, sn::Distribution::Kind::kConstant);
  double value = 0;
  ASSERT_TRUE(spec.host_speed.degenerate(&value));
  EXPECT_DOUBLE_EQ(value, 0.5);
  // jitter 0 is the additive identity; speed 0.5 is not multiplicative identity.
  EXPECT_TRUE(spec.message_jitter.is_identity(0.0));
  EXPECT_FALSE(spec.host_speed.is_identity(1.0));
}

TEST(NoiseSpec, RejectsBadSpecs) {
  EXPECT_THROW(sn::NoiseSpec::parse_text(R"({"host_speed": {"dist": "zipf"}})"), ContractError);
  EXPECT_THROW(parse_dist(R"({"dist": "uniform", "lo": 2, "hi": 1})"), ContractError);
  EXPECT_THROW(parse_dist(R"({"dist": "normal", "mean": 1, "sigma": -0.1})"), ContractError);
  EXPECT_THROW(parse_dist(R"({"dist": "histogram", "edges": [0, 1], "weights": [1, 2]})"),
               ContractError);  // n weights need n+1 edges
  EXPECT_THROW(parse_dist(R"({"dist": "histogram", "edges": [1, 0], "weights": [1]})"),
               ContractError);  // edges must ascend
  EXPECT_THROW(parse_dist(R"({"dist": "histogram", "edges": [0, 1], "weights": [0]})"),
               ContractError);  // zero total weight
  EXPECT_TRUE(sn::NoiseSpec::parse_text(R"({})").empty());
}

TEST(NoiseDistribution, DegenerateDetectsEveryCollapse) {
  double v = 0;
  EXPECT_TRUE(parse_dist("1.5").degenerate(&v));
  EXPECT_DOUBLE_EQ(v, 1.5);
  EXPECT_TRUE(parse_dist(R"({"dist": "uniform", "lo": 2, "hi": 2})").degenerate(&v));
  EXPECT_DOUBLE_EQ(v, 2.0);
  EXPECT_TRUE(parse_dist(R"({"dist": "normal", "mean": 1, "sigma": 0})").degenerate(&v));
  EXPECT_DOUBLE_EQ(v, 1.0);
  EXPECT_FALSE(parse_dist(R"({"dist": "normal", "mean": 1, "sigma": 0.1})").degenerate(&v));
  // A zero-sigma normal at the identity makes the whole spec a no-op.
  const auto spec = sn::NoiseSpec::parse_text(
      R"({"host_speed": {"dist": "normal", "mean": 1, "sigma": 0}, "message_jitter": 0})");
  EXPECT_FALSE(spec.empty());
  EXPECT_TRUE(spec.null_effect());
}

// ---------------------------------------------------------------------------
// Sampling determinism
// ---------------------------------------------------------------------------

TEST(NoiseDistribution, SamplingIsSeedDeterministic) {
  const auto dist = parse_dist(R"({"dist": "lognormal", "mu": 0, "sigma": 0.2})");
  su::Xoshiro256StarStar a(99), b(99), c(100);
  bool differs = false;
  for (int i = 0; i < 64; ++i) {
    const double x = dist.sample(a);
    EXPECT_EQ(x, dist.sample(b));  // bit-equal draw-for-draw
    EXPECT_GT(x, 0.0);             // lognormal is positive
    differs = differs || x != dist.sample(c);
  }
  EXPECT_TRUE(differs) << "a different seed must perturb the stream";
}

TEST(NoiseDistribution, HistogramSamplesStayInsideBins) {
  const auto dist = parse_dist(
      R"({"dist": "histogram", "edges": [1.0, 1.5, 4.0], "weights": [1, 0]})");
  su::Xoshiro256StarStar rng(3);
  for (int i = 0; i < 256; ++i) {
    const double x = dist.sample(rng);
    // The second bin has zero weight: every draw lands in [1.0, 1.5).
    EXPECT_GE(x, 1.0);
    EXPECT_LT(x, 1.5);
  }
}

// ---------------------------------------------------------------------------
// Static platform perturbation
// ---------------------------------------------------------------------------

TEST(NoisePlatform, PerEntityDrawsAreChannelIndependent) {
  // Adding the bandwidth channel must not shift the host-speed draws: each
  // channel owns a sub-stream.
  auto speed_only = test_cluster(4);
  auto both = test_cluster(4);
  sn::apply_platform_noise(
      speed_only,
      sn::NoiseSpec::parse_text(
          R"({"seed": 5, "host_speed": {"dist": "normal", "mean": 1, "sigma": 0.1}})"));
  sn::apply_platform_noise(both, sn::NoiseSpec::parse_text(R"({
    "seed": 5,
    "host_speed":     {"dist": "normal", "mean": 1, "sigma": 0.1},
    "link_bandwidth": {"dist": "uniform", "lo": 0.8, "hi": 0.9}
  })"));
  const auto reference = test_cluster(4);
  bool speeds_moved = false;
  for (int h = 0; h < reference.host_count(); ++h) {
    EXPECT_EQ(speed_only.host(h).speed_flops, both.host(h).speed_flops) << h;
    speeds_moved = speeds_moved ||
                   speed_only.host(h).speed_flops != reference.host(h).speed_flops;
  }
  EXPECT_TRUE(speeds_moved);
  bool bandwidth_moved = false;
  for (int l = 0; l < reference.link_count(); ++l) {
    EXPECT_EQ(speed_only.link(l).bandwidth_bps, reference.link(l).bandwidth_bps) << l;
    bandwidth_moved = bandwidth_moved ||
                      both.link(l).bandwidth_bps != reference.link(l).bandwidth_bps;
  }
  EXPECT_TRUE(bandwidth_moved);
}

TEST(NoisePlatform, IdentityChannelsLeavePlatformBitIdentical) {
  auto noised = test_cluster(4);
  sn::apply_platform_noise(noised, sn::NoiseSpec::parse_text(R"({
    "seed": 11,
    "host_speed":     {"dist": "normal", "mean": 1, "sigma": 0},
    "link_bandwidth": 1,
    "link_latency":   {"dist": "uniform", "lo": 1, "hi": 1}
  })"));
  const auto reference = test_cluster(4);
  for (int h = 0; h < reference.host_count(); ++h) {
    EXPECT_EQ(noised.host(h).speed_flops, reference.host(h).speed_flops);
  }
  for (int l = 0; l < reference.link_count(); ++l) {
    EXPECT_EQ(noised.link(l).bandwidth_bps, reference.link(l).bandwidth_bps);
    EXPECT_EQ(noised.link(l).latency_s, reference.link(l).latency_s);
  }
}

TEST(NoisePlatform, ReplicationSeedsAreDistinctAndDeterministic) {
  EXPECT_EQ(sn::replication_seed(7, 0), sn::replication_seed(7, 0));
  EXPECT_NE(sn::replication_seed(7, 0), sn::replication_seed(7, 1));
  EXPECT_NE(sn::replication_seed(7, 1), sn::replication_seed(8, 1));
  EXPECT_EQ(sn::replication_seed(7, 3),
            su::mix_stream(7, su::stream_class::kNoiseReplication, 3));
}

// ---------------------------------------------------------------------------
// Per-message jitter
// ---------------------------------------------------------------------------

TEST(NoiseJitter, SamplerIsSeedDeterministicAndClamped) {
  const auto dist = parse_dist(R"({"dist": "normal", "mean": 0, "sigma": 1e-5})");
  sn::MessageJitter a(dist, 17), b(dist, 17), c(dist, 18);
  bool differs = false;
  for (int i = 0; i < 64; ++i) {
    const int src = i % 4, dst = (i + 1) % 4;
    const double x = a.sample(src, dst);
    EXPECT_EQ(x, b.sample(src, dst));
    EXPECT_GE(x, 0.0);  // negative draws clamp: the network stays causal
    differs = differs || x != c.sample(src, dst);
  }
  EXPECT_TRUE(differs);
  EXPECT_EQ(a.draws(), 64u);
}

// ---------------------------------------------------------------------------
// Zero-noise identity canary + end-to-end effect, online and replay
// ---------------------------------------------------------------------------

namespace {

const char* kIdentitySpec = R"({
  "seed": 1,
  "host_speed":     {"dist": "normal", "mean": 1, "sigma": 0},
  "link_bandwidth": {"dist": "uniform", "lo": 1, "hi": 1},
  "link_latency":   1,
  "message_jitter": {"dist": "normal", "mean": 0, "sigma": 0}
})";

double run_noised(const char* spec_text) {
  auto platform = test_cluster(4);
  sc::SmpiConfig config = fast_config();
  if (spec_text != nullptr) {
    config.noise = sn::NoiseSpec::parse_text(spec_text);
    sn::apply_platform_noise(platform, config.noise);
  }
  sc::SmpiWorld world(platform, config);
  world.run(4, [](int, char**) {
    MPI_Init(nullptr, nullptr);
    std::vector<char> buf(1 << 16);
    const int peer = my_rank() ^ 1;
    MPI_Sendrecv(buf.data(), static_cast<int>(buf.size()), MPI_BYTE, peer, 0, buf.data(),
                 static_cast<int>(buf.size()), MPI_BYTE, peer, 0, MPI_COMM_WORLD,
                 MPI_STATUS_IGNORE);
    smpi_execute_flops(1e8);
    MPI_Allreduce(MPI_IN_PLACE, buf.data(), 1, MPI_BYTE, MPI_MAX, MPI_COMM_WORLD);
    MPI_Finalize();
  });
  return world.simulated_time();
}

}  // namespace

TEST(NoiseIdentity, ZeroSigmaSpecIsBitIdenticalOnline) {
  const double bare = run_noised(nullptr);
  const double identity = run_noised(kIdentitySpec);
  EXPECT_EQ(bare, identity);  // bit-identical, not just close
}

TEST(NoiseIdentity, NonIdentityNoisePerturbsOnlineRun) {
  const double bare = run_noised(nullptr);
  const double noised = run_noised(R"({
    "seed": 1,
    "host_speed":     {"dist": "lognormal", "mu": 0, "sigma": 0.05},
    "message_jitter": {"dist": "normal", "mean": 0, "sigma": 2e-6}
  })");
  EXPECT_NE(bare, noised);
  EXPECT_GT(noised, 0.0);
  // And the perturbed run itself stays seed-reproducible.
  EXPECT_EQ(noised, run_noised(R"({
    "seed": 1,
    "host_speed":     {"dist": "lognormal", "mu": 0, "sigma": 0.05},
    "message_jitter": {"dist": "normal", "mean": 0, "sigma": 2e-6}
  })"));
}

TEST(NoiseIdentity, ZeroSigmaSpecIsBitIdenticalInReplay) {
  const auto trace = smpi::workload::generate_workload(smpi::workload::WorkloadSpec::parse(
      su::parse_json(R"({"name": "canary", "ranks": 4, "seed": 3, "pattern": "stencil2d",
                         "iterations": 3, "bytes": 4096, "compute": {"flops": 1e6}})",
                     "workload")));
  const auto replay_with = [&trace](const char* spec_text) {
    auto platform = test_cluster(4);
    sc::SmpiConfig config = fast_config();
    if (spec_text != nullptr) {
      config.noise = sn::NoiseSpec::parse_text(spec_text);
      sn::apply_platform_noise(platform, config.noise);
    }
    return smpi::trace::replay_trace(platform, config, trace);
  };
  const auto bare = replay_with(nullptr);
  const auto identity = replay_with(kIdentitySpec);
  EXPECT_EQ(bare.simulated_time, identity.simulated_time);
  EXPECT_EQ(bare.solver_solves, identity.solver_solves);
  EXPECT_EQ(bare.solver_vars_touched, identity.solver_vars_touched);
  EXPECT_EQ(bare.solver_cons_touched, identity.solver_cons_touched);

  // A live jitter channel must change the replayed time, reproducibly.
  const char* jittery = R"({"seed": 2, "message_jitter":
      {"dist": "uniform", "lo": 0, "hi": 5e-6}})";
  const auto noised = replay_with(jittery);
  EXPECT_NE(noised.simulated_time, bare.simulated_time);
  EXPECT_EQ(noised.simulated_time, replay_with(jittery).simulated_time);
}
