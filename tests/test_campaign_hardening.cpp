// Campaign harness hardening: dead workers are retried once on a fresh
// fork, hung scenarios are isolated by the wall-clock watchdog, and the
// fault axes (fault_seed / scales) materialize into per-scenario specs —
// all without perturbing the bit-determinism of the healthy rows.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "campaign/runner.hpp"
#include "campaign/spec.hpp"
#include "util/check.hpp"
#include "util/json.hpp"
#include "workload/generate.hpp"

namespace cp = smpi::campaign;
using smpi::util::ContractError;
using smpi::util::parse_json;

namespace {

cp::CampaignSpec hardening_spec() {
  return cp::CampaignSpec::parse(parse_json(R"({
    "name": "hardening",
    "platform": {"kind": "flat"},
    "workload": {"name": "w", "ranks": 4, "seed": 3, "pattern": "stencil2d",
                 "iterations": 2, "bytes": 4096},
    "axes": [{"param": "cpu_scale", "values": [1, 2, 4]}]
  })",
                                            "test spec"));
}

}  // namespace

TEST(CampaignHardening, DeadWorkerIsRetriedOnceAndSucceeds) {
  const auto spec = hardening_spec();
  const auto scenarios = cp::enumerate_scenarios(spec);
  ASSERT_EQ(scenarios.size(), 4u);
  const auto trace = smpi::workload::generate_workload(spec.workload);

  cp::RunOptions options;
  options.workers = 2;
  options.crash_scenario = 1;  // that worker _exit()s once mid-scenario
  const auto outcome = cp::run_campaign(spec, scenarios, trace, options);
  ASSERT_EQ(outcome.results.size(), scenarios.size());
  for (const auto& r : outcome.results) EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(outcome.results[1].retries, 1);
  EXPECT_EQ(outcome.results[0].retries, 0);
  EXPECT_EQ(outcome.results[2].retries, 0);
}

TEST(CampaignHardening, PersistentCrashExhaustsTheSingleRetry) {
  const auto spec = hardening_spec();
  const auto scenarios = cp::enumerate_scenarios(spec);
  const auto trace = smpi::workload::generate_workload(spec.workload);

  cp::RunOptions options;
  options.workers = 2;
  options.crash_scenario = 2;
  options.crash_always = true;
  const auto outcome = cp::run_campaign(spec, scenarios, trace, options);
  const auto& dead = outcome.results[2];
  EXPECT_FALSE(dead.ok);
  EXPECT_EQ(dead.retries, 1);
  EXPECT_NE(dead.error.find("retry exhausted"), std::string::npos) << dead.error;
  EXPECT_NE(dead.worker_exit.find("exited with status 33"), std::string::npos)
      << dead.worker_exit;
  for (std::size_t i = 0; i < outcome.results.size(); ++i) {
    if (i != 2) EXPECT_TRUE(outcome.results[i].ok) << outcome.results[i].error;
  }
}

TEST(CampaignHardening, WatchdogIsolatesHungScenarioDeterministically) {
  const auto spec = hardening_spec();
  const auto scenarios = cp::enumerate_scenarios(spec);
  const auto trace = smpi::workload::generate_workload(spec.workload);

  // Reference sweep: no hooks, no watchdog.
  const auto clean = cp::run_campaign(spec, scenarios, trace, cp::RunOptions{});

  auto run_with_hang = [&](int workers) {
    cp::RunOptions options;
    options.workers = workers;
    options.timeout_s = 0.25;
    options.hang_scenario = 1;  // that worker sleeps forever
    return cp::run_campaign(spec, scenarios, trace, options);
  };
  const auto one = run_with_hang(1);
  const auto two = run_with_hang(2);

  for (const auto* outcome : {&one, &two}) {
    const auto& hung = outcome->results[1];
    EXPECT_FALSE(hung.ok);
    EXPECT_TRUE(hung.timed_out);
    EXPECT_EQ(hung.retries, 0) << "timeouts must not be retried";
    EXPECT_NE(hung.error.find("watchdog"), std::string::npos) << hung.error;
    EXPECT_NE(hung.worker_exit.find("killed by watchdog"), std::string::npos)
        << hung.worker_exit;
    // The healthy rows stay ok and bit-identical to the clean sweep.
    for (std::size_t i = 0; i < outcome->results.size(); ++i) {
      if (i == 1) continue;
      ASSERT_TRUE(outcome->results[i].ok) << outcome->results[i].error;
      EXPECT_EQ(outcome->results[i].simulated_time, clean.results[i].simulated_time)
          << "scenario " << i;
      EXPECT_FALSE(outcome->results[i].timed_out);
    }
  }
}

TEST(CampaignHardening, FaultAxesMaterializePerScenario) {
  const auto spec = cp::CampaignSpec::parse(parse_json(R"({
    "platform": {"kind": "flat"},
    "faults": {"policy": "abort",
               "events": [{"kind": "host_crash", "time": 0.5, "host": "node-0"}],
               "random": {"seed": 1, "host_crashes": 2, "time_min": 0, "time_max": 1}},
    "timeout_s": 30,
    "axes": [
      {"param": "fault_seed", "values": [7, 8]},
      {"param": "fault_time_scale", "values": [1, 2]},
      {"param": "fault_count_scale", "values": [0, 3]}
    ]
  })",
                                                       "test spec"));
  EXPECT_DOUBLE_EQ(spec.timeout_s, 30.0);
  const auto scenarios = cp::enumerate_scenarios(spec);
  ASSERT_EQ(scenarios.size(), 9u);  // baseline + 2*2*2

  const auto baseline = cp::materialize(spec, scenarios[0], 4);
  EXPECT_EQ(baseline.config.faults.random.seed, 1u);
  EXPECT_DOUBLE_EQ(baseline.config.faults.events[0].time, 0.5);

  // seed=8, time_scale=2, count_scale=3
  const auto& last = scenarios.back();
  const auto setup = cp::materialize(spec, last, 4);
  EXPECT_EQ(setup.config.faults.random.seed, 8u);
  EXPECT_DOUBLE_EQ(setup.config.faults.events[0].time, 1.0);
  EXPECT_DOUBLE_EQ(setup.config.faults.random.time_max, 2.0);
  EXPECT_EQ(setup.config.faults.random.host_crashes, 6);
}

TEST(CampaignHardening, FaultAxesRejectSpecsWithoutFaults) {
  // fault_seed is only meaningful with a campaign-level random fault block;
  // the contract fires when the scenario is materialized.
  const auto spec = cp::CampaignSpec::parse(parse_json(R"({
    "platform": {"kind": "flat"},
    "axes": [{"param": "fault_seed", "values": [1]}]
  })",
                                                       "test spec"));
  const auto scenarios = cp::enumerate_scenarios(spec);
  ASSERT_EQ(scenarios.size(), 2u);
  EXPECT_NO_THROW(cp::materialize(spec, scenarios[0], 4));  // baseline: no override
  EXPECT_THROW(cp::materialize(spec, scenarios[1], 4), ContractError);
}
