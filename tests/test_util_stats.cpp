#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.hpp"

namespace su = smpi::util;

TEST(LogError, IsSymmetric) {
  // The metric was introduced precisely because relative error is not
  // symmetric: X=2R and X=R/2 must give the same error (§7.1).
  EXPECT_DOUBLE_EQ(su::log_error(2.0, 1.0), su::log_error(0.5, 1.0));
  EXPECT_DOUBLE_EQ(su::log_error(3.0, 7.0), su::log_error(7.0, 3.0));
}

TEST(LogError, ZeroWhenEqual) { EXPECT_DOUBLE_EQ(su::log_error(5.0, 5.0), 0.0); }

TEST(LogError, BackOutOfLogSpace) {
  // X twice R: LogErr = ln 2, Err = e^{ln 2} - 1 = 100%.
  EXPECT_NEAR(su::log_error_as_fraction(su::log_error(2.0, 1.0)), 1.0, 1e-12);
}

TEST(LogError, RejectsNonPositive) {
  EXPECT_THROW(su::log_error(0.0, 1.0), su::ContractError);
  EXPECT_THROW(su::log_error(1.0, -2.0), su::ContractError);
}

TEST(ErrorAccumulator, AggregatesMeanAndMax) {
  su::ErrorAccumulator acc;
  acc.add(1.0, 1.0);   // 0
  acc.add(2.0, 1.0);   // ln 2
  acc.add(1.0, 4.0);   // ln 4
  const auto s = acc.summary();
  EXPECT_EQ(s.count, 3u);
  EXPECT_NEAR(s.max_log_error, std::log(4.0), 1e-12);
  EXPECT_NEAR(s.mean_log_error, (std::log(2.0) + std::log(4.0)) / 3.0, 1e-12);
  EXPECT_NEAR(s.max_fraction(), 3.0, 1e-12);  // 4x off = 300%
}

TEST(RunningStats, MeanVarianceMinMax) {
  su::RunningStats st;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) st.add(x);
  EXPECT_EQ(st.count(), 8u);
  EXPECT_DOUBLE_EQ(st.mean(), 5.0);
  EXPECT_DOUBLE_EQ(st.variance(), 4.0);
  EXPECT_DOUBLE_EQ(st.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(st.min(), 2.0);
  EXPECT_DOUBLE_EQ(st.max(), 9.0);
}

TEST(LinearRegression, RecoversExactLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 100; ++i) {
    x.push_back(i);
    y.push_back(3.5 + 0.25 * i);
  }
  const auto fit = su::linear_regression(x, y);
  EXPECT_NEAR(fit.intercept, 3.5, 1e-9);
  EXPECT_NEAR(fit.slope, 0.25, 1e-12);
  EXPECT_NEAR(fit.correlation, 1.0, 1e-12);
}

TEST(LinearRegression, SubrangeOnly) {
  std::vector<double> x{0, 1, 2, 3, 4, 5};
  std::vector<double> y{100, 200, 2, 3, 4, 5};  // garbage before index 2
  const auto fit = su::linear_regression(x, y, 2, 6);
  EXPECT_NEAR(fit.slope, 1.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 0.0, 1e-9);
}

TEST(LinearRegression, NegativeCorrelationForDecreasingData) {
  std::vector<double> x{0, 1, 2, 3};
  std::vector<double> y{9, 6, 5, 1};
  EXPECT_LT(su::correlation(x, y), -0.9);
}

TEST(LinearRegression, DegenerateXGivesZeroSlope) {
  std::vector<double> x{2, 2, 2};
  std::vector<double> y{1, 5, 9};
  const auto fit = su::linear_regression(x, y);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 5.0);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  std::vector<double> v{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(su::percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(su::percentile(v, 100), 4.0);
  EXPECT_DOUBLE_EQ(su::percentile(v, 50), 2.5);
}

TEST(Percentile, RejectsBadInput) {
  EXPECT_THROW(su::percentile({}, 50), su::ContractError);
  EXPECT_THROW(su::percentile({1.0}, 101), su::ContractError);
}

TEST(Quantile, Type7InterpolationMatchesNumpyDefault) {
  const std::vector<double> v{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(su::quantile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(su::quantile(v, 1), 4.0);
  EXPECT_DOUBLE_EQ(su::quantile(v, 0.5), 2.5);
  // h = (n-1)q = 0.75: linear interpolation between ranks 0 and 1.
  EXPECT_DOUBLE_EQ(su::quantile(v, 0.25), 1.75);
  EXPECT_DOUBLE_EQ(su::quantile({7.0}, 0.5), 7.0);
  // The unsorted overload sorts its copy; the sorted overload trusts input.
  EXPECT_DOUBLE_EQ(su::quantile({4, 1, 3, 2}, 0.25), 1.75);
  EXPECT_DOUBLE_EQ(su::quantile_sorted(v, 0.95), su::quantile({2, 4, 1, 3}, 0.95));
}

TEST(Quantile, RejectsBadInput) {
  EXPECT_THROW(su::quantile({}, 0.5), su::ContractError);
  EXPECT_THROW(su::quantile({1.0}, 1.5), su::ContractError);
  EXPECT_THROW(su::quantile_sorted({1.0}, -0.1), su::ContractError);
}

TEST(SampleSummary, ReportsTheUsualDescriptives) {
  const auto s = su::summarize_sample({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  // Sample (n-1) estimator: population variance 4, so stddev sqrt(32/7).
  EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.p50, 4.5);
  const auto one = su::summarize_sample({3.0});
  EXPECT_DOUBLE_EQ(one.stddev, 0.0);  // n < 2
  EXPECT_DOUBLE_EQ(one.p5, 3.0);
  EXPECT_THROW(su::summarize_sample({}), su::ContractError);
}

TEST(BootstrapCi, SeedDeterministicAndBracketsTheMean) {
  const std::vector<double> v{1.0, 1.1, 0.9, 1.05, 0.95, 1.2, 0.8, 1.0};
  const auto a = su::bootstrap_mean_ci(v, 0.95, 200, 42);
  const auto b = su::bootstrap_mean_ci(v, 0.95, 200, 42);
  EXPECT_EQ(a.lo, b.lo);  // bit-identical per seed
  EXPECT_EQ(a.hi, b.hi);
  EXPECT_LE(a.lo, a.hi);
  // The sample mean is 1.0; a 95% interval over resample means contains it.
  EXPECT_LE(a.lo, 1.0);
  EXPECT_GE(a.hi, 1.0);
  const auto c = su::bootstrap_mean_ci(v, 0.95, 200, 43);
  EXPECT_TRUE(a.lo != c.lo || a.hi != c.hi) << "seed change must move the interval";
  // Degenerate sample: every resample mean is the constant.
  const auto fixed = su::bootstrap_mean_ci({5.0, 5.0, 5.0}, 0.9, 50, 1);
  EXPECT_DOUBLE_EQ(fixed.lo, 5.0);
  EXPECT_DOUBLE_EQ(fixed.hi, 5.0);
}

TEST(BootstrapCi, RejectsBadInput) {
  EXPECT_THROW(su::bootstrap_mean_ci({}, 0.95, 100, 1), su::ContractError);
  EXPECT_THROW(su::bootstrap_mean_ci({1.0}, 1.0, 100, 1), su::ContractError);
  EXPECT_THROW(su::bootstrap_mean_ci({1.0}, 0.95, 0, 1), su::ContractError);
}
