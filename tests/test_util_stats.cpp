#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.hpp"

namespace su = smpi::util;

TEST(LogError, IsSymmetric) {
  // The metric was introduced precisely because relative error is not
  // symmetric: X=2R and X=R/2 must give the same error (§7.1).
  EXPECT_DOUBLE_EQ(su::log_error(2.0, 1.0), su::log_error(0.5, 1.0));
  EXPECT_DOUBLE_EQ(su::log_error(3.0, 7.0), su::log_error(7.0, 3.0));
}

TEST(LogError, ZeroWhenEqual) { EXPECT_DOUBLE_EQ(su::log_error(5.0, 5.0), 0.0); }

TEST(LogError, BackOutOfLogSpace) {
  // X twice R: LogErr = ln 2, Err = e^{ln 2} - 1 = 100%.
  EXPECT_NEAR(su::log_error_as_fraction(su::log_error(2.0, 1.0)), 1.0, 1e-12);
}

TEST(LogError, RejectsNonPositive) {
  EXPECT_THROW(su::log_error(0.0, 1.0), su::ContractError);
  EXPECT_THROW(su::log_error(1.0, -2.0), su::ContractError);
}

TEST(ErrorAccumulator, AggregatesMeanAndMax) {
  su::ErrorAccumulator acc;
  acc.add(1.0, 1.0);   // 0
  acc.add(2.0, 1.0);   // ln 2
  acc.add(1.0, 4.0);   // ln 4
  const auto s = acc.summary();
  EXPECT_EQ(s.count, 3u);
  EXPECT_NEAR(s.max_log_error, std::log(4.0), 1e-12);
  EXPECT_NEAR(s.mean_log_error, (std::log(2.0) + std::log(4.0)) / 3.0, 1e-12);
  EXPECT_NEAR(s.max_fraction(), 3.0, 1e-12);  // 4x off = 300%
}

TEST(RunningStats, MeanVarianceMinMax) {
  su::RunningStats st;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) st.add(x);
  EXPECT_EQ(st.count(), 8u);
  EXPECT_DOUBLE_EQ(st.mean(), 5.0);
  EXPECT_DOUBLE_EQ(st.variance(), 4.0);
  EXPECT_DOUBLE_EQ(st.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(st.min(), 2.0);
  EXPECT_DOUBLE_EQ(st.max(), 9.0);
}

TEST(LinearRegression, RecoversExactLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 100; ++i) {
    x.push_back(i);
    y.push_back(3.5 + 0.25 * i);
  }
  const auto fit = su::linear_regression(x, y);
  EXPECT_NEAR(fit.intercept, 3.5, 1e-9);
  EXPECT_NEAR(fit.slope, 0.25, 1e-12);
  EXPECT_NEAR(fit.correlation, 1.0, 1e-12);
}

TEST(LinearRegression, SubrangeOnly) {
  std::vector<double> x{0, 1, 2, 3, 4, 5};
  std::vector<double> y{100, 200, 2, 3, 4, 5};  // garbage before index 2
  const auto fit = su::linear_regression(x, y, 2, 6);
  EXPECT_NEAR(fit.slope, 1.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 0.0, 1e-9);
}

TEST(LinearRegression, NegativeCorrelationForDecreasingData) {
  std::vector<double> x{0, 1, 2, 3};
  std::vector<double> y{9, 6, 5, 1};
  EXPECT_LT(su::correlation(x, y), -0.9);
}

TEST(LinearRegression, DegenerateXGivesZeroSlope) {
  std::vector<double> x{2, 2, 2};
  std::vector<double> y{1, 5, 9};
  const auto fit = su::linear_regression(x, y);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 5.0);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  std::vector<double> v{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(su::percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(su::percentile(v, 100), 4.0);
  EXPECT_DOUBLE_EQ(su::percentile(v, 50), 2.5);
}

TEST(Percentile, RejectsBadInput) {
  EXPECT_THROW(su::percentile({}, 50), su::ContractError);
  EXPECT_THROW(su::percentile({1.0}, 101), su::ContractError);
}
