#include "surf/maxmin.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace sf = smpi::surf;

TEST(MaxMin, SingleFlowGetsFullCapacity) {
  sf::MaxMinSystem sys;
  const int link = sys.new_constraint(100.0);
  const int flow = sys.new_variable();
  sys.attach(flow, link);
  sys.solve();
  EXPECT_DOUBLE_EQ(sys.value(flow), 100.0);
}

TEST(MaxMin, TwoFlowsShareEqually) {
  sf::MaxMinSystem sys;
  const int link = sys.new_constraint(100.0);
  const int f1 = sys.new_variable();
  const int f2 = sys.new_variable();
  sys.attach(f1, link);
  sys.attach(f2, link);
  sys.solve();
  EXPECT_DOUBLE_EQ(sys.value(f1), 50.0);
  EXPECT_DOUBLE_EQ(sys.value(f2), 50.0);
}

TEST(MaxMin, BoundedFlowLeavesCapacityToOthers) {
  sf::MaxMinSystem sys;
  const int link = sys.new_constraint(100.0);
  const int slow = sys.new_variable(1.0, 10.0);
  const int fast = sys.new_variable();
  sys.attach(slow, link);
  sys.attach(fast, link);
  sys.solve();
  EXPECT_DOUBLE_EQ(sys.value(slow), 10.0);
  EXPECT_DOUBLE_EQ(sys.value(fast), 90.0);
}

TEST(MaxMin, WeightsSkewTheShares) {
  sf::MaxMinSystem sys;
  const int link = sys.new_constraint(90.0);
  const int heavy = sys.new_variable(2.0);
  const int light = sys.new_variable(1.0);
  sys.attach(heavy, link);
  sys.attach(light, link);
  sys.solve();
  EXPECT_DOUBLE_EQ(sys.value(heavy), 60.0);
  EXPECT_DOUBLE_EQ(sys.value(light), 30.0);
}

TEST(MaxMin, ClassicLinearNetwork) {
  // The textbook example: flow 0 crosses both links, flows 1 and 2 cross one
  // link each. Max-min: f0 = 50, f1 = 50, f2 = 50 with capacities 100.
  sf::MaxMinSystem sys;
  const int l1 = sys.new_constraint(100.0);
  const int l2 = sys.new_constraint(100.0);
  const int f0 = sys.new_variable();
  const int f1 = sys.new_variable();
  const int f2 = sys.new_variable();
  sys.attach(f0, l1);
  sys.attach(f0, l2);
  sys.attach(f1, l1);
  sys.attach(f2, l2);
  sys.solve();
  EXPECT_DOUBLE_EQ(sys.value(f0), 50.0);
  EXPECT_DOUBLE_EQ(sys.value(f1), 50.0);
  EXPECT_DOUBLE_EQ(sys.value(f2), 50.0);
}

TEST(MaxMin, AsymmetricBottleneck) {
  // Long flow crosses a thin link (30) and a fat link (100); a short flow
  // shares the fat link. The long flow is bottlenecked at 30 by the thin
  // link, leaving 70 to the short one.
  sf::MaxMinSystem sys;
  const int thin = sys.new_constraint(30.0);
  const int fat = sys.new_constraint(100.0);
  const int long_flow = sys.new_variable();
  const int short_flow = sys.new_variable();
  sys.attach(long_flow, thin);
  sys.attach(long_flow, fat);
  sys.attach(short_flow, fat);
  sys.solve();
  EXPECT_DOUBLE_EQ(sys.value(long_flow), 30.0);
  EXPECT_DOUBLE_EQ(sys.value(short_flow), 70.0);
}

TEST(MaxMin, UnconstrainedVariableTakesItsBound) {
  sf::MaxMinSystem sys;
  const int v = sys.new_variable(1.0, 42.0);
  sys.solve();
  EXPECT_DOUBLE_EQ(sys.value(v), 42.0);
}

TEST(MaxMin, UnconstrainedUnboundedVariableIsRejected) {
  sf::MaxMinSystem sys;
  sys.new_variable();
  EXPECT_THROW(sys.solve(), smpi::util::ContractError);
}

TEST(MaxMin, ReleaseRedistributesCapacity) {
  sf::MaxMinSystem sys;
  const int link = sys.new_constraint(100.0);
  const int f1 = sys.new_variable();
  const int f2 = sys.new_variable();
  sys.attach(f1, link);
  sys.attach(f2, link);
  sys.solve();
  EXPECT_DOUBLE_EQ(sys.value(f1), 50.0);
  sys.release_variable(f2);
  sys.solve();
  EXPECT_DOUBLE_EQ(sys.value(f1), 100.0);
  EXPECT_THROW(sys.value(f2), smpi::util::ContractError);
}

TEST(MaxMin, VariableIdsAreRecycled) {
  sf::MaxMinSystem sys;
  const int link = sys.new_constraint(10.0);
  const int a = sys.new_variable();
  sys.attach(a, link);
  sys.release_variable(a);
  const int b = sys.new_variable();
  EXPECT_EQ(a, b);  // recycled id
  sys.attach(b, link);
  sys.solve();
  EXPECT_DOUBLE_EQ(sys.value(b), 10.0);
}

TEST(MaxMin, SolveIsLazy) {
  sf::MaxMinSystem sys;
  const int link = sys.new_constraint(10.0);
  const int v = sys.new_variable();
  sys.attach(v, link);
  EXPECT_TRUE(sys.dirty());
  sys.solve();
  EXPECT_FALSE(sys.dirty());
  sys.set_capacity(link, 20.0);
  EXPECT_TRUE(sys.dirty());
  sys.solve();
  EXPECT_DOUBLE_EQ(sys.value(v), 20.0);
}

// ---------------------------------------------------------------------------
// Property tests over randomized systems.
// ---------------------------------------------------------------------------

class MaxMinPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MaxMinPropertyTest, AllocationsAreFeasibleAndMaxMinOptimal) {
  smpi::util::Xoshiro256StarStar rng(GetParam());
  sf::MaxMinSystem sys;

  const int num_constraints = 2 + static_cast<int>(rng.next_in_range(0, 8));
  const int num_variables = 1 + static_cast<int>(rng.next_in_range(0, 30));
  std::vector<int> constraints, variables;
  std::vector<double> capacities;
  for (int c = 0; c < num_constraints; ++c) {
    const double cap = 10.0 + 190.0 * rng.next_double();
    capacities.push_back(cap);
    constraints.push_back(sys.new_constraint(cap));
  }
  std::vector<std::vector<int>> memberships(static_cast<std::size_t>(num_variables));
  std::vector<double> bounds(static_cast<std::size_t>(num_variables));
  for (int v = 0; v < num_variables; ++v) {
    const bool bounded = rng.next_double() < 0.5;
    const double bound = bounded ? 1.0 + 50.0 * rng.next_double() : sf::MaxMinSystem::kUnbounded;
    bounds[static_cast<std::size_t>(v)] = bound;
    const int var = sys.new_variable(1.0, bound);
    variables.push_back(var);
    // Attach to 1..3 distinct random constraints (or leave unconstrained if
    // bounded).
    const int attach_count =
        bounded && rng.next_double() < 0.2 ? 0 : 1 + static_cast<int>(rng.next_in_range(0, 2));
    for (int k = 0; k < attach_count; ++k) {
      const int c = static_cast<int>(rng.next_in_range(0, num_constraints - 1));
      bool already = false;
      for (int existing : memberships[static_cast<std::size_t>(v)]) {
        if (existing == c) already = true;
      }
      if (already) continue;
      memberships[static_cast<std::size_t>(v)].push_back(c);
      sys.attach(var, constraints[static_cast<std::size_t>(c)]);
    }
  }
  sys.solve();

  constexpr double kTol = 1e-7;
  // Feasibility: no constraint is over capacity; no variable above bound.
  for (int c = 0; c < num_constraints; ++c) {
    EXPECT_LE(sys.constraint_usage(constraints[static_cast<std::size_t>(c)]),
              capacities[static_cast<std::size_t>(c)] * (1 + kTol));
  }
  for (int v = 0; v < num_variables; ++v) {
    EXPECT_LE(sys.value(variables[static_cast<std::size_t>(v)]),
              bounds[static_cast<std::size_t>(v)] * (1 + kTol));
    EXPECT_GT(sys.value(variables[static_cast<std::size_t>(v)]), 0.0);
  }
  // Max-min optimality certificate: every variable is either at its bound or
  // crosses at least one saturated constraint on which it has a maximal
  // allocation among that constraint's members.
  for (int v = 0; v < num_variables; ++v) {
    const double val = sys.value(variables[static_cast<std::size_t>(v)]);
    if (val >= bounds[static_cast<std::size_t>(v)] * (1 - kTol)) continue;  // at bound
    bool certified = false;
    for (int c : memberships[static_cast<std::size_t>(v)]) {
      const double usage = sys.constraint_usage(constraints[static_cast<std::size_t>(c)]);
      const double cap = capacities[static_cast<std::size_t>(c)];
      if (usage < cap * (1 - 1e-6)) continue;  // not saturated
      // v must not be dominated on this saturated constraint.
      double max_member = 0;
      for (int other = 0; other < num_variables; ++other) {
        bool member = false;
        for (int oc : memberships[static_cast<std::size_t>(other)]) {
          if (oc == c) member = true;
        }
        if (member) {
          max_member = std::max(max_member, sys.value(variables[static_cast<std::size_t>(other)]));
        }
      }
      if (val >= max_member * (1 - 1e-6)) {
        certified = true;
        break;
      }
    }
    EXPECT_TRUE(certified) << "variable " << v << " is neither bounded nor on a saturated "
                           << "constraint where it is maximal (value " << val << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSystems, MaxMinPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 33));
