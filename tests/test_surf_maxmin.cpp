#include "surf/maxmin.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace sf = smpi::surf;

TEST(MaxMin, SingleFlowGetsFullCapacity) {
  sf::MaxMinSystem sys;
  const int link = sys.new_constraint(100.0);
  const int flow = sys.new_variable();
  sys.attach(flow, link);
  sys.solve();
  EXPECT_DOUBLE_EQ(sys.value(flow), 100.0);
}

TEST(MaxMin, TwoFlowsShareEqually) {
  sf::MaxMinSystem sys;
  const int link = sys.new_constraint(100.0);
  const int f1 = sys.new_variable();
  const int f2 = sys.new_variable();
  sys.attach(f1, link);
  sys.attach(f2, link);
  sys.solve();
  EXPECT_DOUBLE_EQ(sys.value(f1), 50.0);
  EXPECT_DOUBLE_EQ(sys.value(f2), 50.0);
}

TEST(MaxMin, BoundedFlowLeavesCapacityToOthers) {
  sf::MaxMinSystem sys;
  const int link = sys.new_constraint(100.0);
  const int slow = sys.new_variable(1.0, 10.0);
  const int fast = sys.new_variable();
  sys.attach(slow, link);
  sys.attach(fast, link);
  sys.solve();
  EXPECT_DOUBLE_EQ(sys.value(slow), 10.0);
  EXPECT_DOUBLE_EQ(sys.value(fast), 90.0);
}

TEST(MaxMin, WeightsSkewTheShares) {
  sf::MaxMinSystem sys;
  const int link = sys.new_constraint(90.0);
  const int heavy = sys.new_variable(2.0);
  const int light = sys.new_variable(1.0);
  sys.attach(heavy, link);
  sys.attach(light, link);
  sys.solve();
  EXPECT_DOUBLE_EQ(sys.value(heavy), 60.0);
  EXPECT_DOUBLE_EQ(sys.value(light), 30.0);
}

TEST(MaxMin, ClassicLinearNetwork) {
  // The textbook example: flow 0 crosses both links, flows 1 and 2 cross one
  // link each. Max-min: f0 = 50, f1 = 50, f2 = 50 with capacities 100.
  sf::MaxMinSystem sys;
  const int l1 = sys.new_constraint(100.0);
  const int l2 = sys.new_constraint(100.0);
  const int f0 = sys.new_variable();
  const int f1 = sys.new_variable();
  const int f2 = sys.new_variable();
  sys.attach(f0, l1);
  sys.attach(f0, l2);
  sys.attach(f1, l1);
  sys.attach(f2, l2);
  sys.solve();
  EXPECT_DOUBLE_EQ(sys.value(f0), 50.0);
  EXPECT_DOUBLE_EQ(sys.value(f1), 50.0);
  EXPECT_DOUBLE_EQ(sys.value(f2), 50.0);
}

TEST(MaxMin, AsymmetricBottleneck) {
  // Long flow crosses a thin link (30) and a fat link (100); a short flow
  // shares the fat link. The long flow is bottlenecked at 30 by the thin
  // link, leaving 70 to the short one.
  sf::MaxMinSystem sys;
  const int thin = sys.new_constraint(30.0);
  const int fat = sys.new_constraint(100.0);
  const int long_flow = sys.new_variable();
  const int short_flow = sys.new_variable();
  sys.attach(long_flow, thin);
  sys.attach(long_flow, fat);
  sys.attach(short_flow, fat);
  sys.solve();
  EXPECT_DOUBLE_EQ(sys.value(long_flow), 30.0);
  EXPECT_DOUBLE_EQ(sys.value(short_flow), 70.0);
}

TEST(MaxMin, UnconstrainedVariableTakesItsBound) {
  sf::MaxMinSystem sys;
  const int v = sys.new_variable(1.0, 42.0);
  sys.solve();
  EXPECT_DOUBLE_EQ(sys.value(v), 42.0);
}

TEST(MaxMin, UnconstrainedUnboundedVariableIsRejected) {
  sf::MaxMinSystem sys;
  sys.new_variable();
  EXPECT_THROW(sys.solve(), smpi::util::ContractError);
}

TEST(MaxMin, ReleaseRedistributesCapacity) {
  sf::MaxMinSystem sys;
  const int link = sys.new_constraint(100.0);
  const int f1 = sys.new_variable();
  const int f2 = sys.new_variable();
  sys.attach(f1, link);
  sys.attach(f2, link);
  sys.solve();
  EXPECT_DOUBLE_EQ(sys.value(f1), 50.0);
  sys.release_variable(f2);
  sys.solve();
  EXPECT_DOUBLE_EQ(sys.value(f1), 100.0);
  EXPECT_THROW(sys.value(f2), smpi::util::ContractError);
}

TEST(MaxMin, VariableIdsAreRecycled) {
  sf::MaxMinSystem sys;
  const int link = sys.new_constraint(10.0);
  const int a = sys.new_variable();
  sys.attach(a, link);
  sys.release_variable(a);
  const int b = sys.new_variable();
  EXPECT_EQ(a, b);  // recycled id
  sys.attach(b, link);
  sys.solve();
  EXPECT_DOUBLE_EQ(sys.value(b), 10.0);
}

TEST(MaxMin, SolveIsLazy) {
  sf::MaxMinSystem sys;
  const int link = sys.new_constraint(10.0);
  const int v = sys.new_variable();
  sys.attach(v, link);
  EXPECT_TRUE(sys.dirty());
  sys.solve();
  EXPECT_FALSE(sys.dirty());
  sys.set_capacity(link, 20.0);
  EXPECT_TRUE(sys.dirty());
  sys.solve();
  EXPECT_DOUBLE_EQ(sys.value(v), 20.0);
}

TEST(MaxMin, ReleaseKeepsUsageAndDirtyConsistent) {
  // Regression: a released variable must stop contributing to
  // constraint_usage() immediately, and the release must leave the system
  // dirty so its constraints are re-solved (under the incremental path a
  // missed dirty mark would freeze the survivors at their old shares).
  sf::MaxMinSystem sys;
  const int link = sys.new_constraint(100.0);
  const int f1 = sys.new_variable();
  const int f2 = sys.new_variable();
  sys.attach(f1, link);
  sys.attach(f2, link);
  sys.solve();
  EXPECT_DOUBLE_EQ(sys.constraint_usage(link), 100.0);
  sys.release_variable(f2);
  EXPECT_TRUE(sys.dirty());
  EXPECT_DOUBLE_EQ(sys.constraint_usage(link), 50.0);  // f2 gone, f1 not yet re-solved
  sys.solve();
  EXPECT_DOUBLE_EQ(sys.constraint_usage(link), 100.0);  // f1 re-expanded
  EXPECT_DOUBLE_EQ(sys.value(f1), 100.0);
  EXPECT_FALSE(sys.dirty());
}

TEST(MaxMin, IncrementalSolveTouchesOnlyAffectedComponents) {
  // Two disjoint links with two flows each; perturbing one component must
  // not re-solve the other.
  sf::MaxMinSystem sys;
  const int link_a = sys.new_constraint(100.0);
  const int link_b = sys.new_constraint(60.0);
  const int a1 = sys.new_variable();
  const int a2 = sys.new_variable();
  const int b1 = sys.new_variable();
  const int b2 = sys.new_variable();
  sys.attach(a1, link_a);
  sys.attach(a2, link_a);
  sys.attach(b1, link_b);
  sys.attach(b2, link_b);
  sys.solve();
  const auto visited_initial = sys.vars_touched();

  sys.set_capacity(link_b, 80.0);
  sys.solve();
  // Only b1/b2 re-solved.
  EXPECT_EQ(sys.vars_touched() - visited_initial, 2u);
  EXPECT_EQ(sys.last_solved_variables().size(), 2u);
  EXPECT_DOUBLE_EQ(sys.value(a1), 50.0);
  EXPECT_DOUBLE_EQ(sys.value(b1), 40.0);
  EXPECT_DOUBLE_EQ(sys.value(b2), 40.0);
}

TEST(MaxMin, AttachBridgingTwoComponentsResolvesBoth) {
  sf::MaxMinSystem sys;
  const int link_a = sys.new_constraint(100.0);
  const int link_b = sys.new_constraint(10.0);
  const int a1 = sys.new_variable();
  sys.attach(a1, link_a);
  const int b1 = sys.new_variable();
  sys.attach(b1, link_b);
  sys.solve();
  EXPECT_DOUBLE_EQ(sys.value(a1), 100.0);
  // A new flow crossing both links merges the components: everyone re-solves.
  const int bridge = sys.new_variable();
  sys.attach(bridge, link_a);
  sys.attach(bridge, link_b);
  sys.solve();
  EXPECT_EQ(sys.last_solved_variables().size(), 3u);
  EXPECT_DOUBLE_EQ(sys.value(bridge), 5.0);   // squeezed on link_b
  EXPECT_DOUBLE_EQ(sys.value(b1), 5.0);
  EXPECT_DOUBLE_EQ(sys.value(a1), 95.0);      // gets the rest of link_a
}

// ---------------------------------------------------------------------------
// Property tests over randomized systems.
// ---------------------------------------------------------------------------

class MaxMinPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MaxMinPropertyTest, AllocationsAreFeasibleAndMaxMinOptimal) {
  smpi::util::Xoshiro256StarStar rng(GetParam());
  sf::MaxMinSystem sys;

  const int num_constraints = 2 + static_cast<int>(rng.next_in_range(0, 8));
  const int num_variables = 1 + static_cast<int>(rng.next_in_range(0, 30));
  std::vector<int> constraints, variables;
  std::vector<double> capacities;
  for (int c = 0; c < num_constraints; ++c) {
    const double cap = 10.0 + 190.0 * rng.next_double();
    capacities.push_back(cap);
    constraints.push_back(sys.new_constraint(cap));
  }
  std::vector<std::vector<int>> memberships(static_cast<std::size_t>(num_variables));
  std::vector<double> bounds(static_cast<std::size_t>(num_variables));
  for (int v = 0; v < num_variables; ++v) {
    const bool bounded = rng.next_double() < 0.5;
    const double bound = bounded ? 1.0 + 50.0 * rng.next_double() : sf::MaxMinSystem::kUnbounded;
    bounds[static_cast<std::size_t>(v)] = bound;
    const int var = sys.new_variable(1.0, bound);
    variables.push_back(var);
    // Attach to 1..3 distinct random constraints (or leave unconstrained if
    // bounded).
    const int attach_count =
        bounded && rng.next_double() < 0.2 ? 0 : 1 + static_cast<int>(rng.next_in_range(0, 2));
    for (int k = 0; k < attach_count; ++k) {
      const int c = static_cast<int>(rng.next_in_range(0, num_constraints - 1));
      bool already = false;
      for (int existing : memberships[static_cast<std::size_t>(v)]) {
        if (existing == c) already = true;
      }
      if (already) continue;
      memberships[static_cast<std::size_t>(v)].push_back(c);
      sys.attach(var, constraints[static_cast<std::size_t>(c)]);
    }
  }
  sys.solve();

  constexpr double kTol = 1e-7;
  // Feasibility: no constraint is over capacity; no variable above bound.
  for (int c = 0; c < num_constraints; ++c) {
    EXPECT_LE(sys.constraint_usage(constraints[static_cast<std::size_t>(c)]),
              capacities[static_cast<std::size_t>(c)] * (1 + kTol));
  }
  for (int v = 0; v < num_variables; ++v) {
    EXPECT_LE(sys.value(variables[static_cast<std::size_t>(v)]),
              bounds[static_cast<std::size_t>(v)] * (1 + kTol));
    EXPECT_GT(sys.value(variables[static_cast<std::size_t>(v)]), 0.0);
  }
  // Max-min optimality certificate: every variable is either at its bound or
  // crosses at least one saturated constraint on which it has a maximal
  // allocation among that constraint's members.
  for (int v = 0; v < num_variables; ++v) {
    const double val = sys.value(variables[static_cast<std::size_t>(v)]);
    if (val >= bounds[static_cast<std::size_t>(v)] * (1 - kTol)) continue;  // at bound
    bool certified = false;
    for (int c : memberships[static_cast<std::size_t>(v)]) {
      const double usage = sys.constraint_usage(constraints[static_cast<std::size_t>(c)]);
      const double cap = capacities[static_cast<std::size_t>(c)];
      if (usage < cap * (1 - 1e-6)) continue;  // not saturated
      // v must not be dominated on this saturated constraint.
      double max_member = 0;
      for (int other = 0; other < num_variables; ++other) {
        bool member = false;
        for (int oc : memberships[static_cast<std::size_t>(other)]) {
          if (oc == c) member = true;
        }
        if (member) {
          max_member = std::max(max_member, sys.value(variables[static_cast<std::size_t>(other)]));
        }
      }
      if (val >= max_member * (1 - 1e-6)) {
        certified = true;
        break;
      }
    }
    EXPECT_TRUE(certified) << "variable " << v << " is neither bounded nor on a saturated "
                           << "constraint where it is maximal (value " << val << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSystems, MaxMinPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 33));

// ---------------------------------------------------------------------------
// Three-way equivalence: lazy (modified-set), component-incremental, and the
// full-reference solver receive an identical randomized interleaving of
// new/attach/release/set_capacity/set_bound ops, and after every step all
// three allocations must match within 1e-9.
// ---------------------------------------------------------------------------

class MaxMinEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MaxMinEquivalenceTest, LazyAndComponentMatchFullReferenceOnEveryStep) {
  smpi::util::Xoshiro256StarStar rng(GetParam() * 7919 + 13);
  sf::MaxMinSystem lazy;
  sf::MaxMinSystem comp;
  sf::MaxMinSystem ref;
  ASSERT_EQ(lazy.mode(), sf::SolveMode::kLazy);  // the default
  comp.set_mode(sf::SolveMode::kComponent);
  ref.set_mode(sf::SolveMode::kFull);
  sf::MaxMinSystem* systems[] = {&lazy, &comp, &ref};

  constexpr int kConstraints = 12;
  constexpr int kSteps = 250;
  std::vector<std::array<int, 3>> cons;
  for (int c = 0; c < kConstraints; ++c) {
    const double capacity = 1.0 + rng.next_double() * 99.0;
    cons.push_back({lazy.new_constraint(capacity), comp.new_constraint(capacity),
                    ref.new_constraint(capacity)});
  }

  std::vector<std::array<int, 3>> live;

  for (int step = 0; step < kSteps; ++step) {
    const double dice = rng.next_double();
    if (dice < 0.45 || live.empty()) {
      // New variable attached to 1-3 distinct constraints.
      const double weight = 0.5 + rng.next_double() * 2.0;
      const double bound = rng.next_double() < 0.5
                               ? 1.0 + rng.next_double() * 49.0
                               : sf::MaxMinSystem::kUnbounded;
      const int attach_count = 1 + static_cast<int>(rng.next_in_range(0, 2));
      std::vector<int> chosen;
      while (static_cast<int>(chosen.size()) < attach_count) {
        const int c = static_cast<int>(rng.next_in_range(0, kConstraints - 1));
        if (std::find(chosen.begin(), chosen.end(), c) == chosen.end()) chosen.push_back(c);
      }
      std::array<int, 3> var = {lazy.new_variable(weight, bound),
                                comp.new_variable(weight, bound),
                                ref.new_variable(weight, bound)};
      for (int c : chosen) {
        for (int s = 0; s < 3; ++s) {
          systems[s]->attach(var[static_cast<std::size_t>(s)],
                             cons[static_cast<std::size_t>(c)][static_cast<std::size_t>(s)]);
        }
      }
      live.push_back(var);
    } else if (dice < 0.70) {
      const auto idx = static_cast<std::size_t>(rng.next_in_range(0, live.size() - 1));
      for (int s = 0; s < 3; ++s) {
        systems[s]->release_variable(live[idx][static_cast<std::size_t>(s)]);
      }
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    } else if (dice < 0.85) {
      const auto c = static_cast<std::size_t>(rng.next_in_range(0, kConstraints - 1));
      const double capacity = 1.0 + rng.next_double() * 99.0;
      for (int s = 0; s < 3; ++s) systems[s]->set_capacity(cons[c][static_cast<std::size_t>(s)], capacity);
    } else {
      const auto idx = static_cast<std::size_t>(rng.next_in_range(0, live.size() - 1));
      const double bound = 1.0 + rng.next_double() * 49.0;
      for (int s = 0; s < 3; ++s) systems[s]->set_bound(live[idx][static_cast<std::size_t>(s)], bound);
    }

    for (int s = 0; s < 3; ++s) systems[s]->solve();
    ASSERT_EQ(lazy.active_variable_count(), ref.active_variable_count());
    ASSERT_EQ(comp.active_variable_count(), ref.active_variable_count());
    for (const auto& var : live) {
      ASSERT_NEAR(lazy.value(var[0]), ref.value(var[2]), 1e-9)
          << "step " << step << ": lazy diverged from reference";
      ASSERT_NEAR(comp.value(var[1]), ref.value(var[2]), 1e-9)
          << "step " << step << ": component diverged from reference";
    }
    for (int c = 0; c < kConstraints; ++c) {
      ASSERT_NEAR(lazy.constraint_usage(cons[static_cast<std::size_t>(c)][0]),
                  ref.constraint_usage(cons[static_cast<std::size_t>(c)][2]), 1e-9)
          << "step " << step << " usage diverged on constraint " << c;
    }
    // Observation-layer invariants, after every solve: no constraint above
    // capacity (within 1e-9 relative), and "saturated" means usage equals
    // capacity — the saturation ledger depends on both.
    for (int s = 0; s < 3; ++s) {
      for (int c = 0; c < kConstraints; ++c) {
        const int id = cons[static_cast<std::size_t>(c)][static_cast<std::size_t>(s)];
        const double usage = systems[s]->constraint_usage(id);
        const double capacity = systems[s]->constraint_capacity(id);
        ASSERT_LE(usage, capacity * (1 + 1e-9))
            << "step " << step << " system " << s << ": constraint " << c << " over capacity";
        if (systems[s]->constraint_saturated(id)) {
          ASSERT_NEAR(usage, capacity, 1e-9 * capacity)
              << "step " << step << " system " << s << ": constraint " << c
              << " flagged saturated but usage != capacity";
        }
      }
    }
  }
  // The component path must have done strictly less filling work than the
  // reference (which revisits every variable on every solve). The lazy path
  // may exceed the component path on this deliberately dense 12-constraint
  // mesh (promotion rounds re-fill the grown set) — its win is on sparse
  // topologies, pinned by LazySolveStopsAtUnsaturatedHub below.
  EXPECT_LT(comp.vars_touched(), ref.vars_touched());
}

INSTANTIATE_TEST_SUITE_P(RandomInterleavings, MaxMinEquivalenceTest,
                         ::testing::Range<std::uint64_t>(1, 17));

// ---------------------------------------------------------------------------
// The modified-set payoff: on a star topology (per-flow leaf links, one
// shared hub), a leaf mutation whose effect is absorbed locally must not
// flood the whole component the way the component-incremental path does.
// ---------------------------------------------------------------------------

TEST(MaxMinLazy, LazySolveStopsAtUnsaturatedHub) {
  constexpr int kFlows = 32;
  sf::MaxMinSystem lazy;
  sf::MaxMinSystem comp;
  comp.set_mode(sf::SolveMode::kComponent);
  sf::MaxMinSystem* systems[] = {&lazy, &comp};

  // Hub with plenty of headroom; every flow crosses its own leaf plus the
  // hub, and is bound below the leaf capacity.
  std::vector<int> leaves_lazy, leaves_comp;
  const int hub_lazy = lazy.new_constraint(1e6);
  const int hub_comp = comp.new_constraint(1e6);
  std::vector<int> flows_lazy, flows_comp;
  for (int f = 0; f < kFlows; ++f) {
    leaves_lazy.push_back(lazy.new_constraint(10.0));
    leaves_comp.push_back(comp.new_constraint(10.0));
    flows_lazy.push_back(lazy.new_variable(1.0, 5.0));
    flows_comp.push_back(comp.new_variable(1.0, 5.0));
    lazy.attach(flows_lazy.back(), leaves_lazy.back());
    lazy.attach(flows_lazy.back(), hub_lazy);
    comp.attach(flows_comp.back(), leaves_comp.back());
    comp.attach(flows_comp.back(), hub_comp);
  }
  for (auto* sys : systems) sys->solve();

  const auto lazy_before = lazy.vars_touched();
  const auto comp_before = comp.vars_touched();

  // Shrink one leaf below its flow's bound: that flow must drop to 3, but
  // the hub has so much headroom that nothing else can change.
  lazy.set_capacity(leaves_lazy[0], 3.0);
  comp.set_capacity(leaves_comp[0], 3.0);
  lazy.solve();
  comp.solve();
  EXPECT_NEAR(lazy.value(flows_lazy[0]), 3.0, 1e-9);

  for (int f = 0; f < kFlows; ++f) {
    EXPECT_NEAR(lazy.value(flows_lazy[static_cast<std::size_t>(f)]),
                comp.value(flows_comp[static_cast<std::size_t>(f)]), 1e-9);
  }
  // The hub links every flow into one component: the component path re-fills
  // all of them, the lazy path touches only the mutated leaf's flow.
  EXPECT_EQ(comp.vars_touched() - comp_before, static_cast<std::uint64_t>(kFlows));
  EXPECT_EQ(lazy.vars_touched() - lazy_before, 1u);
  EXPECT_LT(lazy.last_solved_variables().size(), comp.last_solved_variables().size());
}
