// Static trace checker: unmatched p2p counterparts, collective divergence,
// and the wildcard-receive soundness rule (no per-bucket findings for ranks
// that post MPI_ANY_SOURCE / MPI_ANY_TAG).
#include "trace/check.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "trace/reader.hpp"

namespace st = smpi::trace;

namespace {

st::TiRecord rec(st::TiOp op) {
  st::TiRecord r;
  r.op = op;
  return r;
}

st::TiRecord p2p(st::TiOp op, long long peer, long long tag) {
  st::TiRecord r;
  r.op = op;
  r.peer = peer;
  r.tag = tag;
  r.count = 1;
  r.elem = 8;
  return r;
}

// Two ranks exchanging one tagged message each, plus a barrier.
st::TiTrace clean_trace() {
  st::TiTrace trace;
  trace.nranks = 2;
  trace.app = "test";
  trace.ranks.resize(2);
  for (int rank = 0; rank < 2; ++rank) {
    auto& records = trace.ranks[static_cast<std::size_t>(rank)];
    records.push_back(rec(st::TiOp::kInit));
    records.push_back(p2p(st::TiOp::kIsend, rank ^ 1, 5));
    records.push_back(p2p(st::TiOp::kIrecv, rank ^ 1, 5));
    records.push_back(rec(st::TiOp::kBarrier));
    records.push_back(rec(st::TiOp::kFinalize));
  }
  return trace;
}

bool any_finding_contains(const st::TraceCheckReport& report, const std::string& needle) {
  for (const auto& finding : report.findings) {
    if (finding.message.find(needle) != std::string::npos) return true;
  }
  return false;
}

}  // namespace

TEST(TraceCheck, CleanTraceHasNoFindings) {
  const auto report = st::check_trace(clean_trace());
  EXPECT_TRUE(report.ok()) << report.findings.front().message;
}

TEST(TraceCheck, MismatchedTagIsFlaggedBothWays) {
  auto trace = clean_trace();
  trace.ranks[0][1].tag = 99;  // rank 0's send no longer matches rank 1's recv
  const auto report = st::check_trace(trace);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(any_finding_contains(report, "tag 99")) << "unmatched send must be flagged";
  EXPECT_TRUE(any_finding_contains(report, "without a matching send"));
}

TEST(TraceCheck, MissingRecvIsFlagged) {
  auto trace = clean_trace();
  auto& r1 = trace.ranks[1];
  r1.erase(r1.begin() + 2);  // drop rank 1's irecv
  const auto report = st::check_trace(trace);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(any_finding_contains(report, "rank 1: peers send 1 message but it posts 0 receives"));
}

TEST(TraceCheck, WildcardRecvSuppressesPerBucketFindings) {
  auto trace = clean_trace();
  trace.ranks[0][1].tag = 99;                 // would be a per-bucket mismatch...
  trace.ranks[1][2].tag = st::kTagAny;        // ...but rank 1 receives ANY_TAG
  const auto report = st::check_trace(trace);
  EXPECT_TRUE(report.ok()) << report.findings.front().message;
}

TEST(TraceCheck, WildcardStillChecksAggregateBalance) {
  auto trace = clean_trace();
  trace.ranks[1][2].peer = st::kPeerAny;  // wildcard recv...
  auto& r0 = trace.ranks[0];
  r0.insert(r0.begin() + 2, p2p(st::TiOp::kIsend, 1, 7));  // ...but 2 sends, 1 recv
  const auto report = st::check_trace(trace);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(any_finding_contains(report, "peers send 2 messages but it posts 1 receive"));
}

TEST(TraceCheck, CollectiveSequenceDivergenceIsFlagged) {
  auto trace = clean_trace();
  trace.ranks[1][3] = rec(st::TiOp::kAllreduce);  // rank 0 enters barrier, rank 1 allreduce
  const auto report = st::check_trace(trace);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(any_finding_contains(report, "collective #0 is allreduce but rank 0 enters barrier"));
}

TEST(TraceCheck, CollectiveCountMismatchIsFlagged) {
  auto trace = clean_trace();
  trace.ranks[0].insert(trace.ranks[0].begin() + 4, rec(st::TiOp::kBarrier));
  const auto report = st::check_trace(trace);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(any_finding_contains(report, "rank 1: enters 1 collective but rank 0 enters 2"));
}

TEST(TraceCheck, SendrecvContributesBothSides) {
  st::TiTrace trace;
  trace.nranks = 2;
  trace.ranks.resize(2);
  for (int rank = 0; rank < 2; ++rank) {
    st::TiRecord r;
    r.op = st::TiOp::kSendrecv;
    r.peer = rank ^ 1;   // send side
    r.tag = 3;
    r.count = 4;
    r.elem = 8;
    r.peer2 = rank ^ 1;  // recv side
    r.tag2 = 3;
    r.count2 = 4;
    r.elem2 = 8;
    auto& records = trace.ranks[static_cast<std::size_t>(rank)];
    records.push_back(rec(st::TiOp::kInit));
    records.push_back(r);
    records.push_back(rec(st::TiOp::kFinalize));
  }
  EXPECT_TRUE(st::check_trace(trace).ok());
  trace.ranks[1][1].tag2 = 4;  // rank 1 now receives a tag nobody sends
  const auto report = st::check_trace(trace);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(any_finding_contains(report, "tag 4"));
}

TEST(TraceCheck, ProcNullSidesAreIgnored) {
  auto trace = clean_trace();
  // A stencil edge rank sends to MPI_PROC_NULL: no counterpart required.
  trace.ranks[0].insert(trace.ranks[0].begin() + 2, p2p(st::TiOp::kIsend, st::kPeerNull, 0));
  trace.ranks[1].insert(trace.ranks[1].begin() + 2, p2p(st::TiOp::kIrecv, st::kPeerNull, 0));
  EXPECT_TRUE(st::check_trace(trace).ok());
}

TEST(TraceCheck, OutOfWorldPeerIsFlagged) {
  auto trace = clean_trace();
  trace.ranks[0][1].peer = 7;  // only ranks 0..1 exist
  const auto report = st::check_trace(trace);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(any_finding_contains(report, "outside the 2-rank trace"));
}
