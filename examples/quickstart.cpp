// Quickstart: simulate a 16-process MPI program on a cluster you describe in
// a few lines — no real cluster required (the paper's classroom use case).
//
// The program below is ordinary MPI code: a ring exchange followed by an
// allreduce. It executes for real (on-line simulation); only time is
// simulated.
#include <cstdio>
#include <vector>

#include "platform/builders.hpp"
#include "smpi/mpi.h"
#include "smpi/smpi.hpp"

namespace {

void ring_program(int /*argc*/, char** /*argv*/) {
  MPI_Init(nullptr, nullptr);
  int rank = 0, size = 0;
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  MPI_Comm_size(MPI_COMM_WORLD, &size);

  char host[256];
  int len = 0;
  MPI_Get_processor_name(host, &len);
  if (rank == 0) std::printf("ring of %d processes, rank 0 on %s\n", size, host);

  // Pass a growing token around the ring.
  const int right = (rank + 1) % size;
  const int left = (rank - 1 + size) % size;
  std::vector<double> token(1 << 16, rank);
  const double t0 = MPI_Wtime();
  MPI_Sendrecv(token.data(), 1 << 16, MPI_DOUBLE, right, 0, token.data(), 1 << 16, MPI_DOUBLE,
               left, 0, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
  const double ring_time = MPI_Wtime() - t0;

  // Then agree on the slowest link experience.
  double max_time = 0;
  MPI_Allreduce(&ring_time, &max_time, 1, MPI_DOUBLE, MPI_MAX, MPI_COMM_WORLD);
  if (rank == 0) {
    std::printf("ring step: %.3f ms (max over ranks %.3f ms)\n", ring_time * 1e3,
                max_time * 1e3);
  }
  MPI_Finalize();
}

}  // namespace

int main() {
  // A 16-node cluster: GbE NICs behind one non-blocking switch.
  smpi::platform::FlatClusterParams cluster;
  cluster.nodes = 16;
  cluster.link_bandwidth_bps = 125e6;  // 1 Gb/s
  cluster.link_latency_s = 50e-6;
  auto platform = smpi::platform::build_flat_cluster(cluster);

  smpi::core::SmpiConfig config;  // flow-level network model, SMPI defaults
  smpi::core::SmpiWorld world(platform, config);
  world.run(16, ring_program);

  std::printf("simulated execution time: %.3f ms (wall-clock: milliseconds)\n",
              world.simulated_time() * 1e3);
  return 0;
}
