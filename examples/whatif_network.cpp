// "What if?" platform exploration (§1, §6): predict how a communication-
// bound application would behave on hardware you do not own, by sweeping the
// target platform's network parameters.
//
// The application is a pairwise all-to-all of 1 MiB blocks over 16 processes
// — the kind of kernel whose performance depends entirely on the
// interconnect. We sweep node NIC speed and switch latency.
#include <cstdio>
#include <vector>

#include "platform/builders.hpp"
#include "smpi/coll.h"
#include "smpi/mpi.h"
#include "smpi/smpi.hpp"
#include "util/table.hpp"

namespace {

constexpr int kProcs = 16;
constexpr int kBlock = 1 << 20;

void alltoall_app(int /*argc*/, char** /*argv*/) {
  MPI_Init(nullptr, nullptr);
  std::vector<char> send(static_cast<std::size_t>(kProcs) * kBlock, 'x');
  std::vector<char> recv(static_cast<std::size_t>(kProcs) * kBlock);
  smpi::coll::alltoall_pairwise(send.data(), kBlock, MPI_CHAR, recv.data(), kBlock, MPI_CHAR,
                                MPI_COMM_WORLD);
  MPI_Finalize();
}

double simulate(double bandwidth_bps, double latency_s) {
  smpi::platform::FlatClusterParams cluster;
  cluster.nodes = kProcs;
  cluster.link_bandwidth_bps = bandwidth_bps;
  cluster.link_latency_s = latency_s;
  auto platform = smpi::platform::build_flat_cluster(cluster);
  smpi::core::SmpiConfig config;
  smpi::core::SmpiWorld world(platform, config);
  world.run(kProcs, alltoall_app);
  return world.simulated_time();
}

}  // namespace

int main() {
  std::printf("pairwise all-to-all, %d processes x %d MiB blocks\n", kProcs, kBlock >> 20);
  std::printf("predicted completion time by target interconnect:\n\n");
  smpi::util::Table table({"NIC", "lat=20us", "lat=50us", "lat=200us"});
  const double gig = 125e6;
  for (const double bw : {gig, 2.5 * gig, 10 * gig}) {
    std::vector<std::string> row;
    char label[32];
    std::snprintf(label, sizeof label, "%.0fGb/s", bw * 8 / 1e9);
    row.emplace_back(label);
    for (const double lat : {20e-6, 50e-6, 200e-6}) {
      row.push_back(smpi::util::Table::num(simulate(bw, lat), 4) + "s");
    }
    table.add_row(row);
  }
  table.print();
  std::printf("\n(10x the NIC speed buys ~10x here: the kernel is bandwidth-bound;\n"
              "latency only matters once the blocks get small.)\n");
  return 0;
}
