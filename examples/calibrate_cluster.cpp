// The §6 calibration workflow: benchmark a ping-pong on the (simulated)
// testbed, fit the piece-wise linear model, and print the 8 parameters plus
// the accuracy of each candidate model — everything a user needs to
// instantiate SMPI for their own cluster.
#include <cmath>
#include <cstdio>
#include <string>

#include "calib/calibration.hpp"
#include "platform/builders.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace smpi;
  auto griffon = platform::build_griffon();

  std::printf("calibrating on griffon nodes 0 and 1 (packet-level ground truth,\n");
  std::printf("OpenMPI personality) ...\n\n");
  calib::PingPongOptions options;
  options.sizes = calib::PingPongOptions::default_sizes(16u << 20, 2);
  const auto result = calib::calibrate(griffon, 0, 1, calib::ground_truth_config(), options);

  std::printf("piece-wise linear model (%d parameters):\n",
              result.piecewise.parameter_count());
  util::Table segments({"segment", "up to", "alpha (latency)", "beta (bandwidth)"});
  for (std::size_t s = 0; s < result.piecewise.segments.size(); ++s) {
    const auto& seg = result.piecewise.segments[s];
    segments.add_row({std::to_string(s + 1),
                      std::isinf(seg.max_bytes)
                          ? "inf"
                          : util::format_bytes(static_cast<std::uint64_t>(seg.max_bytes)),
                      util::format_duration(seg.latency_s), util::format_rate(seg.bandwidth_bps)});
  }
  segments.print();

  std::printf("\naccuracy against the measurements (logarithmic error, §7.1):\n");
  util::Table errors({"model", "avg error", "worst error"});
  const auto err_pw = calib::evaluate_model(result.piecewise, result.measurements);
  const auto err_best = calib::evaluate_model(result.best_affine, result.measurements);
  const auto err_def = calib::evaluate_model(result.default_affine, result.measurements);
  auto pct = [](double fraction) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2f%%", fraction * 100);
    return std::string(buf);
  };
  errors.add_row({"piece-wise linear", pct(err_pw.mean_fraction()), pct(err_pw.max_fraction())});
  errors.add_row({"best-fit affine", pct(err_best.mean_fraction()), pct(err_best.max_fraction())});
  errors.add_row({"default affine", pct(err_def.mean_fraction()), pct(err_def.max_fraction())});
  errors.print();

  std::printf("\nthe fitted factors are portable: reuse them on any platform via\n"
              "calib::calibrated_smpi_config(result.piecewise_factors()).\n");
  return 0;
}
