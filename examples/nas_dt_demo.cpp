// Run the NAS DT benchmark on a simulated griffon cluster — the paper's
// §7.1.4 experiment at example scale. Compares the WH and BH variants and
// verifies the dataflow checksum against a serial reference, demonstrating
// that the application really executed (on-line simulation).
#include <cmath>
#include <cstdio>

#include "apps/dt.hpp"
#include "platform/builders.hpp"
#include "smpi/smpi.hpp"

int main() {
  using namespace smpi;
  auto griffon = platform::build_griffon();

  std::printf("NAS DT class S on griffon (92 nodes simulated on this machine)\n\n");
  for (const auto graph : {apps::DtGraph::kWhiteHole, apps::DtGraph::kBlackHole,
                           apps::DtGraph::kShuffle}) {
    apps::DtParams params;
    params.graph = graph;
    params.cls = apps::DtClass::kS;
    const int nprocs = apps::dt_process_count(params.graph, params.cls);

    core::SmpiConfig config;
    core::SmpiWorld world(griffon, config);
    world.run(nprocs, apps::make_dt_app(params));

    const double simulated = apps::dt_last_checksum();
    const double reference = apps::dt_reference_checksum(params);
    const bool verified = std::fabs(simulated - reference) <= reference * 1e-12;
    std::printf("%s: %3d processes  time %8.3f ms  checksum %.6e  %s\n",
                apps::dt_graph_name(graph), nprocs, world.simulated_time() * 1e3, simulated,
                verified ? "VERIFIED" : "FAILED");
  }
  std::printf("\nBH collects into one sink (its inbound link is the bottleneck), so it\n"
              "runs slower than WH — the trend Figure 15 of the paper reports.\n");
  return 0;
}
