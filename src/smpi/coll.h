// Explicit collective algorithm variants.
//
// The MPI_* entry points dispatch between variants by message size and
// process count the way MPICH2/OpenMPI do (§5.3); the benches that reproduce
// the paper's figures call a specific variant directly, mirroring the
// paper's "manual implementation of the binomial/pairwise algorithm".
#pragma once

#include "smpi/mpi.h"

namespace smpi::coll {

// One-to-many / many-to-one (binomial trees — Figure 6).
int bcast_binomial(void* buffer, int count, MPI_Datatype datatype, int root, MPI_Comm comm);
// Long-message broadcast: scatter the payload then ring-allgather it, as
// MPICH2 does above ~512 KiB. One of the "multiple variants" §5.3 plans.
int bcast_scatter_ring_allgather(void* buffer, int count, MPI_Datatype datatype, int root,
                                 MPI_Comm comm);
int scatter_binomial(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
                     int recvcount, MPI_Datatype recvtype, int root, MPI_Comm comm);
int gather_binomial(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
                    int recvcount, MPI_Datatype recvtype, int root, MPI_Comm comm);
// Linear variants (the v-collectives use these, as in MPICH2).
int scatter_linear(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
                   int recvcount, MPI_Datatype recvtype, int root, MPI_Comm comm);
int gather_linear(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
                  int recvcount, MPI_Datatype recvtype, int root, MPI_Comm comm);

// Many-to-many.
int alltoall_pairwise(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
                      int recvcount, MPI_Datatype recvtype, MPI_Comm comm);  // Figure 10
int alltoall_basic(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
                   int recvcount, MPI_Datatype recvtype, MPI_Comm comm);
// Bruck's algorithm: ceil(log2 P) rounds of aggregated blocks — what MPICH2
// uses for short messages (latency-bound regime).
int alltoall_bruck(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
                   int recvcount, MPI_Datatype recvtype, MPI_Comm comm);

// All-gather.
int allgather_recursive_doubling(const void* sendbuf, int sendcount, MPI_Datatype sendtype,
                                 void* recvbuf, int recvcount, MPI_Datatype recvtype,
                                 MPI_Comm comm);  // power-of-two sizes only
int allgather_ring(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
                   int recvcount, MPI_Datatype recvtype, MPI_Comm comm);

// Reductions.
int reduce_binomial(const void* sendbuf, void* recvbuf, int count, MPI_Datatype datatype,
                    MPI_Op op, int root, MPI_Comm comm);
int allreduce_recursive_doubling(const void* sendbuf, void* recvbuf, int count,
                                 MPI_Datatype datatype, MPI_Op op, MPI_Comm comm);  // pow2 only
// Rabenseifner's algorithm (reduce_scatter + allgather): halves the data
// moved per rank for long vectors. pow2 sizes, commutative ops, count >= P.
int allreduce_rabenseifner(const void* sendbuf, void* recvbuf, int count, MPI_Datatype datatype,
                           MPI_Op op, MPI_Comm comm);
int reduce_scatter_pairwise(const void* sendbuf, void* recvbuf, const int recvcounts[],
                            MPI_Datatype datatype, MPI_Op op, MPI_Comm comm);  // commutative

// Barrier (dissemination).
int barrier_dissemination(MPI_Comm comm);

}  // namespace smpi::coll
