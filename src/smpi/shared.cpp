// RAM folding (§3.2): SMPI_SHARED_MALLOC returns the *same* allocation to
// every rank calling from the same source location, cutting the footprint of
// an m-process run from m x s to s (technique #1 of [3]). The memory tracker
// accounts both views — what the folded simulation really uses and what the
// unfolded application would have used — which is how Figure 16 is measured.
#include <string>

#include "smpi/internals.hpp"
#include "util/check.hpp"

namespace smpi::core {
namespace {

std::unordered_map<std::string, SharedBlock>& shared_blocks() {
  static std::unordered_map<std::string, SharedBlock> blocks;
  return blocks;
}

std::unordered_map<void*, std::string>& shared_index() {
  static std::unordered_map<void*, std::string> index;
  return index;
}

}  // namespace

void reset_shared_allocations() {
  for (auto& [site, block] : shared_blocks()) {
    ::operator delete(block.ptr);
  }
  shared_blocks().clear();
  shared_index().clear();
}

}  // namespace smpi::core

using namespace smpi::core;

void* smpi_malloc(std::size_t size) {
  Process& proc = current_process_checked();
  void* ptr = ::operator new(size);
  proc.allocations[ptr] = size;
  proc.world->memory().allocate(proc.world_rank, size, /*folded_already_counted=*/false);
  return ptr;
}

void smpi_free(void* ptr) {
  if (ptr == nullptr) return;
  Process& proc = current_process_checked();
  auto it = proc.allocations.find(ptr);
  SMPI_REQUIRE(it != proc.allocations.end(), "smpi_free of unknown pointer");
  proc.world->memory().release(proc.world_rank, it->second, false);
  proc.allocations.erase(it);
  ::operator delete(ptr);
}

void* smpi_shared_malloc(std::size_t size, const char* file, int line) {
  Process& proc = current_process_checked();
  // Keyed by call site *and* size: ranks at different stages of a dataflow
  // may allocate different amounts from the same line (e.g. DT's growing
  // streams); only identically-shaped allocations fold together.
  const std::string site =
      std::string(file) + ":" + std::to_string(line) + ":" + std::to_string(size);
  auto& blocks = shared_blocks();
  auto it = blocks.find(site);
  if (it == blocks.end()) {
    SharedBlock block;
    block.ptr = ::operator new(size);
    block.size = size;
    block.refcount = 0;
    block.site = site;
    it = blocks.emplace(site, block).first;
    shared_index()[block.ptr] = site;
    // First caller: the bytes are physically allocated.
    proc.world->memory().allocate(proc.world_rank, size, /*folded_already_counted=*/false);
  } else {
    // Folded: the rank's unfolded footprint grows, the real one does not.
    proc.world->memory().allocate(proc.world_rank, size, /*folded_already_counted=*/true);
  }
  it->second.refcount += 1;
  return it->second.ptr;
}

void smpi_shared_free(void* ptr) {
  if (ptr == nullptr) return;
  Process& proc = current_process_checked();
  auto idx = shared_index().find(ptr);
  SMPI_REQUIRE(idx != shared_index().end(), "SMPI_FREE of non-shared pointer");
  auto& blocks = shared_blocks();
  auto it = blocks.find(idx->second);
  SMPI_ENSURE(it != blocks.end(), "shared block index out of sync");
  SharedBlock& block = it->second;
  SMPI_REQUIRE(block.refcount > 0, "SMPI_FREE refcount underflow");
  block.refcount -= 1;
  const bool last = block.refcount == 0;
  proc.world->memory().release(proc.world_rank, block.size,
                               /*folded_already_counted=*/!last);
  if (last) {
    ::operator delete(block.ptr);
    shared_index().erase(idx);
    blocks.erase(it);
  }
}
