#include <algorithm>
#include <cstdio>
#include <sstream>

#include "smpi/internals.hpp"
#include "trace/capture.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace smpi::core {

SMPI_LOG_CATEGORY(log_smpi, "smpi");

namespace {
SmpiWorld* g_world = nullptr;

// Thrown by MPI_Abort to unwind the calling rank.
struct AbortException {
  int code;
};
}  // namespace

Personality Personality::smpi() { return Personality{}; }

Personality Personality::openmpi() {
  Personality p;
  p.name = "openmpi";
  p.eager_threshold = 64 * 1024;
  p.overhead_send_s = 2.0e-6;
  p.overhead_recv_s = 2.0e-6;
  p.copy_cost_s_per_byte = 1.0 / 3e9;  // ~3 GB/s buffering memcpy
  p.emulate_protocol_messages = true;
  return p;
}

Personality Personality::mpich2() {
  Personality p;
  p.name = "mpich2";
  p.eager_threshold = 64 * 1024;
  p.overhead_send_s = 1.4e-6;
  p.overhead_recv_s = 1.6e-6;
  p.copy_cost_s_per_byte = 1.0 / 3.5e9;
  p.emulate_protocol_messages = true;
  return p;
}

// ---------------------------------------------------------------------------
// MemoryTracker
// ---------------------------------------------------------------------------

MemoryTracker::MemoryTracker(int nranks, std::uint64_t budget_bytes)
    : rank_current_(static_cast<std::size_t>(nranks), 0),
      rank_peak_(static_cast<std::size_t>(nranks), 0),
      budget_(budget_bytes) {}

void MemoryTracker::allocate(int rank, std::uint64_t bytes, bool folded_already_counted) {
  auto& current = rank_current_[static_cast<std::size_t>(rank)];
  current += bytes;
  rank_peak_[static_cast<std::size_t>(rank)] =
      std::max(rank_peak_[static_cast<std::size_t>(rank)], current);
  unfolded_current_ += bytes;
  unfolded_peak_ = std::max(unfolded_peak_, unfolded_current_);
  if (!folded_already_counted) {
    folded_current_ += bytes;
    folded_peak_ = std::max(folded_peak_, folded_current_);
  }
}

void MemoryTracker::release(int rank, std::uint64_t bytes, bool folded_already_counted) {
  auto& current = rank_current_[static_cast<std::size_t>(rank)];
  SMPI_ENSURE(current >= bytes, "rank memory underflow");
  current -= bytes;
  SMPI_ENSURE(unfolded_current_ >= bytes, "unfolded memory underflow");
  unfolded_current_ -= bytes;
  if (!folded_already_counted) {
    SMPI_ENSURE(folded_current_ >= bytes, "folded memory underflow");
    folded_current_ -= bytes;
  }
}

std::uint64_t MemoryTracker::rank_peak(int rank) const {
  return rank_peak_[static_cast<std::size_t>(rank)];
}

std::uint64_t MemoryTracker::max_rank_peak() const {
  std::uint64_t peak = 0;
  for (auto v : rank_peak_) peak = std::max(peak, v);
  return peak;
}

// ---------------------------------------------------------------------------
// Process
// ---------------------------------------------------------------------------

Process::Process(SmpiWorld* world_in, int world_rank_in, int node_in)
    : world(world_in), world_rank(world_rank_in), node(node_in) {}

Process::~Process() {
  // Tracked allocations leaked by the application are reclaimed here.
  for (auto& [ptr, size] : allocations) {
    world->memory().release(world_rank, size, false);
    ::operator delete(ptr);
  }
}

Request* Process::new_request() {
  if (!free_requests.empty()) {
    Request* r = free_requests.back();
    free_requests.pop_back();
    *r = Request{};  // reset-on-acquire: every field back to its default
    r->owner = this;
    return r;
  }
  owned_requests.push_back(std::make_unique<Request>());
  Request* r = owned_requests.back().get();
  r->owner = this;
  return r;
}

void Process::recycle_request(Request* r) {
  if (r->recycled || !r->released || r->active || !r->completed()) return;
  r->token.reset();  // drop the activity now; the slot may idle a while
  r->pending_envelope = nullptr;
  r->recycled = true;
  free_requests.push_back(r);
}

void Process::gc_requests() {
  // Release sites recycle their own request directly (recycle_request); this
  // sweep only catches requests freed while still in flight, whose released
  // flag was set long before completion — rare, so it runs once per batch.
  if (++gc_pending_ < kGcBatch) return;
  gc_pending_ = 0;
  for (auto& r : owned_requests) recycle_request(r.get());
}

// ---------------------------------------------------------------------------
// SmpiWorld
// ---------------------------------------------------------------------------

SmpiWorld::SmpiWorld(const platform::Platform& platform, SmpiConfig config)
    : platform_(platform), config_(std::move(config)) {
  SMPI_REQUIRE(g_world == nullptr, "only one SmpiWorld may exist at a time");
  SMPI_REQUIRE(platform_.host_count() > 0, "platform has no hosts");
  g_world = this;
  engine_ = std::make_unique<sim::Engine>(config_.engine);
  // One knob drives both analytical solvers (network and CPU share the
  // max-min implementation and its full-reference flag).
  cpu_model_ = std::make_shared<surf::CpuModel>(platform_, config_.network.solver_mode);
  cpu_ = cpu_model_.get();
  engine_->add_model(cpu_model_);
  if (config_.noise.has_message_jitter && !config_.noise.message_jitter.is_identity(0.0)) {
    // Install before the network model is built: the model copies its
    // config. An identity (zero-sigma) channel installs nothing, so the
    // deterministic path stays bit-identical.
    SMPI_REQUIRE(config_.backend == SmpiConfig::Backend::kFlow,
                 "message jitter requires the flow network backend");
    jitter_ = std::make_unique<noise::MessageJitter>(config_.noise.message_jitter,
                                                     config_.noise.seed);
    noise::MessageJitter* jitter = jitter_.get();
    config_.network.latency_jitter = [jitter](int src, int dst) {
      return jitter->sample(src, dst);
    };
  }
  if (config_.backend == SmpiConfig::Backend::kFlow) {
    auto net = std::make_shared<surf::FlowNetworkModel>(platform_, config_.network);
    network_ = net.get();
    flow_network_ = net.get();
    engine_->add_model(std::move(net));
  } else {
    auto net = std::make_shared<pnet::PacketNetworkModel>(platform_, config_.packet);
    network_ = net.get();
    engine_->add_model(std::move(net));
  }

  // Failure model: only built for a non-empty spec, so a fault-free run
  // schedules nothing extra and every simulated time stays bit-identical.
  if (!config_.faults.empty()) {
    SMPI_REQUIRE(flow_network_ != nullptr,
                 "the failure model requires the flow network backend");
    sim::TargetIndex index;
    index.host_count = platform_.host_count();
    index.link_count = platform_.link_count();
    index.find_host = [this](const std::string& name) { return platform_.find_host(name); };
    index.find_link = [this](const std::string& name) { return platform_.find_link(name); };
    auto faults = std::make_shared<sim::FaultModel>(resolve_faults(config_.faults, index));
    faults->set_host_hook([this](int host, bool up) {
      cpu_model_->set_host_up(host, up);
      flow_network_->set_host_up(host, up);
    });
    faults->set_link_hook([this](int link, bool up, double factor) {
      if (!up) {
        flow_network_->set_link_up(link, false);
        return;
      }
      // Recover resets any earlier degradation; a degrade event carries its
      // factor in (0, 1).
      flow_network_->set_link_degrade(link, factor);
      flow_network_->set_link_up(link, true);
    });
    engine_->add_model(faults);
    faults->arm();
  }
  engine_->set_deadlock_reporter([this] { return wait_for_diagnostic(); });
}

SmpiWorld::~SmpiWorld() {
  // Teardown order is load-bearing three ways: (1) surviving actors (abort
  // and detect-policy runs end with live, parked ranks) must unwind while
  // the Process objects are alive — their cleanup guards write per-rank
  // state; (2) Processes must be freed while the engine is alive — pending
  // Requests return pooled Activity tokens to the engine's pools; (3) the
  // engine goes last.
  if (engine_ != nullptr) engine_->shutdown_actors();
  processes_.clear();
  reset_shared_allocations();
  reset_global_samples();
  // Drop our model ref before the engine: a time-limited run leaves
  // incomplete executions holding pooled activities, and those must return
  // to the engine's pools inside ~Engine (models_ holds the last ref), not
  // after it.
  cpu_model_.reset();
  engine_.reset();
  g_world = nullptr;
}

SmpiWorld* SmpiWorld::instance() { return g_world; }

Process* SmpiWorld::current_process() {
  if (engine_ == nullptr) return nullptr;
  sim::Actor* actor = engine_->current_actor();
  if (actor == nullptr) return nullptr;
  return static_cast<Process*>(actor->user_data);
}

Process* SmpiWorld::process(int world_rank) {
  SMPI_REQUIRE(world_rank >= 0 && world_rank < world_size(), "world rank out of range");
  return processes_[static_cast<std::size_t>(world_rank)].get();
}

void SmpiWorld::record_abort(int code) {
  aborted_ = true;
  abort_code_ = code;
  // Freeze the engine at the abort date. The aborting rank's frame is about
  // to unwind (or already has), and in-flight transfers hold raw Request
  // pointers into it — letting the calendar drain to the natural deadlock
  // would dispatch their completions into freed stack memory.
  if (engine_ != nullptr) engine_->request_stop();
}

void SmpiWorld::record_failure(const std::string& diagnostic) {
  if (fault_diagnostic_.empty()) fault_diagnostic_ = diagnostic;
}

std::string SmpiWorld::wait_for_diagnostic() const {
  // Per-rank wait-for state plus unmatched queue contents — the detector's
  // diagnostic payload. Capped so a 1024-rank deadlock stays readable.
  constexpr int kMaxRanks = 32;
  constexpr std::size_t kMaxQueueItems = 8;
  std::ostringstream os;
  os << "wait-for state:";
  int shown = 0;
  int blocked_total = 0;
  for (const auto& proc : processes_) {
    if (proc->actor == nullptr || !proc->actor->alive()) continue;
    ++blocked_total;
    if (shown >= kMaxRanks) continue;
    ++shown;
    os << "\n  rank " << proc->world_rank << " (node " << proc->node << "): ";
    if (proc->blocked.op == nullptr) {
      os << "not blocked in an MPI operation";
    } else {
      os << "blocked in " << proc->blocked.op;
      os << " (peer=";
      if (proc->blocked.peer == MPI_ANY_SOURCE) {
        os << "ANY";
      } else {
        os << proc->blocked.peer;
      }
      os << ", tag=";
      if (proc->blocked.tag == MPI_ANY_TAG) {
        os << "ANY";
      } else {
        os << proc->blocked.tag;
      }
      os << ", comm=" << proc->blocked.comm_id << ", bytes=" << proc->blocked.bytes << ")";
    }
    for (const auto& [key, queues] : proc->matching) {
      if (queues.unexpected.empty() && queues.posted_recvs.empty()) continue;
      os << "\n    scope " << key << (key < 0 ? " (collective)" : "") << ":";
      std::size_t listed = 0;
      for (const auto& env : queues.unexpected) {
        if (listed++ >= kMaxQueueItems) {
          os << " ...";
          break;
        }
        os << " unexpected[src=" << env->src_comm_rank << " tag=" << env->tag
           << " bytes=" << env->bytes << "]";
      }
      listed = 0;
      for (const Request* recv : queues.posted_recvs) {
        if (listed++ >= kMaxQueueItems) {
          os << " ...";
          break;
        }
        os << " posted-recv[peer=";
        if (recv->peer == MPI_ANY_SOURCE) {
          os << "ANY";
        } else {
          os << recv->peer;
        }
        os << " tag=";
        if (recv->tag == MPI_ANY_TAG) {
          os << "ANY";
        } else {
          os << recv->tag;
        }
        os << "]";
      }
    }
  }
  if (blocked_total > shown) {
    os << "\n  ... " << (blocked_total - shown) << " more blocked rank(s)";
  }
  return os.str();
}

void handle_operation_failure(Process& proc, const std::string& what) {
  SmpiWorld* world = proc.world;
  std::ostringstream os;
  os << "rank " << proc.world_rank << " (node " << proc.node << "): " << what;
  if (world->config().faults.policy == sim::FailurePolicy::kAbort) {
    throw FaultError{os.str()};
  }
  // Detect policy: strand the rank on an activity nothing ever finishes —
  // the deadlock detector then reports the full wait-for state. The actor
  // is unwound by the engine teardown (ForcedExit through this wait).
  SMPI_LOG_WARN(log_smpi, "detect policy: " << os.str() << " — rank parked for the detector");
  auto black_hole = sim::new_activity("failed-op");
  // Keep the peer/tag/comm of the failed operation for the reporter; only
  // relabel it so the diagnostic says the wait can never succeed.
  proc.blocked.op = "failed-op";
  for (;;) black_hole->wait();
  // not reached
}

void SmpiWorld::run(int nprocs, MpiMain app, std::vector<std::string> args,
                    std::string app_name) {
  SMPI_REQUIRE(nprocs >= 1, "need at least one MPI process");
  SMPI_REQUIRE(processes_.empty(), "SmpiWorld::run may only be called once");
  SMPI_REQUIRE(config_.placement_stride >= 1, "placement stride must be >= 1");

  memory_ = std::make_unique<MemoryTracker>(nprocs, config_.host_ram_budget_bytes);

  // MPI_COMM_WORLD spans all ranks.
  std::vector<int> all(static_cast<std::size_t>(nprocs));
  for (int i = 0; i < nprocs; ++i) all[static_cast<std::size_t>(i)] = i;
  static_comms_.push_back(std::make_unique<Comm>(next_comm_id(), Group(all)));
  world_comm_ = static_comms_.back().get();
  static_groups_.push_back(std::make_unique<Group>(std::vector<int>{}));
  empty_group_ = static_groups_.back().get();

  // argv block shared by all ranks (read-only by convention).
  argv_storage_.clear();
  argv_storage_.push_back(std::move(app_name));
  for (auto& a : args) argv_storage_.push_back(a);
  argv_pointers_.clear();
  for (auto& s : argv_storage_) argv_pointers_.push_back(s.data());
  argv_pointers_.push_back(nullptr);

  for (int rank = 0; rank < nprocs; ++rank) {
    int node;
    if (!config_.placement.empty()) {
      node = config_.placement[static_cast<std::size_t>(rank) % config_.placement.size()];
      SMPI_REQUIRE(node >= 0 && node < platform_.host_count(), "placement node out of range");
    } else {
      node = (rank * config_.placement_stride) % platform_.host_count();
    }
    processes_.push_back(std::make_unique<Process>(this, rank, node));
    Process* proc = processes_.back().get();
    sim::Actor* actor = engine_->spawn("rank-" + std::to_string(rank), node, [this, proc, app] {
      try {
        app(static_cast<int>(argv_pointers_.size()) - 1, argv_pointers_.data());
      } catch (const AbortException& abort) {
        record_abort(abort.code);
        SMPI_LOG_WARN(log_smpi, "rank " << proc->world_rank << " aborted with code " << abort.code);
      } catch (const FaultError& fault) {
        // A resource failure tore this rank down (abort policy): record the
        // diagnostic so the driver can print what died and where.
        record_abort(-2);
        record_failure(fault.message);
        SMPI_LOG_WARN(log_smpi, "rank " << proc->world_rank
                                        << " terminated by a resource failure: " << fault.message);
      } catch (const sim::ForcedExit&) {
        throw;  // teardown unwinding — must reach the context trampoline
      } catch (...) {
        // Application code failed; capture the first failure so run() can
        // rethrow it in the caller's context instead of crashing the fiber.
        record_abort(-1);
        if (first_exception_ == nullptr) first_exception_ = std::current_exception();
        SMPI_LOG_WARN(log_smpi, "rank " << proc->world_rank << " terminated by an exception");
      }
    });
    actor->user_data = proc;
    proc->actor = actor;
  }
  try {
    engine_->run();
  } catch (const sim::DeadlockError& e) {
    if (!aborted_) throw;
    // An abort legitimately strands the other ranks; surface the abort
    // instead of the secondary deadlock.
    SMPI_LOG_WARN(log_smpi, "simulation stopped after abort: " << e.what());
  }
  finish_time_ = engine_->now();
  if (first_exception_ != nullptr) std::rethrow_exception(first_exception_);
}

P2pCounters SmpiWorld::p2p_counters() const {
  P2pCounters counters = p2p_counters_;
  if (engine_ != nullptr) {
    const auto& blocks = engine_->object_pool().stats();
    const auto& buffers = engine_->buffer_pool().stats();
    counters.pool_hits = blocks.hits + buffers.hits;
    counters.pool_misses = blocks.misses + buffers.misses;
  }
  return counters;
}

MemoryReport SmpiWorld::memory_report() const {
  MemoryReport report;
  if (memory_ == nullptr) return report;
  report.folded_peak_bytes = memory_->folded_peak();
  report.unfolded_peak_bytes = memory_->unfolded_peak();
  report.max_rank_peak_bytes = memory_->max_rank_peak();
  report.over_budget = memory_->over_budget();
  return report;
}

double run_simulation(const platform::Platform& platform, const SmpiConfig& config, int nprocs,
                      MpiMain app, std::vector<std::string> args) {
  SmpiWorld world(platform, config);
  world.run(nprocs, std::move(app), std::move(args));
  return world.simulated_time();
}

Process& current_process_checked() {
  SmpiWorld* world = SmpiWorld::instance();
  SMPI_REQUIRE(world != nullptr, "no simulation is running");
  Process* proc = world->current_process();
  SMPI_REQUIRE(proc != nullptr, "MPI call outside of an MPI process");
  return *proc;
}

}  // namespace smpi::core

// ---------------------------------------------------------------------------
// Environment C API
// ---------------------------------------------------------------------------

using smpi::core::current_process_checked;
using smpi::core::SmpiWorld;

MPI_Comm smpi_comm_world() { return current_process_checked().world->world_comm(); }

MPI_Group smpi_group_empty() { return current_process_checked().world->empty_group(); }

int MPI_Init(int* /*argc*/, char*** /*argv*/) {
  auto& proc = current_process_checked();
  if (proc.initialized) return MPI_ERR_OTHER;
  smpi::trace::ApiScope scope("init");
  if (scope.recording()) {
    smpi::trace::TiRecord r;
    r.op = smpi::trace::TiOp::kInit;
    scope.emit(r);
  }
  proc.initialized = true;
  return MPI_SUCCESS;
}

int MPI_Initialized(int* flag) {
  if (flag == nullptr) return MPI_ERR_ARG;
  *flag = current_process_checked().initialized ? 1 : 0;
  return MPI_SUCCESS;
}

int MPI_Finalized(int* flag) {
  if (flag == nullptr) return MPI_ERR_ARG;
  *flag = current_process_checked().finalized ? 1 : 0;
  return MPI_SUCCESS;
}

int MPI_Finalize() {
  auto& proc = current_process_checked();
  if (!proc.initialized || proc.finalized) return MPI_ERR_OTHER;
  smpi::trace::ApiScope scope("finalize");
  if (scope.recording()) {
    // The internal barrier below is suppressed by this scope; the replayed
    // MPI_Finalize re-issues it.
    smpi::trace::TiRecord r;
    r.op = smpi::trace::TiOp::kFinalize;
    scope.emit(r);
  }
  // Finalize synchronizes all processes (many implementations do; it also
  // keeps simulated-time accounting intuitive).
  const int rc = MPI_Barrier(proc.world->world_comm());
  proc.finalized = true;
  return rc;
}

int MPI_Abort(MPI_Comm /*comm*/, int errorcode) {
  throw smpi::core::AbortException{errorcode};
}

double MPI_Wtime() {
  auto& proc = current_process_checked();
  return proc.world->engine().now();
}

double MPI_Wtick() { return 1e-9; }

int MPI_Get_processor_name(char* name, int* resultlen) {
  if (name == nullptr || resultlen == nullptr) return MPI_ERR_ARG;
  auto& proc = current_process_checked();
  const std::string& host = proc.world->platform().host(proc.node).name;
  std::snprintf(name, 256, "%s", host.c_str());
  *resultlen = static_cast<int>(host.size());
  return MPI_SUCCESS;
}
