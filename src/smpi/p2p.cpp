// Point-to-point engine: posting, matching, transfer timing, completion.
//
// Timing model per message (size s, personality P):
//   sender pays P.overhead_send, plus a copy cost for eager buffering;
//   s < P.eager_threshold  — "eager": the data flow starts at send time and
//       the send completes immediately (buffered mode); the receive completes
//       when the flow arrives (plus P.overhead_recv);
//   s >= threshold         — "rendezvous": the data flow starts when both
//       sides are posted (synchronous mode). With
//       P.emulate_protocol_messages the RTS/CTS round-trip is sent as real
//       zero-byte flows first (ground-truth personalities); SMPI mode leaves
//       it folded into the calibrated piece-wise model (§4.1).
//
// Envelopes are enqueued in send order, so MPI's non-overtaking rule holds.
#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "obs/span.hpp"
#include "smpi/internals.hpp"
#include "trace/capture.hpp"
#include "util/check.hpp"

namespace smpi::core {

namespace {

SmpiConfig const& config() { return SmpiWorld::instance()->config(); }

// Collective-internal messages match in a shadow scope of the communicator.
int scope_key(const Comm* comm, bool coll_scope) {
  return coll_scope ? -(comm->id() + 1) : comm->id();
}

bool matches(const Envelope& env, const Request& recv) {
  if (recv.peer != MPI_ANY_SOURCE && recv.peer != env.src_comm_rank) return false;
  if (recv.tag != MPI_ANY_TAG && recv.tag != env.tag) return false;
  return true;
}

// Copy the message payload into the receive buffer, honoring datatypes and
// truncation. `packed` is the packed representation when available (eager);
// rendezvous reads straight from the sender's buffer.
void copy_payload_to_receiver(const Envelope& env, Request& recv) {
  const std::size_t capacity = static_cast<std::size_t>(recv.count) * recv.datatype->size();
  const std::size_t bytes = std::min(env.bytes, capacity);
  recv.status_bytes = bytes;
  if (env.bytes > capacity) recv.status_error = MPI_ERR_TRUNCATE;
  if (bytes == 0) return;
  // Payload-free (replay) mode: sizes and statuses are tracked, data never
  // moves — eager envelopes carry no snapshot to read from.
  if (config().payload_free) return;

  if (env.eager_data) {
    recv.datatype->unpack_bytes(env.eager_data.get(), bytes, recv.recv_buf);
    return;
  }
  if (env.zc_src != nullptr) {
    // Zero-copy eager: deliver straight from the sender's stable buffer.
    auto& counters = SmpiWorld::instance()->p2p_raw();
    ++counters.eager_copy_elided;
    counters.bytes_not_copied += bytes;
    recv.datatype->unpack_bytes(env.zc_src, bytes, recv.recv_buf);
    return;
  }
  // Rendezvous: read from the sender's live buffer.
  const Request* send = env.send_request;
  SMPI_ENSURE(send != nullptr, "rendezvous envelope lost its sender");
  if (!send->datatype->needs_packing()) {
    recv.datatype->unpack_bytes(send->send_buf, bytes, recv.recv_buf);
  } else {
    std::vector<unsigned char> packed(env.bytes);
    send->datatype->pack(send->send_buf, send->count, packed.data());
    recv.datatype->unpack_bytes(packed.data(), bytes, recv.recv_buf);
  }
}

void complete_receive_after(Request& recv, double extra_delay,
                            sim::Activity::State state = sim::Activity::State::kDone) {
  if (extra_delay <= 0 || state != sim::Activity::State::kDone) {
    // Failures propagate immediately: the overhead timer models successful
    // delivery work that never happens for a dead transfer.
    recv.token->finish(state);
    return;
  }
  auto* engine = &SmpiWorld::instance()->engine();
  sim::ActivityPtr token = recv.token;
  engine->add_timer(engine->now() + extra_delay,
                    [token = std::move(token)] { token->finish(sim::Activity::State::kDone); });
}

// A rendezvous transfer (or one of its control messages) died: fail both
// sides so the blocked ranks observe the failure at their wait sites.
void fail_rendezvous(Envelope& env, Request& recv, sim::Activity::State state) {
  if (env.send_request != nullptr && env.send_request->token != nullptr) {
    env.send_request->token->finish(state);
  }
  complete_receive_after(recv, 0, state);
}

// Start the rendezvous data transfer once the (possibly emulated) control
// messages are through, then complete both sides.
void start_rendezvous_transfer(std::shared_ptr<Envelope> env, Request& recv) {
  auto* world = SmpiWorld::instance();
  const double o_recv = world->config().personality.overhead_recv_s;
  Request* send = env->send_request;
  SMPI_ENSURE(send != nullptr, "rendezvous transfer without sender");
  auto data_flow = world->network().start_flow(world->process(env->src_world_rank)->node,
                                               world->process(env->dst_world_rank)->node,
                                               static_cast<double>(env->bytes), {});
  env->data_flow = data_flow;
  if (obs::spans_enabled()) {
    // The rendezvous data transfer begins now, for both blocked sides.
    const double now = world->engine().now();
    send->obs_flow_start = now;
    recv.obs_flow_start = now;
  }
  Request* recv_ptr = &recv;
  data_flow->on_completion([env, recv_ptr, send, o_recv](sim::Activity& flow) {
    // After an abort, Request pointers may reference unwound actor frames;
    // the engine stops dispatching, but guard anyway (defense in depth).
    if (SmpiWorld::instance()->aborted()) return;
    if (flow.state() != sim::Activity::State::kDone) {
      fail_rendezvous(*env, *recv_ptr, flow.state());
      return;
    }
    copy_payload_to_receiver(*env, *recv_ptr);
    send->token->finish(sim::Activity::State::kDone);
    complete_receive_after(*recv_ptr, o_recv);
  });
}

void match(std::shared_ptr<Envelope> env, Request& recv) {
  env->matched = true;
  recv.status_source = env->src_comm_rank;
  recv.status_tag = env->tag;

  auto* world = SmpiWorld::instance();
  const double o_recv = world->config().personality.overhead_recv_s;

  if (obs::spans_enabled()) {
    // Receive side: the sender enabled this message when it posted the
    // envelope (for eager, that is also when the data flow started).
    recv.obs_peer_ready = env->obs_post_date;
    recv.obs_peer_world = env->src_world_rank;
    recv.obs_flow_start = env->eager ? env->obs_post_date : -1;
    if (env->send_request != nullptr) {
      // Rendezvous send side: the receiver enabled the transfer by matching.
      env->send_request->obs_peer_ready = world->engine().now();
      env->send_request->obs_peer_world = env->dst_world_rank;
    }
  }

  if (env->eager) {
    // Copy the payload out NOW, at match time — the earliest point the
    // receiver is known. For zero-copy envelopes this is what makes the
    // scheme safe (the collective's causality guarantees the source is
    // unmodified until its receiver matched); for snapshots it returns the
    // staging buffer to the pool one network-latency earlier. The receiver
    // is blocked until the flow completes, so it cannot observe the early
    // write, and simulated time is untouched.
    copy_payload_to_receiver(*env, recv);
    Request* recv_ptr = &recv;
    env->data_flow->on_completion([recv_ptr, o_recv](sim::Activity& flow) {
      if (SmpiWorld::instance()->aborted()) return;  // recv frame may be gone
      complete_receive_after(*recv_ptr, o_recv, flow.state());
    });
    return;
  }
  // Rendezvous: CTS back to the sender (emulated mode), then the data.
  if (world->config().personality.emulate_protocol_messages) {
    Request* recv_ptr = &recv;
    auto after_rts = [env, recv_ptr, world](sim::Activity& rts) {
      if (world->aborted()) return;  // request frames may be gone
      if (rts.state() != sim::Activity::State::kDone) {
        fail_rendezvous(*env, *recv_ptr, rts.state());
        return;
      }
      auto cts = world->network().start_flow(world->process(env->dst_world_rank)->node,
                                             world->process(env->src_world_rank)->node, 0, {});
      cts->on_completion([env, recv_ptr, world](sim::Activity& done) {
        if (world->aborted()) return;
        if (done.state() != sim::Activity::State::kDone) {
          fail_rendezvous(*env, *recv_ptr, done.state());
          return;
        }
        start_rendezvous_transfer(env, *recv_ptr);
      });
    };
    SMPI_ENSURE(env->rts_flow != nullptr, "emulated rendezvous without RTS");
    env->rts_flow->on_completion(after_rts);
    return;
  }
  start_rendezvous_transfer(env, recv);
}

void try_match_new_envelope(Process& receiver, std::shared_ptr<Envelope> env) {
  MatchQueues& queues = receiver.match_queues(env->comm_id);
  for (auto it = queues.posted_recvs.begin(); it != queues.posted_recvs.end(); ++it) {
    if (matches(*env, **it)) {
      Request* recv = *it;
      queues.posted_recvs.erase(it);
      match(std::move(env), *recv);
      return;
    }
  }
  queues.unexpected.push_back(std::move(env));
  receiver.signal_arrival();
}

}  // namespace

void Process::signal_arrival() {
  if (arrival_signal == nullptr) return;  // nobody probing
  auto old = arrival_signal;
  arrival_signal = nullptr;
  old->finish(sim::Activity::State::kDone);
}

namespace {
// Does [begin, begin+bytes) lie fully inside a registered stable range?
bool in_stable_range(const Process& proc, const unsigned char* begin, std::size_t bytes) {
  const unsigned char* end = begin + bytes;
  for (const auto& range : proc.stable_ranges) {
    if (begin >= range.begin && end <= range.end) return true;
  }
  return false;
}

// Degrade the zero-copy proof safely: any envelope this rank posted that is
// still unmatched when its stable scope ends gets a (pooled) snapshot now,
// while the source buffer is guaranteed live — we are still inside the MPI
// call that registered it. Matched envelopes already copied out at match.
void flush_zero_copy(Process& proc) {
  if (proc.zc_outstanding.empty()) return;
  auto* world = proc.world;
  auto& engine = world->engine();
  for (auto& env : proc.zc_outstanding) {
    if (env->matched || env->zc_src == nullptr) continue;
    env->eager_data = engine.pooling() ? engine.buffer_pool().acquire(env->bytes)
                                       : sim::BufferPool::acquire_unpooled(env->bytes);
    std::memcpy(env->eager_data.get(), env->zc_src, env->bytes);
    env->zc_src = nullptr;
    ++world->p2p_raw().eager_flush_snapshots;
  }
  proc.zc_outstanding.clear();
}
}  // namespace

void reserve_coll_queues(Process& proc, Comm* comm, std::size_t messages) {
  MatchQueues& queues = proc.match_queues(scope_key(comm, true));
  queues.unexpected.reserve(messages);
  queues.posted_recvs.reserve(messages);
}

CollSendScope::CollSendScope(Process& proc, const void* begin, std::size_t bytes)
    : proc_(proc) {
  if (begin == nullptr || bytes == 0) return;
  if (!config().zero_copy_eager || config().payload_free) return;
  const auto* base = static_cast<const unsigned char*>(begin);
  proc_.stable_ranges.push_back({base, base + bytes});
  registered_ = true;
}

CollSendScope::~CollSendScope() {
  if (!registered_) return;
  proc_.stable_ranges.pop_back();
  // Conservative under nesting: flushing everything outstanding may
  // snapshot an envelope whose (outer) range is still valid — safe, just a
  // lost elision.
  flush_zero_copy(proc_);
}

void post_send(Request& request) {
  auto* world = SmpiWorld::instance();
  auto& engine = world->engine();
  // Sends that complete inside this call never get a token: a null token
  // reads as completed (Request::completed()), so the eager fast path skips
  // an Activity allocation + finish per message. Only the rendezvous branch
  // below needs a real token to block on.
  request.token = nullptr;
  request.status_error = MPI_SUCCESS;
  request.active = true;
  request.ever_started = true;

  if (request.peer == MPI_PROC_NULL) return;

  const Personality& personality = config().personality;
  const std::size_t bytes = static_cast<std::size_t>(request.count) * request.datatype->size();
  const bool eager = bytes < personality.eager_threshold;

  // Sender-side software overheads are paid in the sender's own timeline.
  double overhead = personality.overhead_send_s;
  if (eager) overhead += static_cast<double>(bytes) * personality.copy_cost_s_per_byte;
  if (overhead > 0) engine.sleep_for(overhead);

  const int src_world = request.owner->world_rank;
  const int dst_world = request.comm->world_rank(request.peer);
  Process* receiver = world->process(dst_world);

  auto env = engine.pooling() ? std::allocate_shared<Envelope>(
                                    sim::PoolAllocator<Envelope>(&engine.object_pool()))
                              : std::make_shared<Envelope>();
  env->src_comm_rank = request.comm->rank_of_world(src_world);
  env->src_world_rank = src_world;
  env->dst_world_rank = dst_world;
  env->tag = request.tag;
  env->comm_id = scope_key(request.comm, request.coll_scope);
  env->bytes = bytes;
  env->eager = eager;

  if (obs::spans_enabled()) {
    env->obs_post_date = engine.now();  // for eager, also the flow start date
    request.obs_flow_start = -1;
    request.obs_peer_ready = -1;
    request.obs_peer_world = dst_world;
    if (!request.coll_scope) obs::spans()->annotate_peer(src_world, dst_world);
    obs::spans()->add_bytes(src_world, bytes);
  }

  if (eager) {
    // Buffered: snapshot the payload and ship it; the send completes now.
    // Payload-free mode ships only the size — no allocation, no copy.
    // Zero-copy: a coll-scope send of basic layout whose bytes sit inside a
    // CollSendScope-registered range skips the snapshot — the payload is
    // read from the source at match time (or snapshotted at scope exit if
    // the receiver never showed up; see flush_zero_copy).
    if (!config().payload_free) {
      const auto* src = static_cast<const unsigned char*>(request.send_buf);
      const bool zero_copy = bytes > 0 && request.coll_scope && config().zero_copy_eager &&
                             !request.datatype->needs_packing() &&
                             in_stable_range(*request.owner, src, bytes);
      if (zero_copy) {
        env->zc_src = src;
        request.owner->zc_outstanding.push_back(env);
      } else {
        env->eager_data = engine.pooling() ? engine.buffer_pool().acquire(bytes)
                                           : sim::BufferPool::acquire_unpooled(bytes);
        request.datatype->pack(request.send_buf, request.count, env->eager_data.get());
        ++world->p2p_raw().eager_snapshots;
      }
    }
    env->data_flow = world->network().start_flow(request.owner->node, receiver->node,
                                                 static_cast<double>(bytes), {});
  } else {
    request.token = sim::new_activity("send");
    env->send_request = &request;
    if (personality.emulate_protocol_messages) {
      env->rts_flow = world->network().start_flow(request.owner->node, receiver->node, 0, {});
    }
  }
  try_match_new_envelope(*receiver, std::move(env));
}

void post_recv(Request& request) {
  request.status_error = MPI_SUCCESS;
  request.status_bytes = 0;
  request.active = true;
  request.ever_started = true;

  if (request.peer == MPI_PROC_NULL) {
    request.token = nullptr;  // null token == already complete
    request.status_source = MPI_PROC_NULL;
    request.status_tag = MPI_ANY_TAG;
    return;
  }
  request.token = sim::new_activity("recv");

  if (obs::spans_enabled()) {
    request.obs_flow_start = -1;  // (re)set before a match can fill them in
    request.obs_peer_ready = -1;
    request.obs_peer_world = -1;
    if (!request.coll_scope) {
      const int rank = request.owner->world_rank;
      if (request.peer >= 0) {
        obs::spans()->annotate_peer(rank, request.comm->world_rank(request.peer));
      }
      obs::spans()->add_bytes(
          rank, static_cast<std::uint64_t>(request.count) * request.datatype->size());
    }
  }

  Process& receiver = *request.owner;
  MatchQueues& queues = receiver.match_queues(scope_key(request.comm, request.coll_scope));
  for (auto it = queues.unexpected.begin(); it != queues.unexpected.end(); ++it) {
    if (matches(**it, request)) {
      auto env = *it;
      queues.unexpected.erase(it);
      match(std::move(env), request);
      return;
    }
  }
  queues.posted_recvs.push_back(&request);
}

void fill_status(const Request& request, MPI_Status* status) {
  if (status == MPI_STATUS_IGNORE) return;
  status->MPI_SOURCE = request.status_source;
  status->MPI_TAG = request.status_tag;
  status->MPI_ERROR = request.status_error;
  status->count_bytes = static_cast<long long>(request.status_bytes);
}

namespace {

// Post-completion bookkeeping shared by the wait/test family. Fills status,
// deactivates (persistent) or releases (ordinary) the request, and nulls the
// user handle for ordinary requests.
int finalize_completed(Request*& request, MPI_Status* status) {
  fill_status(*request, status);
  const int rc = request->status_error;
  request->active = false;
  if (!request->persistent) {
    request->released = true;
    Process* owner = request->owner;
    Request* released = request;
    request = MPI_REQUEST_NULL;
    owner->recycle_request(released);
    owner->gc_requests();
  }
  return rc;
}

bool is_pending(const MPI_Request& request) {
  return request != MPI_REQUEST_NULL && request->ever_started && request->active;
}

}  // namespace

void obs_record_blocked_wait(Process& proc, const Request& request, double block_start) {
  if (!obs::spans_enabled()) return;
  const double t1 = proc.world->engine().now();
  if (t1 <= block_start) return;
  const std::uint64_t bytes =
      request.datatype != nullptr
          ? static_cast<std::uint64_t>(request.count) * request.datatype->size()
          : 0;
  obs::WaitClass cls;
  if (request.coll_scope) {
    cls = obs::WaitClass::kEarlyArrival;
  } else if (request.kind == Request::Kind::kRecv) {
    cls = obs::WaitClass::kLateSender;
  } else {
    cls = obs::WaitClass::kLateReceiver;
  }
  obs::spans()->on_blocked(proc.world_rank, block_start, t1, request.obs_flow_start,
                           request.obs_peer_ready, request.obs_peer_world, bytes, cls);
}

int wait_request(Request*& request, MPI_Status* status) {
  if (request == MPI_REQUEST_NULL || !request->ever_started || !request->active) {
    // MPI: waiting on an inactive/null request returns an "empty" status.
    if (status != MPI_STATUS_IGNORE) {
      status->MPI_SOURCE = MPI_ANY_SOURCE;
      status->MPI_TAG = MPI_ANY_TAG;
      status->MPI_ERROR = MPI_SUCCESS;
      status->count_bytes = 0;
    }
    return MPI_SUCCESS;
  }
  if (request->token != nullptr) {
    Process& proc = *request->owner;
    const bool is_recv = request->kind == Request::Kind::kRecv;
    const std::size_t bytes =
        request->datatype != nullptr
            ? static_cast<std::size_t>(request->count) * request->datatype->size()
            : 0;
    const double obs_t0 = obs::spans_enabled() ? proc.world->engine().now() : 0;
    BlockedOpGuard guard(proc, is_recv ? "recv" : "send", request->peer, request->tag,
                         request->comm != nullptr ? request->comm->id() : 0, bytes);
    request->token->wait();
    obs_record_blocked_wait(proc, *request, obs_t0);
    if (request->token->state() == sim::Activity::State::kFailed) {
      std::ostringstream os;
      os << "MPI_" << (is_recv ? "Recv" : "Send") << " (peer=" << request->peer
         << ", tag=" << request->tag << ", bytes=" << bytes
         << ") failed: a host or link on the transfer path went down";
      handle_operation_failure(proc, os.str());
    }
  }
  return finalize_completed(request, status);
}

// ---------------------------------------------------------------------------
// Internal helpers for collectives
// ---------------------------------------------------------------------------

int internal_isend(const void* buf, int count, Datatype* type, int dest, int tag, Comm* comm,
                   Request** out, bool coll) {
  Process& proc = current_process_checked();
  Request* req = proc.new_request();
  req->kind = Request::Kind::kSend;
  req->coll_scope = coll;
  req->send_buf = buf;
  req->count = count;
  req->datatype = type;
  req->peer = dest;
  req->tag = tag;
  req->comm = comm;
  post_send(*req);
  *out = req;
  return MPI_SUCCESS;
}

int internal_irecv(void* buf, int count, Datatype* type, int src, int tag, Comm* comm,
                   Request** out, bool coll) {
  Process& proc = current_process_checked();
  Request* req = proc.new_request();
  req->kind = Request::Kind::kRecv;
  req->coll_scope = coll;
  req->recv_buf = buf;
  req->count = count;
  req->datatype = type;
  req->peer = src;
  req->tag = tag;
  req->comm = comm;
  post_recv(*req);
  *out = req;
  return MPI_SUCCESS;
}

int internal_wait(Request* request) {
  MPI_Request handle = request;
  return wait_request(handle, MPI_STATUS_IGNORE);
}

int internal_send(const void* buf, int count, Datatype* type, int dest, int tag, Comm* comm,
                  bool coll) {
  Request* req = nullptr;
  const int rc = internal_isend(buf, count, type, dest, tag, comm, &req, coll);
  if (rc != MPI_SUCCESS) return rc;
  return internal_wait(req);
}

int internal_recv(void* buf, int count, Datatype* type, int src, int tag, Comm* comm,
                  MPI_Status* status, bool coll) {
  Request* req = nullptr;
  const int rc = internal_irecv(buf, count, type, src, tag, comm, &req, coll);
  if (rc != MPI_SUCCESS) return rc;
  MPI_Request handle = req;
  return wait_request(handle, status);
}

// ---------------------------------------------------------------------------
// Argument validation
// ---------------------------------------------------------------------------

bool valid_comm(MPI_Comm comm) { return comm != MPI_COMM_NULL; }
bool valid_count(int count) { return count >= 0; }
bool valid_type(MPI_Datatype type) { return type != MPI_DATATYPE_NULL; }

bool valid_rank_or_wildcards(int rank, Comm* comm, bool allow_wildcards) {
  if (rank == MPI_PROC_NULL) return true;
  if (allow_wildcards && rank == MPI_ANY_SOURCE) return true;
  return rank >= 0 && rank < comm->size();
}

bool valid_tag(int tag, bool allow_any) {
  if (allow_any && tag == MPI_ANY_TAG) return true;
  return tag >= 0 && tag <= MPI_TAG_UB;
}

}  // namespace smpi::core

// ---------------------------------------------------------------------------
// C API
// ---------------------------------------------------------------------------

using namespace smpi::core;
namespace sim = smpi::sim;

namespace {

// Simulated cost of one unsuccessful Test/Iprobe poll; keeps tight polling
// loops from freezing virtual time (SimGrid exposes the same knob).
constexpr double kTestPollInterval = 1e-7;
// Back-to-back unsuccessful polls before escalating from per-poll sleep
// timers to a completion subscription.
constexpr int kPollEscalationThreshold = 4;
// Cap on the subscription path's fallback wakeup, bounding how stale a poll
// loop's *non-MPI* exit condition (e.g. a shared-memory flag written by
// another rank) can get.
constexpr double kPollBackoffCap = 1e-3;

// Charge the simulated cost of an unsuccessful poll and return. Occasional
// polls pay a plain sleep (one timer each) — cheap, and exact for apps that
// interleave real work between polls. A *tight* polling loop (polls
// back-to-back with nothing in between) used to burn one timer per 1e-7 s of
// virtual time; after kPollEscalationThreshold consecutive polls we instead
// block on the states the poll is actually watching (`wake_sources`), plus
// an exponentially backed-off fallback timer, then round the wake-up to the
// next poll boundary — so virtual time still advances in whole polls and the
// caller observes the same quantization as real polling.
//
// Resource bounds: each wake source carries at most ONE forwarder for the
// lifetime of the polling loop (deduped through proc.poll_subscribed; the
// forwarder wakes whatever block is current via proc.poll_wait), and at most
// one fallback timer per process is armed at a time. Completion-driven waits
// therefore cost O(polls-until-escalation) timers; only a loop whose exit
// condition is invisible to MPI (a shared-memory flag set by another rank)
// degrades to the fallback heartbeat, 1 kHz at the backoff cap — 10^4 fewer
// timers than per-poll sleeps, with staleness bounded by kPollBackoffCap.
// `collect_wake_sources` is only invoked once the loop escalates, so the
// common interleaved-poll case never pays for building the source list.
template <typename SourceCollector>
void charge_unsuccessful_poll(SourceCollector&& collect_wake_sources) {
  auto& engine = SmpiWorld::instance()->engine();
  Process& proc = current_process_checked();
  const double start = engine.now();
  if (start - proc.last_poll_end <= kTestPollInterval * 0.5) {
    ++proc.poll_streak;
  } else {
    proc.poll_streak = 1;
  }
  const std::vector<sim::ActivityPtr> wake_sources =
      proc.poll_streak < kPollEscalationThreshold ? std::vector<sim::ActivityPtr>{}
                                                  : collect_wake_sources();
  if (wake_sources.empty()) {
    engine.sleep_for(kTestPollInterval);
  } else {
    auto merged = sim::new_activity("poll");
    for (const auto& source : wake_sources) {
      // One forwarder per token, ever: it wakes the *current* block. (If a
      // never-completing token dies and a new one is allocated at the same
      // address, the skipped forwarder is covered by the fallback timer.)
      const sim::Activity* raw = source.get();
      if (proc.poll_subscribed.insert(raw).second) {
        source->on_completion([&proc, raw](sim::Activity&) {
          proc.poll_subscribed.erase(raw);
          if (proc.poll_wait != nullptr) proc.poll_wait->finish(sim::Activity::State::kDone);
        });
      }
    }
    if (proc.poll_timer_deadline <= start) {
      const int doublings = std::min(proc.poll_streak - kPollEscalationThreshold, 40);
      const double backoff =
          std::min(kTestPollInterval * std::ldexp(1.0, doublings), kPollBackoffCap);
      proc.poll_timer_deadline = start + backoff;
      engine.add_timer(proc.poll_timer_deadline, [&proc] {
        proc.poll_timer_deadline = -1;
        if (proc.poll_wait != nullptr) proc.poll_wait->finish(sim::Activity::State::kDone);
      });
    }
    proc.poll_wait = merged;
    {
      BlockedOpGuard guard(proc, "poll");
      merged->wait();
    }
    proc.poll_wait = nullptr;
    // Quantize: the polling loop would only have observed the change at the
    // next multiple of the poll interval (and an unsuccessful poll costs at
    // least one interval).
    const double elapsed = engine.now() - start;
    const double polls = std::max(1.0, std::ceil(elapsed / kTestPollInterval - 1e-9));
    const double target = start + polls * kTestPollInterval;
    if (target > engine.now()) engine.sleep_for(target - engine.now());
  }
  proc.last_poll_end = engine.now();
}

// --- TI capture helpers ----------------------------------------------------
// Peers are recorded as *world* ranks so a trace captured on any communicator
// replays on MPI_COMM_WORLD (tags are preserved; see docs/architecture.md for
// the cross-communicator tag-collision caveat).

long long trace_peer(Comm* comm, int peer) {
  if (peer == MPI_PROC_NULL) return smpi::trace::kPeerNull;
  if (peer == MPI_ANY_SOURCE) return smpi::trace::kPeerAny;
  return comm->world_rank(peer);
}

long long trace_tag(int tag) { return tag == MPI_ANY_TAG ? smpi::trace::kTagAny : tag; }

// Counts are recorded as (element count, element size) — not a flat byte
// count — so a >2 GiB message replays without overflowing the int count the
// MPI entry points take.
void p2p_block(int count, MPI_Datatype type, long long* out_count, long long* out_elem) {
  const long long elem = static_cast<long long>(type->size());
  if (elem <= 0) {
    *out_count = 0;
    *out_elem = 1;
  } else {
    *out_count = count;
    *out_elem = elem;
  }
}

void emit_p2p(smpi::trace::ApiScope& scope, smpi::trace::TiOp op, Comm* comm, int peer, int count,
              MPI_Datatype type, int tag, long long req = -1) {
  if (!scope.recording()) return;
  smpi::trace::TiRecord r;
  r.op = op;
  r.peer = trace_peer(comm, peer);
  p2p_block(count, type, &r.count, &r.elem);
  r.tag = trace_tag(tag);
  r.req = req;
  scope.emit(r);
}

void emit_wait(smpi::trace::ApiScope& scope, long long req) {
  if (req < 0) return;
  smpi::trace::TiRecord r;
  r.op = smpi::trace::TiOp::kWait;
  r.req = req;
  scope.emit(r);
}

// Unsuccessful Test/Iprobe polls are replayed as the simulated time they
// consumed — the one record kind that is not strictly time-independent, but
// the only way a poll loop's clock can be reproduced offline.
void emit_poll_sleep(smpi::trace::ApiScope& scope) {
  if (!scope.recording()) return;
  const double elapsed = SmpiWorld::instance()->engine().now() - scope.start_time();
  if (elapsed <= 0) return;
  smpi::trace::TiRecord r;
  r.op = smpi::trace::TiOp::kSleep;
  r.value = elapsed;
  scope.emit(r);
}

int check_p2p_args(const void* buf, int count, MPI_Datatype type, int peer, int tag, MPI_Comm comm,
                   bool is_recv) {
  if (!valid_comm(comm)) return MPI_ERR_COMM;
  if (!valid_count(count)) return MPI_ERR_COUNT;
  if (!valid_type(type)) return MPI_ERR_TYPE;
  if (buf == nullptr && count > 0 && peer != MPI_PROC_NULL) return MPI_ERR_BUFFER;
  if (!valid_rank_or_wildcards(peer, comm, is_recv)) return MPI_ERR_RANK;
  if (!valid_tag(tag, is_recv)) return MPI_ERR_TAG;
  return MPI_SUCCESS;
}

}  // namespace

int MPI_Send(const void* buf, int count, MPI_Datatype datatype, int dest, int tag,
             MPI_Comm comm) {
  const int rc = check_p2p_args(buf, count, datatype, dest, tag, comm, false);
  if (rc != MPI_SUCCESS) return rc;
  smpi::trace::ApiScope scope("send");
  emit_p2p(scope, smpi::trace::TiOp::kSend, comm, dest, count, datatype, tag);
  return internal_send(buf, count, datatype, dest, tag, comm);
}

int MPI_Recv(void* buf, int count, MPI_Datatype datatype, int source, int tag, MPI_Comm comm,
             MPI_Status* status) {
  const int rc = check_p2p_args(buf, count, datatype, source, tag, comm, true);
  if (rc != MPI_SUCCESS) return rc;
  smpi::trace::ApiScope scope("recv");
  emit_p2p(scope, smpi::trace::TiOp::kRecv, comm, source, count, datatype, tag);
  return internal_recv(buf, count, datatype, source, tag, comm, status);
}

int MPI_Isend(const void* buf, int count, MPI_Datatype datatype, int dest, int tag, MPI_Comm comm,
              MPI_Request* request) {
  if (request == nullptr) return MPI_ERR_REQUEST;
  const int rc = check_p2p_args(buf, count, datatype, dest, tag, comm, false);
  if (rc != MPI_SUCCESS) return rc;
  smpi::trace::ApiScope scope("isend");
  Request* req = nullptr;
  internal_isend(buf, count, datatype, dest, tag, comm, &req);
  emit_p2p(scope, smpi::trace::TiOp::kIsend, comm, dest, count, datatype, tag,
           scope.register_request(req));
  *request = req;
  return MPI_SUCCESS;
}

int MPI_Irecv(void* buf, int count, MPI_Datatype datatype, int source, int tag, MPI_Comm comm,
              MPI_Request* request) {
  if (request == nullptr) return MPI_ERR_REQUEST;
  const int rc = check_p2p_args(buf, count, datatype, source, tag, comm, true);
  if (rc != MPI_SUCCESS) return rc;
  smpi::trace::ApiScope scope("irecv");
  Request* req = nullptr;
  internal_irecv(buf, count, datatype, source, tag, comm, &req);
  emit_p2p(scope, smpi::trace::TiOp::kIrecv, comm, source, count, datatype, tag,
           scope.register_request(req));
  *request = req;
  return MPI_SUCCESS;
}

int MPI_Sendrecv(const void* sendbuf, int sendcount, MPI_Datatype sendtype, int dest, int sendtag,
                 void* recvbuf, int recvcount, MPI_Datatype recvtype, int source, int recvtag,
                 MPI_Comm comm, MPI_Status* status) {
  int rc = check_p2p_args(sendbuf, sendcount, sendtype, dest, sendtag, comm, false);
  if (rc != MPI_SUCCESS) return rc;
  rc = check_p2p_args(recvbuf, recvcount, recvtype, source, recvtag, comm, true);
  if (rc != MPI_SUCCESS) return rc;
  smpi::trace::ApiScope scope("sendrecv");
  if (scope.recording()) {
    smpi::trace::TiRecord r;
    r.op = smpi::trace::TiOp::kSendrecv;
    r.peer = trace_peer(comm, dest);
    p2p_block(sendcount, sendtype, &r.count, &r.elem);
    r.tag = trace_tag(sendtag);
    r.peer2 = trace_peer(comm, source);
    p2p_block(recvcount, recvtype, &r.count2, &r.elem2);
    r.tag2 = trace_tag(recvtag);
    scope.emit(r);
  }
  Request* rreq = nullptr;
  Request* sreq = nullptr;
  internal_irecv(recvbuf, recvcount, recvtype, source, recvtag, comm, &rreq);
  internal_isend(sendbuf, sendcount, sendtype, dest, sendtag, comm, &sreq);
  MPI_Request rhandle = rreq;
  const int rrc = wait_request(rhandle, status);
  MPI_Request shandle = sreq;
  const int src = wait_request(shandle, MPI_STATUS_IGNORE);
  return rrc != MPI_SUCCESS ? rrc : src;
}

// ---------------------------------------------------------------------------
// Persistent requests
// ---------------------------------------------------------------------------

int MPI_Send_init(const void* buf, int count, MPI_Datatype datatype, int dest, int tag,
                  MPI_Comm comm, MPI_Request* request) {
  if (request == nullptr) return MPI_ERR_REQUEST;
  const int rc = check_p2p_args(buf, count, datatype, dest, tag, comm, false);
  if (rc != MPI_SUCCESS) return rc;
  Process& proc = current_process_checked();
  Request* req = proc.new_request();
  req->kind = Request::Kind::kSend;
  req->persistent = true;
  req->send_buf = buf;
  req->count = count;
  req->datatype = datatype;
  req->peer = dest;
  req->tag = tag;
  req->comm = comm;
  *request = req;
  return MPI_SUCCESS;
}

int MPI_Recv_init(void* buf, int count, MPI_Datatype datatype, int source, int tag, MPI_Comm comm,
                  MPI_Request* request) {
  if (request == nullptr) return MPI_ERR_REQUEST;
  const int rc = check_p2p_args(buf, count, datatype, source, tag, comm, true);
  if (rc != MPI_SUCCESS) return rc;
  Process& proc = current_process_checked();
  Request* req = proc.new_request();
  req->kind = Request::Kind::kRecv;
  req->persistent = true;
  req->recv_buf = buf;
  req->count = count;
  req->datatype = datatype;
  req->peer = source;
  req->tag = tag;
  req->comm = comm;
  *request = req;
  return MPI_SUCCESS;
}

int MPI_Start(MPI_Request* request) {
  if (request == nullptr || *request == MPI_REQUEST_NULL) return MPI_ERR_REQUEST;
  Request* req = *request;
  if (!req->persistent || req->active) return MPI_ERR_REQUEST;
  // A started persistent request is indistinguishable from a fresh
  // nonblocking one for replay purposes; each activation records anew.
  const bool is_send = req->kind == Request::Kind::kSend;
  smpi::trace::ApiScope scope(is_send ? "isend" : "irecv");
  emit_p2p(scope, is_send ? smpi::trace::TiOp::kIsend : smpi::trace::TiOp::kIrecv, req->comm,
           req->peer, req->count, req->datatype, req->tag, scope.register_request(req));
  if (is_send) {
    post_send(*req);
  } else {
    post_recv(*req);
  }
  return MPI_SUCCESS;
}

int MPI_Startall(int count, MPI_Request requests[]) {
  if (count < 0) return MPI_ERR_COUNT;
  if (count > 0 && requests == nullptr) return MPI_ERR_REQUEST;
  for (int i = 0; i < count; ++i) {
    const int rc = MPI_Start(&requests[i]);
    if (rc != MPI_SUCCESS) return rc;
  }
  return MPI_SUCCESS;
}

int MPI_Request_free(MPI_Request* request) {
  if (request == nullptr || *request == MPI_REQUEST_NULL) return MPI_ERR_REQUEST;
  Request* req = *request;
  smpi::trace::ApiScope scope("reqfree");
  if (scope.recording()) {
    const long long id = scope.lookup_request(req, true);
    if (id >= 0) {
      smpi::trace::TiRecord r;
      r.op = smpi::trace::TiOp::kReqFree;
      r.req = id;
      scope.emit(r);
    }
  }
  req->released = true;
  *request = MPI_REQUEST_NULL;
  if (!req->active) {
    req->owner->recycle_request(req);
    req->owner->gc_requests();
  }
  return MPI_SUCCESS;
}

// ---------------------------------------------------------------------------
// Wait / Test families
// ---------------------------------------------------------------------------

int MPI_Wait(MPI_Request* request, MPI_Status* status) {
  if (request == nullptr) return MPI_ERR_REQUEST;
  smpi::trace::ApiScope scope("wait");
  const long long id = scope.recording() ? scope.lookup_request(*request, true) : -1;
  const int rc = wait_request(*request, status);
  emit_wait(scope, id);
  return rc;
}

namespace {
int waitany_impl(int count, MPI_Request requests[], int* index, MPI_Status* status) {
  if (count < 0) return MPI_ERR_COUNT;
  if (index == nullptr) return MPI_ERR_ARG;
  *index = MPI_UNDEFINED;
  if (count == 0 || requests == nullptr) return MPI_SUCCESS;

  bool any_pending = false;
  for (int i = 0; i < count; ++i) {
    if (!is_pending(requests[i])) continue;
    any_pending = true;
    if (requests[i]->completed()) {
      *index = i;
      return wait_request(requests[i], status);
    }
  }
  if (!any_pending) return MPI_SUCCESS;  // all null/inactive: empty status

  // Block on a fresh merged token finished by whichever request completes
  // first. Late finishes on the same token are harmless (finish is
  // idempotent).
  auto merged = sim::new_activity("waitany");
  for (int i = 0; i < count; ++i) {
    if (is_pending(requests[i])) {
      requests[i]->token->on_completion(
          [merged](sim::Activity&) { merged->finish(sim::Activity::State::kDone); });
    }
  }
  Process& proc = current_process_checked();
  const double obs_t0 = smpi::obs::spans_enabled() ? proc.world->engine().now() : 0;
  {
    BlockedOpGuard guard(proc, "waitany");
    merged->wait();
  }
  for (int i = 0; i < count; ++i) {
    if (is_pending(requests[i]) && requests[i]->completed()) {
      *index = i;
      // Attribute the blocked time to the request that unblocked us; the
      // follow-up wait_request below records nothing (zero-length wait).
      obs_record_blocked_wait(proc, *requests[i], obs_t0);
      return wait_request(requests[i], status);
    }
  }
  SMPI_UNREACHABLE("waitany woke with no completed request");
}
}  // namespace

int MPI_Waitany(int count, MPI_Request requests[], int* index, MPI_Status* status) {
  smpi::trace::ApiScope scope("waitany");
  // The chosen request is only known post-hoc, and wait_request nulls its
  // slot — snapshot the handles so the capture id can still be resolved.
  std::vector<const Request*> snapshot;
  if (scope.recording() && count > 0 && requests != nullptr) {
    snapshot.assign(requests, requests + count);
  }
  const int rc = waitany_impl(count, requests, index, status);
  if (!snapshot.empty() && rc == MPI_SUCCESS && index != nullptr && *index != MPI_UNDEFINED) {
    emit_wait(scope, scope.lookup_request(snapshot[static_cast<std::size_t>(*index)], true));
  }
  return rc;
}

int MPI_Waitall(int count, MPI_Request requests[], MPI_Status statuses[]) {
  if (count < 0) return MPI_ERR_COUNT;
  if (count > 0 && requests == nullptr) return MPI_ERR_REQUEST;
  smpi::trace::ApiScope scope("waitall");
  if (scope.recording()) {
    smpi::trace::TiRecord r;
    r.op = smpi::trace::TiOp::kWaitall;
    for (int i = 0; i < count; ++i) {
      const long long id = scope.lookup_request(requests[i], true);
      if (id >= 0) r.reqs.push_back(id);
    }
    scope.emit(r);
  }
  int rc = MPI_SUCCESS;
  for (int i = 0; i < count; ++i) {
    MPI_Status* status = statuses == MPI_STATUSES_IGNORE ? MPI_STATUS_IGNORE : &statuses[i];
    const int one = wait_request(requests[i], status);
    if (one != MPI_SUCCESS) rc = MPI_ERR_IN_STATUS;
  }
  return rc;
}

namespace {
int waitsome_impl(int incount, MPI_Request requests[], int* outcount, int indices[],
                  MPI_Status statuses[]) {
  if (incount < 0) return MPI_ERR_COUNT;
  if (outcount == nullptr || (incount > 0 && (requests == nullptr || indices == nullptr))) {
    return MPI_ERR_ARG;
  }
  *outcount = 0;
  bool any_pending = false;
  for (int i = 0; i < incount; ++i) {
    if (is_pending(requests[i])) any_pending = true;
  }
  if (!any_pending) {
    *outcount = MPI_UNDEFINED;
    return MPI_SUCCESS;
  }
  // Wait until at least one completes.
  int first = MPI_UNDEFINED;
  const int rc = MPI_Waitany(incount, requests, &first, MPI_STATUS_IGNORE);
  if (rc != MPI_SUCCESS) return rc;
  if (first == MPI_UNDEFINED) {
    *outcount = MPI_UNDEFINED;
    return MPI_SUCCESS;
  }
  indices[(*outcount)++] = first;
  // Collect everything else that is already done.
  for (int i = 0; i < incount; ++i) {
    if (i == first) continue;
    if (is_pending(requests[i]) && requests[i]->completed()) {
      MPI_Status* status =
          statuses == MPI_STATUSES_IGNORE ? MPI_STATUS_IGNORE : &statuses[*outcount];
      wait_request(requests[i], status);
      indices[(*outcount)++] = i;
    }
  }
  return MPI_SUCCESS;
}
}  // namespace

int MPI_Waitsome(int incount, MPI_Request requests[], int* outcount, int indices[],
                 MPI_Status statuses[]) {
  smpi::trace::ApiScope scope("waitsome");
  std::vector<const Request*> snapshot;
  if (scope.recording() && incount > 0 && requests != nullptr) {
    snapshot.assign(requests, requests + incount);
  }
  const int rc = waitsome_impl(incount, requests, outcount, indices, statuses);
  if (!snapshot.empty() && rc == MPI_SUCCESS && *outcount != MPI_UNDEFINED) {
    // One wait record per returned index: the first blocks until its date,
    // the rest were already complete and replay as zero-time waits.
    for (int k = 0; k < *outcount; ++k) {
      emit_wait(scope,
                scope.lookup_request(snapshot[static_cast<std::size_t>(indices[k])], true));
    }
  }
  return rc;
}

int MPI_Test(MPI_Request* request, int* flag, MPI_Status* status) {
  if (request == nullptr || flag == nullptr) return MPI_ERR_ARG;
  smpi::trace::ApiScope scope("test");
  if (*request == MPI_REQUEST_NULL || !(*request)->ever_started || !(*request)->active) {
    *flag = 1;
    return wait_request(*request, status);  // empty status path
  }
  if ((*request)->completed()) {
    *flag = 1;
    const long long id = scope.recording() ? scope.lookup_request(*request, true) : -1;
    const int rc = wait_request(*request, status);
    emit_wait(scope, id);
    return rc;
  }
  *flag = 0;
  // Let simulated time advance between polls; a pure yield would starve the
  // clock when the poller is the only runnable process.
  MPI_Request req = *request;
  charge_unsuccessful_poll([req] { return std::vector<sim::ActivityPtr>{req->token}; });
  emit_poll_sleep(scope);
  return MPI_SUCCESS;
}

int MPI_Testany(int count, MPI_Request requests[], int* index, int* flag, MPI_Status* status) {
  if (count < 0) return MPI_ERR_COUNT;
  if (index == nullptr || flag == nullptr) return MPI_ERR_ARG;
  smpi::trace::ApiScope scope("testany");
  *index = MPI_UNDEFINED;
  *flag = 0;
  bool any_pending = false;
  for (int i = 0; i < count; ++i) {
    if (!is_pending(requests[i])) continue;
    any_pending = true;
    if (requests[i]->completed()) {
      *index = i;
      *flag = 1;
      const long long id = scope.recording() ? scope.lookup_request(requests[i], true) : -1;
      const int rc = wait_request(requests[i], status);
      emit_wait(scope, id);
      return rc;
    }
  }
  if (!any_pending) {
    *flag = 1;  // all inactive: returns flag=true with empty status
    if (status != MPI_STATUS_IGNORE) {
      status->MPI_SOURCE = MPI_ANY_SOURCE;
      status->MPI_TAG = MPI_ANY_TAG;
      status->MPI_ERROR = MPI_SUCCESS;
      status->count_bytes = 0;
    }
    return MPI_SUCCESS;
  }
  charge_unsuccessful_poll([requests, count] {
    std::vector<sim::ActivityPtr> pending;
    for (int i = 0; i < count; ++i) {
      if (is_pending(requests[i])) pending.push_back(requests[i]->token);
    }
    return pending;
  });
  emit_poll_sleep(scope);
  return MPI_SUCCESS;
}

int MPI_Testall(int count, MPI_Request requests[], int* flag, MPI_Status statuses[]) {
  if (count < 0) return MPI_ERR_COUNT;
  if (flag == nullptr) return MPI_ERR_ARG;
  smpi::trace::ApiScope scope("testall");
  bool any_incomplete = false;
  for (int i = 0; i < count; ++i) {
    if (is_pending(requests[i]) && !requests[i]->completed()) {
      any_incomplete = true;
      break;
    }
  }
  if (any_incomplete) {
    *flag = 0;
    // Any completion is progress worth re-polling for.
    charge_unsuccessful_poll([requests, count] {
      std::vector<sim::ActivityPtr> incomplete;
      for (int i = 0; i < count; ++i) {
        if (is_pending(requests[i]) && !requests[i]->completed()) {
          incomplete.push_back(requests[i]->token);
        }
      }
      return incomplete;
    });
    emit_poll_sleep(scope);
    return MPI_SUCCESS;
  }
  *flag = 1;
  if (scope.recording()) {
    smpi::trace::TiRecord r;
    r.op = smpi::trace::TiOp::kWaitall;
    for (int i = 0; i < count; ++i) {
      const long long id = scope.lookup_request(requests[i], true);
      if (id >= 0) r.reqs.push_back(id);
    }
    scope.emit(r);
  }
  return MPI_Waitall(count, requests, statuses);
}

// ---------------------------------------------------------------------------
// Probe
// ---------------------------------------------------------------------------

namespace {

smpi::core::Envelope* find_probe_match(Process& proc, int source, int tag, MPI_Comm comm) {
  auto it = proc.matching.find(comm->id());
  if (it == proc.matching.end()) return nullptr;
  for (auto& env : it->second.unexpected) {
    const bool src_ok = source == MPI_ANY_SOURCE || env->src_comm_rank == source;
    const bool tag_ok = tag == MPI_ANY_TAG || env->tag == tag;
    if (src_ok && tag_ok) return env.get();
  }
  return nullptr;
}

void fill_probe_status(const Envelope& env, MPI_Status* status) {
  if (status == MPI_STATUS_IGNORE) return;
  status->MPI_SOURCE = env.src_comm_rank;
  status->MPI_TAG = env.tag;
  status->MPI_ERROR = MPI_SUCCESS;
  status->count_bytes = static_cast<long long>(env.bytes);
}

}  // namespace

int MPI_Iprobe(int source, int tag, MPI_Comm comm, int* flag, MPI_Status* status) {
  if (!valid_comm(comm)) return MPI_ERR_COMM;
  if (flag == nullptr) return MPI_ERR_ARG;
  if (!valid_rank_or_wildcards(source, comm, true)) return MPI_ERR_RANK;
  if (!valid_tag(tag, true)) return MPI_ERR_TAG;
  smpi::trace::ApiScope scope("iprobe");
  Process& proc = current_process_checked();
  Envelope* env = find_probe_match(proc, source, tag, comm);
  if (env != nullptr) {
    *flag = 1;
    fill_probe_status(*env, status);
    // Successful probes consume neither time nor messages: nothing to replay.
  } else {
    *flag = 0;
    // The next thing that can change the answer is an envelope arrival.
    charge_unsuccessful_poll([&proc] {
      if (proc.arrival_signal == nullptr) {
        proc.arrival_signal = sim::new_activity("probe");
      }
      return std::vector<sim::ActivityPtr>{proc.arrival_signal};
    });
    emit_poll_sleep(scope);
  }
  return MPI_SUCCESS;
}

int MPI_Probe(int source, int tag, MPI_Comm comm, MPI_Status* status) {
  if (!valid_comm(comm)) return MPI_ERR_COMM;
  if (!valid_rank_or_wildcards(source, comm, true)) return MPI_ERR_RANK;
  if (!valid_tag(tag, true)) return MPI_ERR_TAG;
  smpi::trace::ApiScope scope("probe");
  if (scope.recording()) {
    smpi::trace::TiRecord r;
    r.op = smpi::trace::TiOp::kProbe;
    r.peer = trace_peer(comm, source);
    r.tag = trace_tag(tag);
    scope.emit(r);
  }
  Process& proc = current_process_checked();
  const double obs_t0 = smpi::obs::spans_enabled() ? proc.world->engine().now() : 0;
  while (true) {
    Envelope* env = find_probe_match(proc, source, tag, comm);
    if (env != nullptr) {
      if (smpi::obs::spans_enabled()) {
        const double now = proc.world->engine().now();
        if (now > obs_t0) {
          // Pure wait-for-arrival: no transfer happens inside a probe.
          smpi::obs::spans()->on_blocked(proc.world_rank, obs_t0, now, /*flow_start=*/now,
                                         env->obs_post_date, env->src_world_rank, env->bytes,
                                         smpi::obs::WaitClass::kLateSender);
        }
      }
      fill_probe_status(*env, status);
      return MPI_SUCCESS;
    }
    if (proc.arrival_signal == nullptr) {
      proc.arrival_signal = sim::new_activity("probe");
    }
    BlockedOpGuard guard(proc, "probe", source, tag, comm->id());
    proc.arrival_signal->wait();
  }
}

int MPI_Get_count(const MPI_Status* status, MPI_Datatype datatype, int* count) {
  if (status == nullptr || count == nullptr) return MPI_ERR_ARG;
  if (!valid_type(datatype)) return MPI_ERR_TYPE;
  if (datatype->size() == 0) {
    *count = status->count_bytes == 0 ? 0 : MPI_UNDEFINED;
    return MPI_SUCCESS;
  }
  const auto bytes = static_cast<std::size_t>(status->count_bytes);
  if (bytes % datatype->size() != 0) {
    *count = MPI_UNDEFINED;
  } else {
    *count = static_cast<int>(bytes / datatype->size());
  }
  return MPI_SUCCESS;
}
