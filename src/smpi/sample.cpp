// CPU-burst folding (§3.1, Figure 2).
//
// SMPI_SAMPLE_LOCAL(n)  — each process executes & times the burst n times,
//                         then replays the mean as a simulated delay;
// SMPI_SAMPLE_GLOBAL(n) — n measurements total across all processes;
// SMPI_SAMPLE_DELAY(f)  — the burst never runs; f flops are injected.
//
// When a burst *does* execute, the measured host wall-clock time is
// converted into target flops through config.host_speed_flops and injected
// into the simulated timeline, so executed and folded iterations cost
// simulated time consistently. Sites are identified by file:line, the same
// hash-table scheme the paper describes (§5.2).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <string>

#include "smpi/internals.hpp"
#include "trace/capture.hpp"
#include "util/check.hpp"

namespace smpi::core {
namespace {

// Global sample sites (SMPI_SAMPLE_GLOBAL shares measurements across ranks).
std::unordered_map<std::string, SampleSite>& global_sites() {
  static std::unordered_map<std::string, SampleSite> sites;
  return sites;
}

std::string site_key(const char* file, int line) {
  return std::string(file) + ":" + std::to_string(line);
}

SampleSite& lookup_site(const char* file, int line, bool global) {
  const std::string key = site_key(file, line);
  if (global) return global_sites()[key];
  return current_process_checked().local_samples[key];
}

double host_seconds_now() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void inject_host_seconds(double host_seconds) {
  if (host_seconds <= 0) return;
  smpi_execute_host_seconds(host_seconds);
}

}  // namespace

void reset_global_samples() { global_sites().clear(); }

double SampleSite::coefficient_of_variation() const {
  if (completed < 2) return std::numeric_limits<double>::infinity();
  const double mean = mean_host_seconds();
  if (mean <= 0) return 0;
  const double variance =
      std::max(0.0, sum_sq_host_seconds / completed - mean * mean);
  return std::sqrt(variance) / mean;
}

bool SampleSite::converged() const {
  if (precision <= 0) return false;  // fixed-count mode
  return completed >= 2 && coefficient_of_variation() <= precision;
}

}  // namespace smpi::core

using namespace smpi::core;

void smpi_execute_flops(double flops) {
  SMPI_REQUIRE(flops >= 0, "negative flops");
  Process& proc = current_process_checked();
  // The single funnel for simulated compute: executed SMPI_SAMPLE bursts,
  // folded replays, and explicit injections all arrive here, so one capture
  // point records every flop the rank burns between its MPI calls.
  smpi::trace::ApiScope scope("computing");
  if (scope.recording() && flops > 0) {
    smpi::trace::TiRecord r;
    r.op = smpi::trace::TiOp::kCompute;
    r.value = flops;
    scope.emit(r);
  }
  smpi::sim::ActivityPtr exec = proc.world->cpu().execute(proc.node, flops);
  {
    BlockedOpGuard guard(proc, "compute");
    exec->wait();
  }
  if (exec->state() == smpi::sim::Activity::State::kFailed) {
    handle_operation_failure(proc, "compute burst failed: host went down");
  }
}

void smpi_execute_host_seconds(double host_seconds) {
  SMPI_REQUIRE(host_seconds >= 0, "negative duration");
  Process& proc = current_process_checked();
  const SmpiConfig& config = proc.world->config();
  const double flops = host_seconds * config.host_speed_flops * config.cpu_scale;
  smpi_execute_flops(flops);
}

void smpi_sleep(double seconds) {
  SMPI_REQUIRE(seconds >= 0, "negative sleep");
  Process& proc = current_process_checked();
  smpi::trace::ApiScope scope("sleeping");
  if (scope.recording() && seconds > 0) {
    smpi::trace::TiRecord r;
    r.op = smpi::trace::TiOp::kSleep;
    r.value = seconds;
    scope.emit(r);
  }
  proc.world->engine().sleep_for(seconds);
}

int smpi_sample_enter(const char* file, int line, int global, int iterations, double flops) {
  Process& proc = current_process_checked();
  const std::string key = site_key(file, line);
  SMPI_REQUIRE(proc.active_samples.find(key) == proc.active_samples.end(),
               "SMPI_SAMPLE blocks must not nest on the same site");
  SampleActivation& activation = proc.active_samples[key];
  activation.global = global != 0;

  if (flops >= 0) {
    // SMPI_SAMPLE_DELAY: never execute, always inject.
    activation.executing = false;
    smpi_execute_flops(flops);
    return 0;
  }
  SampleSite& site = lookup_site(file, line, global != 0);
  site.target_iterations = iterations;
  if (site.executed < site.target_iterations && !site.converged()) {
    // Claim a measurement slot before running: with SMPI_SAMPLE_GLOBAL other
    // ranks may enter while we execute, and the budget is collective.
    site.executed += 1;
    activation.executing = true;
    activation.enter_host_time = host_seconds_now();
  } else {
    // Folded: replay the mean measured duration.
    activation.executing = false;
    inject_host_seconds(site.mean_host_seconds());
  }
  return 0;
}

int smpi_sample_enter_auto(const char* file, int line, int global, int max_iterations,
                           double precision) {
  SMPI_REQUIRE(max_iterations >= 2, "adaptive sampling needs at least two iterations");
  SMPI_REQUIRE(precision > 0, "adaptive sampling needs a positive precision");
  // Record the convergence target, then reuse the fixed-count machinery with
  // max_iterations as the hard cap.
  {
    Process& proc = current_process_checked();
    (void)proc;
    SampleSite& site = lookup_site(file, line, global != 0);
    site.precision = precision;
  }
  return smpi_sample_enter(file, line, global, max_iterations, -1);
}

int smpi_sample_continue(const char* file, int line, int global) {
  (void)global;
  Process& proc = current_process_checked();
  const std::string key = site_key(file, line);
  auto it = proc.active_samples.find(key);
  SMPI_REQUIRE(it != proc.active_samples.end(), "SMPI_SAMPLE continue without enter");
  if (it->second.executing) return 1;  // run the block (exit() will stop the clock)
  proc.active_samples.erase(it);       // folded or delay-only: skip the block
  return 0;
}

void smpi_sample_exit(const char* file, int line, int global) {
  Process& proc = current_process_checked();
  const std::string key = site_key(file, line);
  auto it = proc.active_samples.find(key);
  SMPI_REQUIRE(it != proc.active_samples.end() && it->second.executing,
               "SMPI_SAMPLE exit without executing enter");
  const double elapsed = host_seconds_now() - it->second.enter_host_time;
  SampleSite& site = lookup_site(file, line, global != 0);
  site.sum_host_seconds += elapsed;  // slot was claimed in enter()
  site.sum_sq_host_seconds += elapsed * elapsed;
  site.completed += 1;
  it->second.executing = false;
  // The executed burst also advances simulated time.
  inject_host_seconds(elapsed);
}
