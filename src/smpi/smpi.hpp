// The simulation-side API of SMPI: configure a target platform + model,
// then run an MPI program (a plain function using smpi/mpi.h) over N
// simulated processes inside this single OS process.
//
//   auto platform = smpi::platform::build_griffon();
//   smpi::core::SmpiConfig config;                 // flow model, SMPI defaults
//   smpi::core::SmpiWorld world(platform, config);
//   world.run(16, my_mpi_main);
//   double t = world.simulated_time();
//
// Ground-truth mode (the paper's "OpenMPI"/"MPICH2" real runs) is the same
// call with config.backend = kPacket and a personality.
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "noise/noise.hpp"
#include "platform/platform.hpp"
#include "pnet/packetnet.hpp"
#include "sim/engine.hpp"
#include "sim/fault.hpp"
#include "surf/cpu.hpp"
#include "surf/network.hpp"

namespace smpi::core {

class Process;
class Comm;
class Group;
class MemoryTracker;

// Models how a concrete MPI implementation moves one message: protocol
// switch point, per-message software overheads, and whether the rendezvous
// control messages are sent for real (ground-truth mode) or folded into the
// calibrated piece-wise model (SMPI mode).
struct Personality {
  std::string name = "smpi";
  std::uint64_t eager_threshold = 64 * 1024;
  double overhead_send_s = 0;       // sender-side per-message CPU cost
  double overhead_recv_s = 0;       // receiver-side per-message CPU cost
  double copy_cost_s_per_byte = 0;  // eager buffering memcpy cost
  bool emulate_protocol_messages = false;  // explicit RTS/CTS round-trip

  static Personality smpi();     // everything folded into the network model
  static Personality openmpi();  // ground-truth personality A
  static Personality mpich2();   // ground-truth personality B
};

// Collective-algorithm selection. "auto" keeps the built-in size-based
// dispatch (the MPICH2-style §5.3 rules); naming a variant forces it for
// every call, which is how what-if campaigns sweep over algorithm choices.
// A forced variant must still satisfy its own preconditions (e.g.
// recursive doubling needs a power-of-two size) — violating them is a hard
// error, not a silent fallback.
struct CollSelection {
  std::string bcast = "auto";      // binomial | scatter_ring_allgather
  std::string alltoall = "auto";   // bruck | basic | pairwise
  std::string allreduce = "auto";  // recursive_doubling | rabenseifner | reduce_bcast
  std::string allgather = "auto";  // recursive_doubling | ring
};

struct SmpiConfig {
  enum class Backend { kFlow, kPacket };
  Backend backend = Backend::kFlow;
  surf::NetworkConfig network;   // used when backend == kFlow
  pnet::PacketNetConfig packet;  // used when backend == kPacket
  Personality personality = Personality::smpi();
  sim::EngineConfig engine;

  // Host node performance (flop/s) used to convert measured CPU-burst
  // durations into target flops (§3.1/§6), and an additional user scale
  // factor for "what if the target nodes were k x faster" studies.
  double host_speed_flops = 1e9;
  double cpu_scale = 1.0;

  // Simulated-host RAM budget; the memory tracker flags configurations whose
  // unfolded footprint would not fit (the "OM" labels of Figure 16).
  std::uint64_t host_ram_budget_bytes = 16ull << 30;

  // Rank placement: rank r runs on node placement[r] when `placement` is
  // non-empty, otherwise on node (r * placement_stride) % host_count.
  std::vector<int> placement;
  int placement_stride = 1;

  // Forced collective-algorithm variants (campaign what-ifs); see above.
  CollSelection coll;

  // Zero-copy eager mode: collective-internal eager sends whose source
  // buffer is registered as stable for the enclosing algorithm skip the
  // snapshot copy and deliver straight from the user buffer at match time.
  // Timing is unaffected (the copy is modeled via copy_cost_s_per_byte
  // either way); this only changes how payload bytes move through the
  // simulator. Off = always snapshot (reference arm for equivalence tests).
  bool zero_copy_eager = true;

  // Failure model (sim/fault.hpp): host crashes / link faults scheduled at
  // simulated dates, plus seeded-random generation. An empty spec builds no
  // fault machinery at all, so all simulated times stay bit-identical to a
  // fault-free run. Faults require the flow backend. The spec's policy
  // decides what a rank does when a blocked operation fails: abort the rank
  // with a diagnostic, or hang so the deadlock detector reports the
  // wait-for state.
  sim::FaultSpec faults;

  // Noise model (noise/noise.hpp): the `message_jitter` channel adds a
  // seeded per-message delay at flow creation (requires the flow backend).
  // Static channels (host_speed / link_*) are applied to the Platform
  // *before* world construction — by campaign materialization or smpirun —
  // not here. An empty or identity spec installs nothing: the simulation is
  // bit-identical to a noise-free run. `noise.seed` should already carry the
  // replication sub-seed (noise::replication_seed) when campaigns replicate.
  noise::NoiseSpec noise;

  // Payload-free mode (offline trace replay): message *sizes* drive all
  // timing but payload bytes are never materialized — eager sends skip the
  // snapshot copy, receives skip the unpack, datatype pack/unpack and
  // reduction operators become no-ops. Buffers passed to MPI calls are only
  // used for size/offset arithmetic, so one shared scratch arena can serve
  // every rank.
  bool payload_free = false;
};

struct MemoryReport {
  std::uint64_t folded_peak_bytes = 0;    // what the simulation really allocates
  std::uint64_t unfolded_peak_bytes = 0;  // what m processes would have used
  std::uint64_t max_rank_peak_bytes = 0;  // largest single-rank footprint
  bool over_budget = false;               // unfolded footprint exceeds the host budget
};

// Hot-path accounting for the p2p transfer engine: how well the free-list
// pools recycle (hits vs heap fallbacks), and how often the zero-copy eager
// path elided the snapshot memcpy. `bytes_not_copied` is the payload volume
// that never went through an eager staging buffer.
struct P2pCounters {
  std::uint64_t pool_hits = 0;             // engine pools: block + buffer reuse
  std::uint64_t pool_misses = 0;           // engine pools: fresh heap allocations
  std::uint64_t eager_snapshots = 0;       // eager sends that copied into a staging buffer
  std::uint64_t eager_copy_elided = 0;     // eager sends proven stable: no snapshot taken
  std::uint64_t eager_flush_snapshots = 0; // zero-copy envelopes snapshotted at scope exit
  std::uint64_t bytes_not_copied = 0;      // payload bytes delivered without staging
};

using MpiMain = std::function<void(int argc, char** argv)>;

class SmpiWorld {
 public:
  SmpiWorld(const platform::Platform& platform, SmpiConfig config);
  ~SmpiWorld();

  SmpiWorld(const SmpiWorld&) = delete;
  SmpiWorld& operator=(const SmpiWorld&) = delete;

  // Runs `app` as `nprocs` MPI processes; returns when all have finished.
  // argv[0] is `app_name`, followed by `args`.
  void run(int nprocs, MpiMain app, std::vector<std::string> args = {},
           std::string app_name = "smpi_app");

  double simulated_time() const { return finish_time_; }
  MemoryReport memory_report() const;
  // Hot-path accounting: smpi-layer counters merged with the engine's pool
  // statistics (valid for the lifetime of the world).
  P2pCounters p2p_counters() const;
  bool aborted() const { return aborted_; }
  int abort_code() const { return abort_code_; }
  // First resource-failure diagnostic observed by a rank (abort policy);
  // empty when no operation failed.
  const std::string& failure_diagnostic() const { return fault_diagnostic_; }
  // The per-rank wait-for state (blocked operation + unmatched queues) the
  // deadlock detector appends to DeadlockError; also usable directly.
  std::string wait_for_diagnostic() const;

  sim::Engine& engine() { return *engine_; }
  const platform::Platform& platform() const { return platform_; }
  const SmpiConfig& config() const { return config_; }
  sim::NetworkBackend& network() { return *network_; }
  sim::ComputeBackend& cpu() { return *cpu_; }

  // --- internal services (used by the MPI call implementations) -----------
  static SmpiWorld* instance();
  Process* current_process();           // nullptr outside MPI ranks
  Process* process(int world_rank);
  int world_size() const { return static_cast<int>(processes_.size()); }
  Comm* world_comm() { return world_comm_; }
  Group* empty_group() { return empty_group_; }
  MemoryTracker& memory() { return *memory_; }
  void record_abort(int code);
  // Records the first fault diagnostic (abort policy) alongside the abort.
  void record_failure(const std::string& diagnostic);
  int next_comm_id() { return next_comm_id_++; }
  P2pCounters& p2p_raw() { return p2p_counters_; }  // smpi-layer increments

 private:
  const platform::Platform& platform_;
  SmpiConfig config_;
  std::unique_ptr<sim::Engine> engine_;
  std::shared_ptr<surf::CpuModel> cpu_model_;
  sim::NetworkBackend* network_ = nullptr;
  surf::FlowNetworkModel* flow_network_ = nullptr;  // null with the packet backend
  sim::ComputeBackend* cpu_ = nullptr;
  std::vector<std::unique_ptr<Process>> processes_;
  Comm* world_comm_ = nullptr;
  Group* empty_group_ = nullptr;
  std::unique_ptr<MemoryTracker> memory_;
  std::vector<std::unique_ptr<Comm>> static_comms_;
  std::vector<std::unique_ptr<Group>> static_groups_;
  std::exception_ptr first_exception_;
  std::vector<std::string> argv_storage_;
  std::vector<char*> argv_pointers_;
  P2pCounters p2p_counters_;  // pool fields filled from the engine on read
  std::unique_ptr<noise::MessageJitter> jitter_;  // null when no live jitter channel
  double finish_time_ = 0;
  std::string fault_diagnostic_;
  bool aborted_ = false;
  int abort_code_ = 0;
  int next_comm_id_ = 1;
};

// Convenience wrapper: build world, run, return simulated time.
double run_simulation(const platform::Platform& platform, const SmpiConfig& config, int nprocs,
                      MpiMain app, std::vector<std::string> args = {});

}  // namespace smpi::core
