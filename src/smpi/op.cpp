#include "smpi/internals.hpp"
#include "util/check.hpp"

namespace smpi::core {
namespace {

enum Builtin {
  kMax = 0,
  kMin,
  kSum,
  kProd,
  kLand,
  kBand,
  kLor,
  kBor,
  kLxor,
  kBxor,
};

template <typename T>
void apply_arith(Builtin op, const T* in, T* inout, int count) {
  switch (op) {
    case kMax:
      for (int i = 0; i < count; ++i) inout[i] = in[i] > inout[i] ? in[i] : inout[i];
      break;
    case kMin:
      for (int i = 0; i < count; ++i) inout[i] = in[i] < inout[i] ? in[i] : inout[i];
      break;
    case kSum:
      for (int i = 0; i < count; ++i) inout[i] = static_cast<T>(in[i] + inout[i]);
      break;
    case kProd:
      for (int i = 0; i < count; ++i) inout[i] = static_cast<T>(in[i] * inout[i]);
      break;
    case kLand:
      for (int i = 0; i < count; ++i) inout[i] = static_cast<T>((in[i] != T{}) && (inout[i] != T{}));
      break;
    case kLor:
      for (int i = 0; i < count; ++i) inout[i] = static_cast<T>((in[i] != T{}) || (inout[i] != T{}));
      break;
    case kLxor:
      for (int i = 0; i < count; ++i)
        inout[i] = static_cast<T>((in[i] != T{}) != (inout[i] != T{}));
      break;
    default:
      SMPI_UNREACHABLE("bitwise op dispatched to arithmetic applier");
  }
}

template <typename T>
void apply_bitwise(Builtin op, const T* in, T* inout, int count) {
  switch (op) {
    case kBand:
      for (int i = 0; i < count; ++i) inout[i] = static_cast<T>(in[i] & inout[i]);
      break;
    case kBor:
      for (int i = 0; i < count; ++i) inout[i] = static_cast<T>(in[i] | inout[i]);
      break;
    case kBxor:
      for (int i = 0; i < count; ++i) inout[i] = static_cast<T>(in[i] ^ inout[i]);
      break;
    default:
      SMPI_UNREACHABLE("non-bitwise op dispatched to bitwise applier");
  }
}

bool is_bitwise(Builtin op) { return op == kBand || op == kBor || op == kBxor; }

template <typename T>
void apply_typed(Builtin op, const void* in, void* inout, int count) {
  if (is_bitwise(op)) {
    if constexpr (std::is_integral_v<T>) {
      apply_bitwise<T>(op, static_cast<const T*>(in), static_cast<T*>(inout), count);
    } else {
      SMPI_REQUIRE(false, "bitwise reduction on floating-point datatype");
    }
  } else {
    apply_arith<T>(op, static_cast<const T*>(in), static_cast<T*>(inout), count);
  }
}

}  // namespace

Op::Op(BuiltinKind builtin, std::string name) : builtin_(builtin), name_(std::move(name)) {}

Op::Op(MPI_User_function* user_fn, bool commutative)
    : user_fn_(user_fn), commutative_(commutative), name_("user") {}

bool Op::valid_for(const Datatype& datatype) const {
  if (user_fn_ != nullptr) return true;
  if (!is_bitwise(static_cast<Builtin>(builtin_))) return true;
  switch (datatype.element_type()) {
    case BasicType::kFloat:
    case BasicType::kDouble:
    case BasicType::kLongDouble:
      return false;
    default:
      return true;
  }
}

void Op::apply(const void* in, void* inout, int count, Datatype* datatype) const {
  // Payload-free (replay) mode: reductions cost no simulated time and the
  // data is synthetic, so skip the host-side arithmetic entirely.
  {
    const SmpiWorld* world = SmpiWorld::instance();
    if (world != nullptr && world->config().payload_free) return;
  }
  if (user_fn_ != nullptr) {
    int len = count * static_cast<int>(datatype->element_count());
    MPI_Datatype handle = datatype;
    user_fn_(const_cast<void*>(in), inout, &len, &handle);
    return;
  }
  const auto op = static_cast<Builtin>(builtin_);
  const int n = count * static_cast<int>(datatype->element_count());
  switch (datatype->element_type()) {
    case BasicType::kChar:
      apply_typed<char>(op, in, inout, n);
      break;
    case BasicType::kSignedChar:
      apply_typed<signed char>(op, in, inout, n);
      break;
    case BasicType::kUnsignedChar:
    case BasicType::kByte:
      apply_typed<unsigned char>(op, in, inout, n);
      break;
    case BasicType::kShort:
      apply_typed<short>(op, in, inout, n);
      break;
    case BasicType::kUnsignedShort:
      apply_typed<unsigned short>(op, in, inout, n);
      break;
    case BasicType::kInt:
      apply_typed<int>(op, in, inout, n);
      break;
    case BasicType::kUnsigned:
      apply_typed<unsigned>(op, in, inout, n);
      break;
    case BasicType::kLong:
      apply_typed<long>(op, in, inout, n);
      break;
    case BasicType::kUnsignedLong:
      apply_typed<unsigned long>(op, in, inout, n);
      break;
    case BasicType::kLongLong:
      apply_typed<long long>(op, in, inout, n);
      break;
    case BasicType::kUnsignedLongLong:
      apply_typed<unsigned long long>(op, in, inout, n);
      break;
    case BasicType::kFloat:
      apply_typed<float>(op, in, inout, n);
      break;
    case BasicType::kDouble:
      apply_typed<double>(op, in, inout, n);
      break;
    case BasicType::kLongDouble:
      apply_typed<long double>(op, in, inout, n);
      break;
    case BasicType::kDerived:
      SMPI_UNREACHABLE("derived type without element type in reduction");
  }
}

namespace {
Op g_max(kMax, "MPI_MAX");
Op g_min(kMin, "MPI_MIN");
Op g_sum(kSum, "MPI_SUM");
Op g_prod(kProd, "MPI_PROD");
Op g_land(kLand, "MPI_LAND");
Op g_band(kBand, "MPI_BAND");
Op g_lor(kLor, "MPI_LOR");
Op g_bor(kBor, "MPI_BOR");
Op g_lxor(kLxor, "MPI_LXOR");
Op g_bxor(kBxor, "MPI_BXOR");
}  // namespace

}  // namespace smpi::core

MPI_Op MPI_MAX = &smpi::core::g_max;
MPI_Op MPI_MIN = &smpi::core::g_min;
MPI_Op MPI_SUM = &smpi::core::g_sum;
MPI_Op MPI_PROD = &smpi::core::g_prod;
MPI_Op MPI_LAND = &smpi::core::g_land;
MPI_Op MPI_BAND = &smpi::core::g_band;
MPI_Op MPI_LOR = &smpi::core::g_lor;
MPI_Op MPI_BOR = &smpi::core::g_bor;
MPI_Op MPI_LXOR = &smpi::core::g_lxor;
MPI_Op MPI_BXOR = &smpi::core::g_bxor;

int MPI_Op_create(MPI_User_function* function, int commute, MPI_Op* op) {
  if (function == nullptr || op == nullptr) return MPI_ERR_OP;
  auto& proc = smpi::core::current_process_checked();
  proc.ops.push_back(std::make_unique<smpi::core::Op>(function, commute != 0));
  *op = proc.ops.back().get();
  return MPI_SUCCESS;
}

int MPI_Op_free(MPI_Op* op) {
  if (op == nullptr || *op == MPI_OP_NULL) return MPI_ERR_OP;
  *op = MPI_OP_NULL;
  return MPI_SUCCESS;
}
