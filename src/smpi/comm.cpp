// Groups (local objects) and communicators (shared objects created
// collectively). Because all ranks share one address space, a communicator
// is a single object: the first rank reaching the k-th communicator-creating
// collective on a parent communicator builds it, the others fetch it from a
// deterministic slot — the shared-memory equivalent of a context-id
// agreement protocol.
#include <algorithm>
#include <set>

#include "smpi/internals.hpp"
#include "util/check.hpp"

namespace smpi::core {

Group::Group(std::vector<int> world_ranks) : world_ranks_(std::move(world_ranks)) {
  identity_ = true;
  for (std::size_t i = 0; i < world_ranks_.size(); ++i) {
    if (world_ranks_[i] != static_cast<int>(i)) {
      identity_ = false;
      break;
    }
  }
  if (!identity_) {
    reverse_.reserve(world_ranks_.size());
    for (std::size_t i = 0; i < world_ranks_.size(); ++i) {
      reverse_.emplace(world_ranks_[i], static_cast<int>(i));
    }
  }
}

int Group::rank_of_world(int world_rank) const {
  if (identity_) {
    return world_rank >= 0 && world_rank < size() ? world_rank : MPI_UNDEFINED;
  }
  auto it = reverse_.find(world_rank);
  return it == reverse_.end() ? MPI_UNDEFINED : it->second;
}

namespace {

Group* adopt_group(std::vector<int> world_ranks) {
  Process& proc = current_process_checked();
  proc.groups.push_back(std::make_unique<Group>(std::move(world_ranks)));
  return proc.groups.back().get();
}

// Fetch-or-create the communicator for the current creation collective.
// `build` is invoked by the first arriving rank only.
Comm* creation_slot_fetch(Comm* parent, const std::function<Comm*()>& build) {
  Process& proc = current_process_checked();
  const std::uint64_t epoch = parent->creation_epoch[proc.world_rank]++;
  auto it = parent->creation_slots.find(epoch);
  if (it == parent->creation_slots.end()) {
    Comm* created = build();
    it = parent->creation_slots.emplace(epoch, std::make_pair(created, 0)).first;
  }
  it->second.second += 1;
  Comm* result = it->second.first;
  if (it->second.second == parent->size()) parent->creation_slots.erase(it);
  return result;
}

}  // namespace
}  // namespace smpi::core

using namespace smpi::core;

// ---------------------------------------------------------------------------
// Groups
// ---------------------------------------------------------------------------

int MPI_Group_size(MPI_Group group, int* size) {
  if (group == MPI_GROUP_NULL || size == nullptr) return MPI_ERR_GROUP;
  *size = group->size();
  return MPI_SUCCESS;
}

int MPI_Group_rank(MPI_Group group, int* rank) {
  if (group == MPI_GROUP_NULL || rank == nullptr) return MPI_ERR_GROUP;
  *rank = group->rank_of_world(current_process_checked().world_rank);
  return MPI_SUCCESS;
}

int MPI_Group_incl(MPI_Group group, int n, const int ranks[], MPI_Group* newgroup) {
  if (group == MPI_GROUP_NULL || newgroup == nullptr) return MPI_ERR_GROUP;
  if (n < 0 || n > group->size()) return MPI_ERR_ARG;
  if (n > 0 && ranks == nullptr) return MPI_ERR_ARG;
  std::vector<int> members;
  members.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    if (ranks[i] < 0 || ranks[i] >= group->size()) return MPI_ERR_RANK;
    members.push_back(group->world_rank(ranks[i]));
  }
  *newgroup = adopt_group(std::move(members));
  return MPI_SUCCESS;
}

int MPI_Group_excl(MPI_Group group, int n, const int ranks[], MPI_Group* newgroup) {
  if (group == MPI_GROUP_NULL || newgroup == nullptr) return MPI_ERR_GROUP;
  if (n < 0 || n > group->size()) return MPI_ERR_ARG;
  if (n > 0 && ranks == nullptr) return MPI_ERR_ARG;
  std::set<int> excluded;
  for (int i = 0; i < n; ++i) {
    if (ranks[i] < 0 || ranks[i] >= group->size()) return MPI_ERR_RANK;
    excluded.insert(ranks[i]);
  }
  std::vector<int> members;
  for (int r = 0; r < group->size(); ++r) {
    if (excluded.find(r) == excluded.end()) members.push_back(group->world_rank(r));
  }
  *newgroup = adopt_group(std::move(members));
  return MPI_SUCCESS;
}

int MPI_Group_union(MPI_Group group1, MPI_Group group2, MPI_Group* newgroup) {
  if (group1 == MPI_GROUP_NULL || group2 == MPI_GROUP_NULL || newgroup == nullptr) {
    return MPI_ERR_GROUP;
  }
  std::vector<int> members = group1->world_ranks();
  for (int w : group2->world_ranks()) {
    if (group1->rank_of_world(w) == MPI_UNDEFINED) members.push_back(w);
  }
  *newgroup = adopt_group(std::move(members));
  return MPI_SUCCESS;
}

int MPI_Group_intersection(MPI_Group group1, MPI_Group group2, MPI_Group* newgroup) {
  if (group1 == MPI_GROUP_NULL || group2 == MPI_GROUP_NULL || newgroup == nullptr) {
    return MPI_ERR_GROUP;
  }
  std::vector<int> members;
  for (int w : group1->world_ranks()) {
    if (group2->rank_of_world(w) != MPI_UNDEFINED) members.push_back(w);
  }
  *newgroup = adopt_group(std::move(members));
  return MPI_SUCCESS;
}

int MPI_Group_difference(MPI_Group group1, MPI_Group group2, MPI_Group* newgroup) {
  if (group1 == MPI_GROUP_NULL || group2 == MPI_GROUP_NULL || newgroup == nullptr) {
    return MPI_ERR_GROUP;
  }
  std::vector<int> members;
  for (int w : group1->world_ranks()) {
    if (group2->rank_of_world(w) == MPI_UNDEFINED) members.push_back(w);
  }
  *newgroup = adopt_group(std::move(members));
  return MPI_SUCCESS;
}

int MPI_Group_translate_ranks(MPI_Group group1, int n, const int ranks1[], MPI_Group group2,
                              int ranks2[]) {
  if (group1 == MPI_GROUP_NULL || group2 == MPI_GROUP_NULL) return MPI_ERR_GROUP;
  if (n < 0) return MPI_ERR_ARG;
  if (n > 0 && (ranks1 == nullptr || ranks2 == nullptr)) return MPI_ERR_ARG;
  for (int i = 0; i < n; ++i) {
    if (ranks1[i] == MPI_PROC_NULL) {
      ranks2[i] = MPI_PROC_NULL;
      continue;
    }
    if (ranks1[i] < 0 || ranks1[i] >= group1->size()) return MPI_ERR_RANK;
    ranks2[i] = group2->rank_of_world(group1->world_rank(ranks1[i]));
  }
  return MPI_SUCCESS;
}

int MPI_Group_compare(MPI_Group group1, MPI_Group group2, int* result) {
  if (group1 == MPI_GROUP_NULL || group2 == MPI_GROUP_NULL || result == nullptr) {
    return MPI_ERR_GROUP;
  }
  if (group1->world_ranks() == group2->world_ranks()) {
    *result = MPI_IDENT;
    return MPI_SUCCESS;
  }
  std::vector<int> a = group1->world_ranks();
  std::vector<int> b = group2->world_ranks();
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  *result = (a == b) ? MPI_SIMILAR : MPI_UNEQUAL;
  return MPI_SUCCESS;
}

int MPI_Group_free(MPI_Group* group) {
  if (group == nullptr || *group == MPI_GROUP_NULL) return MPI_ERR_GROUP;
  *group = MPI_GROUP_NULL;  // storage reclaimed with the owning process
  return MPI_SUCCESS;
}

// ---------------------------------------------------------------------------
// Communicators
// ---------------------------------------------------------------------------

int MPI_Comm_rank(MPI_Comm comm, int* rank) {
  if (!valid_comm(comm) || rank == nullptr) return MPI_ERR_COMM;
  const int r = comm->rank_of_world(current_process_checked().world_rank);
  if (r == MPI_UNDEFINED) return MPI_ERR_COMM;
  *rank = r;
  return MPI_SUCCESS;
}

int MPI_Comm_size(MPI_Comm comm, int* size) {
  if (!valid_comm(comm) || size == nullptr) return MPI_ERR_COMM;
  *size = comm->size();
  return MPI_SUCCESS;
}

int MPI_Comm_group(MPI_Comm comm, MPI_Group* group) {
  if (!valid_comm(comm) || group == nullptr) return MPI_ERR_COMM;
  *group = adopt_group(comm->group().world_ranks());
  return MPI_SUCCESS;
}

int MPI_Comm_dup(MPI_Comm comm, MPI_Comm* newcomm) {
  if (!valid_comm(comm) || newcomm == nullptr) return MPI_ERR_COMM;
  Process& proc = current_process_checked();
  *newcomm = creation_slot_fetch(comm, [&] {
    proc.owned_comms.push_back(std::make_unique<Comm>(proc.world->next_comm_id(),
                                                      Group(comm->group().world_ranks())));
    return proc.owned_comms.back().get();
  });
  return MPI_Barrier(comm);
}

int MPI_Comm_create(MPI_Comm comm, MPI_Group group, MPI_Comm* newcomm) {
  if (!valid_comm(comm) || newcomm == nullptr) return MPI_ERR_COMM;
  if (group == MPI_GROUP_NULL) return MPI_ERR_GROUP;
  Process& proc = current_process_checked();
  Comm* created = creation_slot_fetch(comm, [&] {
    proc.owned_comms.push_back(
        std::make_unique<Comm>(proc.world->next_comm_id(), Group(group->world_ranks())));
    return proc.owned_comms.back().get();
  });
  const int rc = MPI_Barrier(comm);
  *newcomm =
      created->rank_of_world(proc.world_rank) == MPI_UNDEFINED ? MPI_COMM_NULL : created;
  return rc;
}

int MPI_Comm_split(MPI_Comm comm, int color, int key, MPI_Comm* newcomm) {
  if (!valid_comm(comm) || newcomm == nullptr) return MPI_ERR_COMM;
  if (color < 0 && color != MPI_UNDEFINED) return MPI_ERR_ARG;
  Process& proc = current_process_checked();
  const int size = comm->size();
  const int rank = comm->rank_of_world(proc.world_rank);

  // Everyone learns everyone's (color, key).
  std::vector<int> mine{color, key};
  std::vector<int> all(static_cast<std::size_t>(size) * 2);
  const int rc = MPI_Allgather(mine.data(), 2, MPI_INT, all.data(), 2, MPI_INT, comm);
  if (rc != MPI_SUCCESS) return rc;

  // Deterministic slot: the first arriving member builds one communicator
  // per color; everyone fetches theirs.
  const std::uint64_t epoch = comm->creation_epoch[proc.world_rank]++;
  auto it = comm->split_slots.find(epoch);
  if (it == comm->split_slots.end()) {
    std::map<int, std::vector<std::pair<int, int>>> members;  // color -> [(key, old rank)]
    for (int r = 0; r < size; ++r) {
      const int c = all[static_cast<std::size_t>(2 * r)];
      if (c == MPI_UNDEFINED) continue;
      members[c].emplace_back(all[static_cast<std::size_t>(2 * r + 1)], r);
    }
    std::map<int, Comm*> comms;
    for (auto& [c, ranks] : members) {
      std::sort(ranks.begin(), ranks.end());  // by (key, old rank)
      std::vector<int> world_ranks;
      world_ranks.reserve(ranks.size());
      for (const auto& [k, r] : ranks) {
        (void)k;
        world_ranks.push_back(comm->world_rank(r));
      }
      proc.owned_comms.push_back(
          std::make_unique<Comm>(proc.world->next_comm_id(), Group(std::move(world_ranks))));
      comms.emplace(c, proc.owned_comms.back().get());
    }
    it = comm->split_slots.emplace(epoch, std::make_pair(std::move(comms), 0)).first;
  }
  it->second.second += 1;
  Comm* result = MPI_COMM_NULL;
  if (color != MPI_UNDEFINED) {
    auto found = it->second.first.find(color);
    SMPI_ENSURE(found != it->second.first.end(), "split slot missing this color");
    result = found->second;
  }
  if (it->second.second == size) comm->split_slots.erase(it);
  *newcomm = result;
  (void)rank;
  return MPI_Barrier(comm);
}

int MPI_Comm_compare(MPI_Comm comm1, MPI_Comm comm2, int* result) {
  if (!valid_comm(comm1) || !valid_comm(comm2) || result == nullptr) return MPI_ERR_COMM;
  if (comm1 == comm2) {
    *result = MPI_IDENT;
    return MPI_SUCCESS;
  }
  int group_result = MPI_UNEQUAL;
  MPI_Group g1 = nullptr;
  MPI_Group g2 = nullptr;
  MPI_Comm_group(comm1, &g1);
  MPI_Comm_group(comm2, &g2);
  MPI_Group_compare(g1, g2, &group_result);
  if (group_result == MPI_IDENT) {
    *result = MPI_CONGRUENT;
  } else {
    *result = group_result;  // SIMILAR or UNEQUAL
  }
  return MPI_SUCCESS;
}

int MPI_Comm_free(MPI_Comm* comm) {
  if (comm == nullptr || *comm == MPI_COMM_NULL) return MPI_ERR_COMM;
  if (*comm == current_process_checked().world->world_comm()) return MPI_ERR_COMM;
  *comm = MPI_COMM_NULL;  // storage reclaimed with the owning process
  return MPI_SUCCESS;
}
