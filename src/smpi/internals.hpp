// Internal object model behind the MPI handles. Everything here lives in the
// single simulator process; MPI processes are sim::Actors and share this
// address space — which is precisely what enables the RAM-folding techniques
// of §3.2.
#pragma once

#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <limits>
#include <list>
#include <memory>
#include <string>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/activity.hpp"
#include "sim/pool.hpp"
#include "smpi/mpi.h"
#include "smpi/smpi.hpp"

namespace smpi::core {

// ---------------------------------------------------------------------------
// Datatype
// ---------------------------------------------------------------------------

enum class BasicType {
  kChar,
  kSignedChar,
  kUnsignedChar,
  kByte,
  kShort,
  kUnsignedShort,
  kInt,
  kUnsigned,
  kLong,
  kUnsignedLong,
  kLongLong,
  kUnsignedLongLong,
  kFloat,
  kDouble,
  kLongDouble,
  kDerived,
};

class Datatype {
 public:
  // Basic type.
  Datatype(BasicType basic, std::size_t size, std::string name);
  // Contiguous derived type.
  static Datatype* contiguous(int count, Datatype* oldtype);
  // Vector derived type: count blocks of blocklength elements, block starts
  // stride elements apart.
  static Datatype* vector(int count, int blocklength, int stride, Datatype* oldtype);

  std::size_t size() const { return size_; }       // payload bytes
  std::size_t extent() const { return extent_; }   // memory span in bytes
  BasicType basic() const { return basic_; }
  // The element type reduction operators apply to.
  BasicType element_type() const { return element_type_; }
  std::size_t element_size() const { return element_size_; }
  std::size_t element_count() const { return size_ / element_size_; }
  bool is_basic() const { return basic_ != BasicType::kDerived; }
  bool committed() const { return committed_; }
  void commit() { committed_ = true; }
  const std::string& name() const { return name_; }

  // (Un)marshal `count` items between user layout and a contiguous buffer.
  void pack(const void* user_buffer, int count, void* packed) const;
  void unpack(const void* packed, int count, void* user_buffer) const;
  // Partial unpack (truncated receives): consume at most `nbytes`.
  void unpack_bytes(const void* packed, std::size_t nbytes, void* user_buffer) const;
  bool needs_packing() const { return size_ != extent_; }

 private:
  Datatype() = default;
  BasicType basic_ = BasicType::kDerived;
  BasicType element_type_ = BasicType::kByte;
  std::size_t element_size_ = 1;
  std::size_t size_ = 0;
  std::size_t extent_ = 0;
  std::string name_;
  bool committed_ = true;
  // Flattened layout: (offset, length) byte runs within one extent.
  std::vector<std::pair<std::size_t, std::size_t>> blocks_;
};

// ---------------------------------------------------------------------------
// Reduction operators
// ---------------------------------------------------------------------------

class Op {
 public:
  using BuiltinKind = int;  // index into the builtin table
  explicit Op(BuiltinKind builtin, std::string name);
  Op(MPI_User_function* user_fn, bool commutative);

  bool commutative() const { return commutative_; }
  const std::string& name() const { return name_; }
  // Bitwise builtins are invalid on floating-point element types.
  bool valid_for(const Datatype& datatype) const;
  // in (+) inout -> inout, elementwise over count elements of datatype.
  void apply(const void* in, void* inout, int count, Datatype* datatype) const;

 private:
  BuiltinKind builtin_ = -1;
  MPI_User_function* user_fn_ = nullptr;
  bool commutative_ = true;
  std::string name_;
};

// ---------------------------------------------------------------------------
// Groups and communicators
// ---------------------------------------------------------------------------

class Group {
 public:
  explicit Group(std::vector<int> world_ranks);
  int size() const { return static_cast<int>(world_ranks_.size()); }
  int world_rank(int group_rank) const { return world_ranks_[static_cast<std::size_t>(group_rank)]; }
  // MPI_UNDEFINED when absent. O(1): the reverse lookup runs once per
  // message (post_send), which made a linear scan quadratic in ranks over a
  // large collective.
  int rank_of_world(int world_rank) const;
  const std::vector<int>& world_ranks() const { return world_ranks_; }

 private:
  std::vector<int> world_ranks_;
  bool identity_ = false;                 // world_ranks_[i] == i (MPI_COMM_WORLD)
  std::unordered_map<int, int> reverse_;  // built once when not the identity
};

class Comm {
 public:
  Comm(int id, Group group) : id_(id), group_(std::move(group)) {}
  int id() const { return id_; }
  const Group& group() const { return group_; }
  int size() const { return group_.size(); }
  int world_rank(int comm_rank) const { return group_.world_rank(comm_rank); }
  int rank_of_world(int world_rank) const { return group_.rank_of_world(world_rank); }

  // Collective-creation support: deterministic slot shared by all members.
  // Each member arriving at the k-th communicator-creating collective on this
  // comm agrees on k; the first to arrive builds the object.
  std::unordered_map<std::uint64_t, std::pair<Comm*, int>> creation_slots;  // epoch -> (comm, fetch count)
  // Comm_split slots: epoch -> (color -> comm, fetch count).
  std::unordered_map<std::uint64_t, std::pair<std::map<int, Comm*>, int>> split_slots;
  std::unordered_map<int, std::uint64_t> creation_epoch;  // per member world rank

 private:
  int id_;
  Group group_;
};

// ---------------------------------------------------------------------------
// Requests and matching
// ---------------------------------------------------------------------------

class Process;

// A message in flight from sender to receiver (one per send request).
// Envelopes are enqueued at the receiver in send order, which preserves the
// MPI non-overtaking guarantee even when rendezvous control messages are
// emulated (their latency delays the data transfer, not the matching).
struct Envelope {
  int src_comm_rank = 0;  // rank in the communicator
  int src_world_rank = 0;
  int dst_world_rank = 0;
  int tag = 0;
  int comm_id = 0;
  std::size_t bytes = 0;
  bool eager = true;
  // Eager snapshot: owned (pooled) copy of the packed payload. Null for
  // zero-copy eager sends (payload read from `zc_src` at match time) and
  // for rendezvous (payload read from the sender's buffer at transfer end).
  sim::BufferPool::Buffer eager_data;
  // Zero-copy eager: the sender's source bytes, proven stable for the
  // enclosing collective scope (see CollSendScope). The payload is copied
  // out at match time — the earliest point the receiver is known — which by
  // the collective's own send/recv causality precedes any later overwrite.
  const unsigned char* zc_src = nullptr;
  Request* send_request = nullptr;  // rendezvous back-pointer
  sim::ActivityPtr data_flow;       // eager: started at send time
  sim::ActivityPtr rts_flow;        // rendezvous protocol emulation
  bool matched = false;
  // Observability (set only while obs spans are enabled): the simulated date
  // the sender posted this envelope — for eager sends, also when the data
  // flow started.
  double obs_post_date = -1;
};

class Request {
 public:
  enum class Kind { kSend, kRecv };

  Kind kind = Kind::kSend;
  bool persistent = false;
  bool active = false;       // between Start and completion
  bool released = false;     // user freed the handle
  bool recycled = false;     // parked on the owner's free list
  bool ever_started = false;

  // Parameters (retained for persistent restart).
  const void* send_buf = nullptr;
  void* recv_buf = nullptr;
  int count = 0;
  Datatype* datatype = nullptr;
  int peer = MPI_PROC_NULL;  // dest (send) or source (recv); comm rank or wildcards
  int tag = 0;
  Comm* comm = nullptr;
  Process* owner = nullptr;
  // Collective-internal traffic matches in a shadow scope of the
  // communicator so it can never cross-match application point-to-points.
  bool coll_scope = false;

  // Completion state.
  sim::ActivityPtr token;  // fresh per activation; finished == request complete
  int status_source = MPI_ANY_SOURCE;
  int status_tag = MPI_ANY_TAG;
  int status_error = MPI_SUCCESS;
  std::size_t status_bytes = 0;

  // For rendezvous sends: the envelope we posted (until matched).
  Envelope* pending_envelope = nullptr;

  // Observability timestamps (set only while obs spans are enabled; reset
  // per activation). `obs_flow_start` is when the data flow for this
  // request's message began; `obs_peer_ready` is when the peer performed the
  // action that enabled the transfer (posted the envelope for a recv,
  // matched the rendezvous for a send) — the critical-path dependency edge.
  double obs_flow_start = -1;
  double obs_peer_ready = -1;
  int obs_peer_world = -1;

  bool completed() const { return token == nullptr || token->completed(); }
};

// Vectors, not lists: the queues are almost always short (matching hits the
// front), and erase-at-position preserves arrival order, which is what the
// MPI non-overtaking guarantee needs. A list costs a malloc/free per message.
struct MatchQueues {
  std::vector<std::shared_ptr<Envelope>> unexpected;  // posted sends, not yet matched
  std::vector<Request*> posted_recvs;                 // receives waiting for a sender
};

// ---------------------------------------------------------------------------
// Failure propagation (fault model + deadlock diagnostics)
// ---------------------------------------------------------------------------

// Thrown into a rank whose blocked operation failed under the abort policy
// (sim::FailurePolicy::kAbort); unwinds the rank like MPI_Abort, carrying a
// resource diagnostic the driver prints.
struct FaultError {
  std::string message;
};

// What a rank is blocked on right now — maintained by the wait sites so the
// simulated-deadlock detector can report a per-rank wait-for state instead
// of just actor names. op == nullptr means "not blocked inside MPI".
struct BlockedOp {
  const char* op = nullptr;  // "recv", "send", "waitany", "probe", "poll", "compute"
  int peer = -1;             // comm rank, MPI_ANY_SOURCE, or -1 when n/a
  int tag = -1;
  int comm_id = 0;           // 0 when n/a
  std::size_t bytes = 0;
};

// ---------------------------------------------------------------------------
// Sampling (§3.1) and memory tracking (§3.2)
// ---------------------------------------------------------------------------

struct SampleSite {
  int target_iterations = 0;
  int executed = 0;   // measurement slots claimed (bursts that will run)
  int completed = 0;  // measurements finished
  double sum_host_seconds = 0;
  double sum_sq_host_seconds = 0;
  // Adaptive mode (SMPI_SAMPLE_*_AUTO): stop sampling once the coefficient
  // of variation falls below `precision` (0 = fixed-count mode).
  double precision = 0;
  double mean_host_seconds() const {
    return completed == 0 ? 0 : sum_host_seconds / completed;
  }
  double coefficient_of_variation() const;
  bool converged() const;
};

// Per-rank activation of a sample block. Kept on the process (not the site):
// with SMPI_SAMPLE_GLOBAL several ranks can be inside the same site at once,
// e.g. while one of them is blocked injecting its folded delay.
struct SampleActivation {
  bool global = false;
  bool executing = false;
  double enter_host_time = 0;
};

class MemoryTracker {
 public:
  explicit MemoryTracker(int nranks, std::uint64_t budget_bytes);

  void allocate(int rank, std::uint64_t bytes, bool folded_already_counted);
  void release(int rank, std::uint64_t bytes, bool folded_already_counted);

  // Folded = bytes physically allocated by the simulation (shared blocks
  // once); unfolded = what every rank having a private copy would cost.
  std::uint64_t folded_current() const { return folded_current_; }
  std::uint64_t folded_peak() const { return folded_peak_; }
  std::uint64_t unfolded_current() const { return unfolded_current_; }
  std::uint64_t unfolded_peak() const { return unfolded_peak_; }
  std::uint64_t rank_peak(int rank) const;
  std::uint64_t max_rank_peak() const;
  bool over_budget() const { return unfolded_peak_ > budget_; }

 private:
  std::vector<std::uint64_t> rank_current_;
  std::vector<std::uint64_t> rank_peak_;
  std::uint64_t folded_current_ = 0;
  std::uint64_t folded_peak_ = 0;
  std::uint64_t unfolded_current_ = 0;
  std::uint64_t unfolded_peak_ = 0;
  std::uint64_t budget_ = 0;
};

struct SharedBlock {
  void* ptr = nullptr;
  std::size_t size = 0;
  int refcount = 0;
  std::string site;
};

// ---------------------------------------------------------------------------
// Per-rank process state
// ---------------------------------------------------------------------------

class Process {
 public:
  Process(SmpiWorld* world, int world_rank, int node);
  ~Process();

  SmpiWorld* world;
  int world_rank;
  int node;
  sim::Actor* actor = nullptr;

  bool initialized = false;
  bool finalized = false;

  // Receiver-side matching state, keyed by communicator id.
  std::unordered_map<int, MatchQueues> matching;
  // One-entry lookup cache: collective traffic hits the same (comm, scope)
  // key for every message, and map entries are never erased, so the cached
  // pointer stays valid for the process lifetime (unordered_map values are
  // node-stable across rehashes).
  MatchQueues& match_queues(int key) {
    if (key != match_cache_key_) {
      match_cache_key_ = key;
      match_cache_ = &matching[key];
    }
    return *match_cache_;
  }
  // Completed & replaced whenever a new envelope arrives (MPI_Probe wakes on it).
  sim::ActivityPtr arrival_signal;
  void signal_arrival();

  // Wait-for bookkeeping for the deadlock detector (see BlockedOp).
  BlockedOp blocked;

  // Unsuccessful-poll accounting (MPI_Test/Testany/Testall/Iprobe): a tight
  // polling loop is detected by back-to-back polls and escalated from
  // one-timer-per-poll sleeps to a completion subscription (see p2p.cpp).
  double last_poll_end = -1;
  int poll_streak = 0;
  // Escalated-poll state: the activity the current block waits on, the
  // deadline of the single armed fallback timer (-1 when none), and the
  // wake sources that already carry a forwarder — one subscription per
  // token for the whole polling loop, not one per round.
  sim::ActivityPtr poll_wait;
  double poll_timer_deadline = -1;
  std::unordered_set<const sim::Activity*> poll_subscribed;

  // Trace-capture nesting depth: >0 while inside an instrumented MPI entry
  // point, so the collectives' internal sends never double-record (see
  // trace/capture.hpp).
  int trace_depth = 0;

  // Local sampling sites ("file:line"); global sites live on the world.
  std::unordered_map<std::string, SampleSite> local_samples;
  // Sites this rank is currently inside (nesting detector + timer state).
  std::unordered_map<std::string, SampleActivation> active_samples;

  // Allocations owned by this rank (smpi_malloc bookkeeping).
  std::unordered_map<void*, std::size_t> allocations;

  // Objects created by this rank through the C API, freed with the process.
  std::vector<std::unique_ptr<Datatype>> datatypes;
  std::vector<std::unique_ptr<Op>> ops;
  std::vector<std::unique_ptr<Group>> groups;

  // Derived communicators are shared; the creating rank owns them.
  std::vector<std::unique_ptr<Comm>> owned_comms;

  std::vector<std::unique_ptr<Request>> owned_requests;
  // Requests reclaimed by gc_requests, handed back (reset) by new_request:
  // steady state reuses slots instead of growing/erasing owned_requests.
  std::vector<Request*> free_requests;
  Request* new_request();
  // Reclaims completed+released requests onto the free list. Batched: the
  // linear sweep runs once per kGcBatch releases, not per release — a root
  // waiting out 1024 scatter sends otherwise rescans its request table per
  // completion.
  void gc_requests();
  // Parks one completed+released request on the free list immediately (the
  // common case at wait/free sites; no table scan).
  void recycle_request(Request* r);

  // --- zero-copy eager state (see CollSendScope in p2p.cpp) ---------------
  // Source byte ranges registered as stable by the collective algorithm
  // currently running on this rank (a stack: scopes nest conservatively).
  struct StableRange {
    const unsigned char* begin = nullptr;
    const unsigned char* end = nullptr;
  };
  std::vector<StableRange> stable_ranges;
  // Zero-copy envelopes posted by this rank since the outermost scope was
  // entered. Any still unmatched at scope exit is snapshotted into a pooled
  // buffer (the source is still live inside the MPI call), so the proof
  // degrades safely instead of dangling.
  std::vector<std::shared_ptr<Envelope>> zc_outstanding;

  // Per-rank collective scratch, cleared per call but never freed: the
  // steady-state collective loop must not touch the heap (asserted by
  // test_p2p_pool). Safe to share across algorithms because exactly one
  // collective runs on a rank at a time and none recurses into another
  // while its own scratch is live.
  std::vector<std::size_t> coll_displs;
  std::vector<Request*> coll_requests;

 private:
  static constexpr int kGcBatch = 64;
  int gc_pending_ = 0;
  int match_cache_key_ = std::numeric_limits<int>::min();
  MatchQueues* match_cache_ = nullptr;
};

// RAII registration of a stable send-source range for zero-copy eager mode.
// A collective algorithm wraps the region its internal sends read from —
// after any initial pack/copy into it — in one of these; eager coll-scope
// sends of basic (non-packing) layout whose bytes lie inside a registered
// range then skip the snapshot copy and deliver from the source at match
// time. Destruction unregisters the range and snapshots every still-
// unmatched zero-copy envelope of the rank.
class CollSendScope {
 public:
  CollSendScope(Process& proc, const void* begin, std::size_t bytes);
  ~CollSendScope();
  CollSendScope(const CollSendScope&) = delete;
  CollSendScope& operator=(const CollSendScope&) = delete;

 private:
  Process& proc_;
  bool registered_ = false;
};

// ---------------------------------------------------------------------------
// Internal entry points shared between the API translation units
// ---------------------------------------------------------------------------

// Current process; never null inside a rank (checked).
Process& current_process_checked();

// RAII: marks what the current rank is blocked on for the duration of a
// wait, so the deadlock reporter can name the operation.
class BlockedOpGuard {
 public:
  BlockedOpGuard(Process& proc, const char* op, int peer = -1, int tag = -1, int comm_id = 0,
                 std::size_t bytes = 0)
      : proc_(proc), saved_(proc.blocked) {
    proc.blocked = BlockedOp{op, peer, tag, comm_id, bytes};
  }
  ~BlockedOpGuard() { proc_.blocked = saved_; }
  BlockedOpGuard(const BlockedOpGuard&) = delete;
  BlockedOpGuard& operator=(const BlockedOpGuard&) = delete;

 private:
  Process& proc_;
  BlockedOp saved_;  // waits nest (waitany -> wait_request): restore, not clear
};

// A blocked operation observed a kFailed activity. Applies the configured
// failure policy: abort -> throws FaultError (never returns); detect ->
// parks the rank on a never-finishing activity so the deadlock detector
// reports the stranded rank (never returns either).
[[noreturn]] void handle_operation_failure(Process& proc, const std::string& what);

// True when the current world runs payload-free (offline replay): sizes
// drive timing, payload bytes never move, and buffers passed to the
// transfer engine are never dereferenced (datatype.cpp).
bool payload_free_mode();

// Core transfer engine (p2p.cpp).
void post_send(Request& request);
void post_recv(Request& request);
// Wait for a single request's token from the calling rank.
int wait_request(Request*& request, MPI_Status* status);
void fill_status(const Request& request, MPI_Status* status);
// Span-layer hook (obs enabled only): records the blocked interval
// [block_start, now] for `request` on `proc`'s span stream, classified
// late-sender / late-receiver / early-arrival from the request's kind and
// scope (p2p.cpp; shared between wait_request and the waitany path).
void obs_record_blocked_wait(Process& proc, const Request& request, double block_start);

// Collective building blocks shared with coll.cpp. `coll` selects the shadow
// matching scope used by collective algorithms.
int internal_send(const void* buf, int count, Datatype* type, int dest, int tag, Comm* comm,
                  bool coll = false);
int internal_recv(void* buf, int count, Datatype* type, int src, int tag, Comm* comm,
                  MPI_Status* status, bool coll = false);
int internal_isend(const void* buf, int count, Datatype* type, int dest, int tag, Comm* comm,
                   Request** out, bool coll = false);
int internal_irecv(void* buf, int count, Datatype* type, int src, int tag, Comm* comm,
                   Request** out, bool coll = false);
int internal_wait(Request* request);

// Pre-size this rank's coll-scope match queues for a collective expecting up
// to `messages` concurrently unmatched envelopes / posted recvs. reserve()
// is a no-op once warm, so steady-state rounds stay off the heap even when
// a late interleaving peaks above every earlier round's high-water mark.
void reserve_coll_queues(Process& proc, Comm* comm, std::size_t messages);

// Sampling/memory helpers (sample.cpp / shared.cpp); called between
// simulations so one world's folded state never leaks into the next.
void reset_shared_allocations();
void reset_global_samples();

// Argument validation helpers.
bool valid_comm(MPI_Comm comm);
bool valid_count(int count);
bool valid_type(MPI_Datatype type);
bool valid_rank_or_wildcards(int rank, Comm* comm, bool allow_wildcards);
bool valid_tag(int tag, bool allow_any);

}  // namespace smpi::core
