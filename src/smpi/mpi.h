// SMPI's MPI interface — the subset of the MPI standard the paper lists in
// §5.1, plus the SMPI-specific macros of §5.2. Applications are ordinary MPI
// C/C++ programs: include this header, link against smpi_core, and hand your
// main function to smpi::Run() (see smpi/smpi.hpp) to execute it in
// simulation, every MPI process running as a thread of the simulator.
//
// Semantics notes:
//  * All calls return MPI_SUCCESS or an MPI_ERR_* code (MPI_ERRORS_RETURN
//    behaviour). Misuse never corrupts the simulator: argument errors are
//    reported, internal invariants throw.
//  * MPI_Send is buffered below the personality's eager threshold and
//    synchronous above it, like MPICH2/OpenMPI over TCP.
#pragma once

#include <cstddef>

// ---------------------------------------------------------------------------
// Handles
// ---------------------------------------------------------------------------

namespace smpi::core {
class Datatype;
class Op;
class Group;
class Comm;
class Request;
}  // namespace smpi::core

typedef smpi::core::Datatype* MPI_Datatype;
typedef smpi::core::Op* MPI_Op;
typedef smpi::core::Group* MPI_Group;
typedef smpi::core::Comm* MPI_Comm;
typedef smpi::core::Request* MPI_Request;

typedef struct MPI_Status {
  int MPI_SOURCE;
  int MPI_TAG;
  int MPI_ERROR;
  long long count_bytes;  // internal: received payload size
} MPI_Status;

// User-defined reduction: (invec, inoutvec, len, datatype).
typedef void(MPI_User_function)(void* invec, void* inoutvec, int* len, MPI_Datatype* datatype);

// ---------------------------------------------------------------------------
// Constants
// ---------------------------------------------------------------------------

enum {
  MPI_SUCCESS = 0,
  MPI_ERR_BUFFER,
  MPI_ERR_COUNT,
  MPI_ERR_TYPE,
  MPI_ERR_TAG,
  MPI_ERR_COMM,
  MPI_ERR_RANK,
  MPI_ERR_REQUEST,
  MPI_ERR_ROOT,
  MPI_ERR_GROUP,
  MPI_ERR_OP,
  MPI_ERR_TOPOLOGY,
  MPI_ERR_DIMS,
  MPI_ERR_ARG,
  MPI_ERR_UNKNOWN,
  MPI_ERR_TRUNCATE,
  MPI_ERR_OTHER,
  MPI_ERR_INTERN,
  MPI_ERR_PENDING,
  MPI_ERR_IN_STATUS,
  MPI_ERR_LASTCODE,
};

constexpr int MPI_ANY_SOURCE = -555;
constexpr int MPI_ANY_TAG = -666;
constexpr int MPI_PROC_NULL = -777;
constexpr int MPI_ROOT = -888;
constexpr int MPI_UNDEFINED = -32766;
constexpr int MPI_TAG_UB = 32767;

#define MPI_COMM_NULL ((MPI_Comm)0)
#define MPI_GROUP_NULL ((MPI_Group)0)
#define MPI_REQUEST_NULL ((MPI_Request)0)
#define MPI_DATATYPE_NULL ((MPI_Datatype)0)
#define MPI_OP_NULL ((MPI_Op)0)
#define MPI_STATUS_IGNORE ((MPI_Status*)0)
#define MPI_STATUSES_IGNORE ((MPI_Status*)0)
#define MPI_IN_PLACE ((void*)-222)

// Result of MPI_Comm_compare / MPI_Group_compare.
enum { MPI_IDENT = 0, MPI_CONGRUENT, MPI_SIMILAR, MPI_UNEQUAL };

// Per-simulation handles (each simulation owns its own world/group objects).
MPI_Comm smpi_comm_world();
MPI_Group smpi_group_empty();
#define MPI_COMM_WORLD (smpi_comm_world())
#define MPI_GROUP_EMPTY (smpi_group_empty())

// Predefined datatypes.
extern MPI_Datatype MPI_CHAR;
extern MPI_Datatype MPI_SIGNED_CHAR;
extern MPI_Datatype MPI_UNSIGNED_CHAR;
extern MPI_Datatype MPI_BYTE;
extern MPI_Datatype MPI_SHORT;
extern MPI_Datatype MPI_UNSIGNED_SHORT;
extern MPI_Datatype MPI_INT;
extern MPI_Datatype MPI_UNSIGNED;
extern MPI_Datatype MPI_LONG;
extern MPI_Datatype MPI_UNSIGNED_LONG;
extern MPI_Datatype MPI_LONG_LONG;
extern MPI_Datatype MPI_UNSIGNED_LONG_LONG;
extern MPI_Datatype MPI_FLOAT;
extern MPI_Datatype MPI_DOUBLE;
extern MPI_Datatype MPI_LONG_DOUBLE;

// Predefined reduction operators.
extern MPI_Op MPI_MAX;
extern MPI_Op MPI_MIN;
extern MPI_Op MPI_SUM;
extern MPI_Op MPI_PROD;
extern MPI_Op MPI_LAND;
extern MPI_Op MPI_BAND;
extern MPI_Op MPI_LOR;
extern MPI_Op MPI_BOR;
extern MPI_Op MPI_LXOR;
extern MPI_Op MPI_BXOR;

// ---------------------------------------------------------------------------
// Environment
// ---------------------------------------------------------------------------

int MPI_Init(int* argc, char*** argv);
int MPI_Finalize();
int MPI_Initialized(int* flag);
int MPI_Finalized(int* flag);
int MPI_Abort(MPI_Comm comm, int errorcode);
double MPI_Wtime();
double MPI_Wtick();
int MPI_Get_processor_name(char* name, int* resultlen);

// ---------------------------------------------------------------------------
// Datatypes and operators
// ---------------------------------------------------------------------------

int MPI_Type_size(MPI_Datatype datatype, int* size);
int MPI_Type_get_extent(MPI_Datatype datatype, long* lb, long* extent);
int MPI_Type_contiguous(int count, MPI_Datatype oldtype, MPI_Datatype* newtype);
int MPI_Type_vector(int count, int blocklength, int stride, MPI_Datatype oldtype,
                    MPI_Datatype* newtype);
int MPI_Type_commit(MPI_Datatype* datatype);
int MPI_Type_free(MPI_Datatype* datatype);

int MPI_Op_create(MPI_User_function* function, int commute, MPI_Op* op);
int MPI_Op_free(MPI_Op* op);

// ---------------------------------------------------------------------------
// Groups and communicators
// ---------------------------------------------------------------------------

int MPI_Group_size(MPI_Group group, int* size);
int MPI_Group_rank(MPI_Group group, int* rank);
int MPI_Group_incl(MPI_Group group, int n, const int ranks[], MPI_Group* newgroup);
int MPI_Group_excl(MPI_Group group, int n, const int ranks[], MPI_Group* newgroup);
int MPI_Group_union(MPI_Group group1, MPI_Group group2, MPI_Group* newgroup);
int MPI_Group_intersection(MPI_Group group1, MPI_Group group2, MPI_Group* newgroup);
int MPI_Group_difference(MPI_Group group1, MPI_Group group2, MPI_Group* newgroup);
int MPI_Group_translate_ranks(MPI_Group group1, int n, const int ranks1[], MPI_Group group2,
                              int ranks2[]);
int MPI_Group_compare(MPI_Group group1, MPI_Group group2, int* result);
int MPI_Group_free(MPI_Group* group);

int MPI_Comm_rank(MPI_Comm comm, int* rank);
int MPI_Comm_size(MPI_Comm comm, int* size);
int MPI_Comm_group(MPI_Comm comm, MPI_Group* group);
int MPI_Comm_dup(MPI_Comm comm, MPI_Comm* newcomm);
int MPI_Comm_create(MPI_Comm comm, MPI_Group group, MPI_Comm* newcomm);
// Partition `comm` by color; ranks ordered by (key, old rank). color may be
// MPI_UNDEFINED (the caller gets MPI_COMM_NULL). The paper's SMPI lists
// Comm_split as the one unimplemented communicator operation (§5.1); it is
// provided here as the natural extension.
int MPI_Comm_split(MPI_Comm comm, int color, int key, MPI_Comm* newcomm);
int MPI_Comm_compare(MPI_Comm comm1, MPI_Comm comm2, int* result);
int MPI_Comm_free(MPI_Comm* comm);

// ---------------------------------------------------------------------------
// Point-to-point
// ---------------------------------------------------------------------------

int MPI_Send(const void* buf, int count, MPI_Datatype datatype, int dest, int tag, MPI_Comm comm);
int MPI_Recv(void* buf, int count, MPI_Datatype datatype, int source, int tag, MPI_Comm comm,
             MPI_Status* status);
int MPI_Isend(const void* buf, int count, MPI_Datatype datatype, int dest, int tag, MPI_Comm comm,
              MPI_Request* request);
int MPI_Irecv(void* buf, int count, MPI_Datatype datatype, int source, int tag, MPI_Comm comm,
              MPI_Request* request);
int MPI_Sendrecv(const void* sendbuf, int sendcount, MPI_Datatype sendtype, int dest, int sendtag,
                 void* recvbuf, int recvcount, MPI_Datatype recvtype, int source, int recvtag,
                 MPI_Comm comm, MPI_Status* status);

int MPI_Send_init(const void* buf, int count, MPI_Datatype datatype, int dest, int tag,
                  MPI_Comm comm, MPI_Request* request);
int MPI_Recv_init(void* buf, int count, MPI_Datatype datatype, int source, int tag, MPI_Comm comm,
                  MPI_Request* request);
int MPI_Start(MPI_Request* request);
int MPI_Startall(int count, MPI_Request requests[]);
int MPI_Request_free(MPI_Request* request);

int MPI_Wait(MPI_Request* request, MPI_Status* status);
int MPI_Waitany(int count, MPI_Request requests[], int* index, MPI_Status* status);
int MPI_Waitall(int count, MPI_Request requests[], MPI_Status statuses[]);
int MPI_Waitsome(int incount, MPI_Request requests[], int* outcount, int indices[],
                 MPI_Status statuses[]);
int MPI_Test(MPI_Request* request, int* flag, MPI_Status* status);
int MPI_Testany(int count, MPI_Request requests[], int* index, int* flag, MPI_Status* status);
int MPI_Testall(int count, MPI_Request requests[], int* flag, MPI_Status statuses[]);

int MPI_Probe(int source, int tag, MPI_Comm comm, MPI_Status* status);
int MPI_Iprobe(int source, int tag, MPI_Comm comm, int* flag, MPI_Status* status);
int MPI_Get_count(const MPI_Status* status, MPI_Datatype datatype, int* count);

// ---------------------------------------------------------------------------
// Collectives (implemented as sets of point-to-point messages, §4.2)
// ---------------------------------------------------------------------------

int MPI_Barrier(MPI_Comm comm);
int MPI_Bcast(void* buffer, int count, MPI_Datatype datatype, int root, MPI_Comm comm);
int MPI_Gather(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
               int recvcount, MPI_Datatype recvtype, int root, MPI_Comm comm);
int MPI_Gatherv(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
                const int recvcounts[], const int displs[], MPI_Datatype recvtype, int root,
                MPI_Comm comm);
int MPI_Allgather(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
                  int recvcount, MPI_Datatype recvtype, MPI_Comm comm);
int MPI_Allgatherv(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
                   const int recvcounts[], const int displs[], MPI_Datatype recvtype,
                   MPI_Comm comm);
int MPI_Scatter(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
                int recvcount, MPI_Datatype recvtype, int root, MPI_Comm comm);
int MPI_Scatterv(const void* sendbuf, const int sendcounts[], const int displs[],
                 MPI_Datatype sendtype, void* recvbuf, int recvcount, MPI_Datatype recvtype,
                 int root, MPI_Comm comm);
int MPI_Reduce(const void* sendbuf, void* recvbuf, int count, MPI_Datatype datatype, MPI_Op op,
               int root, MPI_Comm comm);
int MPI_Allreduce(const void* sendbuf, void* recvbuf, int count, MPI_Datatype datatype, MPI_Op op,
                  MPI_Comm comm);
int MPI_Scan(const void* sendbuf, void* recvbuf, int count, MPI_Datatype datatype, MPI_Op op,
             MPI_Comm comm);
int MPI_Reduce_scatter(const void* sendbuf, void* recvbuf, const int recvcounts[],
                       MPI_Datatype datatype, MPI_Op op, MPI_Comm comm);
int MPI_Alltoall(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
                 int recvcount, MPI_Datatype recvtype, MPI_Comm comm);
int MPI_Alltoallv(const void* sendbuf, const int sendcounts[], const int sdispls[],
                  MPI_Datatype sendtype, void* recvbuf, const int recvcounts[],
                  const int rdispls[], MPI_Datatype recvtype, MPI_Comm comm);

// ---------------------------------------------------------------------------
// SMPI extensions (§3, §5.2)
// ---------------------------------------------------------------------------

// Tracked allocation: counts toward the owning rank's simulated footprint.
void* smpi_malloc(std::size_t size);
void smpi_free(void* ptr);

// RAM folding (technique #1 of §3.2): every rank calling from the same source
// location shares one allocation.
void* smpi_shared_malloc(std::size_t size, const char* file, int line);
void smpi_shared_free(void* ptr);
#define SMPI_SHARED_MALLOC(size) smpi_shared_malloc((size), __FILE__, __LINE__)
#define SMPI_FREE(ptr) smpi_shared_free(ptr)

// Inject simulated computation (delay = flops / target node speed).
void smpi_execute_flops(double flops);
// Inject a host-measured duration, scaled to the target node (§3.1).
void smpi_execute_host_seconds(double host_seconds);
// Sleep in simulated time.
void smpi_sleep(double seconds);

// CPU-burst sampling (§3.1, Figure 2). Usage:
//   SMPI_SAMPLE_LOCAL(10) { compute(); }   // measure 10x per process
//   SMPI_SAMPLE_GLOBAL(10) { compute(); }  // measure 10x over all processes
//   SMPI_SAMPLE_DELAY(1e6) { compute(); }  // never run; inject 1e6 flops
// After the measurement budget is exhausted the block is skipped and replaced
// by the mean measured delay.
int smpi_sample_enter(const char* file, int line, int global, int iterations, double flops);
int smpi_sample_continue(const char* file, int line, int global);
void smpi_sample_exit(const char* file, int line, int global);

#define SMPI_SAMPLE_LOCAL(iterations)                                   \
  for (smpi_sample_enter(__FILE__, __LINE__, 0, (iterations), -1);      \
       smpi_sample_continue(__FILE__, __LINE__, 0);                     \
       smpi_sample_exit(__FILE__, __LINE__, 0))
#define SMPI_SAMPLE_GLOBAL(iterations)                                  \
  for (smpi_sample_enter(__FILE__, __LINE__, 1, (iterations), -1);      \
       smpi_sample_continue(__FILE__, __LINE__, 1);                     \
       smpi_sample_exit(__FILE__, __LINE__, 1))
#define SMPI_SAMPLE_DELAY(flops)                                        \
  for (smpi_sample_enter(__FILE__, __LINE__, 0, 0, (flops));            \
       smpi_sample_continue(__FILE__, __LINE__, 0);                     \
       smpi_sample_exit(__FILE__, __LINE__, 0))

// Adaptive sampling (the automation §8 lists as future work): keep executing
// the burst until the measured mean is stable — the coefficient of variation
// drops below `precision` — or `max_iterations` is reached; folded
// afterwards. At least two bursts always execute.
int smpi_sample_enter_auto(const char* file, int line, int global, int max_iterations,
                           double precision);
#define SMPI_SAMPLE_LOCAL_AUTO(max_iterations, precision)                          \
  for (smpi_sample_enter_auto(__FILE__, __LINE__, 0, (max_iterations), (precision)); \
       smpi_sample_continue(__FILE__, __LINE__, 0);                                \
       smpi_sample_exit(__FILE__, __LINE__, 0))
#define SMPI_SAMPLE_GLOBAL_AUTO(max_iterations, precision)                         \
  for (smpi_sample_enter_auto(__FILE__, __LINE__, 1, (max_iterations), (precision)); \
       smpi_sample_continue(__FILE__, __LINE__, 1);                                \
       smpi_sample_exit(__FILE__, __LINE__, 1))
