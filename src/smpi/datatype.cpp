#include <cstring>

#include "smpi/internals.hpp"
#include "util/check.hpp"

namespace smpi::core {

Datatype::Datatype(BasicType basic, std::size_t size, std::string name)
    : basic_(basic),
      element_type_(basic),
      element_size_(size),
      size_(size),
      extent_(size),
      name_(std::move(name)) {
  blocks_.emplace_back(0, size);
}

namespace {
// Merge adjacent byte runs so pack/unpack touch long spans, not elements.
void coalesce_blocks(std::vector<std::pair<std::size_t, std::size_t>>& blocks) {
  std::vector<std::pair<std::size_t, std::size_t>> merged;
  for (const auto& block : blocks) {
    if (!merged.empty() && merged.back().first + merged.back().second == block.first) {
      merged.back().second += block.second;
    } else {
      merged.push_back(block);
    }
  }
  blocks = std::move(merged);
}
}  // namespace

Datatype* Datatype::contiguous(int count, Datatype* oldtype) {
  SMPI_REQUIRE(count >= 0, "negative count");
  auto* t = new Datatype();
  t->element_type_ = oldtype->element_type_;
  t->element_size_ = oldtype->element_size_;
  t->size_ = oldtype->size_ * static_cast<std::size_t>(count);
  t->extent_ = oldtype->extent_ * static_cast<std::size_t>(count);
  t->name_ = "contiguous(" + std::to_string(count) + "," + oldtype->name_ + ")";
  t->committed_ = false;
  for (int i = 0; i < count; ++i) {
    const std::size_t base = static_cast<std::size_t>(i) * oldtype->extent_;
    for (const auto& [off, len] : oldtype->blocks_) t->blocks_.emplace_back(base + off, len);
  }
  coalesce_blocks(t->blocks_);
  return t;
}

Datatype* Datatype::vector(int count, int blocklength, int stride, Datatype* oldtype) {
  SMPI_REQUIRE(count >= 0 && blocklength >= 0, "negative vector shape");
  SMPI_REQUIRE(stride >= blocklength, "overlapping vector strides are not supported");
  auto* t = new Datatype();
  t->element_type_ = oldtype->element_type_;
  t->element_size_ = oldtype->element_size_;
  t->size_ = oldtype->size_ * static_cast<std::size_t>(count) * static_cast<std::size_t>(blocklength);
  t->extent_ = count == 0 ? 0
                          : (static_cast<std::size_t>(count - 1) * static_cast<std::size_t>(stride) +
                             static_cast<std::size_t>(blocklength)) *
                                oldtype->extent_;
  t->name_ = "vector(" + std::to_string(count) + "," + std::to_string(blocklength) + "," +
             std::to_string(stride) + "," + oldtype->name_ + ")";
  t->committed_ = false;
  for (int i = 0; i < count; ++i) {
    for (int j = 0; j < blocklength; ++j) {
      const std::size_t base =
          (static_cast<std::size_t>(i) * static_cast<std::size_t>(stride) +
           static_cast<std::size_t>(j)) *
          oldtype->extent_;
      for (const auto& [off, len] : oldtype->blocks_) t->blocks_.emplace_back(base + off, len);
    }
  }
  coalesce_blocks(t->blocks_);
  return t;
}

// Payload-free (replay) mode moves no data anywhere: pack/unpack become
// no-ops at this single choke point. Shared with coll.cpp, which also gates
// its staging-buffer allocations on it (declared in internals.hpp).
bool payload_free_mode() {
  const SmpiWorld* world = SmpiWorld::instance();
  return world != nullptr && world->config().payload_free;
}

void Datatype::pack(const void* user_buffer, int count, void* packed) const {
  if (payload_free_mode()) return;
  if (count == 0) return;  // zero-byte message: buffers may legally be null
  const auto* src = static_cast<const unsigned char*>(user_buffer);
  auto* dst = static_cast<unsigned char*>(packed);
  if (!needs_packing()) {
    std::memcpy(dst, src, static_cast<std::size_t>(count) * size_);
    return;
  }
  for (int i = 0; i < count; ++i) {
    const unsigned char* item = src + static_cast<std::size_t>(i) * extent_;
    for (const auto& [off, len] : blocks_) {
      std::memcpy(dst, item + off, len);
      dst += len;
    }
  }
}

void Datatype::unpack(const void* packed, int count, void* user_buffer) const {
  if (payload_free_mode()) return;
  if (count == 0) return;  // zero-byte message: buffers may legally be null
  const auto* src = static_cast<const unsigned char*>(packed);
  auto* dst = static_cast<unsigned char*>(user_buffer);
  if (!needs_packing()) {
    std::memcpy(dst, src, static_cast<std::size_t>(count) * size_);
    return;
  }
  for (int i = 0; i < count; ++i) {
    unsigned char* item = dst + static_cast<std::size_t>(i) * extent_;
    for (const auto& [off, len] : blocks_) {
      std::memcpy(item + off, src, len);
      src += len;
    }
  }
}

void Datatype::unpack_bytes(const void* packed, std::size_t nbytes, void* user_buffer) const {
  if (payload_free_mode()) return;
  if (nbytes == 0) return;  // zero-byte message: buffers may legally be null
  const auto* src = static_cast<const unsigned char*>(packed);
  auto* dst = static_cast<unsigned char*>(user_buffer);
  if (!needs_packing()) {
    std::memcpy(dst, src, nbytes);
    return;
  }
  std::size_t item = 0;
  while (nbytes > 0) {
    unsigned char* base = dst + item * extent_;
    for (const auto& [off, len] : blocks_) {
      const std::size_t chunk = len < nbytes ? len : nbytes;
      std::memcpy(base + off, src, chunk);
      src += chunk;
      nbytes -= chunk;
      if (nbytes == 0) return;
    }
    ++item;
  }
}

namespace {

Datatype g_char(BasicType::kChar, sizeof(char), "MPI_CHAR");
Datatype g_schar(BasicType::kSignedChar, sizeof(signed char), "MPI_SIGNED_CHAR");
Datatype g_uchar(BasicType::kUnsignedChar, sizeof(unsigned char), "MPI_UNSIGNED_CHAR");
Datatype g_byte(BasicType::kByte, 1, "MPI_BYTE");
Datatype g_short(BasicType::kShort, sizeof(short), "MPI_SHORT");
Datatype g_ushort(BasicType::kUnsignedShort, sizeof(unsigned short), "MPI_UNSIGNED_SHORT");
Datatype g_int(BasicType::kInt, sizeof(int), "MPI_INT");
Datatype g_uint(BasicType::kUnsigned, sizeof(unsigned), "MPI_UNSIGNED");
Datatype g_long(BasicType::kLong, sizeof(long), "MPI_LONG");
Datatype g_ulong(BasicType::kUnsignedLong, sizeof(unsigned long), "MPI_UNSIGNED_LONG");
Datatype g_llong(BasicType::kLongLong, sizeof(long long), "MPI_LONG_LONG");
Datatype g_ullong(BasicType::kUnsignedLongLong, sizeof(unsigned long long),
                  "MPI_UNSIGNED_LONG_LONG");
Datatype g_float(BasicType::kFloat, sizeof(float), "MPI_FLOAT");
Datatype g_double(BasicType::kDouble, sizeof(double), "MPI_DOUBLE");
Datatype g_ldouble(BasicType::kLongDouble, sizeof(long double), "MPI_LONG_DOUBLE");

}  // namespace

}  // namespace smpi::core

// ---------------------------------------------------------------------------
// Public handles and C API
// ---------------------------------------------------------------------------

using smpi::core::Datatype;

MPI_Datatype MPI_CHAR = &smpi::core::g_char;
MPI_Datatype MPI_SIGNED_CHAR = &smpi::core::g_schar;
MPI_Datatype MPI_UNSIGNED_CHAR = &smpi::core::g_uchar;
MPI_Datatype MPI_BYTE = &smpi::core::g_byte;
MPI_Datatype MPI_SHORT = &smpi::core::g_short;
MPI_Datatype MPI_UNSIGNED_SHORT = &smpi::core::g_ushort;
MPI_Datatype MPI_INT = &smpi::core::g_int;
MPI_Datatype MPI_UNSIGNED = &smpi::core::g_uint;
MPI_Datatype MPI_LONG = &smpi::core::g_long;
MPI_Datatype MPI_UNSIGNED_LONG = &smpi::core::g_ulong;
MPI_Datatype MPI_LONG_LONG = &smpi::core::g_llong;
MPI_Datatype MPI_UNSIGNED_LONG_LONG = &smpi::core::g_ullong;
MPI_Datatype MPI_FLOAT = &smpi::core::g_float;
MPI_Datatype MPI_DOUBLE = &smpi::core::g_double;
MPI_Datatype MPI_LONG_DOUBLE = &smpi::core::g_ldouble;

int MPI_Type_size(MPI_Datatype datatype, int* size) {
  if (datatype == MPI_DATATYPE_NULL || size == nullptr) return MPI_ERR_TYPE;
  *size = static_cast<int>(datatype->size());
  return MPI_SUCCESS;
}

int MPI_Type_get_extent(MPI_Datatype datatype, long* lb, long* extent) {
  if (datatype == MPI_DATATYPE_NULL || lb == nullptr || extent == nullptr) return MPI_ERR_TYPE;
  *lb = 0;
  *extent = static_cast<long>(datatype->extent());
  return MPI_SUCCESS;
}

int MPI_Type_contiguous(int count, MPI_Datatype oldtype, MPI_Datatype* newtype) {
  if (oldtype == MPI_DATATYPE_NULL || newtype == nullptr) return MPI_ERR_TYPE;
  if (count < 0) return MPI_ERR_COUNT;
  auto& proc = smpi::core::current_process_checked();
  auto* t = Datatype::contiguous(count, oldtype);
  proc.datatypes.emplace_back(t);
  *newtype = t;
  return MPI_SUCCESS;
}

int MPI_Type_vector(int count, int blocklength, int stride, MPI_Datatype oldtype,
                    MPI_Datatype* newtype) {
  if (oldtype == MPI_DATATYPE_NULL || newtype == nullptr) return MPI_ERR_TYPE;
  if (count < 0 || blocklength < 0) return MPI_ERR_COUNT;
  if (stride < blocklength) return MPI_ERR_ARG;  // overlap unsupported
  auto& proc = smpi::core::current_process_checked();
  auto* t = Datatype::vector(count, blocklength, stride, oldtype);
  proc.datatypes.emplace_back(t);
  *newtype = t;
  return MPI_SUCCESS;
}

int MPI_Type_commit(MPI_Datatype* datatype) {
  if (datatype == nullptr || *datatype == MPI_DATATYPE_NULL) return MPI_ERR_TYPE;
  (*datatype)->commit();
  return MPI_SUCCESS;
}

int MPI_Type_free(MPI_Datatype* datatype) {
  if (datatype == nullptr || *datatype == MPI_DATATYPE_NULL) return MPI_ERR_TYPE;
  // Owned by the creating process; just null the user handle (the process
  // reclaims the storage when it ends — handles may still be referenced by
  // in-flight requests).
  *datatype = MPI_DATATYPE_NULL;
  return MPI_SUCCESS;
}
