// Collective communication algorithms, each expressed as a set of
// point-to-point messages that contend in the shared network model (§4.2) —
// never as monolithic formulas. The algorithms mirror the MPICH2/OpenMPI
// implementations the paper copied (§5.3): binomial trees for rooted
// operations, recursive doubling / ring for allgather-style ones, pairwise
// exchange for many-to-many.
#include <cstring>
#include <vector>

#include "smpi/coll.h"
#include "smpi/internals.hpp"
#include "trace/capture.hpp"
#include "util/check.hpp"

namespace smpi::coll {
namespace {

using namespace smpi::core;

// Tags separating the collective kinds inside the shadow matching scope.
enum CollTag {
  kTagBarrier = 1,
  kTagBcast,
  kTagGather,
  kTagScatter,
  kTagAllgather,
  kTagAlltoall,
  kTagReduce,
  kTagAllreduce,
  kTagScan,
  kTagReduceScatter,
};

int comm_rank_of(MPI_Comm comm) {
  return comm->rank_of_world(current_process_checked().world_rank);
}

bool is_power_of_two(int x) { return x > 0 && (x & (x - 1)) == 0; }

// Ordered reduction helper: result placed in `accumulator`, computed as
// lower-rank-operand OP higher-rank-operand, which is what MPI mandates for
// non-commutative operators.
void reduce_ordered(const void* low, void* high_and_result, int count, Datatype* type, Op* op) {
  op->apply(low, high_and_result, count, type);
}

int check_buffer_args(const void* buf, int count, MPI_Datatype type) {
  if (!valid_count(count)) return MPI_ERR_COUNT;
  if (!valid_type(type)) return MPI_ERR_TYPE;
  if (buf == nullptr && count > 0) return MPI_ERR_BUFFER;
  return MPI_SUCCESS;
}

// In payload-free mode the transfer engine never dereferences payload
// pointers (p2p ships sizes only, pack/unpack/Op::apply are no-ops), so the
// collectives' internal staging buffers — ring-rotation scratch, Bruck phase
// buffers, binomial subtree blocks, reduction accumulators — are pure
// overhead. Each algorithm gates its allocations and memcpys on this flag
// and degrades every staged segment to a user-buffer base pointer; the
// message *sizes* are computed exactly as before, so the simulated traffic
// (and therefore the simulated time) is bit-identical.
//
// The per-function `pf` locals below all read smpi::core::payload_free_mode().

}  // namespace

// ---------------------------------------------------------------------------
// Barrier: dissemination — ceil(log2 P) rounds of zero-byte messages.
// ---------------------------------------------------------------------------

int barrier_dissemination(MPI_Comm comm) {
  const int size = comm->size();
  const int rank = comm_rank_of(comm);
  if (size == 1) return MPI_SUCCESS;
  for (int mask = 1; mask < size; mask <<= 1) {
    const int dst = (rank + mask) % size;
    const int src = (rank - mask + size) % size;
    Request* sreq = nullptr;
    Request* rreq = nullptr;
    internal_isend(nullptr, 0, MPI_BYTE, dst, kTagBarrier, comm, &sreq, true);
    internal_irecv(nullptr, 0, MPI_BYTE, src, kTagBarrier, comm, &rreq, true);
    internal_wait(sreq);
    internal_wait(rreq);
  }
  return MPI_SUCCESS;
}

// ---------------------------------------------------------------------------
// Broadcast: binomial tree (Figure 6's shape, rooted at `root`).
// ---------------------------------------------------------------------------

int bcast_binomial(void* buffer, int count, MPI_Datatype datatype, int root, MPI_Comm comm) {
  const int size = comm->size();
  const int rank = comm_rank_of(comm);
  const int relative = (rank - root + size) % size;
  if (size == 1) return MPI_SUCCESS;

  // Zero-copy eligible: each rank receives into `buffer` exactly once,
  // strictly before posting any send from it, and never writes it again.
  CollSendScope zc_scope(current_process_checked(), buffer,
                         static_cast<std::size_t>(count) * datatype->size());
  int mask = 1;
  while (mask < size) {
    if (relative & mask) {
      const int src = (rank - mask + size) % size;
      const int rc = internal_recv(buffer, count, datatype, src, kTagBcast, comm,
                                   MPI_STATUS_IGNORE, true);
      if (rc != MPI_SUCCESS) return rc;
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (relative + mask < size) {
      const int dst = (rank + mask) % size;
      const int rc = internal_send(buffer, count, datatype, dst, kTagBcast, comm, true);
      if (rc != MPI_SUCCESS) return rc;
    }
    mask >>= 1;
  }
  return MPI_SUCCESS;
}

int bcast_scatter_ring_allgather(void* buffer, int count, MPI_Datatype datatype, int root,
                                 MPI_Comm comm) {
  const int size = comm->size();
  const int rank = comm_rank_of(comm);
  if (size == 1) return MPI_SUCCESS;
  const std::size_t total = static_cast<std::size_t>(count) * datatype->size();

  // Work on the packed representation; per-rank byte blocks are near-equal.
  // For contiguous datatypes the user buffer *is* the packed representation:
  // skip the per-rank scratch entirely — at 1024 ranks x 1 MiB the scratch
  // buffers alone were a gigabyte of allocation, zeroing, and copying per
  // bcast (the §3.2 memory-footprint concern, inside our own collective).
  // Payload-free mode skips it for every datatype (nothing reads the bytes).
  const bool contiguous = !datatype->needs_packing() || payload_free_mode();
  std::unique_ptr<unsigned char[]> scratch;
  unsigned char* data;
  if (contiguous) {
    data = static_cast<unsigned char*>(buffer);
  } else {
    scratch = std::make_unique<unsigned char[]>(std::max<std::size_t>(total, 1));
    data = scratch.get();
    if (rank == root) datatype->pack(buffer, count, data);
  }
  Process& proc = current_process_checked();
  std::vector<std::size_t>& displs = proc.coll_displs;  // per-rank scratch
  displs.assign(static_cast<std::size_t>(size) + 1, 0);
  for (int r = 0; r < size; ++r) {
    const std::size_t block = total / static_cast<std::size_t>(size) +
                              (static_cast<std::size_t>(r) < total % static_cast<std::size_t>(size)
                                   ? 1
                                   : 0);
    displs[static_cast<std::size_t>(r) + 1] = displs[static_cast<std::size_t>(r)] + block;
  }
  auto block_of = [&displs](int r) {
    return displs[static_cast<std::size_t>(r) + 1] - displs[static_cast<std::size_t>(r)];
  };

  // Zero-copy eligible over `data` (user buffer or scratch — both outlive
  // the scope): every block is written by at most one recv, strictly before
  // any send of that block is posted, and never rewritten.
  CollSendScope zc_scope(proc, data, total);
  // A rank posts at most 2(size-1) zero-copy sends per scope (scatter +
  // ring). Reserving the analytic bound up front keeps later rounds off the
  // heap even when a message interleaving peaks above every earlier round's
  // high-water mark (clear() keeps capacity, but only up to the peak seen).
  proc.zc_outstanding.reserve(2 * static_cast<std::size_t>(size));
  // Receiver side of the same bound: at most `size` envelopes can sit
  // unmatched in this rank's coll-scope queue at once.
  reserve_coll_queues(proc, comm, static_cast<std::size_t>(size) + 1);

  // Phase 1: root scatters the blocks (linear, block r to comm rank r).
  if (rank == root) {
    std::vector<Request*>& sends = proc.coll_requests;  // per-rank scratch
    sends.clear();
    for (int r = 0; r < size; ++r) {
      if (r == root || block_of(r) == 0) continue;
      Request* req = nullptr;
      internal_isend(data + displs[static_cast<std::size_t>(r)],
                     static_cast<int>(block_of(r)), MPI_BYTE, r, kTagBcast, comm, &req, true);
      sends.push_back(req);
    }
    for (Request* req : sends) internal_wait(req);
  } else if (block_of(rank) > 0) {
    const int rc = internal_recv(data + displs[static_cast<std::size_t>(rank)],
                                 static_cast<int>(block_of(rank)), MPI_BYTE, root, kTagBcast,
                                 comm, MPI_STATUS_IGNORE, true);
    if (rc != MPI_SUCCESS) return rc;
  }

  // Phase 2: ring allgather of the blocks.
  const int right = (rank + 1) % size;
  const int left = (rank - 1 + size) % size;
  for (int step = 0; step < size - 1; ++step) {
    const int send_block = (rank - step + size) % size;
    const int recv_block = (rank - step - 1 + size) % size;
    Request* sreq = nullptr;
    Request* rreq = nullptr;
    internal_isend(data + displs[static_cast<std::size_t>(send_block)],
                   static_cast<int>(block_of(send_block)), MPI_BYTE, right, kTagBcast, comm,
                   &sreq, true);
    internal_irecv(data + displs[static_cast<std::size_t>(recv_block)],
                   static_cast<int>(block_of(recv_block)), MPI_BYTE, left, kTagBcast, comm,
                   &rreq, true);
    internal_wait(sreq);
    internal_wait(rreq);
  }
  if (!contiguous && rank != root) datatype->unpack(data, count, buffer);
  return MPI_SUCCESS;
}

// ---------------------------------------------------------------------------
// Scatter: binomial tree. Process 0 (relative to root) holds all blocks and
// halves its payload towards each subtree head — 8/4/2/1 blocks for P=16,
// exactly the communication scheme of Figure 6.
// ---------------------------------------------------------------------------

int scatter_binomial(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
                     int recvcount, MPI_Datatype recvtype, int root, MPI_Comm comm) {
  const int size = comm->size();
  const int rank = comm_rank_of(comm);
  const int relative = (rank - root + size) % size;
  const std::size_t block = static_cast<std::size_t>(sendcount) *
                            (rank == root ? sendtype->size() : recvtype->size());

  // Packed staging buffer in *relative* rank order. The root rotates its send
  // buffer so subtree payloads are contiguous; an interior node at relative
  // rank r receives the blocks for relative ranks [r, r + min(mask, size-r)).
  // Payload-free: no staging, every segment is the caller's buffer base.
  const bool pf = payload_free_mode();
  std::vector<unsigned char> staging;
  auto* user = static_cast<unsigned char*>(rank == root ? const_cast<void*>(sendbuf) : recvbuf);
  auto seg = [&](std::size_t offset) { return pf ? user : staging.data() + offset; };
  int mask = 1;

  if (relative == 0) {
    if (!pf) {
      staging.resize(block * static_cast<std::size_t>(size));
      std::vector<unsigned char> packed(block * static_cast<std::size_t>(size));
      sendtype->pack(sendbuf, sendcount * size, packed.data());
      for (int r = 0; r < size; ++r) {
        const int rel = (r - root + size) % size;
        std::memcpy(staging.data() + static_cast<std::size_t>(rel) * block,
                    packed.data() + static_cast<std::size_t>(r) * block, block);
      }
    }
    while (mask < size) mask <<= 1;
  } else {
    while (!(relative & mask)) mask <<= 1;
    const int src = (rank - mask + size) % size;
    const auto held_blocks = static_cast<std::size_t>(std::min(mask, size - relative));
    if (!pf) staging.resize(block * held_blocks);
    const int rc = internal_recv(seg(0), static_cast<int>(block * held_blocks), MPI_BYTE, src,
                                 kTagScatter, comm, MPI_STATUS_IGNORE, true);
    if (rc != MPI_SUCCESS) return rc;
  }

  // Forward sub-blocks to subtree heads, largest subtree first — the 8/4/2/1
  // halving of Figure 6. Sends are posted nonblocking and progress
  // concurrently: the subtree transfers share this node's uplink, which is
  // exactly the self-contention Figures 7-9 study.
  std::vector<Request*> forwards;
  mask >>= 1;
  while (mask > 0) {
    if (relative + mask < size) {
      const int dst = (rank + mask) % size;
      const auto send_blocks = static_cast<std::size_t>(std::min(mask, size - relative - mask));
      Request* req = nullptr;
      const int rc = internal_isend(seg(static_cast<std::size_t>(mask) * block),
                                    static_cast<int>(send_blocks * block), MPI_BYTE, dst,
                                    kTagScatter, comm, &req, true);
      if (rc != MPI_SUCCESS) return rc;
      forwards.push_back(req);
    }
    mask >>= 1;
  }
  for (Request* req : forwards) internal_wait(req);

  // Own block is block 0 of the staging area.
  if (!pf && recvbuf != MPI_IN_PLACE) {
    recvtype->unpack(staging.data(), recvcount, recvbuf);
  }
  return MPI_SUCCESS;
}

int scatter_linear(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
                   int recvcount, MPI_Datatype recvtype, int root, MPI_Comm comm) {
  const int size = comm->size();
  const int rank = comm_rank_of(comm);
  if (rank == root) {
    const auto* base = static_cast<const unsigned char*>(sendbuf);
    std::vector<Request*> requests;
    for (int r = 0; r < size; ++r) {
      const void* chunk = base + static_cast<std::size_t>(r) *
                                     static_cast<std::size_t>(sendcount) * sendtype->extent();
      if (r == rank) {
        if (recvbuf != MPI_IN_PLACE && !payload_free_mode()) {
          std::vector<unsigned char> packed(static_cast<std::size_t>(sendcount) *
                                            sendtype->size());
          sendtype->pack(chunk, sendcount, packed.data());
          recvtype->unpack(packed.data(), recvcount, recvbuf);
        }
        continue;
      }
      Request* req = nullptr;
      internal_isend(chunk, sendcount, sendtype, r, kTagScatter, comm, &req, true);
      requests.push_back(req);
    }
    for (Request* req : requests) internal_wait(req);
    return MPI_SUCCESS;
  }
  return internal_recv(recvbuf, recvcount, recvtype, root, kTagScatter, comm, MPI_STATUS_IGNORE,
                       true);
}

// ---------------------------------------------------------------------------
// Gather: binomial tree (reverse scatter).
// ---------------------------------------------------------------------------

int gather_binomial(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
                    int recvcount, MPI_Datatype recvtype, int root, MPI_Comm comm) {
  const int size = comm->size();
  const int rank = comm_rank_of(comm);
  const int relative = (rank - root + size) % size;
  const bool in_place_root = (rank == root && sendbuf == MPI_IN_PLACE);
  const std::size_t block = in_place_root
                                ? static_cast<std::size_t>(recvcount) * recvtype->size()
                                : static_cast<std::size_t>(sendcount) * sendtype->size();

  // My subtree covers relative ranks [relative, relative + span).
  const int lowbit = relative == 0 ? size : (relative & -relative);
  const auto span = static_cast<std::size_t>(std::min(lowbit, size - relative));
  const bool pf = payload_free_mode();
  std::vector<unsigned char> staging;
  auto* user = static_cast<unsigned char*>(rank == root ? recvbuf : const_cast<void*>(sendbuf));
  auto seg = [&](std::size_t offset) { return pf ? user : staging.data() + offset; };
  if (!pf) {
    staging.resize(std::max<std::size_t>(block * span, 1));
    // Own block at offset 0 (packed).
    if (in_place_root) {
      const auto* base = static_cast<const unsigned char*>(recvbuf);
      recvtype->pack(base + static_cast<std::size_t>(rank) *
                                static_cast<std::size_t>(recvcount) * recvtype->extent(),
                     recvcount, staging.data());
    } else {
      sendtype->pack(sendbuf, sendcount, staging.data());
    }
  }

  std::size_t filled = 1;
  int mask = 1;
  while (mask < lowbit && relative + mask < size) {
    const int src = (rank + mask) % size;
    const auto child_span = static_cast<std::size_t>(std::min(mask, size - relative - mask));
    const int rc = internal_recv(seg(static_cast<std::size_t>(mask) * block),
                                 static_cast<int>(child_span * block), MPI_BYTE, src, kTagGather,
                                 comm, MPI_STATUS_IGNORE, true);
    if (rc != MPI_SUCCESS) return rc;
    filled += child_span;
    mask <<= 1;
  }
  if (relative != 0) {
    const int dst = (rank - lowbit + size) % size;
    SMPI_ENSURE(filled == span, "gather subtree incomplete");
    return internal_send(seg(0), static_cast<int>(filled * block), MPI_BYTE, dst, kTagGather,
                         comm, true);
  }
  // Root: un-rotate into recvbuf.
  const std::size_t recv_block = static_cast<std::size_t>(recvcount) * recvtype->size();
  SMPI_ENSURE(recv_block == block, "gather block size mismatch");
  if (!pf) {
    auto* out = static_cast<unsigned char*>(recvbuf);
    for (int rel = 0; rel < size; ++rel) {
      const int r = (rel + root) % size;
      recvtype->unpack(staging.data() + static_cast<std::size_t>(rel) * block, recvcount,
                       out + static_cast<std::size_t>(r) * static_cast<std::size_t>(recvcount) *
                                 recvtype->extent());
    }
  }
  return MPI_SUCCESS;
}

int gather_linear(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
                  int recvcount, MPI_Datatype recvtype, int root, MPI_Comm comm) {
  const int size = comm->size();
  const int rank = comm_rank_of(comm);
  if (rank != root) {
    return internal_send(sendbuf, sendcount, sendtype, root, kTagGather, comm, true);
  }
  auto* out = static_cast<unsigned char*>(recvbuf);
  std::vector<Request*> requests;
  for (int r = 0; r < size; ++r) {
    void* slot = out + static_cast<std::size_t>(r) * static_cast<std::size_t>(recvcount) *
                           recvtype->extent();
    if (r == rank) {
      if (sendbuf != MPI_IN_PLACE && !payload_free_mode()) {
        std::vector<unsigned char> packed(static_cast<std::size_t>(sendcount) * sendtype->size());
        sendtype->pack(sendbuf, sendcount, packed.data());
        recvtype->unpack(packed.data(), recvcount, slot);
      }
      continue;
    }
    Request* req = nullptr;
    internal_irecv(slot, recvcount, recvtype, r, kTagGather, comm, &req, true);
    requests.push_back(req);
  }
  for (Request* req : requests) internal_wait(req);
  return MPI_SUCCESS;
}

// ---------------------------------------------------------------------------
// Allgather: recursive doubling (power of two) or ring.
// ---------------------------------------------------------------------------

int allgather_recursive_doubling(const void* sendbuf, int sendcount, MPI_Datatype sendtype,
                                 void* recvbuf, int recvcount, MPI_Datatype recvtype,
                                 MPI_Comm comm) {
  const int size = comm->size();
  const int rank = comm_rank_of(comm);
  SMPI_REQUIRE(is_power_of_two(size), "recursive doubling requires a power-of-two size");
  auto* out = static_cast<unsigned char*>(recvbuf);
  const std::size_t block = static_cast<std::size_t>(recvcount) * recvtype->extent();
  if (sendbuf != MPI_IN_PLACE && !payload_free_mode()) {
    std::vector<unsigned char> packed(static_cast<std::size_t>(sendcount) * sendtype->size());
    sendtype->pack(sendbuf, sendcount, packed.data());
    recvtype->unpack(packed.data(), recvcount, out + static_cast<std::size_t>(rank) * block);
  }
  // Zero-copy eligible: round k sends a region assembled in rounds < k;
  // received regions are disjoint from everything already sent.
  CollSendScope zc_scope(current_process_checked(), out,
                         static_cast<std::size_t>(size) * block);
  for (int mask = 1; mask < size; mask <<= 1) {
    const int partner = rank ^ mask;
    const int my_start = rank & ~(mask - 1);
    const int partner_start = partner & ~(mask - 1);
    Request* sreq = nullptr;
    Request* rreq = nullptr;
    internal_isend(out + static_cast<std::size_t>(my_start) * block, recvcount * mask, recvtype,
                   partner, kTagAllgather, comm, &sreq, true);
    internal_irecv(out + static_cast<std::size_t>(partner_start) * block, recvcount * mask,
                   recvtype, partner, kTagAllgather, comm, &rreq, true);
    internal_wait(sreq);
    internal_wait(rreq);
  }
  return MPI_SUCCESS;
}

int allgather_ring(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
                   int recvcount, MPI_Datatype recvtype, MPI_Comm comm) {
  const int size = comm->size();
  const int rank = comm_rank_of(comm);
  auto* out = static_cast<unsigned char*>(recvbuf);
  const std::size_t block = static_cast<std::size_t>(recvcount) * recvtype->extent();
  if (sendbuf != MPI_IN_PLACE && !payload_free_mode()) {
    std::vector<unsigned char> packed(static_cast<std::size_t>(sendcount) * sendtype->size());
    sendtype->pack(sendbuf, sendcount, packed.data());
    recvtype->unpack(packed.data(), recvcount, out + static_cast<std::size_t>(rank) * block);
  }
  // Zero-copy eligible: each ring step forwards the block received in the
  // previous step; a block is written once, before its first send.
  CollSendScope zc_scope(current_process_checked(), out,
                         static_cast<std::size_t>(size) * block);
  const int right = (rank + 1) % size;
  const int left = (rank - 1 + size) % size;
  for (int step = 0; step < size - 1; ++step) {
    const int send_block = (rank - step + size) % size;
    const int recv_block = (rank - step - 1 + size) % size;
    Request* sreq = nullptr;
    Request* rreq = nullptr;
    internal_isend(out + static_cast<std::size_t>(send_block) * block, recvcount, recvtype, right,
                   kTagAllgather, comm, &sreq, true);
    internal_irecv(out + static_cast<std::size_t>(recv_block) * block, recvcount, recvtype, left,
                   kTagAllgather, comm, &rreq, true);
    internal_wait(sreq);
    internal_wait(rreq);
  }
  return MPI_SUCCESS;
}

// ---------------------------------------------------------------------------
// Alltoall: pairwise exchange (Figure 10) and basic isend/irecv.
// ---------------------------------------------------------------------------

int alltoall_pairwise(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
                      int recvcount, MPI_Datatype recvtype, MPI_Comm comm) {
  const int size = comm->size();
  const int rank = comm_rank_of(comm);
  const auto* in = static_cast<const unsigned char*>(sendbuf);
  auto* out = static_cast<unsigned char*>(recvbuf);
  const std::size_t send_block = static_cast<std::size_t>(sendcount) * sendtype->extent();
  const std::size_t recv_block = static_cast<std::size_t>(recvcount) * recvtype->extent();

  // Own block.
  if (!payload_free_mode()) {
    std::vector<unsigned char> packed(static_cast<std::size_t>(sendcount) * sendtype->size());
    sendtype->pack(in + static_cast<std::size_t>(rank) * send_block, sendcount, packed.data());
    recvtype->unpack(packed.data(), recvcount, out + static_cast<std::size_t>(rank) * recv_block);
  }
  // Zero-copy eligible: the send buffer is caller-const for the whole call
  // (MPI_Alltoall rejects MPI_IN_PLACE, so it cannot alias recvbuf).
  CollSendScope zc_scope(current_process_checked(), in,
                         static_cast<std::size_t>(size) * send_block);
  // size-1 steps; at step k exchange with ranks at distance k (Figure 10).
  for (int step = 1; step < size; ++step) {
    const int dst = (rank + step) % size;
    const int src = (rank - step + size) % size;
    Request* sreq = nullptr;
    Request* rreq = nullptr;
    internal_isend(in + static_cast<std::size_t>(dst) * send_block, sendcount, sendtype, dst,
                   kTagAlltoall, comm, &sreq, true);
    internal_irecv(out + static_cast<std::size_t>(src) * recv_block, recvcount, recvtype, src,
                   kTagAlltoall, comm, &rreq, true);
    internal_wait(sreq);
    internal_wait(rreq);
  }
  return MPI_SUCCESS;
}

int alltoall_basic(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
                   int recvcount, MPI_Datatype recvtype, MPI_Comm comm) {
  const int size = comm->size();
  const int rank = comm_rank_of(comm);
  const auto* in = static_cast<const unsigned char*>(sendbuf);
  auto* out = static_cast<unsigned char*>(recvbuf);
  const std::size_t send_block = static_cast<std::size_t>(sendcount) * sendtype->extent();
  const std::size_t recv_block = static_cast<std::size_t>(recvcount) * recvtype->extent();
  // Zero-copy eligible: caller-const send buffer, no MPI_IN_PLACE aliasing.
  CollSendScope zc_scope(current_process_checked(), in,
                         static_cast<std::size_t>(size) * send_block);
  std::vector<Request*> requests;
  for (int r = 0; r < size; ++r) {
    if (r == rank) continue;
    Request* rreq = nullptr;
    internal_irecv(out + static_cast<std::size_t>(r) * recv_block, recvcount, recvtype, r,
                   kTagAlltoall, comm, &rreq, true);
    requests.push_back(rreq);
  }
  for (int r = 0; r < size; ++r) {
    if (r == rank) {
      if (!payload_free_mode()) {
        std::vector<unsigned char> packed(static_cast<std::size_t>(sendcount) * sendtype->size());
        sendtype->pack(in + static_cast<std::size_t>(rank) * send_block, sendcount, packed.data());
        recvtype->unpack(packed.data(), recvcount,
                         out + static_cast<std::size_t>(rank) * recv_block);
      }
      continue;
    }
    Request* sreq = nullptr;
    internal_isend(in + static_cast<std::size_t>(r) * send_block, sendcount, sendtype, r,
                   kTagAlltoall, comm, &sreq, true);
    requests.push_back(sreq);
  }
  for (Request* req : requests) internal_wait(req);
  return MPI_SUCCESS;
}

int alltoall_bruck(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
                   int recvcount, MPI_Datatype recvtype, MPI_Comm comm) {
  const int size = comm->size();
  const int rank = comm_rank_of(comm);
  const std::size_t block = static_cast<std::size_t>(sendcount) * sendtype->size();

  // Payload-free: the three phase buffers (rotated copy, per-round staging,
  // per-round incoming) and every rotation memcpy disappear; each round
  // ships the same `moving * block` bytes from/into the user buffers.
  const bool pf = payload_free_mode();

  // Phase 0: pack and rotate so tmp[i] = my block for rank (rank + i) % size.
  std::vector<unsigned char> tmp;
  if (!pf) {
    tmp.resize(std::max<std::size_t>(block * static_cast<std::size_t>(size), 1));
    std::vector<unsigned char> packed(tmp.size());
    sendtype->pack(sendbuf, sendcount * size, packed.data());
    for (int i = 0; i < size; ++i) {
      const int src_block = (rank + i) % size;
      std::memcpy(tmp.data() + static_cast<std::size_t>(i) * block,
                  packed.data() + static_cast<std::size_t>(src_block) * block, block);
    }
  }

  // Phase 1: log2(size) rounds; round k ships every block whose index has
  // bit k set, aggregated into one message.
  std::vector<unsigned char> staging(pf ? 0 : tmp.size());
  for (int pow = 1; pow < size; pow <<= 1) {
    const int dst = (rank + pow) % size;
    const int src = (rank - pow + size) % size;
    std::size_t moving = 0;
    for (int i = 0; i < size; ++i) {
      if (i & pow) {
        if (!pf) {
          std::memcpy(staging.data() + moving * block,
                      tmp.data() + static_cast<std::size_t>(i) * block, block);
        }
        ++moving;
      }
    }
    std::vector<unsigned char> incoming;
    if (!pf) incoming.resize(std::max<std::size_t>(moving * block, 1));
    Request* sreq = nullptr;
    Request* rreq = nullptr;
    internal_isend(pf ? sendbuf : staging.data(), static_cast<int>(moving * block), MPI_BYTE, dst,
                   kTagAlltoall, comm, &sreq, true);
    internal_irecv(pf ? recvbuf : incoming.data(), static_cast<int>(moving * block), MPI_BYTE,
                   src, kTagAlltoall, comm, &rreq, true);
    internal_wait(sreq);
    internal_wait(rreq);
    if (!pf) {
      std::size_t landed = 0;
      for (int i = 0; i < size; ++i) {
        if (i & pow) {
          std::memcpy(tmp.data() + static_cast<std::size_t>(i) * block,
                      incoming.data() + landed * block, block);
          ++landed;
        }
      }
    }
  }

  // Phase 2: inverse rotation — tmp[i] now holds the data from rank
  // (rank - i + size) % size.
  if (!pf) {
    auto* out = static_cast<unsigned char*>(recvbuf);
    const std::size_t recv_block = static_cast<std::size_t>(recvcount) * recvtype->extent();
    for (int i = 0; i < size; ++i) {
      const int src = (rank - i + size) % size;
      recvtype->unpack(tmp.data() + static_cast<std::size_t>(i) * block, recvcount,
                       out + static_cast<std::size_t>(src) * recv_block);
    }
  }
  return MPI_SUCCESS;
}

// ---------------------------------------------------------------------------
// Reductions.
// ---------------------------------------------------------------------------

int reduce_binomial(const void* sendbuf, void* recvbuf, int count, MPI_Datatype datatype,
                    MPI_Op op, int root, MPI_Comm comm) {
  const int size = comm->size();
  const int rank = comm_rank_of(comm);
  const int relative = (rank - root + size) % size;
  const std::size_t bytes = static_cast<std::size_t>(count) * datatype->size();

  // Accumulator starts as my contribution (packed representation).
  // Payload-free: the accumulator and incoming buffers are elided — the
  // messages carry the same byte counts from the contribution pointer.
  const bool pf = payload_free_mode();
  const void* contribution = (sendbuf == MPI_IN_PLACE) ? recvbuf : sendbuf;
  std::vector<unsigned char> acc;
  std::vector<unsigned char> incoming;
  if (!pf) {
    acc.resize(std::max<std::size_t>(bytes, 1));
    datatype->pack(contribution, count, acc.data());
    incoming.resize(std::max<std::size_t>(bytes, 1));
  }
  auto* user = const_cast<void*>(contribution);
  int mask = 1;
  while (mask < size) {
    if (relative & mask) {
      const int dst = (rank - mask + size) % size;
      const int rc = internal_send(pf ? user : acc.data(), static_cast<int>(bytes), MPI_BYTE, dst,
                                   kTagReduce, comm, true);
      if (rc != MPI_SUCCESS) return rc;
      break;
    }
    if (relative + mask < size) {
      const int src = (rank + mask) % size;
      const int rc = internal_recv(pf ? user : incoming.data(), static_cast<int>(bytes), MPI_BYTE,
                                   src, kTagReduce, comm, MPI_STATUS_IGNORE, true);
      if (rc != MPI_SUCCESS) return rc;
      if (!pf) {
        // incoming holds higher relative ranks: acc = acc OP incoming, then
        // the result must live in acc.
        reduce_ordered(acc.data(), incoming.data(), count, datatype, op);
        acc.swap(incoming);
      }
    }
    mask <<= 1;
  }
  if (!pf && rank == root) datatype->unpack(acc.data(), count, recvbuf);
  return MPI_SUCCESS;
}

int allreduce_recursive_doubling(const void* sendbuf, void* recvbuf, int count,
                                 MPI_Datatype datatype, MPI_Op op, MPI_Comm comm) {
  const int size = comm->size();
  const int rank = comm_rank_of(comm);
  SMPI_REQUIRE(is_power_of_two(size), "recursive doubling requires a power-of-two size");
  const std::size_t bytes = static_cast<std::size_t>(count) * datatype->size();
  const bool pf = payload_free_mode();
  const void* contribution = (sendbuf == MPI_IN_PLACE) ? recvbuf : sendbuf;
  std::vector<unsigned char> acc;
  std::vector<unsigned char> incoming;
  if (!pf) {
    acc.resize(std::max<std::size_t>(bytes, 1));
    datatype->pack(contribution, count, acc.data());
    incoming.resize(std::max<std::size_t>(bytes, 1));
  }

  for (int mask = 1; mask < size; mask <<= 1) {
    const int partner = rank ^ mask;
    Request* sreq = nullptr;
    Request* rreq = nullptr;
    internal_isend(pf ? recvbuf : acc.data(), static_cast<int>(bytes), MPI_BYTE, partner,
                   kTagAllreduce, comm, &sreq, true);
    internal_irecv(pf ? recvbuf : incoming.data(), static_cast<int>(bytes), MPI_BYTE, partner,
                   kTagAllreduce, comm, &rreq, true);
    internal_wait(sreq);
    internal_wait(rreq);
    if (pf) continue;
    if (partner < rank) {
      // incoming is the lower-rank operand: acc = incoming OP acc.
      reduce_ordered(incoming.data(), acc.data(), count, datatype, op);
    } else {
      reduce_ordered(acc.data(), incoming.data(), count, datatype, op);
      acc.swap(incoming);
    }
  }
  if (!pf) datatype->unpack(acc.data(), count, recvbuf);
  return MPI_SUCCESS;
}

int allreduce_rabenseifner(const void* sendbuf, void* recvbuf, int count, MPI_Datatype datatype,
                           MPI_Op op, MPI_Comm comm) {
  const int size = comm->size();
  const int rank = comm_rank_of(comm);
  SMPI_REQUIRE(is_power_of_two(size), "rabenseifner requires a power-of-two size");
  SMPI_REQUIRE(op->commutative(), "rabenseifner requires a commutative op");
  SMPI_REQUIRE(count >= size, "rabenseifner needs at least one element per rank");

  // Split the vector into `size` near-equal blocks (in elements).
  std::vector<int> counts(static_cast<std::size_t>(size));
  std::vector<int> displs(static_cast<std::size_t>(size));
  int offset = 0;
  for (int r = 0; r < size; ++r) {
    counts[static_cast<std::size_t>(r)] = count / size + (r < count % size ? 1 : 0);
    displs[static_cast<std::size_t>(r)] = offset;
    offset += counts[static_cast<std::size_t>(r)];
  }

  // Phase 1: reduce_scatter — I end with the reduction of my block.
  const bool pf = payload_free_mode();
  const int my_count = counts[static_cast<std::size_t>(rank)];
  std::vector<unsigned char> my_block;
  if (!pf) {
    my_block.resize(
        std::max<std::size_t>(static_cast<std::size_t>(my_count) * datatype->extent(), 1));
  }
  const void* contribution = (sendbuf == MPI_IN_PLACE) ? recvbuf : sendbuf;
  const int rs = reduce_scatter_pairwise(contribution, pf ? recvbuf : my_block.data(),
                                         counts.data(), datatype, op, comm);
  if (rs != MPI_SUCCESS) return rs;

  // Phase 2: allgatherv (ring) of the reduced blocks into recvbuf.
  auto* out = static_cast<unsigned char*>(recvbuf);
  if (!pf) {
    std::memcpy(out + static_cast<std::size_t>(displs[static_cast<std::size_t>(rank)]) *
                          datatype->extent(),
                my_block.data(), static_cast<std::size_t>(my_count) * datatype->extent());
  }
  // Zero-copy eligible for the allgather ring: same single-write-then-
  // forward causality as allgather_ring, over the reduced blocks.
  CollSendScope zc_scope(current_process_checked(), out,
                         static_cast<std::size_t>(offset) * datatype->extent());
  const int right = (rank + 1) % size;
  const int left = (rank - 1 + size) % size;
  for (int step = 0; step < size - 1; ++step) {
    const int send_block = (rank - step + size) % size;
    const int recv_block = (rank - step - 1 + size) % size;
    Request* sreq = nullptr;
    Request* rreq = nullptr;
    internal_isend(out + static_cast<std::size_t>(displs[static_cast<std::size_t>(send_block)]) *
                             datatype->extent(),
                   counts[static_cast<std::size_t>(send_block)], datatype, right, kTagAllreduce,
                   comm, &sreq, true);
    internal_irecv(out + static_cast<std::size_t>(displs[static_cast<std::size_t>(recv_block)]) *
                             datatype->extent(),
                   counts[static_cast<std::size_t>(recv_block)], datatype, left, kTagAllreduce,
                   comm, &rreq, true);
    internal_wait(sreq);
    internal_wait(rreq);
  }
  return MPI_SUCCESS;
}

int reduce_scatter_pairwise(const void* sendbuf, void* recvbuf, const int recvcounts[],
                            MPI_Datatype datatype, MPI_Op op, MPI_Comm comm) {
  const int size = comm->size();
  const int rank = comm_rank_of(comm);
  SMPI_REQUIRE(op->commutative(), "pairwise reduce_scatter needs a commutative op");
  std::vector<std::size_t> displs(static_cast<std::size_t>(size) + 1, 0);
  for (int r = 0; r < size; ++r) {
    displs[static_cast<std::size_t>(r) + 1] =
        displs[static_cast<std::size_t>(r)] + static_cast<std::size_t>(recvcounts[r]);
  }
  const auto* in = static_cast<const unsigned char*>(sendbuf);
  const std::size_t elem = datatype->extent();
  const int my_count = recvcounts[rank];
  const std::size_t my_bytes = static_cast<std::size_t>(my_count) * datatype->size();

  // Start from my own contribution for my block.
  const bool pf = payload_free_mode();
  std::vector<unsigned char> acc;
  std::vector<unsigned char> incoming;
  if (!pf) {
    acc.resize(std::max<std::size_t>(my_bytes, 1));
    datatype->pack(in + displs[static_cast<std::size_t>(rank)] * elem, my_count, acc.data());
    incoming.resize(std::max<std::size_t>(my_bytes, 1));
  }

  {
    // Zero-copy eligible: every send reads a distinct slice of the caller's
    // contribution, which nothing writes during the exchange. Inner block:
    // the scope must flush before the final unpack below, in case recvbuf
    // overlaps the contribution (in-place callers).
    CollSendScope zc_scope(current_process_checked(), in,
                           displs[static_cast<std::size_t>(size)] * elem);
    for (int step = 1; step < size; ++step) {
      const int dst = (rank - step + size) % size;  // they need my contribution for their block
      const int src = (rank + step) % size;         // they hold a contribution for my block
      Request* sreq = nullptr;
      Request* rreq = nullptr;
      internal_isend(in + displs[static_cast<std::size_t>(dst)] * elem, recvcounts[dst], datatype,
                     dst, kTagReduceScatter, comm, &sreq, true);
      internal_irecv(pf ? recvbuf : incoming.data(), static_cast<int>(my_bytes), MPI_BYTE, src,
                     kTagReduceScatter, comm, &rreq, true);
      internal_wait(sreq);
      internal_wait(rreq);
      if (!pf) op->apply(incoming.data(), acc.data(), my_count, datatype);
    }
  }
  if (!pf) datatype->unpack(acc.data(), my_count, recvbuf);
  return MPI_SUCCESS;
}

}  // namespace smpi::coll

// ---------------------------------------------------------------------------
// MPI entry points: validate, then dispatch to a variant the way real
// implementations pick algorithms by size (§5.3).
// ---------------------------------------------------------------------------

using namespace smpi::core;
using namespace smpi::coll;

namespace {

int check_coll_comm(MPI_Comm comm, int root, bool has_root) {
  if (!valid_comm(comm)) return MPI_ERR_COMM;
  if (has_root && (root < 0 || root >= comm->size())) return MPI_ERR_ROOT;
  return MPI_SUCCESS;
}

bool pow2(int x) { return x > 0 && (x & (x - 1)) == 0; }

// Forced collective-variant selection (SmpiConfig::coll): what-if campaigns
// sweep over algorithm choices by overriding the size-based auto dispatch.
// An unknown variant name is a hard error (a silently ignored override would
// invalidate a whole sweep).
const smpi::core::CollSelection& coll_selection() {
  return current_process_checked().world->config().coll;
}

// --- TI capture helpers ----------------------------------------------------

// TI traces replay collectives on MPI_COMM_WORLD; capturing one on a derived
// communicator would silently change the traffic pattern, so it is rejected
// outright (the documented capture limitation).
bool coll_recording(smpi::trace::ApiScope& scope, MPI_Comm comm) {
  if (!scope.recording()) return false;
  SMPI_REQUIRE(comm == current_process_checked().world->world_comm(),
               "TI capture supports collectives on MPI_COMM_WORLD only");
  return true;
}

// Record a (count, element-size) block where count*elem is the payload byte
// count; zero-sized datatypes degrade to zero bytes so the replayed byte
// count matches.
void set_block(long long count, MPI_Datatype type, long long* out_count, long long* out_elem) {
  const long long elem = type == MPI_DATATYPE_NULL ? 0 : static_cast<long long>(type->size());
  if (elem <= 0) {
    *out_count = 0;
    *out_elem = 1;
  } else {
    *out_count = count;
    *out_elem = elem;
  }
}

// Variant for gather/scatter-style records where the count is meaningful on
// every rank even when that rank's datatype for the side is null/unused
// (e.g. a scatter leaf's sendtype): keep the count, clamp elem to >= 1.
void set_count_block(long long count, MPI_Datatype type, long long* out_count,
                     long long* out_elem) {
  const long long elem = type == MPI_DATATYPE_NULL ? 1 : static_cast<long long>(type->size());
  *out_count = count;
  *out_elem = elem <= 0 ? 1 : elem;
}

std::vector<long long> to_longs(const int* values, int n) {
  return std::vector<long long>(values, values + n);
}

}  // namespace

int MPI_Barrier(MPI_Comm comm) {
  const int rc = check_coll_comm(comm, 0, false);
  if (rc != MPI_SUCCESS) return rc;
  smpi::trace::ApiScope scope("barrier");
  if (coll_recording(scope, comm)) {
    smpi::trace::TiRecord r;
    r.op = smpi::trace::TiOp::kBarrier;
    scope.emit(r);
  }
  return barrier_dissemination(comm);
}

int MPI_Bcast(void* buffer, int count, MPI_Datatype datatype, int root, MPI_Comm comm) {
  int rc = check_coll_comm(comm, root, true);
  if (rc != MPI_SUCCESS) return rc;
  rc = check_buffer_args(buffer, count, datatype);
  if (rc != MPI_SUCCESS) return rc;
  smpi::trace::ApiScope scope("bcast");
  if (coll_recording(scope, comm)) {
    smpi::trace::TiRecord r;
    r.op = smpi::trace::TiOp::kBcast;
    set_block(count, datatype, &r.count, &r.elem);
    r.peer = root;
    scope.emit(r);
  }
  const std::string& forced = coll_selection().bcast;
  if (forced == "binomial") return bcast_binomial(buffer, count, datatype, root, comm);
  if (forced == "scatter_ring_allgather") {
    return bcast_scatter_ring_allgather(buffer, count, datatype, root, comm);
  }
  SMPI_REQUIRE(forced == "auto", "unknown coll.bcast variant '" + forced + "'");
  // Size-based dispatch as in MPICH2 (§5.3): binomial tree for short
  // messages, scatter + ring allgather for long ones (avoids pushing the
  // whole payload through every tree level).
  const std::size_t bytes = static_cast<std::size_t>(count) * datatype->size();
  if (bytes >= 512 * 1024 && comm->size() >= 8) {
    return bcast_scatter_ring_allgather(buffer, count, datatype, root, comm);
  }
  return bcast_binomial(buffer, count, datatype, root, comm);
}

int MPI_Scatter(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
                int recvcount, MPI_Datatype recvtype, int root, MPI_Comm comm) {
  int rc = check_coll_comm(comm, root, true);
  if (rc != MPI_SUCCESS) return rc;
  const int rank = comm->rank_of_world(current_process_checked().world_rank);
  if (rank == root) {
    rc = check_buffer_args(sendbuf, sendcount, sendtype);
    if (rc != MPI_SUCCESS) return rc;
  }
  if (recvbuf != MPI_IN_PLACE) {
    rc = check_buffer_args(recvbuf, recvcount, recvtype);
    if (rc != MPI_SUCCESS) return rc;
  }
  smpi::trace::ApiScope scope("scatter");
  if (coll_recording(scope, comm)) {
    // Only this rank's *significant* arguments are read: the send side is
    // defined at the root only (a conforming non-root may pass garbage
    // there, including a dangling datatype handle).
    smpi::trace::TiRecord r;
    r.op = smpi::trace::TiOp::kScatter;
    if (rank == root) {
      set_count_block(sendcount, sendtype, &r.count, &r.elem);
      if (recvbuf == MPI_IN_PLACE) {
        set_count_block(sendcount, sendtype, &r.count2, &r.elem2);
      } else {
        set_count_block(recvcount, recvtype, &r.count2, &r.elem2);
      }
    } else {
      set_count_block(recvcount, recvtype, &r.count, &r.elem);
      set_count_block(recvcount, recvtype, &r.count2, &r.elem2);
    }
    r.peer = root;
    scope.emit(r);
  }
  return scatter_binomial(sendbuf, sendcount, sendtype, recvbuf, recvcount, recvtype, root, comm);
}

int MPI_Scatterv(const void* sendbuf, const int sendcounts[], const int displs[],
                 MPI_Datatype sendtype, void* recvbuf, int recvcount, MPI_Datatype recvtype,
                 int root, MPI_Comm comm) {
  int rc = check_coll_comm(comm, root, true);
  if (rc != MPI_SUCCESS) return rc;
  const int size = comm->size();
  const int rank = comm->rank_of_world(current_process_checked().world_rank);
  smpi::trace::ApiScope scope("scatterv");
  if (coll_recording(scope, comm) && (rank != root || (sendcounts != nullptr && valid_type(sendtype)))) {
    smpi::trace::TiRecord r;
    r.op = smpi::trace::TiOp::kScatterv;
    set_count_block(recvcount, recvtype, &r.count2, &r.elem2);
    r.elem = rank == root ? static_cast<long long>(sendtype->size()) : 1;
    if (r.elem <= 0) r.elem = 1;
    r.peer = root;
    if (rank == root) r.counts = to_longs(sendcounts, size);
    scope.emit(r);
  }
  if (rank == root) {
    if (sendcounts == nullptr || displs == nullptr) return MPI_ERR_ARG;
    if (!valid_type(sendtype)) return MPI_ERR_TYPE;
    const auto* base = static_cast<const unsigned char*>(sendbuf);
    std::vector<Request*> requests;
    for (int r = 0; r < size; ++r) {
      const void* chunk = base + static_cast<std::size_t>(displs[r]) * sendtype->extent();
      if (r == rank) {
        if (recvbuf != MPI_IN_PLACE && !payload_free_mode()) {
          std::vector<unsigned char> packed(static_cast<std::size_t>(sendcounts[r]) *
                                            sendtype->size());
          sendtype->pack(chunk, sendcounts[r], packed.data());
          recvtype->unpack(packed.data(), recvcount, recvbuf);
        }
        continue;
      }
      Request* req = nullptr;
      internal_isend(chunk, sendcounts[r], sendtype, r, 100, comm, &req, true);
      requests.push_back(req);
    }
    for (Request* req : requests) internal_wait(req);
    return MPI_SUCCESS;
  }
  if (recvbuf == MPI_IN_PLACE) return MPI_ERR_ARG;
  return internal_recv(recvbuf, recvcount, recvtype, root, 100, comm, MPI_STATUS_IGNORE, true);
}

int MPI_Gather(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
               int recvcount, MPI_Datatype recvtype, int root, MPI_Comm comm) {
  int rc = check_coll_comm(comm, root, true);
  if (rc != MPI_SUCCESS) return rc;
  const int rank = comm->rank_of_world(current_process_checked().world_rank);
  if (sendbuf != MPI_IN_PLACE) {
    rc = check_buffer_args(sendbuf, sendcount, sendtype);
    if (rc != MPI_SUCCESS) return rc;
  }
  if (rank == root) {
    rc = check_buffer_args(recvbuf, recvcount, recvtype);
    if (rc != MPI_SUCCESS) return rc;
  }
  smpi::trace::ApiScope scope("gather");
  if (coll_recording(scope, comm)) {
    // The recv side is significant at the root only; a conforming non-root
    // may pass garbage recvcount/recvtype.
    smpi::trace::TiRecord r;
    r.op = smpi::trace::TiOp::kGather;
    if (sendbuf == MPI_IN_PLACE) {  // in-place root contributes its recv block
      set_count_block(recvcount, recvtype, &r.count, &r.elem);
    } else {
      set_count_block(sendcount, sendtype, &r.count, &r.elem);
    }
    if (rank == root) {
      set_count_block(recvcount, recvtype, &r.count2, &r.elem2);
    } else {
      r.count2 = r.count;
      r.elem2 = r.elem;
    }
    r.peer = root;
    scope.emit(r);
  }
  return gather_binomial(sendbuf, sendcount, sendtype, recvbuf, recvcount, recvtype, root, comm);
}

int MPI_Gatherv(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
                const int recvcounts[], const int displs[], MPI_Datatype recvtype, int root,
                MPI_Comm comm) {
  int rc = check_coll_comm(comm, root, true);
  if (rc != MPI_SUCCESS) return rc;
  const int size = comm->size();
  const int rank = comm->rank_of_world(current_process_checked().world_rank);
  smpi::trace::ApiScope scope("gatherv");
  if (coll_recording(scope, comm) && (rank != root || recvcounts != nullptr)) {
    smpi::trace::TiRecord r;
    r.op = smpi::trace::TiOp::kGatherv;
    set_count_block(sendbuf == MPI_IN_PLACE ? 0 : sendcount, sendtype, &r.count, &r.elem);
    // recvtype is significant at the root only.
    r.elem2 = rank == root && recvtype != MPI_DATATYPE_NULL
                  ? static_cast<long long>(recvtype->size())
                  : 1;
    if (r.elem2 <= 0) r.elem2 = 1;
    r.peer = root;
    if (rank == root) r.counts = to_longs(recvcounts, size);
    scope.emit(r);
  }
  if (rank != root) {
    return internal_send(sendbuf, sendcount, sendtype, root, 101, comm, true);
  }
  if (recvcounts == nullptr || displs == nullptr) return MPI_ERR_ARG;
  auto* out = static_cast<unsigned char*>(recvbuf);
  std::vector<Request*> requests;
  for (int r = 0; r < size; ++r) {
    void* slot = out + static_cast<std::size_t>(displs[r]) * recvtype->extent();
    if (r == rank) {
      if (sendbuf != MPI_IN_PLACE && !payload_free_mode()) {
        std::vector<unsigned char> packed(static_cast<std::size_t>(sendcount) * sendtype->size());
        sendtype->pack(sendbuf, sendcount, packed.data());
        recvtype->unpack(packed.data(), recvcounts[r], slot);
      }
      continue;
    }
    Request* req = nullptr;
    internal_irecv(slot, recvcounts[r], recvtype, r, 101, comm, &req, true);
    requests.push_back(req);
  }
  for (Request* req : requests) internal_wait(req);
  return MPI_SUCCESS;
}

int MPI_Allgather(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
                  int recvcount, MPI_Datatype recvtype, MPI_Comm comm) {
  int rc = check_coll_comm(comm, 0, false);
  if (rc != MPI_SUCCESS) return rc;
  rc = check_buffer_args(recvbuf, recvcount, recvtype);
  if (rc != MPI_SUCCESS) return rc;
  smpi::trace::ApiScope scope("allgather");
  if (coll_recording(scope, comm)) {
    smpi::trace::TiRecord r;
    r.op = smpi::trace::TiOp::kAllgather;
    if (sendbuf == MPI_IN_PLACE) {
      set_count_block(recvcount, recvtype, &r.count, &r.elem);
    } else {
      set_count_block(sendcount, sendtype, &r.count, &r.elem);
    }
    set_count_block(recvcount, recvtype, &r.count2, &r.elem2);
    scope.emit(r);
  }
  const std::string& forced = coll_selection().allgather;
  if (forced == "recursive_doubling") {
    return allgather_recursive_doubling(sendbuf, sendcount, sendtype, recvbuf, recvcount,
                                        recvtype, comm);
  }
  if (forced == "ring") {
    return allgather_ring(sendbuf, sendcount, sendtype, recvbuf, recvcount, recvtype, comm);
  }
  SMPI_REQUIRE(forced == "auto", "unknown coll.allgather variant '" + forced + "'");
  if (pow2(comm->size())) {
    return allgather_recursive_doubling(sendbuf, sendcount, sendtype, recvbuf, recvcount,
                                        recvtype, comm);
  }
  return allgather_ring(sendbuf, sendcount, sendtype, recvbuf, recvcount, recvtype, comm);
}

int MPI_Allgatherv(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
                   const int recvcounts[], const int displs[], MPI_Datatype recvtype,
                   MPI_Comm comm) {
  int rc = check_coll_comm(comm, 0, false);
  if (rc != MPI_SUCCESS) return rc;
  if (recvcounts == nullptr || displs == nullptr) return MPI_ERR_ARG;
  const int size = comm->size();
  const int rank = comm->rank_of_world(current_process_checked().world_rank);
  smpi::trace::ApiScope scope("allgatherv");
  if (coll_recording(scope, comm)) {
    smpi::trace::TiRecord r;
    r.op = smpi::trace::TiOp::kAllgatherv;
    if (sendbuf == MPI_IN_PLACE) {
      set_count_block(recvcounts[rank], recvtype, &r.count, &r.elem);
    } else {
      set_count_block(sendcount, sendtype, &r.count, &r.elem);
    }
    r.elem2 = recvtype == MPI_DATATYPE_NULL ? 1 : static_cast<long long>(recvtype->size());
    if (r.elem2 <= 0) r.elem2 = 1;
    r.counts = to_longs(recvcounts, size);
    scope.emit(r);
  }
  auto* out = static_cast<unsigned char*>(recvbuf);
  // Ring over variable-size blocks.
  if (sendbuf != MPI_IN_PLACE && !payload_free_mode()) {
    std::vector<unsigned char> packed(static_cast<std::size_t>(sendcount) * sendtype->size());
    sendtype->pack(sendbuf, sendcount, packed.data());
    recvtype->unpack(packed.data(), recvcounts[rank],
                     out + static_cast<std::size_t>(displs[rank]) * recvtype->extent());
  }
  const int right = (rank + 1) % size;
  const int left = (rank - 1 + size) % size;
  for (int step = 0; step < size - 1; ++step) {
    const int send_block = (rank - step + size) % size;
    const int recv_block = (rank - step - 1 + size) % size;
    Request* sreq = nullptr;
    Request* rreq = nullptr;
    internal_isend(out + static_cast<std::size_t>(displs[send_block]) * recvtype->extent(),
                   recvcounts[send_block], recvtype, right, 102, comm, &sreq, true);
    internal_irecv(out + static_cast<std::size_t>(displs[recv_block]) * recvtype->extent(),
                   recvcounts[recv_block], recvtype, left, 102, comm, &rreq, true);
    internal_wait(sreq);
    internal_wait(rreq);
  }
  return MPI_SUCCESS;
}

int MPI_Reduce(const void* sendbuf, void* recvbuf, int count, MPI_Datatype datatype, MPI_Op op,
               int root, MPI_Comm comm) {
  int rc = check_coll_comm(comm, root, true);
  if (rc != MPI_SUCCESS) return rc;
  if (op == MPI_OP_NULL) return MPI_ERR_OP;
  if (!valid_type(datatype)) return MPI_ERR_TYPE;
  if (!valid_count(count)) return MPI_ERR_COUNT;
  if (!op->valid_for(*datatype)) return MPI_ERR_OP;
  smpi::trace::ApiScope scope("reduce");
  if (coll_recording(scope, comm)) {
    smpi::trace::TiRecord r;
    r.op = smpi::trace::TiOp::kReduce;
    set_block(count, datatype, &r.count, &r.elem);
    r.peer = root;
    r.commutative = op->commutative();
    scope.emit(r);
  }
  return reduce_binomial(sendbuf, recvbuf, count, datatype, op, root, comm);
}

int MPI_Allreduce(const void* sendbuf, void* recvbuf, int count, MPI_Datatype datatype, MPI_Op op,
                  MPI_Comm comm) {
  int rc = check_coll_comm(comm, 0, false);
  if (rc != MPI_SUCCESS) return rc;
  if (op == MPI_OP_NULL) return MPI_ERR_OP;
  if (!valid_type(datatype)) return MPI_ERR_TYPE;
  if (!valid_count(count)) return MPI_ERR_COUNT;
  if (!op->valid_for(*datatype)) return MPI_ERR_OP;
  smpi::trace::ApiScope scope("allreduce");
  if (coll_recording(scope, comm)) {
    smpi::trace::TiRecord r;
    r.op = smpi::trace::TiOp::kAllreduce;
    set_block(count, datatype, &r.count, &r.elem);
    r.commutative = op->commutative();
    scope.emit(r);
  }
  const std::string& forced = coll_selection().allreduce;
  if (forced == "recursive_doubling") {
    return allreduce_recursive_doubling(sendbuf, recvbuf, count, datatype, op, comm);
  }
  if (forced == "rabenseifner") {
    return allreduce_rabenseifner(sendbuf, recvbuf, count, datatype, op, comm);
  }
  if (forced == "reduce_bcast") {
    rc = reduce_binomial(sendbuf, recvbuf, count, datatype, op, 0, comm);
    if (rc != MPI_SUCCESS) return rc;
    return bcast_binomial(recvbuf, count, datatype, 0, comm);
  }
  SMPI_REQUIRE(forced == "auto", "unknown coll.allreduce variant '" + forced + "'");
  const std::size_t bytes = static_cast<std::size_t>(count) * datatype->size();
  if (pow2(comm->size())) {
    // Long commutative vectors: Rabenseifner halves the bytes each rank
    // moves compared to recursive doubling (§5.3-style dispatch).
    if (bytes >= 64 * 1024 && op->commutative() && count >= comm->size()) {
      return allreduce_rabenseifner(sendbuf, recvbuf, count, datatype, op, comm);
    }
    return allreduce_recursive_doubling(sendbuf, recvbuf, count, datatype, op, comm);
  }
  rc = reduce_binomial(sendbuf, recvbuf, count, datatype, op, 0, comm);
  if (rc != MPI_SUCCESS) return rc;
  return bcast_binomial(recvbuf, count, datatype, 0, comm);
}

int MPI_Scan(const void* sendbuf, void* recvbuf, int count, MPI_Datatype datatype, MPI_Op op,
             MPI_Comm comm) {
  int rc = check_coll_comm(comm, 0, false);
  if (rc != MPI_SUCCESS) return rc;
  if (op == MPI_OP_NULL) return MPI_ERR_OP;
  if (!valid_type(datatype)) return MPI_ERR_TYPE;
  if (!valid_count(count)) return MPI_ERR_COUNT;
  if (!op->valid_for(*datatype)) return MPI_ERR_OP;
  smpi::trace::ApiScope scope("scan");
  if (coll_recording(scope, comm)) {
    smpi::trace::TiRecord r;
    r.op = smpi::trace::TiOp::kScan;
    set_block(count, datatype, &r.count, &r.elem);
    r.commutative = op->commutative();
    scope.emit(r);
  }
  const int size = comm->size();
  const int rank = comm->rank_of_world(current_process_checked().world_rank);
  const std::size_t bytes = static_cast<std::size_t>(count) * datatype->size();

  const bool pf = payload_free_mode();
  const void* contribution = (sendbuf == MPI_IN_PLACE) ? recvbuf : sendbuf;
  std::vector<unsigned char> acc;
  if (!pf) {
    acc.resize(std::max<std::size_t>(bytes, 1));
    datatype->pack(contribution, count, acc.data());
  }
  if (rank > 0) {
    std::vector<unsigned char> prefix;
    if (!pf) prefix.resize(std::max<std::size_t>(bytes, 1));
    rc = smpi::core::internal_recv(pf ? recvbuf : prefix.data(), static_cast<int>(bytes),
                                   MPI_BYTE, rank - 1, 103, comm, MPI_STATUS_IGNORE, true);
    if (rc != MPI_SUCCESS) return rc;
    // prefix covers ranks [0, rank): result = prefix OP mine.
    if (!pf) op->apply(prefix.data(), acc.data(), count, datatype);
  }
  if (rank < size - 1) {
    rc = smpi::core::internal_send(pf ? recvbuf : acc.data(), static_cast<int>(bytes), MPI_BYTE,
                                   rank + 1, 103, comm, true);
    if (rc != MPI_SUCCESS) return rc;
  }
  if (!pf) datatype->unpack(acc.data(), count, recvbuf);
  return MPI_SUCCESS;
}

int MPI_Reduce_scatter(const void* sendbuf, void* recvbuf, const int recvcounts[],
                       MPI_Datatype datatype, MPI_Op op, MPI_Comm comm) {
  int rc = check_coll_comm(comm, 0, false);
  if (rc != MPI_SUCCESS) return rc;
  if (op == MPI_OP_NULL) return MPI_ERR_OP;
  if (!valid_type(datatype)) return MPI_ERR_TYPE;
  if (recvcounts == nullptr) return MPI_ERR_ARG;
  if (!op->valid_for(*datatype)) return MPI_ERR_OP;
  const int size = comm->size();
  for (int r = 0; r < size; ++r) {
    if (recvcounts[r] < 0) return MPI_ERR_COUNT;
  }
  smpi::trace::ApiScope scope("reducescatter");
  if (coll_recording(scope, comm)) {
    smpi::trace::TiRecord rec;
    rec.op = smpi::trace::TiOp::kReduceScatter;
    rec.elem = static_cast<long long>(datatype->size());
    if (rec.elem <= 0) rec.elem = 1;
    rec.commutative = op->commutative();
    rec.counts = to_longs(recvcounts, size);
    scope.emit(rec);
  }
  if (op->commutative()) {
    return reduce_scatter_pairwise(sendbuf, recvbuf, recvcounts, datatype, op, comm);
  }
  // Non-commutative fallback: reduce to rank 0, then scatterv.
  int total = 0;
  std::vector<int> displs(static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r) {
    displs[static_cast<std::size_t>(r)] = total;
    total += recvcounts[r];
  }
  const int rank = comm->rank_of_world(current_process_checked().world_rank);
  const bool pf = payload_free_mode();
  std::vector<unsigned char> full;
  if (!pf) full.resize(static_cast<std::size_t>(total) * datatype->extent());
  void* staged = pf ? recvbuf : static_cast<void*>(full.data());
  rc = MPI_Reduce(sendbuf, staged, total, datatype, op, 0, comm);
  if (rc != MPI_SUCCESS) return rc;
  return MPI_Scatterv(rank == 0 ? staged : nullptr, recvcounts, displs.data(), datatype, recvbuf,
                      recvcounts[rank], datatype, 0, comm);
}

int MPI_Alltoall(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
                 int recvcount, MPI_Datatype recvtype, MPI_Comm comm) {
  int rc = check_coll_comm(comm, 0, false);
  if (rc != MPI_SUCCESS) return rc;
  rc = check_buffer_args(recvbuf, recvcount, recvtype);
  if (rc != MPI_SUCCESS) return rc;
  if (sendbuf == MPI_IN_PLACE) return MPI_ERR_ARG;
  smpi::trace::ApiScope scope("alltoall");
  if (coll_recording(scope, comm)) {
    smpi::trace::TiRecord r;
    r.op = smpi::trace::TiOp::kAlltoall;
    set_count_block(sendcount, sendtype, &r.count, &r.elem);
    set_count_block(recvcount, recvtype, &r.count2, &r.elem2);
    scope.emit(r);
  }
  const std::string& forced = coll_selection().alltoall;
  if (forced == "bruck") {
    return alltoall_bruck(sendbuf, sendcount, sendtype, recvbuf, recvcount, recvtype, comm);
  }
  if (forced == "basic") {
    return alltoall_basic(sendbuf, sendcount, sendtype, recvbuf, recvcount, recvtype, comm);
  }
  if (forced == "pairwise") {
    return alltoall_pairwise(sendbuf, sendcount, sendtype, recvbuf, recvcount, recvtype, comm);
  }
  SMPI_REQUIRE(forced == "auto", "unknown coll.alltoall variant '" + forced + "'");
  // Size-based dispatch as in MPICH2: Bruck for short messages on enough
  // ranks (latency-bound), the naive full-throttle algorithm for medium
  // ones, pairwise exchange for long ones.
  const std::size_t block = static_cast<std::size_t>(sendcount) * sendtype->size();
  if (block <= 256 && comm->size() >= 8) {
    return alltoall_bruck(sendbuf, sendcount, sendtype, recvbuf, recvcount, recvtype, comm);
  }
  if (block <= 32 * 1024) {
    return alltoall_basic(sendbuf, sendcount, sendtype, recvbuf, recvcount, recvtype, comm);
  }
  return alltoall_pairwise(sendbuf, sendcount, sendtype, recvbuf, recvcount, recvtype, comm);
}

int MPI_Alltoallv(const void* sendbuf, const int sendcounts[], const int sdispls[],
                  MPI_Datatype sendtype, void* recvbuf, const int recvcounts[],
                  const int rdispls[], MPI_Datatype recvtype, MPI_Comm comm) {
  int rc = check_coll_comm(comm, 0, false);
  if (rc != MPI_SUCCESS) return rc;
  if (sendcounts == nullptr || sdispls == nullptr || recvcounts == nullptr ||
      rdispls == nullptr) {
    return MPI_ERR_ARG;
  }
  const int size = comm->size();
  const int rank = comm->rank_of_world(current_process_checked().world_rank);
  smpi::trace::ApiScope scope("alltoallv");
  if (coll_recording(scope, comm)) {
    smpi::trace::TiRecord r;
    r.op = smpi::trace::TiOp::kAlltoallv;
    r.elem = sendtype == MPI_DATATYPE_NULL ? 1 : static_cast<long long>(sendtype->size());
    if (r.elem <= 0) r.elem = 1;
    r.elem2 = recvtype == MPI_DATATYPE_NULL ? 1 : static_cast<long long>(recvtype->size());
    if (r.elem2 <= 0) r.elem2 = 1;
    r.counts = to_longs(sendcounts, size);
    r.counts2 = to_longs(recvcounts, size);
    scope.emit(r);
  }
  const auto* in = static_cast<const unsigned char*>(sendbuf);
  auto* out = static_cast<unsigned char*>(recvbuf);
  std::vector<Request*> requests;
  for (int r = 0; r < size; ++r) {
    if (r == rank) continue;
    Request* rreq = nullptr;
    internal_irecv(out + static_cast<std::size_t>(rdispls[r]) * recvtype->extent(), recvcounts[r],
                   recvtype, r, 104, comm, &rreq, true);
    requests.push_back(rreq);
  }
  for (int r = 0; r < size; ++r) {
    if (r == rank) {
      if (payload_free_mode()) continue;
      std::vector<unsigned char> packed(static_cast<std::size_t>(sendcounts[r]) *
                                        sendtype->size());
      sendtype->pack(in + static_cast<std::size_t>(sdispls[r]) * sendtype->extent(),
                     sendcounts[r], packed.data());
      recvtype->unpack(packed.data(), recvcounts[r],
                       out + static_cast<std::size_t>(rdispls[r]) * recvtype->extent());
      continue;
    }
    Request* sreq = nullptr;
    internal_isend(in + static_cast<std::size_t>(sdispls[r]) * sendtype->extent(), sendcounts[r],
                   sendtype, r, 104, comm, &sreq, true);
    requests.push_back(sreq);
  }
  for (Request* req : requests) internal_wait(req);
  return MPI_SUCCESS;
}
