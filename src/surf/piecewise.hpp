// The paper's piece-wise linear point-to-point model (§4.1).
//
// Instead of the classic affine T(s) = alpha + s/beta, SMPI models the
// transfer time of an s-byte message as alpha_k + s/beta_k where k is the
// segment containing s. We carry the segments as *correction factors*
// relative to the physical route (lat_factor multiplies the summed link
// latencies, bw_factor multiplies the bottleneck link bandwidth), which is
// what decouples the calibration from any particular cluster and lets a fit
// made on griffon be reused on gdx (§6, Figures 4-5).
#pragma once

#include <limits>
#include <string>
#include <vector>

namespace smpi::surf {

struct PiecewiseSegment {
  // Upper bound (exclusive) of the segment in bytes; the last segment must
  // extend to infinity.
  double max_bytes = std::numeric_limits<double>::infinity();
  double lat_factor = 1.0;
  double bw_factor = 1.0;
};

class PiecewiseFactors {
 public:
  // Affine behaviour: one segment, factors 1.
  PiecewiseFactors();
  // Segments must be sorted by max_bytes, strictly increasing, and end with
  // an infinite segment.
  explicit PiecewiseFactors(std::vector<PiecewiseSegment> segments);

  double lat_factor(double bytes) const { return segment_for(bytes).lat_factor; }
  double bw_factor(double bytes) const { return segment_for(bytes).bw_factor; }
  const std::vector<PiecewiseSegment>& segments() const { return segments_; }
  std::size_t segment_count() const { return segments_.size(); }

  std::string describe() const;

 private:
  const PiecewiseSegment& segment_for(double bytes) const;
  std::vector<PiecewiseSegment> segments_;
};

}  // namespace smpi::surf
