#include "surf/cpu.hpp"

#include <algorithm>
#include <string>

#include "obs/resource.hpp"
#include "sim/engine.hpp"
#include "util/check.hpp"

namespace smpi::surf {
namespace {
// Completion dust tolerance in flops; see the network model's kRemainingEps.
constexpr double kRemainingEps = 1e-3;
}  // namespace

CpuModel::CpuModel(const platform::Platform& platform, SolveMode solver_mode)
    : platform_(platform) {
  system_.set_mode(solver_mode);
  host_constraint_.reserve(static_cast<std::size_t>(platform_.host_count()));
  for (int id = 0; id < platform_.host_count(); ++id) {
    const auto& host = platform_.host(id);
    host_constraint_.push_back(system_.new_constraint(host.speed_flops * host.cores));
  }
  if (obs::resources_enabled()) {
    observing_ = true;
    system_.set_observing(true);
    constraint_resource_.assign(system_.constraint_count(), -1);
    for (int id = 0; id < platform_.host_count(); ++id) {
      const int constraint = host_constraint_[static_cast<std::size_t>(id)];
      constraint_resource_[static_cast<std::size_t>(constraint)] =
          obs::resources()->add_resource(obs::ResourceKind::kHost, platform_.host(id).name,
                                         system_.constraint_capacity(constraint));
    }
  }
}

double CpuModel::node_speed(int node) const {
  return platform_.host(node).speed_flops;
}

sim::ActivityPtr CpuModel::execute(int node, double flops) {
  SMPI_REQUIRE(node >= 0 && node < platform_.host_count(), "execute on unknown node");
  SMPI_REQUIRE(flops >= 0, "negative computation");
  auto* engine = sim::Engine::current();
  SMPI_REQUIRE(engine != nullptr, "execute outside a simulation");
  auto activity = sim::new_activity("exec");
  if (faults_enabled_ && host_up_[static_cast<std::size_t>(node)] == 0) {
    activity->finish(sim::Activity::State::kFailed);
    return activity;
  }
  if (flops <= 0) {
    activity->finish(sim::Activity::State::kDone);
    return activity;
  }
  const double now = engine->now();
  auto exec = std::make_shared<Execution>();
  exec->id = next_execution_id_++;
  exec->node = node;
  exec->activity = activity;
  exec->work.start(flops, now);
  exec->var = system_.new_variable(1.0, platform_.host(node).speed_flops);
  Execution* raw = exec.get();
  executions_.emplace(exec->id, std::move(exec));
  if (var_to_execution_.size() <= static_cast<std::size_t>(raw->var)) {
    var_to_execution_.resize(static_cast<std::size_t>(raw->var) + 1, nullptr);
  }
  var_to_execution_[static_cast<std::size_t>(raw->var)] = raw;
  system_.attach(raw->var, host_constraint_[static_cast<std::size_t>(node)]);
  // Deferred: batched with any other executions starting at this date.
  request_settle();
  return activity;
}

void CpuModel::on_settle(double now) { resettle(now); }

void CpuModel::resettle(double now) {
  if (system_.dirty()) {
    system_.solve();
    for (int var : system_.last_solved_variables()) {
      Execution* entry = static_cast<std::size_t>(var) < var_to_execution_.size()
                             ? var_to_execution_[static_cast<std::size_t>(var)]
                             : nullptr;
      if (entry == nullptr) continue;
      Execution& exec = *entry;
      const double rate = system_.value(var);
      if (rate == exec.work.rate()) continue;
      exec.work.set_rate(rate, now);
      reschedule(exec, now);
    }
  }
  if (observing_) flush_resource_snapshots(now);
}

void CpuModel::flush_observations(double now) {
  if (observing_) flush_resource_snapshots(now);
}

void CpuModel::flush_resource_snapshots(double now) {
  changed_scratch_.clear();
  system_.drain_changed_constraints(changed_scratch_);
  for (int constraint : changed_scratch_) {
    const int resource = constraint_resource_[static_cast<std::size_t>(constraint)];
    if (resource < 0) continue;
    var_shares_scratch_.clear();
    const auto state = system_.constraint_observe(constraint, var_shares_scratch_);
    flow_shares_scratch_.clear();
    for (const auto& [var, value] : var_shares_scratch_) {
      Execution* exec = var_to_execution_[static_cast<std::size_t>(var)];
      if (exec == nullptr) continue;
      if (exec->res_flow < 0) {
        exec->res_flow = obs::resources()->add_flow(platform_.host(exec->node).name + "#" +
                                                    std::to_string(exec->id));
      }
      flow_shares_scratch_.emplace_back(exec->res_flow, value);
    }
    obs::resources()->snapshot(resource, now, state.usage, state.capacity, state.saturated,
                               flow_shares_scratch_);
  }
}

void CpuModel::reschedule(Execution& exec, double now) {
  SMPI_ENSURE(exec.work.rate() > 0, "active execution with zero rate");
  const double date = std::max(now, exec.work.completion_date(now));
  if (exec.event == sim::EventCalendar::kNoEvent || !calendar().update(exec.event, date)) {
    exec.event = calendar().schedule(date, this, exec.id);
  }
}

void CpuModel::on_calendar_event(double now, std::uint64_t tag) {
  auto it = executions_.find(tag);
  if (it == executions_.end()) return;  // already retired
  Execution& exec = *it->second;
  exec.event = sim::EventCalendar::kNoEvent;
  SMPI_ENSURE(exec.work.remaining_at(now) <= kRemainingEps,
              "completion event fired with flops left");
  sim::ActivityPtr activity = exec.activity;
  const std::uint64_t id = exec.id;  // `exec` dies with the erase below
  system_.release_variable(exec.var);
  var_to_execution_[static_cast<std::size_t>(exec.var)] = nullptr;
  executions_.erase(id);
  // Deferred: simultaneous completions redistribute the freed capacity in
  // one re-solve when the engine settles.
  request_settle();
  activity->finish(sim::Activity::State::kDone);
}

void CpuModel::set_host_up(int host, bool up) {
  SMPI_REQUIRE(host >= 0 && host < platform_.host_count(), "set_host_up on unknown host");
  if (!faults_enabled_) {
    faults_enabled_ = true;
    host_up_.assign(static_cast<std::size_t>(platform_.host_count()), 1);
  }
  host_up_[static_cast<std::size_t>(host)] = up ? 1 : 0;
  if (up) return;
  // Fail the host's running executions. Collect first: the kFailed
  // completion callbacks may start new executions and mutate the map.
  std::vector<std::uint64_t> victims;
  for (const auto& [id, exec] : executions_) {
    if (exec->node == host) victims.push_back(id);
  }
  // Map order is implementation-defined; fail in id (start) order so the
  // callback cascade is deterministic.
  std::sort(victims.begin(), victims.end());
  for (std::uint64_t id : victims) {
    auto it = executions_.find(id);
    if (it == executions_.end()) continue;
    Execution& exec = *it->second;
    sim::ActivityPtr activity = exec.activity;
    calendar().cancel(exec.event);
    system_.release_variable(exec.var);
    var_to_execution_[static_cast<std::size_t>(exec.var)] = nullptr;
    executions_.erase(it);
    request_settle();
    activity->finish(sim::Activity::State::kFailed);
  }
}

bool CpuModel::host_is_up(int host) const {
  return !faults_enabled_ || host_up_[static_cast<std::size_t>(host)] != 0;
}

}  // namespace smpi::surf
