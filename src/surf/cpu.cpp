#include "surf/cpu.hpp"

#include <algorithm>

#include "sim/engine.hpp"
#include "util/check.hpp"

namespace smpi::surf {
namespace {
constexpr double kRemainingEps = 1e-3;  // flops
}  // namespace

CpuModel::CpuModel(const platform::Platform& platform) : platform_(platform) {
  host_constraint_.reserve(static_cast<std::size_t>(platform_.host_count()));
  for (int id = 0; id < platform_.host_count(); ++id) {
    const auto& host = platform_.host(id);
    host_constraint_.push_back(system_.new_constraint(host.speed_flops * host.cores));
  }
}

double CpuModel::node_speed(int node) const {
  return platform_.host(node).speed_flops;
}

sim::ActivityPtr CpuModel::execute(int node, double flops) {
  SMPI_REQUIRE(node >= 0 && node < platform_.host_count(), "execute on unknown node");
  SMPI_REQUIRE(flops >= 0, "negative computation");
  auto activity = std::make_shared<sim::Activity>("exec");
  if (flops <= 0) {
    activity->finish(sim::Activity::State::kDone);
    return activity;
  }
  auto exec = std::make_shared<Execution>();
  exec->activity = activity;
  exec->remaining = flops;
  exec->var = system_.new_variable(1.0, platform_.host(node).speed_flops);
  system_.attach(exec->var, host_constraint_[static_cast<std::size_t>(node)]);
  executions_.push_back(std::move(exec));
  return activity;
}

void CpuModel::refresh_rates() {
  if (!system_.dirty()) return;
  system_.solve();
  for (auto& exec : executions_) exec->rate = system_.value(exec->var);
}

double CpuModel::next_event_time(double now) {
  refresh_rates();
  double next = sim::kNever;
  for (const auto& exec : executions_) {
    SMPI_ENSURE(exec->rate > 0, "active execution with zero rate");
    next = std::min(next, now + std::max(0.0, exec->remaining) / exec->rate);
  }
  return next;
}

void CpuModel::advance_to(double now) {
  refresh_rates();
  const double dt = now - last_update_;
  last_update_ = now;
  if (executions_.empty()) return;
  if (dt > 0) {
    for (auto& exec : executions_) exec->remaining -= exec->rate * dt;
  }
  auto finished = [](const std::shared_ptr<Execution>& exec) {
    return exec->remaining <= kRemainingEps;
  };
  std::vector<std::shared_ptr<Execution>> done;
  for (auto& exec : executions_) {
    if (finished(exec)) {
      system_.release_variable(exec->var);
      done.push_back(exec);
    }
  }
  if (done.empty()) return;
  executions_.erase(std::remove_if(executions_.begin(), executions_.end(), finished),
                    executions_.end());
  refresh_rates();
  for (auto& exec : done) exec->activity->finish(sim::Activity::State::kDone);
}

}  // namespace smpi::surf
