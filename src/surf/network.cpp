#include "surf/network.hpp"

#include <algorithm>
#include <cmath>

#include "sim/engine.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace smpi::surf {

SMPI_LOG_CATEGORY(log_surf, "surf");

namespace {
// Completion tolerance: flows are "done" when less than a millionth of a
// byte remains (absorbs floating-point dust from rate integration).
constexpr double kRemainingEps = 1e-6;
}  // namespace

FlowNetworkModel::FlowNetworkModel(const platform::Platform& platform, NetworkConfig config)
    : platform_(platform), config_(std::move(config)) {
  link_constraint_.resize(static_cast<std::size_t>(platform_.link_count()), -1);
  for (int id = 0; id < platform_.link_count(); ++id) {
    const auto& link = platform_.link(id);
    if (link.sharing == platform::LinkSharing::kShared) {
      link_constraint_[static_cast<std::size_t>(id)] =
          system_.new_constraint(link.bandwidth_bps * config_.bandwidth_efficiency);
    }
  }
}

FlowNetworkModel::~FlowNetworkModel() = default;

void FlowNetworkModel::path_parameters(int src_node, int dst_node, double bytes,
                                       double* latency_out, double* bound_out) const {
  const double physical_latency = platform_.route_latency(src_node, dst_node);
  const double bottleneck = platform_.route_min_bandwidth(src_node, dst_node);
  double bound = bottleneck * config_.factors.bw_factor(bytes);
  if (config_.tcp_window_bytes > 0 && physical_latency > 0) {
    bound = std::min(bound, config_.tcp_window_bytes / (2.0 * physical_latency));
  }
  *latency_out = physical_latency * config_.factors.lat_factor(bytes);
  *bound_out = bound;
}

double FlowNetworkModel::uncontended_duration(int src_node, int dst_node, double bytes) const {
  if (src_node == dst_node) return 0;
  double latency = 0, bound = 0;
  path_parameters(src_node, dst_node, bytes, &latency, &bound);
  double rate = bound;
  if (config_.contention) {
    // Alone on the route, the solver still caps the flow at each shared
    // link's effective capacity.
    for (int link : platform_.route(src_node, dst_node)) {
      if (platform_.link(link).sharing == platform::LinkSharing::kShared) {
        rate = std::min(rate, platform_.link(link).bandwidth_bps * config_.bandwidth_efficiency);
      }
    }
  }
  return latency + (bytes > 0 ? bytes / rate : 0.0);
}

sim::ActivityPtr FlowNetworkModel::start_flow(int src_node, int dst_node, double bytes,
                                              const sim::FlowHints& hints) {
  SMPI_REQUIRE(bytes >= 0, "negative flow size");
  auto* engine = sim::Engine::current();
  SMPI_REQUIRE(engine != nullptr, "start_flow outside a simulation");
  ++total_flows_;

  auto activity = std::make_shared<sim::Activity>("flow");
  if (src_node == dst_node) {
    // Loopback: modeled as instantaneous (memcpy cost is charged by the MPI
    // layer's personality overheads, not the network).
    activity->finish(sim::Activity::State::kDone);
    return activity;
  }

  double latency = 0, bound = 0;
  path_parameters(src_node, dst_node, bytes, &latency, &bound);
  if (hints.rate_bound > 0) bound = std::min(bound, hints.rate_bound);
  SMPI_ENSURE(bound > 0, "flow rate bound must be positive");

  auto flow = std::make_shared<Flow>();
  flow->activity = activity;
  flow->remaining = bytes;
  flow->bound = bound;

  if (bytes <= 0) {
    // Pure-latency message: completes at the end of the latency phase.
    engine->add_timer(engine->now() + latency,
                      [activity] { activity->finish(sim::Activity::State::kDone); });
    return activity;
  }

  const std::vector<int> links = platform_.route(src_node, dst_node);
  engine->add_timer(engine->now() + latency,
                    [this, flow, links] { promote(flow, links); });
  SMPI_LOG_DEBUG(log_surf, "flow " << src_node << "->" << dst_node << " size=" << bytes
                                   << " lat=" << latency << " bound=" << bound);
  return activity;
}

void FlowNetworkModel::promote(std::shared_ptr<Flow> flow, const std::vector<int>& links) {
  if (flow->activity->completed()) return;  // canceled during latency phase
  if (config_.contention) {
    flow->var = system_.new_variable(1.0, flow->bound);
    for (int link : links) {
      const int constraint = link_constraint_[static_cast<std::size_t>(link)];
      if (constraint >= 0) system_.attach(flow->var, constraint);
    }
  } else {
    flow->rate = flow->bound;
  }
  flows_.push_back(std::move(flow));
}

void FlowNetworkModel::refresh_rates() {
  if (!system_.dirty()) return;
  system_.solve();
  for (auto& flow : flows_) {
    if (flow->var >= 0) flow->rate = system_.value(flow->var);
  }
}

double FlowNetworkModel::next_event_time(double now) {
  refresh_rates();
  double next = sim::kNever;
  for (const auto& flow : flows_) {
    SMPI_ENSURE(flow->rate > 0, "active flow with zero rate");
    next = std::min(next, now + std::max(0.0, flow->remaining) / flow->rate);
  }
  return next;
}

void FlowNetworkModel::advance_to(double now) {
  refresh_rates();
  const double dt = now - last_update_;
  last_update_ = now;
  if (flows_.empty()) return;
  if (dt > 0) {
    for (auto& flow : flows_) flow->remaining -= flow->rate * dt;
  }
  auto finished = [](const std::shared_ptr<Flow>& flow) {
    return flow->remaining <= kRemainingEps;
  };
  bool any_finished = false;
  for (auto& flow : flows_) {
    if (finished(flow)) {
      if (flow->var >= 0) system_.release_variable(flow->var);
      any_finished = true;
    }
  }
  if (!any_finished) return;
  // Complete activities only after releasing all solver variables so the
  // callbacks observe a consistent system.
  std::vector<std::shared_ptr<Flow>> done;
  for (auto& flow : flows_) {
    if (finished(flow)) done.push_back(flow);
  }
  flows_.erase(std::remove_if(flows_.begin(), flows_.end(), finished), flows_.end());
  refresh_rates();
  for (auto& flow : done) flow->activity->finish(sim::Activity::State::kDone);
}

double FlowNetworkModel::link_usage(int link_id) {
  refresh_rates();
  const int constraint = link_constraint_[static_cast<std::size_t>(link_id)];
  if (constraint < 0) return 0;
  return system_.constraint_usage(constraint);
}

}  // namespace smpi::surf
