#include "surf/network.hpp"

#include <algorithm>
#include <cmath>

#include "obs/resource.hpp"
#include "sim/engine.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace smpi::surf {

SMPI_LOG_CATEGORY(log_surf, "surf");

namespace {
// Completion tolerance: a fired completion event may observe up to this much
// residual work — floating-point dust from folding progress at rate changes,
// far below one byte even for terabyte flows. Anything larger means the
// completion date was mis-scheduled.
constexpr double kRemainingEps = 1.0;
}  // namespace

FlowNetworkModel::FlowNetworkModel(const platform::Platform& platform, NetworkConfig config)
    : platform_(platform), config_(std::move(config)) {
  system_.set_mode(config_.solver_mode);
  link_constraint_.resize(static_cast<std::size_t>(platform_.link_count()), -1);
  for (int id = 0; id < platform_.link_count(); ++id) {
    const auto& link = platform_.link(id);
    if (link.sharing == platform::LinkSharing::kShared) {
      link_constraint_[static_cast<std::size_t>(id)] =
          system_.new_constraint(link.bandwidth_bps * config_.bandwidth_efficiency);
    }
  }
  if (obs::resources_enabled()) {
    // Resource observability: name every shared link's constraint with the
    // collector and turn on the solver's changed-constraint tracking. The
    // collector must be installed before the world is built (span pattern).
    observing_ = true;
    system_.set_observing(true);
    constraint_resource_.assign(system_.constraint_count(), -1);
    for (int id = 0; id < platform_.link_count(); ++id) {
      const int constraint = link_constraint_[static_cast<std::size_t>(id)];
      if (constraint < 0) continue;  // fatpipe: unconstrained, nothing to watch
      constraint_resource_[static_cast<std::size_t>(constraint)] =
          obs::resources()->add_resource(obs::ResourceKind::kLink, platform_.link(id).name,
                                         system_.constraint_capacity(constraint));
    }
  }
}

FlowNetworkModel::~FlowNetworkModel() = default;

const FlowNetworkModel::RouteInfo& FlowNetworkModel::route_info(int src_node,
                                                                int dst_node) const {
  const std::uint64_t key = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src_node))
                             << 32) |
                            static_cast<std::uint32_t>(dst_node);
  if (route_cache_.empty()) route_cache_.resize(kRouteCacheSize);
  // Fibonacci hash to spread (src, dst) pairs across the table.
  const std::size_t index =
      static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ull) >> 32) & (kRouteCacheSize - 1);
  RouteEntry& entry = route_cache_[index];
  if (entry.key != key) {
    entry.key = key;
    entry.info.links = &platform_.route(src_node, dst_node);
    entry.info.latency = platform_.route_latency(src_node, dst_node);
    entry.info.bottleneck = platform_.route_min_bandwidth(src_node, dst_node);
  }
  return entry.info;
}

void FlowNetworkModel::path_parameters(int src_node, int dst_node, double bytes,
                                       double* latency_out, double* bound_out) const {
  const RouteInfo& info = route_info(src_node, dst_node);
  double bound = info.bottleneck * config_.factors.bw_factor(bytes);
  if (config_.tcp_window_bytes > 0 && info.latency > 0) {
    bound = std::min(bound, config_.tcp_window_bytes / (2.0 * info.latency));
  }
  *latency_out = info.latency * config_.factors.lat_factor(bytes);
  *bound_out = bound;
}

double FlowNetworkModel::uncontended_duration(int src_node, int dst_node, double bytes) const {
  if (src_node == dst_node) return 0;
  double latency = 0, bound = 0;
  path_parameters(src_node, dst_node, bytes, &latency, &bound);
  double rate = bound;
  if (config_.contention) {
    // Alone on the route, the solver still caps the flow at each shared
    // link's effective capacity.
    for (int link : platform_.route(src_node, dst_node)) {
      if (platform_.link(link).sharing == platform::LinkSharing::kShared) {
        rate = std::min(rate, platform_.link(link).bandwidth_bps * config_.bandwidth_efficiency);
      }
    }
  }
  return latency + (bytes > 0 ? bytes / rate : 0.0);
}

sim::ActivityPtr FlowNetworkModel::start_flow(int src_node, int dst_node, double bytes,
                                              const sim::FlowHints& hints) {
  SMPI_REQUIRE(bytes >= 0, "negative flow size");
  auto* engine = sim::Engine::current();
  SMPI_REQUIRE(engine != nullptr, "start_flow outside a simulation");
  ++total_flows_;

  auto activity = sim::new_activity("flow");
  if (faults_enabled_) {
    // A dead endpoint or route fails the transfer at the post; the MPI layer
    // maps the kFailed activity to its failure policy.
    bool up = host_up_[static_cast<std::size_t>(src_node)] != 0 &&
              host_up_[static_cast<std::size_t>(dst_node)] != 0;
    if (up && src_node != dst_node) {
      up = route_is_up(src_node, dst_node, *route_info(src_node, dst_node).links);
    }
    if (!up) {
      activity->finish(sim::Activity::State::kFailed);
      return activity;
    }
  }
  if (src_node == dst_node) {
    // Loopback: modeled as instantaneous (memcpy cost is charged by the MPI
    // layer's personality overheads, not the network).
    activity->finish(sim::Activity::State::kDone);
    return activity;
  }

  double latency = 0, bound = 0;
  path_parameters(src_node, dst_node, bytes, &latency, &bound);
  if (config_.latency_jitter) latency += config_.latency_jitter(src_node, dst_node);
  if (hints.rate_bound > 0) bound = std::min(bound, hints.rate_bound);
  SMPI_ENSURE(bound > 0, "flow rate bound must be positive");

  if (bytes <= 0) {
    // Pure-latency message: completes at the end of the latency phase.
    engine->add_timer(engine->now() + latency,
                      [activity] { activity->finish(sim::Activity::State::kDone); });
    return activity;
  }

  const std::uint32_t slot = acquire_slot();
  Flow& flow = *slots_[slot];
  flow.activity = activity;
  flow.bound = bound;
  flow.in_latency = true;
  // The platform's route storage is immutable for the model's lifetime:
  // keep a pointer instead of copying the link list.
  flow.pending_links = route_info(src_node, dst_node).links;
  flow.pending_bytes = bytes;
  flow.src = src_node;
  flow.dst = dst_node;
  flow.route_links = flow.pending_links;
  flow.event = calendar().schedule(engine->now() + latency, this, pack_tag(slot, flow.gen));
  SMPI_LOG_DEBUG(log_surf, "flow " << src_node << "->" << dst_node << " size=" << bytes
                                   << " lat=" << latency << " bound=" << bound);
  return activity;
}

std::uint32_t FlowNetworkModel::acquire_slot() {
  ++active_flows_;
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  const std::uint32_t slot = static_cast<std::uint32_t>(slots_.size());
  slots_.push_back(std::make_unique<Flow>());
  slots_.back()->slot = slot;
  return slot;
}

void FlowNetworkModel::retire_slot(std::uint32_t slot) {
  Flow& flow = *slots_[slot];
  ++flow.gen;  // invalidate any stale calendar reference
  flow.activity.reset();
  flow.var = -1;
  flow.res_flow = -1;
  flow.in_latency = false;
  flow.pending_links = nullptr;
  flow.src = -1;
  flow.dst = -1;
  flow.route_links = nullptr;
  flow.event = sim::EventCalendar::kNoEvent;
  free_slots_.push_back(slot);
  --active_flows_;
}

void FlowNetworkModel::promote(std::uint32_t slot, std::uint32_t gen,
                               const std::vector<int>& links, double bytes) {
  Flow& flow = *slots_[slot];
  if (flow.gen != gen) return;  // slot already recycled
  if (flow.activity->completed()) {
    // Canceled during the latency phase: the flow never enters the
    // bandwidth-sharing system.
    retire_slot(slot);
    return;
  }
  const double now = sim::Engine::current()->now();
  flow.work.start(bytes, now);
  if (config_.contention) {
    flow.var = system_.new_variable(1.0, flow.bound);
    if (var_to_flow_.size() <= static_cast<std::size_t>(flow.var)) {
      var_to_flow_.resize(static_cast<std::size_t>(flow.var) + 1, nullptr);
    }
    var_to_flow_[static_cast<std::size_t>(flow.var)] = &flow;
    for (int link : links) {
      const int constraint = link_constraint_[static_cast<std::size_t>(link)];
      if (constraint >= 0) system_.attach(flow.var, constraint);
    }
    // Deferred: when a collective promotes many flows at one date, the
    // engine settles (one re-solve) once for the whole batch.
    request_settle();
  } else {
    flow.work.set_rate(flow.bound, now);
    reschedule(flow, now);
  }
}

void FlowNetworkModel::on_settle(double now) { resettle(now); }

void FlowNetworkModel::resettle(double now) {
  if (system_.dirty()) {
    system_.solve();
    for (int var : system_.last_solved_variables()) {
      Flow* entry = static_cast<std::size_t>(var) < var_to_flow_.size()
                        ? var_to_flow_[static_cast<std::size_t>(var)]
                        : nullptr;
      if (entry == nullptr) continue;  // not one of ours (shouldn't happen)
      Flow& flow = *entry;
      const double rate = system_.value(var);
      if (rate == flow.work.rate()) continue;  // allocation unchanged: keep the entry
      flow.work.set_rate(rate, now);
      reschedule(flow, now);
    }
  }
  // Flush even when no solve fired: a completion releasing its share on an
  // unsaturated link changed that link's usage without seeding a re-solve.
  if (observing_) flush_resource_snapshots(now);
}

void FlowNetworkModel::flush_observations(double now) {
  if (observing_) flush_resource_snapshots(now);
}

void FlowNetworkModel::flush_resource_snapshots(double now) {
  changed_scratch_.clear();
  system_.drain_changed_constraints(changed_scratch_);
  for (int constraint : changed_scratch_) {
    const int resource = constraint_resource_[static_cast<std::size_t>(constraint)];
    if (resource < 0) continue;
    var_shares_scratch_.clear();
    const auto state = system_.constraint_observe(constraint, var_shares_scratch_);
    flow_shares_scratch_.clear();
    for (const auto& [var, value] : var_shares_scratch_) {
      Flow* flow = var_to_flow_[static_cast<std::size_t>(var)];
      if (flow == nullptr) continue;
      if (flow->res_flow < 0) {
        flow->res_flow = obs::resources()->add_flow(platform_.host(flow->src).name + "->" +
                                                    platform_.host(flow->dst).name);
      }
      flow_shares_scratch_.emplace_back(flow->res_flow, value);
    }
    obs::resources()->snapshot(resource, now, state.usage, state.capacity, state.saturated,
                               flow_shares_scratch_);
  }
}

void FlowNetworkModel::reschedule(Flow& flow, double now) {
  SMPI_ENSURE(flow.work.rate() > 0, "active flow with zero rate");
  const double date = std::max(now, flow.work.completion_date(now));
  // Move the existing heap entry in place; schedule afresh only when the
  // flow has none (first rate) or it already fired.
  if (flow.event == sim::EventCalendar::kNoEvent || !calendar().update(flow.event, date)) {
    flow.event = calendar().schedule(date, this, pack_tag(flow.slot, flow.gen));
  }
}

void FlowNetworkModel::on_calendar_event(double now, std::uint64_t tag) {
  const std::uint32_t slot = static_cast<std::uint32_t>(tag);
  const std::uint32_t gen = static_cast<std::uint32_t>(tag >> 32);
  Flow& flow = *slots_[slot];
  if (flow.gen != gen) return;  // flow already retired
  flow.event = sim::EventCalendar::kNoEvent;
  if (flow.in_latency) {
    // End of the latency phase: enter the bandwidth-sharing system.
    flow.in_latency = false;
    const std::vector<int>* links = flow.pending_links;
    flow.pending_links = nullptr;
    promote(slot, gen, *links, flow.pending_bytes);
    return;
  }
  SMPI_ENSURE(flow.work.remaining_at(now) <= kRemainingEps,
              "completion event fired with work left");
  complete(flow, sim::Activity::State::kDone);
}

void FlowNetworkModel::complete(Flow& flow, sim::Activity::State state) {
  // Move the activity handle out before retiring: finish() may run
  // completion callbacks that start new flows into this very slot.
  sim::ActivityPtr activity = std::move(flow.activity);
  calendar().cancel(flow.event);
  if (flow.var >= 0) {
    system_.release_variable(flow.var);
    var_to_flow_[static_cast<std::size_t>(flow.var)] = nullptr;
  }
  retire_slot(flow.slot);
  // Deferred: simultaneous completions redistribute the freed shares in one
  // re-solve when the engine settles. Completion callbacks never read rates
  // synchronously (link_usage re-solves on demand), so they still observe a
  // consistent system.
  request_settle();
  activity->finish(state);
}

void FlowNetworkModel::ensure_fault_state() {
  if (faults_enabled_) return;
  faults_enabled_ = true;
  host_up_.assign(static_cast<std::size_t>(platform_.host_count()), 1);
  link_up_.assign(static_cast<std::size_t>(platform_.link_count()), 1);
  link_degrade_.assign(static_cast<std::size_t>(platform_.link_count()), 1.0);
}

bool FlowNetworkModel::route_is_up(int /*src_node*/, int /*dst_node*/,
                                   const std::vector<int>& links) const {
  for (int link : links) {
    if (link_up_[static_cast<std::size_t>(link)] == 0) return false;
  }
  return true;
}

template <typename Pred>
void FlowNetworkModel::fail_matching_flows(const Pred& doomed) {
  // Collect first: failing a flow retires its slot, and the kFailed
  // completion callbacks may start fresh flows into recycled slots.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> victims;
  for (const auto& slot : slots_) {
    if (slot->activity == nullptr) continue;  // free slot
    if (doomed(*slot)) victims.emplace_back(slot->slot, slot->gen);
  }
  for (const auto& [slot, gen] : victims) {
    Flow& flow = *slots_[slot];
    if (flow.gen != gen || flow.activity == nullptr) continue;
    complete(flow, sim::Activity::State::kFailed);
  }
}

void FlowNetworkModel::set_host_up(int host, bool up) {
  SMPI_REQUIRE(host >= 0 && host < platform_.host_count(), "set_host_up on unknown host");
  ensure_fault_state();
  host_up_[static_cast<std::size_t>(host)] = up ? 1 : 0;
  if (!up) {
    fail_matching_flows([host](const Flow& flow) { return flow.src == host || flow.dst == host; });
  }
}

void FlowNetworkModel::set_link_up(int link, bool up) {
  SMPI_REQUIRE(link >= 0 && link < platform_.link_count(), "set_link_up on unknown link");
  ensure_fault_state();
  link_up_[static_cast<std::size_t>(link)] = up ? 1 : 0;
  if (!up) {
    fail_matching_flows([link](const Flow& flow) {
      if (flow.route_links == nullptr) return false;
      for (int l : *flow.route_links) {
        if (l == link) return true;
      }
      return false;
    });
  }
}

void FlowNetworkModel::set_link_degrade(int link, double factor) {
  SMPI_REQUIRE(link >= 0 && link < platform_.link_count(), "set_link_degrade on unknown link");
  SMPI_REQUIRE(factor > 0 && factor <= 1, "link degrade factor must be in (0, 1]");
  ensure_fault_state();
  link_degrade_[static_cast<std::size_t>(link)] = factor;
  const int constraint = link_constraint_[static_cast<std::size_t>(link)];
  if (constraint < 0) return;  // fatpipe: no shared constraint to scale
  system_.set_capacity(constraint, platform_.link(link).bandwidth_bps *
                                       config_.bandwidth_efficiency * factor);
  // The flows on the link keep running at the reduced share; one settle
  // re-solves the whole component and reschedules their completions.
  request_settle();
}

bool FlowNetworkModel::host_is_up(int host) const {
  return !faults_enabled_ || host_up_[static_cast<std::size_t>(host)] != 0;
}

bool FlowNetworkModel::link_is_up(int link) const {
  return !faults_enabled_ || link_up_[static_cast<std::size_t>(link)] != 0;
}

double FlowNetworkModel::link_usage(int link_id) {
  auto* engine = sim::Engine::current();
  SMPI_REQUIRE(engine != nullptr, "link_usage outside a simulation");
  resettle(engine->now());
  const int constraint = link_constraint_[static_cast<std::size_t>(link_id)];
  if (constraint < 0) return 0;
  return system_.constraint_usage(constraint);
}

}  // namespace smpi::surf
