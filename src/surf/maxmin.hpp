// Weighted max-min fairness solver — the analytical heart of the contention
// model (§4.2). At every instant the bandwidth allocated to each active flow
// is computed given the network topology and all currently active flows:
// flows are variables, links are capacity constraints, and the solver
// performs classic progressive filling ("water filling") with per-variable
// rate bounds.
//
// The same solver shares CPU cores among computations.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace smpi::surf {

class MaxMinSystem {
 public:
  static constexpr double kUnbounded = std::numeric_limits<double>::infinity();

  // Returns a constraint id. Capacity must be > 0.
  int new_constraint(double capacity);
  // Returns a variable id. weight scales the variable's fair share; bound is
  // an absolute cap on its value.
  int new_variable(double weight = 1.0, double bound = kUnbounded);
  // Makes `variable` consume `constraint` (coefficient 1: every byte of a
  // flow crosses every link of its route once).
  void attach(int variable, int constraint);

  void set_bound(int variable, double bound);
  void set_capacity(int constraint, double capacity);
  // Detaches and retires the variable; its id may be recycled.
  void release_variable(int variable);

  // Recomputes all allocations if anything changed since the last solve.
  void solve();
  bool dirty() const { return dirty_; }
  double value(int variable) const;

  std::size_t active_variable_count() const { return active_variables_; }
  std::size_t constraint_count() const { return constraints_.size(); }

  // Diagnostics for property tests: total allocation crossing a constraint.
  double constraint_usage(int constraint) const;

 private:
  struct Variable {
    double weight = 1;
    double bound = kUnbounded;
    double value = 0;
    bool active = false;
    bool fixed = false;
    std::vector<int> constraints;
  };
  struct Constraint {
    double capacity = 0;
    std::vector<int> variables;  // may contain retired ids; filtered on use
  };

  std::vector<Variable> variables_;
  std::vector<Constraint> constraints_;
  std::vector<int> free_variable_ids_;
  std::size_t active_variables_ = 0;
  bool dirty_ = true;
};

}  // namespace smpi::surf
