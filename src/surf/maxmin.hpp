// Weighted max-min fairness solver — the analytical heart of the contention
// model (§4.2). At every instant the bandwidth allocated to each active flow
// is computed given the network topology and all currently active flows:
// flows are variables, links are capacity constraints, and the solver
// performs classic progressive filling ("water filling") with per-variable
// rate bounds.
//
// The same solver shares CPU cores among computations.
//
// Three solve strategies live behind SolveMode:
//
//   kFull       — reference path: re-solve the whole system from scratch.
//   kComponent  — every mutation marks the constraints it touches, and
//                 solve() re-runs progressive filling over the connected
//                 component(s) of those dirty constraints. Allocations in
//                 untouched components are provably unchanged (max-min
//                 allocations decompose per connected component).
//   kLazy       — (default) SimGrid-style partial invalidation *inside* a
//                 component: a mutation seeds only the variables/constraints
//                 it provably affects, and the re-solve grows a *modified
//                 set* outward through shared constraints only while member
//                 allocations actually change. A bcast tree where one link
//                 changes re-solves only the affected subtree; an
//                 unsaturated backbone never floods the whole component.
//                 See docs/architecture.md for the promotion rule and its
//                 correctness argument.
//
// set_mode(SolveMode::kFull) selects the reference solve for equivalence
// testing; the three-way property test in test_surf_maxmin.cpp asserts all
// modes agree within 1e-9 under randomized churn.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

namespace smpi::surf {

enum class SolveMode {
  kFull,       // re-solve everything on every solve()
  kComponent,  // re-solve the connected components of dirty constraints
  kLazy,       // modified-set propagation inside components (default)
};

class MaxMinSystem {
 public:
  static constexpr double kUnbounded = std::numeric_limits<double>::infinity();

  // Returns a constraint id. Capacity must be > 0.
  int new_constraint(double capacity);
  // Returns a variable id. weight scales the variable's fair share; bound is
  // an absolute cap on its value.
  int new_variable(double weight = 1.0, double bound = kUnbounded);
  // Makes `variable` consume `constraint` (coefficient 1: every byte of a
  // flow crosses every link of its route once).
  void attach(int variable, int constraint);

  void set_bound(int variable, double bound);
  void set_capacity(int constraint, double capacity);
  // Detaches and retires the variable; its id may be recycled. The variable
  // stops contributing to constraint_usage() immediately.
  void release_variable(int variable);

  // Recomputes the allocations affected by mutations since the last solve
  // (all of them when the mode is kFull).
  void solve();
  bool dirty() const { return dirty_; }
  double value(int variable) const;

  // Solve strategy selection.
  void set_mode(SolveMode mode) { mode_ = mode; }
  SolveMode mode() const { return mode_; }

  // Update notification: ids of the variables whose allocation was recomputed
  // by the last solve(). Consumers reschedule completion events only for
  // these instead of re-deriving every activity's date.
  const std::vector<int>& last_solved_variables() const { return last_solved_; }

  std::size_t active_variable_count() const { return active_variables_; }
  std::size_t constraint_count() const { return constraints_.size(); }

  // Diagnostics for property tests: total allocation crossing a constraint.
  // Released variables never contribute, even before the next solve().
  double constraint_usage(int constraint) const;

  // Perf counters (cumulative): how much work the solver actually did.
  // vars_touched/cons_touched count every variable/constraint fed through a
  // progressive-filling pass (lazy iterations re-count what they re-fill, so
  // the counters reflect true work, not set sizes).
  std::uint64_t solve_count() const { return solve_count_; }
  std::uint64_t vars_touched() const { return vars_touched_; }
  std::uint64_t cons_touched() const { return cons_touched_; }

  // --- Observation API (obs/resource layer) -------------------------------
  // While observing, the system records which constraints' usage or
  // membership changed since the last drain. Solver fills are not the only
  // source: release_variable() on an unsaturated constraint drops its usage
  // immediately without ever triggering a solve in lazy mode, so an observer
  // polling after solves alone would miss steps. Draining the changed set at
  // every model settle instead yields exact piecewise-constant timelines.
  // Off (the default) costs one predictable branch on the mutation paths and
  // changes no allocation arithmetic.
  void set_observing(bool on);
  bool observing() const { return observing_; }
  // Appends the ids of constraints changed since the last drain, then clears
  // the changed set. An id appears at most once per drain.
  void drain_changed_constraints(std::vector<int>& out);
  double constraint_capacity(int constraint) const;
  // A constraint is saturated when its exact usage reaches capacity within
  // the solver's saturation epsilon (1e-9 relative) — the same notion the
  // lazy promotion rule uses.
  bool constraint_saturated(int constraint) const;
  // Same test against a usage the caller already computed (one
  // constraint_usage() recompute per snapshot instead of two).
  bool constraint_saturated(int constraint, double usage) const;
  // Appends (variable id, allocation) for every active member.
  void constraint_shares(int constraint,
                         std::vector<std::pair<int, double>>& out) const;
  // Single-pass snapshot accessor for the observability drain: appends the
  // active (variable, allocation) pairs and returns usage/capacity/saturated
  // from the same member walk — three separate accessor calls would iterate
  // the membership list three times per drained constraint.
  struct ConstraintState {
    double usage = 0;
    double capacity = 0;
    bool saturated = false;
  };
  ConstraintState constraint_observe(int constraint,
                                     std::vector<std::pair<int, double>>& shares_out) const;

  // Cumulative trigger/observation counters feeding the surf.* metrics
  // namespace. Solve triggers classify each solve() by the mutation kinds
  // pending since the previous solve (a solve batching several kinds counts
  // once per kind). saturation_events counts constraint-saturation fill
  // events inside progressive filling; observe_drains counts snapshot-hook
  // invocations (drain calls).
  struct ObserveCounters {
    std::uint64_t solves_attach = 0;
    std::uint64_t solves_release = 0;
    std::uint64_t solves_capacity = 0;
    std::uint64_t solves_bound = 0;
    std::uint64_t saturation_events = 0;
    std::uint64_t observe_drains = 0;
  };
  const ObserveCounters& observe_counters() const { return observe_counters_; }

 private:
  struct Variable {
    double weight = 1;
    double bound = kUnbounded;
    double value = 0;
    double old_value = 0;  // snapshot on entering the lazy modified set
    int fixed_by = -1;     // constraint that capped the last fill (-1: bound)
    bool active = false;
    bool fixed = false;
    bool in_set = false;   // member of the current round's re-fill set
    bool in_pass = false;  // touched at least once during this solve()
    bool seeded = false;   // queued in seed_variables_
    std::vector<int> constraints;
  };
  struct Constraint {
    double capacity = 0;
    std::vector<int> variables;  // released ids are eagerly removed
    bool dirty = false;
    bool in_set = false;    // full member of the current round's re-fill set
    bool in_pass = false;   // touched at least once during this solve()
    bool promoted = false;  // promoted at least once during this solve()
    bool boundary = false;  // partial member: only some variables in set
    bool changed = false;   // usage/membership changed since the last drain
    // Running sum of member values, maintained on every value change so the
    // lazy seeding saturation check is O(1) instead of O(members). May
    // carry float drift; the seeding epsilon is loose enough that drift
    // only ever causes extra (benign) seeding, and constraint_usage()
    // recomputes exactly for diagnostics.
    double usage = 0;
    // Scratch state for the progressive-filling loop.
    double remaining = 0;
    double weight_sum = 0;
  };

  // Mutation-kind bits pending for the next solve()'s trigger classification.
  enum : std::uint8_t {
    kTrigAttach = 1u << 0,
    kTrigRelease = 1u << 1,
    kTrigCapacity = 1u << 2,
    kTrigBound = 1u << 3,
  };

  void note_changed(int constraint) {
    if (!observing_) return;
    auto& cons = constraints_[static_cast<std::size_t>(constraint)];
    if (!cons.changed) {
      cons.changed = true;
      changed_constraints_.push_back(constraint);
    }
  }

  void mark_dirty(int constraint);
  void mark_unconstrained_dirty(int variable);
  // Lazy seeding: queue the variable for re-solve (its constraints join as
  // boundaries at solve time).
  void seed_variable(int variable);
  // Lazy seeding: queue the constraint as a full member iff it is saturated
  // (only then can its members' allocations move).
  void seed_constraint_if_binding(int constraint, double reference_capacity);
  // Expand the dirty constraints into their connected components (constraints
  // linked through shared active variables), filling comp_cons_/comp_vars_.
  void collect_components();
  // Modified-set propagation (kLazy): solve the seed set against frozen
  // boundaries, promoting boundaries whose member allocations changed.
  void solve_lazy();
  // Progressive filling restricted to the given constraint/variable ids.
  // Constraints flagged .boundary contribute capacity minus the usage of
  // their out-of-set members.
  void solve_subset(const std::vector<int>& cons_ids, const std::vector<int>& var_ids);

  std::vector<Variable> variables_;
  std::vector<Constraint> constraints_;
  std::vector<int> free_variable_ids_;
  std::vector<int> dirty_constraints_;      // ids with .dirty set
  std::vector<int> seed_variables_;         // lazy mode: ids with .seeded set
  std::vector<int> dirty_unconstrained_;    // variables with no constraints yet
  std::vector<int> comp_cons_;              // scratch: every constraint touched this solve
  std::vector<int> comp_vars_;              // scratch: every variable touched this solve
  std::vector<int> active_cons_;            // scratch: this round's re-fill set (lazy)
  std::vector<int> active_vars_;
  std::vector<int> promoted_cons_;          // scratch: boundaries promoted this round
  std::vector<int> boundary_cons_;          // scratch: current boundary frontier
  std::vector<int> all_cons_;               // scratch: active_cons_ + boundary_cons_
  std::vector<int> fill_members_;           // scratch: saturation-event member snapshot
  std::vector<int> last_solved_;
  std::vector<int> changed_constraints_;    // observation: ids with .changed set
  std::vector<double> observe_prev_values_;  // scratch: pre-fill values of var_ids
  std::size_t active_variables_ = 0;
  bool dirty_ = false;
  bool observing_ = false;
  std::uint8_t pending_triggers_ = 0;
  SolveMode mode_ = SolveMode::kLazy;
  std::uint64_t solve_count_ = 0;
  std::uint64_t vars_touched_ = 0;
  std::uint64_t cons_touched_ = 0;
  ObserveCounters observe_counters_;
};

}  // namespace smpi::surf
