// Weighted max-min fairness solver — the analytical heart of the contention
// model (§4.2). At every instant the bandwidth allocated to each active flow
// is computed given the network topology and all currently active flows:
// flows are variables, links are capacity constraints, and the solver
// performs classic progressive filling ("water filling") with per-variable
// rate bounds.
//
// The same solver shares CPU cores among computations.
//
// The solver is *incremental*: every mutation (attach, release, set_bound,
// set_capacity) marks only the constraints it touches, and solve() re-runs
// progressive filling over the connected component(s) of those dirty
// constraints — allocations in untouched components are provably unchanged
// (max-min allocations decompose per connected component of the
// constraint/variable bipartite graph). set_incremental(false) switches to
// the full reference solve for equivalence testing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace smpi::surf {

class MaxMinSystem {
 public:
  static constexpr double kUnbounded = std::numeric_limits<double>::infinity();

  // Returns a constraint id. Capacity must be > 0.
  int new_constraint(double capacity);
  // Returns a variable id. weight scales the variable's fair share; bound is
  // an absolute cap on its value.
  int new_variable(double weight = 1.0, double bound = kUnbounded);
  // Makes `variable` consume `constraint` (coefficient 1: every byte of a
  // flow crosses every link of its route once).
  void attach(int variable, int constraint);

  void set_bound(int variable, double bound);
  void set_capacity(int constraint, double capacity);
  // Detaches and retires the variable; its id may be recycled. The variable
  // stops contributing to constraint_usage() immediately.
  void release_variable(int variable);

  // Recomputes the allocations affected by mutations since the last solve
  // (all of them when incremental mode is off).
  void solve();
  bool dirty() const { return dirty_; }
  double value(int variable) const;

  // Incremental (default) vs full-reference solve path.
  void set_incremental(bool on) { incremental_ = on; }
  bool incremental() const { return incremental_; }

  // Update notification: ids of the variables whose allocation was recomputed
  // by the last solve(). Consumers reschedule completion events only for
  // these instead of re-deriving every activity's date.
  const std::vector<int>& last_solved_variables() const { return last_solved_; }

  std::size_t active_variable_count() const { return active_variables_; }
  std::size_t constraint_count() const { return constraints_.size(); }

  // Diagnostics for property tests: total allocation crossing a constraint.
  // Released variables never contribute, even before the next solve().
  double constraint_usage(int constraint) const;

  // Perf counters (cumulative): how much work the solver actually did.
  std::uint64_t solve_count() const { return solve_count_; }
  std::uint64_t variables_visited() const { return variables_visited_; }

 private:
  struct Variable {
    double weight = 1;
    double bound = kUnbounded;
    double value = 0;
    bool active = false;
    bool fixed = false;
    bool in_component = false;
    std::vector<int> constraints;
  };
  struct Constraint {
    double capacity = 0;
    std::vector<int> variables;  // released ids are eagerly removed
    bool dirty = false;
    bool in_component = false;
    // Scratch state for the progressive-filling loop.
    double remaining = 0;
    double weight_sum = 0;
  };

  void mark_dirty(int constraint);
  void mark_unconstrained_dirty(int variable);
  // Expand the dirty constraints into their connected components (constraints
  // linked through shared active variables), filling comp_cons_/comp_vars_.
  void collect_components();
  // Progressive filling restricted to the given constraint/variable ids.
  void solve_subset(const std::vector<int>& cons_ids, const std::vector<int>& var_ids);

  std::vector<Variable> variables_;
  std::vector<Constraint> constraints_;
  std::vector<int> free_variable_ids_;
  std::vector<int> dirty_constraints_;      // ids with .dirty set
  std::vector<int> dirty_unconstrained_;    // variables with no constraints yet
  std::vector<int> comp_cons_;              // scratch for collect_components()
  std::vector<int> comp_vars_;
  std::vector<int> last_solved_;
  std::size_t active_variables_ = 0;
  bool dirty_ = false;
  bool incremental_ = true;
  std::uint64_t solve_count_ = 0;
  std::uint64_t variables_visited_ = 0;
};

}  // namespace smpi::surf
