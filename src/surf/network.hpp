// Flow-level network model (SURF analogue, §4).
//
// A transfer is a *flow*: after a latency phase (sum of route link latencies
// scaled by the piece-wise model's lat_factor) it enters the bandwidth-
// sharing system, where the max-min solver splits each link's capacity among
// the flows crossing it. The flow's rate is additionally capped by
//   - the piece-wise model: bw_factor(size) x bottleneck bandwidth,
//   - a TCP congestion-window bound: window / RTT,
//   - any caller-provided bound (FlowHints).
//
// Setting `contention = false` reproduces the naive simulators of §2/§7
// (every flow gets its full rate regardless of sharing) — the white bars of
// Figures 7 and 11.
#pragma once

#include <memory>
#include <vector>

#include "platform/platform.hpp"
#include "sim/model.hpp"
#include "surf/maxmin.hpp"
#include "surf/piecewise.hpp"

namespace smpi::surf {

struct NetworkConfig {
  PiecewiseFactors factors;           // default: affine with factors 1
  double bandwidth_efficiency = 0.92; // achievable fraction of nominal capacity under sharing
  double tcp_window_bytes = 4.0 * 1024 * 1024;  // 0 disables the window bound
  bool contention = true;
};

class FlowNetworkModel final : public sim::Model, public sim::NetworkBackend {
 public:
  FlowNetworkModel(const platform::Platform& platform, NetworkConfig config);
  ~FlowNetworkModel() override;

  // sim::NetworkBackend
  sim::ActivityPtr start_flow(int src_node, int dst_node, double bytes,
                              const sim::FlowHints& hints) override;
  const char* backend_name() const override { return "surf-flow"; }

  // sim::Model
  double next_event_time(double now) override;
  void advance_to(double now) override;

  // The duration a single uncontended transfer of `bytes` would take — the
  // closed-form alpha_k + s/beta_k the piece-wise model predicts. Used by
  // tests and by calibration sanity checks.
  double uncontended_duration(int src_node, int dst_node, double bytes) const;

  const NetworkConfig& config() const { return config_; }
  std::size_t active_flow_count() const { return flows_.size(); }
  std::uint64_t total_flows_started() const { return total_flows_; }

  // Property-test hook: total allocated rate through a link's constraint.
  double link_usage(int link_id);

 private:
  struct Flow {
    sim::ActivityPtr activity;
    double remaining = 0;
    double rate = 0;
    int var = -1;  // -1 when not in the solver (no-contention mode)
    double bound = 0;
  };

  // Compute (latency, rate bound) for a transfer.
  void path_parameters(int src_node, int dst_node, double bytes, double* latency_out,
                       double* bound_out) const;
  void promote(std::shared_ptr<Flow> flow, const std::vector<int>& links);
  void refresh_rates();

  const platform::Platform& platform_;
  NetworkConfig config_;
  MaxMinSystem system_;
  std::vector<int> link_constraint_;  // per link id; -1 for fatpipe links
  std::vector<std::shared_ptr<Flow>> flows_;
  double last_update_ = 0;
  std::uint64_t total_flows_ = 0;
};

}  // namespace smpi::surf
