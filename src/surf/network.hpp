// Flow-level network model (SURF analogue, §4).
//
// A transfer is a *flow*: after a latency phase (sum of route link latencies
// scaled by the piece-wise model's lat_factor) it enters the bandwidth-
// sharing system, where the max-min solver splits each link's capacity among
// the flows crossing it. The flow's rate is additionally capped by
//   - the piece-wise model: bw_factor(size) x bottleneck bandwidth,
//   - a TCP congestion-window bound: window / RTT,
//   - any caller-provided bound (FlowHints).
//
// The model is heap-driven: each active flow owns one completion entry in
// the engine's event calendar, and a solver re-solve reschedules entries
// only for the flows whose allocation actually changed (the solver's
// update-notification list). Remaining bytes are tracked lazily per flow as
// a (rate, last_update) pair — see sim::FluidWork.
//
// Setting `contention = false` reproduces the naive simulators of §2/§7
// (every flow gets its full rate regardless of sharing) — the white bars of
// Figures 7 and 11.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "platform/platform.hpp"
#include "sim/model.hpp"
#include "surf/maxmin.hpp"
#include "surf/piecewise.hpp"

namespace smpi::surf {

struct NetworkConfig {
  PiecewiseFactors factors;           // default: affine with factors 1
  double bandwidth_efficiency = 0.92; // achievable fraction of nominal capacity under sharing
  double tcp_window_bytes = 4.0 * 1024 * 1024;  // 0 disables the window bound
  bool contention = true;
  // Solve strategy for the bandwidth-sharing (and, via SmpiWorld, the CPU)
  // system: lazy modified-set propagation (default), whole-component
  // re-solve, or the full reference path for equivalence testing.
  SolveMode solver_mode = SolveMode::kLazy;
};

class FlowNetworkModel final : public sim::Model, public sim::NetworkBackend {
 public:
  FlowNetworkModel(const platform::Platform& platform, NetworkConfig config);
  ~FlowNetworkModel() override;

  // sim::NetworkBackend
  sim::ActivityPtr start_flow(int src_node, int dst_node, double bytes,
                              const sim::FlowHints& hints) override;
  const char* backend_name() const override { return "surf-flow"; }

  // sim::Model
  void on_calendar_event(double now, std::uint64_t tag) override;
  void on_settle(double now) override;

  // The duration a single uncontended transfer of `bytes` would take — the
  // closed-form alpha_k + s/beta_k the piece-wise model predicts. Used by
  // tests and by calibration sanity checks.
  double uncontended_duration(int src_node, int dst_node, double bytes) const;

  const NetworkConfig& config() const { return config_; }
  std::size_t active_flow_count() const { return flows_.size(); }
  std::uint64_t total_flows_started() const { return total_flows_; }

  // Property-test hook: total allocated rate through a link's constraint.
  double link_usage(int link_id);

  // Perf counter: solver work actually performed (see MaxMinSystem).
  const MaxMinSystem& solver() const { return system_; }

 private:
  struct Flow {
    std::uint64_t id = 0;
    sim::ActivityPtr activity;
    sim::FluidWork work;
    int var = -1;  // -1 when not in the solver (no-contention mode)
    double bound = 0;
    sim::EventCalendar::Handle event = sim::EventCalendar::kNoEvent;
  };

  // Per-(src,dst) route digest, computed once: the platform's route map is
  // immutable, and re-deriving latency/bottleneck per flow cost three hash
  // lookups plus two link walks per message on the collective hot path.
  struct RouteInfo {
    const std::vector<int>* links = nullptr;
    double latency = 0;     // sum of link latencies
    double bottleneck = 0;  // min link bandwidth
  };
  const RouteInfo& route_info(int src_node, int dst_node) const;

  // Compute (latency, rate bound) for a transfer.
  void path_parameters(int src_node, int dst_node, double bytes, double* latency_out,
                       double* bound_out) const;
  void promote(std::shared_ptr<Flow> flow, const std::vector<int>& links, double bytes);
  // Re-solve if dirty and reschedule completion events for the flows whose
  // rate changed.
  void resettle(double now);
  void reschedule(Flow& flow, double now);
  void complete(Flow& flow);

  const platform::Platform& platform_;
  NetworkConfig config_;
  MaxMinSystem system_;
  std::vector<int> link_constraint_;  // per link id; -1 for fatpipe links
  mutable std::unordered_map<std::uint64_t, RouteInfo> route_cache_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Flow>> flows_;  // by flow id
  // Indexed by solver variable id — ids are recycled, so this stays as small
  // as the peak concurrent flow count; nullptr for retired slots.
  std::vector<Flow*> var_to_flow_;
  std::uint64_t next_flow_id_ = 1;
  std::uint64_t total_flows_ = 0;
};

}  // namespace smpi::surf
