// Flow-level network model (SURF analogue, §4).
//
// A transfer is a *flow*: after a latency phase (sum of route link latencies
// scaled by the piece-wise model's lat_factor) it enters the bandwidth-
// sharing system, where the max-min solver splits each link's capacity among
// the flows crossing it. The flow's rate is additionally capped by
//   - the piece-wise model: bw_factor(size) x bottleneck bandwidth,
//   - a TCP congestion-window bound: window / RTT,
//   - any caller-provided bound (FlowHints).
//
// The model is heap-driven: each active flow owns one completion entry in
// the engine's event calendar, and a solver re-solve reschedules entries
// only for the flows whose allocation actually changed (the solver's
// update-notification list). Remaining bytes are tracked lazily per flow as
// a (rate, last_update) pair — see sim::FluidWork.
//
// Setting `contention = false` reproduces the naive simulators of §2/§7
// (every flow gets its full rate regardless of sharing) — the white bars of
// Figures 7 and 11.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "platform/platform.hpp"
#include "sim/model.hpp"
#include "surf/maxmin.hpp"
#include "surf/piecewise.hpp"

namespace smpi::surf {

struct NetworkConfig {
  PiecewiseFactors factors;           // default: affine with factors 1
  double bandwidth_efficiency = 0.92; // achievable fraction of nominal capacity under sharing
  double tcp_window_bytes = 4.0 * 1024 * 1024;  // 0 disables the window bound
  bool contention = true;
  // Solve strategy for the bandwidth-sharing (and, via SmpiWorld, the CPU)
  // system: lazy modified-set propagation (default), whole-component
  // re-solve, or the full reference path for equivalence testing.
  SolveMode solver_mode = SolveMode::kLazy;
  // Stochastic per-message latency jitter hook (noise::MessageJitter):
  // called once per non-loopback flow at creation, its return value (in
  // seconds, must be >= 0) is added to the flow's latency phase. Null — the
  // default — means no call is made and the deterministic path is taken
  // untouched: a run without noise is bit-identical to one before this hook
  // existed.
  std::function<double(int src, int dst)> latency_jitter;
};

class FlowNetworkModel final : public sim::Model, public sim::NetworkBackend {
 public:
  FlowNetworkModel(const platform::Platform& platform, NetworkConfig config);
  ~FlowNetworkModel() override;

  // sim::NetworkBackend
  sim::ActivityPtr start_flow(int src_node, int dst_node, double bytes,
                              const sim::FlowHints& hints) override;
  const char* backend_name() const override { return "surf-flow"; }

  // sim::Model
  void on_calendar_event(double now, std::uint64_t tag) override;
  void on_settle(double now) override;

  // The duration a single uncontended transfer of `bytes` would take — the
  // closed-form alpha_k + s/beta_k the piece-wise model predicts. Used by
  // tests and by calibration sanity checks.
  double uncontended_duration(int src_node, int dst_node, double bytes) const;

  const NetworkConfig& config() const { return config_; }
  std::size_t active_flow_count() const { return active_flows_; }
  std::uint64_t total_flows_started() const { return total_flows_; }

  // Property-test hook: total allocated rate through a link's constraint.
  double link_usage(int link_id);

  // --- availability (driven by sim::FaultModel) ----------------------------
  // A down host fails every in-flight flow touching it (kFailed) and rejects
  // new flows from/to it; a down link does the same for flows crossing it.
  // Degrade scales a shared link's effective capacity by `factor` (persists
  // across down/up; fatpipe links have no shared constraint, so degradation
  // is a documented no-op there). All state allocates lazily on first use —
  // a fault-free run touches none of it.
  void set_host_up(int host, bool up);
  void set_link_up(int link, bool up);
  void set_link_degrade(int link, double factor);
  bool host_is_up(int host) const;
  bool link_is_up(int link) const;

  // Perf counter: solver work actually performed (see MaxMinSystem).
  const MaxMinSystem& solver() const { return system_; }

  // Resource observability: drain any still-pending solver changes into the
  // installed obs::ResourceCollector (the settle path does this implicitly;
  // the driver calls it once more after the run so the final completions'
  // usage drop reaches the timeline). No-op unless a collector was installed
  // when the model was built.
  void flush_observations(double now);

 private:
  struct Flow {
    std::uint32_t slot = 0;  // its own index in slots_ (for calendar tags)
    // Generation stamp: bumped when the slot retires, so calendar entries
    // referring to a dead occupant are recognized as stale.
    std::uint32_t gen = 0;
    // Latency phase: the first calendar event promotes the flow into the
    // bandwidth-sharing system instead of completing it. Using the calendar
    // for both phases (rather than an engine timer for the first) keeps the
    // per-message cost at one indexed-heap entry; ordering is unchanged
    // because timers and calendar entries share one (date, seq) order.
    bool in_latency = false;
    const std::vector<int>* pending_links = nullptr;
    double pending_bytes = 0;
    // Endpoints and route, kept for the flow's whole lifetime so the fault
    // layer can find the flows a dead host/link strands (the platform's
    // route storage is immutable, so the pointer stays valid).
    int src = -1;
    int dst = -1;
    const std::vector<int>* route_links = nullptr;
    sim::ActivityPtr activity;
    sim::FluidWork work;
    int var = -1;  // -1 when not in the solver (no-contention mode)
    int res_flow = -1;  // obs::ResourceCollector attribution id (lazy)
    double bound = 0;
    sim::EventCalendar::Handle event = sim::EventCalendar::kNoEvent;
  };

  // Per-(src,dst) route digest: the platform's route map is immutable, and
  // re-deriving latency/bottleneck per flow cost three hash lookups plus two
  // link walks per message on the collective hot path. Cached in a fixed
  // direct-mapped table — a collision recomputes and overwrites, which is
  // always correct and in practice never happens for the near-neighbor
  // traffic collectives generate.
  struct RouteInfo {
    const std::vector<int>* links = nullptr;
    double latency = 0;     // sum of link latencies
    double bottleneck = 0;  // min link bandwidth
  };
  const RouteInfo& route_info(int src_node, int dst_node) const;

  // Compute (latency, rate bound) for a transfer.
  void path_parameters(int src_node, int dst_node, double bytes, double* latency_out,
                       double* bound_out) const;
  // Slot bookkeeping: a live flow is identified by (slot, generation),
  // packed into the calendar tag / latency-timer capture as gen<<32 | slot.
  // Slot storage is stable (unique_ptr) and recycled, so the steady-state
  // per-message cost is two vector pushes/pops — no hashing, no per-flow
  // heap node. An earlier revision kept flows in an id-keyed hash map with
  // extracted-node recycling; the insert/extract shuffle was the single
  // hottest line of a 1024-rank collective profile.
  static std::uint64_t pack_tag(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<std::uint64_t>(gen) << 32) | slot;
  }
  std::uint32_t acquire_slot();
  void retire_slot(std::uint32_t slot);

  void promote(std::uint32_t slot, std::uint32_t gen, const std::vector<int>& links,
               double bytes);
  // Re-solve if dirty and reschedule completion events for the flows whose
  // rate changed.
  void resettle(double now);
  void reschedule(Flow& flow, double now);
  void complete(Flow& flow, sim::Activity::State state);
  // Lazily size the availability vectors (first fault only).
  void ensure_fault_state();
  bool route_is_up(int src_node, int dst_node, const std::vector<int>& links) const;
  // Fail (kFailed) every active flow for which `doomed` is true.
  template <typename Pred>
  void fail_matching_flows(const Pred& doomed);

  // Drain the solver's changed constraints into the resource collector
  // (observing mode only; called at every settle).
  void flush_resource_snapshots(double now);

  const platform::Platform& platform_;
  NetworkConfig config_;
  MaxMinSystem system_;
  std::vector<int> link_constraint_;  // per link id; -1 for fatpipe links
  // Resource observability (empty/false unless a collector was installed at
  // construction): constraint id -> collector resource id, plus snapshot
  // scratch so the settle path stays allocation-free in steady state.
  bool observing_ = false;
  std::vector<int> constraint_resource_;
  std::vector<int> changed_scratch_;
  std::vector<std::pair<int, double>> var_shares_scratch_;
  std::vector<std::pair<int, double>> flow_shares_scratch_;
  struct RouteEntry {
    std::uint64_t key = ~std::uint64_t{0};  // (src << 32) | dst; ~0 = empty
    RouteInfo info;
  };
  static constexpr std::size_t kRouteCacheSize = 16384;  // power of two
  mutable std::vector<RouteEntry> route_cache_;
  std::vector<std::unique_ptr<Flow>> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t active_flows_ = 0;
  // Indexed by solver variable id — ids are recycled, so this stays as small
  // as the peak concurrent flow count; nullptr for retired slots.
  std::vector<Flow*> var_to_flow_;
  std::uint64_t total_flows_ = 0;
  // Availability state; empty until the first fault (ensure_fault_state), so
  // fault-free runs pay a single bool check per flow.
  bool faults_enabled_ = false;
  std::vector<char> host_up_;        // per host id
  std::vector<char> link_up_;        // per link id
  std::vector<double> link_degrade_; // per link id; capacity factor in (0, 1]
};

}  // namespace smpi::surf
