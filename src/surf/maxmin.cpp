#include "surf/maxmin.hpp"

#include <algorithm>
#include <cmath>

#include "obs/profile.hpp"
#include "util/check.hpp"

namespace smpi::surf {

namespace {
// A constraint counts as saturated when its usage reaches this fraction of
// capacity; only saturated constraints can move their members' allocations.
constexpr double kSatEps = 1e-9;
// Looser saturation margin for mutation-time *seeding* decisions, which
// consult the O(1) running usage: its float drift must only ever err toward
// seeding (extra work), never toward skipping a binding constraint.
constexpr double kSeedSatEps = 1e-6;
// A member's allocation counts as changed when it moved by more than this
// (relative to the constraint's capacity scale). Changes below the threshold
// are numerical dust from re-filling a subset in a different order; not
// propagating them keeps the modified set small and stays far inside the
// 1e-9 equivalence tolerance the property tests assert.
constexpr double kChangeEps = 1e-12;
// A member at (numerically) zero was starved by a frozen boundary and forces
// promotion regardless of the change test — final allocations are always
// strictly positive.
constexpr double kStarveEps = 1e-12;
}  // namespace

int MaxMinSystem::new_constraint(double capacity) {
  SMPI_REQUIRE(capacity > 0, "constraint capacity must be positive");
  constraints_.emplace_back();
  constraints_.back().capacity = capacity;
  const int id = static_cast<int>(constraints_.size()) - 1;
  // A fresh constraint has no members: nothing to re-solve in lazy mode.
  if (mode_ != SolveMode::kLazy) mark_dirty(id);
  return id;
}

int MaxMinSystem::new_variable(double weight, double bound) {
  SMPI_REQUIRE(weight > 0, "variable weight must be positive");
  SMPI_REQUIRE(bound > 0, "variable bound must be positive");
  int id;
  if (!free_variable_ids_.empty()) {
    id = free_variable_ids_.back();
    free_variable_ids_.pop_back();
    // Field-wise reset keeps the constraints vector's capacity — a recycled
    // variable re-attaches to about as many links as its predecessor, and a
    // whole-struct assignment made every attach re-grow from zero.
    auto& recycled = variables_[static_cast<std::size_t>(id)];
    recycled.weight = 1;
    recycled.bound = kUnbounded;
    recycled.value = 0;
    recycled.old_value = 0;
    recycled.fixed_by = -1;
    recycled.active = false;
    recycled.fixed = false;
    recycled.in_set = false;
    recycled.in_pass = false;
    recycled.seeded = false;
    recycled.constraints.clear();
  } else {
    id = static_cast<int>(variables_.size());
    variables_.emplace_back();
  }
  auto& var = variables_[static_cast<std::size_t>(id)];
  var.weight = weight;
  var.bound = bound;
  var.active = true;
  ++active_variables_;
  pending_triggers_ |= kTrigAttach;
  // Until attached somewhere the variable is its own component; if it is
  // still unconstrained at the next solve it takes its bound.
  mark_unconstrained_dirty(id);
  return id;
}

void MaxMinSystem::mark_dirty(int constraint) {
  auto& cons = constraints_[static_cast<std::size_t>(constraint)];
  if (!cons.dirty) {
    cons.dirty = true;
    dirty_constraints_.push_back(constraint);
  }
  dirty_ = true;
}

void MaxMinSystem::mark_unconstrained_dirty(int variable) {
  dirty_unconstrained_.push_back(variable);
  dirty_ = true;
}

void MaxMinSystem::seed_variable(int variable) {
  auto& var = variables_[static_cast<std::size_t>(variable)];
  if (!var.seeded) {
    var.seeded = true;
    seed_variables_.push_back(variable);
  }
  dirty_ = true;
}

void MaxMinSystem::seed_constraint_if_binding(int constraint, double reference_capacity) {
  const auto& cons = constraints_[static_cast<std::size_t>(constraint)];
  if (cons.dirty) return;
  // Unsaturated constraints constrain nobody: their members' allocations are
  // certified elsewhere and cannot move, so the mutation is inert here. The
  // O(1) running usage makes this check constant-time on the mutation path.
  if (cons.usage >= reference_capacity * (1 - kSeedSatEps)) {
    mark_dirty(constraint);
  }
}

void MaxMinSystem::attach(int variable, int constraint) {
  SMPI_REQUIRE(variable >= 0 && variable < static_cast<int>(variables_.size()), "bad variable");
  SMPI_REQUIRE(constraint >= 0 && constraint < static_cast<int>(constraints_.size()),
               "bad constraint");
  auto& var = variables_[static_cast<std::size_t>(variable)];
  SMPI_REQUIRE(var.active, "attach on retired variable");
  var.constraints.push_back(constraint);
  auto& cons = constraints_[static_cast<std::size_t>(constraint)];
  cons.variables.push_back(variable);
  cons.usage += var.value;
  pending_triggers_ |= kTrigAttach;
  note_changed(constraint);  // membership changed even at value 0
  if (mode_ == SolveMode::kLazy) {
    // The new/updated variable must be re-solved; whether the constraint's
    // other members move is decided by boundary promotion at solve time.
    seed_variable(variable);
  } else {
    // The component reachable from `constraint` now includes the variable
    // and, transitively, its other constraints — marking this one suffices.
    mark_dirty(constraint);
  }
}

void MaxMinSystem::set_bound(int variable, double bound) {
  SMPI_REQUIRE(bound > 0, "bound must be positive");
  auto& var = variables_[static_cast<std::size_t>(variable)];
  SMPI_REQUIRE(var.active, "set_bound on retired variable");
  var.bound = bound;
  pending_triggers_ |= kTrigBound;
  if (var.constraints.empty()) {
    mark_unconstrained_dirty(variable);
  } else if (mode_ == SolveMode::kLazy) {
    seed_variable(variable);
  } else {
    for (int c : var.constraints) mark_dirty(c);
  }
}

void MaxMinSystem::set_capacity(int constraint, double capacity) {
  SMPI_REQUIRE(capacity > 0, "capacity must be positive");
  auto& cons = constraints_[static_cast<std::size_t>(constraint)];
  const double old_capacity = cons.capacity;
  cons.capacity = capacity;
  pending_triggers_ |= kTrigCapacity;
  note_changed(constraint);
  if (mode_ == SolveMode::kLazy) {
    // Members can only move if the constraint was saturated before (they may
    // grow) or its usage exceeds the new capacity (they must shrink).
    seed_constraint_if_binding(constraint, std::min(old_capacity, capacity));
  } else {
    mark_dirty(constraint);
  }
}

void MaxMinSystem::release_variable(int variable) {
  auto& var = variables_[static_cast<std::size_t>(variable)];
  SMPI_REQUIRE(var.active, "double release of variable");
  // The freed share must be redistributed: every *saturated* constraint the
  // variable crossed needs a re-solve (checked while the released value still
  // counts toward usage). Unsaturated ones constrained nobody.
  if (mode_ == SolveMode::kLazy) {
    for (int c : var.constraints) {
      seed_constraint_if_binding(c, constraints_[static_cast<std::size_t>(c)].capacity);
    }
  } else {
    for (int c : var.constraints) mark_dirty(c);
  }
  var.active = false;
  pending_triggers_ |= kTrigRelease;
  // Eagerly drop it from constraint membership lists (so constraint_usage()
  // never sees it again) and from the running usage sums. This is the path
  // that changes usage without ever reaching solve() in lazy mode — the
  // changed-set note here is what keeps observed timelines exact.
  for (int c : var.constraints) {
    auto& cons = constraints_[static_cast<std::size_t>(c)];
    cons.usage -= var.value;
    cons.variables.erase(std::remove(cons.variables.begin(), cons.variables.end(), variable),
                         cons.variables.end());
    note_changed(c);
  }
  var.value = 0;
  var.constraints.clear();
  free_variable_ids_.push_back(variable);
  SMPI_ENSURE(active_variables_ > 0, "active variable count underflow");
  --active_variables_;
}

double MaxMinSystem::value(int variable) const {
  const auto& var = variables_[static_cast<std::size_t>(variable)];
  SMPI_REQUIRE(var.active, "value of retired variable");
  return var.value;
}

void MaxMinSystem::set_observing(bool on) {
  observing_ = on;
  if (!on) {
    for (int c : changed_constraints_) {
      constraints_[static_cast<std::size_t>(c)].changed = false;
    }
    changed_constraints_.clear();
  }
}

void MaxMinSystem::drain_changed_constraints(std::vector<int>& out) {
  ++observe_counters_.observe_drains;
  for (int c : changed_constraints_) {
    constraints_[static_cast<std::size_t>(c)].changed = false;
    out.push_back(c);
  }
  changed_constraints_.clear();
}

double MaxMinSystem::constraint_capacity(int constraint) const {
  return constraints_[static_cast<std::size_t>(constraint)].capacity;
}

bool MaxMinSystem::constraint_saturated(int constraint) const {
  return constraint_saturated(constraint, constraint_usage(constraint));
}

bool MaxMinSystem::constraint_saturated(int constraint, double usage) const {
  const auto& cons = constraints_[static_cast<std::size_t>(constraint)];
  return usage >= cons.capacity * (1 - kSatEps);
}

void MaxMinSystem::constraint_shares(int constraint,
                                     std::vector<std::pair<int, double>>& out) const {
  const auto& cons = constraints_[static_cast<std::size_t>(constraint)];
  for (int v : cons.variables) {
    const auto& var = variables_[static_cast<std::size_t>(v)];
    if (var.active) out.emplace_back(v, var.value);
  }
}

MaxMinSystem::ConstraintState MaxMinSystem::constraint_observe(
    int constraint, std::vector<std::pair<int, double>>& shares_out) const {
  const auto& cons = constraints_[static_cast<std::size_t>(constraint)];
  ConstraintState state;
  state.capacity = cons.capacity;
  for (int v : cons.variables) {
    const auto& var = variables_[static_cast<std::size_t>(v)];
    if (!var.active) continue;
    state.usage += var.value;
    shares_out.emplace_back(v, var.value);
  }
  state.saturated = state.usage >= cons.capacity * (1 - kSatEps);
  return state;
}

double MaxMinSystem::constraint_usage(int constraint) const {
  const auto& cons = constraints_[static_cast<std::size_t>(constraint)];
  double usage = 0;
  for (int v : cons.variables) {
    const auto& var = variables_[static_cast<std::size_t>(v)];
    if (var.active) usage += var.value;
  }
  return usage;
}

void MaxMinSystem::collect_components() {
  comp_cons_.clear();
  comp_vars_.clear();
  // BFS across the constraint/variable bipartite graph, seeded at the dirty
  // constraints. Everything reached must be re-solved; everything else keeps
  // its allocation.
  std::vector<int>& stack = dirty_constraints_;  // consumed as the BFS frontier
  for (int c : stack) constraints_[static_cast<std::size_t>(c)].in_set = true;
  while (!stack.empty()) {
    const int c = stack.back();
    stack.pop_back();
    comp_cons_.push_back(c);
    for (int v : constraints_[static_cast<std::size_t>(c)].variables) {
      auto& var = variables_[static_cast<std::size_t>(v)];
      if (!var.active || var.in_set) continue;
      var.in_set = true;
      comp_vars_.push_back(v);
      for (int c2 : var.constraints) {
        auto& other = constraints_[static_cast<std::size_t>(c2)];
        if (!other.in_set) {
          other.in_set = true;
          stack.push_back(c2);
        }
      }
    }
  }
}

void MaxMinSystem::solve() {
  if (!dirty_) return;
  obs::ProfScope prof(obs::ProfKey::kSolverSolve);
  dirty_ = false;
  ++solve_count_;
  if (pending_triggers_ & kTrigAttach) ++observe_counters_.solves_attach;
  if (pending_triggers_ & kTrigRelease) ++observe_counters_.solves_release;
  if (pending_triggers_ & kTrigCapacity) ++observe_counters_.solves_capacity;
  if (pending_triggers_ & kTrigBound) ++observe_counters_.solves_bound;
  pending_triggers_ = 0;
  last_solved_.clear();

  // Variables that are (still) unconstrained take their bound directly.
  for (int v : dirty_unconstrained_) {
    auto& var = variables_[static_cast<std::size_t>(v)];
    if (!var.active || !var.constraints.empty()) continue;  // released / attached since
    SMPI_REQUIRE(std::isfinite(var.bound),
                 "variable without constraints needs a finite bound");
    var.value = var.bound;
    var.fixed = true;
    last_solved_.push_back(v);
  }
  dirty_unconstrained_.clear();

  if (mode_ == SolveMode::kLazy) {
    solve_lazy();
    return;
  }

  // Fold any lazy seeds left over from a mode switch into the dirty set.
  for (int v : seed_variables_) {
    auto& var = variables_[static_cast<std::size_t>(v)];
    var.seeded = false;
    if (!var.active) continue;
    for (int c : var.constraints) mark_dirty(c);
  }
  seed_variables_.clear();
  dirty_ = false;  // mark_dirty above re-set it

  if (mode_ == SolveMode::kComponent) {
    collect_components();
  } else {
    // Reference path: re-solve the whole system from scratch.
    for (int c : dirty_constraints_) {
      constraints_[static_cast<std::size_t>(c)].dirty = false;
    }
    dirty_constraints_.clear();
    comp_cons_.clear();
    comp_vars_.clear();
    for (int c = 0; c < static_cast<int>(constraints_.size()); ++c) comp_cons_.push_back(c);
    for (int v = 0; v < static_cast<int>(variables_.size()); ++v) {
      const auto& var = variables_[static_cast<std::size_t>(v)];
      if (var.active && !var.constraints.empty()) comp_vars_.push_back(v);
    }
  }

  solve_subset(comp_cons_, comp_vars_);

  for (int c : comp_cons_) {
    auto& cons = constraints_[static_cast<std::size_t>(c)];
    cons.in_set = false;
    cons.dirty = false;
  }
  for (int v : comp_vars_) {
    variables_[static_cast<std::size_t>(v)].in_set = false;
    last_solved_.push_back(v);
  }
}

// Modified-set propagation. The seed set (mutated constraints that were
// binding, plus mutated variables) is solved against its *boundary*: a
// constraint partially inside the set contributes capacity minus the frozen
// usage of its out-of-set members. After each fill, a boundary is promoted
// to a full member — pulling its remaining members into the set — iff
//   (a) it is saturated before or after (only then does it constrain
//       anyone; unsaturated constraints certify nobody's allocation), and
//   (b) some in-set member's allocation actually changed (or was starved to
//       zero by the frozen remainder — real allocations are positive).
// When no boundary promotes, every out-of-set variable keeps a valid
// bottleneck certificate, so the untouched allocations remain exactly the
// global max-min solution.
//
// Promotion rounds are *incremental*: after each fill the just-solved
// members freeze (they now carry fresh certificates against the current
// state) and the next round re-fills only the newly-promoted constraints and
// their members. A frozen variable whose certificate a later round
// invalidates is simply pulled back in through the same promotion rule — the
// fixpoint condition (no boundary of the final active set promotes) is
// unchanged, but a chain of k promotions now costs the sum of the local
// re-fills instead of k times the grown set. A promotion budget guards the
// adversarial ping-pong case: past it, the rounds revert to the monotone
// grow-and-refill behaviour whose termination is bounded by the constraint
// count.
void MaxMinSystem::solve_lazy() {
  comp_cons_.clear();
  comp_vars_.clear();
  active_cons_.clear();
  active_vars_.clear();

  auto activate_var = [&](int v) {
    auto& var = variables_[static_cast<std::size_t>(v)];
    // Unconstrained variables are handled by the bound path in solve().
    if (!var.active || var.in_set || var.constraints.empty()) return;
    var.in_set = true;
    var.old_value = var.value;
    active_vars_.push_back(v);
    if (!var.in_pass) {
      var.in_pass = true;
      comp_vars_.push_back(v);
    }
  };
  auto activate_cons = [&](int c) {
    auto& cons = constraints_[static_cast<std::size_t>(c)];
    cons.dirty = false;
    if (cons.in_set) return;
    cons.in_set = true;
    cons.boundary = false;
    active_cons_.push_back(c);
    if (!cons.in_pass) {
      cons.in_pass = true;
      comp_cons_.push_back(c);
    }
    for (int v : cons.variables) activate_var(v);
  };

  for (int c : dirty_constraints_) activate_cons(c);
  dirty_constraints_.clear();
  for (int v : seed_variables_) {
    variables_[static_cast<std::size_t>(v)].seeded = false;
    activate_var(v);
  }
  seed_variables_.clear();

  bool monotone = false;  // set once any constraint is promoted twice

  while (!active_vars_.empty()) {
    // Discover the boundary: constraints touched by active variables but not
    // active full members — including constraints already solved in an
    // earlier round, whose members are now frozen at certified values.
    boundary_cons_.clear();
    for (int v : active_vars_) {
      for (int c : variables_[static_cast<std::size_t>(v)].constraints) {
        auto& cons = constraints_[static_cast<std::size_t>(c)];
        if (!cons.in_set && !cons.boundary) {
          cons.boundary = true;
          boundary_cons_.push_back(c);
        }
      }
    }
    all_cons_ = active_cons_;
    all_cons_.insert(all_cons_.end(), boundary_cons_.begin(), boundary_cons_.end());

    solve_subset(all_cons_, active_vars_);

    promoted_cons_.clear();
    for (int c : boundary_cons_) {
      auto& cons = constraints_[static_cast<std::size_t>(c)];
      double external = 0, in_old = 0, in_new = 0;
      double max_external_level = 0;
      double min_capped_level = kUnbounded;
      bool changed = false, starved = false;
      for (int v : cons.variables) {
        const auto& var = variables_[static_cast<std::size_t>(v)];
        if (!var.active) continue;
        if (var.in_set) {
          in_old += var.old_value;
          in_new += var.value;
          if (std::fabs(var.value - var.old_value) >
              kChangeEps * std::max(1.0, cons.capacity)) {
            changed = true;
          }
          if (var.value <= kStarveEps * cons.capacity) starved = true;
          if (var.fixed_by == c) {
            min_capped_level = std::min(min_capped_level, var.value / var.weight);
          }
        } else {
          external += var.value;
          max_external_level = std::max(max_external_level, var.value / var.weight);
        }
      }
      const double saturation = cons.capacity * (1 - kSatEps);
      const bool saturated_before = external + in_old >= saturation;
      const bool saturated_after = external + in_new >= saturation;
      // This boundary's frozen remainder capped an in-set member below an
      // out-of-set member's fill level: global max-min would equalize them
      // (the frozen member must shrink), so fairness across the boundary is
      // unresolved even though no in-set value moved.
      const bool squeezed = max_external_level > min_capped_level * (1 + kSatEps);
      if (squeezed || ((changed || starved) && (saturated_before || saturated_after))) {
        promoted_cons_.push_back(c);
      }
    }
    for (int c : boundary_cons_) constraints_[static_cast<std::size_t>(c)].boundary = false;
    if (promoted_cons_.empty()) break;

    // Re-promotion detector: a constraint promoted twice in one pass means
    // the frozen/active frontier is oscillating (two neighbourhoods keep
    // invalidating each other's fill, typically through a tied bottleneck
    // attribution). Monotone growth resolves that by construction — each
    // further round jointly fills everything touched so far — and by the
    // pigeonhole bound terminates within #constraints promotions.
    for (int c : promoted_cons_) {
      auto& cons = constraints_[static_cast<std::size_t>(c)];
      if (cons.promoted) monotone = true;
      cons.promoted = true;
    }
    if (!monotone) {
      // Incremental round: freeze the just-solved members; only the promoted
      // constraints' neighbourhoods re-fill (re-snapshotting old_value for
      // any member that re-enters).
      for (int v : active_vars_) variables_[static_cast<std::size_t>(v)].in_set = false;
      for (int c : active_cons_) constraints_[static_cast<std::size_t>(c)].in_set = false;
      active_vars_.clear();
      active_cons_.clear();
    }
    for (int c : promoted_cons_) activate_cons(c);
  }

  for (int c : comp_cons_) {
    auto& cons = constraints_[static_cast<std::size_t>(c)];
    cons.in_set = false;
    cons.in_pass = false;
    cons.promoted = false;
  }
  for (int v : comp_vars_) {
    auto& var = variables_[static_cast<std::size_t>(v)];
    var.in_set = false;
    var.in_pass = false;
    last_solved_.push_back(v);
  }
}

void MaxMinSystem::solve_subset(const std::vector<int>& cons_ids,
                                const std::vector<int>& var_ids) {
  // Progressive filling: all unfixed variables grow their value as
  // mu * weight for a common scale mu. The next event is either a variable
  // hitting its bound or a constraint saturating; process events in order
  // until every variable is fixed.
  constexpr double kEpsRel = 1e-12;

  for (int c : cons_ids) {
    auto& cons = constraints_[static_cast<std::size_t>(c)];
    if (cons.boundary) {
      // Boundary constraint: its out-of-set members keep their allocation,
      // so only the leftover capacity is up for filling.
      double external = 0;
      for (int v : cons.variables) {
        const auto& var = variables_[static_cast<std::size_t>(v)];
        if (var.active && !var.in_set) external += var.value;
      }
      cons.remaining = std::max(0.0, cons.capacity - external);
    } else {
      cons.remaining = cons.capacity;
    }
    cons.weight_sum = 0;
  }
  if (observing_) {
    // Snapshot-worthiness is decided per variable after the fill: a
    // constraint's usage and share set only move when some member's value
    // moves (membership and capacity mutations are noted at their call
    // sites), so capture the pre-fill values and compare at the end —
    // re-solves that land on the same allocation then cost no snapshots.
    observe_prev_values_.clear();
    for (int v : var_ids) {
      observe_prev_values_.push_back(variables_[static_cast<std::size_t>(v)].value);
    }
  }
  std::size_t unfixed = 0;
  for (int v : var_ids) {
    auto& var = variables_[static_cast<std::size_t>(v)];
    var.fixed = false;
    ++unfixed;
    for (int c : var.constraints) {
      auto& cons = constraints_[static_cast<std::size_t>(c)];
      cons.weight_sum += var.weight;
      cons.usage -= var.value;  // re-added when the fill fixes the variable
    }
    var.value = 0;
  }
  vars_touched_ += var_ids.size();
  cons_touched_ += cons_ids.size();

  auto fix_variable = [&](Variable& var, double value, int by) {
    var.value = value;
    var.fixed = true;
    var.fixed_by = by;
    for (int c : var.constraints) {
      auto& cons = constraints_[static_cast<std::size_t>(c)];
      cons.remaining -= value;
      if (cons.remaining < 0) cons.remaining = 0;
      cons.weight_sum -= var.weight;
      if (cons.weight_sum < kEpsRel) cons.weight_sum = 0;
      cons.usage += value;
    }
    --unfixed;
  };

  while (unfixed > 0) {
    // Scale at which the first constraint saturates.
    double mu_constraint = MaxMinSystem::kUnbounded;
    for (int c : cons_ids) {
      const auto& cons = constraints_[static_cast<std::size_t>(c)];
      if (cons.weight_sum > 0) {
        mu_constraint = std::min(mu_constraint, cons.remaining / cons.weight_sum);
      }
    }
    // Scale at which the first variable hits its bound.
    double mu_bound = MaxMinSystem::kUnbounded;
    for (int v : var_ids) {
      const auto& var = variables_[static_cast<std::size_t>(v)];
      if (var.fixed) continue;
      mu_bound = std::min(mu_bound, var.bound / var.weight);
    }
    SMPI_ENSURE(std::isfinite(mu_constraint) || std::isfinite(mu_bound),
                "unbounded variable attached to no saturable constraint");

    if (mu_bound <= mu_constraint) {
      // Fix every variable whose bound event is (numerically) now.
      const double cutoff = mu_bound * (1 + kEpsRel);
      bool fixed_any = false;
      for (int v : var_ids) {
        auto& var = variables_[static_cast<std::size_t>(v)];
        if (var.fixed) continue;
        if (var.bound / var.weight <= cutoff) {
          fix_variable(var, var.bound, -1);
          fixed_any = true;
        }
      }
      SMPI_ENSURE(fixed_any, "bound event fixed no variable");
    } else {
      // Saturate the tightest constraint(s): every unfixed variable crossing
      // one gets mu * weight.
      const double cutoff = mu_constraint * (1 + kEpsRel);
      bool fixed_any = false;
      for (int c : cons_ids) {
        const auto& cons = constraints_[static_cast<std::size_t>(c)];
        if (cons.weight_sum <= 0) continue;
        if (cons.remaining / cons.weight_sum > cutoff) continue;
        // Iterate over a snapshot (reused scratch, so the steady-state solve
        // stays allocation-free): fix_variable mutates weight_sum/remaining.
        fill_members_.assign(cons.variables.begin(), cons.variables.end());
        bool fixed_here = false;
        for (int v : fill_members_) {
          auto& var = variables_[static_cast<std::size_t>(v)];
          if (!var.active || var.fixed) continue;
          fix_variable(var, mu_constraint * var.weight, c);
          fixed_any = true;
          fixed_here = true;
        }
        if (fixed_here) ++observe_counters_.saturation_events;
      }
      SMPI_ENSURE(fixed_any, "saturation event fixed no variable");
    }
  }

  if (observing_) {
    for (std::size_t i = 0; i < var_ids.size(); ++i) {
      const auto& var = variables_[static_cast<std::size_t>(var_ids[i])];
      if (var.value != observe_prev_values_[i]) {
        for (int c : var.constraints) note_changed(c);
      }
    }
  }
}

}  // namespace smpi::surf
