#include "surf/maxmin.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace smpi::surf {

int MaxMinSystem::new_constraint(double capacity) {
  SMPI_REQUIRE(capacity > 0, "constraint capacity must be positive");
  constraints_.push_back(Constraint{capacity, {}, false, false, 0, 0});
  mark_dirty(static_cast<int>(constraints_.size()) - 1);
  return static_cast<int>(constraints_.size()) - 1;
}

int MaxMinSystem::new_variable(double weight, double bound) {
  SMPI_REQUIRE(weight > 0, "variable weight must be positive");
  SMPI_REQUIRE(bound > 0, "variable bound must be positive");
  int id;
  if (!free_variable_ids_.empty()) {
    id = free_variable_ids_.back();
    free_variable_ids_.pop_back();
    variables_[static_cast<std::size_t>(id)] = Variable{};
  } else {
    id = static_cast<int>(variables_.size());
    variables_.emplace_back();
  }
  auto& var = variables_[static_cast<std::size_t>(id)];
  var.weight = weight;
  var.bound = bound;
  var.active = true;
  ++active_variables_;
  // Until attached somewhere the variable is its own component; if it is
  // still unconstrained at the next solve it takes its bound.
  mark_unconstrained_dirty(id);
  return id;
}

void MaxMinSystem::mark_dirty(int constraint) {
  auto& cons = constraints_[static_cast<std::size_t>(constraint)];
  if (!cons.dirty) {
    cons.dirty = true;
    dirty_constraints_.push_back(constraint);
  }
  dirty_ = true;
}

void MaxMinSystem::mark_unconstrained_dirty(int variable) {
  dirty_unconstrained_.push_back(variable);
  dirty_ = true;
}

void MaxMinSystem::attach(int variable, int constraint) {
  SMPI_REQUIRE(variable >= 0 && variable < static_cast<int>(variables_.size()), "bad variable");
  SMPI_REQUIRE(constraint >= 0 && constraint < static_cast<int>(constraints_.size()),
               "bad constraint");
  auto& var = variables_[static_cast<std::size_t>(variable)];
  SMPI_REQUIRE(var.active, "attach on retired variable");
  var.constraints.push_back(constraint);
  constraints_[static_cast<std::size_t>(constraint)].variables.push_back(variable);
  // The component reachable from `constraint` now includes the variable and,
  // transitively, its other constraints — marking just this one suffices.
  mark_dirty(constraint);
}

void MaxMinSystem::set_bound(int variable, double bound) {
  SMPI_REQUIRE(bound > 0, "bound must be positive");
  auto& var = variables_[static_cast<std::size_t>(variable)];
  SMPI_REQUIRE(var.active, "set_bound on retired variable");
  var.bound = bound;
  if (var.constraints.empty()) {
    mark_unconstrained_dirty(variable);
  } else {
    for (int c : var.constraints) mark_dirty(c);
  }
}

void MaxMinSystem::set_capacity(int constraint, double capacity) {
  SMPI_REQUIRE(capacity > 0, "capacity must be positive");
  constraints_[static_cast<std::size_t>(constraint)].capacity = capacity;
  mark_dirty(constraint);
}

void MaxMinSystem::release_variable(int variable) {
  auto& var = variables_[static_cast<std::size_t>(variable)];
  SMPI_REQUIRE(var.active, "double release of variable");
  var.active = false;
  var.value = 0;
  // The freed share must be redistributed: every constraint the variable
  // crossed needs a re-solve.
  for (int c : var.constraints) mark_dirty(c);
  // Eagerly drop it from constraint membership lists so constraint_usage()
  // never sees it again.
  for (int c : var.constraints) {
    auto& members = constraints_[static_cast<std::size_t>(c)].variables;
    members.erase(std::remove(members.begin(), members.end(), variable), members.end());
  }
  var.constraints.clear();
  free_variable_ids_.push_back(variable);
  SMPI_ENSURE(active_variables_ > 0, "active variable count underflow");
  --active_variables_;
  dirty_ = true;
}

double MaxMinSystem::value(int variable) const {
  const auto& var = variables_[static_cast<std::size_t>(variable)];
  SMPI_REQUIRE(var.active, "value of retired variable");
  return var.value;
}

double MaxMinSystem::constraint_usage(int constraint) const {
  const auto& cons = constraints_[static_cast<std::size_t>(constraint)];
  double usage = 0;
  for (int v : cons.variables) {
    const auto& var = variables_[static_cast<std::size_t>(v)];
    if (var.active) usage += var.value;
  }
  return usage;
}

void MaxMinSystem::collect_components() {
  comp_cons_.clear();
  comp_vars_.clear();
  // BFS across the constraint/variable bipartite graph, seeded at the dirty
  // constraints. Everything reached must be re-solved; everything else keeps
  // its allocation.
  std::vector<int>& stack = dirty_constraints_;  // consumed as the BFS frontier
  for (int c : stack) constraints_[static_cast<std::size_t>(c)].in_component = true;
  while (!stack.empty()) {
    const int c = stack.back();
    stack.pop_back();
    comp_cons_.push_back(c);
    for (int v : constraints_[static_cast<std::size_t>(c)].variables) {
      auto& var = variables_[static_cast<std::size_t>(v)];
      if (!var.active || var.in_component) continue;
      var.in_component = true;
      comp_vars_.push_back(v);
      for (int c2 : var.constraints) {
        auto& other = constraints_[static_cast<std::size_t>(c2)];
        if (!other.in_component) {
          other.in_component = true;
          stack.push_back(c2);
        }
      }
    }
  }
}

void MaxMinSystem::solve() {
  if (!dirty_) return;
  dirty_ = false;
  ++solve_count_;
  last_solved_.clear();

  // Variables that are (still) unconstrained take their bound directly.
  for (int v : dirty_unconstrained_) {
    auto& var = variables_[static_cast<std::size_t>(v)];
    if (!var.active || !var.constraints.empty()) continue;  // released / attached since
    SMPI_REQUIRE(std::isfinite(var.bound),
                 "variable without constraints needs a finite bound");
    var.value = var.bound;
    var.fixed = true;
    last_solved_.push_back(v);
  }
  dirty_unconstrained_.clear();

  if (incremental_) {
    collect_components();
  } else {
    // Reference path: re-solve the whole system from scratch.
    for (int c : dirty_constraints_) {
      constraints_[static_cast<std::size_t>(c)].dirty = false;
    }
    dirty_constraints_.clear();
    comp_cons_.clear();
    comp_vars_.clear();
    for (int c = 0; c < static_cast<int>(constraints_.size()); ++c) comp_cons_.push_back(c);
    for (int v = 0; v < static_cast<int>(variables_.size()); ++v) {
      const auto& var = variables_[static_cast<std::size_t>(v)];
      if (var.active && !var.constraints.empty()) comp_vars_.push_back(v);
    }
  }

  solve_subset(comp_cons_, comp_vars_);

  for (int c : comp_cons_) {
    auto& cons = constraints_[static_cast<std::size_t>(c)];
    cons.in_component = false;
    cons.dirty = false;
  }
  for (int v : comp_vars_) {
    variables_[static_cast<std::size_t>(v)].in_component = false;
    last_solved_.push_back(v);
  }
}

void MaxMinSystem::solve_subset(const std::vector<int>& cons_ids,
                                const std::vector<int>& var_ids) {
  // Progressive filling: all unfixed variables grow their value as
  // mu * weight for a common scale mu. The next event is either a variable
  // hitting its bound or a constraint saturating; process events in order
  // until every variable is fixed.
  constexpr double kEpsRel = 1e-12;

  for (int c : cons_ids) {
    auto& cons = constraints_[static_cast<std::size_t>(c)];
    cons.remaining = cons.capacity;
    cons.weight_sum = 0;
  }
  std::size_t unfixed = 0;
  for (int v : var_ids) {
    auto& var = variables_[static_cast<std::size_t>(v)];
    var.fixed = false;
    var.value = 0;
    ++unfixed;
    for (int c : var.constraints) {
      constraints_[static_cast<std::size_t>(c)].weight_sum += var.weight;
    }
  }
  variables_visited_ += var_ids.size();

  auto fix_variable = [&](Variable& var, double value) {
    var.value = value;
    var.fixed = true;
    for (int c : var.constraints) {
      auto& cons = constraints_[static_cast<std::size_t>(c)];
      cons.remaining -= value;
      if (cons.remaining < 0) cons.remaining = 0;
      cons.weight_sum -= var.weight;
      if (cons.weight_sum < kEpsRel) cons.weight_sum = 0;
    }
    --unfixed;
  };

  while (unfixed > 0) {
    // Scale at which the first constraint saturates.
    double mu_constraint = MaxMinSystem::kUnbounded;
    for (int c : cons_ids) {
      const auto& cons = constraints_[static_cast<std::size_t>(c)];
      if (cons.weight_sum > 0) {
        mu_constraint = std::min(mu_constraint, cons.remaining / cons.weight_sum);
      }
    }
    // Scale at which the first variable hits its bound.
    double mu_bound = MaxMinSystem::kUnbounded;
    for (int v : var_ids) {
      const auto& var = variables_[static_cast<std::size_t>(v)];
      if (var.fixed) continue;
      mu_bound = std::min(mu_bound, var.bound / var.weight);
    }
    SMPI_ENSURE(std::isfinite(mu_constraint) || std::isfinite(mu_bound),
                "unbounded variable attached to no saturable constraint");

    if (mu_bound <= mu_constraint) {
      // Fix every variable whose bound event is (numerically) now.
      const double cutoff = mu_bound * (1 + kEpsRel);
      bool fixed_any = false;
      for (int v : var_ids) {
        auto& var = variables_[static_cast<std::size_t>(v)];
        if (var.fixed) continue;
        if (var.bound / var.weight <= cutoff) {
          fix_variable(var, var.bound);
          fixed_any = true;
        }
      }
      SMPI_ENSURE(fixed_any, "bound event fixed no variable");
    } else {
      // Saturate the tightest constraint(s): every unfixed variable crossing
      // one gets mu * weight.
      const double cutoff = mu_constraint * (1 + kEpsRel);
      bool fixed_any = false;
      for (int c : cons_ids) {
        const auto& cons = constraints_[static_cast<std::size_t>(c)];
        if (cons.weight_sum <= 0) continue;
        if (cons.remaining / cons.weight_sum > cutoff) continue;
        // Iterate over a copy: fix_variable mutates weight_sum/remaining.
        const auto members = cons.variables;
        for (int v : members) {
          auto& var = variables_[static_cast<std::size_t>(v)];
          if (!var.active || var.fixed) continue;
          fix_variable(var, mu_constraint * var.weight);
          fixed_any = true;
        }
      }
      SMPI_ENSURE(fixed_any, "saturation event fixed no variable");
    }
  }
}

}  // namespace smpi::surf
