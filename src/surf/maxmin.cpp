#include "surf/maxmin.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace smpi::surf {

int MaxMinSystem::new_constraint(double capacity) {
  SMPI_REQUIRE(capacity > 0, "constraint capacity must be positive");
  constraints_.push_back(Constraint{capacity, {}});
  dirty_ = true;
  return static_cast<int>(constraints_.size()) - 1;
}

int MaxMinSystem::new_variable(double weight, double bound) {
  SMPI_REQUIRE(weight > 0, "variable weight must be positive");
  SMPI_REQUIRE(bound > 0, "variable bound must be positive");
  int id;
  if (!free_variable_ids_.empty()) {
    id = free_variable_ids_.back();
    free_variable_ids_.pop_back();
    variables_[static_cast<std::size_t>(id)] = Variable{};
  } else {
    id = static_cast<int>(variables_.size());
    variables_.emplace_back();
  }
  auto& var = variables_[static_cast<std::size_t>(id)];
  var.weight = weight;
  var.bound = bound;
  var.active = true;
  ++active_variables_;
  dirty_ = true;
  return id;
}

void MaxMinSystem::attach(int variable, int constraint) {
  SMPI_REQUIRE(variable >= 0 && variable < static_cast<int>(variables_.size()), "bad variable");
  SMPI_REQUIRE(constraint >= 0 && constraint < static_cast<int>(constraints_.size()),
               "bad constraint");
  auto& var = variables_[static_cast<std::size_t>(variable)];
  SMPI_REQUIRE(var.active, "attach on retired variable");
  var.constraints.push_back(constraint);
  constraints_[static_cast<std::size_t>(constraint)].variables.push_back(variable);
  dirty_ = true;
}

void MaxMinSystem::set_bound(int variable, double bound) {
  SMPI_REQUIRE(bound > 0, "bound must be positive");
  auto& var = variables_[static_cast<std::size_t>(variable)];
  SMPI_REQUIRE(var.active, "set_bound on retired variable");
  var.bound = bound;
  dirty_ = true;
}

void MaxMinSystem::set_capacity(int constraint, double capacity) {
  SMPI_REQUIRE(capacity > 0, "capacity must be positive");
  constraints_[static_cast<std::size_t>(constraint)].capacity = capacity;
  dirty_ = true;
}

void MaxMinSystem::release_variable(int variable) {
  auto& var = variables_[static_cast<std::size_t>(variable)];
  SMPI_REQUIRE(var.active, "double release of variable");
  var.active = false;
  var.value = 0;
  // Lazily drop it from constraint membership lists.
  for (int c : var.constraints) {
    auto& members = constraints_[static_cast<std::size_t>(c)].variables;
    members.erase(std::remove(members.begin(), members.end(), variable), members.end());
  }
  var.constraints.clear();
  free_variable_ids_.push_back(variable);
  SMPI_ENSURE(active_variables_ > 0, "active variable count underflow");
  --active_variables_;
  dirty_ = true;
}

double MaxMinSystem::value(int variable) const {
  const auto& var = variables_[static_cast<std::size_t>(variable)];
  SMPI_REQUIRE(var.active, "value of retired variable");
  return var.value;
}

double MaxMinSystem::constraint_usage(int constraint) const {
  const auto& cons = constraints_[static_cast<std::size_t>(constraint)];
  double usage = 0;
  for (int v : cons.variables) {
    const auto& var = variables_[static_cast<std::size_t>(v)];
    if (var.active) usage += var.value;
  }
  return usage;
}

void MaxMinSystem::solve() {
  if (!dirty_) return;
  dirty_ = false;

  // Progressive filling: all unfixed variables grow their value as
  // mu * weight for a common scale mu. The next event is either a variable
  // hitting its bound or a constraint saturating; process events in order
  // until every variable is fixed.
  constexpr double kEpsRel = 1e-12;

  std::vector<double> remaining(constraints_.size());
  std::vector<double> weight_sum(constraints_.size(), 0.0);
  for (std::size_t c = 0; c < constraints_.size(); ++c) {
    remaining[c] = constraints_[c].capacity;
  }

  std::size_t unfixed = 0;
  for (auto& var : variables_) {
    if (!var.active) continue;
    var.fixed = false;
    var.value = 0;
    if (var.constraints.empty()) {
      // Unconstrained variable: takes its bound (no-contention mode).
      SMPI_REQUIRE(std::isfinite(var.bound),
                   "variable without constraints needs a finite bound");
      var.value = var.bound;
      var.fixed = true;
      continue;
    }
    ++unfixed;
    for (int c : var.constraints) weight_sum[static_cast<std::size_t>(c)] += var.weight;
  }

  auto fix_variable = [&](Variable& var, double value) {
    var.value = value;
    var.fixed = true;
    for (int c : var.constraints) {
      const auto ci = static_cast<std::size_t>(c);
      remaining[ci] -= value;
      if (remaining[ci] < 0) remaining[ci] = 0;
      weight_sum[ci] -= var.weight;
      if (weight_sum[ci] < kEpsRel) weight_sum[ci] = 0;
    }
    --unfixed;
  };

  while (unfixed > 0) {
    // Scale at which the first constraint saturates.
    double mu_constraint = MaxMinSystem::kUnbounded;
    for (std::size_t c = 0; c < constraints_.size(); ++c) {
      if (weight_sum[c] > 0) {
        mu_constraint = std::min(mu_constraint, remaining[c] / weight_sum[c]);
      }
    }
    // Scale at which the first variable hits its bound.
    double mu_bound = MaxMinSystem::kUnbounded;
    for (const auto& var : variables_) {
      if (!var.active || var.fixed) continue;
      mu_bound = std::min(mu_bound, var.bound / var.weight);
    }
    SMPI_ENSURE(std::isfinite(mu_constraint) || std::isfinite(mu_bound),
                "unbounded variable attached to no saturable constraint");

    if (mu_bound <= mu_constraint) {
      // Fix every variable whose bound event is (numerically) now.
      const double cutoff = mu_bound * (1 + kEpsRel);
      bool fixed_any = false;
      for (auto& var : variables_) {
        if (!var.active || var.fixed) continue;
        if (var.bound / var.weight <= cutoff) {
          fix_variable(var, var.bound);
          fixed_any = true;
        }
      }
      SMPI_ENSURE(fixed_any, "bound event fixed no variable");
    } else {
      // Saturate the tightest constraint(s): every unfixed variable crossing
      // one gets mu * weight.
      const double cutoff = mu_constraint * (1 + kEpsRel);
      bool fixed_any = false;
      for (std::size_t c = 0; c < constraints_.size(); ++c) {
        if (weight_sum[c] <= 0) continue;
        if (remaining[c] / weight_sum[c] > cutoff) continue;
        // Iterate over a copy: fix_variable mutates weight_sum/remaining.
        const auto members = constraints_[c].variables;
        for (int v : members) {
          auto& var = variables_[static_cast<std::size_t>(v)];
          if (!var.active || var.fixed) continue;
          fix_variable(var, mu_constraint * var.weight);
          fixed_any = true;
        }
      }
      SMPI_ENSURE(fixed_any, "saturation event fixed no variable");
    }
  }
}

}  // namespace smpi::surf
