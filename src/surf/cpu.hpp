// CPU model: hosts expose cores x speed flop/s; computations are fluid
// actions sharing the host capacity through the same max-min solver as the
// network (a single process never exceeds one core's speed).
//
// The MPI layer turns measured CPU-burst durations into flops through
// node_speed(), implementing the host-to-target scaling of §3.1.
#pragma once

#include <memory>
#include <vector>

#include "platform/platform.hpp"
#include "sim/model.hpp"
#include "surf/maxmin.hpp"

namespace smpi::surf {

class CpuModel final : public sim::Model, public sim::ComputeBackend {
 public:
  explicit CpuModel(const platform::Platform& platform);

  // sim::ComputeBackend
  sim::ActivityPtr execute(int node, double flops) override;
  double node_speed(int node) const override;

  // sim::Model
  double next_event_time(double now) override;
  void advance_to(double now) override;

  std::size_t active_execution_count() const { return executions_.size(); }

 private:
  struct Execution {
    sim::ActivityPtr activity;
    double remaining = 0;
    double rate = 0;
    int var = -1;
  };

  void refresh_rates();

  const platform::Platform& platform_;
  MaxMinSystem system_;
  std::vector<int> host_constraint_;
  std::vector<std::shared_ptr<Execution>> executions_;
  double last_update_ = 0;
};

}  // namespace smpi::surf
