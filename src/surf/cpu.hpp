// CPU model: hosts expose cores x speed flop/s; computations are fluid
// actions sharing the host capacity through the same max-min solver as the
// network (a single process never exceeds one core's speed).
//
// Like the network model, the CPU model is heap-driven: each execution owns
// one completion entry in the engine's event calendar, remaining flops are
// tracked lazily per execution, and a re-solve reschedules only the
// executions whose rate changed.
//
// The MPI layer turns measured CPU-burst durations into flops through
// node_speed(), implementing the host-to-target scaling of §3.1.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "platform/platform.hpp"
#include "sim/model.hpp"
#include "surf/maxmin.hpp"

namespace smpi::surf {

class CpuModel final : public sim::Model, public sim::ComputeBackend {
 public:
  explicit CpuModel(const platform::Platform& platform,
                    SolveMode solver_mode = SolveMode::kLazy);

  // sim::ComputeBackend
  sim::ActivityPtr execute(int node, double flops) override;
  double node_speed(int node) const override;

  // sim::Model
  void on_calendar_event(double now, std::uint64_t tag) override;
  void on_settle(double now) override;

  std::size_t active_execution_count() const { return executions_.size(); }
  const MaxMinSystem& solver() const { return system_; }

  // Resource observability: final drain into the installed collector (see
  // FlowNetworkModel::flush_observations). No-op unless observing.
  void flush_observations(double now);

  // Availability (driven by sim::FaultModel): a down host fails its running
  // executions (kFailed) and rejects new ones; recovery re-enables it. State
  // allocates lazily on the first fault, so fault-free runs pay one bool
  // check per execute().
  void set_host_up(int host, bool up);
  bool host_is_up(int host) const;

 private:
  struct Execution {
    std::uint64_t id = 0;
    int node = -1;
    sim::ActivityPtr activity;
    sim::FluidWork work;
    int var = -1;
    int res_flow = -1;  // obs::ResourceCollector attribution id (lazy)
    sim::EventCalendar::Handle event = sim::EventCalendar::kNoEvent;
  };

  void resettle(double now);
  void reschedule(Execution& exec, double now);
  void flush_resource_snapshots(double now);

  const platform::Platform& platform_;
  MaxMinSystem system_;
  std::vector<int> host_constraint_;
  // Resource observability state (see FlowNetworkModel).
  bool observing_ = false;
  std::vector<int> constraint_resource_;
  std::vector<int> changed_scratch_;
  std::vector<std::pair<int, double>> var_shares_scratch_;
  std::vector<std::pair<int, double>> flow_shares_scratch_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Execution>> executions_;
  // Indexed by solver variable id (recycled, stays dense); nullptr when free.
  std::vector<Execution*> var_to_execution_;
  std::uint64_t next_execution_id_ = 1;
  bool faults_enabled_ = false;
  std::vector<char> host_up_;  // per host id; empty until the first fault
};

}  // namespace smpi::surf
