#include "surf/piecewise.hpp"

#include <cmath>
#include <sstream>

#include "util/check.hpp"

namespace smpi::surf {

PiecewiseFactors::PiecewiseFactors() : segments_{PiecewiseSegment{}} {}

PiecewiseFactors::PiecewiseFactors(std::vector<PiecewiseSegment> segments)
    : segments_(std::move(segments)) {
  SMPI_REQUIRE(!segments_.empty(), "need at least one segment");
  for (std::size_t i = 0; i + 1 < segments_.size(); ++i) {
    SMPI_REQUIRE(segments_[i].max_bytes < segments_[i + 1].max_bytes,
                 "segments must have strictly increasing boundaries");
  }
  SMPI_REQUIRE(std::isinf(segments_.back().max_bytes), "last segment must be unbounded");
  for (const auto& seg : segments_) {
    SMPI_REQUIRE(seg.lat_factor > 0 && seg.bw_factor > 0, "factors must be positive");
  }
}

const PiecewiseSegment& PiecewiseFactors::segment_for(double bytes) const {
  for (const auto& seg : segments_) {
    if (bytes < seg.max_bytes) return seg;
  }
  return segments_.back();
}

std::string PiecewiseFactors::describe() const {
  std::ostringstream os;
  double prev = 0;
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    const auto& seg = segments_[i];
    if (i != 0) os << "; ";
    os << '[' << prev << ", " << seg.max_bytes << "): lat*" << seg.lat_factor << " bw*"
       << seg.bw_factor;
    prev = seg.max_bytes;
  }
  return os.str();
}

}  // namespace smpi::surf
