// Model instantiation from ping-pong measurements (§4.1, §6).
//
// Three candidate point-to-point models, matching Figure 3's three curves:
//  * default affine  — alpha = time of a 1-byte message, beta = 92% of the
//    nominal peak bandwidth (how most simulators of §2 are instantiated);
//  * best-fit affine — (alpha, beta) minimizing the mean logarithmic error;
//  * piece-wise linear — K segments, boundaries chosen to maximize the
//    product of per-segment correlation coefficients, each segment fitted by
//    linear regression. K = 3 gives the paper's 8-parameter model.
#pragma once

#include <cstdint>
#include <vector>

#include "calib/pingpong.hpp"
#include "surf/piecewise.hpp"
#include "util/stats.hpp"

namespace smpi::calib {

struct AffineModel {
  double latency_s = 0;
  double bandwidth_bps = 0;
  double predict(double bytes) const { return latency_s + bytes / bandwidth_bps; }
};

struct PiecewiseLinearModel {
  struct Segment {
    double max_bytes = 0;  // upper boundary (exclusive); last is +inf
    double latency_s = 0;  // alpha_k
    double bandwidth_bps = 0;  // beta_k
  };
  std::vector<Segment> segments;
  double predict(double bytes) const;
  // 2 boundaries + 3 x (alpha, beta) = 8 parameters for K = 3 (§4.1).
  int parameter_count() const { return static_cast<int>(segments.size()) * 2 +
                                       static_cast<int>(segments.size()) - 1; }
};

AffineModel fit_default_affine(const std::vector<PingPongPoint>& points,
                               double nominal_bandwidth_bps,
                               double efficiency = 0.92);

// Minimizes mean log error by coordinate descent on (log alpha, log beta),
// seeded from an ordinary least-squares fit.
AffineModel fit_best_affine(const std::vector<PingPongPoint>& points);

// Segmented regression; boundaries are searched exhaustively over the
// measured sizes (each segment keeps >= min_points_per_segment points).
PiecewiseLinearModel fit_piecewise(const std::vector<PingPongPoint>& points, int segments = 3,
                                   int min_points_per_segment = 3);

// Mean/max logarithmic error of `model` against the measurements.
template <typename Model>
util::ErrorSummary evaluate_model(const Model& model, const std::vector<PingPongPoint>& points) {
  util::ErrorAccumulator acc;
  for (const auto& p : points) {
    acc.add(model.predict(static_cast<double>(p.bytes)), p.one_way_seconds);
  }
  return acc.summary();
}

// Convert a fitted curve into correction factors relative to a physical
// route (base latency L0 seconds, bottleneck bandwidth B0 bytes/s), making
// the calibration portable across clusters (§6, Figures 4-5).
surf::PiecewiseFactors to_factors(const PiecewiseLinearModel& model, double base_latency_s,
                                  double base_bandwidth_bps);
surf::PiecewiseFactors to_factors(const AffineModel& model, double base_latency_s,
                                  double base_bandwidth_bps);

}  // namespace smpi::calib
