// SKaMPI-style ping-pong measurement (§6): run the classic two-rank
// round-trip benchmark over the full MPI stack for a sweep of message sizes
// and report one-way times. Pointing it at the packet-level backend with a
// ground-truth personality produces the "real-world measurements" the
// piece-wise model is calibrated against; pointing it at the flow backend
// evaluates a candidate model on the very same program.
#pragma once

#include <cstdint>
#include <vector>

#include "platform/platform.hpp"
#include "smpi/smpi.hpp"

namespace smpi::calib {

struct PingPongPoint {
  std::uint64_t bytes = 0;
  double one_way_seconds = 0;
};

struct PingPongOptions {
  int node_a = 0;
  int node_b = 1;
  int repetitions = 3;   // per size; the minimum is kept (SKaMPI-style)
  int warmup = 1;        // unmeasured round-trips per size
  std::vector<std::uint64_t> sizes;  // empty: default sweep

  // 1 B .. max, `per_octave` log-spaced points per factor of two.
  static std::vector<std::uint64_t> default_sizes(std::uint64_t max_bytes = 16u << 20,
                                                  int per_octave = 2);
};

// Runs the benchmark in its own simulation world.
std::vector<PingPongPoint> run_pingpong(const platform::Platform& platform,
                                        const core::SmpiConfig& config,
                                        const PingPongOptions& options = {});

}  // namespace smpi::calib
