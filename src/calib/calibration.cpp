#include "calib/calibration.hpp"

#include "util/check.hpp"

namespace smpi::calib {

core::SmpiConfig ground_truth_config() {
  core::SmpiConfig config;
  config.backend = core::SmpiConfig::Backend::kPacket;
  config.personality = core::Personality::openmpi();
  return config;
}

core::SmpiConfig ground_truth_config_mpich2() {
  core::SmpiConfig config;
  config.backend = core::SmpiConfig::Backend::kPacket;
  config.personality = core::Personality::mpich2();
  // Implementations also tune their sockets differently, which shows up as
  // slightly different achieved wire efficiency at large message sizes —
  // modeled as extra per-frame overhead (~5% lower goodput). This is what
  // separates the two ground-truth curves in Figure 7 the way the paper's
  // real OpenMPI/MPICH2 runs differ by ~5%.
  config.packet.header_bytes = 126;
  config.packet.receive_overhead_s = 8e-7;
  return config;
}

core::SmpiConfig calibrated_smpi_config(const surf::PiecewiseFactors& factors) {
  core::SmpiConfig config;
  config.backend = core::SmpiConfig::Backend::kFlow;
  config.personality = core::Personality::smpi();
  config.network.factors = factors;
  config.network.bandwidth_efficiency = 1.0;
  return config;
}

core::SmpiConfig no_contention_smpi_config(const surf::PiecewiseFactors& factors) {
  core::SmpiConfig config = calibrated_smpi_config(factors);
  config.network.contention = false;
  return config;
}

CalibrationResult calibrate(const platform::Platform& platform, int node_a, int node_b,
                            const core::SmpiConfig& ground_truth,
                            const PingPongOptions& options) {
  PingPongOptions opts = options;
  opts.node_a = node_a;
  opts.node_b = node_b;
  CalibrationResult result;
  result.measurements = run_pingpong(platform, ground_truth, opts);
  SMPI_ENSURE(!result.measurements.empty(), "calibration produced no measurements");
  result.base_latency_s = platform.route_latency(node_a, node_b);
  result.base_bandwidth_bps = platform.route_min_bandwidth(node_a, node_b);
  result.default_affine =
      fit_default_affine(result.measurements, result.base_bandwidth_bps);
  result.best_affine = fit_best_affine(result.measurements);
  result.piecewise = fit_piecewise(result.measurements);
  return result;
}

std::vector<PingPongPoint> simulate_pingpong(const platform::Platform& platform, int node_a,
                                             int node_b, const surf::PiecewiseFactors& factors,
                                             const PingPongOptions& options) {
  PingPongOptions opts = options;
  opts.node_a = node_a;
  opts.node_b = node_b;
  return run_pingpong(platform, calibrated_smpi_config(factors), opts);
}

}  // namespace smpi::calib
