#include "calib/fit.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace smpi::calib {

double PiecewiseLinearModel::predict(double bytes) const {
  SMPI_REQUIRE(!segments.empty(), "empty piece-wise model");
  for (const auto& seg : segments) {
    if (bytes < seg.max_bytes) return seg.latency_s + bytes / seg.bandwidth_bps;
  }
  const auto& last = segments.back();
  return last.latency_s + bytes / last.bandwidth_bps;
}

namespace {

double mean_log_error(const std::vector<PingPongPoint>& points, double latency,
                      double bandwidth) {
  util::ErrorAccumulator acc;
  for (const auto& p : points) {
    const double predicted = latency + static_cast<double>(p.bytes) / bandwidth;
    if (predicted <= 0) return std::numeric_limits<double>::infinity();
    acc.add(predicted, p.one_way_seconds);
  }
  return acc.summary().mean_log_error;
}

// Regression of time on bytes over point indices [first, last); converts the
// (intercept, slope) into (latency, bandwidth) with sanity clamping —
// near-flat segments (latency-dominated small messages) produce slopes ~0 or
// even negative, which would be a nonsensical bandwidth.
PiecewiseLinearModel::Segment segment_from_regression(const std::vector<PingPongPoint>& points,
                                                      std::size_t first, std::size_t last) {
  std::vector<double> x, y;
  x.reserve(last - first);
  y.reserve(last - first);
  for (std::size_t i = first; i < last; ++i) {
    x.push_back(static_cast<double>(points[i].bytes));
    y.push_back(points[i].one_way_seconds);
  }
  const auto fit = util::linear_regression(x, y);
  PiecewiseLinearModel::Segment seg;
  const double min_latency = 1e-9;
  const double max_bandwidth = 1e15;  // effectively "latency only"
  seg.latency_s = std::max(fit.intercept, min_latency);
  seg.bandwidth_bps = fit.slope > 1.0 / max_bandwidth ? 1.0 / fit.slope : max_bandwidth;
  return seg;
}

double segment_quality(const std::vector<PingPongPoint>& points, std::size_t first,
                       std::size_t last) {
  std::vector<double> x, y;
  for (std::size_t i = first; i < last; ++i) {
    x.push_back(static_cast<double>(points[i].bytes));
    y.push_back(points[i].one_way_seconds);
  }
  const double r = util::correlation(x, y);
  // A flat segment (zero variance in y explained) still fits perfectly when
  // times are constant; correlation() returns 1 for degenerate y. Use |r|:
  // the product-of-correlations criterion of §4.1.
  return std::fabs(r);
}

}  // namespace

AffineModel fit_default_affine(const std::vector<PingPongPoint>& points,
                               double nominal_bandwidth_bps, double efficiency) {
  SMPI_REQUIRE(!points.empty(), "no measurements");
  // Latency: the time of the smallest measured message (a 1-byte send).
  const auto smallest =
      std::min_element(points.begin(), points.end(),
                       [](const auto& a, const auto& b) { return a.bytes < b.bytes; });
  AffineModel model;
  model.latency_s = smallest->one_way_seconds;
  model.bandwidth_bps = nominal_bandwidth_bps * efficiency;
  return model;
}

AffineModel fit_best_affine(const std::vector<PingPongPoint>& points) {
  SMPI_REQUIRE(points.size() >= 2, "need at least two measurements");
  // Seed from OLS (guarantees a sane starting basin).
  const auto seed = segment_from_regression(points, 0, points.size());
  double latency = seed.latency_s;
  double bandwidth = seed.bandwidth_bps;
  double best = mean_log_error(points, latency, bandwidth);

  // Coordinate descent in log space with shrinking multiplicative steps.
  double step = 2.0;
  while (step > 1.0005) {
    bool improved = false;
    for (const double factor : {step, 1.0 / step}) {
      if (const double err = mean_log_error(points, latency * factor, bandwidth); err < best) {
        best = err;
        latency *= factor;
        improved = true;
      }
      if (const double err = mean_log_error(points, latency, bandwidth * factor); err < best) {
        best = err;
        bandwidth *= factor;
        improved = true;
      }
    }
    if (!improved) step = std::sqrt(step);
  }
  return {latency, bandwidth};
}

PiecewiseLinearModel fit_piecewise(const std::vector<PingPongPoint>& points, int segments,
                                   int min_points_per_segment) {
  SMPI_REQUIRE(segments >= 1 && segments <= 4, "1 to 4 segments supported");
  SMPI_REQUIRE(min_points_per_segment >= 2, "segments need at least 2 points");
  std::vector<PingPongPoint> sorted = points;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.bytes < b.bytes; });
  const std::size_t n = sorted.size();
  const auto need = static_cast<std::size_t>(segments * min_points_per_segment);
  SMPI_REQUIRE(n >= need, "not enough measurements for the requested segment count");

  const auto k = static_cast<std::size_t>(segments);
  const auto min_pts = static_cast<std::size_t>(min_points_per_segment);

  // Exhaustive search over segment boundaries (indices into `sorted`),
  // maximizing the product of per-segment |correlation| (§4.1). K <= 4 and
  // n ~ 50 keeps this instantaneous.
  std::vector<std::size_t> cuts(k - 1), best_cuts;
  double best_quality = -1;
  auto recurse = [&](auto&& self, std::size_t segment_index, std::size_t start,
                     double quality_so_far) -> void {
    if (segment_index == k - 1) {
      if (n - start < min_pts) return;
      const double quality = quality_so_far * segment_quality(sorted, start, n);
      if (quality > best_quality) {
        best_quality = quality;
        best_cuts = cuts;
      }
      return;
    }
    for (std::size_t cut = start + min_pts; cut + (k - 1 - segment_index) * min_pts <= n;
         ++cut) {
      cuts[segment_index] = cut;
      self(self, segment_index + 1, cut,
           quality_so_far * segment_quality(sorted, start, cut));
    }
  };
  recurse(recurse, 0, 0, 1.0);
  SMPI_ENSURE(best_quality >= 0, "piece-wise boundary search found no valid split");

  PiecewiseLinearModel model;
  std::size_t start = 0;
  for (std::size_t s = 0; s < k; ++s) {
    const std::size_t end = (s + 1 < k) ? best_cuts[s] : n;
    auto seg = segment_from_regression(sorted, start, end);
    // Boundary: geometric mean between the last point of this segment and
    // the first of the next (in bytes).
    if (s + 1 < k) {
      const double lo = static_cast<double>(sorted[end - 1].bytes);
      const double hi = static_cast<double>(sorted[end].bytes);
      seg.max_bytes = std::sqrt(lo * hi);
    } else {
      seg.max_bytes = std::numeric_limits<double>::infinity();
    }
    model.segments.push_back(seg);
    start = end;
  }
  return model;
}

surf::PiecewiseFactors to_factors(const PiecewiseLinearModel& model, double base_latency_s,
                                  double base_bandwidth_bps) {
  SMPI_REQUIRE(base_latency_s > 0 && base_bandwidth_bps > 0, "bad base route parameters");
  std::vector<surf::PiecewiseSegment> segments;
  for (const auto& seg : model.segments) {
    surf::PiecewiseSegment factor;
    factor.max_bytes = seg.max_bytes;
    factor.lat_factor = std::max(seg.latency_s / base_latency_s, 1e-6);
    factor.bw_factor = std::max(seg.bandwidth_bps / base_bandwidth_bps, 1e-6);
    segments.push_back(factor);
  }
  return surf::PiecewiseFactors(std::move(segments));
}

surf::PiecewiseFactors to_factors(const AffineModel& model, double base_latency_s,
                                  double base_bandwidth_bps) {
  PiecewiseLinearModel single;
  single.segments.push_back({std::numeric_limits<double>::infinity(), model.latency_s,
                             model.bandwidth_bps});
  return to_factors(single, base_latency_s, base_bandwidth_bps);
}

}  // namespace smpi::calib
