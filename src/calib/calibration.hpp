// End-to-end calibration pipeline (§6): measure a SKaMPI-style ping-pong on
// the ground-truth testbed (packet-level backend + a real-implementation
// personality), fit the three candidate models of Figure 3, and package the
// piece-wise fit as portable correction factors usable on any platform.
#pragma once

#include "calib/fit.hpp"
#include "calib/pingpong.hpp"

namespace smpi::calib {

struct CalibrationResult {
  std::vector<PingPongPoint> measurements;  // the "SKaMPI" curve
  AffineModel default_affine;
  AffineModel best_affine;
  PiecewiseLinearModel piecewise;
  // Physical parameters of the calibration route (factor denominators).
  double base_latency_s = 0;
  double base_bandwidth_bps = 0;

  surf::PiecewiseFactors piecewise_factors() const {
    return to_factors(piecewise, base_latency_s, base_bandwidth_bps);
  }
  surf::PiecewiseFactors default_affine_factors() const {
    return to_factors(default_affine, base_latency_s, base_bandwidth_bps);
  }
  surf::PiecewiseFactors best_affine_factors() const {
    return to_factors(best_affine, base_latency_s, base_bandwidth_bps);
  }
};

// Ground-truth configuration used throughout the evaluation: packet-level
// network + OpenMPI personality (the paper's reference implementation).
core::SmpiConfig ground_truth_config();
// Same, with the MPICH2 personality.
core::SmpiConfig ground_truth_config_mpich2();

// An SMPI configuration using the given calibrated factors on the flow
// model. bandwidth_efficiency is 1.0: single-flow rates follow the
// calibration exactly; sharing splits the nominal capacity.
core::SmpiConfig calibrated_smpi_config(const surf::PiecewiseFactors& factors);
// The naive no-contention variant (Figures 7/11 white bars).
core::SmpiConfig no_contention_smpi_config(const surf::PiecewiseFactors& factors);

// Measure between (node_a, node_b) of `platform` under `ground_truth` and
// fit all three models.
CalibrationResult calibrate(const platform::Platform& platform, int node_a, int node_b,
                            const core::SmpiConfig& ground_truth,
                            const PingPongOptions& options = {});

// Re-run the same ping-pong under an SMPI flow model built from `factors` —
// the "simulate the benchmark" side of Figures 3-5.
std::vector<PingPongPoint> simulate_pingpong(const platform::Platform& platform, int node_a,
                                             int node_b, const surf::PiecewiseFactors& factors,
                                             const PingPongOptions& options = {});

}  // namespace smpi::calib
