#include "calib/pingpong.hpp"

#include <algorithm>
#include <cmath>

#include "smpi/mpi.h"
#include "util/check.hpp"

namespace smpi::calib {

std::vector<std::uint64_t> PingPongOptions::default_sizes(std::uint64_t max_bytes,
                                                          int per_octave) {
  SMPI_REQUIRE(per_octave >= 1, "need at least one size per octave");
  std::vector<std::uint64_t> sizes{1};
  const double step = std::pow(2.0, 1.0 / per_octave);
  double current = 1;
  while (true) {
    current *= step;
    const auto rounded = static_cast<std::uint64_t>(std::llround(current));
    if (rounded > max_bytes) break;
    if (rounded != sizes.back()) sizes.push_back(rounded);
  }
  if (sizes.back() != max_bytes) sizes.push_back(max_bytes);
  return sizes;
}

namespace {

// Results are smuggled out of the simulated ranks through this slot; the
// simulation is strictly sequential, so a plain global is safe.
std::vector<PingPongPoint>* g_results = nullptr;
const PingPongOptions* g_options = nullptr;

void pingpong_main(int /*argc*/, char** /*argv*/) {
  MPI_Init(nullptr, nullptr);
  int rank = -1;
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  const auto& options = *g_options;
  const auto sizes = options.sizes.empty() ? PingPongOptions::default_sizes() : options.sizes;

  std::vector<char> buffer(static_cast<std::size_t>(
      *std::max_element(sizes.begin(), sizes.end())));
  for (const std::uint64_t size : sizes) {
    const int count = static_cast<int>(size);
    double best = -1;
    // No barrier inside the timed loop: a dissemination barrier releases the
    // ranks at skewed dates (the early-arriving rank exits later), which
    // would taint the first repetition. The ping-pong itself keeps the two
    // ranks in lockstep, as in SKaMPI.
    for (int rep = 0; rep < options.warmup + options.repetitions; ++rep) {
      const double start = MPI_Wtime();
      if (rank == 0) {
        MPI_Send(buffer.data(), count, MPI_CHAR, 1, 0, MPI_COMM_WORLD);
        MPI_Recv(buffer.data(), count, MPI_CHAR, 1, 1, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      } else {
        MPI_Recv(buffer.data(), count, MPI_CHAR, 0, 0, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
        MPI_Send(buffer.data(), count, MPI_CHAR, 0, 1, MPI_COMM_WORLD);
      }
      const double round_trip = MPI_Wtime() - start;
      if (rank == 0 && rep >= options.warmup) {
        const double one_way = round_trip / 2.0;
        best = best < 0 ? one_way : std::min(best, one_way);
      }
    }
    if (rank == 0) g_results->push_back({size, best});
  }
  MPI_Finalize();
}

}  // namespace

std::vector<PingPongPoint> run_pingpong(const platform::Platform& platform,
                                        const core::SmpiConfig& config,
                                        const PingPongOptions& options) {
  SMPI_REQUIRE(options.node_a != options.node_b, "ping-pong needs two distinct nodes");
  core::SmpiConfig run_config = config;
  run_config.placement = {options.node_a, options.node_b};

  std::vector<PingPongPoint> results;
  g_results = &results;
  g_options = &options;
  {
    core::SmpiWorld world(platform, run_config);
    world.run(2, pingpong_main, {}, "pingpong");
  }
  g_results = nullptr;
  g_options = nullptr;
  return results;
}

}  // namespace smpi::calib
