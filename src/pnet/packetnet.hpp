// Packet-level discrete-event network simulator.
//
// This is the repository's stand-in for the paper's real testbed (Grid'5000
// + TCP over switched Ethernet): where the paper measures SKaMPI/OpenMPI/
// MPICH2 on real clusters, we run the same MPI programs against this model
// and treat its results as ground truth. It deliberately simulates the
// phenomena the flow model abstracts away, the same role the GTNetS
// packet simulator plays in the SimGrid validation papers [25,26]:
//
//   * MTU framing — every frame carries `header_bytes` of protocol overhead,
//     so small messages see per-frame quantization and large ones an
//     effective goodput below nominal bandwidth;
//   * store-and-forward switches — each hop fully serializes a frame before
//     forwarding, so multi-switch routes add per-frame latency;
//   * FIFO output queues — concurrent flows interleave frame by frame;
//     contention appears as queueing delay, not as an analytical share;
//   * ack-clocked sliding windows with optional slow start — transfers are
//     window-limited on long paths.
//
// Packet-level simulation is orders of magnitude slower than the flow model
// (one event per frame per hop); Figure 17's speed comparison relies on
// exactly this gap.
#pragma once

#include <cstdint>
#include <queue>
#include <unordered_map>
#include <vector>

#include "platform/platform.hpp"
#include "sim/model.hpp"

namespace smpi::pnet {

struct PacketNetConfig {
  double mtu_bytes = 1500;    // frame size on the wire
  double header_bytes = 54;   // Ethernet + IP + TCP overhead per frame
  double ack_bytes = 66;      // ACK frame size
  // Warm-connection TCP: MPI keeps connections open, so transfers start at a
  // healthy window; the cap bounds how much a sender can queue ahead, which
  // sets the granularity at which concurrent flows interleave.
  double initial_window_bytes = 64 * 1024;
  double max_window_bytes = 256.0 * 1024;
  bool slow_start = true;          // cwnd += mss per ACK until max
  double receive_overhead_s = 5e-7;  // host processing before acking a frame

  double mss() const { return mtu_bytes - header_bytes; }
};

class PacketNetworkModel final : public sim::Model, public sim::NetworkBackend {
 public:
  PacketNetworkModel(const platform::Platform& platform, PacketNetConfig config = {});

  // sim::NetworkBackend
  sim::ActivityPtr start_flow(int src_node, int dst_node, double bytes,
                              const sim::FlowHints& hints) override;
  const char* backend_name() const override { return "pnet-packet"; }

  // sim::Model — fires when the earliest internal frame event comes due.
  void on_calendar_event(double now, std::uint64_t tag) override;

  std::uint64_t total_frames_sent() const { return total_frames_; }
  std::uint64_t total_events_processed() const { return total_events_; }
  std::size_t active_flow_count() const { return flows_.size(); }

 private:
  struct Packet {
    int flow_id = -1;
    double payload = 0;
    bool ack = false;
    std::size_t hop = 0;  // index into the packet's route
  };

  struct Event {
    double date;
    std::uint64_t seq;
    Packet packet;
    bool operator>(const Event& other) const {
      return date != other.date ? date > other.date : seq > other.seq;
    }
  };

  struct Flow {
    int id = -1;
    sim::ActivityPtr activity;
    std::vector<int> forward_links;
    std::vector<int> reverse_links;
    double total = 0;
    double sent = 0;       // payload bytes injected
    double delivered = 0;  // payload bytes that reached the destination
    double acked = 0;      // payload bytes acknowledged back at the source
    double in_flight = 0;
    double cwnd = 0;
  };

  void schedule(double date, Packet packet);
  // Keeps exactly one engine-calendar entry mirroring the earliest internal
  // event, so the engine never polls this model.
  void sync_calendar();
  void process(const Event& event);
  void deliver_data(Flow& flow, const Packet& packet, double date);
  void deliver_ack(Flow& flow, const Packet& packet, double date);
  void try_inject(Flow& flow, double date);
  void hop_forward(const Packet& packet, double date);
  double frame_bytes(const Packet& packet) const;

  const platform::Platform& platform_;
  PacketNetConfig config_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  std::uint64_t event_seq_ = 0;
  sim::EventCalendar::Handle calendar_entry_ = sim::EventCalendar::kNoEvent;
  double calendar_date_ = -1;
  std::unordered_map<int, Flow> flows_;
  int next_flow_id_ = 0;
  std::vector<double> link_busy_until_;
  std::uint64_t total_frames_ = 0;
  std::uint64_t total_events_ = 0;
};

}  // namespace smpi::pnet
