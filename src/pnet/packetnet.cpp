#include "pnet/packetnet.hpp"

#include <algorithm>
#include <cmath>

#include "sim/engine.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace smpi::pnet {

SMPI_LOG_CATEGORY(log_pnet, "pnet");

namespace {
constexpr double kPayloadEps = 1e-6;
}  // namespace

PacketNetworkModel::PacketNetworkModel(const platform::Platform& platform,
                                       PacketNetConfig config)
    : platform_(platform), config_(config) {
  SMPI_REQUIRE(config_.mtu_bytes > config_.header_bytes, "MTU must exceed header size");
  SMPI_REQUIRE(config_.initial_window_bytes > 0, "initial window must be positive");
  SMPI_REQUIRE(config_.max_window_bytes >= config_.initial_window_bytes,
               "max window below initial window");
  link_busy_until_.assign(static_cast<std::size_t>(platform_.link_count()), 0.0);
}

double PacketNetworkModel::frame_bytes(const Packet& packet) const {
  return packet.ack ? config_.ack_bytes : packet.payload + config_.header_bytes;
}

sim::ActivityPtr PacketNetworkModel::start_flow(int src_node, int dst_node, double bytes,
                                                const sim::FlowHints& /*hints*/) {
  SMPI_REQUIRE(bytes >= 0, "negative flow size");
  auto* engine = sim::Engine::current();
  SMPI_REQUIRE(engine != nullptr, "start_flow outside a simulation");

  auto activity = sim::new_activity("pnet-flow");
  if (src_node == dst_node) {
    activity->finish(sim::Activity::State::kDone);
    return activity;
  }

  Flow flow;
  flow.id = next_flow_id_++;
  flow.activity = activity;
  flow.forward_links = platform_.route(src_node, dst_node);
  flow.reverse_links = platform_.route(dst_node, src_node);
  flow.total = bytes;
  flow.cwnd = config_.slow_start ? config_.initial_window_bytes : config_.max_window_bytes;
  const int id = flow.id;
  flows_.emplace(id, std::move(flow));
  try_inject(flows_.at(id), engine->now());
  sync_calendar();
  return activity;
}

void PacketNetworkModel::try_inject(Flow& flow, double date) {
  const double mss = config_.mss();
  bool injected_any = false;
  while (flow.in_flight < flow.cwnd - kPayloadEps || flow.sent == 0) {
    if (flow.sent >= flow.total && flow.sent > 0) break;
    const double payload = std::min(mss, std::max(0.0, flow.total - flow.sent));
    Packet packet;
    packet.flow_id = flow.id;
    packet.payload = payload;
    packet.ack = false;
    packet.hop = 0;
    flow.sent += payload;
    flow.in_flight += payload;
    ++total_frames_;
    schedule(date, packet);
    injected_any = true;
    if (payload <= 0) break;  // zero-byte message: exactly one frame
    if (flow.sent >= flow.total) break;
  }
  (void)injected_any;
}

void PacketNetworkModel::schedule(double date, Packet packet) {
  events_.push(Event{date, event_seq_++, packet});
}

void PacketNetworkModel::sync_calendar() {
  const double top = events_.empty() ? sim::kNever : events_.top().date;
  if (top == calendar_date_ && calendar_entry_ != sim::EventCalendar::kNoEvent) return;
  calendar().cancel(calendar_entry_);
  calendar_entry_ = sim::EventCalendar::kNoEvent;
  calendar_date_ = -1;
  if (std::isfinite(top)) {
    calendar_entry_ = calendar().schedule(top, this, 0);
    calendar_date_ = top;
  }
}

void PacketNetworkModel::on_calendar_event(double now, std::uint64_t /*tag*/) {
  calendar_entry_ = sim::EventCalendar::kNoEvent;
  calendar_date_ = -1;
  // Drain every internal frame event due by `now`; processing usually
  // schedules follow-up events (next hop, acks, window refills).
  while (!events_.empty() && events_.top().date <= now) {
    const Event event = events_.top();
    events_.pop();
    ++total_events_;
    process(event);
  }
  sync_calendar();
}

void PacketNetworkModel::process(const Event& event) {
  auto it = flows_.find(event.packet.flow_id);
  if (it == flows_.end()) return;  // flow fully retired; stale ack in flight
  Flow& flow = it->second;
  const auto& route = event.packet.ack ? flow.reverse_links : flow.forward_links;
  if (event.packet.hop < route.size()) {
    hop_forward(event.packet, event.date);
    return;
  }
  if (event.packet.ack) {
    deliver_ack(flow, event.packet, event.date);
  } else {
    deliver_data(flow, event.packet, event.date);
  }
}

void PacketNetworkModel::hop_forward(const Packet& packet, double date) {
  auto& flow = flows_.at(packet.flow_id);
  const auto& route = packet.ack ? flow.reverse_links : flow.forward_links;
  const int link_id = route[packet.hop];
  const auto& link = platform_.link(link_id);
  auto& busy_until = link_busy_until_[static_cast<std::size_t>(link_id)];
  const double start = std::max(date, busy_until);
  const double serialization = frame_bytes(packet) / link.bandwidth_bps;
  busy_until = start + serialization;
  const double arrival = busy_until + link.latency_s;
  Packet next = packet;
  next.hop = packet.hop + 1;
  schedule(arrival, next);
}

void PacketNetworkModel::deliver_data(Flow& flow, const Packet& packet, double date) {
  flow.delivered += packet.payload;
  const bool complete = flow.delivered >= flow.total - kPayloadEps;
  if (complete && !flow.activity->completed()) {
    flow.activity->finish(sim::Activity::State::kDone);
  }
  // Ack after host processing; acks keep flowing so the sender window drains.
  Packet ack;
  ack.flow_id = flow.id;
  ack.payload = packet.payload;
  ack.ack = true;
  ack.hop = 0;
  ++total_frames_;
  schedule(date + config_.receive_overhead_s, ack);
}

void PacketNetworkModel::deliver_ack(Flow& flow, const Packet& packet, double date) {
  flow.acked += packet.payload;
  flow.in_flight = std::max(0.0, flow.in_flight - packet.payload);
  if (config_.slow_start) {
    flow.cwnd = std::min(flow.cwnd + config_.mss(), config_.max_window_bytes);
  }
  if (flow.acked >= flow.total - kPayloadEps && flow.sent >= flow.total) {
    // Everything delivered and acknowledged: retire the flow.
    SMPI_ENSURE(flow.activity->completed(), "flow acked before delivery completed");
    flows_.erase(flow.id);
    return;
  }
  try_inject(flow, date);
}

}  // namespace smpi::pnet
