// Campaign aggregation: turn scenario result capsules into reports.
//
// Every speedup is relative to scenario 0 (the implicit unmodified-platform
// baseline): speedup > 1 means the what-if finished the application faster
// than the captured platform would have. The JSON report carries the full
// per-rank breakdowns; the CSV flattens one row per run for
// spreadsheet/pandas use; the text summary ranks the best and worst
// scenarios for a terminal reader.
//
// Replicated (Monte-Carlo) campaigns fold each scenario's N noise-seeded
// runs into per-scenario statistics: the JSON row gains a "replications"
// array (one full per-rep result each, speedups paired against the same-rep
// baseline) and a "stats" object (mean/stddev/min/max/p5/p50/p95 and a
// seeded bootstrap CI of the mean over simulated time), the document gains
// "replications", "noise_seed", and a "rank_stability" verdict — how often
// the fastest-by-mean scenario also wins within a single replication.
// Ranking is by mean and only covers scenarios whose every replication
// succeeded. The CSV stays one row per run, with a "rep" column.
#pragma once

#include <string>
#include <vector>

#include "campaign/runner.hpp"
#include "campaign/spec.hpp"
#include "util/json.hpp"

namespace smpi::campaign {

// Full report document (serialize with .dump(2) for files).
util::JsonValue report_json(const CampaignSpec& spec, const std::vector<Scenario>& scenarios,
                            const CampaignOutcome& outcome);

// One header line + one row per run (RFC-4180-ish; labels quoted).
std::string report_csv(const CampaignSpec& spec, const std::vector<Scenario>& scenarios,
                       const CampaignOutcome& outcome);

// Human-readable ranking: baseline, the `top` best and `top` worst scenarios
// by simulated time, failures last.
std::string report_summary(const CampaignSpec& spec, const std::vector<Scenario>& scenarios,
                           const CampaignOutcome& outcome, int top = 3);

// Inverse of report_json for resuming a sweep: extracts the per-run results
// of a prior report, indexed by unit = scenario_id * replications + rep, for
// RunOptions::resume. The report must belong to the same sweep — campaign
// name, scenario count, replication count and noise seed, trace source
// (trace dir, or workload name/ranks/seed/phase count), base platform, and
// per-row labels are all checked (a stale report silently reused would
// stitch results from two different configurations into one file). Failed
// or missing runs come back with ok == false so exactly they re-run.
std::vector<ScenarioResult> results_from_report(const util::JsonValue& report,
                                                const CampaignSpec& spec,
                                                const std::vector<Scenario>& scenarios);

}  // namespace smpi::campaign
