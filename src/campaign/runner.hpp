// Campaign execution: a fork-based scenario worker pool.
//
// The simulation engine and LMM solver are process-global (one SmpiWorld at
// a time, raw contexts, static instrumentation hooks), so the correct unit
// of parallelism for a sweep is the *process*, not the thread: each worker
// is a fork()ed child that constructs a fresh world per scenario and exits
// without ever sharing mutable simulator state. The trace is loaded once in
// the parent before forking, so workers read it through copy-on-write pages
// — a 64-rank trace is parsed exactly once no matter how many scenarios run.
//
// Protocol (all pipes, no shared memory):
//   parent -> worker : {int32 scenario id, int32 flags}; id -1 = shut down
//                      (flags carry the harness-test fault-injection hooks)
//   worker -> parent : uint32 capsule length + capsule bytes (JSON)
//
// Capsules are self-describing JSON so a dead worker can only lose its own
// in-flight scenario. The parent is hardened against misbehaving workers:
// a worker that dies mid-scenario is reaped (its exit cause recorded on the
// row) and the scenario is retried ONCE on a freshly forked worker after a
// short backoff; a scenario that outlives the wall-clock watchdog gets its
// worker SIGKILLed and is recorded as a timeout without retry (a retry
// would just burn another timeout). The pool is refilled after every loss,
// so one bad scenario cannot drain the sweep's parallelism.
// Scenario results are deterministic by construction — a scenario's child
// process sees identical inputs whatever the worker count — which the
// campaign tests assert bit-for-bit.
//
// Monte-Carlo campaigns (spec.replications = R > 1) multiply the work list:
// the dispatch unit is one (scenario, replication) pair, encoded as
// unit = scenario_id * R + rep. Each replication materializes the scenario
// under its own noise sub-seed and runs as an ordinary unit — watchdog,
// retry-once, and crash isolation all apply per replication, and the
// determinism guarantee holds per unit. CampaignOutcome::results is indexed
// by unit (for R = 1 that is exactly the old scenario indexing).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/spec.hpp"
#include "trace/reader.hpp"

namespace smpi::campaign {

struct ScenarioResult {
  int id = -1;   // scenario id
  int rep = 0;   // replication index in [0, spec.replications)
  bool ok = false;
  std::string error;
  // Harness accounting (parent-side): how many extra dispatches this
  // scenario needed, whether the watchdog killed it, and how its worker
  // exited when it died ("killed by signal 9", "exited with status 33").
  int retries = 0;
  bool timed_out = false;
  std::string worker_exit;
  double simulated_time = 0;
  double wall_s = 0;       // worker-side wall clock for this scenario
  long long records = 0;
  int ranks = 0;
  std::uint64_t arena_bytes = 0;
  // Per-rank simulated-time breakdown (compute vs communication).
  std::vector<double> rank_compute_s;
  std::vector<double> rank_comm_s;
  // Solver work (network + cpu max-min systems).
  std::uint64_t solver_solves = 0;
  std::uint64_t solver_vars_touched = 0;
  std::uint64_t solver_cons_touched = 0;
  // p2p hot-path accounting (pool reuse, zero-copy eager activity).
  core::P2pCounters p2p;
  // Wait-state / critical-path analysis of this run (present when the
  // spec's "analysis" flag was on — the default).
  bool analyzed = false;
  double wait_fraction = 0;    // blocked-on-a-peer share of total MPI+compute time
  double critical_path_s = 0;  // == simulated_time up to fp tolerance
  double cp_compute_s = 0;     // critical path split: local work vs. wire time
  double cp_comm_s = 0;
  std::string dominant_wait;   // "late_sender" | "late_receiver" | "early_arrival" | "none"
  std::vector<double> rank_wait_s;      // per-rank blocked-on-peer time
  std::vector<double> rank_transfer_s;  // per-rank wire-busy time
  // Resource-utilization summary (present when the spec's "resources" flag
  // was on — the default): the link/host with the most saturated seconds
  // and the peak link utilization across the run.
  bool resources_analyzed = false;
  std::string top_bottleneck;        // empty = nothing ever saturated
  double bottleneck_saturated_s = 0;
  double max_link_utilization = 0;   // fraction of capacity, in [0, 1]

  double compute_total_s() const;
  double comm_total_s() const;
  double compute_max_s() const;
  double comm_max_s() const;
};

struct RunOptions {
  int workers = 1;
  // Print one line per finished scenario to stderr as results land.
  bool progress = false;
  // Per-scenario wall-clock watchdog in seconds; 0 = use the spec's
  // timeout_s (which defaults to none). An expired scenario's worker is
  // SIGKILLed and the row is recorded as a timeout.
  double timeout_s = 0;
  // Test hooks: fault injection for the harness itself. The worker that is
  // handed `crash_scenario` _exit()s instead of running it (once, or on
  // every attempt with crash_always); the worker handed `hang_scenario`
  // sleeps forever so the watchdog has something to kill. -1 = disabled.
  int crash_scenario = -1;
  bool crash_always = false;
  int hang_scenario = -1;
  // Resume support: results adopted from a prior report (indexed by unit =
  // scenario_id * replications + rep; shorter-than-units is fine). Entries
  // with ok == true are carried over verbatim and their units are never
  // dispatched; everything else re-runs. Build with results_from_report
  // (report.hpp).
  std::vector<ScenarioResult> resume;
};

struct CampaignOutcome {
  std::vector<ScenarioResult> results;  // indexed by unit = id * replications + rep
  double wall_s = 0;                    // parent-side wall clock for the sweep
  int workers = 0;
  int resumed = 0;       // units adopted from options.resume
  int replications = 1;  // spec.replications, echoed for consumers
};

// Runs every scenario of `scenarios` over `trace` with `options.workers`
// processes. When the campaign's trace source is a workload, `trace` is the
// baseline (unmodified) generation and scenarios carrying workload_*
// overrides regenerate their own variant inside the worker. Throws
// ContractError on protocol-level failures (e.g. every worker died);
// per-scenario simulation errors land in the result capsules.
CampaignOutcome run_campaign(const CampaignSpec& spec, const std::vector<Scenario>& scenarios,
                             const trace::TiTrace& trace, const RunOptions& options);

}  // namespace smpi::campaign
