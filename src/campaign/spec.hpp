// Campaign specifications: a declarative description of a what-if sweep.
//
// A campaign takes ONE trace source — a captured TI trace, or a synthetic
// workload spec compiled to the same records — and re-simulates it across
// the cross-product of parameter axes: platform knobs (link
// bandwidth/latency, host speed, topology size, rank placement), SMPI knobs
// (forced collective algorithms, eager threshold, payload-free mode), and,
// when the source is a workload, workload knobs (rank count, message size,
// compute imbalance, iteration count, seed). Scenario 0 is always the
// implicit baseline (no overrides): every report's speedups are relative to
// it, and it doubles as the capture-equivalence canary (replayed on the
// unmodified platform it must reproduce the online simulated time).
//
// Spec format (JSON):
//
//   {
//     "name": "bw-sweep",
//     "trace": "ti_dir",                     // optional, CLI can override
//     "workload": {...} | "workload.json",   // alternative trace source:
//     //   an inline workload spec (see src/workload/spec.hpp) or a path to
//     //   one; mutually exclusive with "trace"
//     "platform": {"kind": "flat", "nodes": 16},
//     // kind: flat | hierarchical-griffon | hierarchical-gdx | xml
//     //   flat: optional "nodes" (default = trace rank count)
//     //   xml:  "file": "platform.xml"
//     "axes": [
//       {"param": "link_bandwidth_scale", "values": [0.5, 1, 2]},
//       {"param": "host_speed", "host": "node-0", "values": [1e9, 4e9]},
//       {"param": "link_latency", "link": "l-backbone", "values": [5e-5]},
//       {"param": "coll_bcast", "values": ["binomial", "scatter_ring_allgather"]},
//       {"param": "placement", "values": ["round_robin", "block", "stride:2"]},
//       {"param": "payload_free", "values": [true, false]}
//     ]
//   }
//
// Parameters:
//   host_speed_scale      x all hosts' flop rate          (number > 0)
//   link_bandwidth_scale  x all links' bandwidth          (number > 0)
//   link_latency_scale    x all links' latency            (number >= 0)
//   host_speed            absolute flop rate, needs "host" (number > 0)
//   link_bandwidth        absolute bytes/s,   needs "link" (number > 0)
//   link_latency          absolute seconds,   needs "link" (number >= 0)
//   cpu_scale             SmpiConfig::cpu_scale            (number > 0)
//   topology_nodes        rebuild the flat base cluster with N nodes (int;
//                         flat base only; N < ranks oversubscribes hosts)
//   placement             rank->host mapping: round_robin | block | stride:<k>
//   coll_bcast            auto | binomial | scatter_ring_allgather
//   coll_alltoall         auto | bruck | basic | pairwise
//   coll_allreduce        auto | recursive_doubling | rabenseifner | reduce_bcast
//   coll_allgather        auto | recursive_doubling | ring
//   payload_free          true | false (replay with or without payload motion)
//   eager_threshold       Personality::eager_threshold in bytes (number >= 0;
//                         the eager/rendezvous protocol switch point)
//   overhead_send         Personality::overhead_send_s in seconds (number >= 0;
//                         per-message CPU cost charged to the sender)
//   overhead_recv         Personality::overhead_recv_s in seconds (number >= 0;
//                         per-message CPU cost charged to the receiver)
//   copy_cost             Personality::copy_cost_s_per_byte (number >= 0;
//                         per-byte staging-copy cost on eager sends)
//   workload_ranks        regenerate the workload at N ranks      (int > 0)
//   workload_bytes        every phase's message size, in bytes    (int >= 0)
//   workload_iterations   every phase's iteration count           (int >= 1)
//   workload_imbalance    every phase's compute.imbalance     (number in [0,1))
//   workload_seed         the workload RNG seed                   (int >= 0)
//   fault_seed            the fault generator's RNG seed          (int >= 0)
//   fault_time_scale      x all fault times (events and the random window)
//                         (number > 0)
//   fault_count_scale     x the random fault counts, rounded      (number >= 0)
//   noise_seed            the noise model's base RNG seed         (int >= 0)
//
// The fault_* parameters modify the campaign-level failure model declared by
// the spec's top-level "faults" key (an inline fault spec or a path to one;
// see src/sim/fault.hpp). fault_seed and fault_count_scale require that spec
// to carry a "random" block. A top-level "timeout_s" sets the per-scenario
// wall-clock watchdog the runner enforces (0 = none; the CLI can override).
// A top-level "analysis": false turns off the per-scenario wait-state /
// critical-path analysis (on by default; see src/obs/analysis.hpp).
//
// Monte-Carlo campaigns: a top-level "noise" key (an inline noise spec or a
// path to one; see src/noise/noise.hpp) perturbs every scenario's platform
// and per-message latency, and "replications": N re-runs each scenario N
// times under independent per-replication noise sub-seeds
// (noise::replication_seed). Each replication is its own work unit in the
// runner — watchdog, retry, and crash isolation apply per replication — and
// the report folds the N simulated times into per-scenario statistics
// (mean, stddev, p5/p50/p95, bootstrap CI) plus a campaign-level
// rank-stability verdict. The noise_seed axis rebases the noise spec's seed
// per scenario (requires a campaign-level "noise" spec); replications > 1
// likewise requires one — replicating a deterministic scenario would
// measure nothing.
//
// The workload_* parameters require the campaign's trace source to be a
// workload (they re-run the generator inside the worker with the overridden
// spec); using one against a captured trace is a hard error. Overriding a
// host/link that does not exist in the scenario's platform is likewise a
// hard error when the scenario is materialized — a silently ignored
// override would poison the whole sweep's conclusions.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "noise/noise.hpp"
#include "platform/platform.hpp"
#include "smpi/smpi.hpp"
#include "util/json.hpp"
#include "workload/spec.hpp"

namespace smpi::campaign {

struct Axis {
  std::string param;
  std::string target;  // host/link name for the absolute-override params
  std::vector<util::JsonValue> values;

  // "host_speed:node-0" for targeted params, else just the param name.
  std::string key() const { return target.empty() ? param : param + ":" + target; }
};

struct CampaignSpec {
  enum class BaseKind { kFlat, kGriffon, kGdx, kXmlFile };

  std::string name = "campaign";
  std::string trace_dir;  // may be empty (supplied by the CLI)
  // Workload trace source (mutually exclusive with trace_dir; the CLI can
  // supply it too). When set, the campaign generates its baseline trace and
  // workers regenerate per-scenario variants for workload_* overrides.
  bool has_workload = false;
  workload::WorkloadSpec workload;
  BaseKind base_kind = BaseKind::kFlat;
  int base_nodes = 0;  // flat base: 0 = use the trace's rank count
  std::string platform_file;
  // Campaign-level failure model applied to every scenario (fault_* axes
  // modify it per scenario); empty = no faults.
  sim::FaultSpec faults;
  // Campaign-level noise model (noise_seed axis rebases its seed); empty =
  // fully deterministic scenarios.
  noise::NoiseSpec noise;
  // Runs per scenario under independent noise sub-seeds; > 1 requires a
  // non-empty noise spec.
  int replications = 1;
  // Per-scenario wall-clock watchdog in seconds (0 = none).
  double timeout_s = 0;
  // Run the wait-state / critical-path analysis inside every replay (JSON
  // "analysis": false opts out). On by default: every report row then
  // carries its wait fraction and critical-path compute/comm split.
  bool analysis = true;
  // Collect per-resource utilization timelines inside every replay and
  // record the bottleneck summary (top saturated link/host, saturated
  // seconds, peak link utilization) on each row. JSON "resources": false
  // opts out; with it off the replay's solver keeps changed-tracking
  // disabled and its trajectory is bit-identical.
  bool resources = true;
  std::vector<Axis> axes;

  // True when any axis sweeps a workload_* parameter.
  bool sweeps_workload() const;

  static CampaignSpec parse(const util::JsonValue& doc);
  static CampaignSpec parse_file(const std::string& path);
};

// One concrete scenario: the chosen value per axis, in axis order. Scenario
// 0 is the implicit baseline with no parameters.
struct Scenario {
  int id = 0;
  std::vector<std::pair<std::string, util::JsonValue>> params;  // axis key -> value
  std::string label;  // "baseline" or "k1=v1 k2=v2"

  const util::JsonValue* find(const std::string& key) const;
};

// Baseline + full cross-product, row-major (the last axis varies fastest).
std::vector<Scenario> enumerate_scenarios(const CampaignSpec& spec);

// Platform + config for one scenario, ready to hand to replay_trace. Throws
// ContractError on unknown host/link targets or out-of-contract values.
struct ScenarioSetup {
  platform::Platform platform;
  core::SmpiConfig config;
  bool payload_free = true;
};
// `replication` selects the noise sub-seed (noise::replication_seed) the
// scenario's platform perturbation and message jitter draw from; it is
// ignored when the campaign has no noise spec.
ScenarioSetup materialize(const CampaignSpec& spec, const Scenario& scenario, int nranks,
                          int replication = 0);

// True when the scenario overrides any workload_* parameter (the runner
// must then regenerate the trace instead of replaying the shared baseline).
bool has_workload_override(const Scenario& scenario);

// The base workload spec with the scenario's workload_* overrides applied
// to every phase; re-validates grid/root/degree contracts against an
// overridden rank count. Throws ContractError on violations.
workload::WorkloadSpec apply_workload_overrides(const workload::WorkloadSpec& base,
                                                const Scenario& scenario);

}  // namespace smpi::campaign
