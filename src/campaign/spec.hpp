// Campaign specifications: a declarative description of a what-if sweep.
//
// A campaign takes ONE captured TI trace and re-simulates it across the
// cross-product of parameter axes — platform knobs (link bandwidth/latency,
// host speed, topology size, rank placement), SMPI knobs (forced collective
// algorithms, payload-free mode), each axis a list of values. Scenario 0 is
// always the implicit baseline (no overrides): every report's speedups are
// relative to it, and it doubles as the capture-equivalence canary (replayed
// on the unmodified platform it must reproduce the online simulated time).
//
// Spec format (JSON):
//
//   {
//     "name": "bw-sweep",
//     "trace": "ti_dir",                     // optional, CLI can override
//     "platform": {"kind": "flat", "nodes": 16},
//     // kind: flat | hierarchical-griffon | hierarchical-gdx | xml
//     //   flat: optional "nodes" (default = trace rank count)
//     //   xml:  "file": "platform.xml"
//     "axes": [
//       {"param": "link_bandwidth_scale", "values": [0.5, 1, 2]},
//       {"param": "host_speed", "host": "node-0", "values": [1e9, 4e9]},
//       {"param": "link_latency", "link": "l-backbone", "values": [5e-5]},
//       {"param": "coll_bcast", "values": ["binomial", "scatter_ring_allgather"]},
//       {"param": "placement", "values": ["round_robin", "block", "stride:2"]},
//       {"param": "payload_free", "values": [true, false]}
//     ]
//   }
//
// Parameters:
//   host_speed_scale      x all hosts' flop rate          (number > 0)
//   link_bandwidth_scale  x all links' bandwidth          (number > 0)
//   link_latency_scale    x all links' latency            (number >= 0)
//   host_speed            absolute flop rate, needs "host" (number > 0)
//   link_bandwidth        absolute bytes/s,   needs "link" (number > 0)
//   link_latency          absolute seconds,   needs "link" (number >= 0)
//   cpu_scale             SmpiConfig::cpu_scale            (number > 0)
//   topology_nodes        rebuild the flat base cluster with N nodes (int;
//                         flat base only; N < ranks oversubscribes hosts)
//   placement             rank->host mapping: round_robin | block | stride:<k>
//   coll_bcast            auto | binomial | scatter_ring_allgather
//   coll_alltoall         auto | bruck | basic | pairwise
//   coll_allreduce        auto | recursive_doubling | rabenseifner | reduce_bcast
//   coll_allgather        auto | recursive_doubling | ring
//   payload_free          true | false (replay with or without payload motion)
//
// Overriding a host/link that does not exist in the scenario's platform is a
// hard error when the scenario is materialized — a silently ignored override
// would poison the whole sweep's conclusions.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "platform/platform.hpp"
#include "smpi/smpi.hpp"
#include "util/json.hpp"

namespace smpi::campaign {

struct Axis {
  std::string param;
  std::string target;  // host/link name for the absolute-override params
  std::vector<util::JsonValue> values;

  // "host_speed:node-0" for targeted params, else just the param name.
  std::string key() const { return target.empty() ? param : param + ":" + target; }
};

struct CampaignSpec {
  enum class BaseKind { kFlat, kGriffon, kGdx, kXmlFile };

  std::string name = "campaign";
  std::string trace_dir;  // may be empty (supplied by the CLI)
  BaseKind base_kind = BaseKind::kFlat;
  int base_nodes = 0;  // flat base: 0 = use the trace's rank count
  std::string platform_file;
  std::vector<Axis> axes;

  static CampaignSpec parse(const util::JsonValue& doc);
  static CampaignSpec parse_file(const std::string& path);
};

// One concrete scenario: the chosen value per axis, in axis order. Scenario
// 0 is the implicit baseline with no parameters.
struct Scenario {
  int id = 0;
  std::vector<std::pair<std::string, util::JsonValue>> params;  // axis key -> value
  std::string label;  // "baseline" or "k1=v1 k2=v2"

  const util::JsonValue* find(const std::string& key) const;
};

// Baseline + full cross-product, row-major (the last axis varies fastest).
std::vector<Scenario> enumerate_scenarios(const CampaignSpec& spec);

// Platform + config for one scenario, ready to hand to replay_trace. Throws
// ContractError on unknown host/link targets or out-of-contract values.
struct ScenarioSetup {
  platform::Platform platform;
  core::SmpiConfig config;
  bool payload_free = true;
};
ScenarioSetup materialize(const CampaignSpec& spec, const Scenario& scenario, int nranks);

}  // namespace smpi::campaign
