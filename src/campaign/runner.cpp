#include "campaign/runner.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "obs/resource.hpp"
#include "trace/replay.hpp"
#include "util/check.hpp"
#include "util/json.hpp"
#include "workload/generate.hpp"

namespace smpi::campaign {

namespace {

double sum(const std::vector<double>& v) {
  double total = 0;
  for (double x : v) total += x;
  return total;
}

double max_of(const std::vector<double>& v) {
  double best = 0;
  for (double x : v) best = std::max(best, x);
  return best;
}

// --- capsule (de)serialization ---------------------------------------------

util::JsonValue doubles_json(const std::vector<double>& values) {
  util::JsonValue array = util::JsonValue::array();
  for (double v : values) array.append(util::JsonValue::number(v));
  return array;
}

std::vector<double> doubles_from(const util::JsonValue& array) {
  std::vector<double> out;
  out.reserve(array.items().size());
  for (const auto& v : array.items()) out.push_back(v.as_number());
  return out;
}

std::string encode_capsule(const ScenarioResult& r) {
  util::JsonValue capsule = util::JsonValue::object();
  capsule.set("id", util::JsonValue::number(r.id));
  capsule.set("rep", util::JsonValue::number(r.rep));
  capsule.set("ok", util::JsonValue::boolean(r.ok));
  if (!r.ok) {
    capsule.set("error", util::JsonValue::string(r.error));
    return capsule.dump();
  }
  capsule.set("simulated_time", util::JsonValue::number(r.simulated_time));
  capsule.set("wall_s", util::JsonValue::number(r.wall_s));
  capsule.set("records", util::JsonValue::number(static_cast<double>(r.records)));
  capsule.set("ranks", util::JsonValue::number(r.ranks));
  capsule.set("arena_bytes", util::JsonValue::number(static_cast<double>(r.arena_bytes)));
  capsule.set("rank_compute_s", doubles_json(r.rank_compute_s));
  capsule.set("rank_comm_s", doubles_json(r.rank_comm_s));
  capsule.set("solver_solves", util::JsonValue::number(static_cast<double>(r.solver_solves)));
  capsule.set("solver_vars_touched",
              util::JsonValue::number(static_cast<double>(r.solver_vars_touched)));
  capsule.set("solver_cons_touched",
              util::JsonValue::number(static_cast<double>(r.solver_cons_touched)));
  capsule.set("pool_hits", util::JsonValue::number(static_cast<double>(r.p2p.pool_hits)));
  capsule.set("pool_misses", util::JsonValue::number(static_cast<double>(r.p2p.pool_misses)));
  capsule.set("eager_snapshots",
              util::JsonValue::number(static_cast<double>(r.p2p.eager_snapshots)));
  capsule.set("eager_copy_elided",
              util::JsonValue::number(static_cast<double>(r.p2p.eager_copy_elided)));
  capsule.set("eager_flush_snapshots",
              util::JsonValue::number(static_cast<double>(r.p2p.eager_flush_snapshots)));
  capsule.set("bytes_not_copied",
              util::JsonValue::number(static_cast<double>(r.p2p.bytes_not_copied)));
  if (r.analyzed) {
    capsule.set("wait_fraction", util::JsonValue::number(r.wait_fraction));
    capsule.set("critical_path_s", util::JsonValue::number(r.critical_path_s));
    capsule.set("cp_compute_s", util::JsonValue::number(r.cp_compute_s));
    capsule.set("cp_comm_s", util::JsonValue::number(r.cp_comm_s));
    capsule.set("dominant_wait", util::JsonValue::string(r.dominant_wait));
    capsule.set("rank_wait_s", doubles_json(r.rank_wait_s));
    capsule.set("rank_transfer_s", doubles_json(r.rank_transfer_s));
  }
  if (r.resources_analyzed) {
    capsule.set("top_bottleneck", util::JsonValue::string(r.top_bottleneck));
    capsule.set("bottleneck_saturated_s",
                util::JsonValue::number(r.bottleneck_saturated_s));
    capsule.set("max_link_utilization",
                util::JsonValue::number(r.max_link_utilization));
  }
  return capsule.dump();
}

ScenarioResult decode_capsule(const std::string& text) {
  const util::JsonValue capsule = util::parse_json(text, "campaign capsule");
  ScenarioResult r;
  r.id = static_cast<int>(capsule.at("id", "capsule").as_int());
  r.rep = static_cast<int>(capsule.at("rep", "capsule").as_int());
  r.ok = capsule.at("ok", "capsule").as_bool();
  if (!r.ok) {
    r.error = capsule.at("error", "capsule").as_string();
    return r;
  }
  r.simulated_time = capsule.at("simulated_time", "capsule").as_number();
  r.wall_s = capsule.at("wall_s", "capsule").as_number();
  r.records = capsule.at("records", "capsule").as_int();
  r.ranks = static_cast<int>(capsule.at("ranks", "capsule").as_int());
  r.arena_bytes = static_cast<std::uint64_t>(capsule.at("arena_bytes", "capsule").as_int());
  r.rank_compute_s = doubles_from(capsule.at("rank_compute_s", "capsule"));
  r.rank_comm_s = doubles_from(capsule.at("rank_comm_s", "capsule"));
  r.solver_solves = static_cast<std::uint64_t>(capsule.at("solver_solves", "capsule").as_int());
  r.solver_vars_touched =
      static_cast<std::uint64_t>(capsule.at("solver_vars_touched", "capsule").as_int());
  r.solver_cons_touched =
      static_cast<std::uint64_t>(capsule.at("solver_cons_touched", "capsule").as_int());
  r.p2p.pool_hits = static_cast<std::uint64_t>(capsule.at("pool_hits", "capsule").as_int());
  r.p2p.pool_misses = static_cast<std::uint64_t>(capsule.at("pool_misses", "capsule").as_int());
  r.p2p.eager_snapshots =
      static_cast<std::uint64_t>(capsule.at("eager_snapshots", "capsule").as_int());
  r.p2p.eager_copy_elided =
      static_cast<std::uint64_t>(capsule.at("eager_copy_elided", "capsule").as_int());
  r.p2p.eager_flush_snapshots =
      static_cast<std::uint64_t>(capsule.at("eager_flush_snapshots", "capsule").as_int());
  r.p2p.bytes_not_copied =
      static_cast<std::uint64_t>(capsule.at("bytes_not_copied", "capsule").as_int());
  if (const auto* wait_fraction = capsule.find("wait_fraction")) {
    r.analyzed = true;
    r.wait_fraction = wait_fraction->as_number();
    r.critical_path_s = capsule.at("critical_path_s", "capsule").as_number();
    r.cp_compute_s = capsule.at("cp_compute_s", "capsule").as_number();
    r.cp_comm_s = capsule.at("cp_comm_s", "capsule").as_number();
    r.dominant_wait = capsule.at("dominant_wait", "capsule").as_string();
    r.rank_wait_s = doubles_from(capsule.at("rank_wait_s", "capsule"));
    r.rank_transfer_s = doubles_from(capsule.at("rank_transfer_s", "capsule"));
  }
  if (const auto* top = capsule.find("top_bottleneck")) {
    r.resources_analyzed = true;
    r.top_bottleneck = top->as_string();
    r.bottleneck_saturated_s = capsule.at("bottleneck_saturated_s", "capsule").as_number();
    r.max_link_utilization = capsule.at("max_link_utilization", "capsule").as_number();
  }
  return r;
}

// --- pipe helpers -----------------------------------------------------------

bool read_exact(int fd, void* buffer, std::size_t bytes) {
  auto* out = static_cast<unsigned char*>(buffer);
  while (bytes > 0) {
    const ssize_t n = ::read(fd, out, bytes);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    out += n;
    bytes -= static_cast<std::size_t>(n);
  }
  return true;
}

bool write_exact(int fd, const void* buffer, std::size_t bytes) {
  const auto* in = static_cast<const unsigned char*>(buffer);
  while (bytes > 0) {
    const ssize_t n = ::write(fd, in, bytes);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    in += n;
    bytes -= static_cast<std::size_t>(n);
  }
  return true;
}

// --- worker side ------------------------------------------------------------

ScenarioResult run_one_scenario(const CampaignSpec& spec, const Scenario& scenario, int rep,
                                const trace::TiTrace& trace, long long arena_bytes) {
  ScenarioResult r;
  r.id = scenario.id;
  r.rep = rep;
  try {
    // Workload overrides change the trace itself: regenerate the variant
    // here (generation is deterministic, so the result is independent of
    // which worker runs it). Everything else replays the shared baseline
    // trace through copy-on-write pages.
    const trace::TiTrace* effective = &trace;
    trace::TiTrace regenerated;
    if (has_workload_override(scenario)) {
      SMPI_REQUIRE(spec.has_workload,
                   "campaign scenario sweeps workload_* but the trace source is a capture");
      regenerated = workload::generate_workload(apply_workload_overrides(spec.workload, scenario));
      effective = &regenerated;
      arena_bytes = 0;  // the baseline hint sized a different trace
    }
    ScenarioSetup setup = materialize(spec, scenario, effective->nranks, rep);
    trace::ReplayOptions replay_options;
    replay_options.arena_bytes_hint = arena_bytes;
    replay_options.payload_free = setup.payload_free;
    replay_options.analyze = spec.analysis;
    obs::ResourceCollector resource_collector;
    if (spec.resources) replay_options.resources = &resource_collector;
    const auto start = std::chrono::steady_clock::now();
    const trace::ReplayResult replay =
        trace::replay_trace(setup.platform, setup.config, *effective, replay_options);
    r.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    if (replay.aborted) {
      // Fault-model abort (or MPI_Abort in the trace): the row is a failure
      // with the diagnostic, not a silently short simulated time.
      r.ok = false;
      r.error = replay.failure.empty()
                    ? "replay aborted with code " + std::to_string(replay.abort_code)
                    : "resource failure: " + replay.failure;
      return r;
    }
    r.ok = true;
    r.simulated_time = replay.simulated_time;
    r.records = replay.records;
    r.ranks = replay.ranks;
    r.arena_bytes = replay.arena_bytes;
    r.rank_compute_s.reserve(replay.rank_usage.size());
    r.rank_comm_s.reserve(replay.rank_usage.size());
    for (const trace::RankUsage& usage : replay.rank_usage) {
      r.rank_compute_s.push_back(usage.compute_s);
      r.rank_comm_s.push_back(usage.comm_s);
    }
    r.solver_solves = replay.solver_solves;
    r.solver_vars_touched = replay.solver_vars_touched;
    r.solver_cons_touched = replay.solver_cons_touched;
    r.p2p = replay.p2p;
    if (replay.analyzed) {
      r.analyzed = true;
      r.wait_fraction = replay.analysis.wait_fraction;
      r.critical_path_s = replay.analysis.path_length_s;
      r.cp_compute_s = replay.analysis.cp_compute_s;
      r.cp_comm_s = replay.analysis.cp_comm_s;
      r.dominant_wait = replay.analysis.dominant_wait_state;
      r.rank_wait_s.reserve(replay.rank_usage.size());
      r.rank_transfer_s.reserve(replay.rank_usage.size());
      for (const trace::RankUsage& usage : replay.rank_usage) {
        r.rank_wait_s.push_back(usage.wait_s);
        r.rank_transfer_s.push_back(usage.transfer_s);
      }
    }
    if (replay.resources_analyzed) {
      r.resources_analyzed = true;
      r.top_bottleneck = replay.top_bottleneck;
      r.bottleneck_saturated_s = replay.bottleneck_saturated_s;
      r.max_link_utilization = replay.max_link_utilization;
    }
  } catch (const std::exception& e) {
    r.ok = false;
    r.error = e.what();
  }
  return r;
}

// Task message and its harness-test flags. The parent decides fault
// injection (it knows attempt counts); the worker just obeys.
struct TaskMsg {
  std::int32_t id = -1;  // -1 = shut down
  std::int32_t flags = 0;
};
constexpr std::int32_t kTaskCrash = 1;  // _exit instead of running (dead-worker drill)
constexpr std::int32_t kTaskHang = 2;   // sleep forever (watchdog drill)

[[noreturn]] void worker_loop(const CampaignSpec& spec, const std::vector<Scenario>& scenarios,
                              int replications, const trace::TiTrace& trace, long long arena_bytes,
                              int task_fd, int result_fd) {
  while (true) {
    TaskMsg task;
    if (!read_exact(task_fd, &task, sizeof task) || task.id < 0) ::_exit(0);
    // Task ids are units: scenario * replications + rep.
    SMPI_ENSURE(task.id < static_cast<std::int32_t>(scenarios.size()) * replications,
                "campaign task id out of range");
    if ((task.flags & kTaskCrash) != 0) ::_exit(33);
    if ((task.flags & kTaskHang) != 0) {
      while (true) ::pause();
    }
    const ScenarioResult result =
        run_one_scenario(spec, scenarios[static_cast<std::size_t>(task.id / replications)],
                         task.id % replications, trace, arena_bytes);
    const std::string capsule = encode_capsule(result);
    const auto length = static_cast<std::uint32_t>(capsule.size());
    if (!write_exact(result_fd, &length, sizeof length) ||
        !write_exact(result_fd, capsule.data(), capsule.size())) {
      ::_exit(1);  // parent went away
    }
  }
}

struct Worker {
  pid_t pid = -1;
  int task_fd = -1;    // parent writes scenario ids here
  int result_fd = -1;  // parent reads capsules here
  int running_id = -1;  // scenario in flight, -1 when idle
  bool alive = false;
  std::chrono::steady_clock::time_point deadline{};  // watchdog, when armed
};

void close_fd(int& fd) {
  if (fd >= 0) ::close(fd);
  fd = -1;
}

}  // namespace

double ScenarioResult::compute_total_s() const { return sum(rank_compute_s); }
double ScenarioResult::comm_total_s() const { return sum(rank_comm_s); }
double ScenarioResult::compute_max_s() const { return max_of(rank_compute_s); }
double ScenarioResult::comm_max_s() const { return max_of(rank_comm_s); }

CampaignOutcome run_campaign(const CampaignSpec& spec, const std::vector<Scenario>& scenarios,
                             const trace::TiTrace& trace, const RunOptions& options) {
  SMPI_REQUIRE(options.workers >= 1, "campaign needs at least one worker");
  SMPI_REQUIRE(!scenarios.empty(), "campaign has no scenarios");

  // Work units: one (scenario, replication) pair each.
  const int reps = std::max(1, spec.replications);
  const std::size_t units = scenarios.size() * static_cast<std::size_t>(reps);
  auto unit_label = [&](int id) -> std::string {
    const Scenario& s = scenarios[static_cast<std::size_t>(id / reps)];
    if (reps == 1) return s.label;
    return s.label + " rep=" + std::to_string(id % reps);
  };

  // Resume: adopt prior ok results up front; only the rest is dispatched.
  std::vector<bool> adopted(units, false);
  int resumed = 0;
  for (std::size_t i = 0; i < options.resume.size() && i < units; ++i) {
    if (!options.resume[i].ok) continue;
    SMPI_REQUIRE(options.resume[i].id == static_cast<int>(i) / reps &&
                     options.resume[i].rep == static_cast<int>(i) % reps,
                 "campaign resume: result id/rep does not match its slot");
    adopted[i] = true;
    ++resumed;
  }
  std::vector<std::int32_t> pending;
  pending.reserve(units);
  for (std::size_t i = 0; i < units; ++i) {
    if (!adopted[i]) pending.push_back(static_cast<std::int32_t>(i));
  }

  // Everything adopted: the re-run is a no-op — skip the arena scan (a full
  // pass over every trace record) and the worker pool entirely.
  if (pending.empty()) {
    CampaignOutcome outcome;
    outcome.workers = 0;
    outcome.resumed = resumed;
    outcome.replications = reps;
    outcome.results = options.resume;
    outcome.results.resize(units);
    return outcome;
  }

  const int workers = std::min<int>(options.workers, static_cast<int>(pending.size()));
  const long long arena_bytes = trace::compute_arena_bytes(trace);

  // A dead worker must surface as a failed scenario, not kill the parent on
  // the next task write.
  struct sigaction ignore_pipe{};
  ignore_pipe.sa_handler = SIG_IGN;
  struct sigaction previous_pipe{};
  ::sigaction(SIGPIPE, &ignore_pipe, &previous_pipe);

  const auto sweep_start = std::chrono::steady_clock::now();
  const double timeout_s = options.timeout_s > 0 ? options.timeout_s : spec.timeout_s;
  std::vector<Worker> pool(static_cast<std::size_t>(workers));

  auto spawn_worker = [&](Worker& worker) {
    int task_pipe[2];
    int result_pipe[2];
    SMPI_ENSURE(::pipe(task_pipe) == 0 && ::pipe(result_pipe) == 0,
                "campaign worker pipe creation failed");
    // Flush before forking so buffered output is not duplicated into children.
    std::fflush(stdout);
    std::fflush(stderr);
    const pid_t pid = ::fork();
    SMPI_ENSURE(pid >= 0, "campaign worker fork failed");
    if (pid == 0) {
      ::close(task_pipe[1]);
      ::close(result_pipe[0]);
      for (const Worker& other : pool) {  // fds inherited from other workers
        if (other.task_fd >= 0) ::close(other.task_fd);
        if (other.result_fd >= 0) ::close(other.result_fd);
      }
      worker_loop(spec, scenarios, reps, trace, arena_bytes, task_pipe[0], result_pipe[1]);
    }
    ::close(task_pipe[0]);
    ::close(result_pipe[1]);
    worker.pid = pid;
    worker.task_fd = task_pipe[1];
    worker.result_fd = result_pipe[0];
    worker.running_id = -1;
    worker.alive = true;
  };

  // Close the parent-side fds, reap the child (killing it first when asked),
  // and describe how it exited — the row's worker_exit diagnostic.
  auto reap_worker = [](Worker& worker, bool force_kill) -> std::string {
    close_fd(worker.task_fd);
    close_fd(worker.result_fd);
    std::string cause = "unknown";
    if (worker.pid > 0) {
      if (force_kill) ::kill(worker.pid, SIGKILL);
      int status = 0;
      ::waitpid(worker.pid, &status, 0);
      if (WIFSIGNALED(status)) {
        cause = "killed by signal " + std::to_string(WTERMSIG(status));
      } else if (WIFEXITED(status)) {
        cause = "exited with status " + std::to_string(WEXITSTATUS(status));
      }
    }
    worker.pid = -1;
    worker.alive = false;
    worker.running_id = -1;
    return cause;
  };

  for (Worker& worker : pool) spawn_worker(worker);

  CampaignOutcome outcome;
  outcome.workers = workers;
  outcome.resumed = resumed;
  outcome.replications = reps;
  outcome.results.resize(units);
  for (std::size_t i = 0; i < units; ++i) {
    if (adopted[i]) {
      outcome.results[i] = options.resume[i];
      continue;
    }
    outcome.results[i].id = static_cast<int>(i) / reps;
    outcome.results[i].rep = static_cast<int>(i) % reps;
    outcome.results[i].error = "scenario was never dispatched";
  }

  std::size_t next_pending = 0;
  std::vector<std::int32_t> retry_queue;
  std::vector<int> attempts(units, 0);
  std::size_t completed = static_cast<std::size_t>(resumed);
  auto dispatch = [&](Worker& worker) {
    std::int32_t id = -1;
    bool from_retry = false;
    if (!retry_queue.empty()) {
      id = retry_queue.back();
      retry_queue.pop_back();
      from_retry = true;
    } else if (next_pending < pending.size()) {
      id = pending[next_pending];
    }
    if (id < 0) {
      const TaskMsg shutdown;
      write_exact(worker.task_fd, &shutdown, sizeof shutdown);
      worker.running_id = -1;
      return;
    }
    TaskMsg task;
    task.id = id;
    if (id == options.crash_scenario &&
        (options.crash_always || attempts[static_cast<std::size_t>(id)] == 0)) {
      task.flags |= kTaskCrash;
    }
    if (id == options.hang_scenario) task.flags |= kTaskHang;
    if (!write_exact(worker.task_fd, &task, sizeof task)) {
      // Worker is gone; the scenario stays queued for the others.
      if (from_retry) retry_queue.push_back(id);
      worker.alive = false;
      return;
    }
    if (!from_retry) ++next_pending;
    ++attempts[static_cast<std::size_t>(id)];
    worker.running_id = id;
    if (timeout_s > 0) {
      worker.deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(timeout_s));
    }
  };
  for (Worker& worker : pool) dispatch(worker);

  while (completed < units) {
    std::vector<pollfd> fds;
    std::vector<Worker*> owners;
    for (Worker& worker : pool) {
      if (worker.alive && worker.running_id >= 0) {
        fds.push_back({worker.result_fd, POLLIN, 0});
        owners.push_back(&worker);
      }
    }
    SMPI_ENSURE(!fds.empty(), "campaign: all workers died with scenarios remaining");
    int poll_timeout_ms = -1;
    if (timeout_s > 0) {
      const auto now = std::chrono::steady_clock::now();
      double wait_s = timeout_s;
      for (const Worker* worker : owners) {
        wait_s = std::min(wait_s, std::chrono::duration<double>(worker->deadline - now).count());
      }
      poll_timeout_ms = std::max(0, static_cast<int>(wait_s * 1000.0) + 1);
    }
    const int ready = ::poll(fds.data(), fds.size(), poll_timeout_ms);
    if (ready < 0 && errno == EINTR) continue;
    SMPI_ENSURE(ready >= 0, "campaign: poll on worker results failed");

    for (std::size_t i = 0; i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      Worker& worker = *owners[i];
      std::uint32_t length = 0;
      std::string capsule;
      bool got = read_exact(worker.result_fd, &length, sizeof length);
      if (got) {
        capsule.resize(length);
        got = read_exact(worker.result_fd, capsule.data(), length);
      }
      const int id = worker.running_id;
      worker.running_id = -1;
      auto& row = outcome.results[static_cast<std::size_t>(id)];
      if (!got) {
        // The worker died mid-scenario (crash, OOM kill...). Record the exit
        // cause, then retry ONCE on a freshly forked worker after a short
        // backoff — transient deaths deserve a second chance; a
        // deterministic one will kill the retry too and fail the row for
        // good. The pool is refilled either way.
        const std::string cause = reap_worker(worker, false);
        row.worker_exit = cause;
        if (attempts[static_cast<std::size_t>(id)] < 2) {
          if (options.progress) {
            std::fprintf(stderr, "campaign: scenario %d worker died (%s), retrying\n", id,
                         cause.c_str());
          }
          const struct timespec backoff = {0, 50 * 1000 * 1000};  // 50 ms
          ::nanosleep(&backoff, nullptr);
          retry_queue.push_back(static_cast<std::int32_t>(id));
        } else {
          row.ok = false;
          row.retries = attempts[static_cast<std::size_t>(id)] - 1;
          row.error = "campaign worker died while running this scenario (retry exhausted)";
          ++completed;
          if (options.progress) {
            std::fprintf(stderr, "campaign: unit %d/%zu FAILED (%s)\n", id + 1, units,
                         unit_label(id).c_str());
          }
        }
        spawn_worker(worker);
        dispatch(worker);
        continue;
      }
      ScenarioResult result = decode_capsule(capsule);
      SMPI_ENSURE(result.id == id / reps && result.rep == id % reps,
                  "campaign capsule for the wrong unit");
      result.retries = attempts[static_cast<std::size_t>(id)] - 1;
      if (options.progress) {
        std::fprintf(stderr, "campaign: unit %d/%zu %s (%s)\n", id + 1, units,
                     result.ok ? "done" : "FAILED", unit_label(id).c_str());
      }
      outcome.results[static_cast<std::size_t>(id)] = std::move(result);
      ++completed;
      dispatch(worker);
    }

    // Watchdog: anything still in flight past its deadline is killed and
    // recorded as a timeout; no retry (it would just burn another timeout).
    // Runs after the reads so a result that raced the deadline still wins.
    if (timeout_s > 0) {
      const auto now = std::chrono::steady_clock::now();
      for (Worker& worker : pool) {
        if (!worker.alive || worker.running_id < 0 || now < worker.deadline) continue;
        const int id = worker.running_id;
        const std::string cause = reap_worker(worker, true);
        auto& row = outcome.results[static_cast<std::size_t>(id)];
        char budget[64];
        std::snprintf(budget, sizeof budget, "%g", timeout_s);
        row.ok = false;
        row.timed_out = true;
        row.retries = attempts[static_cast<std::size_t>(id)] - 1;
        row.error = std::string("scenario exceeded the ") + budget + " s wall-clock watchdog";
        row.worker_exit = "killed by watchdog (" + cause + ")";
        ++completed;
        if (options.progress) {
          std::fprintf(stderr, "campaign: unit %d/%zu TIMEOUT (%s)\n", id + 1, units,
                       unit_label(id).c_str());
        }
        spawn_worker(worker);
        dispatch(worker);
      }
    }
  }

  for (Worker& worker : pool) {
    if (worker.alive && worker.running_id < 0) {
      // Idle workers were already told to shut down by dispatch().
    } else if (worker.alive) {
      const TaskMsg shutdown;
      write_exact(worker.task_fd, &shutdown, sizeof shutdown);
    }
    close_fd(worker.task_fd);
    close_fd(worker.result_fd);
    if (worker.pid > 0) {
      int status = 0;
      ::waitpid(worker.pid, &status, 0);
    }
  }
  ::sigaction(SIGPIPE, &previous_pipe, nullptr);

  outcome.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - sweep_start).count();
  return outcome;
}

}  // namespace smpi::campaign
