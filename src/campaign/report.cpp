#include "campaign/report.hpp"

#include <algorithm>
#include <cstdio>

#include "util/check.hpp"

namespace smpi::campaign {

namespace {

const ScenarioResult& baseline_of(const CampaignOutcome& outcome) {
  SMPI_REQUIRE(!outcome.results.empty(), "campaign outcome has no scenarios");
  return outcome.results.front();
}

double speedup_vs_baseline(const ScenarioResult& baseline, const ScenarioResult& r) {
  if (!baseline.ok || !r.ok || r.simulated_time <= 0) return 0;
  return baseline.simulated_time / r.simulated_time;
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

// Scenario ids of the successful runs, sorted fastest-first (stable on ties
// so the ranking is deterministic).
std::vector<int> ranked_ok(const CampaignOutcome& outcome) {
  std::vector<int> ids;
  for (const ScenarioResult& r : outcome.results) {
    if (r.ok) ids.push_back(r.id);
  }
  std::stable_sort(ids.begin(), ids.end(), [&](int a, int b) {
    return outcome.results[static_cast<std::size_t>(a)].simulated_time <
           outcome.results[static_cast<std::size_t>(b)].simulated_time;
  });
  return ids;
}

util::JsonValue params_json(const Scenario& scenario) {
  util::JsonValue params = util::JsonValue::object();
  for (const auto& [key, value] : scenario.params) params.set(key, value);
  return params;
}

const char* base_kind_name(CampaignSpec::BaseKind kind) {
  switch (kind) {
    case CampaignSpec::BaseKind::kFlat: return "flat";
    case CampaignSpec::BaseKind::kGriffon: return "hierarchical-griffon";
    case CampaignSpec::BaseKind::kGdx: return "hierarchical-gdx";
    case CampaignSpec::BaseKind::kXmlFile: return "xml";
  }
  SMPI_UNREACHABLE("bad base kind");
}

}  // namespace

util::JsonValue report_json(const CampaignSpec& spec, const std::vector<Scenario>& scenarios,
                            const CampaignOutcome& outcome) {
  SMPI_REQUIRE(scenarios.size() == outcome.results.size(),
               "campaign report: scenario/result count mismatch");
  const ScenarioResult& baseline = baseline_of(outcome);

  util::JsonValue doc = util::JsonValue::object();
  doc.set("campaign", util::JsonValue::string(spec.name));
  doc.set("trace", util::JsonValue::string(spec.trace_dir));
  {
    util::JsonValue platform = util::JsonValue::object();
    platform.set("kind", util::JsonValue::string(base_kind_name(spec.base_kind)));
    platform.set("nodes", util::JsonValue::number(spec.base_nodes));
    if (!spec.platform_file.empty()) {
      platform.set("file", util::JsonValue::string(spec.platform_file));
    }
    doc.set("platform", std::move(platform));
  }
  if (spec.has_workload) {
    util::JsonValue workload = util::JsonValue::object();
    workload.set("name", util::JsonValue::string(spec.workload.name));
    workload.set("ranks", util::JsonValue::number(spec.workload.ranks));
    workload.set("seed", util::JsonValue::number(static_cast<double>(spec.workload.seed)));
    workload.set("phases",
                 util::JsonValue::number(static_cast<double>(spec.workload.phases.size())));
    doc.set("workload", std::move(workload));
  }
  doc.set("workers", util::JsonValue::number(outcome.workers));
  if (outcome.resumed > 0) doc.set("resumed", util::JsonValue::number(outcome.resumed));
  doc.set("wall_s", util::JsonValue::number(outcome.wall_s));
  doc.set("scenario_count", util::JsonValue::number(static_cast<double>(scenarios.size())));

  util::JsonValue rows = util::JsonValue::array();
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const Scenario& scenario = scenarios[i];
    const ScenarioResult& r = outcome.results[i];
    util::JsonValue row = util::JsonValue::object();
    row.set("id", util::JsonValue::number(scenario.id));
    row.set("label", util::JsonValue::string(scenario.label));
    row.set("params", params_json(scenario));
    row.set("ok", util::JsonValue::boolean(r.ok));
    row.set("retries", util::JsonValue::number(r.retries));
    if (!r.ok) {
      row.set("error", util::JsonValue::string(r.error));
      if (r.timed_out) row.set("timed_out", util::JsonValue::boolean(true));
      if (!r.worker_exit.empty()) {
        row.set("worker_exit", util::JsonValue::string(r.worker_exit));
      }
      rows.append(std::move(row));
      continue;
    }
    row.set("simulated_time", util::JsonValue::number(r.simulated_time));
    row.set("speedup_vs_baseline", util::JsonValue::number(speedup_vs_baseline(baseline, r)));
    row.set("wall_s", util::JsonValue::number(r.wall_s));
    row.set("records", util::JsonValue::number(static_cast<double>(r.records)));
    row.set("ranks", util::JsonValue::number(r.ranks));
    row.set("arena_bytes", util::JsonValue::number(static_cast<double>(r.arena_bytes)));
    util::JsonValue breakdown = util::JsonValue::object();
    breakdown.set("compute_total_s", util::JsonValue::number(r.compute_total_s()));
    breakdown.set("comm_total_s", util::JsonValue::number(r.comm_total_s()));
    breakdown.set("compute_max_s", util::JsonValue::number(r.compute_max_s()));
    breakdown.set("comm_max_s", util::JsonValue::number(r.comm_max_s()));
    util::JsonValue per_rank_compute = util::JsonValue::array();
    util::JsonValue per_rank_comm = util::JsonValue::array();
    for (double v : r.rank_compute_s) per_rank_compute.append(util::JsonValue::number(v));
    for (double v : r.rank_comm_s) per_rank_comm.append(util::JsonValue::number(v));
    breakdown.set("rank_compute_s", std::move(per_rank_compute));
    breakdown.set("rank_comm_s", std::move(per_rank_comm));
    row.set("breakdown", std::move(breakdown));
    util::JsonValue solver = util::JsonValue::object();
    solver.set("solves", util::JsonValue::number(static_cast<double>(r.solver_solves)));
    solver.set("vars_touched",
               util::JsonValue::number(static_cast<double>(r.solver_vars_touched)));
    solver.set("cons_touched",
               util::JsonValue::number(static_cast<double>(r.solver_cons_touched)));
    row.set("solver", std::move(solver));
    util::JsonValue p2p = util::JsonValue::object();
    p2p.set("pool_hits", util::JsonValue::number(static_cast<double>(r.p2p.pool_hits)));
    p2p.set("pool_misses", util::JsonValue::number(static_cast<double>(r.p2p.pool_misses)));
    p2p.set("eager_snapshots",
            util::JsonValue::number(static_cast<double>(r.p2p.eager_snapshots)));
    p2p.set("eager_copy_elided",
            util::JsonValue::number(static_cast<double>(r.p2p.eager_copy_elided)));
    p2p.set("eager_flush_snapshots",
            util::JsonValue::number(static_cast<double>(r.p2p.eager_flush_snapshots)));
    p2p.set("bytes_not_copied",
            util::JsonValue::number(static_cast<double>(r.p2p.bytes_not_copied)));
    row.set("p2p", std::move(p2p));
    rows.append(std::move(row));
  }
  doc.set("scenarios", std::move(rows));

  const std::vector<int> ranking = ranked_ok(outcome);
  util::JsonValue ranking_json = util::JsonValue::array();
  for (int id : ranking) ranking_json.append(util::JsonValue::number(id));
  doc.set("ranking_fastest_first", std::move(ranking_json));
  return doc;
}

std::string report_csv(const CampaignSpec& spec, const std::vector<Scenario>& scenarios,
                       const CampaignOutcome& outcome) {
  SMPI_REQUIRE(scenarios.size() == outcome.results.size(),
               "campaign report: scenario/result count mismatch");
  const ScenarioResult& baseline = baseline_of(outcome);

  // One column per axis (in axis order) so the grid pivots cleanly.
  std::vector<std::string> axis_keys;
  for (const Axis& axis : spec.axes) axis_keys.push_back(axis.key());

  std::string csv = "id,label,ok,retries,timed_out";
  for (const std::string& key : axis_keys) csv += "," + key;
  csv +=
      ",simulated_time,speedup_vs_baseline,wall_s,records,ranks,compute_total_s,comm_total_s,"
      "compute_max_s,comm_max_s,solver_solves,solver_vars_touched,solver_cons_touched,"
      "pool_hits,pool_misses,eager_snapshots,eager_copy_elided,eager_flush_snapshots,"
      "bytes_not_copied,worker_exit,error\n";

  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const Scenario& scenario = scenarios[i];
    const ScenarioResult& r = outcome.results[i];
    csv += std::to_string(scenario.id);
    csv += ",\"" + scenario.label + "\"";
    csv += r.ok ? ",1" : ",0";
    csv += ',' + std::to_string(r.retries);
    csv += r.timed_out ? ",1" : ",0";
    for (const std::string& key : axis_keys) {
      const util::JsonValue* value = scenario.find(key);
      csv += ',';
      if (value != nullptr) {
        csv += value->is_string() ? value->as_string() : value->dump();
      }
    }
    if (r.ok) {
      csv += ',' + format_double(r.simulated_time);
      csv += ',' + format_double(speedup_vs_baseline(baseline, r));
      csv += ',' + format_double(r.wall_s);
      csv += ',' + std::to_string(r.records);
      csv += ',' + std::to_string(r.ranks);
      csv += ',' + format_double(r.compute_total_s());
      csv += ',' + format_double(r.comm_total_s());
      csv += ',' + format_double(r.compute_max_s());
      csv += ',' + format_double(r.comm_max_s());
      csv += ',' + std::to_string(r.solver_solves);
      csv += ',' + std::to_string(r.solver_vars_touched);
      csv += ',' + std::to_string(r.solver_cons_touched);
      csv += ',' + std::to_string(r.p2p.pool_hits);
      csv += ',' + std::to_string(r.p2p.pool_misses);
      csv += ',' + std::to_string(r.p2p.eager_snapshots);
      csv += ',' + std::to_string(r.p2p.eager_copy_elided);
      csv += ',' + std::to_string(r.p2p.eager_flush_snapshots);
      csv += ',' + std::to_string(r.p2p.bytes_not_copied);
      csv += ",,\n";  // empty worker_exit + error
    } else {
      // 18 empty metric columns, then the harness diagnostics.
      csv += ",,,,,,,,,,,,,,,,,,\"" + r.worker_exit + "\",\"" + r.error + "\"\n";
    }
  }
  return csv;
}

std::string report_summary(const CampaignSpec& spec, const std::vector<Scenario>& scenarios,
                           const CampaignOutcome& outcome, int top) {
  const ScenarioResult& baseline = baseline_of(outcome);
  const std::vector<int> ranking = ranked_ok(outcome);
  std::string out;
  char line[512];

  std::snprintf(line, sizeof line, "campaign '%s': %zu scenarios, %d workers, %.2fs wall\n",
                spec.name.c_str(), scenarios.size(), outcome.workers, outcome.wall_s);
  out += line;
  if (baseline.ok) {
    std::snprintf(line, sizeof line, "baseline simulated time: %.9f s\n",
                  baseline.simulated_time);
    out += line;
  } else {
    out += "baseline FAILED: " + baseline.error + "\n";
  }

  auto describe = [&](int id) {
    const ScenarioResult& r = outcome.results[static_cast<std::size_t>(id)];
    std::snprintf(line, sizeof line, "  #%-4d %-48s %.9f s  (%.3fx)\n", id,
                  scenarios[static_cast<std::size_t>(id)].label.c_str(), r.simulated_time,
                  speedup_vs_baseline(baseline, r));
    out += line;
  };

  const int shown = std::min<int>(top, static_cast<int>(ranking.size()));
  if (shown > 0) {
    out += "fastest scenarios:\n";
    for (int i = 0; i < shown; ++i) describe(ranking[static_cast<std::size_t>(i)]);
    out += "slowest scenarios:\n";
    for (int i = 0; i < shown; ++i) {
      describe(ranking[ranking.size() - 1 - static_cast<std::size_t>(i)]);
    }
  }

  if (outcome.resumed > 0) {
    std::snprintf(line, sizeof line, "%d scenario(s) adopted from the resumed report\n",
                  outcome.resumed);
    out += line;
  }

  int failures = 0;
  int retried = 0;
  int timeouts = 0;
  for (const ScenarioResult& r : outcome.results) {
    failures += r.ok ? 0 : 1;
    retried += r.retries > 0 ? 1 : 0;
    timeouts += r.timed_out ? 1 : 0;
  }
  if (retried > 0) {
    std::snprintf(line, sizeof line, "%d scenario(s) needed a worker retry\n", retried);
    out += line;
  }
  if (timeouts > 0) {
    std::snprintf(line, sizeof line, "%d scenario(s) hit the wall-clock watchdog\n", timeouts);
    out += line;
  }
  if (failures > 0) {
    std::snprintf(line, sizeof line, "%d scenario(s) FAILED:\n", failures);
    out += line;
    for (const ScenarioResult& r : outcome.results) {
      if (r.ok) continue;
      std::snprintf(line, sizeof line, "  #%-4d %s: %s%s%s%s\n", r.id,
                    scenarios[static_cast<std::size_t>(r.id)].label.c_str(), r.error.c_str(),
                    r.worker_exit.empty() ? "" : " [worker: ",
                    r.worker_exit.c_str(), r.worker_exit.empty() ? "" : "]");
      out += line;
    }
  }
  return out;
}

std::vector<ScenarioResult> results_from_report(const util::JsonValue& report,
                                                const CampaignSpec& spec,
                                                const std::vector<Scenario>& scenarios) {
  SMPI_REQUIRE(report.is_object(), "campaign resume: report is not a JSON object");
  const std::string name = report.at("campaign", "resume report").as_string();
  SMPI_REQUIRE(name == spec.name, "campaign resume: report belongs to campaign '" + name +
                                      "', spec is '" + spec.name + "'");
  const long long count = report.at("scenario_count", "resume report").as_int();
  SMPI_REQUIRE(count == static_cast<long long>(scenarios.size()),
               "campaign resume: report has " + std::to_string(count) + " scenarios, spec has " +
                   std::to_string(scenarios.size()));
  // Labels only cover the axis values; the trace source and base platform
  // shape the results just as much, so a report produced under a different
  // one must be rejected, not stitched into this sweep.
  const std::string trace = report.at("trace", "resume report").as_string();
  SMPI_REQUIRE(trace == spec.trace_dir, "campaign resume: report ran over trace '" + trace +
                                            "', spec uses '" + spec.trace_dir + "'");
  const auto& platform = report.at("platform", "resume report");
  SMPI_REQUIRE(platform.at("kind", "resume platform").as_string() ==
                       base_kind_name(spec.base_kind) &&
                   platform.at("nodes", "resume platform").as_int() == spec.base_nodes &&
                   (spec.platform_file.empty()
                        ? platform.find("file") == nullptr
                        : platform.find("file") != nullptr &&
                              platform.at("file", "resume platform").as_string() ==
                                  spec.platform_file),
               "campaign resume: report ran on a different base platform");
  const auto* workload = report.find("workload");
  SMPI_REQUIRE((workload != nullptr) == spec.has_workload,
               "campaign resume: report and spec disagree on the workload trace source");
  if (workload != nullptr) {
    SMPI_REQUIRE(
        workload->at("name", "resume workload").as_string() == spec.workload.name &&
            workload->at("ranks", "resume workload").as_int() == spec.workload.ranks &&
            workload->at("seed", "resume workload").as_int() ==
                static_cast<long long>(spec.workload.seed) &&
            workload->at("phases", "resume workload").as_int() ==
                static_cast<long long>(spec.workload.phases.size()),
        "campaign resume: report ran a different workload (name/ranks/seed/phases changed)");
  }

  std::vector<ScenarioResult> results(scenarios.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    results[i].id = static_cast<int>(i);
    results[i].error = "not present in the resumed report";
  }
  for (const auto& row : report.at("scenarios", "resume report").items()) {
    const long long id = row.at("id", "resume report row").as_int();
    SMPI_REQUIRE(id >= 0 && id < static_cast<long long>(scenarios.size()),
                 "campaign resume: report row id out of range");
    const auto index = static_cast<std::size_t>(id);
    // Label equality is the cheap proxy for "same axes, same values, same
    // order" — any edit to the spec that renumbers the cross-product
    // changes the labels, and the resume must then be rejected.
    const std::string label = row.at("label", "resume report row").as_string();
    SMPI_REQUIRE(label == scenarios[index].label,
                 "campaign resume: scenario " + std::to_string(id) + " is '" +
                     scenarios[index].label + "' in the spec but '" + label +
                     "' in the report — the axes changed, start a fresh sweep");
    ScenarioResult& r = results[index];
    r.ok = row.at("ok", "resume report row").as_bool();
    // Lenient: reports written before the hardened harness carry none of
    // these fields.
    if (const auto* retries = row.find("retries")) r.retries = static_cast<int>(retries->as_int());
    if (!r.ok) {
      if (const auto* error = row.find("error")) r.error = error->as_string();
      if (const auto* timed_out = row.find("timed_out")) r.timed_out = timed_out->as_bool();
      if (const auto* worker_exit = row.find("worker_exit")) {
        r.worker_exit = worker_exit->as_string();
      }
      continue;
    }
    r.error.clear();
    r.simulated_time = row.at("simulated_time", "resume report row").as_number();
    r.wall_s = row.at("wall_s", "resume report row").as_number();
    r.records = row.at("records", "resume report row").as_int();
    r.ranks = static_cast<int>(row.at("ranks", "resume report row").as_int());
    r.arena_bytes =
        static_cast<std::uint64_t>(row.at("arena_bytes", "resume report row").as_int());
    const auto& breakdown = row.at("breakdown", "resume report row");
    for (const auto& v : breakdown.at("rank_compute_s", "resume breakdown").items()) {
      r.rank_compute_s.push_back(v.as_number());
    }
    for (const auto& v : breakdown.at("rank_comm_s", "resume breakdown").items()) {
      r.rank_comm_s.push_back(v.as_number());
    }
    const auto& solver = row.at("solver", "resume report row");
    r.solver_solves =
        static_cast<std::uint64_t>(solver.at("solves", "resume solver").as_int());
    r.solver_vars_touched =
        static_cast<std::uint64_t>(solver.at("vars_touched", "resume solver").as_int());
    r.solver_cons_touched =
        static_cast<std::uint64_t>(solver.at("cons_touched", "resume solver").as_int());
    // Lenient: reports written before the p2p counters existed resume fine
    // (the counters simply stay zero for adopted rows).
    if (const auto* p2p = row.find("p2p")) {
      auto u64 = [&](const char* key) {
        const auto* v = p2p->find(key);
        return v == nullptr ? std::uint64_t{0} : static_cast<std::uint64_t>(v->as_int());
      };
      r.p2p.pool_hits = u64("pool_hits");
      r.p2p.pool_misses = u64("pool_misses");
      r.p2p.eager_snapshots = u64("eager_snapshots");
      r.p2p.eager_copy_elided = u64("eager_copy_elided");
      r.p2p.eager_flush_snapshots = u64("eager_flush_snapshots");
      r.p2p.bytes_not_copied = u64("bytes_not_copied");
    }
  }
  return results;
}

}  // namespace smpi::campaign
