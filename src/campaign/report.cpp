#include "campaign/report.hpp"

#include <algorithm>
#include <cstdio>

#include "util/check.hpp"

namespace smpi::campaign {

namespace {

const ScenarioResult& baseline_of(const CampaignOutcome& outcome) {
  SMPI_REQUIRE(!outcome.results.empty(), "campaign outcome has no scenarios");
  return outcome.results.front();
}

double speedup_vs_baseline(const ScenarioResult& baseline, const ScenarioResult& r) {
  if (!baseline.ok || !r.ok || r.simulated_time <= 0) return 0;
  return baseline.simulated_time / r.simulated_time;
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

// Scenario ids of the successful runs, sorted fastest-first (stable on ties
// so the ranking is deterministic).
std::vector<int> ranked_ok(const CampaignOutcome& outcome) {
  std::vector<int> ids;
  for (const ScenarioResult& r : outcome.results) {
    if (r.ok) ids.push_back(r.id);
  }
  std::stable_sort(ids.begin(), ids.end(), [&](int a, int b) {
    return outcome.results[static_cast<std::size_t>(a)].simulated_time <
           outcome.results[static_cast<std::size_t>(b)].simulated_time;
  });
  return ids;
}

util::JsonValue params_json(const Scenario& scenario) {
  util::JsonValue params = util::JsonValue::object();
  for (const auto& [key, value] : scenario.params) params.set(key, value);
  return params;
}

}  // namespace

util::JsonValue report_json(const CampaignSpec& spec, const std::vector<Scenario>& scenarios,
                            const CampaignOutcome& outcome) {
  SMPI_REQUIRE(scenarios.size() == outcome.results.size(),
               "campaign report: scenario/result count mismatch");
  const ScenarioResult& baseline = baseline_of(outcome);

  util::JsonValue doc = util::JsonValue::object();
  doc.set("campaign", util::JsonValue::string(spec.name));
  doc.set("trace", util::JsonValue::string(spec.trace_dir));
  doc.set("workers", util::JsonValue::number(outcome.workers));
  doc.set("wall_s", util::JsonValue::number(outcome.wall_s));
  doc.set("scenario_count", util::JsonValue::number(static_cast<double>(scenarios.size())));

  util::JsonValue rows = util::JsonValue::array();
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const Scenario& scenario = scenarios[i];
    const ScenarioResult& r = outcome.results[i];
    util::JsonValue row = util::JsonValue::object();
    row.set("id", util::JsonValue::number(scenario.id));
    row.set("label", util::JsonValue::string(scenario.label));
    row.set("params", params_json(scenario));
    row.set("ok", util::JsonValue::boolean(r.ok));
    if (!r.ok) {
      row.set("error", util::JsonValue::string(r.error));
      rows.append(std::move(row));
      continue;
    }
    row.set("simulated_time", util::JsonValue::number(r.simulated_time));
    row.set("speedup_vs_baseline", util::JsonValue::number(speedup_vs_baseline(baseline, r)));
    row.set("wall_s", util::JsonValue::number(r.wall_s));
    row.set("records", util::JsonValue::number(static_cast<double>(r.records)));
    row.set("ranks", util::JsonValue::number(r.ranks));
    row.set("arena_bytes", util::JsonValue::number(static_cast<double>(r.arena_bytes)));
    util::JsonValue breakdown = util::JsonValue::object();
    breakdown.set("compute_total_s", util::JsonValue::number(r.compute_total_s()));
    breakdown.set("comm_total_s", util::JsonValue::number(r.comm_total_s()));
    breakdown.set("compute_max_s", util::JsonValue::number(r.compute_max_s()));
    breakdown.set("comm_max_s", util::JsonValue::number(r.comm_max_s()));
    util::JsonValue per_rank_compute = util::JsonValue::array();
    util::JsonValue per_rank_comm = util::JsonValue::array();
    for (double v : r.rank_compute_s) per_rank_compute.append(util::JsonValue::number(v));
    for (double v : r.rank_comm_s) per_rank_comm.append(util::JsonValue::number(v));
    breakdown.set("rank_compute_s", std::move(per_rank_compute));
    breakdown.set("rank_comm_s", std::move(per_rank_comm));
    row.set("breakdown", std::move(breakdown));
    util::JsonValue solver = util::JsonValue::object();
    solver.set("solves", util::JsonValue::number(static_cast<double>(r.solver_solves)));
    solver.set("vars_touched",
               util::JsonValue::number(static_cast<double>(r.solver_vars_touched)));
    solver.set("cons_touched",
               util::JsonValue::number(static_cast<double>(r.solver_cons_touched)));
    row.set("solver", std::move(solver));
    rows.append(std::move(row));
  }
  doc.set("scenarios", std::move(rows));

  const std::vector<int> ranking = ranked_ok(outcome);
  util::JsonValue ranking_json = util::JsonValue::array();
  for (int id : ranking) ranking_json.append(util::JsonValue::number(id));
  doc.set("ranking_fastest_first", std::move(ranking_json));
  return doc;
}

std::string report_csv(const CampaignSpec& spec, const std::vector<Scenario>& scenarios,
                       const CampaignOutcome& outcome) {
  SMPI_REQUIRE(scenarios.size() == outcome.results.size(),
               "campaign report: scenario/result count mismatch");
  const ScenarioResult& baseline = baseline_of(outcome);

  // One column per axis (in axis order) so the grid pivots cleanly.
  std::vector<std::string> axis_keys;
  for (const Axis& axis : spec.axes) axis_keys.push_back(axis.key());

  std::string csv = "id,label,ok";
  for (const std::string& key : axis_keys) csv += "," + key;
  csv +=
      ",simulated_time,speedup_vs_baseline,wall_s,records,ranks,compute_total_s,comm_total_s,"
      "compute_max_s,comm_max_s,solver_solves,solver_vars_touched,solver_cons_touched,error\n";

  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const Scenario& scenario = scenarios[i];
    const ScenarioResult& r = outcome.results[i];
    csv += std::to_string(scenario.id);
    csv += ",\"" + scenario.label + "\"";
    csv += r.ok ? ",1" : ",0";
    for (const std::string& key : axis_keys) {
      const util::JsonValue* value = scenario.find(key);
      csv += ',';
      if (value != nullptr) {
        csv += value->is_string() ? value->as_string() : value->dump();
      }
    }
    if (r.ok) {
      csv += ',' + format_double(r.simulated_time);
      csv += ',' + format_double(speedup_vs_baseline(baseline, r));
      csv += ',' + format_double(r.wall_s);
      csv += ',' + std::to_string(r.records);
      csv += ',' + std::to_string(r.ranks);
      csv += ',' + format_double(r.compute_total_s());
      csv += ',' + format_double(r.comm_total_s());
      csv += ',' + format_double(r.compute_max_s());
      csv += ',' + format_double(r.comm_max_s());
      csv += ',' + std::to_string(r.solver_solves);
      csv += ',' + std::to_string(r.solver_vars_touched);
      csv += ',' + std::to_string(r.solver_cons_touched);
      csv += ",\n";
    } else {
      csv += ",,,,,,,,,,,,\"" + r.error + "\"\n";
    }
  }
  return csv;
}

std::string report_summary(const CampaignSpec& spec, const std::vector<Scenario>& scenarios,
                           const CampaignOutcome& outcome, int top) {
  const ScenarioResult& baseline = baseline_of(outcome);
  const std::vector<int> ranking = ranked_ok(outcome);
  std::string out;
  char line[512];

  std::snprintf(line, sizeof line, "campaign '%s': %zu scenarios, %d workers, %.2fs wall\n",
                spec.name.c_str(), scenarios.size(), outcome.workers, outcome.wall_s);
  out += line;
  if (baseline.ok) {
    std::snprintf(line, sizeof line, "baseline simulated time: %.9f s\n",
                  baseline.simulated_time);
    out += line;
  } else {
    out += "baseline FAILED: " + baseline.error + "\n";
  }

  auto describe = [&](int id) {
    const ScenarioResult& r = outcome.results[static_cast<std::size_t>(id)];
    std::snprintf(line, sizeof line, "  #%-4d %-48s %.9f s  (%.3fx)\n", id,
                  scenarios[static_cast<std::size_t>(id)].label.c_str(), r.simulated_time,
                  speedup_vs_baseline(baseline, r));
    out += line;
  };

  const int shown = std::min<int>(top, static_cast<int>(ranking.size()));
  if (shown > 0) {
    out += "fastest scenarios:\n";
    for (int i = 0; i < shown; ++i) describe(ranking[static_cast<std::size_t>(i)]);
    out += "slowest scenarios:\n";
    for (int i = 0; i < shown; ++i) {
      describe(ranking[ranking.size() - 1 - static_cast<std::size_t>(i)]);
    }
  }

  int failures = 0;
  for (const ScenarioResult& r : outcome.results) failures += r.ok ? 0 : 1;
  if (failures > 0) {
    std::snprintf(line, sizeof line, "%d scenario(s) FAILED:\n", failures);
    out += line;
    for (const ScenarioResult& r : outcome.results) {
      if (r.ok) continue;
      std::snprintf(line, sizeof line, "  #%-4d %s: %s\n", r.id,
                    scenarios[static_cast<std::size_t>(r.id)].label.c_str(), r.error.c_str());
      out += line;
    }
  }
  return out;
}

}  // namespace smpi::campaign
