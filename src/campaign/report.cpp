#include "campaign/report.hpp"

#include <algorithm>
#include <cstdio>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace smpi::campaign {

namespace {

// Bootstrap-CI knobs for the replication fold-down: fixed so two runs of the
// same campaign (or a resume of one) always report identical intervals.
constexpr double kCiLevel = 0.95;
constexpr int kCiResamples = 200;

int reps_of(const CampaignOutcome& outcome) { return std::max(1, outcome.replications); }

const ScenarioResult& baseline_of(const CampaignOutcome& outcome) {
  SMPI_REQUIRE(!outcome.results.empty(), "campaign outcome has no scenarios");
  return outcome.results.front();
}

double speedup_vs_baseline(const ScenarioResult& baseline, const ScenarioResult& r) {
  if (!baseline.ok || !r.ok || r.simulated_time <= 0) return 0;
  return baseline.simulated_time / r.simulated_time;
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

// Per-scenario fold-down of a replicated sweep's simulated times.
struct ScenarioAgg {
  bool complete = false;       // every replication succeeded
  std::vector<double> times;   // simulated times of the ok replications
  util::SampleSummary stats;   // over `times` (valid when non-empty)
  util::BootstrapCi ci;        // bootstrap CI of the mean (valid when non-empty)
};

ScenarioAgg aggregate_scenario(const CampaignOutcome& outcome, std::size_t scenario,
                               std::uint64_t ci_seed) {
  const int reps = reps_of(outcome);
  ScenarioAgg agg;
  agg.complete = true;
  for (int rep = 0; rep < reps; ++rep) {
    const ScenarioResult& r =
        outcome.results[scenario * static_cast<std::size_t>(reps) + static_cast<std::size_t>(rep)];
    if (r.ok) {
      agg.times.push_back(r.simulated_time);
    } else {
      agg.complete = false;
    }
  }
  if (!agg.times.empty()) {
    agg.stats = util::summarize_sample(agg.times);
    // One CI sub-seed per scenario, so dropping a scenario from the sweep
    // never changes another's interval.
    agg.ci = util::bootstrap_mean_ci(agg.times, kCiLevel, kCiResamples,
                                     util::mix_stream(ci_seed, 0, scenario));
  }
  return agg;
}

// Scenario ids of the rankable runs, sorted fastest-first (stable on ties so
// the ranking is deterministic). With replications the key is the mean over
// the reps and only scenarios with every replication ok are ranked — a
// scenario that lost reps to crashes has a biased mean.
std::vector<int> ranked_ok(const std::vector<ScenarioAgg>& aggs) {
  std::vector<int> ids;
  std::vector<double> key(aggs.size(), 0);
  for (std::size_t i = 0; i < aggs.size(); ++i) {
    if (!aggs[i].complete) continue;
    ids.push_back(static_cast<int>(i));
    key[i] = aggs[i].stats.mean;
  }
  std::stable_sort(ids.begin(), ids.end(), [&](int a, int b) {
    return key[static_cast<std::size_t>(a)] < key[static_cast<std::size_t>(b)];
  });
  return ids;
}

// Rank stability: how often the fastest-by-mean scenario is also the fastest
// within a single replication. 1.0 means the sweep's verdict is insensitive
// to the noise; a low fraction means single-run rankings from this noise
// level cannot be trusted.
struct RankStability {
  bool valid = false;
  int winner = -1;
  int stable_reps = 0;
  double fraction = 0;
  const char* verdict = "unstable";
};

RankStability rank_stability(const CampaignOutcome& outcome,
                             const std::vector<ScenarioAgg>& aggs,
                             const std::vector<int>& ranking) {
  RankStability rs;
  const int reps = reps_of(outcome);
  if (reps < 2 || ranking.empty()) return rs;
  rs.valid = true;
  rs.winner = ranking.front();
  for (int rep = 0; rep < reps; ++rep) {
    int best = -1;
    double best_time = 0;
    for (std::size_t i = 0; i < aggs.size(); ++i) {
      const ScenarioResult& r =
          outcome.results[i * static_cast<std::size_t>(reps) + static_cast<std::size_t>(rep)];
      if (!r.ok) continue;
      if (best < 0 || r.simulated_time < best_time) {
        best = static_cast<int>(i);
        best_time = r.simulated_time;
      }
    }
    if (best == rs.winner) ++rs.stable_reps;
  }
  rs.fraction = static_cast<double>(rs.stable_reps) / static_cast<double>(reps);
  rs.verdict = rs.fraction >= 1.0 ? "stable" : rs.fraction >= 0.8 ? "mostly-stable" : "unstable";
  return rs;
}

util::JsonValue params_json(const Scenario& scenario) {
  util::JsonValue params = util::JsonValue::object();
  for (const auto& [key, value] : scenario.params) params.set(key, value);
  return params;
}

const char* base_kind_name(CampaignSpec::BaseKind kind) {
  switch (kind) {
    case CampaignSpec::BaseKind::kFlat: return "flat";
    case CampaignSpec::BaseKind::kGriffon: return "hierarchical-griffon";
    case CampaignSpec::BaseKind::kGdx: return "hierarchical-gdx";
    case CampaignSpec::BaseKind::kXmlFile: return "xml";
  }
  SMPI_UNREACHABLE("bad base kind");
}

// The result fields shared by single-run scenario rows and per-replication
// entries. `baseline` is the matching baseline run (same replication), for
// the paired speedup.
void set_result_fields(util::JsonValue& row, const ScenarioResult& r,
                       const ScenarioResult& baseline) {
  row.set("ok", util::JsonValue::boolean(r.ok));
  row.set("retries", util::JsonValue::number(r.retries));
  if (!r.ok) {
    row.set("error", util::JsonValue::string(r.error));
    if (r.timed_out) row.set("timed_out", util::JsonValue::boolean(true));
    if (!r.worker_exit.empty()) {
      row.set("worker_exit", util::JsonValue::string(r.worker_exit));
    }
    return;
  }
  row.set("simulated_time", util::JsonValue::number(r.simulated_time));
  row.set("speedup_vs_baseline", util::JsonValue::number(speedup_vs_baseline(baseline, r)));
  row.set("wall_s", util::JsonValue::number(r.wall_s));
  row.set("records", util::JsonValue::number(static_cast<double>(r.records)));
  row.set("ranks", util::JsonValue::number(r.ranks));
  row.set("arena_bytes", util::JsonValue::number(static_cast<double>(r.arena_bytes)));
  util::JsonValue breakdown = util::JsonValue::object();
  breakdown.set("compute_total_s", util::JsonValue::number(r.compute_total_s()));
  breakdown.set("comm_total_s", util::JsonValue::number(r.comm_total_s()));
  breakdown.set("compute_max_s", util::JsonValue::number(r.compute_max_s()));
  breakdown.set("comm_max_s", util::JsonValue::number(r.comm_max_s()));
  util::JsonValue per_rank_compute = util::JsonValue::array();
  util::JsonValue per_rank_comm = util::JsonValue::array();
  for (double v : r.rank_compute_s) per_rank_compute.append(util::JsonValue::number(v));
  for (double v : r.rank_comm_s) per_rank_comm.append(util::JsonValue::number(v));
  breakdown.set("rank_compute_s", std::move(per_rank_compute));
  breakdown.set("rank_comm_s", std::move(per_rank_comm));
  row.set("breakdown", std::move(breakdown));
  util::JsonValue solver = util::JsonValue::object();
  solver.set("solves", util::JsonValue::number(static_cast<double>(r.solver_solves)));
  solver.set("vars_touched",
             util::JsonValue::number(static_cast<double>(r.solver_vars_touched)));
  solver.set("cons_touched",
             util::JsonValue::number(static_cast<double>(r.solver_cons_touched)));
  row.set("solver", std::move(solver));
  util::JsonValue p2p = util::JsonValue::object();
  p2p.set("pool_hits", util::JsonValue::number(static_cast<double>(r.p2p.pool_hits)));
  p2p.set("pool_misses", util::JsonValue::number(static_cast<double>(r.p2p.pool_misses)));
  p2p.set("eager_snapshots",
          util::JsonValue::number(static_cast<double>(r.p2p.eager_snapshots)));
  p2p.set("eager_copy_elided",
          util::JsonValue::number(static_cast<double>(r.p2p.eager_copy_elided)));
  p2p.set("eager_flush_snapshots",
          util::JsonValue::number(static_cast<double>(r.p2p.eager_flush_snapshots)));
  p2p.set("bytes_not_copied",
          util::JsonValue::number(static_cast<double>(r.p2p.bytes_not_copied)));
  row.set("p2p", std::move(p2p));
  if (r.analyzed) {
    util::JsonValue analysis = util::JsonValue::object();
    analysis.set("wait_fraction", util::JsonValue::number(r.wait_fraction));
    analysis.set("critical_path_s", util::JsonValue::number(r.critical_path_s));
    analysis.set("cp_compute_s", util::JsonValue::number(r.cp_compute_s));
    analysis.set("cp_comm_s", util::JsonValue::number(r.cp_comm_s));
    analysis.set("dominant_wait", util::JsonValue::string(r.dominant_wait));
    util::JsonValue per_rank_wait = util::JsonValue::array();
    util::JsonValue per_rank_transfer = util::JsonValue::array();
    for (double v : r.rank_wait_s) per_rank_wait.append(util::JsonValue::number(v));
    for (double v : r.rank_transfer_s) per_rank_transfer.append(util::JsonValue::number(v));
    analysis.set("rank_wait_s", std::move(per_rank_wait));
    analysis.set("rank_transfer_s", std::move(per_rank_transfer));
    row.set("analysis", std::move(analysis));
  }
  if (r.resources_analyzed) {
    util::JsonValue resources = util::JsonValue::object();
    resources.set("top_bottleneck", util::JsonValue::string(r.top_bottleneck));
    resources.set("bottleneck_saturated_s",
                  util::JsonValue::number(r.bottleneck_saturated_s));
    resources.set("max_link_utilization",
                  util::JsonValue::number(r.max_link_utilization));
    row.set("resources", std::move(resources));
  }
}

// Inverse of set_result_fields, reading a resumed report's row or
// replication entry back into a ScenarioResult.
void read_result_fields(const util::JsonValue& row, ScenarioResult& r) {
  r.ok = row.at("ok", "resume report row").as_bool();
  // Lenient: reports written before the hardened harness carry none of
  // these fields.
  if (const auto* retries = row.find("retries")) r.retries = static_cast<int>(retries->as_int());
  if (!r.ok) {
    if (const auto* error = row.find("error")) r.error = error->as_string();
    if (const auto* timed_out = row.find("timed_out")) r.timed_out = timed_out->as_bool();
    if (const auto* worker_exit = row.find("worker_exit")) {
      r.worker_exit = worker_exit->as_string();
    }
    return;
  }
  r.error.clear();
  r.simulated_time = row.at("simulated_time", "resume report row").as_number();
  r.wall_s = row.at("wall_s", "resume report row").as_number();
  r.records = row.at("records", "resume report row").as_int();
  r.ranks = static_cast<int>(row.at("ranks", "resume report row").as_int());
  r.arena_bytes =
      static_cast<std::uint64_t>(row.at("arena_bytes", "resume report row").as_int());
  const auto& breakdown = row.at("breakdown", "resume report row");
  for (const auto& v : breakdown.at("rank_compute_s", "resume breakdown").items()) {
    r.rank_compute_s.push_back(v.as_number());
  }
  for (const auto& v : breakdown.at("rank_comm_s", "resume breakdown").items()) {
    r.rank_comm_s.push_back(v.as_number());
  }
  const auto& solver = row.at("solver", "resume report row");
  r.solver_solves =
      static_cast<std::uint64_t>(solver.at("solves", "resume solver").as_int());
  r.solver_vars_touched =
      static_cast<std::uint64_t>(solver.at("vars_touched", "resume solver").as_int());
  r.solver_cons_touched =
      static_cast<std::uint64_t>(solver.at("cons_touched", "resume solver").as_int());
  // Lenient: reports written before the p2p counters existed resume fine
  // (the counters simply stay zero for adopted rows).
  if (const auto* p2p = row.find("p2p")) {
    auto u64 = [&](const char* key) {
      const auto* v = p2p->find(key);
      return v == nullptr ? std::uint64_t{0} : static_cast<std::uint64_t>(v->as_int());
    };
    r.p2p.pool_hits = u64("pool_hits");
    r.p2p.pool_misses = u64("pool_misses");
    r.p2p.eager_snapshots = u64("eager_snapshots");
    r.p2p.eager_copy_elided = u64("eager_copy_elided");
    r.p2p.eager_flush_snapshots = u64("eager_flush_snapshots");
    r.p2p.bytes_not_copied = u64("bytes_not_copied");
  }
  // Lenient likewise for the analysis block (reports written before it
  // existed, or with "analysis": false in the spec).
  if (const auto* analysis = row.find("analysis")) {
    r.analyzed = true;
    r.wait_fraction = analysis->at("wait_fraction", "resume analysis").as_number();
    r.critical_path_s = analysis->at("critical_path_s", "resume analysis").as_number();
    r.cp_compute_s = analysis->at("cp_compute_s", "resume analysis").as_number();
    r.cp_comm_s = analysis->at("cp_comm_s", "resume analysis").as_number();
    r.dominant_wait = analysis->at("dominant_wait", "resume analysis").as_string();
    for (const auto& v : analysis->at("rank_wait_s", "resume analysis").items()) {
      r.rank_wait_s.push_back(v.as_number());
    }
    for (const auto& v : analysis->at("rank_transfer_s", "resume analysis").items()) {
      r.rank_transfer_s.push_back(v.as_number());
    }
  }
  // And for the resource-bottleneck block ("resources": false, or older
  // reports).
  if (const auto* resources = row.find("resources")) {
    r.resources_analyzed = true;
    r.top_bottleneck = resources->at("top_bottleneck", "resume resources").as_string();
    r.bottleneck_saturated_s =
        resources->at("bottleneck_saturated_s", "resume resources").as_number();
    r.max_link_utilization =
        resources->at("max_link_utilization", "resume resources").as_number();
  }
}

std::vector<ScenarioAgg> aggregate_all(const CampaignSpec& spec,
                                       const std::vector<Scenario>& scenarios,
                                       const CampaignOutcome& outcome) {
  std::vector<ScenarioAgg> aggs;
  aggs.reserve(scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    aggs.push_back(aggregate_scenario(outcome, i, spec.noise.seed));
  }
  return aggs;
}

}  // namespace

util::JsonValue report_json(const CampaignSpec& spec, const std::vector<Scenario>& scenarios,
                            const CampaignOutcome& outcome) {
  const int reps = reps_of(outcome);
  SMPI_REQUIRE(scenarios.size() * static_cast<std::size_t>(reps) == outcome.results.size(),
               "campaign report: scenario/result count mismatch");
  const ScenarioResult& baseline = baseline_of(outcome);

  util::JsonValue doc = util::JsonValue::object();
  doc.set("campaign", util::JsonValue::string(spec.name));
  doc.set("trace", util::JsonValue::string(spec.trace_dir));
  {
    util::JsonValue platform = util::JsonValue::object();
    platform.set("kind", util::JsonValue::string(base_kind_name(spec.base_kind)));
    platform.set("nodes", util::JsonValue::number(spec.base_nodes));
    if (!spec.platform_file.empty()) {
      platform.set("file", util::JsonValue::string(spec.platform_file));
    }
    doc.set("platform", std::move(platform));
  }
  if (spec.has_workload) {
    util::JsonValue workload = util::JsonValue::object();
    workload.set("name", util::JsonValue::string(spec.workload.name));
    workload.set("ranks", util::JsonValue::number(spec.workload.ranks));
    workload.set("seed", util::JsonValue::number(static_cast<double>(spec.workload.seed)));
    workload.set("phases",
                 util::JsonValue::number(static_cast<double>(spec.workload.phases.size())));
    doc.set("workload", std::move(workload));
  }
  doc.set("workers", util::JsonValue::number(outcome.workers));
  if (outcome.resumed > 0) doc.set("resumed", util::JsonValue::number(outcome.resumed));
  doc.set("wall_s", util::JsonValue::number(outcome.wall_s));
  doc.set("scenario_count", util::JsonValue::number(static_cast<double>(scenarios.size())));
  if (reps > 1) {
    doc.set("replications", util::JsonValue::number(reps));
    doc.set("noise_seed", util::JsonValue::number(static_cast<double>(spec.noise.seed)));
  }

  const std::vector<ScenarioAgg> aggs = aggregate_all(spec, scenarios, outcome);

  util::JsonValue rows = util::JsonValue::array();
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const Scenario& scenario = scenarios[i];
    util::JsonValue row = util::JsonValue::object();
    row.set("id", util::JsonValue::number(scenario.id));
    row.set("label", util::JsonValue::string(scenario.label));
    row.set("params", params_json(scenario));
    if (reps == 1) {
      set_result_fields(row, outcome.results[i], baseline);
      rows.append(std::move(row));
      continue;
    }
    // Replicated sweep: per-rep entries plus the fold-down. Speedups are
    // paired per replication (scenario rep k vs baseline rep k) so a slow
    // noise world cancels out of the ratio.
    const ScenarioAgg& agg = aggs[i];
    row.set("ok", util::JsonValue::boolean(agg.complete));
    util::JsonValue rep_rows = util::JsonValue::array();
    for (int rep = 0; rep < reps; ++rep) {
      const std::size_t unit =
          i * static_cast<std::size_t>(reps) + static_cast<std::size_t>(rep);
      const ScenarioResult& r = outcome.results[unit];
      const ScenarioResult& rep_baseline = outcome.results[static_cast<std::size_t>(rep)];
      util::JsonValue entry = util::JsonValue::object();
      entry.set("rep", util::JsonValue::number(rep));
      set_result_fields(entry, r, rep_baseline);
      rep_rows.append(std::move(entry));
    }
    row.set("replications", std::move(rep_rows));
    if (!agg.times.empty()) {
      const ScenarioAgg& base_agg = aggs[0];
      util::JsonValue stats = util::JsonValue::object();
      stats.set("count", util::JsonValue::number(static_cast<double>(agg.stats.count)));
      stats.set("mean", util::JsonValue::number(agg.stats.mean));
      stats.set("stddev", util::JsonValue::number(agg.stats.stddev));
      stats.set("min", util::JsonValue::number(agg.stats.min));
      stats.set("max", util::JsonValue::number(agg.stats.max));
      stats.set("p5", util::JsonValue::number(agg.stats.p5));
      stats.set("p50", util::JsonValue::number(agg.stats.p50));
      stats.set("p95", util::JsonValue::number(agg.stats.p95));
      stats.set("ci_lo", util::JsonValue::number(agg.ci.lo));
      stats.set("ci_hi", util::JsonValue::number(agg.ci.hi));
      if (!base_agg.times.empty() && agg.stats.mean > 0) {
        stats.set("speedup_vs_baseline_mean",
                  util::JsonValue::number(base_agg.stats.mean / agg.stats.mean));
      }
      row.set("stats", std::move(stats));
    }
    rows.append(std::move(row));
  }
  doc.set("scenarios", std::move(rows));

  const std::vector<int> ranking = ranked_ok(aggs);
  util::JsonValue ranking_json = util::JsonValue::array();
  for (int id : ranking) ranking_json.append(util::JsonValue::number(id));
  doc.set("ranking_fastest_first", std::move(ranking_json));

  const RankStability rs = rank_stability(outcome, aggs, ranking);
  if (rs.valid) {
    util::JsonValue stability = util::JsonValue::object();
    stability.set("winner", util::JsonValue::number(rs.winner));
    stability.set("stable_replications", util::JsonValue::number(rs.stable_reps));
    stability.set("fraction", util::JsonValue::number(rs.fraction));
    stability.set("verdict", util::JsonValue::string(rs.verdict));
    doc.set("rank_stability", std::move(stability));
  }
  return doc;
}

std::string report_csv(const CampaignSpec& spec, const std::vector<Scenario>& scenarios,
                       const CampaignOutcome& outcome) {
  const int reps = reps_of(outcome);
  SMPI_REQUIRE(scenarios.size() * static_cast<std::size_t>(reps) == outcome.results.size(),
               "campaign report: scenario/result count mismatch");

  // One column per axis (in axis order) so the grid pivots cleanly.
  std::vector<std::string> axis_keys;
  for (const Axis& axis : spec.axes) axis_keys.push_back(axis.key());

  std::string csv = "id,rep,label,ok,retries,timed_out";
  for (const std::string& key : axis_keys) csv += "," + key;
  csv +=
      ",simulated_time,speedup_vs_baseline,wall_s,records,ranks,compute_total_s,comm_total_s,"
      "compute_max_s,comm_max_s,solver_solves,solver_vars_touched,solver_cons_touched,"
      "pool_hits,pool_misses,eager_snapshots,eager_copy_elided,eager_flush_snapshots,"
      "bytes_not_copied,wait_fraction,critical_path_s,cp_compute_s,cp_comm_s,dominant_wait,"
      "top_bottleneck,bottleneck_saturated_s,max_link_utilization,worker_exit,error\n";

  // One row per unit: with replications the per-rep runs appear individually
  // (the fold-down statistics live in the JSON report).
  for (std::size_t unit = 0; unit < outcome.results.size(); ++unit) {
    const ScenarioResult& r = outcome.results[unit];
    const Scenario& scenario = scenarios[unit / static_cast<std::size_t>(reps)];
    const ScenarioResult& baseline =
        outcome.results[unit % static_cast<std::size_t>(reps)];  // same-rep baseline
    csv += std::to_string(scenario.id);
    csv += ',' + std::to_string(r.rep);
    csv += ",\"" + scenario.label + "\"";
    csv += r.ok ? ",1" : ",0";
    csv += ',' + std::to_string(r.retries);
    csv += r.timed_out ? ",1" : ",0";
    for (const std::string& key : axis_keys) {
      const util::JsonValue* value = scenario.find(key);
      csv += ',';
      if (value != nullptr) {
        csv += value->is_string() ? value->as_string() : value->dump();
      }
    }
    if (r.ok) {
      csv += ',' + format_double(r.simulated_time);
      csv += ',' + format_double(speedup_vs_baseline(baseline, r));
      csv += ',' + format_double(r.wall_s);
      csv += ',' + std::to_string(r.records);
      csv += ',' + std::to_string(r.ranks);
      csv += ',' + format_double(r.compute_total_s());
      csv += ',' + format_double(r.comm_total_s());
      csv += ',' + format_double(r.compute_max_s());
      csv += ',' + format_double(r.comm_max_s());
      csv += ',' + std::to_string(r.solver_solves);
      csv += ',' + std::to_string(r.solver_vars_touched);
      csv += ',' + std::to_string(r.solver_cons_touched);
      csv += ',' + std::to_string(r.p2p.pool_hits);
      csv += ',' + std::to_string(r.p2p.pool_misses);
      csv += ',' + std::to_string(r.p2p.eager_snapshots);
      csv += ',' + std::to_string(r.p2p.eager_copy_elided);
      csv += ',' + std::to_string(r.p2p.eager_flush_snapshots);
      csv += ',' + std::to_string(r.p2p.bytes_not_copied);
      if (r.analyzed) {
        csv += ',' + format_double(r.wait_fraction);
        csv += ',' + format_double(r.critical_path_s);
        csv += ',' + format_double(r.cp_compute_s);
        csv += ',' + format_double(r.cp_comm_s);
        csv += ',' + r.dominant_wait;
      } else {
        csv += ",,,,,";  // analysis was off for this run
      }
      if (r.resources_analyzed) {
        csv += ",\"" + r.top_bottleneck + "\"";
        csv += ',' + format_double(r.bottleneck_saturated_s);
        csv += ',' + format_double(r.max_link_utilization);
      } else {
        csv += ",,,";  // resources were off for this run
      }
      csv += ",,\n";  // empty worker_exit + error
    } else {
      // 26 empty metric columns, then the harness diagnostics.
      csv += ",,,,,,,,,,,,,,,,,,,,,,,,,,\"" + r.worker_exit + "\",\"" + r.error + "\"\n";
    }
  }
  return csv;
}

std::string report_summary(const CampaignSpec& spec, const std::vector<Scenario>& scenarios,
                           const CampaignOutcome& outcome, int top) {
  const int reps = reps_of(outcome);
  const ScenarioResult& baseline = baseline_of(outcome);
  const std::vector<ScenarioAgg> aggs = aggregate_all(spec, scenarios, outcome);
  const std::vector<int> ranking = ranked_ok(aggs);
  std::string out;
  char line[512];

  if (reps == 1) {
    std::snprintf(line, sizeof line, "campaign '%s': %zu scenarios, %d workers, %.2fs wall\n",
                  spec.name.c_str(), scenarios.size(), outcome.workers, outcome.wall_s);
  } else {
    std::snprintf(line, sizeof line,
                  "campaign '%s': %zu scenarios x %d replications, %d workers, %.2fs wall\n",
                  spec.name.c_str(), scenarios.size(), reps, outcome.workers, outcome.wall_s);
  }
  out += line;
  if (reps == 1) {
    if (baseline.ok) {
      std::snprintf(line, sizeof line, "baseline simulated time: %.9f s\n",
                    baseline.simulated_time);
      out += line;
    } else {
      out += "baseline FAILED: " + baseline.error + "\n";
    }
  } else if (!aggs[0].times.empty()) {
    std::snprintf(line, sizeof line,
                  "baseline simulated time: mean %.9f s, stddev %.3g, p5 %.9f, p95 %.9f (%zu/%d "
                  "reps)\n",
                  aggs[0].stats.mean, aggs[0].stats.stddev, aggs[0].stats.p5, aggs[0].stats.p95,
                  aggs[0].times.size(), reps);
    out += line;
  } else {
    out += "baseline FAILED in every replication\n";
  }

  // "[wait 42%, mostly late_sender]" — why this scenario is slow (or not):
  // how much of its total rank time was spent blocked on peers, and which
  // wait-state class dominates that blocking.
  auto wait_note = [&](const ScenarioResult& r) -> std::string {
    if (!r.ok || (!r.analyzed && !r.resources_analyzed)) return "";
    std::string text;
    char note[160];
    if (r.analyzed) {
      if (r.dominant_wait.empty() || r.dominant_wait == "none") {
        std::snprintf(note, sizeof note, "wait %.0f%%", r.wait_fraction * 100.0);
      } else {
        std::snprintf(note, sizeof note, "wait %.0f%%, mostly %s", r.wait_fraction * 100.0,
                      r.dominant_wait.c_str());
      }
      text = note;
    }
    // "..., bottleneck backbone-link 2.1s": the resource saturated longest
    // in this run — where the contention actually lives.
    if (r.resources_analyzed && !r.top_bottleneck.empty()) {
      std::snprintf(note, sizeof note, "bottleneck %s %.3gs", r.top_bottleneck.c_str(),
                    r.bottleneck_saturated_s);
      if (!text.empty()) text += ", ";
      text += note;
    }
    if (text.empty()) return "";
    return "  [" + text + "]";
  };
  auto describe = [&](int id) {
    const auto index = static_cast<std::size_t>(id);
    if (reps == 1) {
      const ScenarioResult& r = outcome.results[index];
      std::snprintf(line, sizeof line, "  #%-4d %-48s %.9f s  (%.3fx)", id,
                    scenarios[index].label.c_str(), r.simulated_time,
                    speedup_vs_baseline(baseline, r));
      out += line;
      out += wait_note(r);
    } else {
      const ScenarioAgg& agg = aggs[index];
      const double speedup =
          !aggs[0].times.empty() && agg.stats.mean > 0 ? aggs[0].stats.mean / agg.stats.mean : 0;
      std::snprintf(line, sizeof line, "  #%-4d %-48s mean %.9f s +/- %.3g  (%.3fx)", id,
                    scenarios[index].label.c_str(), agg.stats.mean, agg.stats.stddev, speedup);
      out += line;
      // The wait-state verdict of the first successful replication stands in
      // for the family (noise moves the numbers, rarely the diagnosis).
      for (int rep = 0; rep < reps; ++rep) {
        const ScenarioResult& r =
            outcome.results[index * static_cast<std::size_t>(reps) + static_cast<std::size_t>(rep)];
        if (r.ok && r.analyzed) {
          out += wait_note(r);
          break;
        }
      }
    }
    out += '\n';
  };

  const int shown = std::min<int>(top, static_cast<int>(ranking.size()));
  if (shown > 0) {
    out += reps == 1 ? "fastest scenarios:\n" : "fastest scenarios (by mean):\n";
    for (int i = 0; i < shown; ++i) describe(ranking[static_cast<std::size_t>(i)]);
    out += "slowest scenarios:\n";
    for (int i = 0; i < shown; ++i) {
      describe(ranking[ranking.size() - 1 - static_cast<std::size_t>(i)]);
    }
  }

  const RankStability rs = rank_stability(outcome, aggs, ranking);
  if (rs.valid) {
    std::snprintf(line, sizeof line,
                  "rank stability: winner #%d fastest in %d/%d replications (%s)\n", rs.winner,
                  rs.stable_reps, reps, rs.verdict);
    out += line;
  }

  if (outcome.resumed > 0) {
    std::snprintf(line, sizeof line, "%d run(s) adopted from the resumed report\n",
                  outcome.resumed);
    out += line;
  }

  int failures = 0;
  int retried = 0;
  int timeouts = 0;
  for (const ScenarioResult& r : outcome.results) {
    failures += r.ok ? 0 : 1;
    retried += r.retries > 0 ? 1 : 0;
    timeouts += r.timed_out ? 1 : 0;
  }
  if (retried > 0) {
    std::snprintf(line, sizeof line, "%d run(s) needed a worker retry\n", retried);
    out += line;
  }
  if (timeouts > 0) {
    std::snprintf(line, sizeof line, "%d run(s) hit the wall-clock watchdog\n", timeouts);
    out += line;
  }
  if (failures > 0) {
    std::snprintf(line, sizeof line, "%d run(s) FAILED:\n", failures);
    out += line;
    for (const ScenarioResult& r : outcome.results) {
      if (r.ok) continue;
      std::snprintf(line, sizeof line, "  #%-4d%s %s: %s%s%s%s\n", r.id,
                    reps > 1 ? (" rep=" + std::to_string(r.rep)).c_str() : "",
                    scenarios[static_cast<std::size_t>(r.id)].label.c_str(), r.error.c_str(),
                    r.worker_exit.empty() ? "" : " [worker: ",
                    r.worker_exit.c_str(), r.worker_exit.empty() ? "" : "]");
      out += line;
    }
  }
  return out;
}

std::vector<ScenarioResult> results_from_report(const util::JsonValue& report,
                                                const CampaignSpec& spec,
                                                const std::vector<Scenario>& scenarios) {
  SMPI_REQUIRE(report.is_object(), "campaign resume: report is not a JSON object");
  const std::string name = report.at("campaign", "resume report").as_string();
  SMPI_REQUIRE(name == spec.name, "campaign resume: report belongs to campaign '" + name +
                                      "', spec is '" + spec.name + "'");
  const long long count = report.at("scenario_count", "resume report").as_int();
  SMPI_REQUIRE(count == static_cast<long long>(scenarios.size()),
               "campaign resume: report has " + std::to_string(count) + " scenarios, spec has " +
                   std::to_string(scenarios.size()));
  // A report replicated differently indexes its units differently: adopting
  // it would stitch rep k of one family onto rep k of another.
  const int reps = std::max(1, spec.replications);
  const auto* report_reps = report.find("replications");
  const long long reps_in_report = report_reps == nullptr ? 1 : report_reps->as_int();
  SMPI_REQUIRE(reps_in_report == reps,
               "campaign resume: report ran " + std::to_string(reps_in_report) +
                   " replication(s), spec wants " + std::to_string(reps));
  if (reps > 1) {
    const long long seed = report.at("noise_seed", "resume report").as_int();
    SMPI_REQUIRE(seed == static_cast<long long>(spec.noise.seed),
                 "campaign resume: report ran under noise_seed " + std::to_string(seed) +
                     ", spec uses " + std::to_string(spec.noise.seed));
  }
  // Labels only cover the axis values; the trace source and base platform
  // shape the results just as much, so a report produced under a different
  // one must be rejected, not stitched into this sweep.
  const std::string trace = report.at("trace", "resume report").as_string();
  SMPI_REQUIRE(trace == spec.trace_dir, "campaign resume: report ran over trace '" + trace +
                                            "', spec uses '" + spec.trace_dir + "'");
  const auto& platform = report.at("platform", "resume report");
  SMPI_REQUIRE(platform.at("kind", "resume platform").as_string() ==
                       base_kind_name(spec.base_kind) &&
                   platform.at("nodes", "resume platform").as_int() == spec.base_nodes &&
                   (spec.platform_file.empty()
                        ? platform.find("file") == nullptr
                        : platform.find("file") != nullptr &&
                              platform.at("file", "resume platform").as_string() ==
                                  spec.platform_file),
               "campaign resume: report ran on a different base platform");
  const auto* workload = report.find("workload");
  SMPI_REQUIRE((workload != nullptr) == spec.has_workload,
               "campaign resume: report and spec disagree on the workload trace source");
  if (workload != nullptr) {
    SMPI_REQUIRE(
        workload->at("name", "resume workload").as_string() == spec.workload.name &&
            workload->at("ranks", "resume workload").as_int() == spec.workload.ranks &&
            workload->at("seed", "resume workload").as_int() ==
                static_cast<long long>(spec.workload.seed) &&
            workload->at("phases", "resume workload").as_int() ==
                static_cast<long long>(spec.workload.phases.size()),
        "campaign resume: report ran a different workload (name/ranks/seed/phases changed)");
  }

  std::vector<ScenarioResult> results(scenarios.size() * static_cast<std::size_t>(reps));
  for (std::size_t i = 0; i < results.size(); ++i) {
    results[i].id = static_cast<int>(i) / reps;
    results[i].rep = static_cast<int>(i) % reps;
    results[i].error = "not present in the resumed report";
  }
  for (const auto& row : report.at("scenarios", "resume report").items()) {
    const long long id = row.at("id", "resume report row").as_int();
    SMPI_REQUIRE(id >= 0 && id < static_cast<long long>(scenarios.size()),
                 "campaign resume: report row id out of range");
    const auto index = static_cast<std::size_t>(id);
    // Label equality is the cheap proxy for "same axes, same values, same
    // order" — any edit to the spec that renumbers the cross-product
    // changes the labels, and the resume must then be rejected.
    const std::string label = row.at("label", "resume report row").as_string();
    SMPI_REQUIRE(label == scenarios[index].label,
                 "campaign resume: scenario " + std::to_string(id) + " is '" +
                     scenarios[index].label + "' in the spec but '" + label +
                     "' in the report — the axes changed, start a fresh sweep");
    if (reps == 1) {
      read_result_fields(row, results[index]);
      continue;
    }
    for (const auto& entry : row.at("replications", "resume report row").items()) {
      const long long rep = entry.at("rep", "resume replication entry").as_int();
      SMPI_REQUIRE(rep >= 0 && rep < reps,
                   "campaign resume: replication index out of range");
      read_result_fields(
          entry, results[index * static_cast<std::size_t>(reps) + static_cast<std::size_t>(rep)]);
    }
  }
  return results;
}

}  // namespace smpi::campaign
